/**
 * @file
 * Media processor: the paper's closing claim is that clumsy execution
 * "can be applied to any type of processor that executes applications
 * with fault resiliency (e.g., media processors)". This example runs
 * the IMA ADPCM voice coder across the frequency ladder and shows the
 * media version of the trade: coded-frame corruption rates rise
 * gracefully while energy falls — and the codec never crashes.
 *
 * Usage: media_processor [packets]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::uint64_t packets =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

    TextTable table("ADPCM voice coding on a clumsy media processor");
    table.header({"Cr", "scheme", "frames corrupted [%]",
                  "fatal", "uJ/frame", "cycles/frame"});
    for (const auto scheme :
         {mem::RecoveryScheme::NoDetection,
          mem::RecoveryScheme::TwoStrike}) {
        for (const double cr : {1.0, 0.5, 0.25}) {
            core::ExperimentConfig cfg;
            cfg.numPackets = packets;
            cfg.trials = 4;
            cfg.cr = cr;
            cfg.scheme = scheme;
            const auto res =
                core::runExperiment(apps::appFactory("adpcm"), cfg);
            table.row({
                TextTable::num(cr, 2),
                to_string(scheme),
                TextTable::num(res.anyErrorProb * 100.0, 3),
                TextTable::num(res.fatalFraction, 2),
                TextTable::num(res.energyPerPacketPj * 1e-6, 3),
                TextTable::num(res.cyclesPerPacket, 0),
            });
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\na corrupted voice frame is a click, not a crash: the "
              "codec degrades gracefully while the cache energy "
              "shrinks with the voltage swing.");
    return 0;
}
