/**
 * @file
 * Quickstart: simulate an over-clocked clumsy packet processor
 * running the route workload, and print what the trade looks like.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/app.hh"
#include "common/logging.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"

using namespace clumsy;

int
main()
{
    setQuiet(true);

    // 1. Describe the experiment: the route workload, 1000 packets,
    //    the D-cache over-clocked 2x (Cr = 0.5), parity + two-strike
    //    recovery — the paper's winning configuration.
    core::ExperimentConfig config;
    config.numPackets = 1000;
    config.cr = 0.5;
    config.scheme = mem::RecoveryScheme::TwoStrike;

    // 2. Run it: the harness replays the same trace fault-free and
    //    with injection, comparing every marked value per packet.
    const core::ExperimentResult result =
        core::runExperiment(apps::appFactory("route"), config);

    // 3. Compare against the conservative baseline (full-swing clock,
    //    no detection).
    core::ExperimentConfig baseline = config;
    baseline.cr = 1.0;
    baseline.scheme = mem::RecoveryScheme::NoDetection;
    const core::ExperimentResult base =
        core::runExperiment(apps::appFactory("route"), baseline);

    std::printf("clumsy quickstart: route @ Cr=0.5, two-strike\n");
    std::printf("  packets processed : %llu\n",
                static_cast<unsigned long long>(
                    result.faulty.packetsProcessed));
    std::printf("  cycles per packet : %.1f (baseline %.1f)\n",
                result.cyclesPerPacket, base.cyclesPerPacket);
    std::printf("  energy per packet : %.2f uJ (baseline %.2f uJ)\n",
                result.energyPerPacketPj * 1e-6,
                base.energyPerPacketPj * 1e-6);
    std::printf("  fallibility       : %.4f\n", result.fallibility);
    std::printf("  faults injected   : %llu (parity trips %llu)\n",
                static_cast<unsigned long long>(
                    result.faulty.faultsInjected),
                static_cast<unsigned long long>(
                    result.faulty.parityTrips));

    const double rel =
        (result.energyPerPacketPj * result.cyclesPerPacket *
         result.cyclesPerPacket * result.fallibility *
         result.fallibility) /
        (base.energyPerPacketPj * base.cyclesPerPacket *
         base.cyclesPerPacket * base.fallibility * base.fallibility);
    std::printf("  energy-delay^2-fallibility^2 vs baseline: %.3f\n",
                rel);
    std::printf("(the paper reports ~0.76 on average for this "
                "configuration)\n");
    return 0;
}
