/**
 * @file
 * Energy explorer: sweep the D-cache operating point for any
 * workload and print the full trade-off surface — delay, energy,
 * fallibility and the combined EDF^2 product — the tool a deployment
 * engineer would use to pick a static operating point.
 *
 * Usage: energy_explorer [app] [packets]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace clumsy;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::string app = argc > 1 ? argv[1] : "route";
    const std::uint64_t packets =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1200;

    double baseEdf = 0.0;
    TextTable table("operating points for '" + app + "'");
    table.header({"Cr", "scheme", "cyc/pkt", "uJ/pkt", "fallibility",
                  "rel EDF^2"});
    for (const auto scheme :
         {mem::RecoveryScheme::NoDetection,
          mem::RecoveryScheme::TwoStrike}) {
        for (const double cr : {1.0, 0.75, 0.5, 0.25}) {
            core::ExperimentConfig cfg;
            cfg.numPackets = packets;
            cfg.trials = 3;
            cfg.cr = cr;
            cfg.scheme = scheme;
            const auto res =
                core::runExperiment(apps::appFactory(app), cfg);
            const double edf = res.energyPerPacketPj *
                               std::pow(res.cyclesPerPacket, 2.0) *
                               std::pow(res.fallibility, 2.0);
            if (baseEdf == 0.0)
                baseEdf = edf; // Cr = 1, no detection
            table.row({
                TextTable::num(cr, 2),
                to_string(scheme),
                TextTable::num(res.cyclesPerPacket, 1),
                TextTable::num(res.energyPerPacketPj * 1e-6, 3),
                TextTable::num(res.fallibility, 4),
                TextTable::num(edf / baseEdf, 3),
            });
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\npick the row with the smallest rel EDF^2 that meets "
              "your reliability budget.");
    return 0;
}
