/**
 * @file
 * Adaptive router: drives the processor API directly (no experiment
 * harness) with the dynamic frequency controller enabled, processing
 * a live packet stream and reporting how the cache clock adapted.
 *
 * This is the intended embedding for a real deployment: the
 * application owns the processor and its packet loop, and the
 * controller silently retunes the D-cache every 100 packets.
 */

#include <cstdio>

#include "apps/app.hh"
#include "common/logging.hh"
#include "core/processor.hh"
#include "net/trace_gen.hh"

using namespace clumsy;

int
main()
{
    setQuiet(true);

    core::ProcessorConfig config;
    config.dynamicFrequency = true;
    config.hierarchy.scheme = mem::RecoveryScheme::TwoStrike;
    // Accelerate faults so the 5000-packet demo shows controller
    // activity a full-length run would accumulate.
    config.faultModel.scale = 50.0;
    core::ClumsyProcessor proc(config);

    auto app = apps::makeApp("route");
    app->initialize(proc);

    net::TraceConfig traceCfg = app->traceConfig();
    traceCfg.seed = 2026;
    net::TraceGenerator gen(traceCfg);

    core::ValueRecorder recorder;
    const std::uint64_t kPackets = 5000;
    std::uint64_t processed = 0;
    double crSum = 0.0;
    for (std::uint64_t i = 0; i < kPackets; ++i) {
        const net::Packet pkt = gen.next();
        proc.beginPacket();
        recorder.beginPacket();
        app->processPacket(proc, pkt, recorder);
        if (proc.fatalOccurred()) {
            std::printf("fatal error after %llu packets: %s\n",
                        static_cast<unsigned long long>(processed),
                        proc.fatalReason().c_str());
            break;
        }
        proc.endPacket();
        crSum += proc.currentCr();
        ++processed;
    }

    const auto *ctl = proc.freqController();
    std::printf("adaptive router: %llu packets processed\n",
                static_cast<unsigned long long>(processed));
    std::printf("  final Cr            : %.2f\n", proc.currentCr());
    std::printf("  mean Cr             : %.3f\n",
                crSum / static_cast<double>(processed));
    std::printf("  frequency switches  : %llu\n",
                static_cast<unsigned long long>(ctl->switches()));
    for (unsigned level = 0; level < 4; ++level) {
        std::printf("  epochs at level %u   : %llu\n", level,
                    static_cast<unsigned long long>(ctl->stats().get(
                        "residency_level" + std::to_string(level))));
    }
    std::printf("  parity trips        : %llu\n",
                static_cast<unsigned long long>(
                    proc.hierarchy().stats().get("parity_trips")));
    std::printf("  cycles per packet   : %.1f\n",
                proc.nowCycles() / static_cast<double>(processed));
    std::printf("  chip energy         : %.2f uJ\n",
                proc.totalEnergyPj() * 1e-6);
    return 0;
}
