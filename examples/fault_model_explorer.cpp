/**
 * @file
 * Fault-model explorer: interactively inspect the physics stack —
 * what voltage swing, noise margin and fault probability a given
 * over-clocking ratio implies, and what that means per packet for a
 * chosen access profile.
 *
 * Usage: fault_model_explorer [overclock-factor] [accesses-per-packet]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "fault/fault_model.hh"
#include "fault/immunity.hh"
#include "fault/swing.hh"

using namespace clumsy;
using namespace clumsy::fault;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const double overclock =
        argc > 1 ? std::strtod(argv[1], nullptr) : 2.0;
    const double accesses =
        argc > 2 ? std::strtod(argv[2], nullptr) : 500.0;
    if (overclock < 1.0 || overclock > 10.0)
        fatal("overclock factor must be in [1, 10]");

    const double cr = 1.0 / overclock;
    const double vsr = relativeSwing(cr);
    const FaultModel model;
    const ImmunityCurves curves;

    std::printf("over-clocking the D-cache %.2fx (Cr = %.3f):\n",
                overclock, cr);
    std::printf("  relative voltage swing   : %.3f\n", vsr);
    std::printf("  cache energy per access  : %.1f%% of nominal\n",
                energyScale(cr) * 100.0);
    std::printf("  static noise margin      : %.3f x Vfs\n",
                curves.staticMargin(vsr));
    std::printf("  fault prob per bit-access: %.3e (%.1fx base)\n",
                model.bitFaultProb(cr), model.scaleFactor(cr));
    const double perWord = model.accessFaultProb(32, cr);
    std::printf("  fault prob per 32b access: %.3e\n", perWord);
    const double perPacket =
        1.0 - std::pow(1.0 - perWord, accesses);
    std::printf("  P(>=1 fault in a %.0f-access packet): %.4f\n",
                accesses, perPacket);
    std::printf("  (paper: ~15%% of faults become application "
                "errors)\n");
    return 0;
}
