/**
 * @file
 * Packet-trace persistence: a line-oriented text format so traces can
 * be saved, inspected, versioned and replayed (the role NetBench's
 * input trace files played for the paper).
 *
 * Format: one header line `clumsy-trace v1`, then one line per packet:
 *
 *   seq src dst ttl id proto sport dport payload-hex
 *
 * with addresses/ids in lowercase hex and the payload as a contiguous
 * hex string (empty payload = `-`). The wire checksum is recomputed on
 * load, keeping files hand-editable.
 */

#ifndef CLUMSY_NET_TRACE_IO_HH
#define CLUMSY_NET_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hh"

namespace clumsy::net
{

/**
 * Write the `clumsy-trace v1` header line. Streaming writers emit
 * this once, then one writePacket() per packet, so a multi-million
 * packet dump never holds the trace in memory.
 */
void writeTraceHeader(std::ostream &os);

/** Serialize one packet record (one line). */
void writePacket(std::ostream &os, const Packet &p);

/** Serialize a trace to a stream. */
void writeTrace(std::ostream &os, const std::vector<Packet> &trace);

/** Serialize a trace to a file; fatal()s when the file can't open. */
void saveTrace(const std::string &path,
               const std::vector<Packet> &trace);

/**
 * Parse a trace from a stream; fatal()s on malformed input (traces
 * are trusted local files, not wire input).
 */
std::vector<Packet> readTrace(std::istream &is);

/** Parse a trace from a file; fatal()s when the file can't open. */
std::vector<Packet> loadTrace(const std::string &path);

} // namespace clumsy::net

#endif // CLUMSY_NET_TRACE_IO_HH
