/**
 * @file
 * Deterministic synthetic packet-trace generation.
 *
 * Substitutes for the NetBench input traces the paper used (see
 * DESIGN.md substitution 4). The generator produces repeatable streams
 * with realistic field distributions: a bounded destination-prefix
 * pool with Zipf popularity (routing locality), mixed packet sizes,
 * per-flow port stability, and HTTP GET payloads for the url workload.
 * Golden (fault-free) and faulty runs replay identical traces because
 * generation is seeded independently of fault sampling.
 */

#ifndef CLUMSY_NET_TRACE_GEN_HH
#define CLUMSY_NET_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "net/packet.hh"

namespace clumsy::net
{

/** Trace generator parameters. */
struct TraceConfig
{
    std::uint64_t seed = 1;          ///< stream seed
    /**
     * Seed of the destination-address pool. Kept separate from the
     * stream seed so applications can rebuild the pool (to install
     * routes / NAT bindings for it) independent of which trace replay
     * they are fed.
     */
    std::uint64_t poolSeed = 0xd057;
    std::uint32_t numFlows = 256;    ///< distinct (src,dst,port) flows
    std::uint32_t numDestinations = 512; ///< destination address pool
    double destZipf = 0.9;           ///< popularity skew of destinations
    std::uint32_t minPayload = 16;   ///< payload bytes, inclusive
    std::uint32_t maxPayload = 512;  ///< payload bytes, inclusive
    bool httpPayloads = false;       ///< generate HTTP GET payloads
    std::uint32_t numUrls = 128;     ///< URL pool when httpPayloads
};

/** Streaming generator of a deterministic packet sequence. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceConfig config);

    /** Generate the next packet of the stream. */
    Packet next();

    /** Generate a whole trace of n packets. */
    std::vector<Packet> generate(std::uint64_t n);

    /** The destination-address pool (index -> IPv4 address). */
    const std::vector<std::uint32_t> &destinations() const
    {
        return destPool_;
    }

    /** The URL path pool used for HTTP payloads. */
    const std::vector<std::string> &urls() const { return urlPool_; }

    /** The configuration in force. */
    const TraceConfig &config() const { return config_; }

    /**
     * Rebuild the destination pool a TraceGenerator with this config
     * would use (depends only on poolSeed and numDestinations).
     */
    static std::vector<std::uint32_t> makeDestPool(
        const TraceConfig &config);

    /**
     * Rebuild the URL pool (depends only on numUrls; fully
     * deterministic).
     */
    static std::vector<std::string> makeUrlPool(
        const TraceConfig &config);

  private:
    struct Flow
    {
        std::uint32_t src;
        std::uint32_t dst;
        std::uint16_t srcPort;
        std::uint16_t dstPort;
        std::uint8_t protocol;
    };

    TraceConfig config_;
    Rng rng_;
    std::vector<std::uint32_t> destPool_;
    std::vector<Flow> flows_;
    std::vector<std::string> urlPool_;
    std::uint64_t seq_ = 0;
};

} // namespace clumsy::net

#endif // CLUMSY_NET_TRACE_GEN_HH
