/**
 * @file
 * Deterministic synthetic packet-trace generation.
 *
 * Substitutes for the NetBench input traces the paper used (see
 * DESIGN.md substitution 4). The generator produces repeatable streams
 * with realistic field distributions: a bounded destination-prefix
 * pool with Zipf popularity (routing locality), mixed packet sizes,
 * per-flow port stability, and HTTP GET payloads for the url workload.
 * Golden (fault-free) and faulty runs replay identical traces because
 * generation is seeded independently of fault sampling.
 *
 * The churn traffic model (flows that open, burst and die over a live
 * population — src/traffic/) layers on top: TraceConfig carries its
 * parameters, and the generator exposes emit()/drawFlow() so the
 * churn source builds packets from exactly the same recipe, keeping
 * the static-flow stream bit-identical to what it always was.
 */

#ifndef CLUMSY_NET_TRACE_GEN_HH
#define CLUMSY_NET_TRACE_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "net/packet.hh"

namespace clumsy::net
{

/** One flow's immutable identity (the classic 5-tuple). */
struct FlowTuple
{
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint8_t protocol = 0;
};

/**
 * Flow-churn traffic model parameters (consumed by
 * traffic::ChurnSource; ignored by the plain static-flow generator
 * except for flowZipf, which both share). All knobs are validated by
 * TraceConfig::validate().
 */
struct ChurnConfig
{
    /** Static flow set when false (the historical behaviour). */
    bool enabled = false;

    /**
     * Mean flow lifetime, packets (geometric): when a live flow has
     * emitted this many packets on average, it closes and a fresh
     * flow opens in its population slot.
     */
    double meanLifetimePackets = 4096.0;

    /** Pareto tail exponent of ON-burst lengths (heavy tail). */
    double burstAlpha = 1.5;

    /** Smallest ON burst, packets (the Pareto scale parameter). */
    std::uint32_t minBurst = 4;

    /**
     * OFF period between bursts, expressed as a multiple of the
     * nominal inter-arrival gap (0 = bursts abut).
     */
    double offGapFactor = 16.0;

    /** Arrival-rate ramp length, packets (0 = no ramp). */
    std::uint64_t rampPackets = 0;

    /**
     * Gap multiplier at stream start; decays linearly to 1 over
     * rampPackets (values > 1 model a stream ramping up).
     */
    double rampStartFactor = 1.0;
};

/** Trace generator parameters. */
struct TraceConfig
{
    std::uint64_t seed = 1;          ///< stream seed
    /**
     * Seed of the destination-address pool. Kept separate from the
     * stream seed so applications can rebuild the pool (to install
     * routes / NAT bindings for it) independent of which trace replay
     * they are fed.
     */
    std::uint64_t poolSeed = 0xd057;
    std::uint32_t numFlows = 256;    ///< distinct (src,dst,port) flows;
                                     ///< the *live* population under churn
    std::uint32_t numDestinations = 512; ///< destination address pool
    double destZipf = 0.9;           ///< popularity skew of destinations
    double flowZipf = 0.8;           ///< popularity skew of flows
    std::uint32_t minPayload = 16;   ///< payload bytes, inclusive
    std::uint32_t maxPayload = 512;  ///< payload bytes, inclusive
    bool httpPayloads = false;       ///< generate HTTP GET payloads
    std::uint32_t numUrls = 128;     ///< URL pool when httpPayloads

    /** Flow-churn model (see ChurnConfig). */
    ChurnConfig churn;

    /**
     * fatal()s (exit, not abort) with a parameter-naming message when
     * any field is out of range; called by the TraceGenerator
     * constructor and by the CLI front ends before construction.
     */
    void validate() const;
};

/** Streaming generator of a deterministic packet sequence. */
class TraceGenerator
{
  public:
    explicit TraceGenerator(TraceConfig config);

    /** Generate the next packet of the stream. */
    Packet next();

    /**
     * Materialize a whole trace of n packets. Test-only convenience:
     * it holds all n packets in memory, so anything that scales with
     * packet count (the harnesses, --dump-trace) must consume the
     * streaming next() / traffic::PacketSource contract instead.
     */
    std::vector<Packet> generate(std::uint64_t n);

    /**
     * Build the next packet of the stream for an externally chosen
     * flow (the churn model's entry point). Draws TTL, IP id and
     * payload from the stream RNG exactly as next() does; next() is
     * emit() over a Zipf-chosen static flow.
     */
    Packet emit(const FlowTuple &flow);

    /**
     * Draw a fresh flow from @p rng with the constructor's recipe
     * (private 10/8 source, Zipf destination from the pool, stable
     * ports, TCP-biased protocol). The churn model feeds this its own
     * RNG so flow births never perturb the packet-body stream.
     */
    FlowTuple drawFlow(Rng &rng) const;

    /** The destination-address pool (index -> IPv4 address). */
    const std::vector<std::uint32_t> &destinations() const
    {
        return destPool_;
    }

    /** The URL path pool used for HTTP payloads. */
    const std::vector<std::string> &urls() const { return urlPool_; }

    /** The configuration in force. */
    const TraceConfig &config() const { return config_; }

    /**
     * Rebuild the destination pool a TraceGenerator with this config
     * would use (depends only on poolSeed and numDestinations).
     */
    static std::vector<std::uint32_t> makeDestPool(
        const TraceConfig &config);

    /**
     * Rebuild the URL pool (depends only on numUrls; fully
     * deterministic).
     */
    static std::vector<std::string> makeUrlPool(
        const TraceConfig &config);

  private:
    TraceConfig config_;
    Rng rng_;
    std::vector<std::uint32_t> destPool_;
    std::vector<FlowTuple> flows_;
    std::vector<std::string> urlPool_;
    std::uint64_t seq_ = 0;
};

} // namespace clumsy::net

#endif // CLUMSY_NET_TRACE_GEN_HH
