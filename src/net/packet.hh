/**
 * @file
 * Packet representation for the NetBench-style workloads.
 *
 * Packets model the wire side of the system: they arrive from the
 * trace generator as host objects, and each application copies the
 * fields it processes into simulated memory (charging simulated cache
 * accesses) exactly where the original NetBench code would touch them.
 */

#ifndef CLUMSY_NET_PACKET_HH
#define CLUMSY_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace clumsy::net
{

/** IP protocol numbers used by the workloads. */
enum class IpProto : std::uint8_t
{
    Tcp = 6,
    Udp = 17,
};

/** An IPv4 header (RFC 791), host-order fields. */
struct Ipv4Header
{
    std::uint8_t version = 4;
    std::uint8_t ihl = 5; ///< header length in 32-bit words
    std::uint8_t tos = 0;
    std::uint16_t totalLen = 0;
    std::uint16_t id = 0;
    std::uint16_t fragOff = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 17;
    std::uint16_t checksum = 0; ///< as carried on the wire
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    /** Serialize to 20 network-order bytes (checksum field included). */
    std::array<std::uint8_t, 20> toBytes() const;
};

/** One packet of a workload trace. */
struct Packet
{
    std::uint64_t seq = 0; ///< position in the trace
    Ipv4Header ip;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::vector<std::uint8_t> payload;

    /** Total length (IP header + payload). */
    std::size_t wireBytes() const { return 20 + payload.size(); }
};

/** Render an IPv4 address as dotted decimal (debugging aid). */
std::string ipToString(std::uint32_t addr);

} // namespace clumsy::net

#endif // CLUMSY_NET_PACKET_HH
