#include "net/packet.hh"

#include <cstdio>

namespace clumsy::net
{

namespace
{

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v & 0xff);
}

} // namespace

std::array<std::uint8_t, 20>
Ipv4Header::toBytes() const
{
    std::array<std::uint8_t, 20> b{};
    b[0] = static_cast<std::uint8_t>((version << 4) | (ihl & 0xf));
    b[1] = tos;
    put16(&b[2], totalLen);
    put16(&b[4], id);
    put16(&b[6], fragOff);
    b[8] = ttl;
    b[9] = protocol;
    put16(&b[10], checksum);
    put32(&b[12], src);
    put32(&b[16], dst);
    return b;
}

std::string
ipToString(std::uint32_t addr)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                  (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
    return buf;
}

} // namespace clumsy::net
