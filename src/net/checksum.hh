/**
 * @file
 * Internet checksum utilities (RFC 1071) plus the incremental update
 * rule routers apply when they decrement the TTL (RFC 1624).
 */

#ifndef CLUMSY_NET_CHECKSUM_HH
#define CLUMSY_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace clumsy::net
{

/**
 * RFC 1071 internet checksum over a byte span (one's-complement sum of
 * 16-bit network-order words, complemented). Odd lengths are padded
 * with a zero byte.
 */
std::uint16_t internetChecksum(const std::uint8_t *data, std::size_t len);

/**
 * RFC 1624 incremental checksum update after one 16-bit field changes
 * from oldWord to newWord.
 */
std::uint16_t incrementalChecksum(std::uint16_t oldSum,
                                  std::uint16_t oldWord,
                                  std::uint16_t newWord);

} // namespace clumsy::net

#endif // CLUMSY_NET_CHECKSUM_HH
