#include "net/checksum.hh"

namespace clumsy::net
{

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
    if (i < len)
        sum += std::uint32_t{data[i]} << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t
incrementalChecksum(std::uint16_t oldSum, std::uint16_t oldWord,
                    std::uint16_t newWord)
{
    // RFC 1624, eqn. 3: HC' = ~(~HC + ~m + m')
    std::uint32_t sum = static_cast<std::uint16_t>(~oldSum);
    sum += static_cast<std::uint16_t>(~oldWord);
    sum += newWord;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

} // namespace clumsy::net
