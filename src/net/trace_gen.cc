#include "net/trace_gen.hh"

#include <cstdio>

#include "common/logging.hh"
#include "net/checksum.hh"

namespace clumsy::net
{

namespace
{

const char *const kUrlStems[] = {
    "/index.html",  "/images/logo.gif", "/api/v1/items", "/static/app.js",
    "/cart",        "/search",          "/login",        "/media/video",
    "/docs/manual", "/feed.xml",
};

} // namespace

void
TraceConfig::validate() const
{
    if (numFlows == 0)
        fatal("trace flows must be >= 1 (numFlows=0)");
    if (numDestinations == 0)
        fatal("trace needs at least one destination "
              "(numDestinations=0)");
    if (minPayload > maxPayload)
        fatal("payload bounds inverted (min %u > max %u)", minPayload,
              maxPayload);
    if (destZipf < 0.0)
        fatal("destination Zipf exponent must be >= 0, got %g",
              destZipf);
    if (flowZipf < 0.0)
        fatal("flow Zipf exponent must be >= 0, got %g", flowZipf);
    if (httpPayloads && numUrls == 0)
        fatal("HTTP payloads need at least one URL (numUrls=0)");
    if (churn.meanLifetimePackets < 1.0)
        fatal("mean flow lifetime must be >= 1 packet, got %g",
              churn.meanLifetimePackets);
    if (churn.burstAlpha <= 0.0)
        fatal("burst tail exponent must be > 0, got %g",
              churn.burstAlpha);
    if (churn.minBurst == 0)
        fatal("min burst must be >= 1 packet");
    if (churn.offGapFactor < 0.0)
        fatal("off-gap factor must be >= 0, got %g",
              churn.offGapFactor);
    if (churn.rampStartFactor <= 0.0)
        fatal("ramp start factor must be > 0, got %g",
              churn.rampStartFactor);
}

std::vector<std::uint32_t>
TraceGenerator::makeDestPool(const TraceConfig &config)
{
    Rng rng(config.poolSeed);
    std::vector<std::uint32_t> pool;
    pool.reserve(config.numDestinations);
    for (std::uint32_t i = 0; i < config.numDestinations; ++i) {
        // Public-looking 192/8-ish pool; the 10/8 private space is
        // reserved for NAT-translated sources.
        const auto r = static_cast<std::uint32_t>(rng.next());
        pool.push_back(0xc0000000u | (r & 0x00ffffffu));
    }
    return pool;
}

std::vector<std::string>
TraceGenerator::makeUrlPool(const TraceConfig &config)
{
    std::vector<std::string> pool;
    pool.reserve(config.numUrls);
    const unsigned stems = sizeof(kUrlStems) / sizeof(kUrlStems[0]);
    for (std::uint32_t i = 0; i < config.numUrls; ++i) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s?id=%u", kUrlStems[i % stems],
                      i);
        pool.emplace_back(buf);
    }
    return pool;
}

TraceGenerator::TraceGenerator(TraceConfig config)
    : config_(config), rng_(config.seed)
{
    config_.validate();

    destPool_ = makeDestPool(config_);

    flows_.reserve(config_.numFlows);
    for (std::uint32_t i = 0; i < config_.numFlows; ++i)
        flows_.push_back(drawFlow(rng_));

    if (config_.httpPayloads)
        urlPool_ = makeUrlPool(config_);
}

FlowTuple
TraceGenerator::drawFlow(Rng &rng) const
{
    FlowTuple f;
    // Private 10/8 sources (what NAT translates).
    f.src = 0x0a000000u |
            (static_cast<std::uint32_t>(rng.next()) & 0x00ffffffu);
    const auto destIdx = rng.zipf(destPool_.size(), config_.destZipf);
    f.dst = destPool_[destIdx - 1];
    f.srcPort = static_cast<std::uint16_t>(1024 + rng.below(60000));
    f.dstPort = rng.bernoulli(0.6)
                    ? 80
                    : static_cast<std::uint16_t>(1 + rng.below(1023));
    f.protocol = rng.bernoulli(0.7)
                     ? static_cast<std::uint8_t>(IpProto::Tcp)
                     : static_cast<std::uint8_t>(IpProto::Udp);
    return f;
}

Packet
TraceGenerator::emit(const FlowTuple &flow)
{
    Packet pkt;
    pkt.seq = seq_++;

    pkt.ip.src = flow.src;
    pkt.ip.dst = flow.dst;
    pkt.ip.protocol = flow.protocol;
    pkt.ip.ttl = static_cast<std::uint8_t>(32 + rng_.below(96));
    pkt.ip.id = static_cast<std::uint16_t>(rng_.next());
    pkt.srcPort = flow.srcPort;
    pkt.dstPort = flow.dstPort;

    if (config_.httpPayloads) {
        const auto urlIdx = rng_.zipf(urlPool_.size(), 1.0) - 1;
        const std::string &url = urlPool_[urlIdx];
        std::string req = "GET " + url + " HTTP/1.0\r\nHost: h\r\n\r\n";
        pkt.payload.assign(req.begin(), req.end());
    } else {
        const std::uint32_t len =
            config_.minPayload +
            static_cast<std::uint32_t>(rng_.below(
                config_.maxPayload - config_.minPayload + 1));
        pkt.payload.resize(len);
        for (auto &b : pkt.payload)
            b = static_cast<std::uint8_t>(rng_.next());
    }

    pkt.ip.totalLen = static_cast<std::uint16_t>(pkt.wireBytes());
    // Compute the wire checksum over the header with checksum = 0.
    pkt.ip.checksum = 0;
    const auto hdr = pkt.ip.toBytes();
    pkt.ip.checksum = internetChecksum(hdr.data(), hdr.size());
    return pkt;
}

Packet
TraceGenerator::next()
{
    // Pick a flow with Zipf popularity (hot flows dominate, as in
    // real traces).
    const auto flowIdx = rng_.zipf(flows_.size(), config_.flowZipf) - 1;
    return emit(flows_[flowIdx]);
}

std::vector<Packet>
TraceGenerator::generate(std::uint64_t n)
{
    std::vector<Packet> trace;
    trace.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        trace.push_back(next());
    return trace;
}

} // namespace clumsy::net
