#include "net/trace_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "net/checksum.hh"

namespace clumsy::net
{

namespace
{

const char *const kMagic = "clumsy-trace v1";

std::string
toHex(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.empty())
        return "-";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const auto b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::vector<std::uint8_t>
fromHex(const std::string &hex, std::size_t lineNo)
{
    if (hex == "-")
        return {};
    if (hex.size() % 2 != 0)
        fatal("trace line %zu: odd-length payload hex", lineNo);
    std::vector<std::uint8_t> bytes;
    bytes.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            fatal("trace line %zu: bad payload hex", lineNo);
        bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return bytes;
}

} // namespace

void
writeTraceHeader(std::ostream &os)
{
    os << kMagic << '\n';
}

void
writePacket(std::ostream &os, const Packet &p)
{
    os << std::dec << p.seq << ' ' << std::hex << p.ip.src << ' '
       << p.ip.dst << ' ' << static_cast<unsigned>(p.ip.ttl) << ' '
       << p.ip.id << ' ' << static_cast<unsigned>(p.ip.protocol) << ' '
       << p.srcPort << ' ' << p.dstPort << ' ' << toHex(p.payload)
       << '\n';
}

void
writeTrace(std::ostream &os, const std::vector<Packet> &trace)
{
    writeTraceHeader(os);
    for (const Packet &p : trace)
        writePacket(os, p);
}

void
saveTrace(const std::string &path, const std::vector<Packet> &trace)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    writeTrace(os, trace);
    if (!os)
        fatal("error while writing trace file '%s'", path.c_str());
}

std::vector<Packet>
readTrace(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        fatal("not a clumsy trace (missing '%s' header)", kMagic);

    std::vector<Packet> trace;
    std::size_t lineNo = 1;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::istringstream ss(line);
        Packet p;
        unsigned ttl = 0, proto = 0;
        std::string payloadHex;
        ss >> std::dec >> p.seq >> std::hex >> p.ip.src >> p.ip.dst >>
            ttl >> p.ip.id >> proto >> p.srcPort >> p.dstPort >>
            payloadHex;
        if (!ss)
            fatal("trace line %zu: malformed packet record", lineNo);
        p.ip.ttl = static_cast<std::uint8_t>(ttl);
        p.ip.protocol = static_cast<std::uint8_t>(proto);
        p.payload = fromHex(payloadHex, lineNo);
        p.ip.totalLen = static_cast<std::uint16_t>(p.wireBytes());
        p.ip.checksum = 0;
        const auto hdr = p.ip.toBytes();
        p.ip.checksum = internetChecksum(hdr.data(), hdr.size());
        trace.push_back(std::move(p));
    }
    return trace;
}

std::vector<Packet>
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open trace file '%s'", path.c_str());
    return readTrace(is);
}

} // namespace clumsy::net
