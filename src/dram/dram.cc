#include "dram/dram.hh"

#include "common/logging.hh"

namespace clumsy::dram
{

void
DramConfig::validate() const
{
    if (banks == 0)
        return; // model off; nothing else is consulted
    if (rowBytes == 0 || (rowBytes & (rowBytes - 1)) != 0)
        fatal("dram row bytes must be a power of two, got %u", rowBytes);
    if (rowHitCycles < 1)
        fatal("dram row-hit latency must be >= 1 cycle");
    if (rowMissCycles < rowHitCycles)
        fatal("dram row-miss latency must be >= the row-hit latency");
    if (rowConflictCycles < rowMissCycles)
        fatal("dram row-conflict latency must be >= the row-miss "
              "latency");
}

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    config_.validate();
    CLUMSY_ASSERT(config_.banks >= 1,
                  "DramModel constructed with the model disabled");
    busyUntil_.assign(config_.banks, 0);
    openRow_.assign(config_.banks, -1);
    stats_.bankAccesses.assign(config_.banks, 0);
}

Quanta
DramModel::access(std::uint64_t addr, Quanta reqTime)
{
    const unsigned bank = bankOf(addr);
    const std::int64_t row = static_cast<std::int64_t>(rowOf(addr));

    // Bank-conflict serialization: the access waits for the bank.
    const Quanta start =
        reqTime > busyUntil_[bank] ? reqTime : busyUntil_[bank];

    std::int64_t latencyCycles;
    if (openRow_[bank] == row) {
        latencyCycles = config_.rowHitCycles;
        ++stats_.rowHits;
    } else if (openRow_[bank] < 0) {
        latencyCycles = config_.rowMissCycles;
        ++stats_.rowMisses;
    } else {
        latencyCycles = config_.rowConflictCycles;
        ++stats_.rowConflicts;
    }
    ++stats_.accesses;
    ++stats_.bankAccesses[bank];

    const Quanta done = start + cyclesToQuanta(latencyCycles);
    busyUntil_[bank] = done;
    openRow_[bank] = row;
    return done;
}

} // namespace clumsy::dram
