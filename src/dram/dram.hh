/**
 * @file
 * Analytical bank-aware DRAM timing model (cacti-lite style).
 *
 * The hierarchy historically charged every L2 miss one flat
 * HierarchyConfig::memCycles penalty. That is fine for a single chip —
 * misses are serialized by the shared L2 port anyway — but a line card
 * runs N chips against one DRAM, and what chips contend on is *banks*:
 * two misses to different rows of the same bank serialize and pay a
 * precharge+activate, while misses that land in an open row pay only
 * the column access. Ramulator-class cycle accuracy is out of scope
 * (PAPERS.md keeps it as the accuracy yardstick); what matters for the
 * card-level questions — how much does adding chips degrade each
 * chip, and how does bank count move the knee — is captured by three
 * analytical latencies and per-bank open-row state:
 *
 *  - row hit:      the addressed row is open in its bank buffer.
 *  - row miss:     the bank's row buffer is closed (first touch).
 *  - row conflict: another row is open; precharge + activate first.
 *
 * Each bank keeps a busy-until timestamp; an access to a busy bank
 * starts when the bank frees (bank-conflict serialization), and its
 * completion re-busies the bank for the latency class it hit. The
 * model is a pure function of the (address, request-time) sequence it
 * is fed, which is what lets the line card replay the same sequence at
 * any host-thread count and get byte-identical timing.
 *
 * The flat penalty stays as the *floor*: the card pins the hierarchy's
 * memCycles to rowHitCycles, and DramModel::extraQuanta() returns the
 * latency beyond that floor (>= 0 always), which the shared L2 port
 * folds into the requester's stall the same way it folds port queuing.
 */

#ifndef CLUMSY_DRAM_DRAM_HH
#define CLUMSY_DRAM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace clumsy::dram
{

/** Geometry and latency classes of one DRAM device. */
struct DramConfig
{
    /**
     * Independent banks. 0 disables the model entirely — the
     * hierarchy's flat memCycles penalty stands alone, byte-identical
     * to the pre-DRAM simulator.
     */
    unsigned banks = 8;

    /** Bytes per row (the row-buffer size). */
    std::uint32_t rowBytes = 2048;

    /**
     * Column access into an open row, base cycles. Defaults to the
     * historical flat memCycles (mem::HierarchyConfig), so a DRAM
     * where every access row-hits adds zero latency over the flat
     * model.
     */
    std::int64_t rowHitCycles = 60;

    /** Activate + column access on a closed bank, base cycles. */
    std::int64_t rowMissCycles = 90;

    /** Precharge + activate + column access, base cycles. */
    std::int64_t rowConflictCycles = 135;

    /** fatal()s with a parameter-naming message when out of range. */
    void validate() const;
};

/** Access counters; hits + misses + conflicts == accesses always. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;

    /** Accesses per bank (bank-pressure observability). */
    std::vector<std::uint64_t> bankAccesses;
};

/**
 * The device model: per-bank busy-until timestamps and open-row
 * tracking. Purely serial — callers (the line card's DRAM fabric)
 * serialize access() calls into the deterministic commit order.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config);

    /** Bank index an address maps to. */
    unsigned bankOf(std::uint64_t addr) const
    {
        return static_cast<unsigned>((addr / config_.rowBytes) %
                                     config_.banks);
    }

    /** Row index within its bank an address maps to. */
    std::uint64_t rowOf(std::uint64_t addr) const
    {
        return addr / (static_cast<std::uint64_t>(config_.rowBytes) *
                       config_.banks);
    }

    /**
     * Perform one access and return its completion time (quanta).
     * Starts when the bank frees (never before @p reqTime), pays the
     * hit/miss/conflict latency, leaves the row open and the bank
     * busy until completion.
     */
    Quanta access(std::uint64_t addr, Quanta reqTime);

    /**
     * One access's latency *beyond* the flat rowHitCycles floor the
     * hierarchy already charged: (completion - reqTime) -
     * cyclesToQuanta(rowHitCycles). Always >= 0.
     */
    Quanta extraQuanta(std::uint64_t addr, Quanta reqTime)
    {
        return access(addr, reqTime) - reqTime -
               cyclesToQuanta(config_.rowHitCycles);
    }

    const DramConfig &config() const { return config_; }

    const DramStats &stats() const { return stats_; }

  private:
    DramConfig config_;
    std::vector<Quanta> busyUntil_;       ///< per-bank
    std::vector<std::int64_t> openRow_;   ///< per-bank, -1 = closed
    DramStats stats_;
};

/**
 * What a chip's shared L2 port calls per DRAM line transfer. The
 * direct implementation below wraps one DramModel for single-chip use
 * and tests; the line card's fabric implementation additionally
 * serializes chips into (time, chip) commit order.
 */
class DramGateway
{
  public:
    virtual ~DramGateway() = default;

    /**
     * One line transfer from DRAM: @p addr is the physical address
     * (the card salts in the chip offset), @p reqTime the chip time
     * the port would complete the transfer under the flat model.
     * Returns the extra stall quanta beyond the flat penalty (>= 0).
     */
    virtual Quanta request(std::uint64_t addr, Quanta reqTime) = 0;
};

/** A gateway over one private DramModel (single chip, no protocol). */
class DirectDramGateway final : public DramGateway
{
  public:
    explicit DirectDramGateway(const DramConfig &config)
        : model_(config)
    {
    }

    Quanta request(std::uint64_t addr, Quanta reqTime) override
    {
        return model_.extraQuanta(addr, reqTime);
    }

    const DramModel &model() const { return model_; }

  private:
    DramModel model_;
};

} // namespace clumsy::dram

#endif // CLUMSY_DRAM_DRAM_HH
