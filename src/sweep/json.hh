/**
 * @file
 * Minimal deterministic JSON emitter.
 *
 * The sweep sinks (and clumsy_sim --json) need JSON output that is
 * byte-for-byte reproducible: doubles are printed in their shortest
 * round-trip decimal form via std::to_chars, keys are emitted in the
 * order the caller writes them, and there is no locale dependence.
 * Writing is append-only into a growing string; the writer tracks
 * nesting solely to place commas, so malformed sequences are caught
 * by assertions rather than producing broken output.
 */

#ifndef CLUMSY_SWEEP_JSON_HH
#define CLUMSY_SWEEP_JSON_HH

#include <cstdint>
#include <string>

namespace clumsy::sweep
{

/** Escape a string for inclusion inside JSON quotes. */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip decimal text for a finite double. */
std::string jsonNumber(double v);

/** Append-only JSON builder with automatic comma placement. */
class JsonWriter
{
  public:
    /**
     * @param indentStep  spaces per nesting level; 0 emits compact
     *                    single-line JSON (used for per-cell lines)
     */
    explicit JsonWriter(unsigned indentStep = 0)
        : indentStep_(indentStep)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a "key": inside the current object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);

    /** Splice pre-rendered JSON (e.g. a stored result line) as-is. */
    JsonWriter &raw(const std::string &json);

    /** The document so far. */
    const std::string &str() const { return out_; }

  private:
    std::string out_;
    unsigned indentStep_;
    unsigned depth_ = 0;
    bool needComma_ = false;
    bool afterKey_ = false;

    void separate();
    void newlineIndent();
};

} // namespace clumsy::sweep

#endif // CLUMSY_SWEEP_JSON_HH
