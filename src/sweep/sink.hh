/**
 * @file
 * Result sinks for the sweep engine.
 *
 * The JSON document is the engine's canonical machine-readable
 * output. Layout (one result object per line, so the file diffs and
 * resumes cleanly):
 *
 *   {
 *     "format": "clumsy-sweep-v1",
 *     "spec": "<canonical grid string>",
 *     "cells": N,
 *     "provenance": {"git": "...", "jobs": J, "wall_ms": T},
 *     "results": [
 *       {"key": "app=...;cr=...", ..., "result": {...}, "wall_ms": X},
 *       ...
 *     ]
 *   }
 *
 * Everything outside "provenance" and the per-cell "wall_ms" fields
 * is a pure function of the spec, so rendering with provenance
 * disabled yields byte-identical documents for any worker count —
 * the property the determinism tests pin down.
 *
 * loadCompletedCells() re-parses a previously written document so
 * --resume can skip finished cells and still emit a complete merged
 * file.
 */

#ifndef CLUMSY_SWEEP_SINK_HH
#define CLUMSY_SWEEP_SINK_HH

#include <cstdint>
#include <map>
#include <string>

#include "linecard/card.hh"
#include "sweep/runner.hh"

namespace clumsy::sweep
{

/**
 * Render the full JSON document. @p provenance controls the
 * run-environment fields (git describe, job count, wall times); with
 * it off the document depends only on the spec and the simulation.
 */
std::string renderJson(const SweepOutcome &outcome, bool provenance);

/** Render a flat CSV table, one row per cell, same cell order. */
std::string renderCsv(const SweepOutcome &outcome);

/**
 * Serialize one ExperimentResult as a compact JSON object (golden
 * metrics + trial aggregates). Shared with clumsy_sim --json.
 */
std::string experimentResultJson(const core::ExperimentResult &res);

/**
 * Serialize one ChipMetrics as a compact JSON object. Shared with
 * clumsy_npu --json so both emitters stay field-for-field identical.
 */
std::string chipMetricsJson(const npu::ChipMetrics &metrics);

/**
 * Serialize one CardMetrics as a compact JSON object. Shared with
 * clumsy_card --json so both emitters stay field-for-field identical.
 */
std::string cardMetricsJson(const linecard::CardMetrics &metrics);

/** Zero-padded 16-digit lowercase hex (for value digests). */
std::string hexU64(std::uint64_t v);

/**
 * Parse the "results" entries of a previously written sweep JSON
 * file into outcomes keyed by cell key. Returns an empty map when
 * the file does not exist; fatal()s when it exists but is not a
 * clumsy-sweep document.
 */
std::map<std::string, CellOutcome>
loadCompletedCells(const std::string &path);

/** Write @p content to @p path, fatal()ing on I/O failure. */
void writeFile(const std::string &path, const std::string &content);

/** `git describe --always --dirty`, or "unknown" outside a repo. */
std::string gitDescribe();

} // namespace clumsy::sweep

#endif // CLUMSY_SWEEP_SINK_HH
