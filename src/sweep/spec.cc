#include "sweep/spec.hh"

#include <algorithm>
#include <charconv>

#include "apps/app.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "fault/fault_map.hh"

namespace clumsy::sweep
{

std::string
schemeName(mem::RecoveryScheme scheme)
{
    std::string s = mem::to_string(scheme);
    std::replace(s.begin(), s.end(), ' ', '-');
    return s;
}

mem::RecoveryScheme
schemeFromName(const std::string &name)
{
    return mem::recoverySchemeFromString(
        name == "no-detection" ? "no detection" : name);
}

namespace
{

/** All app names the grid accepts (paper set + extensions). */
std::vector<std::string>
knownApps()
{
    std::vector<std::string> names = apps::allAppNames();
    const auto &ext = apps::extensionAppNames();
    names.insert(names.end(), ext.begin(), ext.end());
    return names;
}

template <typename T>
std::string
joinDim(const std::vector<T> &values,
        std::string (*format)(const T &))
{
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ",";
        out += format(values[i]);
    }
    return out;
}

} // namespace

std::string
formatDouble(double v)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    CLUMSY_ASSERT(res.ec == std::errc(), "double format overflow");
    return std::string(buf, res.ptr);
}

std::string
to_string(const OperatingPoint &point)
{
    return point.dynamic ? "dynamic" : formatDouble(point.cr);
}

std::string
codecName(mem::CheckCodec codec)
{
    return codec == mem::CheckCodec::Secded ? "secded" : "parity";
}

mem::CheckCodec
codecFromString(const std::string &name)
{
    if (name == "parity")
        return mem::CheckCodec::Parity;
    if (name == "secded")
        return mem::CheckCodec::Secded;
    fatal("unknown codec '%s' (expected parity or secded)",
          name.c_str());
}

std::string
planeName(core::FaultPlane plane)
{
    switch (plane) {
      case core::FaultPlane::ControlOnly:
        return "control";
      case core::FaultPlane::DataOnly:
        return "data";
      case core::FaultPlane::Both:
        return "both";
    }
    panic("unreachable fault plane");
}

core::FaultPlane
planeFromString(const std::string &name)
{
    if (name == "control")
        return core::FaultPlane::ControlOnly;
    if (name == "data")
        return core::FaultPlane::DataOnly;
    if (name == "both")
        return core::FaultPlane::Both;
    fatal("unknown fault plane '%s' (expected both, control or data)",
          name.c_str());
}

SweepSpec
SweepSpec::parse(const std::string &grid)
{
    SweepSpec spec;
    spec.apps = apps::allAppNames();

    for (const std::string &pair : cli::split(grid, ';')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            fatal("grid entry '%s' is not key=value", pair.c_str());
        const std::string key = pair.substr(0, eq);
        const std::vector<std::string> values =
            cli::split(pair.substr(eq + 1), ',');
        if (values.empty())
            fatal("grid key '%s' has no values", key.c_str());
        auto scalar = [&]() -> const std::string & {
            if (values.size() != 1)
                fatal("grid key '%s' takes a single value",
                      key.c_str());
            return values[0];
        };

        if (key == "app") {
            if (values.size() == 1 && values[0] == "all") {
                spec.apps = apps::allAppNames();
            } else {
                const auto known = knownApps();
                for (const std::string &v : values) {
                    if (std::find(known.begin(), known.end(), v) ==
                        known.end())
                        fatal("unknown app '%s' in grid", v.c_str());
                }
                spec.apps = values;
            }
        } else if (key == "cr") {
            spec.points.clear();
            for (const std::string &v : values) {
                if (v == "dynamic") {
                    spec.points.push_back({1.0, true});
                } else {
                    const double cr = cli::parseDouble("cr", v);
                    if (cr <= 0.0)
                        fatal("cr must be positive, got %s", v.c_str());
                    spec.points.push_back({cr, false});
                }
            }
        } else if (key == "scheme") {
            spec.schemes.clear();
            if (values.size() == 1 && values[0] == "all") {
                spec.schemes.assign(
                    std::begin(mem::kAllRecoverySchemes),
                    std::end(mem::kAllRecoverySchemes));
            } else {
                for (const std::string &v : values)
                    spec.schemes.push_back(schemeFromName(v));
            }
        } else if (key == "codec") {
            spec.codecs.clear();
            for (const std::string &v : values)
                spec.codecs.push_back(codecFromString(v));
        } else if (key == "plane") {
            spec.planes.clear();
            for (const std::string &v : values)
                spec.planes.push_back(planeFromString(v));
        } else if (key == "fault-scale") {
            spec.faultScales.clear();
            for (const std::string &v : values) {
                const double s = cli::parseDouble("fault-scale", v);
                if (s < 0.0)
                    fatal("fault-scale must be >= 0, got %s",
                          v.c_str());
                spec.faultScales.push_back(s);
            }
        } else if (key == "pes") {
            spec.peCounts.clear();
            for (const std::string &v : values) {
                const std::uint64_t n = cli::parseU64("pes", v);
                if (n == 0)
                    fatal("pes must be >= 1");
                spec.peCounts.push_back(static_cast<unsigned>(n));
            }
        } else if (key == "dispatch") {
            spec.dispatches.clear();
            for (const std::string &v : values)
                spec.dispatches.push_back(npu::dispatchFromString(v));
        } else if (key == "per-pe-cr") {
            spec.perPeCrs.clear();
            for (const std::string &v : values) {
                if (v == "uniform") {
                    spec.perPeCrs.push_back("");
                    continue;
                }
                for (const std::string &cr : cli::split(v, ':')) {
                    const double x = cli::parseDouble("per-pe-cr", cr);
                    if (x <= 0.0 || x > 1.0)
                        fatal("per-pe-cr entry %s outside (0, 1]",
                              cr.c_str());
                }
                spec.perPeCrs.push_back(v);
            }
        } else if (key == "dvs") {
            spec.dvsModes.clear();
            for (const std::string &v : values)
                spec.dvsModes.push_back(npu::dvsFromString(v));
        } else if (key == "mshrs") {
            spec.mshrs.clear();
            for (const std::string &v : values) {
                const std::uint64_t n = cli::parseU64("mshrs", v);
                if (n == 0)
                    fatal("mshrs must be >= 1");
                spec.mshrs.push_back(static_cast<unsigned>(n));
            }
        } else if (key == "l2") {
            spec.l2Modes.clear();
            for (const std::string &v : values)
                spec.l2Modes.push_back(npu::l2ModeFromString(v));
        } else if (key == "gap") {
            spec.arrivalGaps.clear();
            for (const std::string &v : values)
                spec.arrivalGaps.push_back(
                    static_cast<std::int64_t>(cli::parseU64("gap", v)));
        } else if (key == "chip-jobs") {
            spec.chipJobs.clear();
            for (const std::string &v : values)
                spec.chipJobs.push_back(static_cast<unsigned>(
                    cli::parseU64("chip-jobs", v)));
        } else if (key == "chips") {
            spec.chips.clear();
            for (const std::string &v : values) {
                const std::uint64_t n = cli::parseU64("chips", v);
                if (n == 0)
                    fatal("chips must be >= 1");
                spec.chips.push_back(static_cast<unsigned>(n));
            }
        } else if (key == "dram-banks") {
            // 0 is the model-off sentinel (what toGridString prints
            // for an unswept axis), so grids round-trip.
            spec.dramBanks.clear();
            for (const std::string &v : values)
                spec.dramBanks.push_back(static_cast<unsigned>(
                    cli::parseU64("dram-banks", v)));
        } else if (key == "card-jobs") {
            spec.cardJobs.clear();
            for (const std::string &v : values)
                spec.cardJobs.push_back(static_cast<unsigned>(
                    cli::parseU64("card-jobs", v)));
        } else if (key == "flows") {
            // 0 is the app-default sentinel (what toGridString prints
            // for an unswept axis), so grids round-trip; the tools'
            // --flows flag still rejects 0 outright.
            spec.flows.clear();
            for (const std::string &v : values)
                spec.flows.push_back(static_cast<std::uint32_t>(
                    cli::parseU64("flows", v)));
        } else if (key == "churn") {
            spec.churns.clear();
            for (const std::string &v : values)
                spec.churns.push_back(cli::parseU64("churn", v));
        } else if (key == "faultmap") {
            // "off" is the uniform-model sentinel (what toGridString
            // prints for an unswept axis), so grids round-trip.
            spec.faultMaps.clear();
            for (const std::string &v : values) {
                (void)fault::faultMapSpecFromString(v); // validates
                spec.faultMaps.push_back(v);
            }
        } else if (key == "retire") {
            spec.retires.clear();
            for (const std::string &v : values)
                spec.retires.push_back(static_cast<unsigned>(
                    cli::parseU64("retire", v)));
        } else if (key == "ctrl") {
            // 0 is the no-control-plane sentinel (what toGridString
            // prints for an unswept axis), so grids round-trip.
            spec.ctrlRates.clear();
            for (const std::string &v : values)
                spec.ctrlRates.push_back(static_cast<std::uint32_t>(
                    cli::parseU64("ctrl", v)));
        } else if (key == "updates") {
            spec.updateMixes.clear();
            for (const std::string &v : values)
                spec.updateMixes.push_back(ctrl::mixFromString(v));
        } else if (key == "packets") {
            spec.packets = cli::parseU64("packets", scalar());
        } else if (key == "trials") {
            spec.trials =
                static_cast<unsigned>(cli::parseU64("trials", scalar()));
            if (spec.trials == 0)
                fatal("trials must be >= 1");
        } else if (key == "seed") {
            spec.traceSeed = cli::parseU64("seed", scalar());
        } else if (key == "fault-seed") {
            spec.faultSeed = cli::parseU64("fault-seed", scalar());
        } else if (key == "map-seed") {
            spec.mapSeed = cli::parseU64("map-seed", scalar());
        } else {
            fatal("unknown grid key '%s'", key.c_str());
        }
    }
    return spec;
}

std::string
SweepSpec::toGridString() const
{
    std::string out = "app=";
    for (std::size_t i = 0; i < apps.size(); ++i)
        out += (i ? "," : "") + apps[i];
    out += ";cr=" +
           joinDim<OperatingPoint>(points,
                                   [](const OperatingPoint &p) {
                                       return to_string(p);
                                   });
    out += ";scheme=" +
           joinDim<mem::RecoveryScheme>(
               schemes,
               [](const mem::RecoveryScheme &s) {
                   return schemeName(s);
               });
    out += ";codec=" +
           joinDim<mem::CheckCodec>(codecs,
                                    [](const mem::CheckCodec &c) {
                                        return codecName(c);
                                    });
    out += ";plane=" +
           joinDim<core::FaultPlane>(planes,
                                     [](const core::FaultPlane &p) {
                                         return planeName(p);
                                     });
    out += ";fault-scale=" +
           joinDim<double>(faultScales, [](const double &s) {
               return formatDouble(s);
           });
    out += ";pes=" + joinDim<unsigned>(peCounts, [](const unsigned &n) {
               return std::to_string(n);
           });
    out += ";dispatch=" +
           joinDim<npu::DispatchPolicy>(
               dispatches, [](const npu::DispatchPolicy &d) {
                   return npu::to_string(d);
               });
    out += ";per-pe-cr=" +
           joinDim<std::string>(perPeCrs, [](const std::string &s) {
               return s.empty() ? std::string("uniform") : s;
           });
    out += ";dvs=" +
           joinDim<npu::DvsMode>(dvsModes, [](const npu::DvsMode &m) {
               return npu::to_string(m);
           });
    out += ";mshrs=" + joinDim<unsigned>(mshrs, [](const unsigned &n) {
               return std::to_string(n);
           });
    out += ";l2=" +
           joinDim<npu::L2Mode>(l2Modes, [](const npu::L2Mode &m) {
               return npu::to_string(m);
           });
    out += ";gap=" +
           joinDim<std::int64_t>(arrivalGaps, [](const std::int64_t &g) {
               return std::to_string(g);
           });
    out += ";chip-jobs=" +
           joinDim<unsigned>(chipJobs, [](const unsigned &j) {
               return std::to_string(j);
           });
    out += ";chips=" + joinDim<unsigned>(chips, [](const unsigned &n) {
               return std::to_string(n);
           });
    out += ";dram-banks=" +
           joinDim<unsigned>(dramBanks, [](const unsigned &n) {
               return std::to_string(n);
           });
    out += ";card-jobs=" +
           joinDim<unsigned>(cardJobs, [](const unsigned &j) {
               return std::to_string(j);
           });
    out += ";flows=" +
           joinDim<std::uint32_t>(flows, [](const std::uint32_t &n) {
               return std::to_string(n);
           });
    out += ";churn=" +
           joinDim<std::uint64_t>(churns, [](const std::uint64_t &n) {
               return std::to_string(n);
           });
    out += ";faultmap=" +
           joinDim<std::string>(faultMaps, [](const std::string &s) {
               return s;
           });
    out += ";retire=" + joinDim<unsigned>(retires, [](const unsigned &n) {
               return std::to_string(n);
           });
    out += ";ctrl=" +
           joinDim<std::uint32_t>(ctrlRates, [](const std::uint32_t &n) {
               return std::to_string(n);
           });
    out += ";updates=" +
           joinDim<ctrl::CtrlMix>(updateMixes, [](const ctrl::CtrlMix &m) {
               return ctrl::to_string(m);
           });
    out += ";packets=" + std::to_string(packets);
    out += ";trials=" + std::to_string(trials);
    out += ";seed=" + std::to_string(traceSeed);
    out += ";fault-seed=" + std::to_string(faultSeed);
    out += ";map-seed=" + std::to_string(mapSeed);
    return out;
}

std::size_t
SweepSpec::cellCount() const
{
    return apps.size() * points.size() * schemes.size() *
           codecs.size() * planes.size() * faultScales.size() *
           peCounts.size() * dispatches.size() * perPeCrs.size() *
           dvsModes.size() * mshrs.size() * l2Modes.size() *
           arrivalGaps.size() * chipJobs.size() * chips.size() *
           dramBanks.size() * cardJobs.size() * flows.size() *
           churns.size() * faultMaps.size() * retires.size() *
           ctrlRates.size() * updateMixes.size();
}

std::string
SweepCell::key() const
{
    std::string k = "app=" + app + ";cr=" + to_string(point) +
                    ";scheme=" + schemeName(scheme) +
                    ";codec=" + codecName(codec) +
                    ";plane=" + planeName(plane) +
                    ";fault-scale=" + formatDouble(faultScale);
    // Chip dimensions appear only when non-default so pre-npu result
    // files keep resuming against the unchanged historical keys; dvs
    // and mshrs elide at their defaults for the same reason (chip
    // result files written before those knobs existed).
    if (isNpu()) {
        k += ";pes=" + std::to_string(peCount) +
             ";dispatch=" + npu::to_string(dispatch) + ";per-pe-cr=" +
             (perPeCr.empty() ? std::string("uniform") : perPeCr);
        if (dvs != npu::DvsMode::Fault)
            k += ";dvs=" + npu::to_string(dvs);
        if (mshrs != 1)
            k += ";mshrs=" + std::to_string(mshrs);
        if (l2 != npu::L2Mode::Private)
            k += ";l2=" + npu::to_string(l2);
        if (arrivalGap != 0)
            k += ";gap=" + std::to_string(arrivalGap);
        if (chipJobs != 1)
            k += ";chip-jobs=" + std::to_string(chipJobs);
    }
    // Line-card dimensions appear only when the cell uses the card
    // tier, so every pre-linecard result file keeps resuming against
    // unchanged keys; within a card key, dram-banks and card-jobs
    // elide at their 0/1 defaults.
    if (isCard()) {
        k += ";chips=" + std::to_string(chips);
        if (dramBanks != 0)
            k += ";dram-banks=" + std::to_string(dramBanks);
        if (cardJobs != 1)
            k += ";card-jobs=" + std::to_string(cardJobs);
    }
    // Traffic dimensions apply to both harnesses; they elide at their
    // 0 (= app default) values so every pre-traffic result file keeps
    // resuming against unchanged keys.
    if (flows != 0)
        k += ";flows=" + std::to_string(flows);
    if (churn != 0)
        k += ";churn=" + std::to_string(churn);
    // Fault-map dimensions elide at their off/0 defaults so every
    // pre-faultmap result file keeps resuming against unchanged keys.
    if (faultMap != "off" && !faultMap.empty())
        k += ";faultmap=" + faultMap;
    if (retire != 0)
        k += ";retire=" + std::to_string(retire);
    // Control-plane dimensions elide entirely at rate 0 (the mix is
    // meaningless without a stream), so every pre-ctrl result file
    // keeps resuming against unchanged keys; the mix also elides at
    // its "all" default.
    if (ctrlRate != 0) {
        k += ";ctrl=" + std::to_string(ctrlRate);
        if (updates != ctrl::CtrlMix::All)
            k += ";updates=" + ctrl::to_string(updates);
    }
    return k;
}

std::vector<SweepCell>
expand(const SweepSpec &spec)
{
    CLUMSY_ASSERT(!spec.apps.empty() && !spec.points.empty() &&
                      !spec.schemes.empty() && !spec.codecs.empty() &&
                      !spec.planes.empty() &&
                      !spec.faultScales.empty() &&
                      !spec.peCounts.empty() &&
                      !spec.dispatches.empty() &&
                      !spec.perPeCrs.empty() &&
                      !spec.dvsModes.empty() && !spec.mshrs.empty() &&
                      !spec.l2Modes.empty() &&
                      !spec.arrivalGaps.empty() &&
                      !spec.chipJobs.empty() && !spec.chips.empty() &&
                      !spec.dramBanks.empty() &&
                      !spec.cardJobs.empty() && !spec.flows.empty() &&
                      !spec.churns.empty() && !spec.faultMaps.empty() &&
                      !spec.retires.empty() && !spec.ctrlRates.empty() &&
                      !spec.updateMixes.empty(),
                  "every grid dimension needs at least one value");
    std::vector<SweepCell> cells;
    cells.reserve(spec.cellCount());
    // Cartesian product in the canonical nesting order (outermost
    // first); the stacked loops keep fourteen dimensions readable.
    // clang-format off
    for (const std::string &app : spec.apps)
    for (const OperatingPoint &point : spec.points)
    for (const mem::RecoveryScheme scheme : spec.schemes)
    for (const mem::CheckCodec codec : spec.codecs)
    for (const core::FaultPlane plane : spec.planes)
    for (const double scale : spec.faultScales)
    for (const unsigned pes : spec.peCounts)
    for (const npu::DispatchPolicy dis : spec.dispatches)
    for (const std::string &ppc : spec.perPeCrs)
    for (const npu::DvsMode dvs : spec.dvsModes)
    for (const unsigned msh : spec.mshrs)
    for (const npu::L2Mode l2m : spec.l2Modes)
    for (const std::int64_t gap : spec.arrivalGaps)
    for (const unsigned cjobs : spec.chipJobs)
    for (const unsigned nchips : spec.chips)
    for (const unsigned banks : spec.dramBanks)
    for (const unsigned kjobs : spec.cardJobs)
    for (const std::uint32_t nflows : spec.flows)
    for (const std::uint64_t life : spec.churns)
    for (const std::string &fmap : spec.faultMaps)
    for (const unsigned ret : spec.retires)
    for (const std::uint32_t crate : spec.ctrlRates)
    for (const ctrl::CtrlMix cmix : spec.updateMixes) {
        SweepCell cell;
        cell.index = cells.size();
        cell.app = app;
        cell.point = point;
        cell.scheme = scheme;
        cell.codec = codec;
        cell.plane = plane;
        cell.faultScale = scale;
        cell.peCount = pes;
        cell.dispatch = dis;
        cell.perPeCr = ppc;
        cell.dvs = dvs;
        cell.mshrs = msh;
        cell.l2 = l2m;
        cell.arrivalGap = gap;
        cell.chipJobs = cjobs;
        cell.chips = nchips;
        cell.dramBanks = banks;
        cell.cardJobs = kjobs;
        cell.flows = nflows;
        cell.churn = life;
        cell.faultMap = fmap;
        cell.retire = ret;
        cell.ctrlRate = crate;
        cell.updates = cmix;
        cells.push_back(std::move(cell));
    }
    // clang-format on
    return cells;
}

core::ExperimentConfig
makeConfig(const SweepSpec &spec, const SweepCell &cell)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = spec.packets;
    cfg.trials = spec.trials;
    cfg.traceSeed = spec.traceSeed;
    cfg.faultSeed = spec.faultSeed;
    cfg.cr = cell.point.cr;
    cfg.dynamicFrequency = cell.point.dynamic;
    cfg.scheme = cell.scheme;
    cfg.plane = cell.plane;
    cfg.faultScale = cell.faultScale;
    cfg.processor.hierarchy.scheme = cell.scheme;
    cfg.processor.hierarchy.codec = cell.codec;
    cfg.traceFlows = cell.flows;
    cfg.churnLifetime = cell.churn;
    cfg.processor.faultMap = fault::faultMapSpecFromString(cell.faultMap);
    cfg.processor.faultMap.seed = spec.mapSeed;
    cfg.processor.hierarchy.wayDisable.retireThreshold = cell.retire;
    cfg.ctrl.rate = cell.ctrlRate;
    cfg.ctrl.mix = cell.updates;
    return cfg;
}

npu::NpuConfig
makeNpuConfig(const SweepCell &cell)
{
    npu::NpuConfig npuCfg;
    npuCfg.peCount = cell.peCount;
    npuCfg.dispatch = cell.dispatch;
    npuCfg.dvs = cell.dvs;
    npuCfg.mshrs = cell.mshrs;
    npuCfg.l2 = cell.l2;
    npuCfg.arrivalGapCycles = cell.arrivalGap;
    npuCfg.chipJobs = cell.chipJobs;
    if (!cell.perPeCr.empty()) {
        for (const std::string &cr : cli::split(cell.perPeCr, ':'))
            npuCfg.perPeCr.push_back(cli::parseDouble("per-pe-cr", cr));
        if (npuCfg.perPeCr.size() != cell.peCount)
            fatal("per-pe-cr '%s' names %zu engines but pes=%u",
                  cell.perPeCr.c_str(), npuCfg.perPeCr.size(),
                  cell.peCount);
    }
    return npuCfg;
}

linecard::CardConfig
makeCardConfig(const SweepCell &cell)
{
    linecard::CardConfig cardCfg;
    cardCfg.chips = cell.chips;
    cardCfg.dram.banks = cell.dramBanks;
    cardCfg.cardJobs = cell.cardJobs;
    return cardCfg;
}

} // namespace clumsy::sweep
