#include "sweep/runner.hh"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "apps/app.hh"
#include "common/logging.hh"
#include "common/pool.hh"

namespace clumsy::sweep
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

} // namespace

SweepOutcome
runSweep(const SweepSpec &spec, unsigned jobs,
         const std::map<std::string, CellOutcome> *completed,
         const ProgressFn &progress)
{
    CLUMSY_ASSERT(spec.trials >= 1, "sweep needs at least one trial");
    const auto sweepStart = Clock::now();
    const std::vector<SweepCell> cells = expand(spec);

    SweepOutcome outcome;
    outcome.spec = spec;
    outcome.jobs = jobs == 0 ? WorkStealingPool::hardwareWorkers()
                             : jobs;
    outcome.cells.resize(cells.size());

    // Partition into cells to run and cells satisfied by --resume.
    std::vector<std::size_t> toRun;
    toRun.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        CellOutcome &out = outcome.cells[i];
        if (completed) {
            auto it = completed->find(cells[i].key());
            if (it != completed->end()) {
                out = it->second;
                out.cell = cells[i]; // refresh index for this spec
                out.resumed = true;
                ++outcome.resumedCount;
                continue;
            }
        }
        out.cell = cells[i];
        toRun.push_back(i);
    }

    const WorkStealingPool pool(outcome.jobs);
    const unsigned trials = spec.trials;
    const std::size_t n = toRun.size();

    // Nested-parallelism budget: a cell's chip-jobs request (the
    // chip-jobs= axis) is clamped so sweep workers times chip workers
    // never oversubscribes the machine. Chip runs are byte-identical
    // across chip-jobs values, so the clamp changes scheduling only.
    auto cellNpuConfig = [&](const SweepCell &cell) {
        npu::NpuConfig npuCfg = makeNpuConfig(cell);
        npuCfg.chipJobs = WorkStealingPool::budgetedWorkers(
            npuCfg.chipJobs, outcome.jobs);
        return npuCfg;
    };

    // The card-jobs= axis gets the same budget treatment; card runs
    // are byte-identical across card-jobs values by contract.
    auto cellCardConfig = [&](const SweepCell &cell) {
        linecard::CardConfig cardCfg = makeCardConfig(cell);
        cardCfg.cardJobs = WorkStealingPool::budgetedWorkers(
            cardCfg.cardJobs, outcome.jobs);
        return cardCfg;
    };

    // Phase 1: one golden job per cell. The records are written once
    // here and only read afterwards, so phase 2 shares them freely.
    // Chip-model cells run the npu harness instead of the single-core
    // one; both produce RunMetrics, so the reduction is shared.
    std::vector<core::GoldenRecord> goldens(n);
    std::vector<std::unique_ptr<npu::ChipRun>> chipGoldens(n);
    std::vector<std::unique_ptr<linecard::CardRunResult>>
        cardGoldens(n);
    std::vector<double> goldenMs(n);
    pool.run(n, [&](std::size_t k) {
        const SweepCell &cell = cells[toRun[k]];
        const core::ExperimentConfig cfg = makeConfig(spec, cell);
        const auto start = Clock::now();
        if (cell.isCard()) {
            cardGoldens[k] =
                std::make_unique<linecard::CardRunResult>(
                    linecard::runCard(apps::appFactory(cell.app), cfg,
                                      cellNpuConfig(cell),
                                      cellCardConfig(cell), true, 0));
        } else if (cell.isNpu()) {
            chipGoldens[k] = std::make_unique<npu::ChipRun>(
                npu::runChipGolden(apps::appFactory(cell.app), cfg,
                                   cellNpuConfig(cell)));
        } else {
            goldens[k] =
                core::runGolden(apps::appFactory(cell.app), cfg);
        }
        goldenMs[k] = msSince(start);
    });

    // Phase 2: the (cell, trial) job grid. Each job seeds its own
    // fault stream from (config, trial), so placement is free.
    std::vector<core::RunMetrics> trialMetrics(n * trials);
    std::vector<npu::ChipMetrics> trialChips(n * trials);
    std::vector<linecard::CardMetrics> trialCards(n * trials);
    std::vector<double> trialMs(n * trials);
    std::vector<std::atomic<unsigned>> remaining(n);
    for (auto &r : remaining)
        r.store(trials, std::memory_order_relaxed);
    std::atomic<std::size_t> cellsDone{0};
    std::mutex progressMutex;

    pool.run(n * trials, [&](std::size_t j) {
        const std::size_t k = j / trials;
        const unsigned t = static_cast<unsigned>(j % trials);
        const SweepCell &cell = cells[toRun[k]];
        const core::ExperimentConfig cfg = makeConfig(spec, cell);
        const auto start = Clock::now();
        if (cell.isCard()) {
            const linecard::CardRunResult r = linecard::runCard(
                apps::appFactory(cell.app), cfg, cellNpuConfig(cell),
                cellCardConfig(cell), false, t);
            trialMetrics[j] = linecard::mergeCardRunMetrics(r);
            trialCards[j] = r.card;
        } else if (cell.isNpu()) {
            npu::ChipRun r = npu::runChipTrial(
                apps::appFactory(cell.app), cfg, cellNpuConfig(cell),
                t, *chipGoldens[k]);
            trialMetrics[j] = std::move(r.merged);
            trialChips[j] = std::move(r.chip);
        } else {
            trialMetrics[j] = core::runFaultyTrial(
                apps::appFactory(cell.app), cfg, t, goldens[k]);
        }
        trialMs[j] = msSince(start);
        if (remaining[k].fetch_sub(1, std::memory_order_acq_rel) ==
            1 && progress) {
            double cellMs = goldenMs[k];
            for (unsigned u = 0; u < trials; ++u)
                cellMs += trialMs[k * trials + u];
            const std::size_t done =
                cellsDone.fetch_add(1, std::memory_order_relaxed) + 1;
            std::lock_guard<std::mutex> lock(progressMutex);
            progress(cell, cellMs, done, n);
        }
    });

    // Reduction: cells in expansion order, trials in trial order —
    // the fixed order that makes the aggregates independent of the
    // schedule above.
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = toRun[k];
        std::vector<core::RunMetrics> ordered(
            trialMetrics.begin() +
                static_cast<std::ptrdiff_t>(k * trials),
            trialMetrics.begin() +
                static_cast<std::ptrdiff_t>((k + 1) * trials));
        CellOutcome &out = outcome.cells[i];
        if (cells[i].isCard()) {
            out.result = core::aggregateTrials(
                cells[i].app,
                core::GoldenRecord{
                    linecard::mergeCardRunMetrics(*cardGoldens[k]),
                    {}},
                ordered);
            out.hasCard = true;
            out.cardGolden = cardGoldens[k]->card;
            out.cardFaulty = linecard::averageCardMetrics(
                {trialCards.begin() +
                     static_cast<std::ptrdiff_t>(k * trials),
                 trialCards.begin() +
                     static_cast<std::ptrdiff_t>((k + 1) * trials)});
        } else if (cells[i].isNpu()) {
            out.result = core::aggregateTrials(
                cells[i].app,
                core::GoldenRecord{chipGoldens[k]->merged, {}},
                ordered);
            out.hasNpu = true;
            out.npuGolden = chipGoldens[k]->chip;
            out.npuFaulty = npu::averageChipMetrics(
                {trialChips.begin() +
                     static_cast<std::ptrdiff_t>(k * trials),
                 trialChips.begin() +
                     static_cast<std::ptrdiff_t>((k + 1) * trials)});
        } else {
            out.result = core::aggregateTrials(cells[i].app,
                                               goldens[k], ordered);
        }
        out.wallMs = goldenMs[k];
        for (unsigned t = 0; t < trials; ++t)
            out.wallMs += trialMs[k * trials + t];
    }

    outcome.wallMs = msSince(sweepStart);
    return outcome;
}

} // namespace clumsy::sweep
