/**
 * @file
 * Work-stealing thread pool for sweep jobs.
 *
 * run(n, fn) executes fn(0) .. fn(n-1) across the configured number
 * of workers and blocks until all jobs finish. Job indices are dealt
 * round-robin into per-worker deques; a worker drains its own deque
 * from the front and, when empty, steals from the back of its
 * neighbours. Because sweep jobs are whole simulations (milliseconds
 * to seconds each), stealing granularity is one job and the pool
 * spawns fresh threads per run() — scheduling overhead is noise next
 * to the work.
 *
 * Determinism contract: the pool guarantees nothing about execution
 * order, so callers must make jobs independent and write results into
 * per-index slots; any cross-job reduction happens after run()
 * returns, in index order.
 */

#ifndef CLUMSY_SWEEP_POOL_HH
#define CLUMSY_SWEEP_POOL_HH

#include <cstddef>
#include <functional>

namespace clumsy::sweep
{

/** Executes batches of indexed jobs on worker threads. */
class WorkStealingPool
{
  public:
    /**
     * @param workers  worker-thread count; 0 and 1 both mean "run
     *                 inline on the calling thread, no threads spawned"
     */
    explicit WorkStealingPool(unsigned workers);

    /** Run fn(0) .. fn(n-1); returns when every job has finished. */
    void run(std::size_t n,
             const std::function<void(std::size_t)> &fn) const;

    /** The effective worker count (>= 1). */
    unsigned workers() const { return workers_; }

    /** A sensible default worker count for this machine. */
    static unsigned hardwareWorkers();

  private:
    unsigned workers_;
};

} // namespace clumsy::sweep

#endif // CLUMSY_SWEEP_POOL_HH
