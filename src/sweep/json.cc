#include "sweep/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace clumsy::sweep
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    CLUMSY_ASSERT(std::isfinite(v), "JSON cannot carry %g", v);
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    CLUMSY_ASSERT(res.ec == std::errc(), "number format overflow");
    return std::string(buf, res.ptr);
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (needComma_)
        out_ += indentStep_ ? "," : ", ";
    if (depth_ > 0)
        newlineIndent();
}

void
JsonWriter::newlineIndent()
{
    if (indentStep_ == 0)
        return;
    out_ += "\n";
    out_.append(static_cast<std::size_t>(depth_) * indentStep_, ' ');
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += "{";
    ++depth_;
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    CLUMSY_ASSERT(depth_ > 0, "endObject() at depth 0");
    --depth_;
    if (needComma_)
        newlineIndent();
    out_ += "}";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += "[";
    ++depth_;
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    CLUMSY_ASSERT(depth_ > 0, "endArray() at depth 0");
    --depth_;
    if (needComma_)
        newlineIndent();
    out_ += "]";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    separate();
    out_ += "\"" + jsonEscape(name) + "\": ";
    afterKey_ = true;
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out_ += "\"" + jsonEscape(v) + "\"";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    out_ += jsonNumber(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ += std::to_string(v);
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    needComma_ = true;
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    out_ += json;
    needComma_ = true;
    return *this;
}

} // namespace clumsy::sweep
