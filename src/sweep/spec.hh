/**
 * @file
 * Declarative experiment-grid specification for the sweep engine.
 *
 * A SweepSpec is the cartesian product of up to six swept dimensions
 * (application, operating point, recovery scheme, check codec, fault
 * plane, fault-rate scale) plus the scalar knobs shared by every cell
 * (packets, trials, trace seed, fault seed). It round-trips through a
 * compact grid string:
 *
 *   app=route,md5;cr=1,0.5,dynamic;scheme=two-strike;trials=8
 *
 * Dimensions omitted from the string keep their single-value
 * defaults, so the paper's full Table I / Figures 9-12 grids and a
 * one-cell smoke run are expressed in the same language. Expansion
 * order is fixed (the nesting order of the fields below), which gives
 * every cell a stable index and canonical key — the anchor for the
 * deterministic reduction and for --resume.
 */

#ifndef CLUMSY_SWEEP_SPEC_HH
#define CLUMSY_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "ctrl/ctrl.hh"
#include "linecard/card.hh"
#include "mem/cache.hh"
#include "mem/recovery.hh"
#include "npu/config.hh"

namespace clumsy::sweep
{

/** One frequency configuration: a static Cr or the dynamic scheme. */
struct OperatingPoint
{
    double cr = 1.0;      ///< relative cycle time (1 when dynamic)
    bool dynamic = false; ///< dynamic frequency adaptation

    bool operator==(const OperatingPoint &) const = default;
};

/** Canonical text for an operating point ("0.5" or "dynamic"). */
std::string to_string(const OperatingPoint &point);

/** The declarative grid. */
struct SweepSpec
{
    // Swept dimensions, in expansion-nesting order (outermost first).
    std::vector<std::string> apps; ///< parse() defaults to all apps
    std::vector<OperatingPoint> points = {OperatingPoint{}};
    std::vector<mem::RecoveryScheme> schemes = {
        mem::RecoveryScheme::NoDetection};
    std::vector<mem::CheckCodec> codecs = {mem::CheckCodec::Parity};
    std::vector<core::FaultPlane> planes = {core::FaultPlane::Both};
    std::vector<double> faultScales = {1.0};

    // Chip dimensions (src/npu/). The defaults describe a plain
    // single-engine chip, which the runner executes through the
    // single-core harness — identical results to a pre-npu sweep.
    std::vector<unsigned> peCounts = {1};
    std::vector<npu::DispatchPolicy> dispatches = {
        npu::DispatchPolicy::RoundRobin};
    /**
     * Per-engine Cr assignments: each entry is a colon-separated Cr
     * list ("1:0.5:0.5:0.25"), or "" (spelled "uniform" in grid
     * strings) for every engine at the cell's Cr.
     */
    std::vector<std::string> perPeCrs = {""};

    /** Per-engine frequency adaptation modes (static/fault/queue). */
    std::vector<npu::DvsMode> dvsModes = {npu::DvsMode::Fault};

    /** Shared-L2 port MSHR counts. */
    std::vector<unsigned> mshrs = {1};

    /** L2 contents models (private / shared). */
    std::vector<npu::L2Mode> l2Modes = {npu::L2Mode::Private};

    /**
     * Offered-load inter-arrival gaps, base cycles per packet
     * (NpuConfig::arrivalGapCycles). 0 = saturated input. A non-zero
     * gap routes the cell through the chip model.
     */
    std::vector<std::int64_t> arrivalGaps = {0};

    /**
     * Chip-jobs values (NpuConfig::chipJobs): worker threads one chip
     * run may use, clamped by the runner so sweep jobs times chip
     * jobs never oversubscribes. Results are byte-identical across
     * values — this axis moves wall-clock, not physics.
     */
    std::vector<unsigned> chipJobs = {1};

    /**
     * Line-card dimensions (src/linecard/): chip counts behind the
     * inter-chip dispatcher, shared-DRAM bank counts (0 = analytical
     * DRAM model off, the historical flat-penalty behaviour) and
     * card-jobs values (inter-chip worker threads, byte-identical
     * across values like chip-jobs). The all-default column routes
     * the cell through the chip or single-core harness unchanged.
     */
    std::vector<unsigned> chips = {1};
    std::vector<unsigned> dramBanks = {0};
    std::vector<unsigned> cardJobs = {1};

    /**
     * Traffic-model dimensions (src/traffic/): flow-population
     * overrides (0 = the app's own default) and churn mean flow
     * lifetimes in packets (0 = the app's own churn setting; nonzero
     * forces the churn model on). Orthogonal to the harness choice —
     * both the single-core and chip paths stream from the same
     * traffic::PacketSource.
     */
    std::vector<std::uint32_t> flows = {0};
    std::vector<std::uint64_t> churns = {0};

    /**
     * Fault-map dimensions (src/fault/fault_map.hh): map selections
     * ("off" = uniform eq. (4) faults, "spatial" = the seeded
     * generation model, anything else = a map-file path) and
     * way-disable retire thresholds (0 = off). Both default to the
     * historical uniform/no-retire behaviour so every pre-faultmap
     * result stays byte-identical.
     */
    std::vector<std::string> faultMaps = {"off"};
    std::vector<unsigned> retires = {0};

    /**
     * Control-plane churn dimensions (src/ctrl/): update rates in
     * events per 1000 packets (0 = no control plane, the default that
     * keeps every run bit-identical to a pre-ctrl sweep) and the event
     * mix each rate draws from. Both harnesses interleave the same
     * stream, so the axes compose with every chip dimension.
     */
    std::vector<std::uint32_t> ctrlRates = {0};
    std::vector<ctrl::CtrlMix> updateMixes = {ctrl::CtrlMix::All};

    // Scalar knobs shared by every cell.
    std::uint64_t packets = 2000;
    unsigned trials = 4;
    std::uint64_t traceSeed = 1;
    std::uint64_t faultSeed = 0x5eed;

    /**
     * Generation seed for faultmap=spatial cells. A scalar, not an
     * axis: the map is the silicon under test, identical in every
     * cell, while faultSeed varies which weak cells get exercised.
     */
    std::uint64_t mapSeed = 0xfa17;

    /**
     * Parse a grid string (semicolon-separated key=value,value,...
     * pairs). Keys: app, cr, scheme, codec, plane, fault-scale,
     * pes, dispatch, per-pe-cr, dvs, mshrs, l2, gap, chip-jobs,
     * chips, dram-banks, card-jobs, flows, churn, faultmap, retire,
     * ctrl, updates, packets, trials, seed, fault-seed, map-seed.
     * "app=all" / "scheme=all" expand to the full sets. fatal()s on
     * unknown keys or values.
     */
    static SweepSpec parse(const std::string &grid);

    /**
     * Canonical grid string listing every dimension and scalar;
     * parse(toGridString()) reproduces the spec exactly.
     */
    std::string toGridString() const;

    /** Total number of grid cells (product of dimension sizes). */
    std::size_t cellCount() const;
};

/** One point of the expanded grid. */
struct SweepCell
{
    std::size_t index = 0; ///< position in expansion order
    std::string app;
    OperatingPoint point;
    mem::RecoveryScheme scheme = mem::RecoveryScheme::NoDetection;
    mem::CheckCodec codec = mem::CheckCodec::Parity;
    core::FaultPlane plane = core::FaultPlane::Both;
    double faultScale = 1.0;
    unsigned peCount = 1;
    npu::DispatchPolicy dispatch = npu::DispatchPolicy::RoundRobin;
    std::string perPeCr; ///< colon-separated Cr list; "" = uniform
    npu::DvsMode dvs = npu::DvsMode::Fault;
    unsigned mshrs = 1;
    npu::L2Mode l2 = npu::L2Mode::Private;
    std::int64_t arrivalGap = 0; ///< inter-arrival gap, base cycles
    unsigned chipJobs = 1;       ///< chip-run worker threads
    unsigned chips = 1;          ///< line-card chip count
    unsigned dramBanks = 0;      ///< shared-DRAM banks (0 = model off)
    unsigned cardJobs = 1;       ///< inter-chip worker threads
    std::uint32_t flows = 0;     ///< flow override (0 = app default)
    std::uint64_t churn = 0;     ///< mean flow lifetime (0 = app's own)
    std::string faultMap = "off"; ///< "off", "spatial" or a map path
    unsigned retire = 0;         ///< way-disable threshold (0 = off)
    std::uint32_t ctrlRate = 0;  ///< ctrl events per 1000 pkts (0 = off)
    ctrl::CtrlMix updates = ctrl::CtrlMix::All; ///< event mix at ctrl>0

    /**
     * @return true when the cell needs the chip model: anything but
     * the default single-engine round-robin uniform fault-mode
     * single-MSHR private-L2 saturated-serial configuration.
     */
    bool isNpu() const
    {
        return peCount != 1 ||
               dispatch != npu::DispatchPolicy::RoundRobin ||
               !perPeCr.empty() || dvs != npu::DvsMode::Fault ||
               mshrs != 1 || l2 != npu::L2Mode::Private ||
               arrivalGap != 0 || chipJobs != 1;
    }

    /**
     * @return true when the cell needs the line-card tier: more than
     * one chip, the DRAM model on, or a non-serial card-jobs value.
     */
    bool isCard() const
    {
        return chips != 1 || dramBanks != 0 || cardJobs != 1;
    }

    /**
     * Stable identity of the cell within any spec that contains it:
     * "app=crc;cr=0.5;scheme=two-strike;codec=parity;plane=both;
     * fault-scale=1". Cells using the chip model append
     * ";pes=N;dispatch=D;per-pe-cr=X", plus ";dvs=M", ";mshrs=K",
     * ";l2=shared", ";gap=G" and ";chip-jobs=J" only at non-default
     * values; plain single-engine cells keep the historical
     * six-dimension key. The elisions let result files written before
     * the newer dimensions existed resume cleanly. Used as the JSON
     * result key and by --resume.
     */
    std::string key() const;
};

/** Expand the grid in canonical nesting order. */
std::vector<SweepCell> expand(const SweepSpec &spec);

/** The ExperimentConfig a cell runs under. */
core::ExperimentConfig makeConfig(const SweepSpec &spec,
                                  const SweepCell &cell);

/**
 * The chip configuration of a cell (meaningful when cell.isNpu()).
 * fatal()s when the per-pe-cr list names a different number of
 * engines than pes.
 */
npu::NpuConfig makeNpuConfig(const SweepCell &cell);

/**
 * The line-card configuration of a cell (meaningful when
 * cell.isCard()): chips behind a round-robin card dispatcher sharing
 * a dramBanks-bank DRAM, advanced by cardJobs workers.
 */
linecard::CardConfig makeCardConfig(const SweepCell &cell);

/** Dash-form scheme name usable inside keys ("no-detection"). */
std::string schemeName(mem::RecoveryScheme scheme);

/** Parse a scheme name (dash or space form); fatal()s on junk. */
mem::RecoveryScheme schemeFromName(const std::string &name);

/** Canonical codec name ("parity" / "secded"). */
std::string codecName(mem::CheckCodec codec);

/** Parse a codec name; fatal()s on junk. */
mem::CheckCodec codecFromString(const std::string &name);

/** Canonical plane name ("both" / "control" / "data"). */
std::string planeName(core::FaultPlane plane);

/** Parse a plane name; fatal()s on junk. */
core::FaultPlane planeFromString(const std::string &name);

/** Shortest round-trip decimal text for a double ("0.5", "1"). */
std::string formatDouble(double v);

} // namespace clumsy::sweep

#endif // CLUMSY_SWEEP_SPEC_HH
