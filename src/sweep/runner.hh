/**
 * @file
 * Parallel sweep execution engine.
 *
 * runSweep() expands a SweepSpec into cells, runs each cell's golden
 * pass and its faulty trials as independent jobs on a work-stealing
 * pool, and reduces per-trial metrics into ExperimentResult
 * aggregates.
 *
 * Determinism: every job derives its RNG streams purely from
 * (spec, cell, trial) — the simulator is seeded per run, never from
 * global state — and the reduction always walks trials in trial-index
 * order and cells in expansion order. The aggregates are therefore
 * bit-identical for any worker count and any completion order; only
 * the measured wall times vary between runs.
 *
 * Execution shape: phase 1 runs one golden job per cell; phase 2 runs
 * the (cell, trial) grid, each trial comparing against its cell's
 * immutable GoldenRecord (shared read-only across threads).
 */

#ifndef CLUMSY_SWEEP_RUNNER_HH
#define CLUMSY_SWEEP_RUNNER_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "linecard/card.hh"
#include "npu/chip.hh"
#include "sweep/spec.hh"

namespace clumsy::sweep
{

/** One cell's aggregated outcome. */
struct CellOutcome
{
    SweepCell cell;
    core::ExperimentResult result;
    double wallMs = 0.0; ///< golden + all trials, summed CPU-side
    bool resumed = false; ///< loaded from a previous output file

    /** Chip-level extras, present when the cell ran the chip model. */
    bool hasNpu = false;
    npu::ChipMetrics npuGolden;
    npu::ChipMetrics npuFaulty; ///< componentwise mean over trials

    /** Card-level extras, present when the cell ran the card tier. */
    bool hasCard = false;
    linecard::CardMetrics cardGolden;
    linecard::CardMetrics cardFaulty; ///< componentwise mean over trials
};

/** Everything a sweep produced, in cell expansion order. */
struct SweepOutcome
{
    SweepSpec spec;
    std::vector<CellOutcome> cells;
    unsigned jobs = 1;
    double wallMs = 0.0;
    std::size_t resumedCount = 0;
};

/**
 * Progress callback: invoked (serialized by the runner) after each
 * cell's last trial finishes, with cells completed so far / total
 * cells to run this invocation.
 */
using ProgressFn = std::function<void(
    const SweepCell &cell, double wallMs, std::size_t done,
    std::size_t total)>;

/**
 * Run the sweep on @p jobs worker threads (0 = hardware default).
 * Cells whose key() appears in @p completed are not re-run; their
 * stored outcome is carried into the result (--resume).
 */
SweepOutcome
runSweep(const SweepSpec &spec, unsigned jobs,
         const std::map<std::string, CellOutcome> *completed = nullptr,
         const ProgressFn &progress = {});

} // namespace clumsy::sweep

#endif // CLUMSY_SWEEP_RUNNER_HH
