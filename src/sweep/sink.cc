#include "sweep/sink.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sweep/json.hh"

namespace clumsy::sweep
{

namespace
{

// --- serialization ---------------------------------------------------

void
writeRunMetrics(JsonWriter &w, const core::RunMetrics &m)
{
    w.beginObject();
    w.key("packets_attempted").value(m.packetsAttempted);
    w.key("packets_processed").value(m.packetsProcessed);
    w.key("packets_with_error").value(m.packetsWithError);
    w.key("fatal").value(m.fatal);
    w.key("fatal_reason").value(m.fatalReason);
    w.key("cycles_per_packet").value(m.cyclesPerPacket);
    w.key("energy_per_packet_pj").value(m.energyPerPacketPj);
    w.key("total_energy_pj").value(m.totalEnergyPj);
    w.key("l1d_energy_pj").value(m.l1dEnergyPj);
    w.key("instructions").value(m.instructions);
    w.key("dcache_accesses").value(m.dcacheAccesses);
    w.key("dcache_miss_rate").value(m.dcacheMissRate);
    w.key("faults_injected").value(m.faultsInjected);
    w.key("parity_trips").value(m.parityTrips);
    w.key("ecc_corrections").value(m.eccCorrections);
    w.key("freq_switches").value(m.freqSwitches);
    // Elided at zero so pre-ctrl documents and rate-0 runs serialize
    // byte-identically to what earlier versions wrote.
    if (m.ctrlEventsApplied != 0)
        w.key("ctrl_events_applied").value(m.ctrlEventsApplied);
    w.key("errors_by_type").beginObject();
    for (const auto &kv : m.errorsByType)
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.endObject();
}

void
writeChipMetrics(JsonWriter &w, const npu::ChipMetrics &m)
{
    w.beginObject();
    w.key("makespan_cycles").value(m.makespanCycles);
    w.key("throughput_pps").value(m.throughputPps);
    w.key("load_imbalance").value(m.loadImbalance);
    w.key("queue_occ_mean").value(m.queueOccMean);
    w.key("queue_occ_max").value(m.queueOccMax);
    w.key("drops_queue_full").value(m.dropsQueueFull);
    w.key("drops_dead_pe").value(m.dropsDeadPe);
    w.key("backpressure_stalls").value(m.backpressureStalls);
    w.key("l2_port_waits").value(m.l2PortWaits);
    w.key("l2_port_wait_cycles").value(m.l2PortWaitCycles);
    w.key("cross_engine_hits").value(m.crossEngineHits);
    w.key("cross_engine_hit_fraction").value(m.crossEngineHitFraction);
    w.key("l2_evictions_by_other").value(m.l2EvictionsByOther);
    w.key("mshr_merges").value(m.mshrMerges);
    w.key("chip_edf").value(m.chipEdf);
    w.key("pe_utilization").beginArray();
    for (double v : m.peUtilization)
        w.value(v);
    w.endArray();
    w.key("pe_packets").beginArray();
    for (double v : m.pePackets)
        w.value(v);
    w.endArray();
    w.key("pe_l2_hits").beginArray();
    for (double v : m.peL2Hits)
        w.value(v);
    w.endArray();
    w.key("pe_l2_misses").beginArray();
    for (double v : m.peL2Misses)
        w.value(v);
    w.endArray();
    w.key("pe_cr_final").beginArray();
    for (double v : m.peCrFinal)
        w.value(v);
    w.endArray();
    w.key("pe_cr_mean").beginArray();
    for (double v : m.peCrMean)
        w.value(v);
    w.endArray();
    w.key("pe_epochs").beginArray();
    for (double v : m.peEpochs)
        w.value(v);
    w.endArray();
    w.key("pe_steps_up").beginArray();
    for (double v : m.peStepsUp)
        w.value(v);
    w.endArray();
    w.key("pe_steps_down").beginArray();
    for (double v : m.peStepsDown)
        w.value(v);
    w.endArray();
    w.endObject();
}

void
writeCardMetrics(JsonWriter &w, const linecard::CardMetrics &m)
{
    w.beginObject();
    w.key("makespan_cycles").value(m.makespanCycles);
    w.key("throughput_pps").value(m.throughputPps);
    w.key("load_imbalance").value(m.loadImbalance);
    w.key("packets_processed").value(m.packetsProcessed);
    w.key("ingress_drops").value(m.ingressDrops);
    w.key("dram_accesses").value(m.dramAccesses);
    w.key("dram_row_hits").value(m.dramRowHits);
    w.key("dram_row_misses").value(m.dramRowMisses);
    w.key("dram_row_conflicts").value(m.dramRowConflicts);
    w.key("dram_row_hit_fraction").value(m.dramRowHitFraction);
    w.key("dram_stall_cycles").value(m.dramStallCycles);
    w.key("chip_packets").beginArray();
    for (double v : m.chipPackets)
        w.value(v);
    w.endArray();
    w.key("chip_makespan_cycles").beginArray();
    for (double v : m.chipMakespanCycles)
        w.value(v);
    w.endArray();
    w.endObject();
}

std::string
cellJson(const CellOutcome &out, bool provenance)
{
    JsonWriter w;
    w.beginObject();
    w.key("key").value(out.cell.key());
    w.key("app").value(out.cell.app);
    w.key("cr").value(out.cell.point.cr);
    w.key("dynamic").value(out.cell.point.dynamic);
    w.key("scheme").value(schemeName(out.cell.scheme));
    w.key("codec").value(codecName(out.cell.codec));
    w.key("plane").value(planeName(out.cell.plane));
    w.key("fault_scale").value(out.cell.faultScale);
    w.key("pes").value(static_cast<std::uint64_t>(out.cell.peCount));
    w.key("dispatch").value(npu::to_string(out.cell.dispatch));
    w.key("per_pe_cr")
        .value(out.cell.perPeCr.empty() ? std::string("uniform")
                                        : out.cell.perPeCr);
    w.key("dvs").value(npu::to_string(out.cell.dvs));
    w.key("mshrs").value(static_cast<std::uint64_t>(out.cell.mshrs));
    w.key("l2").value(npu::to_string(out.cell.l2));
    // Gaps are parsed non-negative; the uint cast is lossless.
    w.key("gap").value(static_cast<std::uint64_t>(out.cell.arrivalGap));
    w.key("chip_jobs")
        .value(static_cast<std::uint64_t>(out.cell.chipJobs));
    // Line-card dimensions only at non-default values, so documents
    // from before the card tier existed parse and resume unchanged.
    if (out.cell.chips != 1)
        w.key("chips").value(
            static_cast<std::uint64_t>(out.cell.chips));
    if (out.cell.dramBanks != 0)
        w.key("dram_banks").value(
            static_cast<std::uint64_t>(out.cell.dramBanks));
    if (out.cell.cardJobs != 1)
        w.key("card_jobs").value(
            static_cast<std::uint64_t>(out.cell.cardJobs));
    // Traffic and control-plane dimensions only at non-default values:
    // parseCell must reconstruct the exact cell key, and the elision
    // keeps documents from before these axes byte-stable.
    if (out.cell.flows != 0)
        w.key("flows").value(
            static_cast<std::uint64_t>(out.cell.flows));
    if (out.cell.churn != 0)
        w.key("churn").value(out.cell.churn);
    if (out.cell.ctrlRate != 0) {
        w.key("ctrl").value(
            static_cast<std::uint64_t>(out.cell.ctrlRate));
        w.key("updates").value(ctrl::to_string(out.cell.updates));
    }
    if (out.cell.faultMap != "off" && !out.cell.faultMap.empty())
        w.key("faultmap").value(out.cell.faultMap);
    if (out.cell.retire != 0)
        w.key("retire").value(
            static_cast<std::uint64_t>(out.cell.retire));
    w.key("result").raw(experimentResultJson(out.result));
    if (out.hasNpu) {
        w.key("npu").beginObject();
        w.key("golden");
        writeChipMetrics(w, out.npuGolden);
        w.key("faulty");
        writeChipMetrics(w, out.npuFaulty);
        w.endObject();
    }
    if (out.hasCard) {
        w.key("card").beginObject();
        w.key("golden");
        writeCardMetrics(w, out.cardGolden);
        w.key("faulty");
        writeCardMetrics(w, out.cardFaulty);
        w.endObject();
    }
    if (provenance)
        w.key("wall_ms").value(out.wallMs);
    w.endObject();
    return w.str();
}

// --- minimal JSON parser (for --resume) ------------------------------

/** Parsed JSON value; only what our own documents contain. */
struct JVal
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JVal> arr;
    std::vector<std::pair<std::string, JVal>> obj;

    const JVal *find(const std::string &key) const
    {
        for (const auto &kv : obj) {
            if (kv.first == key)
                return &kv.second;
        }
        return nullptr;
    }
};

struct JsonParser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void die(const char *what) const
    {
        fatal("sweep JSON parse error at byte %zu: %s", pos, what);
    }

    void skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }

    char peek()
    {
        skipWs();
        if (pos >= text.size())
            die("unexpected end of input");
        return text[pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            die("unexpected character");
        ++pos;
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                die("dangling escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    die("short \\u escape");
                const std::string hex = text.substr(pos, 4);
                pos += 4;
                out += static_cast<char>(
                    std::strtoul(hex.c_str(), nullptr, 16));
                break;
              }
              default:
                die("unsupported escape");
            }
        }
        if (pos >= text.size())
            die("unterminated string");
        ++pos; // closing quote
        return out;
    }

    JVal parseValue()
    {
        JVal v;
        const char c = peek();
        if (c == '{') {
            ++pos;
            v.kind = JVal::Kind::Obj;
            if (consume('}'))
                return v;
            for (;;) {
                std::string key = parseString();
                expect(':');
                v.obj.emplace_back(std::move(key), parseValue());
                if (consume('}'))
                    return v;
                expect(',');
            }
        }
        if (c == '[') {
            ++pos;
            v.kind = JVal::Kind::Arr;
            if (consume(']'))
                return v;
            for (;;) {
                v.arr.push_back(parseValue());
                if (consume(']'))
                    return v;
                expect(',');
            }
        }
        if (c == '"') {
            v.kind = JVal::Kind::Str;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') {
            const std::string word = c == 't' ? "true" : "false";
            if (text.compare(pos, word.size(), word) != 0)
                die("bad literal");
            pos += word.size();
            v.kind = JVal::Kind::Bool;
            v.b = c == 't';
            return v;
        }
        if (c == 'n') {
            if (text.compare(pos, 4, "null") != 0)
                die("bad literal");
            pos += 4;
            return v;
        }
        // number
        char *end = nullptr;
        v.num = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos)
            die("expected a value");
        pos = static_cast<std::size_t>(end - text.c_str());
        v.kind = JVal::Kind::Num;
        return v;
    }
};

const JVal &
field(const JVal &obj, const char *key)
{
    const JVal *v = obj.find(key);
    if (!v)
        fatal("sweep JSON: missing field '%s'", key);
    return *v;
}

double
numField(const JVal &obj, const char *key)
{
    const JVal &v = field(obj, key);
    if (v.kind != JVal::Kind::Num)
        fatal("sweep JSON: field '%s' is not a number", key);
    return v.num;
}

std::uint64_t
u64Field(const JVal &obj, const char *key)
{
    return static_cast<std::uint64_t>(numField(obj, key));
}

std::string
strField(const JVal &obj, const char *key)
{
    const JVal &v = field(obj, key);
    if (v.kind != JVal::Kind::Str)
        fatal("sweep JSON: field '%s' is not a string", key);
    return v.str;
}

bool
boolField(const JVal &obj, const char *key)
{
    const JVal &v = field(obj, key);
    if (v.kind != JVal::Kind::Bool)
        fatal("sweep JSON: field '%s' is not a bool", key);
    return v.b;
}

core::RunMetrics
parseRunMetrics(const JVal &o)
{
    core::RunMetrics m;
    m.packetsAttempted = u64Field(o, "packets_attempted");
    m.packetsProcessed = u64Field(o, "packets_processed");
    m.packetsWithError = u64Field(o, "packets_with_error");
    m.fatal = boolField(o, "fatal");
    m.fatalReason = strField(o, "fatal_reason");
    m.cyclesPerPacket = numField(o, "cycles_per_packet");
    m.energyPerPacketPj = numField(o, "energy_per_packet_pj");
    m.totalEnergyPj = numField(o, "total_energy_pj");
    m.l1dEnergyPj = numField(o, "l1d_energy_pj");
    m.instructions = u64Field(o, "instructions");
    m.dcacheAccesses = u64Field(o, "dcache_accesses");
    m.dcacheMissRate = numField(o, "dcache_miss_rate");
    m.faultsInjected = u64Field(o, "faults_injected");
    m.parityTrips = u64Field(o, "parity_trips");
    m.eccCorrections = u64Field(o, "ecc_corrections");
    m.freqSwitches = u64Field(o, "freq_switches");
    if (o.find("ctrl_events_applied"))
        m.ctrlEventsApplied = u64Field(o, "ctrl_events_applied");
    for (const auto &kv : field(o, "errors_by_type").obj)
        m.errorsByType[kv.first] =
            static_cast<std::uint64_t>(kv.second.num);
    return m;
}

npu::ChipMetrics
parseChipMetrics(const JVal &o)
{
    npu::ChipMetrics m;
    m.makespanCycles = numField(o, "makespan_cycles");
    m.throughputPps = numField(o, "throughput_pps");
    m.loadImbalance = numField(o, "load_imbalance");
    m.queueOccMean = numField(o, "queue_occ_mean");
    m.queueOccMax = numField(o, "queue_occ_max");
    m.dropsQueueFull = numField(o, "drops_queue_full");
    m.dropsDeadPe = numField(o, "drops_dead_pe");
    m.backpressureStalls = numField(o, "backpressure_stalls");
    m.l2PortWaits = numField(o, "l2_port_waits");
    m.l2PortWaitCycles = numField(o, "l2_port_wait_cycles");
    // Shared-L2 counters: absent in chip documents written before the
    // shared-contents model existed.
    if (o.find("cross_engine_hits"))
        m.crossEngineHits = numField(o, "cross_engine_hits");
    if (o.find("cross_engine_hit_fraction"))
        m.crossEngineHitFraction =
            numField(o, "cross_engine_hit_fraction");
    if (o.find("l2_evictions_by_other"))
        m.l2EvictionsByOther = numField(o, "l2_evictions_by_other");
    if (o.find("mshr_merges"))
        m.mshrMerges = numField(o, "mshr_merges");
    m.chipEdf = numField(o, "chip_edf");
    for (const JVal &v : field(o, "pe_utilization").arr)
        m.peUtilization.push_back(v.num);
    for (const JVal &v : field(o, "pe_packets").arr)
        m.pePackets.push_back(v.num);
    if (const JVal *a = o.find("pe_l2_hits"))
        for (const JVal &v : a->arr)
            m.peL2Hits.push_back(v.num);
    if (const JVal *a = o.find("pe_l2_misses"))
        for (const JVal &v : a->arr)
            m.peL2Misses.push_back(v.num);
    // Trajectory arrays: absent in chip documents written before the
    // per-PE DVS knobs existed.
    if (const JVal *a = o.find("pe_cr_final"))
        for (const JVal &v : a->arr)
            m.peCrFinal.push_back(v.num);
    if (const JVal *a = o.find("pe_cr_mean"))
        for (const JVal &v : a->arr)
            m.peCrMean.push_back(v.num);
    if (const JVal *a = o.find("pe_epochs"))
        for (const JVal &v : a->arr)
            m.peEpochs.push_back(v.num);
    if (const JVal *a = o.find("pe_steps_up"))
        for (const JVal &v : a->arr)
            m.peStepsUp.push_back(v.num);
    if (const JVal *a = o.find("pe_steps_down"))
        for (const JVal &v : a->arr)
            m.peStepsDown.push_back(v.num);
    return m;
}

linecard::CardMetrics
parseCardMetrics(const JVal &o)
{
    linecard::CardMetrics m;
    m.makespanCycles = numField(o, "makespan_cycles");
    m.throughputPps = numField(o, "throughput_pps");
    m.loadImbalance = numField(o, "load_imbalance");
    m.packetsProcessed = numField(o, "packets_processed");
    m.ingressDrops = numField(o, "ingress_drops");
    m.dramAccesses = numField(o, "dram_accesses");
    m.dramRowHits = numField(o, "dram_row_hits");
    m.dramRowMisses = numField(o, "dram_row_misses");
    m.dramRowConflicts = numField(o, "dram_row_conflicts");
    m.dramRowHitFraction = numField(o, "dram_row_hit_fraction");
    m.dramStallCycles = numField(o, "dram_stall_cycles");
    for (const JVal &v : field(o, "chip_packets").arr)
        m.chipPackets.push_back(v.num);
    for (const JVal &v : field(o, "chip_makespan_cycles").arr)
        m.chipMakespanCycles.push_back(v.num);
    return m;
}

CellOutcome
parseCell(const JVal &o)
{
    CellOutcome out;
    out.cell.app = strField(o, "app");
    out.cell.point.cr = numField(o, "cr");
    out.cell.point.dynamic = boolField(o, "dynamic");
    out.cell.scheme = schemeFromName(strField(o, "scheme"));
    out.cell.codec = codecFromString(strField(o, "codec"));
    out.cell.plane = planeFromString(strField(o, "plane"));
    out.cell.faultScale = numField(o, "fault_scale");
    // Chip dimensions: absent in documents written before the npu
    // subsystem, which described plain single-engine cells.
    if (o.find("pes"))
        out.cell.peCount = static_cast<unsigned>(numField(o, "pes"));
    if (o.find("dispatch"))
        out.cell.dispatch =
            npu::dispatchFromString(strField(o, "dispatch"));
    if (o.find("per_pe_cr")) {
        const std::string ppc = strField(o, "per_pe_cr");
        out.cell.perPeCr = ppc == "uniform" ? "" : ppc;
    }
    // dvs/mshrs: absent in documents written before those knobs.
    if (o.find("dvs"))
        out.cell.dvs = npu::dvsFromString(strField(o, "dvs"));
    if (o.find("mshrs"))
        out.cell.mshrs = static_cast<unsigned>(numField(o, "mshrs"));
    if (o.find("l2"))
        out.cell.l2 = npu::l2ModeFromString(strField(o, "l2"));
    // gap/chip_jobs: absent in documents written before those axes.
    if (o.find("gap"))
        out.cell.arrivalGap =
            static_cast<std::int64_t>(numField(o, "gap"));
    if (o.find("chip_jobs"))
        out.cell.chipJobs =
            static_cast<unsigned>(numField(o, "chip_jobs"));
    // chips/dram_banks/card_jobs: written only at non-default values
    // (and absent in documents from before the card tier existed).
    if (o.find("chips"))
        out.cell.chips = static_cast<unsigned>(numField(o, "chips"));
    if (o.find("dram_banks"))
        out.cell.dramBanks =
            static_cast<unsigned>(numField(o, "dram_banks"));
    if (o.find("card_jobs"))
        out.cell.cardJobs =
            static_cast<unsigned>(numField(o, "card_jobs"));
    // flows/churn/ctrl/updates: written only at non-default values
    // (and absent in documents from before those axes existed).
    if (o.find("flows"))
        out.cell.flows =
            static_cast<std::uint32_t>(numField(o, "flows"));
    if (o.find("churn"))
        out.cell.churn =
            static_cast<std::uint64_t>(numField(o, "churn"));
    if (o.find("ctrl"))
        out.cell.ctrlRate =
            static_cast<std::uint32_t>(numField(o, "ctrl"));
    if (o.find("updates"))
        out.cell.updates = ctrl::mixFromString(strField(o, "updates"));
    if (o.find("faultmap"))
        out.cell.faultMap = strField(o, "faultmap");
    if (o.find("retire"))
        out.cell.retire =
            static_cast<unsigned>(numField(o, "retire"));
    if (const JVal *chip = o.find("npu")) {
        out.hasNpu = true;
        out.npuGolden = parseChipMetrics(field(*chip, "golden"));
        out.npuFaulty = parseChipMetrics(field(*chip, "faulty"));
    }
    if (const JVal *card = o.find("card")) {
        out.hasCard = true;
        out.cardGolden = parseCardMetrics(field(*card, "golden"));
        out.cardFaulty = parseCardMetrics(field(*card, "faulty"));
    }
    if (const JVal *wall = o.find("wall_ms"))
        out.wallMs = wall->num;

    const JVal &res = field(o, "result");
    out.result.app = out.cell.app;
    out.result.golden = parseRunMetrics(field(res, "golden"));
    out.result.faulty = parseRunMetrics(field(res, "faulty_last"));
    const JVal &agg = field(res, "aggregate");
    out.result.anyErrorProb = numField(agg, "any_error_prob");
    out.result.fatalProb = numField(agg, "fatal_prob");
    out.result.fatalFraction = numField(agg, "fatal_fraction");
    out.result.fallibility = numField(agg, "fallibility");
    out.result.cyclesPerPacket = numField(agg, "cycles_per_packet");
    out.result.energyPerPacketPj =
        numField(agg, "energy_per_packet_pj");
    out.result.l1dEnergyPerPacketPj =
        numField(agg, "l1d_energy_per_packet_pj");
    out.result.edf = numField(agg, "edf");
    for (const auto &kv : field(agg, "error_prob_by_type").obj)
        out.result.errorProbByType[kv.first] = kv.second.num;
    return out;
}

} // namespace

std::string
experimentResultJson(const core::ExperimentResult &res)
{
    JsonWriter w;
    w.beginObject();
    w.key("golden");
    writeRunMetrics(w, res.golden);
    w.key("faulty_last");
    writeRunMetrics(w, res.faulty);
    w.key("aggregate").beginObject();
    w.key("any_error_prob").value(res.anyErrorProb);
    w.key("fatal_prob").value(res.fatalProb);
    w.key("fatal_fraction").value(res.fatalFraction);
    w.key("fallibility").value(res.fallibility);
    w.key("cycles_per_packet").value(res.cyclesPerPacket);
    w.key("energy_per_packet_pj").value(res.energyPerPacketPj);
    w.key("l1d_energy_per_packet_pj").value(res.l1dEnergyPerPacketPj);
    w.key("edf").value(res.edf);
    w.key("error_prob_by_type").beginObject();
    for (const auto &kv : res.errorProbByType)
        w.key(kv.first).value(kv.second);
    w.endObject();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
chipMetricsJson(const npu::ChipMetrics &metrics)
{
    JsonWriter w;
    writeChipMetrics(w, metrics);
    return w.str();
}

std::string
cardMetricsJson(const linecard::CardMetrics &metrics)
{
    JsonWriter w;
    writeCardMetrics(w, metrics);
    return w.str();
}

std::string
hexU64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
renderJson(const SweepOutcome &outcome, bool provenance)
{
    std::string out = "{\n";
    out += "  \"format\": \"clumsy-sweep-v1\",\n";
    out += "  \"spec\": \"" +
           jsonEscape(outcome.spec.toGridString()) + "\",\n";
    out += "  \"cells\": " + std::to_string(outcome.cells.size()) +
           ",\n";
    if (provenance) {
        out += "  \"provenance\": {\"git\": \"" +
               jsonEscape(gitDescribe()) +
               "\", \"jobs\": " + std::to_string(outcome.jobs) +
               ", \"resumed\": " +
               std::to_string(outcome.resumedCount) +
               ", \"wall_ms\": " + jsonNumber(outcome.wallMs) + "},\n";
    }
    out += "  \"results\": [\n";
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
        out += "    " + cellJson(outcome.cells[i], provenance);
        out += i + 1 < outcome.cells.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
renderCsv(const SweepOutcome &outcome)
{
    std::string out =
        "app,cr,dynamic,scheme,codec,plane,fault_scale,pes,dispatch,"
        "per_pe_cr,dvs,mshrs,l2,gap,chip_jobs,chips,dram_banks,"
        "card_jobs,flows,churn,ctrl,"
        "updates,faultmap,retire,fallibility,"
        "any_error_prob,fatal_prob,fatal_fraction,cycles_per_packet,"
        "energy_per_packet_pj,l1d_energy_per_packet_pj,edf,"
        "golden_cycles_per_packet,golden_energy_per_packet_pj,"
        "golden_dcache_miss_rate,wall_ms\n";
    for (const CellOutcome &c : outcome.cells) {
        const core::ExperimentResult &r = c.result;
        out += c.cell.app;
        out += "," + formatDouble(c.cell.point.cr);
        out += c.cell.point.dynamic ? ",1" : ",0";
        out += "," + schemeName(c.cell.scheme);
        out += "," + codecName(c.cell.codec);
        out += "," + planeName(c.cell.plane);
        out += "," + formatDouble(c.cell.faultScale);
        out += "," + std::to_string(c.cell.peCount);
        out += "," + npu::to_string(c.cell.dispatch);
        out += ",";
        out += c.cell.perPeCr.empty() ? "uniform" : c.cell.perPeCr;
        out += "," + npu::to_string(c.cell.dvs);
        out += "," + std::to_string(c.cell.mshrs);
        out += "," + npu::to_string(c.cell.l2);
        out += "," + std::to_string(c.cell.arrivalGap);
        out += "," + std::to_string(c.cell.chipJobs);
        out += "," + std::to_string(c.cell.chips);
        out += "," + std::to_string(c.cell.dramBanks);
        out += "," + std::to_string(c.cell.cardJobs);
        out += "," + std::to_string(c.cell.flows);
        out += "," + std::to_string(c.cell.churn);
        out += "," + std::to_string(c.cell.ctrlRate);
        out += "," + ctrl::to_string(c.cell.updates);
        out += "," + (c.cell.faultMap.empty() ? "off" : c.cell.faultMap);
        out += "," + std::to_string(c.cell.retire);
        out += "," + formatDouble(r.fallibility);
        out += "," + formatDouble(r.anyErrorProb);
        out += "," + formatDouble(r.fatalProb);
        out += "," + formatDouble(r.fatalFraction);
        out += "," + formatDouble(r.cyclesPerPacket);
        out += "," + formatDouble(r.energyPerPacketPj);
        out += "," + formatDouble(r.l1dEnergyPerPacketPj);
        out += "," + formatDouble(r.edf);
        out += "," + formatDouble(r.golden.cyclesPerPacket);
        out += "," + formatDouble(r.golden.energyPerPacketPj);
        out += "," + formatDouble(r.golden.dcacheMissRate);
        out += "," + formatDouble(c.wallMs);
        out += "\n";
    }
    return out;
}

std::map<std::string, CellOutcome>
loadCompletedCells(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonParser parser{text};
    const JVal doc = parser.parseValue();
    if (doc.kind != JVal::Kind::Obj)
        fatal("%s: not a JSON object", path.c_str());
    const JVal *format = doc.find("format");
    if (!format || format->str != "clumsy-sweep-v1")
        fatal("%s: not a clumsy-sweep-v1 document", path.c_str());

    std::map<std::string, CellOutcome> cells;
    for (const JVal &entry : field(doc, "results").arr) {
        CellOutcome out = parseCell(entry);
        const std::string storedKey = strField(entry, "key");
        const std::string derivedKey = out.cell.key();
        if (storedKey != derivedKey)
            fatal("%s: stored key '%s' does not match its fields",
                  path.c_str(), storedKey.c_str());
        cells.emplace(derivedKey, std::move(out));
    }
    return cells;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open %s for writing", path.c_str());
    out << content;
    out.close();
    if (!out)
        fatal("error writing %s", path.c_str());
}

std::string
gitDescribe()
{
    FILE *pipe =
        popen("git describe --always --dirty 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128] = {0};
    std::string out;
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

} // namespace clumsy::sweep
