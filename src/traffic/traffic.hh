/**
 * @file
 * Streaming, O(1)-memory traffic models layered on net::TraceGenerator
 * (ROADMAP: "Internet-scale traffic model").
 *
 * A PacketSource produces the packet stream a harness consumes —
 * next() plus the arrival time (base cycles) of the packet it just
 * produced, which feeds the chip's offered-load gap machinery. Two
 * models implement it:
 *
 *  - StaticSource: the historical static-flow TraceGenerator with
 *    fixed inter-arrival gaps. Bit-identical to driving the generator
 *    directly, so every pre-churn golden trace replays unchanged.
 *
 *  - ChurnSource: a FlowTable-driven churn model. A fixed array of
 *    numFlows *live-flow slots* holds the current population; each
 *    packet picks a slot with Zipf popularity (hot flows dominate),
 *    and a flow that exhausts its seeded geometric lifetime closes,
 *    its slot instantly re-opened by a fresh flow — millions of
 *    distinct flows stream through constant memory. The stream
 *    alternates heavy-tailed (discrete Pareto) ON bursts with OFF
 *    gaps, and an optional linear arrival-rate ramp models a link
 *    warming up. All draws come from a churn RNG separate from the
 *    packet-body stream RNG, so the model stays deterministic per
 *    seed at any packet count: golden and faulty runs, and runs at
 *    different --jobs/--chip-jobs, replay identical sequences.
 */

#ifndef CLUMSY_TRAFFIC_TRAFFIC_HH
#define CLUMSY_TRAFFIC_TRAFFIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "net/trace_gen.hh"

namespace clumsy::traffic
{

/** Streaming packet source: the contract every harness consumes. */
class PacketSource
{
  public:
    virtual ~PacketSource() = default;

    /** Produce the next packet of the stream. */
    virtual net::Packet next() = 0;

    /**
     * Arrival time, in base cycles, of the packet the last next()
     * returned (0 before the first call). Non-decreasing.
     */
    virtual std::int64_t lastArrivalCycles() const = 0;

    /** The trace configuration in force. */
    virtual const net::TraceConfig &config() const = 0;
};

/** The static-flow generator behind the PacketSource contract. */
class StaticSource final : public PacketSource
{
  public:
    StaticSource(const net::TraceConfig &config,
                 std::int64_t nominalGapCycles)
        : gen_(config), gap_(nominalGapCycles)
    {
    }

    net::Packet next() override
    {
        net::Packet pkt = gen_.next();
        arrival_ = static_cast<std::int64_t>(pkt.seq) * gap_;
        return pkt;
    }

    std::int64_t lastArrivalCycles() const override { return arrival_; }

    const net::TraceConfig &config() const override
    {
        return gen_.config();
    }

  private:
    net::TraceGenerator gen_;
    std::int64_t gap_ = 0;
    std::int64_t arrival_ = 0;
};

/** One live-flow slot of the churn population. */
struct FlowSlot
{
    net::FlowTuple tuple;
    std::uint64_t remaining = 0; ///< packets until this flow closes
};

/**
 * The live flow population: a fixed array of slots, each holding one
 * open flow and its remaining lifetime. Slot count never changes —
 * flows churn *through* the slots — so memory is O(numFlows)
 * regardless of how many flows ever existed.
 */
class FlowTable
{
  public:
    /** Open the initial population (one flow per slot). */
    FlowTable(const net::TraceGenerator &gen, Rng &rng,
              const net::ChurnConfig &churn, std::uint32_t slots);

    /** The slot's current flow. */
    const net::FlowTuple &tuple(std::size_t slot) const
    {
        return slots_[slot].tuple;
    }

    /**
     * Account one packet against @p slot; when the flow's lifetime is
     * exhausted, close it and open a fresh flow in place.
     * @return true when the packet closed the flow (churn event).
     */
    bool consume(std::size_t slot, const net::TraceGenerator &gen,
                 Rng &rng, const net::ChurnConfig &churn);

    std::size_t size() const { return slots_.size(); }

    /** Flows opened so far, including the initial population. */
    std::uint64_t flowsOpened() const { return opened_; }

    /** Flows that ran out their lifetime and closed. */
    std::uint64_t flowsClosed() const { return closed_; }

    /**
     * Draw one geometric flow lifetime (mean churn.meanLifetimePackets,
     * support >= 1). Exposed for the distribution property tests.
     */
    static std::uint64_t drawLifetime(Rng &rng,
                                      const net::ChurnConfig &churn);

  private:
    std::vector<FlowSlot> slots_;
    std::uint64_t opened_ = 0;
    std::uint64_t closed_ = 0;
};

/** Stream-level counters a ChurnSource accumulates (all O(1)). */
struct ChurnCounters
{
    std::uint64_t packets = 0;
    std::uint64_t bursts = 0; ///< ON bursts started
};

/** The churn traffic model (see the file comment). */
class ChurnSource final : public PacketSource
{
  public:
    ChurnSource(const net::TraceConfig &config,
                std::int64_t nominalGapCycles);

    net::Packet next() override;

    std::int64_t lastArrivalCycles() const override { return arrival_; }

    const net::TraceConfig &config() const override
    {
        return gen_.config();
    }

    const FlowTable &flows() const { return flows_; }

    const ChurnCounters &counters() const { return counters_; }

    /**
     * Packets emitted per population slot. Slot ranks are fixed while
     * flows churn through them, so these counts follow the configured
     * Zipf rank-frequency law (the property tests fit its slope).
     */
    const std::vector<std::uint64_t> &slotPackets() const
    {
        return slotPackets_;
    }

    /**
     * Draw one ON-burst length: discrete Pareto with tail exponent
     * churn.burstAlpha and scale churn.minBurst. Exposed for the
     * distribution property tests.
     */
    static std::uint64_t drawBurst(Rng &rng,
                                   const net::ChurnConfig &churn);

    /** The ramp's gap multiplier for packet @p seq (>= 1 decaying). */
    double rampFactor(std::uint64_t seq) const;

  private:
    net::TraceGenerator gen_; ///< packet bodies (stream RNG)
    Rng churnRng_;            ///< slot picks, lifetimes, bursts
    FlowTable flows_;
    std::vector<std::uint64_t> slotPackets_;
    ChurnCounters counters_;
    std::int64_t nominalGap_ = 0;
    std::int64_t arrival_ = 0;
    std::uint64_t burstRemaining_ = 0;
};

/**
 * Build the source a trace configuration asks for: a ChurnSource when
 * config.churn.enabled, else a StaticSource. @p nominalGapCycles is
 * the offered-load inter-arrival gap in base cycles (0 = saturated).
 */
std::unique_ptr<PacketSource> makeSource(const net::TraceConfig &config,
                                         std::int64_t nominalGapCycles);

} // namespace clumsy::traffic

#endif // CLUMSY_TRAFFIC_TRAFFIC_HH
