#include "traffic/traffic.hh"

#include <cmath>

#include "common/logging.hh"

namespace clumsy::traffic
{

namespace
{

/**
 * Decorrelates the churn RNG from the packet-body stream RNG (both
 * derive from the same trace seed): flow births, slot picks and burst
 * draws must never perturb TTL/id/payload bytes, or a churn-knob
 * change would silently rewrite every packet body.
 */
constexpr std::uint64_t kChurnSeedSalt = 0xf10c4a811ce5eedull;

} // namespace

FlowTable::FlowTable(const net::TraceGenerator &gen, Rng &rng,
                     const net::ChurnConfig &churn, std::uint32_t slots)
{
    CLUMSY_ASSERT(slots > 0, "flow table needs at least one slot");
    slots_.reserve(slots);
    for (std::uint32_t i = 0; i < slots; ++i) {
        FlowSlot s;
        s.tuple = gen.drawFlow(rng);
        s.remaining = drawLifetime(rng, churn);
        slots_.push_back(s);
        ++opened_;
    }
}

std::uint64_t
FlowTable::drawLifetime(Rng &rng, const net::ChurnConfig &churn)
{
    // Geometric on {1, 2, ...} via inversion: success probability
    // p = 1/mean gives mean `mean`. mean <= 1 degenerates to L = 1.
    const double mean = churn.meanLifetimePackets;
    const double u = rng.uniform();
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    const double draws = std::log1p(-u) / std::log1p(-p);
    if (draws >= 1e18) // guard the cast; astronomically rare
        return static_cast<std::uint64_t>(1e18);
    return 1 + static_cast<std::uint64_t>(draws);
}

bool
FlowTable::consume(std::size_t slot, const net::TraceGenerator &gen,
                   Rng &rng, const net::ChurnConfig &churn)
{
    FlowSlot &s = slots_[slot];
    CLUMSY_ASSERT(s.remaining > 0, "consuming a closed flow");
    if (--s.remaining > 0)
        return false;
    ++closed_;
    s.tuple = gen.drawFlow(rng);
    s.remaining = drawLifetime(rng, churn);
    ++opened_;
    return true;
}

ChurnSource::ChurnSource(const net::TraceConfig &config,
                         std::int64_t nominalGapCycles)
    : gen_(config), churnRng_(config.seed ^ kChurnSeedSalt),
      flows_(gen_, churnRng_, config.churn, config.numFlows),
      slotPackets_(config.numFlows, 0), nominalGap_(nominalGapCycles)
{
}

std::uint64_t
ChurnSource::drawBurst(Rng &rng, const net::ChurnConfig &churn)
{
    // Discrete Pareto: ccdf P[B > x] ~ (minBurst / x)^alpha. u is in
    // [0, 1), so 1-u is in (0, 1] and the scale draw is >= 1.
    const double u = rng.uniform();
    const double scale =
        std::pow(1.0 - u, -1.0 / churn.burstAlpha);
    const double burst = static_cast<double>(churn.minBurst) * scale;
    const double cap = 4294967296.0; // 2^32: beyond any real run
    if (burst >= cap)
        return static_cast<std::uint64_t>(cap);
    const auto b = static_cast<std::uint64_t>(burst);
    return b < churn.minBurst ? churn.minBurst : b;
}

double
ChurnSource::rampFactor(std::uint64_t seq) const
{
    const net::ChurnConfig &c = gen_.config().churn;
    if (c.rampPackets == 0 || seq >= c.rampPackets)
        return 1.0;
    const double t = static_cast<double>(seq) /
                     static_cast<double>(c.rampPackets);
    return c.rampStartFactor + (1.0 - c.rampStartFactor) * t;
}

net::Packet
ChurnSource::next()
{
    const net::ChurnConfig &churn = gen_.config().churn;

    // ON/OFF burstiness: when the current burst is spent, start a new
    // one; its first packet sits an OFF gap behind its predecessor.
    bool burstStart = false;
    if (burstRemaining_ == 0) {
        burstRemaining_ = drawBurst(churnRng_, churn);
        ++counters_.bursts;
        burstStart = counters_.packets > 0;
    }
    --burstRemaining_;

    // Zipf-popular slot pick: rank 1 is the hottest live flow.
    const auto slot = static_cast<std::size_t>(
        churnRng_.zipf(flows_.size(), gen_.config().flowZipf) - 1);

    // The packet the first arrival of the stream lands at t = 0; each
    // later packet trails its predecessor by the nominal gap scaled
    // by the warm-up ramp, stretched by the OFF factor at burst
    // boundaries.
    if (counters_.packets > 0) {
        double factor = rampFactor(counters_.packets);
        if (burstStart)
            factor *= churn.offGapFactor;
        arrival_ += static_cast<std::int64_t>(std::llround(
            static_cast<double>(nominalGap_) * factor));
    }

    net::Packet pkt = gen_.emit(flows_.tuple(slot));
    ++slotPackets_[slot];
    ++counters_.packets;
    flows_.consume(slot, gen_, churnRng_, churn);
    return pkt;
}

std::unique_ptr<PacketSource>
makeSource(const net::TraceConfig &config, std::int64_t nominalGapCycles)
{
    config.validate();
    if (config.churn.enabled)
        return std::make_unique<ChurnSource>(config, nominalGapCycles);
    return std::make_unique<StaticSource>(config, nominalGapCycles);
}

} // namespace clumsy::traffic
