#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace clumsy
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    CLUMSY_ASSERT(cells.size() == header_.size(),
                  "row width %zu != header width %zu",
                  cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::sci(double v, int precision)
{
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << v;
    return os.str();
}

} // namespace clumsy
