/**
 * @file
 * Diagnostic reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant of the simulator was violated; this is
 *            a clumsy bug, never a user error. Aborts.
 * fatal()  — the simulation cannot continue because of a user-provided
 *            configuration or input. Exits with status 1.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — status messages for the user.
 *
 * Note: *simulated application* fatal errors (the paper's infinite-loop
 * class) are NOT reported through these functions; they are first-class
 * simulation outcomes carried on a status path (see core/experiment.hh).
 */

#ifndef CLUMSY_COMMON_LOGGING_HH
#define CLUMSY_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace clumsy
{

/** Abort with a formatted message; use for internal simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for bad user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() are suppressed. */
bool quiet();

/** Implementation detail of CLUMSY_ASSERT; aborts. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Check an invariant and panic with location information when it fails.
 * Unlike assert(), stays active in release builds: the simulator relies
 * on these checks to keep faulty-execution bookkeeping trustworthy.
 */
#define CLUMSY_ASSERT(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::clumsy::panicAssert(#cond, __FILE__, __LINE__,               \
                                  __VA_ARGS__);                            \
        }                                                                  \
    } while (0)

} // namespace clumsy

#endif // CLUMSY_COMMON_LOGGING_HH
