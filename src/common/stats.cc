#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace clumsy
{

void
Accumulator::sample(double v)
{
    ++n_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
Accumulator::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void
Accumulator::reset()
{
    *this = Accumulator{};
}

Histogram::Histogram(double lo, double hi, unsigned bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), counts_(bins, 0)
{
    CLUMSY_ASSERT(hi > lo && bins > 0, "bad histogram shape");
}

void
Histogram::sample(double v)
{
    ++total_;
    sum_ += v;
    if (v < lo_) {
        ++under_;
    } else if (v >= hi_) {
        ++over_;
    } else {
        auto idx = static_cast<unsigned>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = static_cast<unsigned>(counts_.size()) - 1;
        ++counts_[idx];
    }
}

void
Histogram::merge(const Histogram &other)
{
    CLUMSY_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ &&
                      counts_.size() == other.counts_.size(),
                  "cannot merge histograms of different shapes");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    under_ += other.under_;
    over_ += other.over_;
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Histogram::binLo(unsigned i) const
{
    return lo_ + width_ * i;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void
StatGroup::inc(const std::string &key, std::uint64_t delta)
{
    counters_[key] += delta;
}

void
StatGroup::set(const std::string &key, std::uint64_t value)
{
    counters_[key] = value;
}

std::uint64_t
StatGroup::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << " = " << kv.second << '\n';
    return os.str();
}

} // namespace clumsy
