/**
 * @file
 * Small bit-manipulation helpers used across the simulator.
 */

#ifndef CLUMSY_COMMON_BITOPS_HH
#define CLUMSY_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace clumsy
{

/** @return the number of set bits in v. */
constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** @return true when v has an odd number of set bits. */
constexpr bool
oddParity(std::uint64_t v)
{
    return (std::popcount(v) & 1u) != 0;
}

/** @return true when v is a power of two (v != 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return v with bit `pos` (0 = LSB) inverted. */
constexpr std::uint32_t
flipBit(std::uint32_t v, unsigned pos)
{
    return v ^ (std::uint32_t{1} << pos);
}

/** @return bits [lo, lo+width) of v, right-aligned. */
constexpr std::uint32_t
bitField(std::uint32_t v, unsigned lo, unsigned width)
{
    if (width >= 32)
        return v >> lo;
    return (v >> lo) & ((std::uint32_t{1} << width) - 1);
}

} // namespace clumsy

#endif // CLUMSY_COMMON_BITOPS_HH
