/**
 * @file
 * Lightweight statistics containers in the spirit of gem5's stats
 * package: named scalar counters, running accumulators, and fixed-width
 * histograms, grouped for dumping.
 */

#ifndef CLUMSY_COMMON_STATS_HH
#define CLUMSY_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace clumsy
{

/** Running mean/variance/min/max accumulator (Welford's algorithm). */
class Accumulator
{
  public:
    /** Add one sample. */
    void sample(double v);

    /** @return the number of samples seen. */
    std::uint64_t count() const { return n_; }

    /** @return the arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return the population variance (0 with < 2 samples). */
    double variance() const;

    /** @return the sample standard deviation. */
    double stddev() const;

    /** @return the smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** @return the largest sample (-inf when empty). */
    double max() const { return max_; }

    /** @return the sum of all samples. */
    double sum() const { return sum_; }

    /** Discard all samples. */
    void reset();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, unsigned bins);

    /** Add one sample. */
    void sample(double v);

    /**
     * Fold another histogram's counts into this one. Both must have
     * the same [lo, hi) range and bin count (fatal()s otherwise), so
     * per-shard histograms — one per worker or per processing engine —
     * can be reduced into a single distribution.
     */
    void merge(const Histogram &other);

    /** @return count in bin i (0-based, excluding out-of-range bins). */
    std::uint64_t binCount(unsigned i) const { return counts_.at(i); }

    /** @return the inclusive lower edge of bin i. */
    double binLo(unsigned i) const;

    /** @return the lower bound of the in-range interval. */
    double lo() const { return lo_; }

    /** @return the exclusive upper bound of the in-range interval. */
    double hi() const { return hi_; }

    /** @return the mean of all samples (0 when empty). */
    double mean() const;

    /** @return number of in-range bins. */
    unsigned bins() const { return static_cast<unsigned>(counts_.size()); }

    /** @return samples below lo. */
    std::uint64_t underflow() const { return under_; }

    /** @return samples at or above hi. */
    std::uint64_t overflow() const { return over_; }

    /** @return total samples, including out-of-range ones. */
    std::uint64_t total() const { return total_; }

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t under_ = 0, over_ = 0, total_ = 0;
    double sum_ = 0.0;
};

/**
 * A named group of scalar counters, addressed by string key.
 *
 * Components expose a StatGroup rather than ad-hoc member counters so
 * the experiment harness can dump everything uniformly.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &key, std::uint64_t delta = 1);

    /**
     * Interned handle to the named counter, creating it at 0. std::map
     * nodes never move, so the pointer stays valid for the group's
     * lifetime (reset() zeroes values in place). Hot paths resolve
     * their counters once at construction and bump through the handle,
     * replacing a string-keyed map lookup per event with one add.
     */
    std::uint64_t *slot(const std::string &key)
    {
        return &counters_[key];
    }

    /** Overwrite the named counter. */
    void set(const std::string &key, std::uint64_t value);

    /** @return the counter's value (0 when never touched). */
    std::uint64_t get(const std::string &key) const;

    /** @return the group's name. */
    const std::string &name() const { return name_; }

    /** @return all counters, sorted by key. */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Zero every counter (keys are kept). */
    void reset();

    /** Render "name.key = value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace clumsy

#endif // CLUMSY_COMMON_STATS_HH
