#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace clumsy
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
    zipfN_ = 0;
    zipfCdf_.clear();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    CLUMSY_ASSERT(bound > 0, "below() needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    CLUMSY_ASSERT(rate > 0.0, "exponential() needs a positive rate");
    // 1 - uniform() is in (0, 1], keeping log() finite.
    return -std::log(1.0 - uniform()) / rate;
}

void
Rng::buildZipf(std::uint64_t n, double s)
{
    zipfN_ = n;
    zipfS_ = s;
    zipfCdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k), s);
        zipfCdf_[k - 1] = sum;
    }
    for (auto &v : zipfCdf_)
        v /= sum;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    CLUMSY_ASSERT(n > 0, "zipf() needs at least one item");
    if (zipfN_ != n || zipfS_ != s)
        buildZipf(n, s);
    const double u = uniform();
    // Binary search the CDF for the first entry >= u.
    std::uint64_t lo = 0, hi = n - 1;
    while (lo < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        if (zipfCdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo + 1;
}

} // namespace clumsy
