/**
 * @file
 * Fundamental types shared by every clumsy subsystem.
 *
 * The simulator models a 32-bit packet-processor address space and keeps
 * time as an integer count of sub-cycle quanta so that fractional cache
 * latencies (2 cycles scaled by relative cycle times of 0.75, 0.5, 0.25)
 * stay exact.
 */

#ifndef CLUMSY_COMMON_TYPES_HH
#define CLUMSY_COMMON_TYPES_HH

#include <cstdint>

namespace clumsy
{

/** Address in the simulated physical address space. */
using SimAddr = std::uint32_t;

/** Size of a region of simulated memory, in bytes. */
using SimSize = std::uint32_t;

/**
 * Simulated time and latencies, measured in quanta.
 *
 * One base core cycle is kQuantaPerCycle quanta. The value 12 is the
 * least common multiple needed to represent 2-cycle L1 latencies scaled
 * by the paper's relative cycle times Cr in {1, 0.75, 0.5, 0.25} as
 * integers (24, 18, 12, 6 quanta).
 */
using Quanta = std::int64_t;

/** Number of quanta in one base (full-voltage-swing) core cycle. */
inline constexpr Quanta kQuantaPerCycle = 12;

/** Convert whole base cycles to quanta. */
constexpr Quanta
cyclesToQuanta(std::int64_t cycles)
{
    return cycles * kQuantaPerCycle;
}

/** Convert quanta to (fractional) base cycles. */
constexpr double
quantaToCycles(Quanta q)
{
    return static_cast<double>(q) / static_cast<double>(kQuantaPerCycle);
}

/** Energy amounts, in picojoules. */
using PicoJoules = double;

/** Number of bits in a simulated machine word. */
inline constexpr unsigned kWordBits = 32;

/** Number of bytes in a simulated machine word. */
inline constexpr unsigned kWordBytes = 4;

} // namespace clumsy

#endif // CLUMSY_COMMON_TYPES_HH
