/**
 * @file
 * Work-stealing thread pool for batches of indexed jobs.
 *
 * run(n, fn) executes fn(0) .. fn(n-1) across the configured number
 * of workers and blocks until all jobs finish. Job indices are dealt
 * round-robin into per-worker deques; a worker drains its own deque
 * from the front and, when empty, steals from the back of its
 * neighbours. Because jobs are whole simulations or whole simulation
 * phases (milliseconds to seconds each), stealing granularity is one
 * job and the pool spawns fresh threads per run() — scheduling
 * overhead is noise next to the work.
 *
 * Determinism contract: the pool guarantees nothing about execution
 * order, so callers must make jobs independent and write results into
 * per-index slots; any cross-job reduction happens after run()
 * returns, in index order.
 *
 * The pool is shared by the sweep runner (cell/trial jobs) and the
 * chip model (intra-run bring-up and trial fan-out); budgetedWorkers()
 * keeps the two layers from oversubscribing when nested.
 */

#ifndef CLUMSY_COMMON_POOL_HH
#define CLUMSY_COMMON_POOL_HH

#include <cstddef>
#include <functional>

namespace clumsy
{

/** Executes batches of indexed jobs on worker threads. */
class WorkStealingPool
{
  public:
    /**
     * @param workers  worker-thread count; 0 and 1 both mean "run
     *                 inline on the calling thread, no threads spawned"
     */
    explicit WorkStealingPool(unsigned workers);

    /** Run fn(0) .. fn(n-1); returns when every job has finished. */
    void run(std::size_t n,
             const std::function<void(std::size_t)> &fn) const;

    /** The effective worker count (>= 1). */
    unsigned workers() const { return workers_; }

    /** A sensible default worker count for this machine. */
    static unsigned hardwareWorkers();

    /**
     * Worker budget for a pool nested under @p outerWorkers
     * already-parallel jobs. Resolves @p requested (0 means "hardware
     * default") and clamps it so outer x inner never exceeds the
     * machine: an 8-way sweep on an 8-core box gets 1 chip job per
     * cell, a serial run gets all of them.
     */
    static unsigned budgetedWorkers(unsigned requested,
                                    unsigned outerWorkers);

  private:
    unsigned workers_;
};

} // namespace clumsy

#endif // CLUMSY_COMMON_POOL_HH
