/**
 * @file
 * Declarative command-line argument parser shared by every binary
 * (clumsy_sim, clumsy_sweep, the bench executables).
 *
 * Each option is registered once with its name, value placeholder and
 * help line; parse() then handles value extraction, numeric
 * validation, --help (prints the generated usage text and exits 0)
 * and unknown-option diagnostics uniformly. Bare (non-dash) arguments
 * go to the positional handler when one is registered and are
 * rejected otherwise.
 */

#ifndef CLUMSY_COMMON_CLI_HH
#define CLUMSY_COMMON_CLI_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace clumsy::cli
{

/** Collects option definitions, then parses argv against them. */
class ArgParser
{
  public:
    /**
     * @param program  binary name shown in the usage line
     * @param summary  one-line description printed under the usage
     */
    ArgParser(std::string program, std::string summary);

    /** Start a titled option group in the usage text. */
    void section(const std::string &title);

    /** Boolean switch: sets *target to true when present. */
    void flag(const std::string &name, const std::string &help,
              bool *target);

    /** Boolean switch with a callback instead of a target. */
    void flag(const std::string &name, const std::string &help,
              std::function<void()> onSet);

    /** Option taking a value, delivered raw to @p onValue. */
    void option(const std::string &name, const std::string &metavar,
                const std::string &help,
                std::function<void(const std::string &)> onValue);

    // Typed conveniences (all fatal() on malformed numbers) ---------

    void optString(const std::string &name, const std::string &metavar,
                   const std::string &help, std::string *target);
    void optDouble(const std::string &name, const std::string &metavar,
                   const std::string &help, double *target);
    void optU64(const std::string &name, const std::string &metavar,
                const std::string &help, std::uint64_t *target);
    void optUnsigned(const std::string &name, const std::string &metavar,
                     const std::string &help, unsigned *target);

    /**
     * Accept bare arguments (no leading dash), e.g. workload names.
     * Without a positional handler, bare arguments are an error.
     */
    void positional(const std::string &metavar, const std::string &help,
                    std::function<void(const std::string &)> onValue);

    /** Free-form text appended after the option list in usage(). */
    void epilog(const std::string &text);

    /**
     * Parse the command line. Prints usage and exits 0 on --help/-h;
     * prints usage and fatal()s on unknown options, missing values or
     * malformed numbers.
     */
    void parse(int argc, char **argv) const;

    /** The generated help text. */
    std::string usage() const;

  private:
    struct Entry
    {
        bool isSection = false;
        std::string name;    ///< "--foo" (or section title)
        std::string metavar; ///< empty for flags
        std::string help;
        std::function<void(const std::string &)> onValue;
        std::function<void()> onSet;
    };

    std::string program_;
    std::string summary_;
    std::string positionalMetavar_;
    std::string positionalHelp_;
    std::function<void(const std::string &)> onPositional_;
    std::string epilog_;
    std::vector<Entry> entries_;

    const Entry *find(const std::string &name) const;
};

/** Parse a double, fatal()ing unless the whole string converts. */
double parseDouble(const std::string &opt, const std::string &value);

/** Parse an unsigned 64-bit integer with full-string validation. */
std::uint64_t parseU64(const std::string &opt, const std::string &value);

/**
 * Split @p text on @p sep, trimming surrounding spaces from each
 * piece; empty pieces are dropped.
 */
std::vector<std::string> split(const std::string &text, char sep);

} // namespace clumsy::cli

#endif // CLUMSY_COMMON_CLI_HH
