/**
 * @file
 * Aligned-text table printer used by the bench binaries so every
 * reproduced paper table/figure prints in a uniform, diffable format.
 */

#ifndef CLUMSY_COMMON_TABLE_HH
#define CLUMSY_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace clumsy
{

/** Collects rows of string cells and renders an aligned text table. */
class TextTable
{
  public:
    /** @param title caption printed above the table. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append one row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Render the table with a title line and column separators. */
    std::string render() const;

    /** Render as CSV (for plotting scripts). */
    std::string csv() const;

    /** Helper: format a double with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Helper: format a double in scientific notation. */
    static std::string sci(double v, int precision = 3);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace clumsy

#endif // CLUMSY_COMMON_TABLE_HH
