/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component (fault injector, trace generators, noise
 * Monte-Carlo) owns its own Rng instance seeded from the experiment
 * configuration, so golden and faulty runs replay identical packet
 * streams while fault sampling varies independently.
 *
 * The generator is xoshiro256** (public-domain algorithm by Blackman and
 * Vigna): fast, 256-bit state, and — unlike std::mt19937 — guaranteed to
 * produce identical streams across standard libraries.
 */

#ifndef CLUMSY_COMMON_RANDOM_HH
#define CLUMSY_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace clumsy
{

/** Deterministic xoshiro256** PRNG with sampling helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a double uniformly distributed in [0, 1). */
    double uniform();

    /** @return a double uniformly distributed in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return an integer uniformly distributed in [0, bound). */
    std::uint64_t below(std::uint64_t bound);

    /** @return true with probability p (p outside [0,1] clamps). */
    bool bernoulli(double p);

    /** @return a sample from Exponential(rate). */
    double exponential(double rate);

    /**
     * @return a 1-based rank sampled from a Zipf distribution with
     * exponent s over n items (rank 1 most popular).
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Reseed the generator, resetting any cached Zipf tables. */
    void reseed(std::uint64_t seed);

  private:
    std::uint64_t s_[4];

    // Cached CDF for zipf() — rebuilt when (n, s) changes.
    std::uint64_t zipfN_ = 0;
    double zipfS_ = 0.0;
    std::vector<double> zipfCdf_;

    void buildZipf(std::uint64_t n, double s);
};

} // namespace clumsy

#endif // CLUMSY_COMMON_RANDOM_HH
