/**
 * @file
 * F14-style flat hash table for the host-side table mirrors.
 *
 * The application tables keep host-side ground-truth indices (route
 * destination -> entry, NAT private source -> binding, LPM prefix ->
 * next hop) that are probed once or more per simulated packet, so
 * their cost is pure simulator overhead — they model nothing. This
 * table replaces std::unordered_map on those paths with the chunked
 * SIMD layout of Meta's F14: slots are grouped into 16-wide chunks,
 * each slot publishing a one-byte tag (0 = empty, 1 = tombstone,
 * 0x80 | h7 = full with the hash's top seven bits), and a probe
 * compares all 16 tags of a chunk in one SSE2 instruction before
 * touching any key. One cache line of tags filters almost every
 * non-matching chunk, keys stay in a flat array (no per-node
 * allocation), and the table never invalidates values across probes
 * of other keys.
 *
 * Probing is triangular over chunks (ci += 1, 2, 3, ... mod a power
 * of two), which visits every chunk exactly once per cycle. A probe
 * may stop at the first chunk holding a genuinely EMPTY slot — an
 * insert would have used it — while tombstones keep the chain alive.
 * Erase demotes to a plain empty when its chunk already has one
 * (chains through the chunk are unaffected), else leaves a
 * tombstone; rehash drops all tombstones.
 *
 * Only trivially-copyable integral keys are supported: the mirrors
 * key on IPv4 addresses and prefixes, and the mix function is
 * splitmix64, whose full-avalanche output feeds both the chunk index
 * (low bits) and the tag (top seven bits) from independent bits.
 */

#ifndef CLUMSY_COMMON_F14_TABLE_HH
#define CLUMSY_COMMON_F14_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#if defined(__SSE2__) || defined(_M_X64)
#define CLUMSY_F14_SSE2 1
#include <emmintrin.h>
#endif

#include "common/logging.hh"

namespace clumsy
{

/** splitmix64: cheap full-avalanche mix of a 64-bit value. */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Chunked SIMD-probed open-addressing map (see file comment). */
template <typename Key, typename Value>
class F14Table
{
    static_assert(std::is_integral_v<Key>,
                  "F14Table keys must be integral");
    static_assert(std::is_trivially_copyable_v<Value>,
                  "F14Table values must be trivially copyable");

  public:
    static constexpr unsigned kSlotsPerChunk = 16;

    F14Table() { reinit(kMinChunks); }

    /** Number of live entries. */
    std::size_t size() const { return size_; }

    /** @return true when no entries are live. */
    bool empty() const { return size_ == 0; }

    /**
     * Insert (key, value) when the key is absent. @return true on
     * insertion; false when the key was already present (its value is
     * kept, matching std::unordered_map::emplace).
     */
    bool emplace(Key key, Value value)
    {
        maybeGrow();
        return insertImpl(key, value, /*assign=*/false);
    }

    /** Insert or overwrite (operator[]-assignment equivalent). */
    void insertOrAssign(Key key, Value value)
    {
        maybeGrow();
        insertImpl(key, value, /*assign=*/true);
    }

    /** @return pointer to the key's value, or nullptr when absent. */
    const Value *find(Key key) const
    {
        const std::uint64_t h = splitmix64(
            static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<Key>>(key)));
        const std::uint8_t tag = fullTag(h);
        std::size_t ci = h & mask_;
        std::size_t step = 1;
        while (true) {
            const Chunk &c = chunks_[ci];
            unsigned matches = matchMask(c, tag);
            while (matches != 0) {
                const unsigned slot = ctz(matches);
                if (c.keys[slot] == key)
                    return &c.vals[slot];
                matches &= matches - 1;
            }
            if (emptyMask(c) != 0)
                return nullptr; // an insert would have landed here
            CLUMSY_ASSERT(step <= chunks_.size(),
                          "f14 probe cycled the whole table");
            ci = (ci + step++) & mask_;
        }
    }

    /** Mutable find(). */
    Value *find(Key key)
    {
        return const_cast<Value *>(
            static_cast<const F14Table *>(this)->find(key));
    }

    /** @return true when the key is present. */
    bool contains(Key key) const { return find(key) != nullptr; }

    /** Remove the key. @return true when an entry was erased. */
    bool erase(Key key)
    {
        const std::uint64_t h = splitmix64(
            static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<Key>>(key)));
        const std::uint8_t tag = fullTag(h);
        std::size_t ci = h & mask_;
        std::size_t step = 1;
        while (true) {
            Chunk &c = chunks_[ci];
            unsigned matches = matchMask(c, tag);
            while (matches != 0) {
                const unsigned slot = ctz(matches);
                if (c.keys[slot] == key) {
                    // A chunk already holding an empty slot ends every
                    // probe chain through it, so the freed slot may
                    // become plain empty; otherwise it must tombstone
                    // to keep longer chains alive.
                    if (emptyMask(c) != 0) {
                        c.tags[slot] = kEmpty;
                    } else {
                        c.tags[slot] = kTombstone;
                        ++tombstones_;
                    }
                    --size_;
                    return true;
                }
                matches &= matches - 1;
            }
            if (emptyMask(c) != 0)
                return false;
            CLUMSY_ASSERT(step <= chunks_.size(),
                          "f14 probe cycled the whole table");
            ci = (ci + step++) & mask_;
        }
    }

    /** Drop every entry (capacity kept). */
    void clear()
    {
        for (Chunk &c : chunks_)
            for (unsigned s = 0; s < kSlotsPerChunk; ++s)
                c.tags[s] = kEmpty;
        size_ = 0;
        tombstones_ = 0;
    }

    /** Slots across all chunks (diagnostics/tests). */
    std::size_t capacity() const
    {
        return chunks_.size() * kSlotsPerChunk;
    }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kTombstone = 1;
    static constexpr std::size_t kMinChunks = 1;

    struct Chunk
    {
        alignas(16) std::uint8_t tags[kSlotsPerChunk];
        Key keys[kSlotsPerChunk];
        Value vals[kSlotsPerChunk];
    };

    std::vector<Chunk> chunks_;
    std::size_t mask_ = 0; ///< chunks_.size() - 1 (power of two)
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;

    /** Tag of a full slot: high bit set plus the hash's top 7 bits. */
    static std::uint8_t fullTag(std::uint64_t h)
    {
        return static_cast<std::uint8_t>(0x80u | (h >> 57));
    }

    static unsigned ctz(unsigned mask)
    {
#if defined(__GNUC__) || defined(__clang__)
        return static_cast<unsigned>(__builtin_ctz(mask));
#else
        unsigned n = 0;
        while ((mask & 1u) == 0) {
            mask >>= 1;
            ++n;
        }
        return n;
#endif
    }

    /** Bitmask of slots whose tag equals @p tag. */
    static unsigned matchMask(const Chunk &c, std::uint8_t tag)
    {
#ifdef CLUMSY_F14_SSE2
        const __m128i tags = _mm_load_si128(
            reinterpret_cast<const __m128i *>(c.tags));
        const __m128i needle =
            _mm_set1_epi8(static_cast<char>(tag));
        return static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(tags, needle)));
#else
        unsigned mask = 0;
        for (unsigned s = 0; s < kSlotsPerChunk; ++s)
            if (c.tags[s] == tag)
                mask |= 1u << s;
        return mask;
#endif
    }

    /** Bitmask of genuinely empty (never tombstoned) slots. */
    static unsigned emptyMask(const Chunk &c)
    {
        return matchMask(c, kEmpty);
    }

    /** Bitmask of insertable (empty or tombstone) slots. */
    static unsigned freeMask(const Chunk &c)
    {
        return matchMask(c, kEmpty) | matchMask(c, kTombstone);
    }

    void reinit(std::size_t nChunks)
    {
        chunks_.assign(nChunks, Chunk{});
        mask_ = nChunks - 1;
        size_ = 0;
        tombstones_ = 0;
        for (Chunk &c : chunks_)
            for (unsigned s = 0; s < kSlotsPerChunk; ++s)
                c.tags[s] = kEmpty;
    }

    /** Keep (live + tombstone) occupancy under 7/8 of capacity. */
    void maybeGrow()
    {
        if ((size_ + tombstones_ + 1) * 8 <= capacity() * 7)
            return;
        // Grow when genuinely over half full; otherwise the same
        // footprint reinserted without tombstones is roomy enough.
        const std::size_t nChunks = size_ * 2 >= capacity()
                                        ? chunks_.size() * 2
                                        : chunks_.size();
        std::vector<Chunk> old = std::move(chunks_);
        reinit(nChunks);
        for (const Chunk &c : old) {
            for (unsigned s = 0; s < kSlotsPerChunk; ++s) {
                if (c.tags[s] & 0x80u)
                    insertImpl(c.keys[s], c.vals[s], false);
            }
        }
    }

    bool insertImpl(Key key, Value value, bool assign)
    {
        const std::uint64_t h = splitmix64(
            static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<Key>>(key)));
        const std::uint8_t tag = fullTag(h);
        std::size_t ci = h & mask_;
        std::size_t step = 1;
        Chunk *freeChunk = nullptr;
        unsigned freeSlot = 0;
        while (true) {
            Chunk &c = chunks_[ci];
            unsigned matches = matchMask(c, tag);
            while (matches != 0) {
                const unsigned slot = ctz(matches);
                if (c.keys[slot] == key) {
                    if (assign)
                        c.vals[slot] = value;
                    return false;
                }
                matches &= matches - 1;
            }
            if (freeChunk == nullptr) {
                const unsigned free = freeMask(c);
                if (free != 0) {
                    freeChunk = &c;
                    freeSlot = ctz(free);
                }
            }
            if (emptyMask(c) != 0)
                break; // key is definitely absent
            CLUMSY_ASSERT(step <= chunks_.size(),
                          "f14 probe cycled the whole table");
            ci = (ci + step++) & mask_;
        }
        CLUMSY_ASSERT(freeChunk != nullptr,
                      "f14 insert found no free slot");
        if (freeChunk->tags[freeSlot] == kTombstone)
            --tombstones_;
        freeChunk->tags[freeSlot] = tag;
        freeChunk->keys[freeSlot] = key;
        freeChunk->vals[freeSlot] = value;
        ++size_;
        return true;
    }
};

} // namespace clumsy

#endif // CLUMSY_COMMON_F14_TABLE_HH
