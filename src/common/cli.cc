#include "common/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace clumsy::cli
{

double
parseDouble(const std::string &opt, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == value.c_str() || *end != '\0')
        fatal("%s: '%s' is not a number", opt.c_str(), value.c_str());
    return v;
}

std::uint64_t
parseU64(const std::string &opt, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    // strtoull accepts and negates a leading minus; a count option
    // must reject it instead.
    if (errno != 0 || end == value.c_str() || *end != '\0' ||
        value.find('-') != std::string::npos)
        fatal("%s: '%s' is not an unsigned integer", opt.c_str(),
              value.c_str());
    return v;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(sep, start);
        if (end == std::string::npos)
            end = text.size();
        std::string piece = text.substr(start, end - start);
        while (!piece.empty() && piece.front() == ' ')
            piece.erase(piece.begin());
        while (!piece.empty() && piece.back() == ' ')
            piece.pop_back();
        if (!piece.empty())
            out.push_back(std::move(piece));
        start = end + 1;
    }
    return out;
}

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
ArgParser::section(const std::string &title)
{
    Entry e;
    e.isSection = true;
    e.name = title;
    entries_.push_back(std::move(e));
}

void
ArgParser::flag(const std::string &name, const std::string &help,
                bool *target)
{
    flag(name, help, [target]() { *target = true; });
}

void
ArgParser::flag(const std::string &name, const std::string &help,
                std::function<void()> onSet)
{
    Entry e;
    e.name = name;
    e.help = help;
    e.onSet = std::move(onSet);
    entries_.push_back(std::move(e));
}

void
ArgParser::option(const std::string &name, const std::string &metavar,
                  const std::string &help,
                  std::function<void(const std::string &)> onValue)
{
    Entry e;
    e.name = name;
    e.metavar = metavar;
    e.help = help;
    e.onValue = std::move(onValue);
    entries_.push_back(std::move(e));
}

void
ArgParser::optString(const std::string &name, const std::string &metavar,
                     const std::string &help, std::string *target)
{
    option(name, metavar, help,
           [target](const std::string &v) { *target = v; });
}

void
ArgParser::optDouble(const std::string &name, const std::string &metavar,
                     const std::string &help, double *target)
{
    option(name, metavar, help, [name, target](const std::string &v) {
        *target = parseDouble(name, v);
    });
}

void
ArgParser::optU64(const std::string &name, const std::string &metavar,
                  const std::string &help, std::uint64_t *target)
{
    option(name, metavar, help, [name, target](const std::string &v) {
        *target = parseU64(name, v);
    });
}

void
ArgParser::optUnsigned(const std::string &name,
                       const std::string &metavar,
                       const std::string &help, unsigned *target)
{
    option(name, metavar, help, [name, target](const std::string &v) {
        *target = static_cast<unsigned>(parseU64(name, v));
    });
}

void
ArgParser::positional(const std::string &metavar, const std::string &help,
                      std::function<void(const std::string &)> onValue)
{
    positionalMetavar_ = metavar;
    positionalHelp_ = help;
    onPositional_ = std::move(onValue);
}

void
ArgParser::epilog(const std::string &text)
{
    epilog_ = text;
}

const ArgParser::Entry *
ArgParser::find(const std::string &name) const
{
    for (const Entry &e : entries_) {
        if (!e.isSection && e.name == name)
            return &e;
    }
    return nullptr;
}

void
ArgParser::parse(int argc, char **argv) const
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (!arg.empty() && arg[0] != '-') {
            if (!onPositional_) {
                std::fputs(usage().c_str(), stderr);
                fatal("unexpected argument '%s'", arg.c_str());
            }
            onPositional_(arg);
            continue;
        }
        const Entry *e = find(arg);
        if (!e) {
            std::fputs(usage().c_str(), stderr);
            fatal("unknown option '%s'", arg.c_str());
        }
        if (e->onSet) {
            e->onSet();
            continue;
        }
        if (i + 1 >= argc)
            fatal("missing %s value for %s", e->metavar.c_str(),
                  arg.c_str());
        e->onValue(argv[++i]);
    }
}

std::string
ArgParser::usage() const
{
    std::string out = "usage: " + program_ + " [options]";
    if (onPositional_)
        out += " [" + positionalMetavar_ + " ...]";
    out += "\n";
    if (!summary_.empty())
        out += "\n" + summary_ + "\n";
    if (onPositional_ && !positionalHelp_.empty())
        out += "\n  " + positionalMetavar_ + "  " + positionalHelp_ +
               "\n";

    std::size_t width = 0;
    for (const Entry &e : entries_) {
        if (e.isSection)
            continue;
        std::size_t w = e.name.size();
        if (!e.metavar.empty())
            w += 1 + e.metavar.size();
        width = std::max(width, w);
    }

    for (const Entry &e : entries_) {
        if (e.isSection) {
            out += "\n" + e.name + ":\n";
            continue;
        }
        std::string left = e.name;
        if (!e.metavar.empty())
            left += " " + e.metavar;
        out += "  " + left;
        out.append(width + 2 > left.size() ? width + 2 - left.size() : 1,
                   ' ');
        out += e.help + "\n";
    }
    if (!epilog_.empty())
        out += "\n" + epilog_ + "\n";
    return out;
}

} // namespace clumsy::cli
