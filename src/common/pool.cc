#include "common/pool.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace clumsy
{

namespace
{

/** One worker's job queue: owner pops the front, thieves the back. */
struct JobDeque
{
    std::mutex mutex;
    std::deque<std::size_t> jobs;

    bool popFront(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.front();
        jobs.pop_front();
        return true;
    }

    bool stealBack(std::size_t &out)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (jobs.empty())
            return false;
        out = jobs.back();
        jobs.pop_back();
        return true;
    }
};

} // namespace

WorkStealingPool::WorkStealingPool(unsigned workers)
    : workers_(workers == 0 ? 1 : workers)
{
}

unsigned
WorkStealingPool::hardwareWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
WorkStealingPool::budgetedWorkers(unsigned requested,
                                  unsigned outerWorkers)
{
    const unsigned hw = hardwareWorkers();
    const unsigned want = requested == 0 ? hw : requested;
    const unsigned outer = outerWorkers == 0 ? 1 : outerWorkers;
    return std::max(1U, std::min(want, hw / outer));
}

void
WorkStealingPool::run(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;
    if (workers_ == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const unsigned w =
        static_cast<unsigned>(std::min<std::size_t>(workers_, n));
    std::vector<JobDeque> queues(w);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % w].jobs.push_back(i);

    auto worker = [&](unsigned self) {
        std::size_t job;
        for (;;) {
            if (queues[self].popFront(job)) {
                fn(job);
                continue;
            }
            bool stole = false;
            for (unsigned k = 1; k < w && !stole; ++k)
                stole = queues[(self + k) % w].stealBack(job);
            if (!stole)
                return; // every deque empty: all jobs claimed
            fn(job);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(w - 1);
    for (unsigned t = 1; t < w; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : threads)
        t.join();
}

} // namespace clumsy
