#include "apps/lpm.hh"

#include <algorithm>

#include "common/logging.hh"
#include "net/checksum.hh"
#include "net/trace_gen.hh"

namespace clumsy::apps
{

namespace
{

/** FNV-1a mix helper (same idiom as the table audits). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;
    void mix(std::uint32_t v) { h = (h ^ v) * 1099511628211ull; }
};

std::uint32_t
maskFor(std::uint8_t len)
{
    return len == 0 ? 0 : 0xffffffffu << (32 - len);
}

unsigned
pop(std::uint32_t bits)
{
    return static_cast<unsigned>(__builtin_popcount(bits));
}

} // namespace

// --- LpmFib ---------------------------------------------------------

LpmFib::LpmFib(core::ClumsyProcessor &proc)
{
    rootPtr_ = proc.alloc(4, 4);
    proc.write32(rootPtr_, 0);
    proc.execute(2);
}

std::uint32_t
LpmFib::ld32(core::ClumsyProcessor &proc, SimAddr addr) const
{
    return dma_ ? proc.peek32(addr) : proc.read32(addr);
}

void
LpmFib::st32(core::ClumsyProcessor &proc, SimAddr addr,
             std::uint32_t value) const
{
    if (dma_) {
        proc.dmaWrite(addr,
                      reinterpret_cast<const std::uint8_t *>(&value), 4);
        return;
    }
    proc.write32(addr, value);
}

void
LpmFib::exec(core::ClumsyProcessor &proc, unsigned ops) const
{
    if (!dma_)
        proc.execute(ops);
}

LpmFib::NodeView
LpmFib::readNode(core::ClumsyProcessor &proc, SimAddr addr) const
{
    NodeView v;
    const std::uint32_t bm = ld32(proc, addr);
    v.ext = bm & 0xffffu;
    v.intb = (bm >> 16) & 0x7fffu;
    v.childBase = ld32(proc, addr + 4);
    v.resultBase = ld32(proc, addr + 8);
    exec(proc, 5);
    return v;
}

SimAddr
LpmFib::allocBlock(core::ClumsyProcessor &proc, SimSize size)
{
    // Prefer a block that finished its RCU grace period; fall back to
    // the bump allocator. Reuse is what keeps sustained churn at flat
    // simulated memory.
    const SimAddr reused = rcu_.takeFree(size);
    if (reused != 0)
        return reused;
    return proc.alloc(size, 4);
}

namespace
{

/** Retire a replaced node and its arrays into the RCU domain. */
void
retireOld(ctrl::RcuDomain &rcu, SimAddr addr,
          std::uint32_t ext, std::uint32_t intb, SimAddr childBase,
          SimAddr resultBase)
{
    if (addr == 0)
        return;
    rcu.retire(addr, LpmFib::kNodeBytes);
    const unsigned nc = static_cast<unsigned>(__builtin_popcount(ext));
    if (nc != 0 && childBase != 0)
        rcu.retire(childBase, nc * 4);
    const unsigned nr =
        static_cast<unsigned>(__builtin_popcount(intb & 0x7fffu));
    if (nr != 0 && resultBase != 0)
        rcu.retire(resultBase, nr * 4);
}

} // namespace

SimAddr
LpmFib::rebuildNode(core::ClumsyProcessor &proc, SimAddr oldAddr,
                    const NodeView &oldView, std::uint32_t newExt,
                    std::uint32_t newInt, std::uint32_t replaceNib,
                    SimAddr replaceChild, int resultIdx,
                    std::uint32_t nexthop)
{
    // Child array: popcount-packed over the new external bitmap.
    // Surviving entries are copied from the old array through timed
    // loads — the copy is part of the faultable update path.
    SimAddr cb = 0;
    const unsigned nc = pop(newExt);
    if (nc != 0) {
        cb = allocBlock(proc, nc * 4);
        unsigned rank = 0;
        for (std::uint32_t b = 0; b < 16; ++b) {
            if ((newExt & (1u << b)) == 0)
                continue;
            std::uint32_t val = 0;
            if (b == replaceNib) {
                val = replaceChild;
            } else if ((oldView.ext & (1u << b)) != 0) {
                const unsigned orank =
                    pop(oldView.ext & ((1u << b) - 1));
                val = ld32(proc, oldView.childBase + 4 * orank);
                exec(proc, 2);
            }
            st32(proc, cb + 4 * rank, val);
            ++rank;
        }
        exec(proc, 2 + nc);
        if (proc.fatalOccurred())
            return 0;
    }

    // Result array over the new internal bitmap.
    SimAddr rb = 0;
    const unsigned nr = pop(newInt & 0x7fffu);
    if (nr != 0) {
        rb = allocBlock(proc, nr * 4);
        unsigned rank = 0;
        for (std::uint32_t b = 0; b < 15; ++b) {
            if ((newInt & (1u << b)) == 0)
                continue;
            std::uint32_t val = 0;
            if (resultIdx >= 0 &&
                b == static_cast<std::uint32_t>(resultIdx)) {
                val = nexthop;
            } else if ((oldView.intb & (1u << b)) != 0) {
                const unsigned orank =
                    pop(oldView.intb & ((1u << b) - 1));
                val = ld32(proc, oldView.resultBase + 4 * orank);
                exec(proc, 2);
            }
            st32(proc, rb + 4 * rank, val);
            ++rank;
        }
        exec(proc, 2 + nr);
        if (proc.fatalOccurred())
            return 0;
    }

    const SimAddr node = allocBlock(proc, kNodeBytes);
    st32(proc, node + 0,
         ((newInt & 0x7fffu) << 16) | (newExt & 0xffffu));
    st32(proc, node + 4, cb);
    st32(proc, node + 8, rb);
    st32(proc, node + 12,
         0x1b700000u | static_cast<std::uint32_t>(nodes_ & 0xfffffu));
    exec(proc, 10);
    ++nodes_;

    retireOld(rcu_, oldAddr, oldView.ext, oldView.intb,
              oldView.childBase, oldView.resultBase);
    return node;
}

void
LpmFib::insert(core::ClumsyProcessor &proc, std::uint32_t prefix,
               std::uint8_t len, std::uint32_t nexthop)
{
    CLUMSY_ASSERT(len >= 1 && len <= 31, "lpm prefix length 1..31");
    prefix &= maskFor(len);
    const unsigned target = len / kStride;
    const unsigned r = len % kStride;

    // 1. Walk the existing path through timed loads.
    std::array<SimAddr, kMaxDepth + 1> oldAddr{};
    std::array<NodeView, kMaxDepth + 1> oldView{};
    SimAddr cur = ld32(proc, rootPtr_);
    exec(proc, 2);
    for (unsigned d = 0; d <= target; ++d) {
        oldAddr[d] = cur;
        if (cur != 0) {
            oldView[d] = readNode(proc, cur);
            if (proc.fatalOccurred())
                return;
        }
        if (d == target)
            break;
        if (cur == 0)
            continue;
        const std::uint32_t nib = nibbleAt(prefix, d);
        const NodeView &v = oldView[d];
        if ((v.ext & (1u << nib)) != 0) {
            const unsigned rank = pop(v.ext & ((1u << nib) - 1));
            cur = ld32(proc, v.childBase + 4 * rank);
            exec(proc, 3);
            if (proc.fatalOccurred())
                return;
        } else {
            cur = 0;
        }
    }

    // 2. Rebuild the path bottom-up in fresh/reclaimed memory.
    const std::uint32_t v =
        r == 0 ? 0 : nibbleAt(prefix, target) >> (kStride - r);
    const std::uint32_t bit = 1u << intIndex(r, v);
    SimAddr child = 0;
    for (int d = static_cast<int>(target); d >= 0; --d) {
        const NodeView &ov = oldView[d];
        std::uint32_t newExt = ov.ext;
        std::uint32_t newInt = ov.intb;
        std::uint32_t repNib = 0xffffffffu;
        int resIdx = -1;
        if (static_cast<unsigned>(d) == target) {
            newInt |= bit;
            resIdx = static_cast<int>(intIndex(r, v));
        } else {
            repNib = nibbleAt(prefix, d);
            newExt |= 1u << repNib;
        }
        child = rebuildNode(proc, oldAddr[d], ov, newExt, newInt,
                            repNib, child, resIdx, nexthop);
        if (proc.fatalOccurred())
            return;
    }

    // 3. Publish: a single pointer store flips every reader to the
    // new version atomically (readers between packets never see a
    // half-applied update).
    st32(proc, rootPtr_, child);
    exec(proc, 1);

    // 4. Host mirror (ground truth for audits and tests).
    const bool fresh = mirror_[len].emplace(prefix, nexthop);
    if (!fresh)
        mirror_[len].insertOrAssign(prefix, nexthop);
    else
        ++prefixes_;
}

void
LpmFib::bootInsert(core::ClumsyProcessor &proc, std::uint32_t prefix,
                   std::uint8_t len, std::uint32_t nexthop)
{
    dma_ = true;
    insert(proc, prefix, len, nexthop);
    dma_ = false;
}

void
LpmFib::withdraw(core::ClumsyProcessor &proc, std::uint32_t prefix,
                 std::uint8_t len)
{
    CLUMSY_ASSERT(len >= 1 && len <= 31, "lpm prefix length 1..31");
    prefix &= maskFor(len);
    const unsigned target = len / kStride;
    const unsigned r = len % kStride;

    auto eraseMirror = [&] {
        if (mirror_[len].erase(prefix))
            --prefixes_;
    };

    std::array<SimAddr, kMaxDepth + 1> oldAddr{};
    std::array<NodeView, kMaxDepth + 1> oldView{};
    SimAddr cur = ld32(proc, rootPtr_);
    exec(proc, 2);
    for (unsigned d = 0; d <= target; ++d) {
        oldAddr[d] = cur;
        if (cur != 0) {
            oldView[d] = readNode(proc, cur);
            if (proc.fatalOccurred())
                return;
        }
        if (d == target)
            break;
        if (cur == 0)
            continue;
        const std::uint32_t nib = nibbleAt(prefix, d);
        const NodeView &v = oldView[d];
        if ((v.ext & (1u << nib)) != 0) {
            const unsigned rank = pop(v.ext & ((1u << nib) - 1));
            cur = ld32(proc, v.childBase + 4 * rank);
            exec(proc, 3);
            if (proc.fatalOccurred())
                return;
        } else {
            cur = 0;
        }
    }

    const std::uint32_t v =
        r == 0 ? 0 : nibbleAt(prefix, target) >> (kStride - r);
    const std::uint32_t bit = 1u << intIndex(r, v);
    // The presence decision reads the (faultable) structure itself: a
    // corrupted bitmap can turn a withdraw into a no-op or a spurious
    // rebuild — update-time corruption in action.
    if (oldAddr[target] == 0 ||
        (oldView[target].intb & bit) == 0) {
        eraseMirror();
        return;
    }

    SimAddr child = 0;
    bool pruned = false;
    for (int d = static_cast<int>(target); d >= 0; --d) {
        const NodeView &ov = oldView[d];
        std::uint32_t newExt = ov.ext;
        std::uint32_t newInt = ov.intb;
        std::uint32_t repNib = 0xffffffffu;
        if (static_cast<unsigned>(d) == target) {
            newInt &= ~bit;
        } else {
            const std::uint32_t nib = nibbleAt(prefix, d);
            if (pruned)
                newExt &= ~(1u << nib);
            else
                repNib = nib;
        }
        if (newExt == 0 && (newInt & 0x7fffu) == 0 && d > 0) {
            // Node emptied: prune it and unlink from the parent.
            retireOld(rcu_, oldAddr[d], ov.ext, ov.intb, ov.childBase,
                      ov.resultBase);
            child = 0;
            pruned = true;
            continue;
        }
        child = rebuildNode(proc, oldAddr[d], ov, newExt, newInt,
                            repNib, child, -1, 0);
        pruned = false;
        if (proc.fatalOccurred())
            return;
    }

    st32(proc, rootPtr_, child);
    exec(proc, 1);
    eraseMirror();
}

std::uint32_t
LpmFib::lookup(core::ClumsyProcessor &proc, std::uint32_t dst,
               core::ValueRecorder *rec, const std::string &recKey)
{
    SimAddr cur = proc.read32(rootPtr_);
    proc.execute(2);
    std::uint32_t best = kNoMatch;
    for (unsigned d = 0; d < kMaxDepth && cur != 0; ++d) {
        // Grace-period invariant bookkeeping: in a golden run no
        // traversal may ever land on a reclaimed node.
        if (rcu_.isReclaimed(cur))
            ++visitsReclaimed_;
        const std::uint32_t bm = proc.read32(cur);
        proc.execute(2);
        if (proc.fatalOccurred())
            return kNoMatch;
        if (rec != nullptr)
            rec->record(recKey, bm);
        const std::uint32_t ext = bm & 0xffffu;
        const std::uint32_t intb = (bm >> 16) & 0x7fffu;
        const std::uint32_t nib = nibbleAt(dst, d);
        if (intb != 0) {
            // Longest internal prefix within this stride.
            for (int r = static_cast<int>(kStride) - 1; r >= 0; --r) {
                const std::uint32_t pv =
                    r == 0 ? 0 : nib >> (kStride - r);
                const std::uint32_t idx =
                    intIndex(static_cast<unsigned>(r), pv);
                if ((intb & (1u << idx)) != 0) {
                    const unsigned rank = pop(intb & ((1u << idx) - 1));
                    const SimAddr rb = proc.read32(cur + 8);
                    best = proc.read32(rb + 4 * rank);
                    proc.execute(4);
                    break;
                }
            }
            if (proc.fatalOccurred())
                return kNoMatch;
        }
        if ((ext & (1u << nib)) != 0) {
            const unsigned rank = pop(ext & ((1u << nib) - 1));
            const SimAddr cb = proc.read32(cur + 4);
            cur = proc.read32(cb + 4 * rank);
            proc.execute(4);
            if (proc.fatalOccurred())
                return kNoMatch;
        } else {
            break;
        }
    }
    proc.execute(2);
    return best;
}

std::uint32_t
LpmFib::goldenLookup(std::uint32_t dst) const
{
    for (int len = 32; len >= 0; --len) {
        const auto &bucket = mirror_[static_cast<std::size_t>(len)];
        if (bucket.empty())
            continue;
        const std::uint32_t *hop =
            bucket.find(dst & maskFor(static_cast<std::uint8_t>(len)));
        if (hop)
            return *hop;
    }
    return kNoMatch;
}

std::uint64_t
LpmFib::auditPath(const core::ClumsyProcessor &proc,
                  std::uint32_t dst) const
{
    Fnv f;
    const SimAddr memLimit = proc.config().memBytes;
    SimAddr cur = proc.peek32(rootPtr_);
    f.mix(cur);
    for (unsigned d = 0; d < kMaxDepth && cur != 0; ++d) {
        if (cur % 4 != 0 || cur + kNodeBytes > memLimit) {
            f.mix(0xdeadbeefu);
            break;
        }
        const std::uint32_t bm = proc.peek32(cur);
        f.mix(bm);
        f.mix(proc.peek32(cur + 12)); // the tag canary
        const std::uint32_t ext = bm & 0xffffu;
        const std::uint32_t intb = (bm >> 16) & 0x7fffu;
        const std::uint32_t nib = nibbleAt(dst, d);
        for (int r = static_cast<int>(kStride) - 1; r >= 0; --r) {
            const std::uint32_t pv = r == 0 ? 0 : nib >> (kStride - r);
            const std::uint32_t idx =
                intIndex(static_cast<unsigned>(r), pv);
            if ((intb & (1u << idx)) != 0) {
                const unsigned rank = pop(intb & ((1u << idx) - 1));
                const SimAddr rb = proc.peek32(cur + 8);
                const SimAddr slot = rb + 4 * rank;
                if (rb % 4 != 0 || slot + 4 > memLimit)
                    f.mix(0xdeadbeefu);
                else
                    f.mix(proc.peek32(slot));
                break;
            }
        }
        if ((ext & (1u << nib)) != 0) {
            const unsigned rank = pop(ext & ((1u << nib) - 1));
            const SimAddr cb = proc.peek32(cur + 4);
            const SimAddr slot = cb + 4 * rank;
            if (cb % 4 != 0 || slot + 4 > memLimit) {
                f.mix(0xdeadbeefu);
                break;
            }
            cur = proc.peek32(slot);
        } else {
            break;
        }
    }
    return f.h;
}

std::uint64_t
LpmFib::auditChecksum(const core::ClumsyProcessor &proc,
                      unsigned maxNodes) const
{
    Fnv f;
    const SimAddr memLimit = proc.config().memBytes;
    std::vector<SimAddr> queue{proc.peek32(rootPtr_)};
    std::size_t head = 0;
    unsigned seen = 0;
    while (head < queue.size() && seen < maxNodes) {
        const SimAddr n = queue[head++];
        if (n == 0)
            continue;
        if (n % 4 != 0 || n + kNodeBytes > memLimit) {
            f.mix(0xdeadbeefu);
            continue;
        }
        ++seen;
        const std::uint32_t bm = proc.peek32(n);
        f.mix(bm);
        f.mix(proc.peek32(n + 12));
        const std::uint32_t ext = bm & 0xffffu;
        const std::uint32_t intb = (bm >> 16) & 0x7fffu;
        const SimAddr rb = proc.peek32(n + 8);
        const unsigned nr = pop(intb);
        for (unsigned i = 0; i < nr; ++i) {
            const SimAddr slot = rb + 4 * i;
            if (rb % 4 != 0 || slot + 4 > memLimit) {
                f.mix(0xdeadbeefu);
                break;
            }
            f.mix(proc.peek32(slot));
        }
        const SimAddr cb = proc.peek32(n + 4);
        const unsigned nc = pop(ext);
        for (unsigned i = 0; i < nc; ++i) {
            const SimAddr slot = cb + 4 * i;
            if (cb % 4 != 0 || slot + 4 > memLimit) {
                f.mix(0xdeadbeefu);
                break;
            }
            queue.push_back(proc.peek32(slot));
        }
    }
    return f.h;
}

// --- LpmApp ---------------------------------------------------------

net::TraceConfig
LpmApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.numDestinations = 256;
    cfg.numFlows = 256;
    cfg.destZipf = 0.9;
    cfg.minPayload = 32;
    cfg.maxPayload = 256;
    return cfg;
}

void
LpmApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 4096); // forwarding fast path
    fib_ = std::make_unique<LpmFib>(proc);

    // Boot FIB over DMA, whole table (DMA-installed-FIB convention,
    // DESIGN §4b.3). route keeps a *timed tail* at boot because a
    // radix insert touches only its own path — a tail fault flags a
    // few destinations. Here path-copying rewrites the root on every
    // insert, so a single boot fault would corrupt the audit path of
    // every packet and dominate the trial; boot is therefore fully
    // untimed, and the timed fault surface is exactly the *runtime*
    // FibInsert/FibWithdraw churn (--ctrl-rate) — which makes the
    // ctrl=0 cells a clean data-plane-only baseline.
    const auto pool = net::TraceGenerator::makeDestPool(traceConfig());
    const auto install =
        static_cast<std::uint32_t>(std::min<std::size_t>(pool.size(), 96));
    for (std::uint32_t i = 0; i < install; ++i) {
        const std::uint32_t dst = pool[i];
        const auto len = static_cast<std::uint8_t>(12 + dst % 13);
        const std::uint32_t prefix = dst & maskFor(len);
        fib_->bootInsert(proc, prefix, len, prefix ^ 0x01010101u);
        if (proc.fatalOccurred())
            return;
    }
}

void
LpmApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    // Packet boundary = reader quiescent point: blocks retired two
    // packets ago may now be reused by the next update.
    fib_->quiesce();

    stagePacket(proc, pkt);

    // 1. Header checksum verification (RFC 1812 5.2.2).
    const std::uint16_t verify = checksumStagedHeader(proc);
    if (proc.fatalOccurred())
        return;
    rec.record("checksum", verify);
    if (verify != 0) {
        rec.record("ttl", 0xdead);
        return;
    }

    // 2. TTL handling (RFC 1812 5.3.1).
    const std::uint8_t ttl = loadTtl(proc);
    proc.execute(3);
    if (ttl <= 1) {
        rec.record("ttl", 0);
        return;
    }
    const auto newTtl = static_cast<std::uint8_t>(ttl - 1);
    storeTtl(proc, newTtl);
    rec.record("ttl", newTtl);

    // 3. Incremental checksum update (RFC 1624).
    const std::uint16_t oldSum = loadChecksum(proc);
    const std::uint8_t proto = proc.read8(pktBase() + 9);
    proc.execute(6);
    const auto oldWord = static_cast<std::uint16_t>((ttl << 8) | proto);
    const auto newWord =
        static_cast<std::uint16_t>((newTtl << 8) | proto);
    const std::uint16_t newSum =
        net::incrementalChecksum(oldSum, oldWord, newWord);
    storeChecksum(proc, newSum);
    proc.execute(8);
    rec.record("checksum", newSum);

    // 4. Longest-prefix match.
    const std::uint32_t dst = loadDstIp(proc);
    proc.execute(3);
    const std::uint32_t nh = fib_->lookup(proc, dst, &rec, "lpm_node");
    if (proc.fatalOccurred())
        return;
    rec.record("lpm_nexthop", nh);

    // 5. Untimed audit of the path this packet's wire-truth
    // destination should take (the "initialization error" series —
    // here it also catches half-applied or corrupted updates).
    rec.record("initialization", fib_->auditPath(proc, pkt.ip.dst));
}

bool
LpmApp::applyCtrlEvent(ClumsyProcessor &proc,
                       const ctrl::CtrlEvent &event)
{
    switch (event.kind) {
    case ctrl::CtrlEventKind::FibInsert:
        fib_->insert(proc, event.key, event.prefixLen, event.value);
        return true;
    case ctrl::CtrlEventKind::FibWithdraw:
        fib_->withdraw(proc, event.key, event.prefixLen);
        return true;
    default:
        return false;
    }
}

} // namespace clumsy::apps
