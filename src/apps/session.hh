/**
 * @file
 * session: stateful connection tracking / stateful NAT.
 *
 * Every packet is matched to its session in the bounded SessionTable
 * by 5-tuple; first packets create the session, idle sessions are
 * evicted on timeout, and each session carries per-flow counters and
 * a NAT rewrite (source address + port) in simulated, faultable
 * memory. Unlike the stateless paper workloads, a single fault in a
 * session record keeps corrupting every later packet of that flow —
 * the workload makes long-lived state the fault surface. Runs under
 * the churn traffic model by default, so sessions genuinely open,
 * idle out and get evicted.
 *
 * Marked values: "src_addr", the probed "session_probe" slots, the
 * final "session_slot", "session_created"/"session_evicted" flags,
 * the per-session "session_pkts"/"session_bytes" counters, the
 * "nat_port" and "translated_ip" written back, and "initialization"
 * (audit of the slot the packet's session should own).
 */

#ifndef CLUMSY_APPS_SESSION_HH
#define CLUMSY_APPS_SESSION_HH

#include <memory>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** Session-table knobs (CLI: --session-capacity/--session-timeout). */
struct SessionParams
{
    std::uint32_t capacity = 1024;
    std::uint32_t timeoutPackets = 4096;
};

/** The stateful session-tracking workload. */
class SessionApp : public BaseApp
{
  public:
    explicit SessionApp(SessionParams params = {}) : params_(params) {}

    std::string name() const override { return "session"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    /** SessionFlush clears a window of slots mid-stream. */
    bool applyCtrlEvent(ClumsyProcessor &proc,
                        const ctrl::CtrlEvent &event) override;

    /** The table (tests/inspection). */
    const SessionTable &table() const { return *table_; }

  private:
    SessionParams params_;
    std::unique_ptr<SessionTable> table_;
    std::uint32_t clock_ = 0; ///< arrival ordinal (host-side)
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_SESSION_HH
