#include "apps/session.hh"

#include "net/checksum.hh"

namespace clumsy::apps
{

net::TraceConfig
SessionApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.numFlows = 512; // live sessions churning through the table
    cfg.numDestinations = 256;
    cfg.minPayload = 32;
    cfg.maxPayload = 256;
    cfg.flowZipf = 0.9;
    cfg.churn.enabled = true;
    cfg.churn.meanLifetimePackets = 2048.0;
    return cfg;
}

void
SessionApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 4096);
    table_ = std::make_unique<SessionTable>(proc, params_.capacity,
                                            params_.timeoutPackets);
    clock_ = 0;
}

void
SessionApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                          ValueRecorder &rec)
{
    stagePacket(proc, pkt);
    ++clock_;

    // Host ground truth first, on the packet's own wire fields: the
    // slot this session *should* occupy, no matter what the timed
    // loads below return.
    const SessionTable::FlowKey wireKey{pkt.ip.src, pkt.ip.dst,
                                        pkt.srcPort, pkt.dstPort,
                                        pkt.ip.protocol};
    const SessionTable::LookupResult golden =
        table_->noteArrival(wireKey, clock_);

    // Parse the 5-tuple through the timed, faulty path.
    SessionTable::FlowKey key;
    key.src = loadSrcIp(proc);
    key.dst = loadDstIp(proc);
    key.srcPort = bswap16(proc.read16(pktBase() + kSrcPortOff));
    key.dstPort = bswap16(proc.read16(pktBase() + kDstPortOff));
    key.proto = proc.read8(pktBase() + 9);
    proc.execute(10);
    if (proc.fatalOccurred())
        return;
    rec.record("src_addr", key.src);

    const SessionTable::LookupResult r =
        table_->lookup(proc, key, clock_, &rec, "session_probe");
    if (proc.fatalOccurred())
        return;
    rec.record("session_slot", r.slot);
    rec.record("session_created", r.created ? 1 : 0);
    rec.record("session_evicted", r.evicted ? 1 : 0);
    if (r.slot == SessionTable::kNoSlot)
        return; // probe window full of live strangers: drop

    // Per-session accounting in simulated memory.
    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(2);
    table_->account(proc, r.slot, len);
    rec.record("session_pkts", table_->loadPktCount(proc, r.slot));
    rec.record("session_bytes", table_->loadByteCount(proc, r.slot));
    if (proc.fatalOccurred())
        return;

    // Stateful NAT rewrite: the session's public address and port
    // replace the private source; the checksum is patched for the two
    // 16-bit words of the address that changed (RFC 1624 twice).
    const std::uint16_t natPort = table_->loadNatPort(proc, r.slot);
    const std::uint32_t pubIp = SessionTable::publicIpFor(r.slot);
    const std::uint16_t oldSum = loadChecksum(proc);
    proc.execute(4);
    const auto oldHi = static_cast<std::uint16_t>(key.src >> 16);
    const auto oldLo = static_cast<std::uint16_t>(key.src & 0xffff);
    const auto newHi = static_cast<std::uint16_t>(pubIp >> 16);
    const auto newLo = static_cast<std::uint16_t>(pubIp & 0xffff);
    std::uint16_t sum = net::incrementalChecksum(oldSum, oldHi, newHi);
    sum = net::incrementalChecksum(sum, oldLo, newLo);
    proc.execute(10);

    storeSrcIp(proc, pubIp);
    proc.write16(pktBase() + kSrcPortOff, bswap16(natPort));
    storeChecksum(proc, sum);
    proc.execute(4);
    if (proc.fatalOccurred())
        return;

    // Read back what actually landed in the header.
    rec.record("nat_port",
               bswap16(proc.read16(pktBase() + kSrcPortOff)));
    rec.record("translated_ip", loadSrcIp(proc));
    proc.execute(4);

    // Untimed audit of the slot the session should own (keyed by the
    // host mirror so corrupted loads cannot steer it).
    if (golden.slot != SessionTable::kNoSlot)
        rec.record("initialization",
                   table_->auditEntry(proc, golden.slot));
}

bool
SessionApp::applyCtrlEvent(ClumsyProcessor &proc,
                           const ctrl::CtrlEvent &event)
{
    if (event.kind != ctrl::CtrlEventKind::SessionFlush)
        return false;
    // Flush a deterministic window of slots (an operator clearing
    // state): flushed sessions are re-created by their next packet,
    // resetting counters and possibly landing in a different slot.
    const std::uint32_t start = event.key % table_->capacity();
    table_->flushWindow(proc, start, event.value);
    return true;
}

} // namespace clumsy::apps
