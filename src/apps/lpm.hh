/**
 * @file
 * lpm: longest-prefix-match forwarding over a tree-bitmap FIB
 * (Eatherton/Dittia-style multibit trie, stride 4) living entirely in
 * simulated, faultable memory — the 10th workload.
 *
 * Unlike route's exact-match radix table, the FIB here is updated
 * *while the data plane forwards*: control-plane FibInsert/FibWithdraw
 * events (src/ctrl/) rebuild the root-to-leaf path read-copy-update
 * style — new nodes are written in faultable memory, made visible by
 * a single root-pointer store, and the replaced nodes are reclaimed
 * through ctrl::RcuDomain only after a grace period. The update path
 * is the interesting fault surface: a bit-flip during the path copy
 * publishes a corrupted subtree that every later packet routed
 * through it will observe.
 *
 * Node layout (16 bytes, 4-aligned):
 *   +0  bitmaps: internalBitmap(15) << 16 | externalBitmap(16)
 *   +4  childBase  — popcount-packed array of child node addresses
 *   +8  resultBase — popcount-packed array of nexthop words
 *   +12 tag: 0x1b700000 | node ordinal (audit canary)
 *
 * The internal bitmap indexes prefixes of length 0..3 within the
 * node's stride: a prefix with r remaining bits of value v occupies
 * bit (1<<r)-1+v, exactly the classic tree-bitmap numbering.
 *
 * Marked values: "checksum", "ttl", the traversed "lpm_node" bitmap
 * words, the final "lpm_nexthop", and "initialization" (untimed audit
 * of the path the destination should take).
 */

#ifndef CLUMSY_APPS_LPM_HH
#define CLUMSY_APPS_LPM_HH

#include <array>
#include <cstdint>
#include <memory>

#include "apps/app.hh"
#include "common/f14_table.hh"
#include "ctrl/ctrl.hh"
#include "ctrl/rcu.hh"

namespace clumsy::apps
{

/** Tree-bitmap FIB in simulated memory with RCU-disciplined updates. */
class LpmFib
{
  public:
    static constexpr std::uint32_t kNoMatch = 0xffffffffu;
    static constexpr SimSize kNodeBytes = 16;
    static constexpr unsigned kStride = 4;
    static constexpr unsigned kMaxDepth = 32 / kStride;

    /** Allocates the root-pointer cell (FIB starts empty). */
    explicit LpmFib(core::ClumsyProcessor &proc);

    /**
     * Insert (or update) prefix -> nexthop through timed accesses:
     * path-copy from the root, single-store publish, retire of the
     * replaced nodes into the RCU domain.
     */
    void insert(core::ClumsyProcessor &proc, std::uint32_t prefix,
                std::uint8_t len, std::uint32_t nexthop);

    /**
     * Boot-time insert over DMA: untimed, unfaultable stores, per the
     * DMA-installed-FIB convention (DESIGN §4b.3) — the control card
     * ships the boot table; only *runtime* updates run through the
     * timed faulty path. Keeps a rare boot-build fault from flagging
     * every packet of a trial.
     */
    void bootInsert(core::ClumsyProcessor &proc, std::uint32_t prefix,
                    std::uint8_t len, std::uint32_t nexthop);

    /**
     * Withdraw a prefix (same RCU path-copy discipline; empty nodes
     * are pruned bottom-up). A prefix the timed walk cannot find is a
     * no-op — in a faulty run that decision itself can be skewed by a
     * corrupted load, which is the point.
     */
    void withdraw(core::ClumsyProcessor &proc, std::uint32_t prefix,
                  std::uint8_t len);

    /**
     * Longest-prefix match through timed accesses. Traversed node
     * bitmap words are recorded under @p recKey.
     * @return the nexthop, or kNoMatch.
     */
    std::uint32_t lookup(core::ClumsyProcessor &proc, std::uint32_t dst,
                         core::ValueRecorder *rec = nullptr,
                         const std::string &recKey = {});

    /** Host-side ground-truth LPM over the mirrored prefix set. */
    std::uint32_t goldenLookup(std::uint32_t dst) const;

    /**
     * Untimed audit hash over the node path @p dst traverses (the
     * "initialization error" marked value: it changes iff the
     * structure this packet depends on was corrupted).
     */
    std::uint64_t auditPath(const core::ClumsyProcessor &proc,
                            std::uint32_t dst) const;

    /** Untimed structural hash of up to maxNodes nodes (BFS). */
    std::uint64_t auditChecksum(const core::ClumsyProcessor &proc,
                                unsigned maxNodes = 64) const;

    /** The reclamation domain (tests/inspection). */
    const ctrl::RcuDomain &rcu() const { return rcu_; }

    /** One reader quiescent point (called per completed packet). */
    void quiesce() { rcu_.quiesce(); }

    /**
     * Lookups that dereferenced a node sitting on the RCU free list —
     * a grace-period violation. Must be 0 in every golden run (the
     * epoch-correctness invariant test).
     */
    std::uint64_t visitsReclaimed() const { return visitsReclaimed_; }

    /** Host-side prefix count. */
    std::size_t prefixCount() const { return prefixes_; }

    /** Nodes allocated so far (fresh + reused). */
    std::uint64_t nodeCount() const { return nodes_; }

    /** Simulated address of the root pointer cell. */
    SimAddr rootPtrAddr() const { return rootPtr_; }

  private:
    /** A decoded node header read through the timed path. */
    struct NodeView
    {
        std::uint32_t ext = 0;   ///< external (child) bitmap
        std::uint32_t intb = 0;  ///< internal (prefix) bitmap
        SimAddr childBase = 0;
        SimAddr resultBase = 0;
    };

    static std::uint32_t nibbleAt(std::uint32_t key, unsigned depth)
    {
        return (key >> (28 - kStride * depth)) & 0xfu;
    }

    /** Tree-bitmap internal index for r remaining bits of value v. */
    static std::uint32_t intIndex(unsigned r, std::uint32_t v)
    {
        return (1u << r) - 1 + v;
    }

    NodeView readNode(core::ClumsyProcessor &proc, SimAddr addr) const;

    /**
     * Update-path memory primitives: timed faulty accesses normally,
     * untimed DMA during bootInsert(). The lookup path never switches
     * — it is always timed.
     */
    std::uint32_t ld32(core::ClumsyProcessor &proc, SimAddr addr) const;
    void st32(core::ClumsyProcessor &proc, SimAddr addr,
              std::uint32_t value) const;
    void exec(core::ClumsyProcessor &proc, unsigned ops) const;

    /** Reclaimed-or-fresh block allocation (see ctrl::RcuDomain). */
    SimAddr allocBlock(core::ClumsyProcessor &proc, SimSize size);

    /**
     * Rebuild one node with new bitmaps/arrays; returns the new node
     * address. Copies the surviving child/result words from the old
     * node through timed loads and retires the old blocks.
     */
    SimAddr rebuildNode(core::ClumsyProcessor &proc, SimAddr oldAddr,
                        const NodeView &oldView, std::uint32_t newExt,
                        std::uint32_t newInt, std::uint32_t replaceNib,
                        SimAddr replaceChild, int resultIdx,
                        std::uint32_t nexthop);

    SimAddr rootPtr_ = 0;
    bool dma_ = false; ///< bootInsert() in flight: route via DMA
    ctrl::RcuDomain rcu_;
    std::uint64_t nodes_ = 0;
    std::uint64_t visitsReclaimed_ = 0;
    std::size_t prefixes_ = 0;

    /** Host mirror: per-length prefix -> nexthop maps. */
    std::array<F14Table<std::uint32_t, std::uint32_t>, 33> mirror_;
};

/** The lpm workload. */
class LpmApp : public BaseApp
{
  public:
    std::string name() const override { return "lpm"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    bool applyCtrlEvent(ClumsyProcessor &proc,
                        const ctrl::CtrlEvent &event) override;

    /** The FIB (tests/inspection). */
    LpmFib &fib() { return *fib_; }

  private:
    std::unique_ptr<LpmFib> fib_;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_LPM_HH
