#include "apps/adpcm.hh"

namespace clumsy::apps
{

namespace
{

/** IMA ADPCM step-size table (89 entries). */
constexpr std::uint16_t kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,
    17,    19,    21,    23,    25,    28,    31,    34,    37,
    41,    45,    50,    55,    60,    66,    73,    80,    88,
    97,    107,   118,   130,   143,   157,   173,   190,   209,
    230,   253,   279,   307,   337,   371,   408,   449,   494,
    544,   598,   658,   724,   796,   876,   963,   1060,  1166,
    1282,  1411,  1552,  1707,  1878,  2066,  2272,  2499,  2749,
    3024,  3327,  3660,  4026,  4428,  4871,  5358,  5894,  6484,
    7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
};

/** IMA ADPCM index-adjustment table. */
constexpr std::int8_t kIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8,
};

int
clampIndex(int idx)
{
    if (idx < 0)
        return 0;
    if (idx > 88)
        return 88;
    return idx;
}

int
clampSample(int s)
{
    if (s < -32768)
        return -32768;
    if (s > 32767)
        return 32767;
    return s;
}

/** One IMA quantization step given the current step size. */
std::uint8_t
quantize(int diff, int step, int &vpdiff)
{
    std::uint8_t code = 0;
    if (diff < 0) {
        code = 8;
        diff = -diff;
    }
    vpdiff = step >> 3;
    if (diff >= step) {
        code |= 4;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        code |= 2;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        code |= 1;
        vpdiff += step;
    }
    if (code & 8)
        vpdiff = -vpdiff;
    return code;
}

} // namespace

net::TraceConfig
AdpcmApp::traceConfig() const
{
    net::TraceConfig cfg;
    // Voice frames: 20 ms of 16-bit 8 kHz audio is 320 bytes; mix in
    // some wideband frames.
    cfg.minPayload = 320;
    cfg.maxPayload = 960;
    return cfg;
}

void
AdpcmApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 2048); // tight encode loop
    stepTable_ = proc.alloc(89 * 4, 4);
    for (unsigned i = 0; i < 89; ++i) {
        proc.write32(stepTable_ + i * 4, kStepTable[i]);
        proc.execute(4);
    }
    indexTable_ = proc.alloc(16 * 4, 4);
    for (unsigned i = 0; i < 16; ++i) {
        proc.write32(indexTable_ + i * 4,
                     static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(kIndexTable[i])));
        proc.execute(4);
    }
    state_ = proc.alloc(8, 4);
}

void
AdpcmApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                        ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(4);
    const SimAddr pcm = pktBase() + kPayloadOff;

    // Reset the coder state for each packet (frame-independent).
    proc.write32(state_ + 0, 0); // predictor
    proc.write32(state_ + 4, 0); // step index
    proc.execute(4);

    int predictor = static_cast<std::int32_t>(proc.read32(state_ + 0));
    int index = static_cast<std::int32_t>(proc.read32(state_ + 4));
    proc.execute(4);

    std::uint64_t streamHash = 1469598103934665603ull;
    ClumsyProcessor::LoopGuard guard(proc, kMaxPayload / 2 + 64,
                                     "adpcm sample loop");
    for (std::uint32_t off = 0; off + 1 < len; off += 2) {
        if (!guard.tick())
            return;
        const auto sample = static_cast<std::int16_t>(
            proc.read16(pcm + off));
        const int step = static_cast<std::int32_t>(
            proc.read32(stepTable_ + static_cast<SimAddr>(
                                         clampIndex(index)) *
                                         4));
        int vpdiff = 0;
        const std::uint8_t code =
            quantize(sample - predictor, step, vpdiff);
        predictor = clampSample(predictor + vpdiff);
        const int adjust = static_cast<std::int32_t>(
            proc.read32(indexTable_ + (code & 0xf) * 4));
        index = clampIndex(index + adjust);
        proc.execute(14);
        streamHash = (streamHash ^ code) * 1099511628211ull;
    }
    if (proc.fatalOccurred())
        return;

    proc.write32(state_ + 0, static_cast<std::uint32_t>(predictor));
    proc.write32(state_ + 4, static_cast<std::uint32_t>(index));
    proc.execute(4);

    rec.record("adpcm_stream", streamHash);
    rec.record("adpcm_predictor",
               static_cast<std::uint32_t>(predictor));
    rec.record("adpcm_index", static_cast<std::uint32_t>(index));
}

std::vector<std::uint8_t>
AdpcmApp::referenceEncode(const std::uint8_t *pcm, std::size_t bytes)
{
    std::vector<std::uint8_t> codes;
    codes.reserve(bytes / 2);
    int predictor = 0;
    int index = 0;
    for (std::size_t off = 0; off + 1 < bytes; off += 2) {
        const auto sample = static_cast<std::int16_t>(
            static_cast<std::uint16_t>(pcm[off] |
                                       (pcm[off + 1] << 8)));
        const int step = kStepTable[clampIndex(index)];
        int vpdiff = 0;
        const std::uint8_t code =
            quantize(sample - predictor, step, vpdiff);
        predictor = clampSample(predictor + vpdiff);
        index = clampIndex(index + kIndexTable[code & 0xf]);
        codes.push_back(code);
    }
    return codes;
}

} // namespace clumsy::apps
