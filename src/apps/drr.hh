/**
 * @file
 * DRR: deficit round-robin scheduling (Shreedhar & Varghese; paper
 * Section 2).
 *
 * Connections are hashed to per-flow queues living in simulated
 * memory; each arrival enqueues the packet's length and the scheduler
 * serves the queue under its deficit counter. Marked values per the
 * paper: "route_entry" and "radix_node" (DRR still routes), the
 * "deficit" read for the packet, a sampled "deficit_list" audit, and
 * "initialization".
 *
 * Simulated queue record (32 bytes each):
 *   +0 count  +4 head  +8 tail  +12 deficit  +16 ringAddr  +20.. pad
 */

#ifndef CLUMSY_APPS_DRR_HH
#define CLUMSY_APPS_DRR_HH

#include <memory>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** The deficit-round-robin scheduling workload. */
class DrrApp : public BaseApp
{
  public:
    static constexpr std::uint32_t kNumQueues = 16;
    static constexpr std::uint32_t kRingSlots = 32;
    static constexpr std::uint32_t kQuantum = 512;

    std::string name() const override { return "drr"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

  private:
    std::unique_ptr<RouteTable> table_;
    SimAddr queues_ = 0; ///< kNumQueues records of 32 bytes
    std::uint32_t auditCursor_ = 0;

    SimAddr queueAddr(std::uint32_t q) const { return queues_ + q * 32; }
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_DRR_HH
