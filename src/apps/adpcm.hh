/**
 * @file
 * ADPCM: IMA ADPCM voice encoding — the media-processor extension.
 *
 * The paper notes its idea "can be applied to any type of processor
 * that executes applications with fault resiliency (e.g., media
 * processors)". This workload makes that concrete: packets carry
 * 16-bit PCM audio, and the data plane compresses them with the IMA
 * ADPCM coder, whose step and index tables live in simulated memory.
 * A fault that perturbs a step lookup degrades the encoding (louder
 * quantization noise) rather than breaking anything — the archetypal
 * gracefully-degrading media kernel.
 *
 * Marked values: a hash of the emitted code stream ("adpcm_stream")
 * and the coder's final state ("adpcm_predictor", "adpcm_index").
 * This app is an extension beyond the paper's seven (it is listed by
 * extensionAppNames(), not allAppNames(), so the paper's tables keep
 * their original row set).
 */

#ifndef CLUMSY_APPS_ADPCM_HH
#define CLUMSY_APPS_ADPCM_HH

#include <vector>

#include "apps/app.hh"

namespace clumsy::apps
{

/** The IMA ADPCM media workload. */
class AdpcmApp : public BaseApp
{
  public:
    std::string name() const override { return "adpcm"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    /**
     * Host-side reference encoder over little-endian 16-bit samples
     * (tests compare the simulated coder against this).
     * @return the emitted 4-bit codes.
     */
    static std::vector<std::uint8_t> referenceEncode(
        const std::uint8_t *pcm, std::size_t bytes);

  private:
    SimAddr stepTable_ = 0;  ///< 89 step sizes
    SimAddr indexTable_ = 0; ///< 16 index adjustments
    SimAddr state_ = 0;      ///< predictor (i32) + index (i32)
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_ADPCM_HH
