/**
 * @file
 * Long-lived application tables in simulated memory: the RouteTable
 * (route/drr/tl/url), the NAT binding table (nat) and the URL table
 * (url). Each is an array of fixed-size records reached via indices
 * stored in the shared radix tree, so a fault in either the radix
 * value or the record itself produces exactly the error classes the
 * paper measures ("RouteTable entry", "NAT table entry", ...).
 */

#ifndef CLUMSY_APPS_TABLES_HH
#define CLUMSY_APPS_TABLES_HH

#include <cstdint>
#include <vector>

#include "apps/radix_tree.hh"
#include "common/f14_table.hh"
#include "core/processor.hh"

namespace clumsy::apps
{

/**
 * IPv4 forwarding table: 16-byte entries {nextHop, iface, metric,
 * flags} indexed by the radix tree on destination address.
 */
class RouteTable
{
  public:
    static constexpr SimSize kEntryBytes = 16;
    static constexpr std::uint32_t kNumInterfaces = 8;

    /**
     * Build the table and radix index over a destination pool.
     *
     * Most of the table arrives by DMA (the control card installs
     * the FIB), keeping the simulated control plane short as in the
     * paper; the last `timedTail` routes are installed through the
     * timed, faulty path — the application's own control-plane code
     * and the fault surface for the paper's control-plane
     * experiments (Figure 6(a)).
     */
    RouteTable(core::ClumsyProcessor &proc,
               const std::vector<std::uint32_t> &destinations,
               std::uint32_t timedTail = 32);

    /** Deterministic next hop installed for a destination. */
    static std::uint32_t nextHopFor(std::uint32_t dst)
    {
        return dst ^ 0x01010101u;
    }

    /** Radix lookup: destination -> entry index (kNoMatch on miss). */
    std::uint32_t lookupIndex(core::ClumsyProcessor &proc,
                              std::uint32_t dst,
                              core::ValueRecorder *rec = nullptr,
                              const std::string &recKey = {}) const;

    /** Simulated address of entry idx (unchecked; wild indices are
     *  caught by the processor's bounds machinery). */
    SimAddr entryAddr(std::uint32_t idx) const
    {
        return base_ + idx * kEntryBytes;
    }

    /** Timed load of an entry's next hop. */
    std::uint32_t loadNextHop(core::ClumsyProcessor &proc,
                              std::uint32_t idx) const;

    /** Timed load of an entry's output interface. */
    std::uint32_t loadIface(core::ClumsyProcessor &proc,
                            std::uint32_t idx) const;

    /** Untimed structural hash of up to maxEntries entries. */
    std::uint64_t auditChecksum(const core::ClumsyProcessor &proc,
                                unsigned maxEntries = 32) const;

    /**
     * Host-side ground truth: the index this destination was given at
     * build time (RadixTree::kNoMatch when never installed). Used by
     * the harness to audit exactly the entry a packet should use.
     */
    std::uint32_t goldenIndex(std::uint32_t dst) const;

    /** Untimed hash of one entry's four words (peek-based). */
    std::uint64_t auditEntry(const core::ClumsyProcessor &proc,
                             std::uint32_t idx) const;

    /** The radix index. */
    const RadixTree &radix() const { return radix_; }

    /** Number of entries. */
    std::uint32_t size() const { return count_; }

  private:
    RadixTree radix_;
    SimAddr base_ = 0;
    std::uint32_t count_ = 0;
    F14Table<std::uint32_t, std::uint32_t> index_;
};

/**
 * NAT binding table: bindings are created on demand by outbound
 * packets (classic NAPT behaviour). 16-byte entries
 * {privIp, pubIp, pubPort, iface}, radix-indexed by private source.
 */
class NatTable
{
  public:
    static constexpr SimSize kEntryBytes = 16;

    /** @param capacity maximum number of bindings. */
    NatTable(core::ClumsyProcessor &proc, std::uint32_t capacity);

    /** The binding radix tree (tests/inspection). */
    const RadixTree &radix() const { return radix_; }

    /**
     * Look up (or create) the binding for a private source address,
     * through timed accesses. @return the entry index, or
     * RadixTree::kNoMatch when the table is full.
     */
    std::uint32_t translate(core::ClumsyProcessor &proc,
                            std::uint32_t privIp,
                            core::ValueRecorder *rec = nullptr,
                            const std::string &recKey = {});

    /** The public address assigned to binding idx (deterministic). */
    static std::uint32_t publicIpFor(std::uint32_t idx)
    {
        return 0xc6336400u | (idx & 0xffu); // 198.51.100.x
    }

    /** Timed load of the binding's public address. */
    std::uint32_t loadPublicIp(core::ClumsyProcessor &proc,
                               std::uint32_t idx) const;

    /** Timed load of the binding's output interface. */
    std::uint32_t loadIface(core::ClumsyProcessor &proc,
                            std::uint32_t idx) const;

    /** Untimed structural hash of up to maxEntries bindings. */
    std::uint64_t auditChecksum(const core::ClumsyProcessor &proc,
                                unsigned maxEntries = 32) const;

    /** Current binding count (timed read of the counter cell). */
    std::uint32_t loadCount(core::ClumsyProcessor &proc) const;

    /**
     * Host-side ground-truth bookkeeping: tell the table a packet
     * with this (wire-truth) private source arrived. Must be fed the
     * Packet's own field, never a value loaded through the faulty
     * path, so golden and faulty runs assign identical indices.
     */
    void noteArrival(std::uint32_t privIp);

    /**
     * The index this private source *should* have, assigned in
     * first-seen order by noteArrival() (kNoMatch before the
     * source's first packet).
     */
    std::uint32_t goldenIndex(std::uint32_t privIp) const;

    /** Untimed hash of one binding's four words (peek-based). */
    std::uint64_t auditEntry(const core::ClumsyProcessor &proc,
                             std::uint32_t idx) const;

    /**
     * Control-plane rule removal (ctrl::CtrlEventKind::NatRemove):
     * tombstone the radix leaf with kNoMatch through the timed path —
     * a single-word in-place publish — and drop the host-side
     * binding. The source's next packet re-creates a fresh binding
     * under a new index, exactly like a real NAT whose mapping was
     * cleared.
     */
    void removeBinding(core::ClumsyProcessor &proc, std::uint32_t privIp);

  private:
    RadixTree radix_;
    SimAddr base_ = 0;
    SimAddr countAddr_ = 0;
    std::uint32_t capacity_ = 0;
    F14Table<std::uint32_t, std::uint32_t> index_;

    /**
     * Next golden index to assign. Monotone like the simulated
     * counter cell: removals shrink index_ but never recycle indices,
     * keeping host and simulated assignments aligned under churn.
     */
    std::uint32_t nextIdx_ = 0;
};

/**
 * URL switching table: records {strAddr, strLen, destIp, pad}; the
 * URL strings live in simulated memory and are matched byte-by-byte.
 */
class UrlTable
{
  public:
    static constexpr SimSize kEntryBytes = 16;

    /**
     * Build from a URL pool; each URL maps to a destination drawn
     * round-robin from the destination pool. All but the last
     * `timedTail` entries are installed via DMA (see RouteTable);
     * the tail is written through the timed path.
     */
    UrlTable(core::ClumsyProcessor &proc,
             const std::vector<std::string> &urls,
             const std::vector<std::uint32_t> &destinations,
             std::uint32_t timedTail = 8);

    /**
     * Match a URL staged at [urlAddr, urlAddr+urlLen) against the
     * table through timed byte loads. @return the matching entry
     * index or kNoMatch.
     */
    static constexpr std::uint32_t kNoMatch = 0xffffffffu;
    std::uint32_t match(core::ClumsyProcessor &proc, SimAddr urlAddr,
                        std::uint32_t urlLen) const;

    /** Timed load of entry idx's destination IP. */
    std::uint32_t loadDest(core::ClumsyProcessor &proc,
                           std::uint32_t idx) const;

    /** Untimed structural hash of up to maxEntries entries. */
    std::uint64_t auditChecksum(const core::ClumsyProcessor &proc,
                                unsigned maxEntries = 16) const;

    /** Untimed hash of one entry (record + string bytes, peeked). */
    std::uint64_t auditEntry(const core::ClumsyProcessor &proc,
                             std::uint32_t idx) const;

    /** Number of entries. */
    std::uint32_t size() const { return count_; }

  private:
    SimAddr base_ = 0;
    std::uint32_t count_ = 0;
};

/**
 * Bounded connection-tracking session table (the "session" workload):
 * an open-addressed hash table of 32-byte session records in simulated
 * memory, with timeout-driven eviction — the state machinery of a
 * stateful NAT / firewall. Layout per entry (word offsets):
 *   +0  source IP       +4  destination IP
 *   +8  srcPort<<16|dstPort   +12 proto<<16|occupied
 *   +16 assigned NAT port     +20 last-seen packet clock
 *   +24 session packet count  +28 session byte count
 * Lookups probe linearly over at most kMaxProbes slots, creating the
 * session on first sight, evicting in place when the incumbent's
 * last-seen clock has timed out, and dropping the packet when the
 * probe window is full of live strangers. A host-side mirror runs the
 * identical algorithm on wire-truth fields, giving golden slot
 * assignments that corrupted loads cannot skew.
 */
class SessionTable
{
  public:
    static constexpr SimSize kEntryBytes = 32;
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::uint32_t kMaxProbes = 64;

    /** The 5-tuple identifying a session. */
    struct FlowKey
    {
        std::uint32_t src = 0;
        std::uint32_t dst = 0;
        std::uint16_t srcPort = 0;
        std::uint16_t dstPort = 0;
        std::uint8_t proto = 0;
    };

    /** Outcome of one lookup (simulated or mirrored). */
    struct LookupResult
    {
        std::uint32_t slot = kNoSlot;
        bool created = false; ///< installed a fresh session
        bool evicted = false; ///< ... into a timed-out incumbent's slot
    };

    /**
     * @param capacity number of slots; @param timeoutPackets sessions
     * idle longer than this (in arrival-clock ticks) are evictable.
     */
    SessionTable(core::ClumsyProcessor &proc, std::uint32_t capacity,
                 std::uint32_t timeoutPackets);

    /**
     * Find or create the session for @p key at arrival clock @p now,
     * through timed accesses; probed slots are recorded under
     * @p recKey (the session analogue of "radix_node").
     */
    LookupResult lookup(core::ClumsyProcessor &proc, const FlowKey &key,
                        std::uint32_t now,
                        core::ValueRecorder *rec = nullptr,
                        const std::string &recKey = {});

    /** Charge one packet of @p bytes to the session (timed RMW). */
    void account(core::ClumsyProcessor &proc, std::uint32_t slot,
                 std::uint32_t bytes);

    /** Deterministic NAT port assigned to a slot's session. */
    static std::uint16_t natPortFor(std::uint32_t slot)
    {
        return static_cast<std::uint16_t>(10000u + slot % 50000u);
    }

    /** Deterministic public address for a slot (203.0.113.x). */
    static std::uint32_t publicIpFor(std::uint32_t slot)
    {
        return 0xcb007100u | (slot & 0xffu);
    }

    /** Timed load of the slot's assigned NAT port. */
    std::uint16_t loadNatPort(core::ClumsyProcessor &proc,
                              std::uint32_t slot) const;

    /** Timed load of the slot's packet counter. */
    std::uint32_t loadPktCount(core::ClumsyProcessor &proc,
                               std::uint32_t slot) const;

    /** Timed load of the slot's byte counter. */
    std::uint32_t loadByteCount(core::ClumsyProcessor &proc,
                                std::uint32_t slot) const;

    /** Untimed hash of one slot's eight words (peek-based). */
    std::uint64_t auditEntry(const core::ClumsyProcessor &proc,
                             std::uint32_t slot) const;

    /**
     * Host-side ground truth: run the identical lookup algorithm on
     * the packet's wire-truth key. Must be called exactly once per
     * packet, before the timed lookup, with fields taken from the
     * net::Packet itself.
     */
    LookupResult noteArrival(const FlowKey &key, std::uint32_t now);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t timeoutPackets() const { return timeout_; }

    /** Mirror counters (ground truth for the divergence tests). */
    std::uint64_t hostCreated() const { return hostCreated_; }
    std::uint64_t hostEvicted() const { return hostEvicted_; }
    std::uint64_t hostDropped() const { return hostDropped_; }
    std::uint64_t hostFlushed() const { return hostFlushed_; }

    /**
     * Control-plane flush (ctrl::CtrlEventKind::SessionFlush): clear
     * the occupied bit of @p count slots starting at @p start through
     * timed read-modify-writes, mirrored host-side. @return the
     * number of live sessions flushed (host ground truth).
     */
    std::uint32_t flushWindow(core::ClumsyProcessor &proc,
                              std::uint32_t start, std::uint32_t count);

  private:
    SimAddr entryAddr(std::uint32_t slot) const
    {
        return base_ + slot * kEntryBytes;
    }

    std::uint32_t hashKey(const FlowKey &key) const;

    struct HostEntry
    {
        FlowKey key;
        std::uint32_t lastSeen = 0;
        bool used = false;
    };

    SimAddr base_ = 0;
    std::uint32_t capacity_ = 0;
    std::uint32_t timeout_ = 0;
    std::vector<HostEntry> mirror_;
    std::uint64_t hostCreated_ = 0;
    std::uint64_t hostEvicted_ = 0;
    std::uint64_t hostDropped_ = 0;
    std::uint64_t hostFlushed_ = 0;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_TABLES_HH
