/**
 * @file
 * NAT: network address translation (paper Section 2).
 *
 * Outbound packets from the private 10/8 network have their source
 * address rewritten to a public address; bindings are created on
 * demand in the radix-indexed NAT table (classic NAPT). Marked values
 * per the paper: the initial source address ("src_addr"), the
 * interface chosen ("interface"), the destination after translation
 * ("dest_addr"), the traversed "radix_node"s, the "translated_ip"
 * written back, and "initialization" (NAT table audit).
 */

#ifndef CLUMSY_APPS_NAT_HH
#define CLUMSY_APPS_NAT_HH

#include <memory>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** The NAT workload. */
class NatApp : public BaseApp
{
  public:
    std::string name() const override { return "nat"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    /** NatAdd pre-installs a binding; NatRemove tombstones one. */
    bool applyCtrlEvent(ClumsyProcessor &proc,
                        const ctrl::CtrlEvent &event) override;

    /** The table (tests/inspection). */
    NatTable &table() { return *table_; }

  private:
    std::unique_ptr<NatTable> table_;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_NAT_HH
