/**
 * @file
 * Shared machinery for the NetBench-style workloads.
 *
 * BaseApp gives every application:
 *  - a DMA'd packet staging area in simulated memory (header laid out
 *    in network byte order exactly as on the wire, ports and payload
 *    length alongside), so per-packet parsing generates real D-cache
 *    traffic;
 *  - endian-aware field accessors that go through the timed, faulty
 *    memory path;
 *  - conventional loop-budget constants for fatal-error detection.
 *
 * Simulated packet staging layout (all offsets from pktBase()):
 *   +0  .. +19 : IPv4 header, network byte order
 *   +20 .. +21 : source port, network order
 *   +22 .. +23 : destination port, network order
 *   +24 .. +27 : payload length (host-order u32)
 *   +32 ..     : payload bytes
 */

#ifndef CLUMSY_APPS_APP_HH
#define CLUMSY_APPS_APP_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/processor.hh"
#include "net/packet.hh"

namespace clumsy::apps
{

using core::ClumsyProcessor;
using core::PacketApp;
using core::ValueRecorder;

/** Maximum payload the staging buffer accepts. */
inline constexpr SimSize kMaxPayload = 2048;

/** Default loop budget for data-dependent loops (see LoopGuard). */
inline constexpr std::uint32_t kLoopBudget = 8192;

/** Byte-swap a 32-bit value (wire <-> host order). */
constexpr std::uint32_t
bswap32(std::uint32_t v)
{
    return __builtin_bswap32(v);
}

/** Byte-swap a 16-bit value. */
constexpr std::uint16_t
bswap16(std::uint16_t v)
{
    return __builtin_bswap16(v);
}

/** Common base for the seven workloads. */
class BaseApp : public core::PacketApp
{
  protected:
    /** Offsets within the staging area. */
    static constexpr SimSize kHdrOff = 0;
    static constexpr SimSize kSrcPortOff = 20;
    static constexpr SimSize kDstPortOff = 22;
    static constexpr SimSize kPayloadLenOff = 24;
    static constexpr SimSize kPayloadOff = 32;

    /** Allocate the staging buffer (call from initialize()). */
    void allocStaging(ClumsyProcessor &proc);

    /** DMA one packet into the staging buffer (packet arrival). */
    void stagePacket(ClumsyProcessor &proc, const net::Packet &pkt);

    /** Base address of the staging buffer. */
    SimAddr pktBase() const { return staging_; }

    // Timed, faulty field accessors --------------------------------

    /** Load the source IP (host order) from the staged header. */
    std::uint32_t loadSrcIp(ClumsyProcessor &proc) const;

    /** Load the destination IP (host order). */
    std::uint32_t loadDstIp(ClumsyProcessor &proc) const;

    /** Load the TTL byte. */
    std::uint8_t loadTtl(ClumsyProcessor &proc) const;

    /** Load the wire checksum (host order). */
    std::uint16_t loadChecksum(ClumsyProcessor &proc) const;

    /** Load the payload length. */
    std::uint32_t loadPayloadLen(ClumsyProcessor &proc) const;

    /** Store a new TTL byte. */
    void storeTtl(ClumsyProcessor &proc, std::uint8_t ttl) const;

    /** Store a new checksum (host order in, wire order stored). */
    void storeChecksum(ClumsyProcessor &proc, std::uint16_t sum) const;

    /** Store a new source IP (host order in, wire order stored). */
    void storeSrcIp(ClumsyProcessor &proc, std::uint32_t ip) const;

    /** Store a new destination IP. */
    void storeDstIp(ClumsyProcessor &proc, std::uint32_t ip) const;

    /**
     * Compute the RFC 1071 checksum over the staged 20-byte header
     * through timed 16-bit loads (the way route/url verify it).
     */
    std::uint16_t checksumStagedHeader(ClumsyProcessor &proc) const;

  private:
    SimAddr staging_ = 0;
};

/** The seven workloads, in the paper's Table I order. */
const std::vector<std::string> &allAppNames();

/** Extension workloads beyond the paper's set (e.g. "adpcm"). */
const std::vector<std::string> &extensionAppNames();

/** Construct a fresh instance of the named workload; fatal()s on an
 *  unknown name. */
std::unique_ptr<core::PacketApp> makeApp(const std::string &name);

/** An AppFactory for the named workload. */
core::AppFactory appFactory(const std::string &name);

} // namespace clumsy::apps

#endif // CLUMSY_APPS_APP_HH
