#include "apps/url.hh"

#include "net/checksum.hh"
#include "net/trace_gen.hh"

namespace clumsy::apps
{

net::TraceConfig
UrlApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.httpPayloads = true;
    cfg.numUrls = 96;
    cfg.numDestinations = 1024;
    cfg.numFlows = 512;
    cfg.destZipf = 0.6;
    return cfg;
}

void
UrlApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 6144); // parser + matcher + forwarder
    const auto cfg = traceConfig();
    const auto pool = net::TraceGenerator::makeDestPool(cfg);
    const auto urlPool = net::TraceGenerator::makeUrlPool(cfg);
    urls_ = std::make_unique<UrlTable>(proc, urlPool, pool);
    routes_ = std::make_unique<RouteTable>(proc, pool, 16);
    destPool_ = pool;
    for (std::uint32_t i = 0; i < urlPool.size(); ++i)
        urlIndex_.emplace(urlPool[i], i);
}

void
UrlApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(4);
    const SimAddr payload = pktBase() + kPayloadOff;

    // Parse "GET <url> HTTP/..." through timed byte loads.
    static const char kMethod[4] = {'G', 'E', 'T', ' '};
    bool isGet = len >= 8;
    for (unsigned i = 0; isGet && i < 4; ++i) {
        isGet = proc.read8(payload + i) ==
                static_cast<std::uint8_t>(kMethod[i]);
        proc.execute(3);
    }
    if (proc.fatalOccurred())
        return;
    if (!isGet) {
        rec.record("url_entry", UrlTable::kNoMatch);
        return; // not an HTTP GET: pass through unswitched
    }

    std::uint32_t urlEnd = 4;
    ClumsyProcessor::LoopGuard scan(proc, 512, "url scan");
    while (urlEnd < len) {
        if (!scan.tick())
            return;
        if (proc.read8(payload + urlEnd) == ' ')
            break;
        ++urlEnd;
        proc.execute(3);
    }
    if (proc.fatalOccurred())
        return;
    const std::uint32_t urlLen = urlEnd - 4;

    const std::uint32_t entry = urls_->match(proc, payload + 4, urlLen);
    if (proc.fatalOccurred())
        return;
    rec.record("url_entry", entry);
    if (entry == UrlTable::kNoMatch)
        return;

    // Switch the packet to the matched server.
    const std::uint32_t dest = urls_->loadDest(proc, entry);
    if (proc.fatalOccurred())
        return;
    storeDstIp(proc, dest);
    proc.execute(4);
    rec.record("final_dest", dest);

    // TTL decrement + full checksum recompute (the header changed in
    // two places, so URL switches regenerate rather than patch).
    const std::uint8_t ttl = loadTtl(proc);
    proc.execute(3);
    if (ttl <= 1) {
        rec.record("ttl", 0);
        return;
    }
    storeTtl(proc, static_cast<std::uint8_t>(ttl - 1));
    rec.record("ttl", ttl - 1);
    storeChecksum(proc, 0);
    const std::uint16_t sum = checksumStagedHeader(proc);
    if (proc.fatalOccurred())
        return;
    storeChecksum(proc, sum);
    proc.execute(4);
    rec.record("checksum", sum);

    // Forward to the new destination.
    const std::uint32_t idx =
        routes_->lookupIndex(proc, dest, &rec, "radix_node");
    if (proc.fatalOccurred())
        return;
    if (idx == RadixTree::kNoMatch) {
        rec.record("route_entry", 0);
    } else {
        const std::uint32_t nextHop = routes_->loadNextHop(proc, idx);
        if (proc.fatalOccurred())
            return;
        rec.record("route_entry", nextHop);
    }

    // Untimed audits scoped to this packet: the URL entry and the
    // RouteTable entry it should switch to, identified from the wire
    // payload (host truth) so corrupted loads cannot skew the key.
    const std::string wire(pkt.payload.begin(), pkt.payload.end());
    const auto getPos = wire.find("GET ");
    const auto spPos =
        getPos == 0 ? wire.find(' ', 4) : std::string::npos;
    if (spPos != std::string::npos) {
        const std::string wireUrl = wire.substr(4, spPos - 4);
        const auto it = urlIndex_.find(wireUrl);
        if (it != urlIndex_.end()) {
            const std::uint32_t uIdx = it->second;
            const std::uint32_t goldenDest =
                destPool_[uIdx % destPool_.size()];
            std::uint64_t h = urls_->auditEntry(proc, uIdx);
            const std::uint32_t rIdx =
                routes_->goldenIndex(goldenDest);
            if (rIdx != RadixTree::kNoMatch)
                h ^= routes_->auditEntry(proc, rIdx);
            rec.record("initialization", h);
        }
    }
}

} // namespace clumsy::apps
