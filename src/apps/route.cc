#include "apps/route.hh"

#include "net/checksum.hh"
#include "net/trace_gen.hh"

namespace clumsy::apps
{

net::TraceConfig
RouteApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.numDestinations = 128;
    cfg.numFlows = 128;
    cfg.destZipf = 0.9;
    cfg.minPayload = 32;
    cfg.maxPayload = 256;
    return cfg;
}

void
RouteApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 4096); // forwarding fast path
    const auto pool = net::TraceGenerator::makeDestPool(traceConfig());
    table_ = std::make_unique<RouteTable>(proc, pool, 48);
}

void
RouteApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                        ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    // 1. Header checksum verification (RFC 1812 5.2.2): summing the
    // whole header including the checksum field must give 0.
    const std::uint16_t verify = checksumStagedHeader(proc);
    if (proc.fatalOccurred())
        return;
    rec.record("checksum", verify);
    if (verify != 0) {
        // Malformed (or fault-corrupted) header: drop the packet.
        rec.record("ttl", 0xdead);
        return;
    }

    // 2. TTL handling (RFC 1812 5.3.1).
    const std::uint8_t ttl = loadTtl(proc);
    proc.execute(3);
    if (ttl <= 1) {
        rec.record("ttl", 0);
        return; // would send ICMP time exceeded
    }
    const auto newTtl = static_cast<std::uint8_t>(ttl - 1);
    storeTtl(proc, newTtl);
    rec.record("ttl", newTtl);

    // 3. Incremental checksum update (RFC 1624) for the changed
    // ttl/protocol 16-bit word.
    const std::uint16_t oldSum = loadChecksum(proc);
    const std::uint8_t proto = proc.read8(pktBase() + 9);
    proc.execute(6);
    const auto oldWord =
        static_cast<std::uint16_t>((ttl << 8) | proto);
    const auto newWord =
        static_cast<std::uint16_t>((newTtl << 8) | proto);
    const std::uint16_t newSum =
        net::incrementalChecksum(oldSum, oldWord, newWord);
    storeChecksum(proc, newSum);
    proc.execute(8);
    rec.record("checksum", newSum);

    // 4. Next-hop selection.
    const std::uint32_t dst = loadDstIp(proc);
    proc.execute(3);
    const std::uint32_t idx =
        table_->lookupIndex(proc, dst, &rec, "radix_node");
    if (proc.fatalOccurred())
        return;
    if (idx == RadixTree::kNoMatch) {
        rec.record("route_entry", 0);
    } else {
        const std::uint32_t nextHop = table_->loadNextHop(proc, idx);
        const std::uint32_t iface = table_->loadIface(proc, idx);
        if (proc.fatalOccurred())
            return;
        rec.record("route_entry", nextHop);
        rec.record("route_entry", iface);
    }

    // 5. Untimed audit of the control-plane structure this packet
    // depends on (the paper's "initialization error" series): the
    // RouteTable entry the destination *should* map to. Scoping the
    // audit to the packet keeps the error per-packet — a corrupted
    // entry flags only the packets routed through it.
    const std::uint32_t gIdx = table_->goldenIndex(pkt.ip.dst);
    if (gIdx != RadixTree::kNoMatch)
        rec.record("initialization", table_->auditEntry(proc, gIdx));
}

} // namespace clumsy::apps
