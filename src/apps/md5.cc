#include "apps/md5.hh"

#include <cmath>
#include <cstring>
#include <vector>

namespace clumsy::apps
{

namespace
{

/** Per-round left-rotate amounts (RFC 1321). */
constexpr unsigned kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

std::uint32_t
sineConstant(unsigned i)
{
    return static_cast<std::uint32_t>(
        std::floor(std::fabs(std::sin(i + 1.0)) * 4294967296.0));
}

std::uint32_t
rotl(std::uint32_t v, unsigned s)
{
    return (v << s) | (v >> (32 - s));
}

constexpr std::uint32_t kInitState[4] = {0x67452301u, 0xefcdab89u,
                                         0x98badcfeu, 0x10325476u};

/** The round function and message index for round i (RFC 1321). */
std::uint32_t
roundMix(unsigned i, std::uint32_t b, std::uint32_t c, std::uint32_t d,
         unsigned &g)
{
    if (i < 16) {
        g = i;
        return (b & c) | (~b & d);
    }
    if (i < 32) {
        g = (5 * i + 1) % 16;
        return (d & b) | (~d & c);
    }
    if (i < 48) {
        g = (3 * i + 5) % 16;
        return b ^ c ^ d;
    }
    g = (7 * i) % 16;
    return c ^ (b | ~d);
}

} // namespace

net::TraceConfig
Md5App::traceConfig() const
{
    net::TraceConfig cfg;
    // Large (near-MTU) payloads: MD5 touches every byte of each
    // packet several times, giving the highest per-packet access
    // count of the suite and the paper's strong fault sensitivity.
    cfg.minPayload = 1024;
    cfg.maxPayload = 1472;
    return cfg;
}

void
Md5App::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 3072); // unrolled round functions
    kTable_ = proc.alloc(64 * 4, 4);
    for (unsigned i = 0; i < 64; ++i) {
        proc.write32(kTable_ + i * 4, sineConstant(i));
        proc.execute(6);
    }
    state_ = proc.alloc(16, 4);
}

void
Md5App::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(4);
    const SimAddr msg = pktBase() + kPayloadOff;

    // RFC 1321 padding, written through the timed path: 0x80, zeros
    // to 56 mod 64, then the bit length as a little-endian u64. A
    // corrupted length walks the writes out of the staging buffer
    // (silent neighbour corruption or a wild-write fatal).
    const std::uint32_t padLen = ((len + 8) / 64 + 1) * 64;
    proc.write8(msg + len, 0x80);
    proc.execute(3);
    ClumsyProcessor::LoopGuard padGuard(proc, 128, "md5 padding");
    for (std::uint32_t b = len + 1; b < padLen - 8; ++b) {
        if (!padGuard.tick())
            return;
        proc.write8(msg + b, 0);
        proc.execute(2);
    }
    if (proc.fatalOccurred())
        return;
    proc.write32(msg + padLen - 8, len * 8);
    proc.write32(msg + padLen - 4, 0);
    proc.execute(6);

    // Initialize the digest state cells.
    for (unsigned i = 0; i < 4; ++i) {
        proc.write32(state_ + i * 4, kInitState[i]);
        proc.execute(2);
    }

    const std::uint32_t numBlocks = padLen / 64;
    ClumsyProcessor::LoopGuard blockGuard(
        proc, kMaxPayload / 64 + 4, "md5 block loop");
    for (std::uint32_t blk = 0; blk < numBlocks; ++blk) {
        if (!blockGuard.tick())
            return;
        std::uint32_t a = proc.read32(state_ + 0);
        std::uint32_t b = proc.read32(state_ + 4);
        std::uint32_t c = proc.read32(state_ + 8);
        std::uint32_t d = proc.read32(state_ + 12);
        proc.execute(8);
        const std::uint32_t a0 = a, b0 = b, c0 = c, d0 = d;

        for (unsigned i = 0; i < 64; ++i) {
            unsigned g = 0;
            std::uint32_t f = roundMix(i, b, c, d, g);
            const std::uint32_t k = proc.read32(kTable_ + i * 4);
            const std::uint32_t m =
                proc.read32(msg + blk * 64 + g * 4);
            f = f + a + k + m;
            a = d;
            d = c;
            c = b;
            b = b + rotl(f, kShift[i]);
            proc.execute(7);
        }
        if (proc.fatalOccurred())
            return;

        proc.write32(state_ + 0, a0 + a);
        proc.write32(state_ + 4, b0 + b);
        proc.write32(state_ + 8, c0 + c);
        proc.write32(state_ + 12, d0 + d);
        proc.execute(8);
    }
    if (proc.fatalOccurred())
        return;

    for (unsigned i = 0; i < 4; ++i) {
        rec.record("md5_digest", proc.read32(state_ + i * 4));
        proc.execute(2);
    }
}

void
Md5App::referenceDigest(const std::uint8_t *data, std::size_t len,
                        std::uint32_t out[4])
{
    std::vector<std::uint8_t> buf(data, data + len);
    buf.push_back(0x80);
    while (buf.size() % 64 != 56)
        buf.push_back(0);
    const std::uint64_t bits = std::uint64_t{len} * 8;
    for (unsigned i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));

    std::uint32_t st[4];
    std::memcpy(st, kInitState, sizeof(st));
    for (std::size_t blk = 0; blk < buf.size() / 64; ++blk) {
        std::uint32_t m[16];
        std::memcpy(m, &buf[blk * 64], 64);
        std::uint32_t a = st[0], b = st[1], c = st[2], d = st[3];
        for (unsigned i = 0; i < 64; ++i) {
            unsigned g = 0;
            std::uint32_t f = roundMix(i, b, c, d, g);
            f = f + a + sineConstant(i) + m[g];
            a = d;
            d = c;
            c = b;
            b = b + rotl(f, kShift[i]);
        }
        st[0] += a;
        st[1] += b;
        st[2] += c;
        st[3] += d;
    }
    std::memcpy(out, st, sizeof(st));
}

} // namespace clumsy::apps
