/**
 * @file
 * ROUTE: IPv4 forwarding per RFC 1812 (paper Section 2).
 *
 * Per packet: verify the header checksum, decrement the TTL, update
 * the checksum incrementally (RFC 1624), look the destination up in
 * the radix-indexed RouteTable and select the output interface.
 * Marked values match the paper's Figure 6 series: "initialization"
 * (sampled audit of the structures built during the control plane),
 * "checksum", "ttl", "route_entry" and the traversed "radix_node"s.
 */

#ifndef CLUMSY_APPS_ROUTE_HH
#define CLUMSY_APPS_ROUTE_HH

#include <memory>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** The RFC 1812 forwarding workload. */
class RouteApp : public BaseApp
{
  public:
    std::string name() const override { return "route"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

  private:
    std::unique_ptr<RouteTable> table_;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_ROUTE_HH
