/**
 * @file
 * FreeBSD-style radix (crit-bit / Patricia) routing table living
 * entirely in simulated memory.
 *
 * This is the lookup structure shared by tl, route, drr, nat and url,
 * corresponding to the BSD radix code NetBench's TL extracts. Nodes
 * are 20-byte simulated-memory records; every traversal step loads
 * the discriminating bit index and a child pointer through the timed,
 * faulty D-cache path, so an injected fault can send a lookup down
 * the wrong subtree (application error), into a cycle (fatal via loop
 * budget) or through a wild pointer (fatal via bounds check).
 *
 * Node layout (simulated addresses, 4-aligned):
 *   +0  bitIndex: 0..31 for internal nodes (bit counted from the
 *       MSB), kLeafMarker for leaves
 *   +4  left child  (bit == 0)   | +12 key   (leaf)
 *   +8  right child (bit == 1)   | +16 value (leaf)
 */

#ifndef CLUMSY_APPS_RADIX_TREE_HH
#define CLUMSY_APPS_RADIX_TREE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/processor.hh"

namespace clumsy::apps
{

/** Crit-bit routing table over 32-bit keys in simulated memory. */
class RadixTree
{
  public:
    /**
     * bitIndex value written for leaf nodes. Mirroring the BSD code
     * (rn_bit < 0 marks a leaf), any kind word with the sign bit set
     * is *treated* as a leaf: when a corrupted pointer walks the
     * lookup into junk memory, roughly half of all junk kind words
     * terminate the walk immediately — producing a wrong-result
     * application error rather than an endless traversal.
     */
    static constexpr std::uint32_t kLeafMarker = 0xffffffffu;

    /** @return true when a kind word denotes a leaf (sign bit). */
    static constexpr bool isLeaf(std::uint32_t kind)
    {
        return (kind & 0x80000000u) != 0;
    }

    /** lookup() result when no exact match exists. */
    static constexpr std::uint32_t kNoMatch = 0xffffffffu;

    /** Allocates the root-pointer cell in simulated memory. */
    explicit RadixTree(core::ClumsyProcessor &proc);

    /**
     * Insert (or update) key -> value through timed accesses. Faults
     * during control-plane insertion corrupt the tree being built —
     * the paper's "nonvolatile" error class.
     */
    void insert(core::ClumsyProcessor &proc, std::uint32_t key,
                std::uint32_t value);

    /**
     * Bulk-install a key set via DMA (the tree must be empty).
     *
     * Models how network processors actually receive their FIB: the
     * control card computes the table and writes it into the data
     * processor's memory over DMA, generating no D-cache traffic.
     * This keeps the simulated control plane short — the paper notes
     * its control planes are much shorter than the data planes —
     * while the installed working set stays large. The tree is built
     * host-side with the same crit-bit algorithm insert() uses.
     */
    void bulkInstall(core::ClumsyProcessor &proc,
                     const std::vector<std::uint32_t> &keys,
                     const std::vector<std::uint32_t> &values);

    /**
     * Exact-match lookup through timed accesses.
     *
     * @param rec    when non-null, each traversed node address is
     *               recorded under recKey (the paper's "radix tree
     *               entries traversed" marked value).
     * @return the stored value, or kNoMatch.
     */
    std::uint32_t lookup(core::ClumsyProcessor &proc, std::uint32_t key,
                         core::ValueRecorder *rec = nullptr,
                         const std::string &recKey = {}) const;

    /** Simulated address of the root pointer cell. */
    SimAddr rootPtrAddr() const { return rootPtr_; }

    /** Nodes allocated so far (host-side bookkeeping). */
    std::uint32_t nodeCount() const { return nodes_; }

    /**
     * Untimed structural hash of up to maxNodes tree nodes (BFS from
     * the root, via peeks). Used as the "initialization error" marked
     * value: it changes iff the built structure was corrupted.
     */
    std::uint64_t auditChecksum(const core::ClumsyProcessor &proc,
                                unsigned maxNodes = 64) const;

  private:
    SimAddr rootPtr_ = 0;
    std::uint32_t nodes_ = 0;

    SimAddr newLeaf(core::ClumsyProcessor &proc, std::uint32_t key,
                    std::uint32_t value);
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_RADIX_TREE_HH
