#include "apps/drr.hh"

#include "net/trace_gen.hh"

namespace clumsy::apps
{

net::TraceConfig
DrrApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.numDestinations = 64;
    cfg.numFlows = 64;
    cfg.destZipf = 0.9;
    cfg.minPayload = 64;
    cfg.maxPayload = 512;
    return cfg;
}

void
DrrApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 4096);
    const auto pool = net::TraceGenerator::makeDestPool(traceConfig());
    table_ = std::make_unique<RouteTable>(proc, pool);

    queues_ = proc.alloc(kNumQueues * 32, 32);
    for (std::uint32_t q = 0; q < kNumQueues; ++q) {
        const SimAddr ring = proc.alloc(kRingSlots * 4, 4);
        const SimAddr rec = queueAddr(q);
        proc.write32(rec + 0, 0);    // count
        proc.write32(rec + 4, 0);    // head
        proc.write32(rec + 8, 0);    // tail
        proc.write32(rec + 12, 0);   // deficit
        proc.write32(rec + 16, ring);
        proc.execute(14);
        if (proc.fatalOccurred())
            return;
    }
}

void
DrrApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    // Routing decision first (DRR sits behind the forwarding step).
    const std::uint32_t dst = loadDstIp(proc);
    const std::uint32_t src = loadSrcIp(proc);
    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(8);
    const std::uint32_t idx =
        table_->lookupIndex(proc, dst, &rec, "radix_node");
    if (proc.fatalOccurred())
        return;
    if (idx != RadixTree::kNoMatch) {
        const std::uint32_t nextHop = table_->loadNextHop(proc, idx);
        if (proc.fatalOccurred())
            return;
        rec.record("route_entry", nextHop);
    } else {
        rec.record("route_entry", 0);
    }

    // Hash the connection to its queue.
    const std::uint32_t q = (src ^ dst ^ (src >> 16)) % kNumQueues;
    const SimAddr qrec = queueAddr(q);
    proc.execute(6);

    // Enqueue the packet length.
    std::uint32_t count = proc.read32(qrec + 0);
    const std::uint32_t tail = proc.read32(qrec + 8);
    const SimAddr ring = proc.read32(qrec + 16);
    proc.execute(8);
    if (count < kRingSlots) {
        proc.write32(ring + (tail % kRingSlots) * 4, len);
        proc.write32(qrec + 8, (tail + 1) % kRingSlots);
        proc.write32(qrec + 0, count + 1);
        proc.execute(8);
        count += 1;
    } // else: queue overflow, drop (possible after corruption)
    if (proc.fatalOccurred())
        return;

    // Serve the queue: one quantum per visit, dequeue while the head
    // packet fits in the deficit (Shreedhar & Varghese, Figure 4).
    std::uint32_t deficit = proc.read32(qrec + 12) + kQuantum;
    std::uint32_t head = proc.read32(qrec + 4);
    proc.execute(6);
    rec.record("deficit", deficit);

    ClumsyProcessor::LoopGuard guard(proc, kRingSlots + 8, "drr serve");
    while (count > 0) {
        if (!guard.tick())
            return;
        const std::uint32_t headLen =
            proc.read32(ring + (head % kRingSlots) * 4);
        proc.execute(5);
        if (headLen > deficit)
            break;
        deficit -= headLen;
        head = (head + 1) % kRingSlots;
        count -= 1;
        proc.execute(4);
    }
    if (proc.fatalOccurred())
        return;
    // An empty queue forfeits its deficit (the DRR invariant).
    if (count == 0)
        deficit = 0;
    proc.write32(qrec + 4, head);
    proc.write32(qrec + 0, count);
    proc.write32(qrec + 12, deficit);
    proc.execute(6);
    rec.record("deficit", deficit);

    // Untimed audits scoped to this packet: the deficit-list slot of
    // the packet's own queue, and the RouteTable entry its
    // destination should use.
    rec.record("deficit_list", proc.peek32(qrec + 12));
    const std::uint32_t gIdx = table_->goldenIndex(pkt.ip.dst);
    if (gIdx != RadixTree::kNoMatch)
        rec.record("initialization", table_->auditEntry(proc, gIdx));
}

} // namespace clumsy::apps
