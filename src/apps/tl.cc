#include "apps/tl.hh"

#include "net/trace_gen.hh"

namespace clumsy::apps
{

net::TraceConfig
TlApp::traceConfig() const
{
    net::TraceConfig cfg;
    // A large route table with little reuse between packets: the tree
    // working set far exceeds the 4 KB L1, matching TL's 9.2% miss
    // rate in Table I.
    cfg.numDestinations = 128;
    cfg.numFlows = 128;
    cfg.destZipf = 1.0;
    cfg.minPayload = 16;
    cfg.maxPayload = 64;
    return cfg;
}

void
TlApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 2048); // small lookup kernel
    const auto pool = net::TraceGenerator::makeDestPool(traceConfig());
    // TL *is* the table-build-and-lookup benchmark: a substantial
    // share of its table is built by the data processor's own code
    // (timed, faulty), unlike the DMA-downloaded FIBs of route/url.
    table_ = std::make_unique<RouteTable>(proc, pool, 128); // fully code-built
}

void
TlApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                     ValueRecorder &rec)
{
    stagePacket(proc, pkt);
    const std::uint32_t dst = loadDstIp(proc);
    proc.execute(4);

    const std::uint32_t idx =
        table_->lookupIndex(proc, dst, &rec, "radix_node");
    if (proc.fatalOccurred())
        return;
    if (idx == RadixTree::kNoMatch) {
        rec.record("route_entry", 0);
        return;
    }
    const std::uint32_t nextHop = table_->loadNextHop(proc, idx);
    if (proc.fatalOccurred())
        return;
    rec.record("route_entry", nextHop);
}

} // namespace clumsy::apps
