/**
 * @file
 * MD5: per-packet message-digest computation (RFC 1321; paper
 * Section 2, implementation originally from RSA Data Security).
 *
 * The sine-constant table K and the running digest state live in
 * simulated memory; every round reads its constant and its message
 * word through the timed, faulty path. Errors are binary (digest
 * matches or it does not), recorded as the four "md5_digest" words.
 * MD5 is the paper's most fault-sensitive workload — every payload
 * byte influences the digest, so nearly any corrupted load shows up.
 */

#ifndef CLUMSY_APPS_MD5_HH
#define CLUMSY_APPS_MD5_HH

#include "apps/app.hh"

namespace clumsy::apps
{

/** The MD5 signing workload. */
class Md5App : public BaseApp
{
  public:
    std::string name() const override { return "md5"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    /** Host-side reference digest (tests compare against this). */
    static void referenceDigest(const std::uint8_t *data,
                                std::size_t len,
                                std::uint32_t out[4]);

  private:
    SimAddr kTable_ = 0; ///< 64 sine constants
    SimAddr state_ = 0;  ///< 4 digest words
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_MD5_HH
