#include "apps/tables.hh"

#include <cstring>

#include "common/logging.hh"

namespace clumsy::apps
{

namespace
{

/** FNV-1a mix helper shared by the audit checksums. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;
    void mix(std::uint32_t v) { h = (h ^ v) * 1099511628211ull; }
};

} // namespace

// --- RouteTable -----------------------------------------------------

RouteTable::RouteTable(core::ClumsyProcessor &proc,
                       const std::vector<std::uint32_t> &destinations,
                       std::uint32_t timedTail)
    : radix_(proc)
{
    CLUMSY_ASSERT(!destinations.empty(), "route table needs routes");
    count_ = static_cast<std::uint32_t>(destinations.size());
    base_ = proc.alloc(count_ * kEntryBytes, 4);
    const std::uint32_t bulk =
        count_ > timedTail ? count_ - timedTail : 0;

    // Bulk of the FIB arrives from the control card via DMA.
    if (bulk > 0) {
        std::vector<std::uint8_t> blob(bulk * kEntryBytes);
        std::vector<std::uint32_t> keys, values;
        keys.reserve(bulk);
        values.reserve(bulk);
        for (std::uint32_t i = 0; i < bulk; ++i) {
            const std::uint32_t dst = destinations[i];
            const std::uint32_t words[4] = {
                nextHopFor(dst), i % kNumInterfaces,
                1 + (dst & 0xf), 0x1};
            std::memcpy(&blob[i * kEntryBytes], words, kEntryBytes);
            keys.push_back(dst);
            values.push_back(i);
            index_.emplace(dst, i);
        }
        proc.dmaWrite(base_, blob.data(),
                      static_cast<SimSize>(blob.size()));
        radix_.bulkInstall(proc, keys, values);
    }

    // The tail is installed by the data processor's own control-plane
    // code through the timed, faulty path.
    for (std::uint32_t i = bulk; i < count_; ++i) {
        const std::uint32_t dst = destinations[i];
        const SimAddr e = entryAddr(i);
        proc.write32(e + 0, nextHopFor(dst));
        proc.write32(e + 4, i % kNumInterfaces);
        proc.write32(e + 8, 1 + (dst & 0xf)); // metric
        proc.write32(e + 12, 0x1);            // flags: up
        proc.execute(12);
        index_.emplace(dst, i);
        radix_.insert(proc, dst, i);
        if (proc.fatalOccurred())
            return;
    }
}

std::uint32_t
RouteTable::goldenIndex(std::uint32_t dst) const
{
    const std::uint32_t *idx = index_.find(dst);
    return idx ? *idx : RadixTree::kNoMatch;
}

std::uint64_t
RouteTable::auditEntry(const core::ClumsyProcessor &proc,
                       std::uint32_t idx) const
{
    Fnv f;
    const SimAddr e = entryAddr(idx);
    f.mix(proc.peek32(e + 0));
    f.mix(proc.peek32(e + 4));
    f.mix(proc.peek32(e + 8));
    f.mix(proc.peek32(e + 12));
    return f.h;
}

std::uint32_t
RouteTable::lookupIndex(core::ClumsyProcessor &proc, std::uint32_t dst,
                        core::ValueRecorder *rec,
                        const std::string &recKey) const
{
    return radix_.lookup(proc, dst, rec, recKey);
}

std::uint32_t
RouteTable::loadNextHop(core::ClumsyProcessor &proc,
                        std::uint32_t idx) const
{
    proc.execute(2);
    return proc.read32(entryAddr(idx) + 0);
}

std::uint32_t
RouteTable::loadIface(core::ClumsyProcessor &proc,
                      std::uint32_t idx) const
{
    proc.execute(2);
    return proc.read32(entryAddr(idx) + 4);
}

std::uint64_t
RouteTable::auditChecksum(const core::ClumsyProcessor &proc,
                          unsigned maxEntries) const
{
    Fnv f;
    const std::uint32_t n =
        count_ < maxEntries ? count_ : maxEntries;
    for (std::uint32_t i = 0; i < n; ++i) {
        const SimAddr e = entryAddr(i);
        f.mix(proc.peek32(e + 0));
        f.mix(proc.peek32(e + 4));
        f.mix(proc.peek32(e + 8));
        f.mix(proc.peek32(e + 12));
    }
    return f.h;
}

// --- NatTable -------------------------------------------------------

NatTable::NatTable(core::ClumsyProcessor &proc, std::uint32_t capacity)
    : radix_(proc), capacity_(capacity)
{
    CLUMSY_ASSERT(capacity_ > 0, "NAT table needs capacity");
    base_ = proc.alloc(capacity_ * kEntryBytes, 4);
    countAddr_ = proc.alloc(4, 4);
    proc.write32(countAddr_, 0);
    proc.execute(4);
}

std::uint32_t
NatTable::translate(core::ClumsyProcessor &proc, std::uint32_t privIp,
                    core::ValueRecorder *rec, const std::string &recKey)
{
    const std::uint32_t found = radix_.lookup(proc, privIp, rec, recKey);
    if (found != RadixTree::kNoMatch)
        return found;

    // First packet of this source: create the binding (NAPT).
    const std::uint32_t idx = proc.read32(countAddr_);
    proc.execute(3);
    if (idx >= capacity_) {
        // Table full (or the counter was corrupted upward): drop.
        return RadixTree::kNoMatch;
    }
    const SimAddr e = base_ + idx * kEntryBytes;
    proc.write32(e + 0, privIp);
    proc.write32(e + 4, publicIpFor(idx));
    proc.write32(e + 8, 30000u + idx);
    proc.write32(e + 12, idx % 4); // egress interface
    proc.write32(countAddr_, idx + 1);
    proc.execute(14);
    radix_.insert(proc, privIp, idx);
    return idx;
}

void
NatTable::noteArrival(std::uint32_t privIp)
{
    // nextIdx_ tracks the simulated counter cell: monotone, never
    // recycled, so indices stay aligned even after removeBinding().
    if (!index_.contains(privIp) && nextIdx_ < capacity_)
        index_.emplace(privIp, nextIdx_++);
}

void
NatTable::removeBinding(core::ClumsyProcessor &proc, std::uint32_t privIp)
{
    // Tombstone: lookups treat a stored kNoMatch as a miss, so the
    // next packet from this source walks the miss path and installs a
    // fresh binding. The leaf-value store is the in-place single-word
    // publish whose dirty L2 line the shared-cache divergence bitmap
    // tracks.
    radix_.insert(proc, privIp, RadixTree::kNoMatch);
    index_.erase(privIp);
}

std::uint32_t
NatTable::goldenIndex(std::uint32_t privIp) const
{
    const std::uint32_t *idx = index_.find(privIp);
    return idx ? *idx : RadixTree::kNoMatch;
}

std::uint64_t
NatTable::auditEntry(const core::ClumsyProcessor &proc,
                     std::uint32_t idx) const
{
    Fnv f;
    const SimAddr e = base_ + idx * kEntryBytes;
    f.mix(proc.peek32(e + 0));
    f.mix(proc.peek32(e + 4));
    f.mix(proc.peek32(e + 8));
    f.mix(proc.peek32(e + 12));
    return f.h;
}

std::uint32_t
NatTable::loadPublicIp(core::ClumsyProcessor &proc,
                       std::uint32_t idx) const
{
    proc.execute(2);
    return proc.read32(base_ + idx * kEntryBytes + 4);
}

std::uint32_t
NatTable::loadIface(core::ClumsyProcessor &proc, std::uint32_t idx) const
{
    proc.execute(2);
    return proc.read32(base_ + idx * kEntryBytes + 12);
}

std::uint32_t
NatTable::loadCount(core::ClumsyProcessor &proc) const
{
    proc.execute(2);
    return proc.read32(countAddr_);
}

std::uint64_t
NatTable::auditChecksum(const core::ClumsyProcessor &proc,
                        unsigned maxEntries) const
{
    Fnv f;
    const std::uint32_t count = proc.peek32(countAddr_);
    const std::uint32_t bounded =
        count < capacity_ ? count : capacity_;
    const std::uint32_t n =
        bounded < maxEntries ? bounded : maxEntries;
    f.mix(count);
    for (std::uint32_t i = 0; i < n; ++i) {
        const SimAddr e = base_ + i * kEntryBytes;
        f.mix(proc.peek32(e + 0));
        f.mix(proc.peek32(e + 4));
        f.mix(proc.peek32(e + 8));
        f.mix(proc.peek32(e + 12));
    }
    return f.h;
}

// --- SessionTable ---------------------------------------------------

SessionTable::SessionTable(core::ClumsyProcessor &proc,
                           std::uint32_t capacity,
                           std::uint32_t timeoutPackets)
    : capacity_(capacity), timeout_(timeoutPackets), mirror_(capacity)
{
    CLUMSY_ASSERT(capacity_ > 0, "session table needs capacity");
    CLUMSY_ASSERT(timeout_ > 0, "session timeout must be >= 1");
    base_ = proc.alloc(capacity_ * kEntryBytes, 4);
    // The table boots empty: a zero occupied word marks a free slot.
    std::vector<std::uint8_t> zeros(capacity_ * kEntryBytes, 0);
    proc.dmaWrite(base_, zeros.data(),
                  static_cast<SimSize>(zeros.size()));
}

std::uint32_t
SessionTable::hashKey(const FlowKey &key) const
{
    Fnv f;
    f.mix(key.src);
    f.mix(key.dst);
    f.mix(static_cast<std::uint32_t>(key.srcPort) << 16 | key.dstPort);
    f.mix(key.proto);
    return static_cast<std::uint32_t>(f.h % capacity_);
}

SessionTable::LookupResult
SessionTable::lookup(core::ClumsyProcessor &proc, const FlowKey &key,
                     std::uint32_t now, core::ValueRecorder *rec,
                     const std::string &recKey)
{
    const std::uint32_t home = hashKey(key);
    const std::uint32_t portWord =
        static_cast<std::uint32_t>(key.srcPort) << 16 | key.dstPort;
    const std::uint32_t protoWord =
        static_cast<std::uint32_t>(key.proto) << 16 | 0x1u;

    auto install = [&](std::uint32_t slot) {
        const SimAddr e = entryAddr(slot);
        proc.write32(e + 0, key.src);
        proc.write32(e + 4, key.dst);
        proc.write32(e + 8, portWord);
        proc.write32(e + 12, protoWord);
        proc.write32(e + 16, natPortFor(slot));
        proc.write32(e + 20, now);
        proc.write32(e + 24, 0);
        proc.write32(e + 28, 0);
        proc.execute(20);
    };

    for (std::uint32_t i = 0; i < kMaxProbes; ++i) {
        const std::uint32_t slot = (home + i) % capacity_;
        if (rec)
            rec->record(recKey, slot);
        const SimAddr e = entryAddr(slot);
        const std::uint32_t state = proc.read32(e + 12);
        proc.execute(3);
        if ((state & 0x1u) == 0) {
            // Free slot: the session starts here.
            install(slot);
            return {slot, true, false};
        }
        const std::uint32_t seen = proc.read32(e + 20);
        proc.execute(2);
        if (now - seen > timeout_) {
            // The incumbent timed out: evict it in place. (Unsigned
            // wrap on a corrupted clock reads as expired — one more
            // way a fault surfaces as a wrong slot assignment.)
            install(slot);
            return {slot, true, true};
        }
        const std::uint32_t src = proc.read32(e + 0);
        const std::uint32_t dst = proc.read32(e + 4);
        const std::uint32_t ports = proc.read32(e + 8);
        proc.execute(6);
        if (src == key.src && dst == key.dst && ports == portWord &&
            state == protoWord) {
            // Live match: refresh the idle clock.
            proc.write32(e + 20, now);
            proc.execute(3);
            return {slot, false, false};
        }
        if (proc.fatalOccurred())
            return {kNoSlot, false, false};
    }
    // Probe window exhausted by live strangers: drop the packet.
    return {kNoSlot, false, false};
}

std::uint32_t
SessionTable::flushWindow(core::ClumsyProcessor &proc,
                          std::uint32_t start, std::uint32_t count)
{
    std::uint32_t flushed = 0;
    const std::uint32_t n = count < capacity_ ? count : capacity_;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t slot = (start + i) % capacity_;
        const SimAddr e = entryAddr(slot);
        // Timed read-modify-write of the occupied word: the flush
        // itself runs on the faultable path.
        const std::uint32_t state = proc.read32(e + 12);
        proc.execute(2);
        if ((state & 0x1u) != 0) {
            proc.write32(e + 12, 0);
            proc.execute(2);
        }
        if (proc.fatalOccurred())
            return flushed;
        // Host mirror is the ground truth the audits compare against.
        HostEntry &h = mirror_[slot];
        if (h.used) {
            h.used = false;
            ++flushed;
            ++hostFlushed_;
        }
    }
    return flushed;
}

void
SessionTable::account(core::ClumsyProcessor &proc, std::uint32_t slot,
                      std::uint32_t bytes)
{
    const SimAddr e = entryAddr(slot);
    proc.write32(e + 24, proc.read32(e + 24) + 1);
    proc.write32(e + 28, proc.read32(e + 28) + bytes);
    proc.execute(6);
}

std::uint16_t
SessionTable::loadNatPort(core::ClumsyProcessor &proc,
                          std::uint32_t slot) const
{
    proc.execute(2);
    return static_cast<std::uint16_t>(proc.read32(entryAddr(slot) + 16));
}

std::uint32_t
SessionTable::loadPktCount(core::ClumsyProcessor &proc,
                           std::uint32_t slot) const
{
    proc.execute(2);
    return proc.read32(entryAddr(slot) + 24);
}

std::uint32_t
SessionTable::loadByteCount(core::ClumsyProcessor &proc,
                            std::uint32_t slot) const
{
    proc.execute(2);
    return proc.read32(entryAddr(slot) + 28);
}

std::uint64_t
SessionTable::auditEntry(const core::ClumsyProcessor &proc,
                         std::uint32_t slot) const
{
    Fnv f;
    const SimAddr e = entryAddr(slot);
    for (SimSize off = 0; off < kEntryBytes; off += 4)
        f.mix(proc.peek32(e + off));
    return f.h;
}

SessionTable::LookupResult
SessionTable::noteArrival(const FlowKey &key, std::uint32_t now)
{
    // The same probe sequence and expiry rule as lookup(), on host
    // state the injector cannot touch.
    const std::uint32_t home = hashKey(key);
    auto sameKey = [&](const HostEntry &h) {
        return h.key.src == key.src && h.key.dst == key.dst &&
               h.key.srcPort == key.srcPort &&
               h.key.dstPort == key.dstPort && h.key.proto == key.proto;
    };
    for (std::uint32_t i = 0; i < kMaxProbes; ++i) {
        const std::uint32_t slot = (home + i) % capacity_;
        HostEntry &h = mirror_[slot];
        if (!h.used) {
            h.used = true;
            h.key = key;
            h.lastSeen = now;
            ++hostCreated_;
            return {slot, true, false};
        }
        if (now - h.lastSeen > timeout_) {
            h.key = key;
            h.lastSeen = now;
            ++hostCreated_;
            ++hostEvicted_;
            return {slot, true, true};
        }
        if (sameKey(h)) {
            h.lastSeen = now;
            return {slot, false, false};
        }
    }
    ++hostDropped_;
    return {kNoSlot, false, false};
}

// --- UrlTable -------------------------------------------------------

UrlTable::UrlTable(core::ClumsyProcessor &proc,
                   const std::vector<std::string> &urls,
                   const std::vector<std::uint32_t> &destinations,
                   std::uint32_t timedTail)
{
    CLUMSY_ASSERT(!urls.empty() && !destinations.empty(),
                  "URL table needs URLs and destinations");
    count_ = static_cast<std::uint32_t>(urls.size());
    base_ = proc.alloc(count_ * kEntryBytes, 4);
    const std::uint32_t bulk =
        count_ > timedTail ? count_ - timedTail : 0;

    for (std::uint32_t i = 0; i < count_; ++i) {
        const std::string &url = urls[i];
        const auto len = static_cast<std::uint32_t>(url.size());
        const SimAddr str = proc.alloc(len, 4);
        const SimAddr e = base_ + i * kEntryBytes;
        const std::uint32_t words[4] = {
            str, len, destinations[i % destinations.size()], 0};
        if (i < bulk) {
            // Configuration download: string + record via DMA.
            proc.dmaWrite(str,
                          reinterpret_cast<const std::uint8_t *>(
                              url.data()),
                          len);
            proc.dmaWrite(e,
                          reinterpret_cast<const std::uint8_t *>(words),
                          kEntryBytes);
        } else {
            // Locally-added entries go through the timed path.
            for (std::uint32_t b = 0; b < len; ++b) {
                proc.write8(str + b,
                            static_cast<std::uint8_t>(url[b]));
                proc.execute(2);
            }
            proc.write32(e + 0, words[0]);
            proc.write32(e + 4, words[1]);
            proc.write32(e + 8, words[2]);
            proc.write32(e + 12, words[3]);
            proc.execute(10);
        }
        if (proc.fatalOccurred())
            return;
    }
}

std::uint32_t
UrlTable::match(core::ClumsyProcessor &proc, SimAddr urlAddr,
                std::uint32_t urlLen) const
{
    for (std::uint32_t i = 0; i < count_; ++i) {
        const SimAddr e = base_ + i * kEntryBytes;
        const std::uint32_t len = proc.read32(e + 4);
        proc.execute(4);
        if (len != urlLen)
            continue;
        const SimAddr str = proc.read32(e + 0);
        proc.execute(2);
        bool equal = true;
        core::ClumsyProcessor::LoopGuard guard(proc, 4096,
                                               "url compare");
        for (std::uint32_t b = 0; b < len; ++b) {
            if (!guard.tick())
                return kNoMatch;
            const std::uint8_t a = proc.read8(str + b);
            const std::uint8_t c = proc.read8(urlAddr + b);
            proc.execute(4);
            if (a != c) {
                equal = false;
                break;
            }
        }
        if (proc.fatalOccurred())
            return kNoMatch;
        if (equal)
            return i;
    }
    return kNoMatch;
}

std::uint32_t
UrlTable::loadDest(core::ClumsyProcessor &proc, std::uint32_t idx) const
{
    proc.execute(2);
    return proc.read32(base_ + idx * kEntryBytes + 8);
}

std::uint64_t
UrlTable::auditEntry(const core::ClumsyProcessor &proc,
                     std::uint32_t idx) const
{
    Fnv f;
    const SimAddr e = base_ + idx * kEntryBytes;
    const SimAddr str = proc.peek32(e + 0);
    const std::uint32_t len = proc.peek32(e + 4);
    f.mix(str);
    f.mix(len);
    f.mix(proc.peek32(e + 8));
    // Hash the string bytes too (bounded in case len was corrupted).
    const std::uint32_t bounded = len < 96 ? len : 96;
    const SimAddr memLimit = proc.config().memBytes;
    for (std::uint32_t b = 0; b < bounded; ++b) {
        if (str + b >= memLimit) {
            f.mix(0xdeadbeefu);
            break;
        }
        f.mix(proc.peek8(str + b));
    }
    return f.h;
}

std::uint64_t
UrlTable::auditChecksum(const core::ClumsyProcessor &proc,
                        unsigned maxEntries) const
{
    Fnv f;
    const std::uint32_t n =
        count_ < maxEntries ? count_ : maxEntries;
    for (std::uint32_t i = 0; i < n; ++i) {
        const SimAddr e = base_ + i * kEntryBytes;
        f.mix(proc.peek32(e + 0));
        f.mix(proc.peek32(e + 4));
        f.mix(proc.peek32(e + 8));
    }
    return f.h;
}

} // namespace clumsy::apps
