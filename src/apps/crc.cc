#include "apps/crc.hh"

namespace clumsy::apps
{

namespace
{

constexpr std::uint32_t kPoly = 0xedb88320u; // reflected CRC-32

std::uint32_t
tableEntry(std::uint32_t i)
{
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
    return c;
}

} // namespace

net::TraceConfig
CrcApp::traceConfig() const
{
    net::TraceConfig cfg;
    // Streaming payloads: lots of sequential byte reads, small working
    // set beyond the packet itself -> the paper's low miss rate.
    cfg.minPayload = 256;
    cfg.maxPayload = 1024;
    return cfg;
}

void
CrcApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 1024); // tight checksum loop
    table_ = proc.alloc(256 * 4, 4);
    for (std::uint32_t i = 0; i < 256; ++i) {
        proc.write32(table_ + i * 4, tableEntry(i));
        proc.execute(20); // 8 shift/xor rounds plus loop overhead
    }
}

void
CrcApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    stagePacket(proc, pkt);

    const std::uint32_t len = loadPayloadLen(proc);
    proc.execute(4);

    std::uint32_t crc = 0xffffffffu;
    ClumsyProcessor::LoopGuard guard(proc, kMaxPayload + 256,
                                     "crc byte loop");
    for (std::uint32_t b = 0; b < len; ++b) {
        if (!guard.tick())
            return;
        const std::uint8_t byte = proc.read8(pktBase() + kPayloadOff + b);
        const std::uint32_t idx = (crc ^ byte) & 0xffu;
        const std::uint32_t t = proc.read32(table_ + idx * 4);
        crc = (crc >> 8) ^ t;
        proc.execute(6);
    }
    if (proc.fatalOccurred())
        return;
    crc ^= 0xffffffffu;
    proc.execute(2);
    rec.record("crc_accum", crc);

    // Untimed rotating audit of the nonvolatile table.
    std::uint64_t tableHash = 1469598103934665603ull;
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint32_t idx = (auditCursor_ + i) & 0xffu;
        tableHash = (tableHash ^ proc.peek32(table_ + idx * 4)) *
                    1099511628211ull;
        tableHash = (tableHash ^ idx) * 1099511628211ull;
    }
    auditCursor_ = (auditCursor_ + 8) & 0xffu;
    rec.record("crc_table", tableHash);
}

std::uint32_t
CrcApp::referenceCrc(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint32_t idx = (crc ^ data[i]) & 0xffu;
        crc = (crc >> 8) ^ tableEntry(idx);
    }
    return crc ^ 0xffffffffu;
}

} // namespace clumsy::apps
