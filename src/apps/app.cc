#include "apps/app.hh"

#include <cstring>

#include "apps/adpcm.hh"
#include "apps/crc.hh"
#include "apps/drr.hh"
#include "apps/lpm.hh"
#include "apps/md5.hh"
#include "apps/nat.hh"
#include "apps/route.hh"
#include "apps/session.hh"
#include "apps/tl.hh"
#include "apps/url.hh"
#include "common/logging.hh"

namespace clumsy::apps
{

void
BaseApp::allocStaging(ClumsyProcessor &proc)
{
    // 128-byte alignment keeps the staging buffer in its own L2 lines
    // so DMA invalidations cannot clobber unrelated dirty data.
    staging_ = proc.alloc(kPayloadOff + kMaxPayload, 128);
}

void
BaseApp::stagePacket(ClumsyProcessor &proc, const net::Packet &pkt)
{
    CLUMSY_ASSERT(staging_ != 0, "allocStaging() was not called");
    CLUMSY_ASSERT(pkt.payload.size() <= kMaxPayload,
                  "payload exceeds the staging buffer");

    std::uint8_t head[kPayloadOff] = {};
    const auto hdr = pkt.ip.toBytes();
    std::memcpy(head, hdr.data(), hdr.size());
    head[kSrcPortOff] = static_cast<std::uint8_t>(pkt.srcPort >> 8);
    head[kSrcPortOff + 1] = static_cast<std::uint8_t>(pkt.srcPort);
    head[kDstPortOff] = static_cast<std::uint8_t>(pkt.dstPort >> 8);
    head[kDstPortOff + 1] = static_cast<std::uint8_t>(pkt.dstPort);
    const auto len = static_cast<std::uint32_t>(pkt.payload.size());
    std::memcpy(&head[kPayloadLenOff], &len, 4);

    proc.dmaWrite(staging_, head, kPayloadOff);
    if (!pkt.payload.empty()) {
        proc.dmaWrite(staging_ + kPayloadOff, pkt.payload.data(),
                      static_cast<SimSize>(pkt.payload.size()));
    }
}

std::uint32_t
BaseApp::loadSrcIp(ClumsyProcessor &proc) const
{
    return bswap32(proc.read32(staging_ + 12));
}

std::uint32_t
BaseApp::loadDstIp(ClumsyProcessor &proc) const
{
    return bswap32(proc.read32(staging_ + 16));
}

std::uint8_t
BaseApp::loadTtl(ClumsyProcessor &proc) const
{
    return proc.read8(staging_ + 8);
}

std::uint16_t
BaseApp::loadChecksum(ClumsyProcessor &proc) const
{
    return bswap16(proc.read16(staging_ + 10));
}

std::uint32_t
BaseApp::loadPayloadLen(ClumsyProcessor &proc) const
{
    return proc.read32(staging_ + kPayloadLenOff);
}

void
BaseApp::storeTtl(ClumsyProcessor &proc, std::uint8_t ttl) const
{
    proc.write8(staging_ + 8, ttl);
}

void
BaseApp::storeChecksum(ClumsyProcessor &proc, std::uint16_t sum) const
{
    proc.write16(staging_ + 10, bswap16(sum));
}

void
BaseApp::storeSrcIp(ClumsyProcessor &proc, std::uint32_t ip) const
{
    proc.write32(staging_ + 12, bswap32(ip));
}

void
BaseApp::storeDstIp(ClumsyProcessor &proc, std::uint32_t ip) const
{
    proc.write32(staging_ + 16, bswap32(ip));
}

std::uint16_t
BaseApp::checksumStagedHeader(ClumsyProcessor &proc) const
{
    std::uint32_t sum = 0;
    for (SimSize off = 0; off < 20; off += 2) {
        sum += bswap16(proc.read16(staging_ + off));
        proc.execute(3);
    }
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    proc.execute(4);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

const std::vector<std::string> &
allAppNames()
{
    static const std::vector<std::string> names = {
        "crc", "tl", "route", "drr", "nat", "md5", "url",
    };
    return names;
}

const std::vector<std::string> &
extensionAppNames()
{
    static const std::vector<std::string> names = {"adpcm", "session",
                                                   "lpm"};
    return names;
}

std::unique_ptr<core::PacketApp>
makeApp(const std::string &name)
{
    if (name == "crc")
        return std::make_unique<CrcApp>();
    if (name == "tl")
        return std::make_unique<TlApp>();
    if (name == "route")
        return std::make_unique<RouteApp>();
    if (name == "drr")
        return std::make_unique<DrrApp>();
    if (name == "nat")
        return std::make_unique<NatApp>();
    if (name == "md5")
        return std::make_unique<Md5App>();
    if (name == "url")
        return std::make_unique<UrlApp>();
    if (name == "adpcm")
        return std::make_unique<AdpcmApp>();
    if (name == "session")
        return std::make_unique<SessionApp>();
    if (name == "lpm")
        return std::make_unique<LpmApp>();
    fatal("unknown application '%s'", name.c_str());
}

core::AppFactory
appFactory(const std::string &name)
{
    return [name] { return makeApp(name); };
}

} // namespace clumsy::apps
