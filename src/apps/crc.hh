/**
 * @file
 * CRC: CRC-32 checksum over each packet payload (paper Section 2).
 *
 * Control plane builds the 256-entry CRC lookup table in simulated
 * memory; the data plane streams every payload byte through the table.
 * Marked values: the per-packet CRC accumulator ("crc_accum") and a
 * rotating untimed sample of the CRC table ("crc_table") — table
 * corruption is the paper's serious, nonvolatile error class because
 * it poisons every subsequent packet.
 */

#ifndef CLUMSY_APPS_CRC_HH
#define CLUMSY_APPS_CRC_HH

#include "apps/app.hh"

namespace clumsy::apps
{

/** The CRC-32 workload. */
class CrcApp : public BaseApp
{
  public:
    std::string name() const override { return "crc"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

    /** Host-side reference CRC-32 (tests compare against this). */
    static std::uint32_t referenceCrc(const std::uint8_t *data,
                                      std::size_t len);

  private:
    SimAddr table_ = 0;
    std::uint32_t auditCursor_ = 0;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_CRC_HH
