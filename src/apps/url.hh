/**
 * @file
 * URL: content-based (URL-switching) load balancing (paper Section 2).
 *
 * The data plane parses the HTTP GET request line out of the payload,
 * matches the URL against the simulated-memory URL table, rewrites
 * the destination to the matched server, then routes the packet like
 * route does. Marked values per the paper: "url_entry", "final_dest",
 * "route_entry", "checksum", "ttl", "radix_node", "initialization".
 */

#ifndef CLUMSY_APPS_URL_HH
#define CLUMSY_APPS_URL_HH

#include <memory>
#include <unordered_map>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** The URL-switching workload. */
class UrlApp : public BaseApp
{
  public:
    std::string name() const override { return "url"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

  private:
    std::unique_ptr<UrlTable> urls_;
    std::unique_ptr<RouteTable> routes_;
    /// Host-side ground truth: URL string -> table index.
    std::unordered_map<std::string, std::uint32_t> urlIndex_;
    /// Host-side copy of the destination pool (entry i's server).
    std::vector<std::uint32_t> destPool_;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_URL_HH
