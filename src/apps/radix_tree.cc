#include "apps/radix_tree.hh"

#include <bit>
#include <cstring>
#include <deque>

#include "common/logging.hh"

namespace clumsy::apps
{

namespace
{

/** Bit b of key, counted from the MSB (b = 0 is bit 31). */
unsigned
keyBit(std::uint32_t key, std::uint32_t b)
{
    return (key >> (31 - (b & 31))) & 1u;
}

constexpr SimSize kNodeBytes = 20;
constexpr std::uint32_t kInsertBudget = 64;
constexpr std::uint32_t kLookupBudget = 64;

} // namespace

RadixTree::RadixTree(core::ClumsyProcessor &proc)
{
    rootPtr_ = proc.alloc(4, 4);
    proc.write32(rootPtr_, 0); // simulated null: empty tree
}

SimAddr
RadixTree::newLeaf(core::ClumsyProcessor &proc, std::uint32_t key,
                   std::uint32_t value)
{
    const SimAddr n = proc.alloc(kNodeBytes, 4);
    proc.write32(n + 0, kLeafMarker);
    proc.write32(n + 4, 0);
    proc.write32(n + 8, 0);
    proc.write32(n + 12, key);
    proc.write32(n + 16, value);
    proc.execute(10);
    ++nodes_;
    return n;
}

void
RadixTree::insert(core::ClumsyProcessor &proc, std::uint32_t key,
                  std::uint32_t value)
{
    SimAddr cur = proc.read32(rootPtr_);
    proc.execute(3);
    if (cur == 0) {
        proc.write32(rootPtr_, newLeaf(proc, key, value));
        return;
    }

    // Phase 1: walk to the nearest leaf.
    core::ClumsyProcessor::LoopGuard walk(proc, kInsertBudget,
                                          "radix insert walk");
    for (;;) {
        if (!walk.tick())
            return;
        const std::uint32_t kind = proc.read32(cur + 0);
        proc.execute(4);
        if (isLeaf(kind))
            break;
        cur = proc.read32(cur + (keyBit(key, kind) ? 8 : 4));
        proc.execute(3);
        if (proc.fatalOccurred())
            return;
    }
    const std::uint32_t leafKey = proc.read32(cur + 12);
    proc.execute(2);
    if (leafKey == key) {
        proc.write32(cur + 16, value); // update in place
        proc.execute(2);
        return;
    }

    // Phase 2: split at the first differing bit.
    const auto diff =
        static_cast<std::uint32_t>(std::countl_zero(key ^ leafKey));
    const SimAddr leaf = newLeaf(proc, key, value);

    SimAddr linkAddr = rootPtr_;
    SimAddr node = proc.read32(linkAddr);
    proc.execute(3);
    core::ClumsyProcessor::LoopGuard reinsert(proc, kInsertBudget,
                                              "radix insert reinsert");
    for (;;) {
        if (!reinsert.tick())
            return;
        const std::uint32_t kind = proc.read32(node + 0);
        proc.execute(4);
        if (isLeaf(kind) || (kind & 31u) > diff)
            break;
        linkAddr = node + (keyBit(key, kind) ? 8 : 4);
        node = proc.read32(linkAddr);
        proc.execute(3);
        if (proc.fatalOccurred())
            return;
    }

    const SimAddr inner = proc.alloc(kNodeBytes, 4);
    ++nodes_;
    proc.write32(inner + 0, diff);
    if (keyBit(key, diff)) {
        proc.write32(inner + 4, node);
        proc.write32(inner + 8, leaf);
    } else {
        proc.write32(inner + 4, leaf);
        proc.write32(inner + 8, node);
    }
    proc.write32(inner + 12, 0);
    proc.write32(inner + 16, 0);
    proc.write32(linkAddr, inner);
    proc.execute(12);
}

void
RadixTree::bulkInstall(core::ClumsyProcessor &proc,
                       const std::vector<std::uint32_t> &keys,
                       const std::vector<std::uint32_t> &values)
{
    CLUMSY_ASSERT(keys.size() == values.size(), "key/value mismatch");
    CLUMSY_ASSERT(proc.peek32(rootPtr_) == 0,
                  "bulkInstall needs an empty tree");
    if (keys.empty())
        return;

    // Host-side mirror of the simulated node layout.
    struct HostNode
    {
        std::uint32_t kind; // bit index or kLeafMarker
        std::uint32_t left = 0;
        std::uint32_t right = 0;
        std::uint32_t key = 0;
        std::uint32_t value = 0;
    };
    std::vector<HostNode> nodes;
    nodes.reserve(keys.size() * 2);
    std::uint32_t root = 0; // index + 1; 0 = empty

    auto hostBit = [](std::uint32_t key, std::uint32_t b) {
        return (key >> (31 - (b & 31))) & 1u;
    };

    for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::uint32_t key = keys[i];
        const std::uint32_t value = values[i];
        if (root == 0) {
            nodes.push_back({kLeafMarker, 0, 0, key, value});
            root = static_cast<std::uint32_t>(nodes.size());
            continue;
        }
        // Walk to the nearest leaf.
        std::uint32_t cur = root;
        while (!isLeaf(nodes[cur - 1].kind)) {
            cur = hostBit(key, nodes[cur - 1].kind)
                      ? nodes[cur - 1].right
                      : nodes[cur - 1].left;
        }
        if (nodes[cur - 1].key == key) {
            nodes[cur - 1].value = value;
            continue;
        }
        const auto diff = static_cast<std::uint32_t>(
            std::countl_zero(key ^ nodes[cur - 1].key));
        nodes.push_back({kLeafMarker, 0, 0, key, value});
        const auto leaf = static_cast<std::uint32_t>(nodes.size());
        // Re-walk to the splice point.
        std::uint32_t *link = &root;
        while (!isLeaf(nodes[*link - 1].kind) &&
               nodes[*link - 1].kind < diff) {
            link = hostBit(key, nodes[*link - 1].kind)
                       ? &nodes[*link - 1].right
                       : &nodes[*link - 1].left;
        }
        HostNode inner{diff, 0, 0, 0, 0};
        if (hostBit(key, diff)) {
            inner.left = *link;
            inner.right = leaf;
        } else {
            inner.left = leaf;
            inner.right = *link;
        }
        nodes.push_back(inner);
        *link = static_cast<std::uint32_t>(nodes.size());
    }

    // Serialize into simulated memory over DMA.
    const auto count = static_cast<std::uint32_t>(nodes.size());
    const SimAddr base =
        proc.alloc(count * kNodeBytes, 4);
    auto addrOf = [base](std::uint32_t idx1) -> std::uint32_t {
        return idx1 ? base + (idx1 - 1) * kNodeBytes : 0;
    };
    std::vector<std::uint8_t> blob(count * kNodeBytes);
    for (std::uint32_t i = 0; i < count; ++i) {
        const HostNode &n = nodes[i];
        const std::uint32_t words[5] = {
            n.kind, addrOf(n.left), addrOf(n.right), n.key, n.value,
        };
        std::memcpy(&blob[i * kNodeBytes], words, kNodeBytes);
    }
    proc.dmaWrite(base, blob.data(),
                  static_cast<SimSize>(blob.size()));
    const std::uint32_t rootAddr = addrOf(root);
    proc.dmaWrite(rootPtr_,
                  reinterpret_cast<const std::uint8_t *>(&rootAddr), 4);
    nodes_ += count;
}

std::uint32_t
RadixTree::lookup(core::ClumsyProcessor &proc, std::uint32_t key,
                  core::ValueRecorder *rec,
                  const std::string &recKey) const
{
    SimAddr cur = proc.read32(rootPtr_);
    proc.execute(3);
    if (cur == 0)
        return kNoMatch;

    core::ClumsyProcessor::LoopGuard guard(proc, kLookupBudget,
                                           "radix lookup");
    for (;;) {
        if (!guard.tick())
            return kNoMatch;
        const std::uint32_t kind = proc.read32(cur + 0);
        proc.execute(4);
        if (isLeaf(kind))
            break;
        // A corrupted bit index behaves like hardware would: only the
        // low 5 bits reach the shifter (keyBit masks), so the walk
        // continues down a wrong path instead of crashing the host.
        cur = proc.read32(cur + (keyBit(key, kind) ? 8 : 4));
        proc.execute(3);
        if (proc.fatalOccurred())
            return kNoMatch;
    }

    // The marked "radix tree entry traversed" value is the leaf the
    // walk lands on — the semantic outcome. Two differently-shaped
    // but equivalent trees (the shape is not canonical once faults
    // perturb insertion) reach the same leaf for the same key, so
    // only genuinely misrouted walks count as errors, matching the
    // paper's data-structure-value comparisons.
    const std::uint32_t leafKey = proc.read32(cur + 12);
    proc.execute(3);
    if (rec)
        rec->record(recKey, leafKey);
    if (leafKey != key)
        return kNoMatch;
    const std::uint32_t value = proc.read32(cur + 16);
    proc.execute(2);
    return value;
}

std::uint64_t
RadixTree::auditChecksum(const core::ClumsyProcessor &proc,
                         unsigned maxNodes) const
{
    // FNV-1a over node records, breadth-first, bounded. Untimed peeks:
    // this is the harness observing architectural state, not the
    // simulated program running.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint32_t v) {
        h = (h ^ v) * 1099511628211ull;
    };
    std::deque<SimAddr> queue;
    const SimAddr memLimit = proc.config().memBytes;
    const SimAddr root = proc.peek32(rootPtr_);
    if (root)
        queue.push_back(root);
    unsigned visited = 0;
    while (!queue.empty() && visited < maxNodes) {
        const SimAddr n = queue.front();
        queue.pop_front();
        if (n == 0 || n % 4 != 0 || n + kNodeBytes > memLimit) {
            mix(0xdeadbeefu); // wild pointer is itself a corruption
            ++visited;
            continue;
        }
        ++visited;
        const std::uint32_t kind = proc.peek32(n + 0);
        mix(kind);
        if (RadixTree::isLeaf(kind)) {
            mix(proc.peek32(n + 12));
            mix(proc.peek32(n + 16));
        } else {
            const SimAddr l = proc.peek32(n + 4);
            const SimAddr r = proc.peek32(n + 8);
            mix(l);
            mix(r);
            queue.push_back(l);
            queue.push_back(r);
        }
    }
    return h;
}

} // namespace clumsy::apps
