#include "apps/nat.hh"

#include "net/checksum.hh"

namespace clumsy::apps
{

net::TraceConfig
NatApp::traceConfig() const
{
    net::TraceConfig cfg;
    cfg.numFlows = 128; // distinct private sources -> bindings
    cfg.numDestinations = 256;
    cfg.minPayload = 32;
    cfg.maxPayload = 256;
    return cfg;
}

void
NatApp::initialize(ClumsyProcessor &proc)
{
    allocStaging(proc);
    proc.setCodeRegion(0, 4096);
    table_ = std::make_unique<NatTable>(proc, 1024);
}

void
NatApp::processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                      ValueRecorder &rec)
{
    stagePacket(proc, pkt);
    table_->noteArrival(pkt.ip.src); // host ground truth, wire value

    const std::uint32_t src = loadSrcIp(proc);
    proc.execute(4);
    rec.record("src_addr", src);

    const std::uint32_t idx =
        table_->translate(proc, src, &rec, "radix_node");
    if (proc.fatalOccurred())
        return;
    if (idx == RadixTree::kNoMatch) {
        rec.record("translated_ip", 0);
        return; // table full: drop
    }

    const std::uint32_t pubIp = table_->loadPublicIp(proc, idx);
    const std::uint32_t iface = table_->loadIface(proc, idx);
    if (proc.fatalOccurred())
        return;
    rec.record("interface", iface);

    // Rewrite the source address and patch the checksum for the two
    // 16-bit words that changed (RFC 1624 applied twice).
    const std::uint16_t oldSum = loadChecksum(proc);
    proc.execute(4);
    const auto oldHi = static_cast<std::uint16_t>(src >> 16);
    const auto oldLo = static_cast<std::uint16_t>(src & 0xffff);
    const auto newHi = static_cast<std::uint16_t>(pubIp >> 16);
    const auto newLo = static_cast<std::uint16_t>(pubIp & 0xffff);
    std::uint16_t sum = net::incrementalChecksum(oldSum, oldHi, newHi);
    sum = net::incrementalChecksum(sum, oldLo, newLo);
    proc.execute(10);

    storeSrcIp(proc, pubIp);
    storeChecksum(proc, sum);
    proc.execute(4);
    if (proc.fatalOccurred())
        return;

    // Read back what actually landed in the header (the translated
    // address the next hop will see).
    rec.record("translated_ip", loadSrcIp(proc));
    rec.record("dest_addr", loadDstIp(proc));
    proc.execute(4);

    // Untimed audit of the binding this source should own (keyed by
    // the wire-truth source so corrupted loads cannot skew it).
    const std::uint32_t gIdx = table_->goldenIndex(pkt.ip.src);
    if (gIdx != RadixTree::kNoMatch)
        rec.record("initialization", table_->auditEntry(proc, gIdx));
}

bool
NatApp::applyCtrlEvent(ClumsyProcessor &proc,
                       const ctrl::CtrlEvent &event)
{
    switch (event.kind) {
    case ctrl::CtrlEventKind::NatAdd:
        // A static rule: pre-install the binding the same way a first
        // packet would, so later packets from this source hit it.
        table_->noteArrival(event.key);
        table_->translate(proc, event.key);
        return true;
    case ctrl::CtrlEventKind::NatRemove:
        table_->removeBinding(proc, event.key);
        return true;
    default:
        return false;
    }
}

} // namespace clumsy::apps
