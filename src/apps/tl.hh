/**
 * @file
 * TL: the table-lookup routine common to all routing processes
 * (paper Section 2; code originally extracted from FreeBSD's radix
 * implementation).
 *
 * Control plane builds a large radix-indexed RouteTable; the data
 * plane is a bare destination lookup per packet. Marked values: the
 * sequence of radix-tree nodes traversed ("radix_node") and the
 * RouteTable entry read for the packet ("route_entry"). The big tree
 * and load-dominated inner loop give TL the paper's high miss rate
 * and its strong sensitivity to L1 load latency.
 */

#ifndef CLUMSY_APPS_TL_HH
#define CLUMSY_APPS_TL_HH

#include <memory>

#include "apps/app.hh"
#include "apps/tables.hh"

namespace clumsy::apps
{

/** The table-lookup workload. */
class TlApp : public BaseApp
{
  public:
    std::string name() const override { return "tl"; }

    net::TraceConfig traceConfig() const override;

    void initialize(ClumsyProcessor &proc) override;

    void processPacket(ClumsyProcessor &proc, const net::Packet &pkt,
                       ValueRecorder &rec) override;

  private:
    std::unique_ptr<RouteTable> table_;
};

} // namespace clumsy::apps

#endif // CLUMSY_APPS_TL_HH
