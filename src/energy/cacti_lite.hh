/**
 * @file
 * cacti-lite: an analytical SRAM-array energy and access-time model in
 * the spirit of CACTI (Wilton & Jouppi), which the paper uses for its
 * full-frequency cache energy numbers.
 *
 * The model partitions the data array into subarrays (bounded rows and
 * columns, as CACTI's Ndwl/Ndbl optimization does), then sums decoder,
 * wordline, bitline, sense-amplifier and output-driver energy for the
 * subarrays activated by one access. Technology constants are
 * calibrated for the paper's 0.35 um StrongARM-era design point so that
 * the modeled 4 KB L1 D-cache consumes 16% of the Montanaro chip
 * budget at its observed access rate (see chip_energy.hh).
 */

#ifndef CLUMSY_ENERGY_CACTI_LITE_HH
#define CLUMSY_ENERGY_CACTI_LITE_HH

#include <cstdint>

#include "common/types.hh"

namespace clumsy::energy
{

/** Geometry of one cache array. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;   ///< total data capacity
    std::uint32_t assoc;       ///< ways (1 = direct-mapped)
    std::uint32_t lineBytes;   ///< block size
    std::uint32_t tagBits = 22;///< tag width stored per line

    /** Number of sets. */
    std::uint32_t sets() const { return sizeBytes / (lineBytes * assoc); }
};

/** Per-access energy breakdown, in picojoules. */
struct AccessEnergy
{
    PicoJoules decoder = 0;
    PicoJoules wordline = 0;
    PicoJoules bitline = 0;
    PicoJoules senseAmp = 0;
    PicoJoules output = 0;

    PicoJoules total() const
    {
        return decoder + wordline + bitline + senseAmp + output;
    }
};

/** Analytical energy/timing model for one cache array. */
class CactiLite
{
  public:
    explicit CactiLite(CacheGeometry geom);

    /** Full-voltage-swing read energy per access. */
    AccessEnergy readEnergy() const;

    /** Full-voltage-swing write energy per access (full bitline swing). */
    AccessEnergy writeEnergy() const;

    /** Nominal access time, nanoseconds (decoder+wl+bl+sense). */
    double accessTimeNs() const;

    /** Rows per activated subarray after partitioning. */
    std::uint32_t subarrayRows() const { return subRows_; }

    /** Columns per activated subarray after partitioning. */
    std::uint32_t subarrayCols() const { return subCols_; }

    /** Number of subarrays activated by one access. */
    std::uint32_t activeSubarrays() const { return active_; }

    /** The geometry being modeled. */
    const CacheGeometry &geometry() const { return geom_; }

  private:
    CacheGeometry geom_;
    std::uint32_t subRows_;
    std::uint32_t subCols_;
    std::uint32_t active_;
};

} // namespace clumsy::energy

#endif // CLUMSY_ENERGY_CACTI_LITE_HH
