#include "energy/chip_energy.hh"

#include "common/logging.hh"
#include "fault/swing.hh"

namespace clumsy::energy
{

EnergyModel::EnergyModel(EnergyParams params, CacheGeometry l1d,
                         CacheGeometry l1i, CacheGeometry l2)
    : params_(params)
{
    CLUMSY_ASSERT(params_.chipPowerWatts > 0 && params_.clockHz > 0,
                  "bad chip power parameters");
    chipPerCycle_ = params_.chipPowerWatts / params_.clockHz * 1e12;

    // cacti-lite provides the *shape* (read/write ratio, L1-vs-L2
    // ratio); the Montanaro budget shares pin the absolute scale.
    const CactiLite l1dModel(l1d);
    const CactiLite l1iModel(l1i);
    const CactiLite l2Model(l2);

    const double rawRead = l1dModel.readEnergy().total();
    const double rawWrite = l1dModel.writeEnergy().total();
    const double rawMix = params_.l1dReadFraction * rawRead +
                          (1.0 - params_.l1dReadFraction) * rawWrite;
    const double l1dBudget = params_.l1dFraction * chipPerCycle_ /
                             params_.l1dAccessesPerCycle;
    const double dScale = l1dBudget / rawMix;
    l1dRead_ = rawRead * dScale;
    l1dWrite_ = rawWrite * dScale;

    const double l1iBudget = params_.l1iFraction * chipPerCycle_ /
                             params_.l1iAccessesPerCycle;
    l1iRead_ = l1iBudget; // one fetch per profile access

    l2Access_ = params_.l2AccessPj > 0
                    ? params_.l2AccessPj
                    : l2Model.readEnergy().total() * dScale;

    restPerCycle_ =
        chipPerCycle_ * (1.0 - params_.l1iFraction - params_.l1dFraction);
    CLUMSY_ASSERT(restPerCycle_ > 0, "cache fractions exceed chip budget");
}

PicoJoules
EnergyModel::l1dReadPj(double cr, Protection prot) const
{
    double e = l1dRead_ * fault::energyScale(cr);
    if (prot == Protection::Parity)
        e *= 1.0 + params_.parityReadOverhead;
    else if (prot == Protection::Secded)
        e *= 1.0 + params_.secdedReadOverhead;
    return e;
}

PicoJoules
EnergyModel::l1dWritePj(double cr, Protection prot) const
{
    double e = l1dWrite_ * fault::energyScale(cr);
    if (prot == Protection::Parity)
        e *= 1.0 + params_.parityWriteOverhead;
    else if (prot == Protection::Secded)
        e *= 1.0 + params_.secdedWriteOverhead;
    return e;
}

EnergyAccount::EnergyAccount(const EnergyModel *model) : model_(model)
{
    CLUMSY_ASSERT(model_ != nullptr, "energy account needs a model");
}

void
EnergyAccount::addCoreCycles(double cycles)
{
    rest_ += cycles * model_->restPerCyclePj();
}

void
EnergyAccount::addL1iRead()
{
    l1i_ += model_->l1iReadPj();
}

void
EnergyAccount::addL1dRead(double cr, Protection prot)
{
    l1d_ += model_->l1dReadPj(cr, prot);
}

void
EnergyAccount::addL1dWrite(double cr, Protection prot)
{
    l1d_ += model_->l1dWritePj(cr, prot);
}

void
EnergyAccount::addL2Access()
{
    l2_ += model_->l2AccessPj();
}

void
EnergyAccount::addMemAccess()
{
    mem_ += model_->memAccessPj();
}

PicoJoules
EnergyAccount::totalPj() const
{
    return rest_ + l1i_ + l1d_ + l2_ + mem_;
}

void
EnergyAccount::reset()
{
    rest_ = l1i_ = l1d_ = l2_ = mem_ = 0;
}

} // namespace clumsy::energy
