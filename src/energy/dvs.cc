#include "energy/dvs.hh"

#include <cmath>

#include "common/logging.hh"

namespace clumsy::energy
{

double
frequencyAtVoltage(double v, const DvsParams &params)
{
    CLUMSY_ASSERT(v > params.vt, "voltage below threshold");
    const double norm =
        std::pow(1.0 - params.vt, params.alpha) / 1.0;
    return (std::pow(v - params.vt, params.alpha) / v) / norm;
}

double
voltageForFrequency(double fr, const DvsParams &params)
{
    CLUMSY_ASSERT(fr > 0.0, "frequency ratio must be positive");
    const double fMax = frequencyAtVoltage(params.vMax, params);
    if (fr > fMax) {
        fatal("frequency ratio %.2f exceeds the %.2fx reachable at "
              "vMax = %.2f",
              fr, fMax, params.vMax);
    }
    // frequencyAtVoltage is strictly increasing above vt; bisect.
    double lo = params.vt + 1e-6, hi = params.vMax;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (frequencyAtVoltage(mid, params) < fr)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
energyScaleAtVoltage(double v)
{
    return v * v;
}

} // namespace clumsy::energy
