/**
 * @file
 * Whole-chip energy accounting for the clumsy packet processor.
 *
 * Three models are combined, exactly as in the paper (Section 5.4):
 *  - overall processor energy from Montanaro et al.'s StrongARM
 *    measurements (0.5 W at 160 MHz; I-cache 27% and D-cache 16% of
 *    chip power),
 *  - per-access cache energy at full frequency from cacti-lite,
 *    calibrated to the Montanaro budget shares,
 *  - parity energy overheads from Phelan (ARM): +23% on reads and
 *    +36% on writes of the protected cache,
 * plus the voltage-swing scaling of Section 3: when the D-cache is
 * over-clocked its access energy shrinks linearly with the swing
 * (45%/19%/6% savings at Cr = 0.25/0.5/0.75).
 */

#ifndef CLUMSY_ENERGY_CHIP_ENERGY_HH
#define CLUMSY_ENERGY_CHIP_ENERGY_HH

#include <cstdint>

#include "common/types.hh"
#include "energy/cacti_lite.hh"

namespace clumsy::energy
{

/** Word-protection scheme of the L1 D-cache (energy accounting). */
enum class Protection
{
    None,   ///< raw array
    Parity, ///< 1 parity bit per word (the paper's choice)
    Secded, ///< Hamming SEC-DED, 7 check bits per word
};

/** Chip-level energy model parameters (defaults = the paper's setup). */
struct EnergyParams
{
    double chipPowerWatts = 0.5;   ///< Montanaro StrongARM
    double clockHz = 160e6;        ///< Montanaro StrongARM
    double l1iFraction = 0.27;     ///< I-cache share of chip power
    double l1dFraction = 0.16;     ///< D-cache share (paper Section 5.4)
    double parityReadOverhead = 0.23;  ///< Phelan
    double parityWriteOverhead = 0.36; ///< Phelan
    /// SEC-DED overheads: 7 check bits per word plus encode/correct
    /// trees; scaled up from Phelan's single-bit numbers (estimates,
    /// see bench/ablation_ecc).
    double secdedReadOverhead = 0.55;
    double secdedWriteOverhead = 0.80;

    /// Calibration access profile: D-cache accesses per cycle used to
    /// translate the Montanaro power share into per-access energy.
    double l1dAccessesPerCycle = 0.40;
    /// I-cache fetches per cycle in the calibration profile. The
    /// in-order core fetches one 32 B line (8 instructions) per
    /// access, so at ~1 IPC the I-cache is accessed every 8th cycle.
    double l1iAccessesPerCycle = 0.125;
    /// Read fraction of D-cache accesses in the calibration profile.
    double l1dReadFraction = 0.70;

    /// Energy of one L2 access (off the Montanaro budget; cacti raw).
    /// <= 0 means "use the cacti-lite estimate for the L2 geometry".
    double l2AccessPj = -1.0;
    /// Energy of one DRAM access, pJ.
    double memAccessPj = 20000.0;
};

/** Per-event energies derived from the parameters and geometries. */
class EnergyModel
{
  public:
    EnergyModel(EnergyParams params, CacheGeometry l1d, CacheGeometry l1i,
                CacheGeometry l2);

    /** Chip energy per base cycle, pJ (0.5 W / 160 MHz = 3125). */
    PicoJoules chipPerCyclePj() const { return chipPerCycle_; }

    /** Non-cache ("rest of chip") energy per base cycle, pJ. */
    PicoJoules restPerCyclePj() const { return restPerCycle_; }

    /**
     * L1 D-cache read energy at relative cycle time cr, pJ.
     * @param prot adds the codec overhead (Phelan for parity).
     */
    PicoJoules l1dReadPj(double cr, Protection prot) const;

    /** L1 D-cache write energy at relative cycle time cr, pJ. */
    PicoJoules l1dWritePj(double cr, Protection prot) const;

    /** L1 I-cache fetch energy (never over-clocked), pJ. */
    PicoJoules l1iReadPj() const { return l1iRead_; }

    /** Unified L2 access energy, pJ. */
    PicoJoules l2AccessPj() const { return l2Access_; }

    /** DRAM access energy, pJ. */
    PicoJoules memAccessPj() const { return params_.memAccessPj; }

    /** The parameters in use. */
    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    PicoJoules chipPerCycle_;
    PicoJoules restPerCycle_;
    PicoJoules l1dRead_;  // full-swing, no parity
    PicoJoules l1dWrite_; // full-swing, no parity
    PicoJoules l1iRead_;
    PicoJoules l2Access_;
};

/** Running energy account for one simulation. */
class EnergyAccount
{
  public:
    explicit EnergyAccount(const EnergyModel *model);

    /** Charge rest-of-chip energy for elapsed base cycles. */
    void addCoreCycles(double cycles);

    /** Charge one I-cache fetch. */
    void addL1iRead();

    /** Charge one D-cache read at the cache's current cycle time. */
    void addL1dRead(double cr, Protection prot);

    /** Charge one D-cache write. */
    void addL1dWrite(double cr, Protection prot);

    /** Charge one L2 access. */
    void addL2Access();

    /** Charge one DRAM access. */
    void addMemAccess();

    /** Total energy so far, pJ. */
    PicoJoules totalPj() const;

    /** D-cache-only energy so far, pJ (for the 41%-saving headline). */
    PicoJoules l1dPj() const { return l1d_; }

    /** Rest-of-chip energy so far, pJ. */
    PicoJoules restPj() const { return rest_; }

    /** L2 energy so far, pJ. */
    PicoJoules l2Pj() const { return l2_; }

    /** Zero the account. */
    void reset();

  private:
    const EnergyModel *model_;
    PicoJoules rest_ = 0, l1i_ = 0, l1d_ = 0, l2_ = 0, mem_ = 0;
};

} // namespace clumsy::energy

#endif // CLUMSY_ENERGY_CHIP_ENERGY_HH
