#include "energy/cacti_lite.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace clumsy::energy
{

namespace
{

// Technology constants, 0.35 um class (StrongARM era), picojoules.
constexpr double kDecodePerAddrBit = 2.0;   // pJ per decoded address bit
constexpr double kWordlinePerCol = 0.006;   // pJ per column on the WL
constexpr double kBitlinePerCell = 0.030;   // pJ per cell on active BLs
constexpr double kSensePerBit = 0.60;       // pJ per sensed bit
constexpr double kOutputPerBit = 0.25;      // pJ per driven output bit
constexpr double kWriteBitlineFactor = 1.45;// writes drive full swing

// Subarray partitioning bounds (CACTI-style Ndwl/Ndbl limits).
constexpr std::uint32_t kMaxSubarrayRows = 128;
constexpr std::uint32_t kMaxSubarrayCols = 512;

// Timing constants, nanoseconds.
constexpr double kDecodeNsPerBit = 0.11;
constexpr double kWordlineNsPerCol = 0.0006;
constexpr double kBitlineNsPerRow = 0.0022;
constexpr double kSenseNs = 0.30;

} // namespace

CactiLite::CactiLite(CacheGeometry geom) : geom_(geom)
{
    CLUMSY_ASSERT(geom_.sizeBytes > 0 && geom_.assoc > 0 &&
                  geom_.lineBytes > 0,
                  "cache geometry must be non-degenerate");
    CLUMSY_ASSERT(geom_.sizeBytes % (geom_.lineBytes * geom_.assoc) == 0,
                  "size must be a multiple of line*assoc");
    CLUMSY_ASSERT(isPowerOfTwo(geom_.sets()) && isPowerOfTwo(geom_.assoc),
                  "sets and ways must be powers of two");

    const std::uint32_t rows = geom_.sets();
    const std::uint32_t colsPerWay = geom_.lineBytes * 8 + geom_.tagBits;

    std::uint32_t rowSplits = 1;
    while (rows / rowSplits > kMaxSubarrayRows)
        rowSplits *= 2;
    std::uint32_t colSplits = 1;
    while (colsPerWay / colSplits > kMaxSubarrayCols)
        colSplits *= 2;

    subRows_ = std::max<std::uint32_t>(rows / rowSplits, 1);
    subCols_ = std::max<std::uint32_t>(colsPerWay / colSplits, 1);
    // One subarray per way supplies the line+tag in parallel.
    active_ = geom_.assoc;
}

AccessEnergy
CactiLite::readEnergy() const
{
    const std::uint32_t rows = geom_.sets();
    const unsigned addrBits = rows > 1 ? floorLog2(rows) : 1;
    const double lineBits = geom_.lineBytes * 8.0;

    AccessEnergy e;
    e.decoder = kDecodePerAddrBit * addrBits;
    e.wordline = kWordlinePerCol * subCols_ * active_;
    e.bitline = kBitlinePerCell * subRows_ * subCols_ * active_;
    e.senseAmp = kSensePerBit * subCols_ * active_;
    e.output = kOutputPerBit * lineBits;
    return e;
}

AccessEnergy
CactiLite::writeEnergy() const
{
    AccessEnergy e = readEnergy();
    e.bitline *= kWriteBitlineFactor;
    e.senseAmp = 0.0; // writes bypass the sense amps
    return e;
}

double
CactiLite::accessTimeNs() const
{
    const std::uint32_t rows = geom_.sets();
    const unsigned addrBits = rows > 1 ? floorLog2(rows) : 1;
    return kDecodeNsPerBit * addrBits + kWordlineNsPerCol * subCols_ +
           kBitlineNsPerRow * subRows_ + kSenseNs;
}

} // namespace clumsy::energy
