/**
 * @file
 * Voltage-scaling (DVS) baseline model.
 *
 * The paper (Section 4, citing Krishna & Lee) argues that varying the
 * cache's clock alone is easier than varying the supply voltage: no
 * flush, a 10-cycle switch penalty, trivial hardware. This model
 * quantifies the conventional alternative — running the cache faster
 * *reliably* by raising Vdd (overdrive) — so the benches can put the
 * clumsy trade next to it:
 *
 *  - delay follows the alpha-power law, delay ∝ V / (V - Vt)^alpha,
 *    so the frequency achievable at normalized voltage v is
 *    F(v) = [ (v - vt)^alpha / v ] / [ (1 - vt)^alpha / 1 ];
 *  - dynamic energy per access scales as v^2;
 *  - a voltage transition stalls the cache (PLL relock + mandatory
 *    flush of the write-back L1), costing flushPenaltyCycles — orders
 *    of magnitude above the paper's 10-cycle clock hop.
 */

#ifndef CLUMSY_ENERGY_DVS_HH
#define CLUMSY_ENERGY_DVS_HH

#include <cstdint>

namespace clumsy::energy
{

/** Alpha-power-law parameters (0.35 um class defaults). */
struct DvsParams
{
    double vt = 0.35;    ///< threshold voltage, fraction of nominal Vdd
    double alpha = 1.3;  ///< velocity-saturation exponent
    double vMax = 1.6;   ///< overdrive ceiling, fraction of nominal
    /// Cycles lost per voltage transition: write-back + invalidate of
    /// the 4 KB L1 (128 lines through a 15-cycle L2) plus regulator
    /// settling; vs the paper's 10-cycle clock-only hop.
    std::int64_t transitionPenaltyCycles = 2500;
};

/** Frequency ratio achievable at normalized voltage v (F(1) = 1). */
double frequencyAtVoltage(double v, const DvsParams &params = {});

/**
 * Voltage needed to run reliably at frequency ratio fr >= achievable
 * range; fatal()s when fr exceeds what vMax supports.
 */
double voltageForFrequency(double fr, const DvsParams &params = {});

/** Dynamic energy per access at normalized voltage v, relative. */
double energyScaleAtVoltage(double v);

} // namespace clumsy::energy

#endif // CLUMSY_ENERGY_DVS_HH
