#include "core/experiment.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.hh"
#include "traffic/traffic.hh"

namespace clumsy::core
{

namespace
{

/** FNV-1a over a byte range (the recorder's rolling digest). */
std::uint64_t
fnvBytes(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

std::string
to_string(FaultPlane plane)
{
    switch (plane) {
      case FaultPlane::ControlOnly:
        return "control plane";
      case FaultPlane::DataOnly:
        return "data plane";
      case FaultPlane::Both:
        return "both planes";
    }
    panic("unreachable fault plane");
}

void
ValueRecorder::beginPacket()
{
    // A frame marker in the digest separates consecutive packets, so
    // moving a value across a frame boundary changes the digest even
    // though the byte stream of keys and values would not.
    const std::uint64_t mark = 0xf4a3e0ull;
    digest_ = fnvBytes(digest_, &mark, sizeof mark);
    ++framesBegun_;
    if (mode_ == Mode::Full)
        packets_.emplace_back();
}

void
ValueRecorder::record(const std::string &key, std::uint64_t value)
{
    CLUMSY_ASSERT(framesBegun_ > 0,
                  "record() before the first beginPacket()");
    digest_ = fnvBytes(digest_, key.data(), key.size());
    digest_ = fnvBytes(digest_, &value, sizeof value);
    if (mode_ == Mode::Full)
        packets_.back().emplace_back(key, value);
}

void
ValueRecorder::record(const char *key, std::uint64_t value)
{
    CLUMSY_ASSERT(framesBegun_ > 0,
                  "record() before the first beginPacket()");
    digest_ = fnvBytes(digest_, key, std::strlen(key));
    digest_ = fnvBytes(digest_, &value, sizeof value);
    if (mode_ == Mode::Full)
        packets_.back().emplace_back(key, value);
}

std::vector<std::string>
ValueRecorder::comparePacket(std::size_t idx,
                             const ValueRecorder &other) const
{
    return comparePacket(idx, other, idx);
}

std::vector<std::string>
ValueRecorder::comparePacket(std::size_t idx, const ValueRecorder &other,
                             std::size_t otherIdx) const
{
    CLUMSY_ASSERT(mode_ == Mode::Full && other.mode_ == Mode::Full,
                  "comparePacket() needs Full-mode recorders");
    CLUMSY_ASSERT(idx < packets_.size() &&
                      otherIdx < other.packets_.size(),
                  "packet frame out of range");
    // Group the frame's values per key, preserving per-key order
    // (e.g. the sequence of radix-tree nodes traversed).
    auto group = [](const Frame &frame) {
        std::map<std::string, std::vector<std::uint64_t>> m;
        for (const auto &kv : frame)
            m[kv.first].push_back(kv.second);
        return m;
    };
    const auto mine = group(packets_[idx]);
    const auto theirs = group(other.packets_[otherIdx]);

    std::vector<std::string> mismatched;
    for (const auto &kv : mine) {
        auto it = theirs.find(kv.first);
        if (it == theirs.end() || it->second != kv.second)
            mismatched.push_back(kv.first);
    }
    for (const auto &kv : theirs) {
        if (!mine.count(kv.first))
            mismatched.push_back(kv.first);
    }
    return mismatched;
}

ProcessorConfig
makeRunProcessorConfig(const ExperimentConfig &config, bool golden,
                       unsigned trial)
{
    ProcessorConfig pc = config.processor;
    pc.hierarchy.scheme = config.scheme;
    pc.staticCr = config.cr;
    pc.dynamicFrequency = !golden && config.dynamicFrequency;
    pc.injectionEnabled = false; // planes toggle it during the run
    // Decorrelate the fault streams of different operating points:
    // with a shared stream, any fault drawn at Cr = 1 recurs at every
    // faster clock (the thresholds nest), which would make rare fatal
    // events step identically across a whole sweep.
    pc.faultSeed = config.faultSeed + trial * 0x9e3779b9ull +
                   static_cast<std::uint64_t>(config.cr * 1e4) * 7919 +
                   static_cast<std::uint64_t>(config.scheme) * 104729 +
                   (config.dynamicFrequency ? 15485863 : 0);
    pc.faultModel.scale = config.faultScale;
    return pc;
}

net::TraceConfig
resolveTraceConfig(const ExperimentConfig &config, const PacketApp &app)
{
    net::TraceConfig tc = app.traceConfig();
    tc.seed = config.traceSeed;
    if (config.traceFlows != 0)
        tc.numFlows = config.traceFlows;
    if (config.churnLifetime != 0) {
        tc.churn.enabled = true;
        tc.churn.meanLifetimePackets =
            static_cast<double>(config.churnLifetime);
    }
    if (config.flowZipf >= 0.0)
        tc.flowZipf = config.flowZipf;
    return tc;
}

namespace
{

/** Outcome of one end-to-end run (golden or one faulty trial). */
struct RawRun
{
    RunMetrics metrics;
    ValueRecorder recorder;
};

RawRun
runOnce(const AppFactory &factory, const ExperimentConfig &config,
        bool golden, unsigned trial, const ValueRecorder *reference)
{
    RawRun run;
    auto app = factory();
    ClumsyProcessor proc(makeRunProcessorConfig(config, golden, trial));

    const bool injectControl =
        !golden && config.plane != FaultPlane::DataOnly;
    const bool injectData =
        !golden && config.plane != FaultPlane::ControlOnly;

    proc.setInjectionEnabled(injectControl);
    app->initialize(proc);

    // Per-packet costs are data-plane costs (the paper's "average
    // number of cycles spent for each packet"): snapshot the
    // control-plane expenditure so it never leaks into the per-packet
    // averages — vital for runs a fatal error truncates early, where
    // dividing one-time init cycles by a handful of packets would
    // dwarf every real effect.
    const double initCycles = proc.nowCycles();
    const double initEnergy = proc.totalEnergyPj();
    const double initL1d = proc.l1dEnergyPj();

    const net::TraceConfig trace = resolveTraceConfig(config, *app);
    const auto src = traffic::makeSource(trace, 0);

    // Control-plane churn stream (nullptr at rate 0). Golden and
    // faulty runs replay the identical schedule: the stream is seeded
    // from the trace seed, decorrelated by kCtrlSeedSalt.
    const auto ctrlSrc = ctrl::makeCtrlSource(config.ctrl, trace);

    proc.setInjectionEnabled(injectData);
    RunMetrics &m = run.metrics;
    m.packetsAttempted = config.numPackets;
    for (std::uint64_t i = 0; i < config.numPackets; ++i) {
        const net::Packet pkt = src->next();
        if (proc.fatalOccurred())
            break;
        // Apply every update scheduled before this packet, through
        // the timed (and, in faulty runs, injected) path: a fatal
        // during an update truncates the run exactly like a fatal
        // during forwarding.
        if (ctrlSrc) {
            while (const ctrl::CtrlEvent *ev = ctrlSrc->peek()) {
                if (ev->beforePacket > i)
                    break;
                if (app->applyCtrlEvent(proc, *ev))
                    ++m.ctrlEventsApplied;
                ctrlSrc->advance();
                if (proc.fatalOccurred())
                    break;
            }
            if (proc.fatalOccurred())
                break;
        }
        proc.beginPacket();
        run.recorder.beginPacket();
        app->processPacket(proc, pkt, run.recorder);
        if (proc.fatalOccurred())
            break;
        proc.endPacket();
        ++m.packetsProcessed;
        if (reference) {
            const auto bad = run.recorder.comparePacket(i, *reference);
            if (!bad.empty())
                ++m.packetsWithError;
            for (const auto &key : bad)
                ++m.errorsByType[key];
        }
    }

    m.fatal = proc.fatalOccurred();
    m.fatalReason = proc.fatalReason();
    const double processed =
        m.packetsProcessed > 0 ? static_cast<double>(m.packetsProcessed)
                               : 1.0;
    m.cyclesPerPacket = (proc.nowCycles() - initCycles) / processed;
    m.totalEnergyPj = proc.totalEnergyPj();
    m.energyPerPacketPj = (m.totalEnergyPj - initEnergy) / processed;
    m.l1dEnergyPj = proc.l1dEnergyPj() - initL1d;
    m.instructions = proc.instructions();
    m.dcacheAccesses = proc.hierarchy().stats().get("reads") +
                       proc.hierarchy().stats().get("writes");
    m.dcacheMissRate = proc.hierarchy().l1d().missRate();
    m.faultsInjected = proc.injector().faultCount();
    m.parityTrips = proc.hierarchy().stats().get("parity_trips");
    m.eccCorrections = proc.hierarchy().stats().get("ecc_corrections");
    m.freqSwitches =
        proc.freqController() ? proc.freqController()->switches() : 0;
    return run;
}

} // namespace

GoldenRecord
runGolden(const AppFactory &factory, const ExperimentConfig &config)
{
    RawRun run = runOnce(factory, config, true, 0, nullptr);
    CLUMSY_ASSERT(!run.metrics.fatal, "golden run must not die");
    return GoldenRecord{std::move(run.metrics), std::move(run.recorder)};
}

RunMetrics
runFaultyTrial(const AppFactory &factory, const ExperimentConfig &config,
               unsigned trial, const GoldenRecord &golden)
{
    return runOnce(factory, config, false, trial, &golden.recorder)
        .metrics;
}

ExperimentResult
aggregateTrials(const std::string &app, const GoldenRecord &golden,
                const std::vector<RunMetrics> &trials)
{
    CLUMSY_ASSERT(!trials.empty(), "need at least one trial");

    ExperimentResult result;
    result.app = app;
    result.golden = golden.metrics;

    double sumErrProb = 0, sumFatalFrac = 0;
    double sumFall = 0, sumCycles = 0, sumEnergy = 0, sumL1d = 0;
    double sumEdf = 0;
    std::uint64_t totalDeaths = 0, totalProcessed = 0;
    std::map<std::string, double> sumErrByType;

    for (const RunMetrics &m : trials) {
        result.faulty = m;

        sumErrProb += anyErrorProb(m);
        totalDeaths += m.fatal ? 1 : 0;
        totalProcessed += m.packetsProcessed;
        sumFatalFrac += m.fatal ? 1.0 : 0.0;
        sumFall += fallibility(m);
        sumCycles += m.cyclesPerPacket;
        sumEnergy += m.energyPerPacketPj;
        const double processed = m.packetsProcessed > 0
                                     ? static_cast<double>(
                                           m.packetsProcessed)
                                     : 1.0;
        sumL1d += m.l1dEnergyPj / processed;
        sumEdf += edfProduct(m);
        for (const auto &kv : m.errorsByType)
            sumErrByType[kv.first] += static_cast<double>(kv.second) /
                                      processed;
    }

    const double n = static_cast<double>(trials.size());
    result.anyErrorProb = sumErrProb / n;
    // Pooled per-packet fatal hazard: deaths over total exposure, a
    // stable estimator even when an unlucky trial dies immediately.
    result.fatalProb =
        totalProcessed > 0
            ? static_cast<double>(totalDeaths) /
                  static_cast<double>(totalProcessed)
            : (totalDeaths > 0 ? 1.0 : 0.0);
    result.fatalFraction = sumFatalFrac / n;
    result.fallibility = sumFall / n;
    result.cyclesPerPacket = sumCycles / n;
    result.energyPerPacketPj = sumEnergy / n;
    result.l1dEnergyPerPacketPj = sumL1d / n;
    result.edf = sumEdf / n;
    for (const auto &kv : sumErrByType)
        result.errorProbByType[kv.first] = kv.second / n;
    return result;
}

ExperimentResult
runExperiment(const AppFactory &factory, const ExperimentConfig &config)
{
    CLUMSY_ASSERT(config.trials >= 1, "need at least one trial");

    std::string app;
    {
        auto probe = factory();
        app = probe->name();
    }

    const GoldenRecord golden = runGolden(factory, config);
    std::vector<RunMetrics> trials;
    trials.reserve(config.trials);
    for (unsigned t = 0; t < config.trials; ++t)
        trials.push_back(runFaultyTrial(factory, config, t, golden));
    return aggregateTrials(app, golden, trials);
}

} // namespace clumsy::core
