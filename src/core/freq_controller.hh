/**
 * @file
 * Dynamic cache-frequency adaptation (paper Section 4).
 *
 * The processor counts observed faults (parity failures) over epochs
 * of a fixed number of packets — 100 in the paper. At each epoch end
 * it compares the epoch's fault count against the count stored at the
 * last frequency change:
 *
 *   faults > X1 * stored  ->  decrease frequency (Cr one level up)
 *   faults < X2 * stored  ->  increase frequency (Cr one level down)
 *   otherwise             ->  keep
 *
 * with X1 = 200% and X2 = 80% (the paper's tuned values). Every
 * change stores the epoch's fault count and costs a 10-cycle switch
 * penalty. The stored count is floored at 1 so fault-free epochs
 * (common at Cr = 1) read as "less than X2%" and push the controller
 * toward higher frequency, which is the leaning the paper describes.
 */

#ifndef CLUMSY_CORE_FREQ_CONTROLLER_HH
#define CLUMSY_CORE_FREQ_CONTROLLER_HH

#include <cstdint>

#include "common/stats.hh"
#include "core/clock.hh"

namespace clumsy::core
{

/** Controller parameters (defaults = the paper's tuned values). */
struct FreqControllerConfig
{
    unsigned epochPackets = 100;     ///< decision interval
    double x1 = 2.00;                ///< decrease threshold (200%)
    double x2 = 0.80;                ///< increase threshold (80%)
    std::int64_t switchPenaltyCycles = 10;
    std::vector<double> levels = kPaperCrLevels;
    unsigned startLevel = 0;         ///< index into levels (Cr = 1)
};

/** Epoch-based frequency adaptation state machine. */
class FreqController
{
  public:
    explicit FreqController(FreqControllerConfig config);

    /** What an epoch decision did. */
    struct Decision
    {
        double cr;              ///< cycle time after the decision
        bool changed;           ///< true when the level moved
        std::int64_t penaltyCycles; ///< 0 or the switch penalty
    };

    /**
     * Feed the fault count observed over the epoch that just ended
     * and obtain the next operating point.
     */
    Decision onEpochEnd(std::uint64_t epochFaults);

    /** Packets per epoch. */
    unsigned epochPackets() const { return config_.epochPackets; }

    /** Current relative cycle time. */
    double currentCr() const { return levels_.cr(level_); }

    /** Number of frequency switches so far. */
    std::uint64_t switches() const { return switches_; }

    /** Per-level residency counters (epochs spent at each Cr). */
    const StatGroup &stats() const { return stats_; }

  private:
    FreqControllerConfig config_;
    FrequencyLevels levels_;
    unsigned level_;
    std::uint64_t storedFaults_ = 1; ///< floored at 1; see file comment
    std::uint64_t switches_ = 0;
    StatGroup stats_{"freqctl"};
};

} // namespace clumsy::core

#endif // CLUMSY_CORE_FREQ_CONTROLLER_HH
