/**
 * @file
 * Dynamic cache-frequency adaptation (paper Section 4).
 *
 * The processor counts observed faults (parity failures) over epochs
 * of a fixed number of packets — 100 in the paper. At each epoch end
 * it compares the epoch's fault count against the count stored at the
 * last frequency change:
 *
 *   faults > X1 * stored  ->  decrease frequency (Cr one level up)
 *   faults < X2 * stored  ->  increase frequency (Cr one level down)
 *   otherwise             ->  keep
 *
 * with X1 = 200% and X2 = 80% (the paper's tuned values). Every
 * change stores the epoch's fault count and costs a 10-cycle switch
 * penalty. The stored count is floored at 1 so fault-free epochs
 * (common at Cr = 1) read as "less than X2%" and push the controller
 * toward higher frequency, which is the leaning the paper describes.
 *
 * The *decision rule* is a pluggable policy (FreqPolicy) so the
 * multi-engine chip (src/npu/) can bias it with local queue pressure:
 * an engine whose input queue sits empty backs its clock off (save
 * energy, shed fault risk), one whose bounded queue is backing up
 * speeds up toward the fault wall. The fault wall always dominates —
 * no amount of queue pressure overrides a too-many-faults epoch.
 */

#ifndef CLUMSY_CORE_FREQ_CONTROLLER_HH
#define CLUMSY_CORE_FREQ_CONTROLLER_HH

#include <cstdint>
#include <memory>

#include "common/stats.hh"
#include "core/clock.hh"

namespace clumsy::core
{

/** Which decision rule drives the controller. */
enum class FreqPolicyKind
{
    /** The paper's pure fault-feedback rule (X1/X2 thresholds). */
    FaultFeedback,
    /**
     * Fault feedback biased by local input-queue pressure (per-PE
     * DVS on the chip): back off when the queue runs empty, speed up
     * when it backs up past the high watermark.
     */
    QueueBiased,
};

/** Controller parameters (defaults = the paper's tuned values). */
struct FreqControllerConfig
{
    unsigned epochPackets = 100;     ///< decision interval
    double x1 = 2.00;                ///< decrease threshold (200%)
    double x2 = 0.80;                ///< increase threshold (80%)
    std::int64_t switchPenaltyCycles = 10;
    std::vector<double> levels = kPaperCrLevels;
    unsigned startLevel = 0;         ///< index into levels (Cr = 1)

    FreqPolicyKind policy = FreqPolicyKind::FaultFeedback;

    /**
     * Queue-pressure watermarks of the QueueBiased policy, as
     * fractions of the input-queue capacity. Mean pressure at or
     * below queueLow backs the clock off; at or above queueHigh it
     * speeds the clock up (unless the fault wall says otherwise).
     */
    double queueLow = 0.05;
    double queueHigh = 0.50;

    /**
     * Epoch cadence is driven externally (the chip's epoch hook calls
     * closeDvsEpoch) instead of by the processor's own packet count.
     */
    bool externalEpochs = false;
};

/** What one epoch's decision saw. */
struct EpochObservation
{
    std::uint64_t epochFaults = 0; ///< faults observed this epoch

    /** True when a queue-pressure reading accompanies the epoch. */
    bool hasQueuePressure = false;

    /** Mean input-queue depth over the epoch / queue capacity. */
    double queuePressure = 0.0;
};

/** Direction a policy proposes for the clock. */
enum class FreqStep
{
    SlowDown, ///< one Cr level toward full swing (slower, safer)
    Hold,
    SpeedUp,  ///< one Cr level toward the fault wall (faster)
};

/** Decision rule: observation + stored fault count -> direction. */
class FreqPolicy
{
  public:
    virtual ~FreqPolicy() = default;

    /**
     * Propose a step. @p storedFaults is the fault count recorded at
     * the last level change, floored at 1 (see file comment).
     */
    virtual FreqStep decide(const EpochObservation &obs,
                            std::uint64_t storedFaults) const = 0;
};

/** The paper's X1/X2 fault-feedback rule. */
class FaultFeedbackPolicy : public FreqPolicy
{
  public:
    FaultFeedbackPolicy(double x1, double x2) : x1_(x1), x2_(x2) {}

    FreqStep decide(const EpochObservation &obs,
                    std::uint64_t storedFaults) const override;

  private:
    double x1_;
    double x2_;
};

/**
 * Fault feedback biased by queue pressure. Precedence:
 *
 *   1. faults > X1 * stored          -> SlowDown (fault wall wins)
 *   2. pressure >= queueHigh         -> SpeedUp  (queue backing up)
 *   3. pressure <= queueLow          -> SlowDown (engine idle)
 *   4. otherwise                     -> the paper's rule
 *
 * An observation without a pressure reading falls through to the
 * paper's rule unchanged.
 */
class QueueBiasedPolicy : public FreqPolicy
{
  public:
    QueueBiasedPolicy(double x1, double x2, double queueLow,
                      double queueHigh)
        : fault_(x1, x2), x1_(x1), queueLow_(queueLow),
          queueHigh_(queueHigh)
    {
    }

    FreqStep decide(const EpochObservation &obs,
                    std::uint64_t storedFaults) const override;

  private:
    FaultFeedbackPolicy fault_;
    double x1_;
    double queueLow_;
    double queueHigh_;
};

/** Epoch-based frequency adaptation state machine. */
class FreqController
{
  public:
    explicit FreqController(FreqControllerConfig config);

    /** What an epoch decision did. */
    struct Decision
    {
        double cr;              ///< cycle time after the decision
        bool changed;           ///< true when the level moved
        std::int64_t penaltyCycles; ///< 0 or the switch penalty
    };

    /**
     * Feed the fault count observed over the epoch that just ended
     * and obtain the next operating point.
     */
    Decision onEpochEnd(std::uint64_t epochFaults);

    /** General form: the full observation, queue pressure included. */
    Decision onEpochEnd(const EpochObservation &obs);

    /** Packets per epoch. */
    unsigned epochPackets() const { return config_.epochPackets; }

    /** Current relative cycle time. */
    double currentCr() const { return levels_.cr(level_); }

    /** Number of frequency switches so far. */
    std::uint64_t switches() const { return switches_; }

    /** Epoch decisions taken so far. */
    std::uint64_t epochs() const { return epochs_; }

    /** Decisions that raised the clock (one Cr level faster). */
    std::uint64_t clockUps() const { return clockUps_; }

    /** Decisions that lowered the clock (one Cr level slower). */
    std::uint64_t clockDowns() const { return clockDowns_; }

    /**
     * Residency-weighted mean Cr over the epochs decided so far
     * (each epoch counts the level it *ended* at). currentCr() when
     * no epoch has closed yet.
     */
    double meanCr() const;

    /** Per-level residency counters (epochs spent at each Cr). */
    const StatGroup &stats() const { return stats_; }

    /** The configuration in force. */
    const FreqControllerConfig &config() const { return config_; }

  private:
    FreqControllerConfig config_;
    FrequencyLevels levels_;
    std::unique_ptr<FreqPolicy> policy_;
    unsigned level_;
    std::uint64_t storedFaults_ = 1; ///< floored at 1; see file comment
    std::uint64_t switches_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint64_t clockUps_ = 0;
    std::uint64_t clockDowns_ = 0;
    double crWeightedEpochs_ = 0.0; ///< sum of end-of-epoch Cr values
    StatGroup stats_{"freqctl"};
};

} // namespace clumsy::core

#endif // CLUMSY_CORE_FREQ_CONTROLLER_HH
