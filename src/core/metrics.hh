/**
 * @file
 * The paper's comparison metrics (Section 4.1).
 *
 * Because a clumsy processor is allowed to make mistakes, plain delay
 * or energy-delay products are insufficient; the paper introduces the
 * energy^k - delay^m - fallibility^n product with k=1, m=2, n=2.
 * Fallibility is application-level: 1 + the fraction of packets with
 * any erroneous marked value. Fatal errors truncate the run, so all
 * per-packet quantities are computed over the packets successfully
 * processed before the fatal error.
 */

#ifndef CLUMSY_CORE_METRICS_HH
#define CLUMSY_CORE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

namespace clumsy::core
{

/** Exponents of the energy-delay-fallibility product. */
struct MetricWeights
{
    double k = 1.0; ///< energy exponent
    double m = 2.0; ///< delay exponent
    double n = 2.0; ///< fallibility exponent
};

/** Everything measured in one (golden or faulty) run. */
struct RunMetrics
{
    std::uint64_t packetsAttempted = 0;
    std::uint64_t packetsProcessed = 0; ///< completed before any fatal
    std::uint64_t packetsWithError = 0;
    bool fatal = false;
    std::string fatalReason;

    double cyclesPerPacket = 0.0;
    double energyPerPacketPj = 0.0;
    double totalEnergyPj = 0.0;
    double l1dEnergyPj = 0.0;

    std::uint64_t instructions = 0;
    std::uint64_t dcacheAccesses = 0;
    double dcacheMissRate = 0.0;
    std::uint64_t faultsInjected = 0;
    std::uint64_t parityTrips = 0;
    std::uint64_t eccCorrections = 0;
    std::uint64_t freqSwitches = 0;

    /** Control-plane events applied during the data plane (ctrl=). */
    std::uint64_t ctrlEventsApplied = 0;

    /** Packets whose named marked value mismatched the golden run. */
    std::map<std::string, std::uint64_t> errorsByType;
};

/** Fraction of processed packets with at least one error. */
double anyErrorProb(const RunMetrics &m);

/** The paper's fallibility factor: 1 + anyErrorProb. */
double fallibility(const RunMetrics &m);

/**
 * Per-packet fatal-error hazard: 1/packetsProcessed when the run died,
 * 0 otherwise (matches the paper's packets-until-fatal accounting).
 */
double fatalProb(const RunMetrics &m);

/**
 * energy^k * delay^m * fallibility^n, using per-packet energy and
 * delay so truncated (fatal) runs compare fairly.
 */
double edfProduct(const RunMetrics &m, MetricWeights w = {});

/** edfProduct(m) / edfProduct(baseline) — the paper's relative bars. */
double relativeEdf(const RunMetrics &m, const RunMetrics &baseline,
                   MetricWeights w = {});

} // namespace clumsy::core

#endif // CLUMSY_CORE_METRICS_HH
