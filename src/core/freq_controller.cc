#include "core/freq_controller.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace clumsy::core
{

FreqController::FreqController(FreqControllerConfig config)
    : config_(config), levels_(config.levels), level_(config.startLevel)
{
    CLUMSY_ASSERT(config_.epochPackets > 0, "epoch must be non-empty");
    CLUMSY_ASSERT(config_.x1 > config_.x2, "X1 must exceed X2");
    CLUMSY_ASSERT(level_ < levels_.count(), "start level out of range");
}

FreqController::Decision
FreqController::onEpochEnd(std::uint64_t epochFaults)
{
    stats_.inc("epochs");
    stats_.inc("residency_level" + std::to_string(level_));

    const auto faults = static_cast<double>(epochFaults);
    const auto stored = static_cast<double>(storedFaults_);

    unsigned newLevel = level_;
    if (faults > config_.x1 * stored) {
        // Too many faults: back off toward the full-swing clock.
        if (level_ > 0)
            newLevel = level_ - 1;
    } else if (faults < config_.x2 * stored) {
        // Quiet epoch: push the clock one level faster.
        if (level_ + 1 < levels_.count())
            newLevel = level_ + 1;
    }

    Decision d{levels_.cr(newLevel), newLevel != level_, 0};
    if (d.changed) {
        level_ = newLevel;
        storedFaults_ = std::max<std::uint64_t>(epochFaults, 1);
        d.penaltyCycles = config_.switchPenaltyCycles;
        ++switches_;
        stats_.inc("switches");
    }
    return d;
}

} // namespace clumsy::core
