#include "core/freq_controller.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace clumsy::core
{

FreqStep
FaultFeedbackPolicy::decide(const EpochObservation &obs,
                            std::uint64_t storedFaults) const
{
    const auto faults = static_cast<double>(obs.epochFaults);
    const auto stored = static_cast<double>(storedFaults);
    if (faults > x1_ * stored)
        return FreqStep::SlowDown;
    if (faults < x2_ * stored)
        return FreqStep::SpeedUp;
    return FreqStep::Hold;
}

FreqStep
QueueBiasedPolicy::decide(const EpochObservation &obs,
                          std::uint64_t storedFaults) const
{
    // The fault wall always dominates: a too-noisy epoch backs off no
    // matter how deep the input queue is.
    const auto faults = static_cast<double>(obs.epochFaults);
    if (faults > x1_ * static_cast<double>(storedFaults))
        return FreqStep::SlowDown;
    if (obs.hasQueuePressure) {
        if (obs.queuePressure >= queueHigh_)
            return FreqStep::SpeedUp;
        if (obs.queuePressure <= queueLow_)
            return FreqStep::SlowDown;
    }
    return fault_.decide(obs, storedFaults);
}

namespace
{

std::unique_ptr<FreqPolicy>
makePolicy(const FreqControllerConfig &config)
{
    switch (config.policy) {
      case FreqPolicyKind::FaultFeedback:
        return std::make_unique<FaultFeedbackPolicy>(config.x1,
                                                     config.x2);
      case FreqPolicyKind::QueueBiased:
        return std::make_unique<QueueBiasedPolicy>(
            config.x1, config.x2, config.queueLow, config.queueHigh);
    }
    panic("unreachable frequency policy kind");
}

} // namespace

FreqController::FreqController(FreqControllerConfig config)
    : config_(config), levels_(config.levels),
      policy_(makePolicy(config)), level_(config.startLevel)
{
    CLUMSY_ASSERT(config_.epochPackets > 0, "epoch must be non-empty");
    CLUMSY_ASSERT(config_.x1 > config_.x2, "X1 must exceed X2");
    CLUMSY_ASSERT(level_ < levels_.count(), "start level out of range");
    CLUMSY_ASSERT(config_.queueLow < config_.queueHigh,
                  "queue watermarks must be ordered low < high");
}

FreqController::Decision
FreqController::onEpochEnd(std::uint64_t epochFaults)
{
    EpochObservation obs;
    obs.epochFaults = epochFaults;
    return onEpochEnd(obs);
}

FreqController::Decision
FreqController::onEpochEnd(const EpochObservation &obs)
{
    stats_.inc("epochs");
    stats_.inc("residency_level" + std::to_string(level_));

    const FreqStep step = policy_->decide(obs, storedFaults_);

    unsigned newLevel = level_;
    if (step == FreqStep::SlowDown) {
        // Back off toward the full-swing clock.
        if (level_ > 0)
            newLevel = level_ - 1;
    } else if (step == FreqStep::SpeedUp) {
        // Push the clock one level faster.
        if (level_ + 1 < levels_.count())
            newLevel = level_ + 1;
    }

    Decision d{levels_.cr(newLevel), newLevel != level_, 0};
    if (d.changed) {
        if (newLevel > level_) {
            ++clockUps_;
            stats_.inc("clock_ups");
        } else {
            ++clockDowns_;
            stats_.inc("clock_downs");
        }
        level_ = newLevel;
        storedFaults_ = std::max<std::uint64_t>(obs.epochFaults, 1);
        d.penaltyCycles = config_.switchPenaltyCycles;
        ++switches_;
        stats_.inc("switches");
    } else {
        stats_.inc("holds");
    }
    ++epochs_;
    crWeightedEpochs_ += levels_.cr(level_);
    return d;
}

double
FreqController::meanCr() const
{
    if (epochs_ == 0)
        return currentCr();
    return crWeightedEpochs_ / static_cast<double>(epochs_);
}

} // namespace clumsy::core
