#include "core/processor.hh"

#include "common/logging.hh"

namespace clumsy::core
{

namespace
{

ProcessorConfig
validated(ProcessorConfig config)
{
    config.validate();
    return config;
}

} // namespace

ClumsyProcessor::ClumsyProcessor(ProcessorConfig config)
    : config_(validated(std::move(config))),
      store_(config_.memBytes),
      allocator_(store_, config_.memBytes - config_.iRegionBytes),
      injector_(fault::FaultModel(config_.faultModel), config_.faultSeed),
      model_(config_.energy, config_.hierarchy.l1d, config_.hierarchy.l1i,
             config_.hierarchy.l2),
      account_(&model_),
      hierarchy_(config_.hierarchy, &store_, &injector_, &account_),
      iRegionBase_(config_.memBytes - config_.iRegionBytes),
      codeBytes_(config_.iRegionBytes)
{
    injector_.setEnabled(config_.injectionEnabled);
    if (config_.faultMap.enabled()) {
        const fault::FaultMapGeometry geom{
            config_.hierarchy.l1d.sets(), config_.hierarchy.l1d.assoc,
            config_.hierarchy.l1d.lineBytes};
        if (config_.faultMap.mode == fault::FaultMapMode::File) {
            auto map = std::make_unique<fault::FaultMap>();
            const std::string err =
                fault::FaultMap::loadFile(config_.faultMap.path, *map);
            if (!err.empty())
                fatal("%s", err.c_str());
            if (!(map->geometry() == geom))
                fatal("fault map %s is for a %ux%u/%uB array, not the "
                      "L1D's %ux%u/%uB",
                      config_.faultMap.path.c_str(),
                      map->geometry().sets, map->geometry().ways,
                      map->geometry().lineBytes, geom.sets, geom.ways,
                      geom.lineBytes);
            faultMap_ = std::move(map);
        } else {
            faultMap_ = std::make_unique<fault::FaultMap>(
                fault::FaultMap::generate(
                    geom, config_.faultMap.params,
                    config_.faultMap.effectiveSeed()));
        }
        injector_.attachMap(faultMap_.get());
    }
    if (config_.dynamicFrequency) {
        freqCtl_ = std::make_unique<FreqController>(config_.freqCtl);
        hierarchy_.setCycleTime(freqCtl_->currentCr());
    } else {
        hierarchy_.setCycleTime(config_.staticCr);
    }
}

void
ClumsyProcessor::chargePortWait(const mem::Access &acc)
{
    // The access's own L2 service time is already inside acc.latency,
    // so the port-use window ends at the new local time; the arbiter
    // reports only the extra wait caused by other engines.
    const Quanta wait = l2Port_->requestPort(
        l2PortId_, cycles_ - l2PortOrigin_, acc.l2Accesses,
        acc.l2Misses, acc.l2Lines, acc.l2LineCount);
    if (wait > 0) {
        cycles_ += wait;
        l2PortWaitQuanta_ += wait;
        ++l2PortWaits_;
    }
}

void
ClumsyProcessor::setCodeRegion(SimSize offset, SimSize bytes)
{
    CLUMSY_ASSERT(bytes > 0 && offset + bytes <= config_.iRegionBytes,
                  "code region outside the instruction region");
    codeOffset_ = offset;
    codeBytes_ = bytes;
    pcOffset_ = 0;
}

SimAddr
ClumsyProcessor::alloc(SimSize size, SimSize align)
{
    return allocator_.alloc(size, align);
}

void
ClumsyProcessor::dmaWrite(SimAddr addr, const std::uint8_t *src,
                          SimSize len)
{
    CLUMSY_ASSERT(store_.contains(addr, len), "DMA outside DRAM");
    // Flush first: partially-covered lines may hold unrelated dirty
    // data that must reach DRAM before the device writes its bytes.
    hierarchy_.flushRange(addr, len);
    store_.writeBlock(addr, src, len);
}

std::uint32_t
ClumsyProcessor::peek32(SimAddr addr) const
{
    CLUMSY_ASSERT(addr % 4 == 0, "peek32 must be aligned");
    return hierarchy_.peekWord(addr);
}

std::uint8_t
ClumsyProcessor::peek8(SimAddr addr) const
{
    const std::uint32_t word = hierarchy_.peekWord(addr & ~SimAddr{3});
    return static_cast<std::uint8_t>(word >> ((addr & 3u) * 8));
}

void
ClumsyProcessor::raiseFatal(const std::string &reason)
{
    if (fatal_)
        return;
    fatal_ = true;
    fatalReason_ = reason;
}

void
ClumsyProcessor::beginPacket()
{
    // Nothing yet: packet starts are implicit. Kept for symmetry and
    // for future per-packet bookkeeping.
}

void
ClumsyProcessor::endPacket()
{
    ++packets_;
    if (!freqCtl_ || freqCtl_->config().externalEpochs)
        return;
    if (packets_ % freqCtl_->epochPackets() != 0)
        return;
    closeEpoch(EpochObservation{});
}

void
ClumsyProcessor::closeEpoch(const EpochObservation &obs)
{
    const std::uint64_t total = observedFaults();
    EpochObservation fed = obs;
    fed.epochFaults = total - epochStartFaults_;
    epochStartFaults_ = total;
    const FreqController::Decision d = freqCtl_->onEpochEnd(fed);
    if (d.changed) {
        hierarchy_.setCycleTime(d.cr);
        cycles_ += cyclesToQuanta(d.penaltyCycles);
    }
}

void
ClumsyProcessor::closeDvsEpoch(double queuePressure)
{
    if (!freqCtl_)
        return;
    EpochObservation obs;
    obs.hasQueuePressure = true;
    obs.queuePressure = queuePressure;
    closeEpoch(obs);
}

std::uint64_t
ClumsyProcessor::observedFaults() const
{
    if (mem::usesParity(config_.hierarchy.scheme))
        return hierarchy_.stats().get("parity_trips");
    return injector_.faultCount();
}

PicoJoules
ClumsyProcessor::totalEnergyPj() const
{
    return account_.totalPj() +
           quantaToCycles(cycles_) * model_.restPerCyclePj();
}

void
ClumsyProcessor::setInjectionEnabled(bool enabled)
{
    injector_.setEnabled(enabled);
}

void
ClumsyProcessor::attachL2Port(mem::L2PortArbiter *port,
                              unsigned requesterId, Quanta origin)
{
    l2Port_ = port;
    l2PortId_ = requesterId;
    l2PortOrigin_ = origin;
}

} // namespace clumsy::core
