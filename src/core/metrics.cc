#include "core/metrics.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace clumsy::core
{

double
anyErrorProb(const RunMetrics &m)
{
    // Computed over the packets successfully processed before any
    // fatal error, exactly as the paper's Section 4.1 prescribes; the
    // fatal-error probability is reported separately (fatalProb).
    if (m.packetsProcessed == 0)
        return m.fatal ? 1.0 : 0.0;
    return static_cast<double>(m.packetsWithError) /
           static_cast<double>(m.packetsProcessed);
}

double
fallibility(const RunMetrics &m)
{
    return 1.0 + anyErrorProb(m);
}

double
fatalProb(const RunMetrics &m)
{
    if (!m.fatal)
        return 0.0;
    if (m.packetsProcessed == 0)
        return 1.0;
    return 1.0 / static_cast<double>(m.packetsProcessed);
}

double
edfProduct(const RunMetrics &m, MetricWeights w)
{
    CLUMSY_ASSERT(m.packetsProcessed > 0 || m.fatal,
                  "metrics from an empty run");
    return std::pow(m.energyPerPacketPj, w.k) *
           std::pow(m.cyclesPerPacket, w.m) *
           std::pow(fallibility(m), w.n);
}

double
relativeEdf(const RunMetrics &m, const RunMetrics &baseline,
            MetricWeights w)
{
    const double base = edfProduct(baseline, w);
    CLUMSY_ASSERT(base > 0.0 && std::isfinite(base),
                  "degenerate baseline");
    return edfProduct(m, w) / base;
}

} // namespace clumsy::core
