#include "core/clock.hh"

#include "common/logging.hh"

namespace clumsy::core
{

FrequencyLevels::FrequencyLevels(std::vector<double> levels)
    : levels_(std::move(levels))
{
    CLUMSY_ASSERT(!levels_.empty(), "need at least one frequency level");
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        CLUMSY_ASSERT(levels_[i] > 0.0 && levels_[i] <= 1.0,
                      "Cr must be in (0, 1]");
        if (i > 0) {
            CLUMSY_ASSERT(levels_[i] < levels_[i - 1],
                          "levels must be strictly decreasing");
        }
    }
}

double
FrequencyLevels::cr(unsigned idx) const
{
    CLUMSY_ASSERT(idx < levels_.size(), "level index out of range");
    return levels_[idx];
}

unsigned
FrequencyLevels::indexOf(double cr) const
{
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        if (levels_[i] == cr)
            return static_cast<unsigned>(i);
    }
    fatal("Cr %.3f is not one of the configured frequency levels", cr);
}

} // namespace clumsy::core
