/**
 * @file
 * Golden-vs-faulty experiment harness (paper Sections 2 and 5.2).
 *
 * Error measurement works exactly as in the paper: each application
 * marks the values of its important data structures while processing
 * each packet (checksums, TTLs, table entries, tree paths, digests).
 * The harness first runs the application fault-free on a seeded trace
 * (the golden run), then replays the identical trace with fault
 * injection enabled and compares the marked values packet by packet.
 * A packet whose marked values differ has an application error; a run
 * that trips a loop budget or dereferences a wild pointer has a fatal
 * error and stops, with per-packet quantities computed over the
 * packets completed before the death.
 */

#ifndef CLUMSY_CORE_EXPERIMENT_HH
#define CLUMSY_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/processor.hh"
#include "ctrl/ctrl.hh"
#include "mem/recovery.hh"
#include "net/trace_gen.hh"

namespace clumsy::core
{

/** Which execution phases inject faults (paper Figures 6-7). */
enum class FaultPlane
{
    ControlOnly, ///< faults only during initialize()
    DataOnly,    ///< faults only during per-packet processing
    Both,
};

/** Human-readable plane name. */
std::string to_string(FaultPlane plane);

/**
 * Records the per-packet marked values of an application run.
 *
 * Full mode (the default) stores every frame so faulty trials can be
 * compared packet by packet. Digest mode stores nothing: frames fold
 * into a rolling 64-bit FNV-1a digest, so multi-million-packet
 * streaming runs (npu::runChipStream, bench/traffic_scale) keep peak
 * memory independent of packet count. Both modes maintain the digest
 * over identical bytes, so a Full recorder's digest() equals the
 * Digest recorder's for the same run.
 */
class ValueRecorder
{
  public:
    enum class Mode
    {
        Full,   ///< store frames (golden-vs-faulty comparison)
        Digest, ///< rolling digest only, O(1) memory
    };

    ValueRecorder() = default;
    explicit ValueRecorder(Mode mode) : mode_(mode) {}

    /** Start the frame for the next packet. */
    void beginPacket();

    /** Record one marked value under a stable key. */
    void record(const std::string &key, std::uint64_t value);

    /**
     * String-literal overload: workloads mark values with constant
     * keys on every packet, and in Digest mode the key bytes fold
     * straight into the rolling hash, so no std::string is
     * constructed per marked value. The digest is identical to the
     * std::string overload's for the same characters.
     */
    void record(const char *key, std::uint64_t value);

    /** Number of packet frames recorded. */
    std::size_t packetCount() const { return framesBegun_; }

    /** The mode this recorder runs in. */
    Mode mode() const { return mode_; }

    /** Rolling FNV-1a digest over frame marks, keys and values. */
    std::uint64_t digest() const { return digest_; }

    /**
     * Compare one packet frame against another recorder's same frame.
     * @return the keys whose value sequences differ (missing keys and
     * length mismatches count as differences).
     */
    std::vector<std::string> comparePacket(std::size_t idx,
                                           const ValueRecorder &other)
        const;

    /**
     * Compare my frame @p idx against @p other's frame @p otherIdx.
     * The multi-engine chip needs the general form: a packet's frame
     * index inside a PE-local recorder differs between runs when the
     * dispatcher interleaves packets differently.
     */
    std::vector<std::string> comparePacket(std::size_t idx,
                                           const ValueRecorder &other,
                                           std::size_t otherIdx) const;

  private:
    using Frame = std::vector<std::pair<std::string, std::uint64_t>>;
    std::vector<Frame> packets_;
    Mode mode_ = Mode::Full;
    std::size_t framesBegun_ = 0;
    std::uint64_t digest_ = 0xcbf29ce484222325ull; ///< FNV offset basis
};

/** Interface every NetBench-style workload implements. */
class PacketApp
{
  public:
    virtual ~PacketApp() = default;

    /** Short name ("route", "crc", ...). */
    virtual std::string name() const = 0;

    /** The trace shape this workload consumes. */
    virtual net::TraceConfig traceConfig() const
    {
        return net::TraceConfig{};
    }

    /**
     * Control-plane phase: build the long-lived structures in
     * simulated memory (routing tables, CRC table, ...).
     */
    virtual void initialize(ClumsyProcessor &proc) = 0;

    /**
     * Data-plane phase: process one packet, recording every marked
     * value. Implementations must bail out early when
     * proc.fatalOccurred() becomes true.
     */
    virtual void processPacket(ClumsyProcessor &proc,
                               const net::Packet &pkt,
                               ValueRecorder &rec) = 0;

    /**
     * Apply one control-plane event (src/ctrl/) between packets,
     * through the timed, faulty memory path. Workloads without an
     * updatable structure ignore the event. @return true when the
     * event was applied (counted in RunMetrics::ctrlEventsApplied).
     */
    virtual bool applyCtrlEvent(ClumsyProcessor &proc,
                                const ctrl::CtrlEvent &event)
    {
        (void)proc;
        (void)event;
        return false;
    }
};

/** Factory so the harness can run an app on fresh state repeatedly. */
using AppFactory = std::function<std::unique_ptr<PacketApp>()>;

/** One experiment's knobs. */
struct ExperimentConfig
{
    std::uint64_t numPackets = 1000;
    std::uint64_t traceSeed = 1;
    std::uint64_t faultSeed = 0x5eed;
    unsigned trials = 1; ///< faulty replays with seeds faultSeed+t

    double cr = 1.0;
    bool dynamicFrequency = false;
    mem::RecoveryScheme scheme = mem::RecoveryScheme::NoDetection;
    FaultPlane plane = FaultPlane::Both;

    /** Fault-rate multiplier (1 = the paper's rates). */
    double faultScale = 1.0;

    // Traffic-model overrides (sweep axes flows= / churn=; applied
    // over the app's own traceConfig() by resolveTraceConfig()):

    /**
     * Flow population override (0 = the app's default). Under churn
     * this is the *live* population; flows churn through it.
     */
    std::uint32_t traceFlows = 0;

    /**
     * Mean flow lifetime in packets; a nonzero value forces the churn
     * model on with this lifetime (0 = the app's own churn setting).
     */
    std::uint64_t churnLifetime = 0;

    /** Flow-popularity Zipf skew override (< 0 = the app's default). */
    double flowZipf = -1.0;

    /**
     * Control-plane churn stream (sweep axes ctrl= / updates=; CLI
     * --ctrl-rate / --ctrl-mix). rate 0 (the default) disables the
     * stream entirely, keeping runs bit-identical to builds that
     * predate the subsystem.
     */
    ctrl::CtrlConfig ctrl;

    /** Template for the processors built by the harness. */
    ProcessorConfig processor;
};

/** Aggregated outcome of one experiment (over all trials). */
struct ExperimentResult
{
    std::string app;
    RunMetrics golden;          ///< fault-free reference run
    RunMetrics faulty;          ///< last faulty trial (raw numbers)

    // Trial-averaged quantities:
    double anyErrorProb = 0.0;
    double fatalProb = 0.0; ///< mean per-packet fatal hazard
    double fatalFraction = 0.0; ///< fraction of trials that died
    double fallibility = 1.0;
    double cyclesPerPacket = 0.0;
    double energyPerPacketPj = 0.0;
    double l1dEnergyPerPacketPj = 0.0;
    double edf = 0.0; ///< energy*delay^2*fallibility^2, trial-avg
    std::map<std::string, double> errorProbByType;
};

/**
 * The fault-free reference run: its metrics plus the per-packet marked
 * values every faulty trial is compared against. Immutable once built,
 * so any number of trials may share one record concurrently.
 */
struct GoldenRecord
{
    RunMetrics metrics;
    ValueRecorder recorder;
};

/**
 * Derive the processor configuration for one run of an experiment:
 * recovery scheme, Cr and the decorrelated per-(operating point,
 * trial) fault seed. Exposed so the multi-PE chip model (src/npu/)
 * builds its engines from exactly the seeds the single-core harness
 * would use — PE 0 of a one-engine chip must replay clumsy_sim
 * bit-for-bit.
 */
ProcessorConfig makeRunProcessorConfig(const ExperimentConfig &config,
                                       bool golden, unsigned trial);

/**
 * The trace configuration a run actually generates from: the app's
 * traceConfig() with the experiment's seed and traffic-model
 * overrides (flows / churn lifetime / flow Zipf) applied. Both
 * harnesses (single-core and chip) build their traffic::PacketSource
 * from this, so golden, faulty, sim and npu runs of one experiment
 * replay the identical stream.
 */
net::TraceConfig resolveTraceConfig(const ExperimentConfig &config,
                                    const PacketApp &app);

/** Execute the golden (injection-disabled) run for one experiment. */
GoldenRecord runGolden(const AppFactory &factory,
                       const ExperimentConfig &config);

/**
 * Execute faulty trial number @p trial against a shared golden record.
 * Trials are independent given (config, trial): each derives its own
 * decorrelated fault seed, so they can run on any thread in any order.
 */
RunMetrics runFaultyTrial(const AppFactory &factory,
                          const ExperimentConfig &config, unsigned trial,
                          const GoldenRecord &golden);

/**
 * Reduce per-trial metrics into the experiment aggregates. @p trials
 * must be ordered by trial index: the reduction accumulates in that
 * fixed order, so the result is bit-identical no matter which threads
 * produced the entries or when they completed.
 */
ExperimentResult aggregateTrials(const std::string &app,
                                 const GoldenRecord &golden,
                                 const std::vector<RunMetrics> &trials);

/** Run golden + faulty trials for one application, serially. */
ExperimentResult runExperiment(const AppFactory &factory,
                               const ExperimentConfig &config);

} // namespace clumsy::core

#endif // CLUMSY_CORE_EXPERIMENT_HH
