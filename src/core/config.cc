#include "core/config.hh"

#include "common/logging.hh"

namespace clumsy::core
{

void
ProcessorConfig::validate() const
{
    if (memBytes % hierarchy.l2.lineBytes != 0)
        fatal("memBytes must be a multiple of the L2 line size");
    if (iRegionBytes == 0 || iRegionBytes >= memBytes)
        fatal("instruction region must be non-empty and inside DRAM");
    if (staticCr <= 0.0 || staticCr > 1.0)
        fatal("staticCr must be in (0, 1]");
    if (instsPerFetch == 0)
        fatal("instsPerFetch must be positive");
}

} // namespace clumsy::core
