/**
 * @file
 * Top-level configuration of a clumsy packet processor.
 *
 * Defaults reproduce the paper's simulated machine: a StrongARM-110-
 * like core with 4 KB direct-mapped L1 caches, a 128 KB 4-way unified
 * L2, the eq. (4) fault model at the Shivakumar base rate, and the
 * Montanaro/CACTI/Phelan energy models.
 */

#ifndef CLUMSY_CORE_CONFIG_HH
#define CLUMSY_CORE_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "core/freq_controller.hh"
#include "energy/chip_energy.hh"
#include "fault/fault_map.hh"
#include "fault/fault_model.hh"
#include "mem/hierarchy.hh"

namespace clumsy::core
{

/** Full processor configuration. */
struct ProcessorConfig
{
    mem::HierarchyConfig hierarchy;
    energy::EnergyParams energy;
    fault::FaultModelParams faultModel;
    FreqControllerConfig freqCtl;

    /**
     * Weak-cell fault map of the L1 D-cache (off by default: faults
     * stay uniform per eq. (4)). The map's seed is manufacturing
     * variation, so experiment trials vary faultSeed (when the cells
     * are exercised) but keep the map fixed.
     */
    fault::FaultMapSpec faultMap;

    /** Simulated DRAM size; must be a multiple of the L2 line size. */
    SimSize memBytes = 8u << 20;

    /**
     * Bytes at the top of DRAM reserved for instruction addresses
     * (the synthetic PC walker fetches from this region so I-lines
     * compete with data in the unified L2, as on the real machine).
     */
    SimSize iRegionBytes = 1u << 20;

    /** Seed of the fault injector's RNG. */
    std::uint64_t faultSeed = 0x5eed;

    /** Static relative cycle time of the D-cache. */
    double staticCr = 1.0;

    /** Use the dynamic frequency controller instead of staticCr. */
    bool dynamicFrequency = false;

    /** Master switch for fault injection (golden runs turn it off). */
    bool injectionEnabled = true;


    /**
     * Instructions fetched per I-cache access by the PC walker (the
     * in-order core fetches a line's worth of sequential instructions
     * per access; 32 B lines / 4 B instructions = 8).
     */
    std::uint32_t instsPerFetch = 8;

    /** Validate invariants; fatal()s on inconsistent settings. */
    void validate() const;
};

} // namespace clumsy::core

#endif // CLUMSY_CORE_CONFIG_HH
