/**
 * @file
 * Discrete cache frequency levels (paper Section 4).
 *
 * The D-cache clock can be raised by 50%, 100% or 300% over the
 * full-swing specification, i.e. relative cycle times Cr of 0.75, 0.5
 * and 0.25 in addition to the baseline 1.0. Levels are ordered from
 * slowest (index 0, Cr = 1) to fastest; the dynamic controller moves
 * one level at a time.
 */

#ifndef CLUMSY_CORE_CLOCK_HH
#define CLUMSY_CORE_CLOCK_HH

#include <vector>

namespace clumsy::core
{

/** The paper's relative cycle times, slowest first. */
inline const std::vector<double> kPaperCrLevels = {1.0, 0.75, 0.5, 0.25};

/** An ordered ladder of relative cycle times. */
class FrequencyLevels
{
  public:
    /** @param levels strictly decreasing Cr values in (0, 1]. */
    explicit FrequencyLevels(std::vector<double> levels = kPaperCrLevels);

    /** Relative cycle time of level idx. */
    double cr(unsigned idx) const;

    /** Number of levels. */
    unsigned count() const
    {
        return static_cast<unsigned>(levels_.size());
    }

    /** Index whose Cr equals cr (exact match); fatal()s otherwise. */
    unsigned indexOf(double cr) const;

  private:
    std::vector<double> levels_;
};

} // namespace clumsy::core

#endif // CLUMSY_CORE_CLOCK_HH
