/**
 * @file
 * ClumsyProcessor: the public facade applications program against.
 *
 * It bundles the simulated DRAM, the cache hierarchy with the
 * over-clocked L1 D-cache, the fault injector, the energy account and
 * the dynamic frequency controller, and exposes:
 *
 *  - a timed, *faulty* memory API (read8/16/32, write8/16/32) used for
 *    every application data access, so injected faults corrupt live
 *    application state;
 *  - instruction charging (execute()) driving a synthetic PC walker
 *    through the I-cache, so compute-heavy phases cost cycles and
 *    I-fetch energy;
 *  - DMA for packet arrival (writes DRAM directly and invalidates
 *    stale cached copies, like a NIC);
 *  - untimed peek/poke for harness bookkeeping (never used on the
 *    simulated datapath);
 *  - sticky fatal-error state: wild accesses from corrupted pointers
 *    and exhausted loop budgets raise it, and the experiment harness
 *    turns it into the paper's "fatal error" outcome.
 */

#ifndef CLUMSY_CORE_PROCESSOR_HH
#define CLUMSY_CORE_PROCESSOR_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "core/config.hh"
#include "core/freq_controller.hh"
#include "energy/chip_energy.hh"
#include "fault/injector.hh"
#include "mem/alloc.hh"
#include "mem/backing_store.hh"
#include "mem/hierarchy.hh"
#include "mem/l2_port.hh"

namespace clumsy::core
{

/** The clumsy packet processor. */
class ClumsyProcessor
{
  public:
    explicit ClumsyProcessor(ProcessorConfig config = {});

    // --- timed, faulty data-memory API ------------------------------
    // Every application data access funnels through these six calls,
    // so they are defined inline: the facade adds zero call overhead
    // on top of the hierarchy's (itself devirtualized) access path.

    /** Load a 32-bit word (4-aligned) through the D-cache. */
    std::uint32_t read32(SimAddr addr)
    {
        return finishRead(hierarchy_.read(addr, 4));
    }

    /** Load a 16-bit half (2-aligned). */
    std::uint16_t read16(SimAddr addr)
    {
        return static_cast<std::uint16_t>(
            finishRead(hierarchy_.read(addr, 2)));
    }

    /** Load a byte. */
    std::uint8_t read8(SimAddr addr)
    {
        return static_cast<std::uint8_t>(
            finishRead(hierarchy_.read(addr, 1)));
    }

    /** Store a 32-bit word (4-aligned). */
    void write32(SimAddr addr, std::uint32_t value)
    {
        finishWrite(hierarchy_.write(addr, 4, value));
    }

    /** Store a 16-bit half (2-aligned). */
    void write16(SimAddr addr, std::uint16_t value)
    {
        finishWrite(hierarchy_.write(addr, 2, value));
    }

    /** Store a byte. */
    void write8(SimAddr addr, std::uint8_t value)
    {
        finishWrite(hierarchy_.write(addr, 1, value));
    }

    // --- instruction charging ---------------------------------------

    /**
     * Charge n executed instructions (1 base cycle each) and advance
     * the PC walker through the current code region.
     */
    void execute(std::uint32_t n)
    {
        instructions_ += n;
        cycles_ += cyclesToQuanta(n); // in-order core, 1 IPC baseline
        fetchCredit_ += n;
        const SimSize lineBytes = config_.hierarchy.l1i.lineBytes;
        while (fetchCredit_ >= config_.instsPerFetch) {
            fetchCredit_ -= config_.instsPerFetch;
            chargeAccess(hierarchy_.fetch(iRegionBase_ + codeOffset_ +
                                          pcOffset_));
            pcOffset_ += lineBytes;
            if (pcOffset_ >= codeBytes_)
                pcOffset_ = 0;
        }
    }

    /**
     * Declare the executing code's footprint inside the instruction
     * region: fetches walk [offset, offset+bytes) cyclically. Apps
     * switch regions between control-plane and data-plane phases.
     */
    void setCodeRegion(SimSize offset, SimSize bytes);

    // --- allocation and DMA -----------------------------------------

    /** Allocate simulated heap memory (see mem::SimAllocator). */
    SimAddr alloc(SimSize size, SimSize align = 4);

    /**
     * DMA a block into simulated DRAM (packet arrival): bypasses the
     * timed datapath, writes the backing store and invalidates any
     * stale cached copies of the affected lines.
     */
    void dmaWrite(SimAddr addr, const std::uint8_t *src, SimSize len);

    // --- untimed architectural inspection ---------------------------

    /**
     * Read the current architectural value of a word: the L1 copy if
     * present, else L2, else DRAM. No timing, no faults, no stats.
     */
    std::uint32_t peek32(SimAddr addr) const;

    /** Untimed byte variant of peek32(). */
    std::uint8_t peek8(SimAddr addr) const;

    // --- fatal-error state ------------------------------------------

    /** @return true once a fatal error has been raised. */
    bool fatalOccurred() const { return fatal_; }

    /** Why the fatal error fired (empty when none). */
    const std::string &fatalReason() const { return fatalReason_; }

    /** Raise the sticky fatal flag (first reason wins). */
    void raiseFatal(const std::string &reason);

    /**
     * Loop budget helper: an application loop whose trip count
     * depends on in-simulated-memory data constructs a LoopGuard and
     * calls tick() each iteration; when the budget runs out, tick()
     * raises a fatal error ("infinite loop") and returns false.
     */
    class LoopGuard
    {
      public:
        LoopGuard(ClumsyProcessor &proc, std::uint32_t budget,
                  const char *what)
            : proc_(proc), remaining_(budget), what_(what)
        {
        }

        /** @return true while iterations remain and no fatal is set. */
        bool tick()
        {
            if (proc_.fatalOccurred())
                return false;
            if (remaining_ == 0) {
                proc_.raiseFatal(std::string("infinite loop in ") +
                                 what_);
                return false;
            }
            --remaining_;
            return true;
        }

      private:
        ClumsyProcessor &proc_;
        std::uint32_t remaining_;
        const char *what_;
    };

    // --- packet / epoch lifecycle -----------------------------------

    /** Mark the start of one packet's processing. */
    void beginPacket();

    /**
     * Mark the end of one packet's processing; every epochPackets
     * packets the dynamic frequency controller (when enabled) makes
     * its decision. When the controller's epoch cadence is external
     * (FreqControllerConfig::externalEpochs, the chip's per-PE DVS),
     * no epoch closes here — the chip calls closeDvsEpoch() instead.
     */
    void endPacket();

    /**
     * Chip-level epoch hook (src/npu/, dvs=queue): close one
     * controller epoch now, feeding the engine's mean input-queue
     * pressure (depth / capacity over the epoch) into the decision
     * alongside the epoch's observed faults. No-op when the dynamic
     * controller is disabled (e.g. the golden run).
     */
    void closeDvsEpoch(double queuePressure);

    /** Packets completed so far. */
    std::uint64_t packetsCompleted() const { return packets_; }

    // --- time, energy, metrics --------------------------------------

    /** Simulated time so far, in quanta. */
    Quanta now() const { return cycles_; }

    /** Simulated time so far, in base cycles. */
    double nowCycles() const { return quantaToCycles(cycles_); }

    /** Instructions executed so far. */
    std::uint64_t instructions() const { return instructions_; }

    /** Total chip energy so far (events + rest-of-chip), pJ. */
    PicoJoules totalEnergyPj() const;

    /** L1 D-cache energy so far, pJ. */
    PicoJoules l1dEnergyPj() const { return account_.l1dPj(); }

    /** Current relative cycle time of the D-cache. */
    double currentCr() const { return hierarchy_.cycleTime(); }

    /**
     * Faults the processor can observe: parity trips when detection
     * is on; with no detection, the injector's ground truth (an
     * oracle — documented in EXPERIMENTS.md).
     */
    std::uint64_t observedFaults() const;

    /** Master switch for fault injection (golden runs disable). */
    void setInjectionEnabled(bool enabled);

    // --- shared-L2 chip integration (src/npu/) ----------------------

    /**
     * Route this processor's L2 port uses through a shared arbiter
     * (not owned; pass nullptr to detach). Queuing delays returned by
     * the arbiter are folded into the cycle cost of the triggering
     * access. @p requesterId tags requests (the PE index on a chip)
     * and @p origin is subtracted from local time before it reaches
     * the arbiter, so engines whose one-time initialization took
     * different numbers of cycles still share one chip timeline.
     */
    void attachL2Port(mem::L2PortArbiter *port, unsigned requesterId,
                      Quanta origin);

    /**
     * Swap the storage behind this engine's L2 operations (the chip's
     * shared-L2 view; nullptr restores the private array). The chip
     * model migrates the private contents into the shared array
     * before swapping (npu::SharedL2Cache::migrateFrom), so no state
     * is stranded.
     */
    void setL2Backend(mem::L2Backend *backend)
    {
        hierarchy_.setL2Backend(backend);
    }

    /** The simulated DRAM (shared-L2 victim/refill routing). */
    mem::BackingStore &backingStore() { return store_; }
    const mem::BackingStore &backingStore() const { return store_; }

    /** The energy account (shared-L2 writeback energy charging). */
    energy::EnergyAccount &energyAccount() { return account_; }

    /** Quanta spent stalled on the shared L2 port so far. */
    Quanta l2PortWaitQuanta() const { return l2PortWaitQuanta_; }

    /** Accesses that found the shared L2 port busy. */
    std::uint64_t l2PortWaits() const { return l2PortWaits_; }

    /** The memory hierarchy (stats inspection). */
    const mem::MemHierarchy &hierarchy() const { return hierarchy_; }

    /** The fault injector (stats inspection). */
    const fault::FaultInjector &injector() const { return injector_; }

    /** The weak-cell map driving injection (nullptr = uniform mode). */
    const fault::FaultMap *faultMap() const { return faultMap_.get(); }

    /** The frequency controller, or nullptr when static. */
    const FreqController *freqController() const
    {
        return freqCtl_ ? freqCtl_.get() : nullptr;
    }

    /** The configuration in force. */
    const ProcessorConfig &config() const { return config_; }

    /** The energy model (per-event costs). */
    const energy::EnergyModel &energyModel() const { return model_; }

  private:
    ProcessorConfig config_;
    mem::BackingStore store_;
    mem::SimAllocator allocator_;
    fault::FaultInjector injector_;
    std::unique_ptr<fault::FaultMap> faultMap_;
    energy::EnergyModel model_;
    energy::EnergyAccount account_;
    mem::MemHierarchy hierarchy_;
    std::unique_ptr<FreqController> freqCtl_;

    Quanta cycles_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t epochStartFaults_ = 0;

    SimAddr iRegionBase_;
    SimSize codeOffset_ = 0;
    SimSize codeBytes_;
    SimSize pcOffset_ = 0;
    std::uint32_t fetchCredit_ = 0;

    bool fatal_ = false;
    std::string fatalReason_;

    mem::L2PortArbiter *l2Port_ = nullptr;
    unsigned l2PortId_ = 0;
    Quanta l2PortOrigin_ = 0;
    Quanta l2PortWaitQuanta_ = 0;
    std::uint64_t l2PortWaits_ = 0;

    /** Advance time by an access's latency plus any port queuing. */
    void chargeAccess(const mem::Access &acc)
    {
        cycles_ += acc.latency;
        if (!l2Port_ || acc.l2Accesses == 0)
            return;
        chargePortWait(acc);
    }

    /** Fold the shared-port queuing delay into local time (cold). */
    void chargePortWait(const mem::Access &acc);

    /** Close one controller epoch and apply its decision. */
    void closeEpoch(const EpochObservation &obs);

    /** Apply one timed read access result. */
    std::uint32_t finishRead(const mem::Access &acc)
    {
        chargeAccess(acc);
        return acc.value;
    }

    /** Apply one timed write access result. */
    void finishWrite(const mem::Access &acc) { chargeAccess(acc); }
};

} // namespace clumsy::core

#endif // CLUMSY_CORE_PROCESSOR_HH
