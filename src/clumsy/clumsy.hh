/**
 * @file
 * Umbrella header: the clumsy library's public API in one include.
 *
 *   #include "clumsy/clumsy.hh"
 *
 * pulls in the processor facade, the experiment harness, the workload
 * registry, the fault/energy models and the trace tooling. Individual
 * headers remain includable for finer-grained dependencies.
 */

#ifndef CLUMSY_CLUMSY_HH
#define CLUMSY_CLUMSY_HH

// Common: diagnostics, RNG, statistics, table rendering.
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

// Core: the processor facade, experiment harness and metrics.
#include "core/config.hh"
#include "core/experiment.hh"
#include "core/freq_controller.hh"
#include "core/metrics.hh"
#include "core/processor.hh"

// Workloads: the paper's seven applications plus extensions.
#include "apps/app.hh"

// Physics: voltage swing, noise, eq. (4), injection.
#include "fault/fault_model.hh"
#include "fault/injector.hh"
#include "fault/swing.hh"

// Energy: cacti-lite, the Montanaro chip budget, the DVS baseline.
#include "energy/cacti_lite.hh"
#include "energy/chip_energy.hh"
#include "energy/dvs.hh"

// Memory system: hierarchy, recovery schemes, codecs.
#include "mem/hierarchy.hh"
#include "mem/recovery.hh"
#include "mem/secded.hh"

// Networking substrate: packets, generators, persistence.
#include "net/packet.hh"
#include "net/trace_gen.hh"
#include "net/trace_io.hh"

#endif // CLUMSY_CLUMSY_HH
