#include "ctrl/rcu.hh"

namespace clumsy::ctrl
{

SimAddr
RcuDomain::takeFree(SimSize size)
{
    auto it = free_.find(size);
    if (it == free_.end() || it->second.empty())
        return 0;
    const SimAddr addr = it->second.back();
    it->second.pop_back();
    freeSet_.erase(addr);
    ++reused_;
    return addr;
}

void
RcuDomain::retire(SimAddr addr, SimSize size)
{
    retiredCurr_.push_back({addr, size});
    ++retired_;
}

void
RcuDomain::quiesce()
{
    // Blocks retired two epochs ago have now outlived every reader
    // that could have seen them: move them to the free lists.
    for (const Block &b : retiredPrev_) {
        free_[b.size].push_back(b.addr);
        freeSet_.insert(b.addr);
        ++reclaimed_;
    }
    retiredPrev_ = std::move(retiredCurr_);
    retiredCurr_.clear();
    ++epoch_;
}

} // namespace clumsy::ctrl
