#include "ctrl/ctrl.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace clumsy::ctrl
{

std::string
to_string(CtrlEventKind kind)
{
    switch (kind) {
    case CtrlEventKind::FibInsert:
        return "fib-insert";
    case CtrlEventKind::FibWithdraw:
        return "fib-withdraw";
    case CtrlEventKind::NatAdd:
        return "nat-add";
    case CtrlEventKind::NatRemove:
        return "nat-remove";
    case CtrlEventKind::SessionFlush:
        return "session-flush";
    }
    return "?";
}

std::string
to_string(CtrlMix mix)
{
    switch (mix) {
    case CtrlMix::Fib:
        return "fib";
    case CtrlMix::Nat:
        return "nat";
    case CtrlMix::Session:
        return "session";
    case CtrlMix::All:
        return "all";
    }
    return "?";
}

CtrlMix
mixFromString(const std::string &name)
{
    if (name == "fib")
        return CtrlMix::Fib;
    if (name == "nat")
        return CtrlMix::Nat;
    if (name == "session")
        return CtrlMix::Session;
    if (name == "all")
        return CtrlMix::All;
    fatal("unknown ctrl mix '%s' (valid choices: fib, nat, session, "
          "all)",
          name.c_str());
}

namespace
{

/**
 * The streaming generator: geometric inter-event gaps at `rate`
 * events per 1000 packets, kinds drawn from the mix, keys drawn with
 * the trace generator's own flow recipe from a decorrelated RNG.
 */
class ChurnCtrlSource final : public CtrlSource
{
  public:
    ChurnCtrlSource(const CtrlConfig &config,
                    const net::TraceConfig &trace)
        : config_(config), gen_(trace),
          rng_(trace.seed ^ kCtrlSeedSalt)
    {
        step();
    }

    const CtrlEvent *peek() override { return &event_; }

    void advance() override { step(); }

  private:
    void step()
    {
        // Exponential inter-event gap with mean 1000/rate packets,
        // floored at one packet so events stay strictly interleaved
        // with forwarding rather than bursting unboundedly.
        const double gap =
            rng_.exponential(static_cast<double>(config_.rate) / 1000.0);
        pos_ += 1 + static_cast<std::uint64_t>(gap);
        event_ = draw();
        event_.beforePacket = pos_;
        event_.seq = seq_++;
    }

    CtrlEvent draw()
    {
        CtrlEvent ev;
        ev.kind = drawKind();
        const net::FlowTuple flow = gen_.drawFlow(rng_);
        switch (ev.kind) {
        case CtrlEventKind::FibInsert:
        case CtrlEventKind::FibWithdraw: {
            // A prefix covering a pool destination, 8..24 bits: short
            // enough to alias many flows, long enough to need a deep
            // tree-bitmap walk.
            const auto len =
                static_cast<std::uint8_t>(8 + rng_.below(17));
            const std::uint32_t mask =
                len == 0 ? 0 : 0xffffffffu << (32 - len);
            ev.key = flow.dst & mask;
            ev.prefixLen = len;
            ev.value = ev.key ^ 0x01010101u; // nexthop, RouteTable-style
            break;
        }
        case CtrlEventKind::NatAdd:
        case CtrlEventKind::NatRemove:
            ev.key = flow.src; // a private 10/8 source
            break;
        case CtrlEventKind::SessionFlush:
            ev.key = static_cast<std::uint32_t>(rng_.next());
            ev.value = 64; // slots flushed per event
            break;
        }
        return ev;
    }

    CtrlEventKind drawKind()
    {
        switch (config_.mix) {
        case CtrlMix::Fib:
            // Inserts outnumber withdraws so the FIB grows, then
            // churns around a working size.
            return rng_.below(10) < 7 ? CtrlEventKind::FibInsert
                                      : CtrlEventKind::FibWithdraw;
        case CtrlMix::Nat:
            return rng_.below(2) == 0 ? CtrlEventKind::NatAdd
                                      : CtrlEventKind::NatRemove;
        case CtrlMix::Session:
            return CtrlEventKind::SessionFlush;
        case CtrlMix::All:
            break;
        }
        const std::uint64_t r = rng_.below(8);
        if (r < 3)
            return CtrlEventKind::FibInsert;
        if (r < 5)
            return CtrlEventKind::FibWithdraw;
        if (r == 5)
            return CtrlEventKind::NatAdd;
        if (r == 6)
            return CtrlEventKind::NatRemove;
        return CtrlEventKind::SessionFlush;
    }

    CtrlConfig config_;
    net::TraceGenerator gen_; ///< key recipe only; never stepped
    Rng rng_;
    CtrlEvent event_;
    std::uint64_t pos_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace

std::unique_ptr<CtrlSource>
makeCtrlSource(const CtrlConfig &config, const net::TraceConfig &trace)
{
    if (config.rate == 0)
        return nullptr;
    return std::make_unique<ChurnCtrlSource>(config, trace);
}

} // namespace clumsy::ctrl
