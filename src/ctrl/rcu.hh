/**
 * @file
 * RCU-style epoch/grace-period reclamation for simulated-memory
 * structures updated while the data plane is forwarding.
 *
 * The simulator's bump allocator (mem/alloc.hh) never frees, so a
 * structure that is rebuilt on every control-plane update would leak
 * simulated memory until the arena ran out. RcuDomain gives updaters
 * the classic read-copy-update lifecycle instead:
 *
 *   1. build   — new nodes are written in fresh (or *reclaimed*)
 *                simulated memory while readers still traverse the old
 *                version;
 *   2. publish — a single root-pointer store makes the new version
 *                visible; readers never observe a half-applied update;
 *   3. retire  — the replaced blocks enter the current epoch's retire
 *                list;
 *   4. reclaim — after a grace period (two quiescent points: every
 *                reader that could hold a reference to the old version
 *                has passed a packet boundary) the blocks move to
 *                size-keyed free lists and may be handed out again.
 *
 * The domain is pure host-side bookkeeping over simulated addresses:
 * it never touches the processor, so golden and faulty runs make
 * identical reclamation decisions and the chip stays byte-identical at
 * every --chip-jobs value. Reuse order is LIFO per size class, which
 * is deterministic given a deterministic update schedule.
 */

#ifndef CLUMSY_CTRL_RCU_HH
#define CLUMSY_CTRL_RCU_HH

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace clumsy::ctrl
{

/** Epoch-based reclamation domain for one updatable structure. */
class RcuDomain
{
  public:
    /**
     * Take a reclaimed block of exactly @p size bytes off the free
     * list, or return 0 when none is available (the caller then
     * bump-allocates fresh simulated memory).
     */
    SimAddr takeFree(SimSize size);

    /**
     * Retire a block that was just unlinked by a publish. It becomes
     * reusable only after two quiesce() calls — the grace period.
     */
    void retire(SimAddr addr, SimSize size);

    /**
     * A quiescent point: every reader that started before this call
     * has finished (the harnesses sit at a packet boundary). Advances
     * the epoch and reclaims blocks retired two epochs ago.
     */
    void quiesce();

    /**
     * @return true when @p addr currently sits on a free list — a
     * reader dereferencing such an address has violated the grace
     * period (the invariant the epoch tests assert never happens).
     */
    bool isReclaimed(SimAddr addr) const
    {
        return freeSet_.count(addr) != 0;
    }

    /** Blocks retired so far (lifetime counter). */
    std::uint64_t retired() const { return retired_; }

    /** Blocks that completed their grace period. */
    std::uint64_t reclaimed() const { return reclaimed_; }

    /** Reclaimed blocks handed back out by takeFree(). */
    std::uint64_t reused() const { return reused_; }

    /** Quiescent points passed. */
    std::uint64_t epoch() const { return epoch_; }

    /** Blocks currently waiting out their grace period. */
    std::size_t inGrace() const
    {
        return retiredCurr_.size() + retiredPrev_.size();
    }

  private:
    struct Block
    {
        SimAddr addr = 0;
        SimSize size = 0;
    };

    std::vector<Block> retiredCurr_; ///< retired this epoch
    std::vector<Block> retiredPrev_; ///< retired last epoch
    std::map<SimSize, std::vector<SimAddr>> free_;
    std::unordered_set<SimAddr> freeSet_;
    std::uint64_t epoch_ = 0;
    std::uint64_t retired_ = 0;
    std::uint64_t reclaimed_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace clumsy::ctrl

#endif // CLUMSY_CTRL_RCU_HH
