/**
 * @file
 * Deterministic control-plane event stream racing the data plane.
 *
 * Real packet processors forward traffic *while* the control plane
 * inserts and withdraws routes, changes NAT rules and flushes session
 * tables. This subsystem generates that churn as a seeded, repeatable
 * event stream interleaved with packet processing by both harnesses
 * (core::runOnce and the chip step loop): before packet i begins, all
 * events scheduled `beforePacket <= i` are applied to the app's
 * tables through the timed, faulty memory path — so the *update path*
 * itself is a fault surface, distinct from the paper's quiescent-table
 * model.
 *
 * Determinism discipline (same as traffic::ChurnSource):
 *  - The stream is seeded `traceSeed ^ kCtrlSeedSalt`, independent of
 *    the packet-body RNG, so enabling updates never perturbs packet
 *    contents: the rate-0 stream is bit-identical to a run without
 *    the subsystem.
 *  - Event keys are drawn with TraceGenerator::drawFlow()'s recipe,
 *    so updates target addresses the live traffic actually uses.
 *  - CtrlSource is a streaming contract parallel to
 *    traffic::PacketSource: O(1) memory, and every consumer (golden,
 *    each faulty trial, each chip engine) constructs its own source
 *    from the same config and replays the identical schedule.
 */

#ifndef CLUMSY_CTRL_CTRL_HH
#define CLUMSY_CTRL_CTRL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "net/trace_gen.hh"

namespace clumsy::ctrl
{

/** Seed salt decorrelating the ctrl stream from the packet stream. */
inline constexpr std::uint64_t kCtrlSeedSalt = 0xc7a1c0defee1deadull;

/** The control-plane operations the stream generates. */
enum class CtrlEventKind
{
    FibInsert,    ///< install prefix -> nexthop (lpm)
    FibWithdraw,  ///< remove a prefix (lpm)
    NatAdd,       ///< pre-install a NAT binding (nat)
    NatRemove,    ///< tombstone a NAT binding (nat)
    SessionFlush, ///< flush a window of session slots (session)
};

/** Human-readable event-kind name (logs/tests). */
std::string to_string(CtrlEventKind kind);

/** Which event kinds the stream generates (CLI --ctrl-mix). */
enum class CtrlMix
{
    Fib,     ///< FIB inserts/withdraws only
    Nat,     ///< NAT adds/removes only
    Session, ///< session flushes only
    All,     ///< everything (the default)
};

/** Human-readable mix name. */
std::string to_string(CtrlMix mix);

/** Parse a mix name; fatal()s listing the valid choices. */
CtrlMix mixFromString(const std::string &name);

/** One scheduled control-plane operation. */
struct CtrlEvent
{
    /** Apply before the packet with this sequence number begins. */
    std::uint64_t beforePacket = 0;

    CtrlEventKind kind = CtrlEventKind::FibInsert;

    /** Prefix / private IP, depending on kind. */
    std::uint32_t key = 0;

    /** FIB prefix length in bits (FibInsert/FibWithdraw). */
    std::uint8_t prefixLen = 0;

    /** Nexthop (FibInsert) or flush-window length (SessionFlush). */
    std::uint32_t value = 0;

    /** Event ordinal within the stream. */
    std::uint64_t seq = 0;
};

/** Control-plane stream knobs (sweep axes ctrl= / updates=). */
struct CtrlConfig
{
    /** Mean events per 1000 packets; 0 disables the stream. */
    std::uint32_t rate = 0;

    CtrlMix mix = CtrlMix::All;
};

/**
 * Streaming source of the control-plane schedule — the contract
 * parallel to traffic::PacketSource. peek() exposes the next pending
 * event; advance() consumes it. Events carry non-decreasing
 * beforePacket values, so a consumer drains with:
 *
 *   while (const CtrlEvent *ev = src.peek()) {
 *       if (ev->beforePacket > pkt.seq) break;
 *       app.applyCtrlEvent(proc, *ev);
 *       src.advance();
 *   }
 */
class CtrlSource
{
  public:
    virtual ~CtrlSource() = default;

    /** The next unconsumed event, or nullptr when exhausted. */
    virtual const CtrlEvent *peek() = 0;

    /** Consume the event peek() exposed. */
    virtual void advance() = 0;
};

/**
 * Build the stream for one run. @p trace must be the run's resolved
 * trace config (resolveTraceConfig): its seed feeds the decorrelated
 * ctrl RNG and its pool/flow recipe supplies the event keys. Returns
 * nullptr when config.rate == 0 — the caller skips the interleave
 * entirely, keeping rate-0 runs bit-identical to pre-subsystem runs.
 */
std::unique_ptr<CtrlSource> makeCtrlSource(const CtrlConfig &config,
                                           const net::TraceConfig &trace);

} // namespace clumsy::ctrl

#endif // CLUMSY_CTRL_CTRL_HH
