/**
 * @file
 * Coupling-noise statistics (paper Section 3, Figure 3 and equations
 * (2)-(3)).
 *
 * A victim line with n significantly coupled neighbors sees a noise
 * pulse whose amplitude depends on how the neighbors switch. Each
 * neighbor contributes +1 (switching up), -1 (switching down) or 0
 * (holding; two electrical states), giving 4^n = 2^(2n) combinations.
 * Enumerating them yields the case-count distribution of Figure 3,
 * which for large n saturates to the exponential density of eq. (2):
 *
 *     P(Ar) = 28.8 * exp(-28.8 * Ar),    0 < Ar < inf
 *
 * Noise duration is bounded by on-chip rise times, uniform per eq. (3):
 *
 *     P(Dr) = 10 for 0 < Dr < 0.1, else 0.
 */

#ifndef CLUMSY_FAULT_NOISE_HH
#define CLUMSY_FAULT_NOISE_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace clumsy::fault
{

/** Rate constant of the saturated amplitude density, eq. (2). */
inline constexpr double kAmplitudeRate = 28.8;

/** Upper bound of the relative noise duration, eq. (3). */
inline constexpr double kMaxDuration = 0.1;

/** Probability density of relative noise amplitude Ar (eq. 2). */
double amplitudePdf(double ar);

/** P(amplitude > ar) under eq. (2). */
double amplitudeTailProb(double ar);

/** Probability density of relative noise duration Dr (eq. 3). */
double durationPdf(double dr);

/** Draw a relative amplitude from eq. (2). */
double sampleAmplitude(Rng &rng);

/** Draw a relative duration from eq. (3). */
double sampleDuration(Rng &rng);

/**
 * Exact switching-combination counts for n coupled neighbors.
 *
 * Entry k (0 <= k <= n) of the result is the number of the 4^n
 * switching combinations whose net contribution magnitude is k, i.e.
 * whose relative amplitude is k/n. Computed by expanding the
 * generating function (x^-1 + 2 + x)^n with exact 64-bit coefficients
 * (valid through n = 16, where 4^16 < 2^64).
 */
std::vector<std::uint64_t> switchingCaseCounts(unsigned n);

/**
 * Least-squares fit of counts[k] ~ K1 * exp(-K2 * (k/n)) on the
 * non-zero entries (paper eq. (1)).
 */
struct ExponentialFit
{
    double k1; ///< scale constant K1
    double k2; ///< decay constant K2
    double r2; ///< coefficient of determination of the log-space fit
};

/** Fit eq. (1) to the exact case counts for n neighbors. */
ExponentialFit fitSwitchingDistribution(unsigned n);

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_NOISE_HH
