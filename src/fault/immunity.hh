/**
 * @file
 * SRAM noise-immunity curves (paper Figure 2(b)).
 *
 * For a 6-transistor SRAM cell operated at relative voltage swing Vsr,
 * a noise pulse of relative amplitude Ar and relative duration Dr
 * flips the cell when (Ar, Dr) lies above the cell's immunity curve.
 * The curve family is parameterized as
 *
 *     Acrit(Dr, Vsr) = margin(Vsr) * (1 + d0 / Dr)
 *
 * — long pulses asymptote to the static noise margin, short pulses need
 * proportionally larger amplitude. The paper derived its curves from
 * SPICE; we do not have the netlists, so margin(Vsr) is *calibrated*:
 * for each swing we solve for the margin whose integrated fault
 * probability (under the noise statistics of eqs. (2)-(3)) equals the
 * paper's closed-form eq. (4). The Monte-Carlo estimator in
 * fault_model.hh then cross-validates the whole pipeline.
 */

#ifndef CLUMSY_FAULT_IMMUNITY_HH
#define CLUMSY_FAULT_IMMUNITY_HH

namespace clumsy::fault
{

/** Duration knee of the immunity curve, in relative-cycle units. */
inline constexpr double kDurationKnee = 0.02;

/** Calibrated noise-immunity curve family for the modeled SRAM cell. */
class ImmunityCurves
{
  public:
    /**
     * Critical noise amplitude at relative duration dr for a cell
     * operating at relative swing vsr; pulses with Ar above this flip
     * the cell.
     */
    double criticalAmplitude(double dr, double vsr) const;

    /**
     * The static noise margin (the Dr -> inf asymptote of the curve)
     * at relative swing vsr, from the calibration described above.
     */
    double staticMargin(double vsr) const;

    /**
     * Closed-form integral of the fault probability over the noise
     * statistics for a given margin: the probability that a random
     * (Ar, Dr) pulse exceeds the immunity curve.
     */
    static double faultProbForMargin(double margin);

    /** Inverse of faultProbForMargin() (bisection). */
    static double marginForFaultProb(double prob);
};

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_IMMUNITY_HH
