/**
 * @file
 * The paper's fault-probability model (Section 3, Figures 4-5,
 * equation (4)) plus multi-bit fault rates (Section 5.1).
 *
 * Closed form (reconstructed from the paper; see DESIGN.md section 1,
 * substitution 2):
 *
 *     P_E(Cr) = P0 * exp((Fr^2 - 1) / 6.67),   Fr = 1 / Cr
 *
 * with P0 = 2.59e-7 per bit per access at full swing (Cr = 1),
 * matching the Shivakumar et al. rates the paper cites. Multi-bit
 * faults follow the paper's correlation: two-bit faults at P0 * 1e-2,
 * three-bit at P0 * 1e-3, each scaled by the same exponential factor.
 */

#ifndef CLUMSY_FAULT_FAULT_MODEL_HH
#define CLUMSY_FAULT_FAULT_MODEL_HH

#include <cstdint>

#include "common/random.hh"

namespace clumsy::fault
{

/** Parameters of the closed-form fault model. */
struct FaultModelParams
{
    /** Single-bit fault probability per bit per access at Cr = 1. */
    double baseSingleBit = 2.59e-7;

    /** Two-bit fault probability per word per access at Cr = 1. */
    double baseDoubleBit = 2.59e-9;

    /** Three-bit fault probability per word per access at Cr = 1. */
    double baseTripleBit = 2.59e-10;

    /** Exponent divisor of eq. (4). */
    double exponentDivisor = 6.67;

    /**
     * Global multiplier on all fault probabilities. 1.0 reproduces the
     * paper; experiments use larger values to accelerate fault
     * statistics (documented wherever used).
     */
    double scale = 1.0;
};

/** Closed-form fault model of eq. (4) with multi-bit extensions. */
class FaultModel
{
  public:
    explicit FaultModel(FaultModelParams params = {});

    /** eq. (4) scaling factor exp((Fr^2 - 1) / divisor), >= 1. */
    double scaleFactor(double cr) const;

    /** Single-bit fault probability per bit per access at cycle cr. */
    double bitFaultProb(double cr) const;

    /** k-bit (k in 1..3) fault probability per word access at cr. */
    double multiBitFaultProb(unsigned k, double cr) const;

    /**
     * Probability that a word access of `bits` bits suffers at least
     * one fault of any multiplicity at cycle time cr.
     */
    double accessFaultProb(unsigned bits, double cr) const;

    /** Fault probability as a function of relative swing (Figure 4). */
    double probAtSwing(double vsr) const;

    /** The model parameters in use. */
    const FaultModelParams &params() const { return params_; }

  private:
    FaultModelParams params_;
};

/**
 * Monte-Carlo estimate of the single-bit fault probability at relative
 * swing vsr, obtained by sampling noise pulses from eqs. (2)-(3) and
 * testing them against the calibrated immunity curves. Used to
 * cross-validate the closed form (Figures 4-5); scaled by `boost` to
 * keep the sample count tractable (the estimate is divided back).
 *
 * @param vsr      relative voltage swing in (0, 1].
 * @param samples  number of noise pulses to draw.
 * @param rng      generator to draw from.
 * @return the estimated fault probability per bit per access.
 */
double monteCarloFaultProb(double vsr, std::uint64_t samples, Rng &rng);

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_FAULT_MODEL_HH
