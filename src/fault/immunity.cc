#include "fault/immunity.hh"

#include <cmath>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "fault/fault_model.hh"
#include "fault/noise.hh"

namespace clumsy::fault
{

namespace
{

/**
 * (1/Dmax) * integral over (0, Dmax) of exp(-rate*m*(1 + d0/D)) dD,
 * by composite Simpson. The integrand vanishes super-exponentially as
 * D -> 0, so starting the grid at 0 (where we define it as 0) is exact
 * to machine precision.
 */
double
integrateFaultProb(double margin)
{
    constexpr unsigned kSteps = 4096; // even
    const double h = kMaxDuration / kSteps;
    auto f = [margin](double d) {
        if (d <= 0.0)
            return 0.0;
        return std::exp(-kAmplitudeRate * margin *
                        (1.0 + kDurationKnee / d));
    };
    double sum = f(0.0) + f(kMaxDuration);
    for (unsigned i = 1; i < kSteps; ++i)
        sum += f(h * i) * ((i & 1) ? 4.0 : 2.0);
    return (sum * h / 3.0) / kMaxDuration;
}

/**
 * Memoized calibrated margins, keyed by relative swing. Guarded by
 * marginCacheMutex(): processors on sweep worker threads calibrate
 * concurrently, and the calibration is deterministic per swing, so a
 * lost race costs a recomputation but never changes the value.
 */
std::map<double, double> &
marginCache()
{
    static std::map<double, double> cache;
    return cache;
}

std::mutex &
marginCacheMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

double
ImmunityCurves::faultProbForMargin(double margin)
{
    CLUMSY_ASSERT(margin >= 0.0, "negative noise margin");
    return integrateFaultProb(margin);
}

double
ImmunityCurves::marginForFaultProb(double prob)
{
    CLUMSY_ASSERT(prob > 0.0 && prob < 1.0,
                  "fault probability must be in (0, 1)");
    // faultProbForMargin is strictly decreasing in the margin; bisect.
    double lo = 0.0, hi = 4.0;
    CLUMSY_ASSERT(integrateFaultProb(hi) < prob,
                  "target fault probability %g unreachable", prob);
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (integrateFaultProb(mid) > prob)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
ImmunityCurves::staticMargin(double vsr) const
{
    CLUMSY_ASSERT(vsr > 0.0 && vsr <= 1.0, "swing must be in (0, 1]");
    {
        std::lock_guard<std::mutex> lock(marginCacheMutex());
        auto &cache = marginCache();
        auto it = cache.find(vsr);
        if (it != cache.end())
            return it->second;
    }
    // Calibration target: the closed-form model at this swing.
    // Computed outside the lock so one thread's bisection never
    // serializes the others.
    const FaultModel model;
    const double margin = marginForFaultProb(model.probAtSwing(vsr));
    std::lock_guard<std::mutex> lock(marginCacheMutex());
    marginCache().emplace(vsr, margin);
    return margin;
}

double
ImmunityCurves::criticalAmplitude(double dr, double vsr) const
{
    CLUMSY_ASSERT(dr > 0.0, "noise duration must be positive");
    return staticMargin(vsr) * (1.0 + kDurationKnee / dr);
}

} // namespace clumsy::fault
