#include "fault/fault_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "fault/immunity.hh"
#include "fault/noise.hh"
#include "fault/swing.hh"

namespace clumsy::fault
{

FaultModel::FaultModel(FaultModelParams params) : params_(params)
{
    CLUMSY_ASSERT(params_.baseSingleBit > 0 && params_.exponentDivisor > 0,
                  "bad fault model parameters");
}

double
FaultModel::scaleFactor(double cr) const
{
    CLUMSY_ASSERT(cr > 0.0, "relative cycle time must be positive");
    const double fr = 1.0 / cr;
    return std::exp((fr * fr - 1.0) / params_.exponentDivisor);
}

double
FaultModel::bitFaultProb(double cr) const
{
    const double p = params_.baseSingleBit * params_.scale * scaleFactor(cr);
    return p > 1.0 ? 1.0 : p;
}

double
FaultModel::multiBitFaultProb(unsigned k, double cr) const
{
    double base = 0.0;
    switch (k) {
      case 1:
        base = params_.baseSingleBit;
        break;
      case 2:
        base = params_.baseDoubleBit;
        break;
      case 3:
        base = params_.baseTripleBit;
        break;
      default:
        panic("multi-bit fault multiplicity %u unsupported", k);
    }
    const double p = base * params_.scale * scaleFactor(cr);
    return p > 1.0 ? 1.0 : p;
}

double
FaultModel::accessFaultProb(unsigned bits, double cr) const
{
    // Single-bit faults are per bit; multi-bit faults per word access.
    const double p1 = bitFaultProb(cr);
    const double noSingle = std::pow(1.0 - p1, bits);
    const double noDouble = 1.0 - multiBitFaultProb(2, cr);
    const double noTriple = 1.0 - multiBitFaultProb(3, cr);
    return 1.0 - noSingle * noDouble * noTriple;
}

double
FaultModel::probAtSwing(double vsr) const
{
    return bitFaultProb(cycleTimeForSwing(vsr));
}

double
monteCarloFaultProb(double vsr, std::uint64_t samples, Rng &rng)
{
    CLUMSY_ASSERT(samples > 0, "need at least one sample");
    const ImmunityCurves curves;
    // Rao-Blackwellized estimator: draw the duration (eq. 3), then use
    // the exact exponential tail of the amplitude (eq. 2) above the
    // immunity curve. A naive accept/reject estimator would need ~1e9
    // pulses to resolve probabilities near 2.6e-7; conditioning on the
    // amplitude dimension removes that variance while still sampling
    // the curve family itself.
    double acc = 0.0;
    for (std::uint64_t i = 0; i < samples; ++i) {
        const double dr = sampleDuration(rng);
        acc += amplitudeTailProb(curves.criticalAmplitude(dr, vsr));
    }
    return acc / static_cast<double>(samples);
}

} // namespace clumsy::fault
