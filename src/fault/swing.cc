#include "fault/swing.hh"

#include <cmath>

#include "common/logging.hh"

namespace clumsy::fault
{

namespace
{

// 1 - exp(-k): the normalization making Vsr(1) = 1.
const double kNorm = 1.0 - std::exp(-kSwingRcConstant);

} // namespace

double
relativeSwing(double cr)
{
    CLUMSY_ASSERT(cr > 0.0, "relative cycle time must be positive");
    if (cr >= 1.0)
        return 1.0;
    return (1.0 - std::exp(-kSwingRcConstant * cr)) / kNorm;
}

double
cycleTimeForSwing(double vsr)
{
    CLUMSY_ASSERT(vsr > 0.0 && vsr <= 1.0,
                  "relative swing must be in (0, 1]");
    if (vsr >= 1.0)
        return 1.0;
    return -std::log(1.0 - vsr * kNorm) / kSwingRcConstant;
}

double
energyScale(double cr)
{
    return relativeSwing(cr);
}

} // namespace clumsy::fault
