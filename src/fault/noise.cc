#include "fault/noise.hh"

#include <cmath>

#include "common/logging.hh"

namespace clumsy::fault
{

double
amplitudePdf(double ar)
{
    if (ar < 0.0)
        return 0.0;
    return kAmplitudeRate * std::exp(-kAmplitudeRate * ar);
}

double
amplitudeTailProb(double ar)
{
    if (ar <= 0.0)
        return 1.0;
    return std::exp(-kAmplitudeRate * ar);
}

double
durationPdf(double dr)
{
    return (dr > 0.0 && dr < kMaxDuration) ? 1.0 / kMaxDuration : 0.0;
}

double
sampleAmplitude(Rng &rng)
{
    return rng.exponential(kAmplitudeRate);
}

double
sampleDuration(Rng &rng)
{
    return rng.uniform(0.0, kMaxDuration);
}

std::vector<std::uint64_t>
switchingCaseCounts(unsigned n)
{
    CLUMSY_ASSERT(n >= 1 && n <= 16,
                  "switching enumeration supports 1..16 neighbors");
    // coeff[i] = number of combinations with net contribution i - n,
    // i in [0, 2n]. Start with the identity polynomial and multiply by
    // (x^-1 + 2 + x) once per neighbor, tracking the x^-n offset.
    std::vector<std::uint64_t> coeff(2 * n + 1, 0);
    coeff[n] = 1; // net contribution 0
    for (unsigned line = 0; line < n; ++line) {
        std::vector<std::uint64_t> next(coeff.size(), 0);
        for (std::size_t i = 0; i < coeff.size(); ++i) {
            if (!coeff[i])
                continue;
            if (i > 0)
                next[i - 1] += coeff[i];        // neighbor switches down
            next[i] += 2 * coeff[i];            // neighbor holds (2 ways)
            if (i + 1 < coeff.size())
                next[i + 1] += coeff[i];        // neighbor switches up
        }
        coeff.swap(next);
    }
    // Fold by magnitude |net| = k.
    std::vector<std::uint64_t> counts(n + 1, 0);
    for (std::size_t i = 0; i < coeff.size(); ++i) {
        const auto net = static_cast<long>(i) - static_cast<long>(n);
        counts[static_cast<std::size_t>(std::labs(net))] += coeff[i];
    }
    return counts;
}

ExponentialFit
fitSwitchingDistribution(unsigned n)
{
    const auto counts = switchingCaseCounts(n);
    // Linear regression of ln(count) on Ar = k/n.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    unsigned m = 0;
    for (unsigned k = 0; k <= n; ++k) {
        if (counts[k] == 0)
            continue;
        const double x = static_cast<double>(k) / n;
        const double y = std::log(static_cast<double>(counts[k]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
        ++m;
    }
    CLUMSY_ASSERT(m >= 2, "need at least two points to fit");
    const double denom = m * sxx - sx * sx;
    const double slope = (m * sxy - sx * sy) / denom;
    const double intercept = (sy - slope * sx) / m;

    // R^2 in log space.
    const double ybar = sy / m;
    double ssRes = 0, ssTot = 0;
    for (unsigned k = 0; k <= n; ++k) {
        if (counts[k] == 0)
            continue;
        const double x = static_cast<double>(k) / n;
        const double y = std::log(static_cast<double>(counts[k]));
        const double yhat = intercept + slope * x;
        ssRes += (y - yhat) * (y - yhat);
        ssTot += (y - ybar) * (y - ybar);
    }
    return ExponentialFit{
        std::exp(intercept),
        -slope,
        ssTot > 0 ? 1.0 - ssRes / ssTot : 1.0,
    };
}

} // namespace clumsy::fault
