/**
 * @file
 * Voltage-swing model: the relation between a cache's clock cycle time
 * and the voltage swing its circuit nodes achieve (paper Figure 1).
 *
 * When the cache is clocked faster than its full-voltage-swing spec,
 * there is not enough time to fully charge/discharge node capacitances,
 * so nodes only reach a fraction Vsr = Vs/Vfs of the full swing. We
 * model the node as a first-order RC charge:
 *
 *     Vsr(Cr) = (1 - exp(-k * Cr)) / (1 - exp(-k)),   k = 3
 *
 * normalized so Vsr(1) = 1. k = 3 is calibrated against the numbers
 * the paper publishes: cache energy (linear in swing) drops by 45%, 19%
 * and 6% at Cr = 0.25, 0.5 and 0.75 — this model gives 44.5%, 18.2%,
 * 5.9% — and Figure 1's ~0.6*Vfs label at 0.3*Cfs (model: 0.62).
 */

#ifndef CLUMSY_FAULT_SWING_HH
#define CLUMSY_FAULT_SWING_HH

namespace clumsy::fault
{

/** RC time-constant multiple defining "full swing" (Cfs = k * tau). */
inline constexpr double kSwingRcConstant = 3.0;

/**
 * Relative voltage swing reached at relative cycle time cr.
 *
 * @param cr relative cycle time C/Cfs, > 0; values >= 1 return 1.
 * @return Vsr in (0, 1].
 */
double relativeSwing(double cr);

/**
 * Inverse of relativeSwing(): the relative cycle time needed to reach a
 * given relative swing.
 *
 * @param vsr relative voltage swing in (0, 1].
 * @return Cr in (0, 1].
 */
double cycleTimeForSwing(double vsr);

/**
 * Relative cache access energy at relative cycle time cr.
 *
 * The paper scales cache energy linearly with voltage swing (Section
 * 5.4), so this is simply relativeSwing(cr).
 */
double energyScale(double cr);

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_SWING_HH
