/**
 * @file
 * Spatially correlated weak-cell fault maps for the L1 D-cache.
 *
 * The paper's eq. (4) model redraws faults i.i.d. on every access;
 * measured undervolted SRAMs instead expose a fixed population of weak
 * cells — clustered by row, varying in strength across ways and across
 * arrays (MoRS; see PAPERS.md). A FaultMap captures that population:
 * each WeakCell names one bit of one cached frame (set, way, bit
 * within the line) together with an activation threshold `vth` (the
 * relative cycle time below which the cell starts failing) and a
 * per-access failure probability `pFail` at the threshold. As the
 * cycle time drops further below `vth`, the cell's effective rate
 * grows by the same exponential factor as eq. (4) — the map sharpens
 * with voltage, matching the measured behaviour.
 *
 * Maps are either generated from a seeded spatial model
 * (FaultMap::generate) or imported from a versioned text format
 * (parseText / loadFile) so externally measured maps drop in. The
 * canonical text form round-trips byte-identically through
 * export -> import -> export.
 *
 * The map decides *which* cells can fail; the FaultInjector's timing
 * model decides *when* they are exercised (fault/injector.hh).
 */

#ifndef CLUMSY_FAULT_FAULT_MAP_HH
#define CLUMSY_FAULT_FAULT_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace clumsy::fault
{

/** Array shape a map is defined over (mirrors the L1D geometry). */
struct FaultMapGeometry
{
    std::uint32_t sets = 128;
    std::uint32_t ways = 1;
    std::uint32_t lineBytes = 32;

    std::uint32_t wordsPerLine() const { return lineBytes / 4; }

    /** Word-granular slots: one per (set, way, word-in-line). */
    std::uint32_t slots() const
    {
        return sets * ways * wordsPerLine();
    }

    /** Addressable bits in the mapped array. */
    std::uint64_t bits() const
    {
        return std::uint64_t{sets} * ways * lineBytes * 8;
    }

    bool operator==(const FaultMapGeometry &o) const
    {
        return sets == o.sets && ways == o.ways &&
               lineBytes == o.lineBytes;
    }
};

/** One weak cell: a single bit of one frame plus its strength. */
struct WeakCell
{
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    std::uint32_t bit = 0; ///< bit index within the line (0..8*lineBytes)

    /**
     * Activation threshold: the cell is inert while cr > vth and
     * fails with probability >= pFail once cr <= vth.
     */
    double vth = 0.5;

    /** Per-access failure probability at cr == vth. */
    double pFail = 0.01;

    /** Word slot within the line this cell lives in. */
    std::uint32_t wordIndex() const { return bit / 32; }

    /** Bit position within its 32-bit word. */
    std::uint32_t bitInWord() const { return bit % 32; }
};

/** Parameters of the seeded spatial generation model. */
struct FaultMapParams
{
    /** Poisson mean of weak-row clusters per array. */
    double clustersPerArray = 6.0;

    /** Poisson mean of weak cells per cluster (before way scaling). */
    double cellsPerCluster = 24.0;

    /** Gaussian row spread of a cluster around its anchor row. */
    double clusterRowSigma = 1.2;

    /** Poisson mean of isolated (background) weak cells per array. */
    double backgroundPerArray = 8.0;

    /**
     * Lognormal sigma of per-way strength variation: each way's
     * expected cell count is scaled by exp(g * waySigma) with g a
     * standard gaussian clamped to [-2, 2], so the spread stays
     * within exp(+/- 2 * waySigma).
     */
    double waySigma = 0.5;

    /** Mean / sigma of the gaussian activation threshold vth. */
    double vthMean = 0.55;
    double vthSigma = 0.15;

    /** Log-uniform range of per-cell failure probability at vth. */
    double pFailMin = 1e-3;
    double pFailMax = 0.2;
};

/** How a processor's fault plane is sourced. */
enum class FaultMapMode
{
    Off,       ///< uniform eq. (4) injection only (the default)
    Generated, ///< seeded spatial model (FaultMap::generate)
    File,      ///< imported from the versioned text format
};

/** Apps-facing selection of a fault map (rides in ProcessorConfig). */
struct FaultMapSpec
{
    FaultMapMode mode = FaultMapMode::Off;

    /** Map file for FaultMapMode::File. */
    std::string path;

    /** Generation seed (Generated mode). Held fixed across trials:
     *  the map is manufactured silicon, not a per-run draw. */
    std::uint64_t seed = 0xfa17;

    /**
     * Per-PE salt: engine `pe` of a chip generates from
     * seed + peSalt * golden-ratio so each PE's array carries its own
     * weak-cell population (per-array variation) while the chip-level
     * seed still names the whole chip's silicon.
     */
    std::uint32_t peSalt = 0;

    FaultMapParams params;

    bool enabled() const { return mode != FaultMapMode::Off; }

    /** The generation seed after salting. */
    std::uint64_t effectiveSeed() const
    {
        return seed + std::uint64_t{peSalt} * 0x9e3779b97f4a7c15ull;
    }
};

/** Short name used by the sweep axis / CLI ("off", "spatial", path). */
std::string to_string(FaultMapMode mode);

/**
 * Parse a `faultmap=` axis / `--fault-map` flag value: "off",
 * "spatial" (seeded generation), or anything else as a map-file path.
 */
FaultMapSpec faultMapSpecFromString(const std::string &value);

/** A concrete weak-cell population over one array. */
class FaultMap
{
  public:
    FaultMap() = default;

    /**
     * Build from parts. Cells must be in-range for the geometry and
     * strictly sorted by (set, way, bit) with no duplicates —
     * CLUMSY_ASSERTed; external input goes through parseText, which
     * reports violations as errors instead.
     */
    FaultMap(FaultMapGeometry geom, std::uint64_t seed,
             std::vector<WeakCell> cells);

    /** Generate a map from the seeded spatial model. */
    static FaultMap generate(const FaultMapGeometry &geom,
                             const FaultMapParams &params,
                             std::uint64_t seed);

    const FaultMapGeometry &geometry() const { return geom_; }
    std::uint64_t seed() const { return seed_; }

    /** All weak cells, sorted by (set, way, bit). */
    const std::vector<WeakCell> &cells() const { return cells_; }

    /** Canonical versioned text form (ends with "end\n"). */
    std::string toText() const;

    /**
     * Parse the canonical text form. @return "" on success, else a
     * human-readable error (out is untouched on failure).
     */
    static std::string parseText(const std::string &text, FaultMap &out);

    /** Write toText() to a file. @return "" on success, else error. */
    std::string saveFile(const std::string &path) const;

    /** Read + parse a file. @return "" on success, else error. */
    static std::string loadFile(const std::string &path, FaultMap &out);

    // ----- analysis helpers (inspect tool + statistical tests) -----

    /** Weak cells per set (row), size geometry().sets. */
    std::vector<std::uint32_t> perRowCounts() const;

    /** Weak cells per way, size geometry().ways. */
    std::vector<std::uint32_t> perWayCounts() const;

    /**
     * Index of dispersion (variance / mean) of the per-row counts.
     * ~1 for a spatially uniform population, > 1 when cells cluster
     * by row. @return 0 when the map is empty.
     */
    double dispersionIndex() const;

    /** Cells active (vth >= cr) at relative cycle time cr. */
    std::size_t activeCellCount(double cr) const;

  private:
    FaultMapGeometry geom_;
    std::uint64_t seed_ = 0;
    std::vector<WeakCell> cells_;
};

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_FAULT_MAP_HH
