#include "fault/injector.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace clumsy::fault
{

FaultInjector::FaultInjector(FaultModel model, std::uint64_t seed)
    : model_(model), rng_(seed)
{
    setCycleTime(1.0);
}

void
FaultInjector::setCycleTime(double cr)
{
    CLUMSY_ASSERT(cr > 0.0, "relative cycle time must be positive");
    cr_ = cr;
    p1PerBit_ = model_.bitFaultProb(cr);
    p2Word_ = model_.multiBitFaultProb(2, cr);
    p3Word_ = model_.multiBitFaultProb(3, cr);
}

std::uint32_t
FaultInjector::corrupt(std::uint32_t value, unsigned bits, FaultEvent *ev)
{
    CLUMSY_ASSERT(bits >= 1 && bits <= 32, "access width %u bits", bits);
    ++accesses_;
    if (ev)
        *ev = FaultEvent{};
    if (!enabled_)
        return value;

    // One uniform draw decides among {clean, 1-bit, 2-bit, 3-bit}.
    // Fault probabilities are ~1e-7..1e-5, so treating the events as
    // mutually exclusive biases results by < 1e-10 per access.
    const double p1 = p1PerBit_ * bits;
    const double p2 = p2Word_;
    const double p3 = p3Word_;
    const double u = rng_.uniform();
    if (u >= p1 + p2 + p3)
        return value;

    unsigned nflips;
    if (u < p1) {
        nflips = 1;
        stats_.inc("single");
    } else if (u < p1 + p2) {
        nflips = 2;
        stats_.inc("double");
    } else {
        nflips = 3;
        stats_.inc("triple");
    }
    ++faults_;

    // Multi-bit faults hit adjacent bits (coupling noise).
    const auto pos = static_cast<unsigned>(rng_.below(bits));
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < nflips; ++i)
        mask |= std::uint32_t{1} << ((pos + i) % bits);

    if (ev) {
        ev->flippedBits = nflips;
        ev->mask = mask;
    }
    return value ^ mask;
}

void
FaultInjector::resetStats()
{
    stats_.reset();
    faults_ = 0;
    accesses_ = 0;
}

} // namespace clumsy::fault
