#include "fault/injector.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace clumsy::fault
{

FaultInjector::FaultInjector(FaultModel model, std::uint64_t seed)
    : model_(model), rng_(seed)
{
    setCycleTime(1.0);
}

void
FaultInjector::setCycleTime(double cr)
{
    CLUMSY_ASSERT(cr > 0.0, "relative cycle time must be positive");
    cr_ = cr;
    p1PerBit_ = model_.bitFaultProb(cr);
    p2Word_ = model_.multiBitFaultProb(2, cr);
    p3Word_ = model_.multiBitFaultProb(3, cr);
    if (map_)
        retuneMapPlane();
}

void
FaultInjector::attachMap(const FaultMap *map)
{
    map_ = map;
    slotBegin_.clear();
    cellBit_.clear();
    cellPEff_.clear();
    if (!map_)
        return;
    const FaultMapGeometry &geom = map_->geometry();
    const auto &cells = map_->cells();
    // Cells are sorted by (set, way, bit), so their slots are
    // nondecreasing and the CSR builds in one pass.
    slotBegin_.assign(std::size_t{geom.slots()} + 1, 0);
    cellBit_.reserve(cells.size());
    for (const WeakCell &c : cells) {
        const std::uint32_t slot =
            (c.set * geom.ways + c.way) * geom.wordsPerLine() +
            c.wordIndex();
        ++slotBegin_[std::size_t{slot} + 1];
        cellBit_.push_back(static_cast<std::uint8_t>(c.bitInWord()));
    }
    for (std::size_t s = 1; s < slotBegin_.size(); ++s)
        slotBegin_[s] += slotBegin_[s - 1];
    retuneMapPlane();
}

void
FaultInjector::retuneMapPlane()
{
    const auto &cells = map_->cells();
    cellPEff_.resize(cells.size());
    const double scale = model_.params().scale;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const WeakCell &c = cells[i];
        if (cr_ > c.vth) {
            cellPEff_[i] = 0.0; // inert above its activation threshold
            continue;
        }
        // Below threshold the cell's rate grows by the same eq. (4)
        // exponential as the uniform model, relative to its strength
        // at activation — the map sharpens as the voltage drops.
        const double sharpen =
            model_.scaleFactor(cr_) / model_.scaleFactor(c.vth);
        cellPEff_[i] = std::min(1.0, c.pFail * sharpen * scale);
    }
}

std::uint32_t
FaultInjector::corrupt(std::uint32_t value, unsigned bits, FaultEvent *ev)
{
    CLUMSY_ASSERT(bits >= 1 && bits <= 32, "access width %u bits", bits);
    ++accesses_;
    if (ev)
        *ev = FaultEvent{};
    if (!enabled_)
        return value;

    // One uniform draw decides among {clean, 1-bit, 2-bit, 3-bit}.
    // Fault probabilities are ~1e-7..1e-5, so treating the events as
    // mutually exclusive biases results by < 1e-10 per access.
    const double p1 = p1PerBit_ * bits;
    const double p2 = p2Word_;
    const double p3 = p3Word_;
    const double u = rng_.uniform();
    if (u >= p1 + p2 + p3)
        return value;

    unsigned nflips;
    if (u < p1) {
        nflips = 1;
        stats_.inc("single");
    } else if (u < p1 + p2) {
        nflips = 2;
        stats_.inc("double");
    } else {
        nflips = 3;
        stats_.inc("triple");
    }
    ++faults_;

    // Multi-bit faults hit adjacent bits (coupling noise).
    const auto pos = static_cast<unsigned>(rng_.below(bits));
    std::uint32_t mask = 0;
    for (unsigned i = 0; i < nflips; ++i)
        mask |= std::uint32_t{1} << ((pos + i) % bits);

    if (ev) {
        ev->flippedBits = nflips;
        ev->mask = mask;
    }
    return value ^ mask;
}

std::uint32_t
FaultInjector::corruptMapped(std::uint32_t value, unsigned bits,
                             std::uint32_t slot, FaultEvent *ev)
{
    CLUMSY_ASSERT(bits >= 1 && bits <= 32, "access width %u bits", bits);
    CLUMSY_ASSERT(map_ != nullptr, "no fault map attached");
    CLUMSY_ASSERT(std::size_t{slot} + 1 < slotBegin_.size(),
                  "slot %u outside the mapped array", slot);
    ++accesses_;
    if (ev)
        *ev = FaultEvent{};
    if (!enabled_)
        return value;

    // Each active weak cell of this word fails independently. Inert
    // cells (and empty slots) take no draw, so the RNG consumption is
    // deterministic per (map, cycle time) and independent of the
    // surrounding traffic mix.
    std::uint32_t mask = 0;
    unsigned nflips = 0;
    for (std::uint32_t i = slotBegin_[slot]; i < slotBegin_[slot + 1];
         ++i) {
        const double p = cellPEff_[i];
        if (p <= 0.0)
            continue;
        if (rng_.uniform() >= p)
            continue;
        if (cellBit_[i] >= bits)
            continue; // weak bit outside a narrow access: not sensed
        mask |= std::uint32_t{1} << cellBit_[i];
        ++nflips;
    }
    if (nflips == 0)
        return value;

    stats_.inc(nflips == 1 ? "single"
                           : (nflips == 2 ? "double" : "triple"));
    stats_.inc("mapped");
    ++faults_;
    if (ev) {
        ev->flippedBits = nflips;
        ev->mask = mask;
    }
    return value ^ mask;
}

void
FaultInjector::resetStats()
{
    stats_.reset();
    faults_ = 0;
    accesses_ = 0;
}

} // namespace clumsy::fault
