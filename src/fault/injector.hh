/**
 * @file
 * Per-access fault injector for the over-clocked L1 data cache.
 *
 * Every word read from or written to the faulty cache passes through
 * corrupt(): with the probabilities of the closed-form model at the
 * cache's current relative cycle time, 1, 2 or 3 bits of the word are
 * flipped. Two- and three-bit faults flip physically adjacent bits,
 * matching the coupling-noise mechanism of Section 3 — this is what
 * lets a single parity bit per word (odd-weight detection) miss
 * exactly the 2-bit faults.
 */

#ifndef CLUMSY_FAULT_INJECTOR_HH
#define CLUMSY_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "fault/fault_map.hh"
#include "fault/fault_model.hh"

namespace clumsy::fault
{

/** Description of what an injection did to one access. */
struct FaultEvent
{
    unsigned flippedBits = 0; ///< 0 when the access was clean
    std::uint32_t mask = 0;   ///< XOR mask applied to the word
};

/** Samples bit-flip faults for cache accesses at a given cycle time. */
class FaultInjector
{
  public:
    /**
     * @param model fault-probability model (copied).
     * @param seed  RNG seed; distinct from trace-generation seeds so
     *              golden and faulty runs share packet streams.
     */
    FaultInjector(FaultModel model, std::uint64_t seed);

    /**
     * Set the cache's relative cycle time and precompute the per-access
     * fault probabilities used by corrupt().
     */
    void setCycleTime(double cr);

    /** Current relative cycle time. */
    double cycleTime() const { return cr_; }

    /** Enable/disable injection (golden runs disable it). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** @return true when injection is active. */
    bool enabled() const { return enabled_; }

    /**
     * Possibly corrupt a `bits`-wide value (bits in 1..32).
     *
     * @param value the clean word.
     * @param bits  access width in bits.
     * @param ev    optional out-parameter describing the injection.
     * @return the (possibly corrupted) word.
     */
    std::uint32_t corrupt(std::uint32_t value, unsigned bits,
                          FaultEvent *ev = nullptr);

    /**
     * Attach a weak-cell map (not owned; nullptr detaches): injection
     * switches from the uniform eq. (4) draw to the map mode, where
     * only mapped cells can fail. The map decides *which* bits are
     * weak; the cycle time still decides *when* they are exercised —
     * each active cell of the accessed word fails independently with
     * its Cr-scaled effective probability (corruptMapped()).
     */
    void attachMap(const FaultMap *map);

    /** @return true when a weak-cell map drives injection. */
    bool mapAttached() const { return map_ != nullptr; }

    /** The attached map (nullptr in uniform mode). */
    const FaultMap *map() const { return map_; }

    /**
     * Map-mode variant of corrupt() for the word slot `slot` (as
     * defined by FaultMapGeometry: (set * ways + way) * wordsPerLine
     * + wordIndex). Draws one uniform per *active* mapped cell of the
     * slot — a slot with no active cells consumes no randomness, so
     * the draw sequence is a pure function of the weak cells
     * exercised, never of map-free traffic.
     */
    std::uint32_t corruptMapped(std::uint32_t value, unsigned bits,
                                std::uint32_t slot,
                                FaultEvent *ev = nullptr);

    /** Total accesses that suffered at least one flipped bit. */
    std::uint64_t faultCount() const { return faults_; }

    /** Total accesses processed (clean or not). */
    std::uint64_t accessCount() const { return accesses_; }

    /** Detailed counters (fault.single, fault.double, fault.triple). */
    const StatGroup &stats() const { return stats_; }

    /** Zero all counters. */
    void resetStats();

    /** The model in use. */
    const FaultModel &model() const { return model_; }

  private:
    FaultModel model_;
    Rng rng_;
    StatGroup stats_{"fault"};
    double cr_ = 1.0;
    bool enabled_ = true;
    std::uint64_t faults_ = 0;
    std::uint64_t accesses_ = 0;

    // Cumulative thresholds for a single uniform draw, precomputed per
    // cycle time for a 32-bit access and rescaled for narrower ones.
    double p1PerBit_ = 0.0;
    double p2Word_ = 0.0;
    double p3Word_ = 0.0;

    // Map mode: CSR plane over word slots, rebuilt on attach and on
    // every cycle-time change. slotBegin_[s]..slotBegin_[s+1] indexes
    // the slot's cells; cellPEff_ holds each cell's effective
    // per-access probability at the current cycle time (0 = inert).
    const FaultMap *map_ = nullptr;
    std::vector<std::uint32_t> slotBegin_;
    std::vector<std::uint8_t> cellBit_; ///< bit position within word
    std::vector<double> cellPEff_;

    /** Recompute cellPEff_ for the current cycle time. */
    void retuneMapPlane();
};

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_INJECTOR_HH
