/**
 * @file
 * Per-access fault injector for the over-clocked L1 data cache.
 *
 * Every word read from or written to the faulty cache passes through
 * corrupt(): with the probabilities of the closed-form model at the
 * cache's current relative cycle time, 1, 2 or 3 bits of the word are
 * flipped. Two- and three-bit faults flip physically adjacent bits,
 * matching the coupling-noise mechanism of Section 3 — this is what
 * lets a single parity bit per word (odd-weight detection) miss
 * exactly the 2-bit faults.
 */

#ifndef CLUMSY_FAULT_INJECTOR_HH
#define CLUMSY_FAULT_INJECTOR_HH

#include <cstdint>

#include "common/random.hh"
#include "common/stats.hh"
#include "fault/fault_model.hh"

namespace clumsy::fault
{

/** Description of what an injection did to one access. */
struct FaultEvent
{
    unsigned flippedBits = 0; ///< 0 when the access was clean
    std::uint32_t mask = 0;   ///< XOR mask applied to the word
};

/** Samples bit-flip faults for cache accesses at a given cycle time. */
class FaultInjector
{
  public:
    /**
     * @param model fault-probability model (copied).
     * @param seed  RNG seed; distinct from trace-generation seeds so
     *              golden and faulty runs share packet streams.
     */
    FaultInjector(FaultModel model, std::uint64_t seed);

    /**
     * Set the cache's relative cycle time and precompute the per-access
     * fault probabilities used by corrupt().
     */
    void setCycleTime(double cr);

    /** Current relative cycle time. */
    double cycleTime() const { return cr_; }

    /** Enable/disable injection (golden runs disable it). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** @return true when injection is active. */
    bool enabled() const { return enabled_; }

    /**
     * Possibly corrupt a `bits`-wide value (bits in 1..32).
     *
     * @param value the clean word.
     * @param bits  access width in bits.
     * @param ev    optional out-parameter describing the injection.
     * @return the (possibly corrupted) word.
     */
    std::uint32_t corrupt(std::uint32_t value, unsigned bits,
                          FaultEvent *ev = nullptr);

    /** Total accesses that suffered at least one flipped bit. */
    std::uint64_t faultCount() const { return faults_; }

    /** Total accesses processed (clean or not). */
    std::uint64_t accessCount() const { return accesses_; }

    /** Detailed counters (fault.single, fault.double, fault.triple). */
    const StatGroup &stats() const { return stats_; }

    /** Zero all counters. */
    void resetStats();

    /** The model in use. */
    const FaultModel &model() const { return model_; }

  private:
    FaultModel model_;
    Rng rng_;
    StatGroup stats_{"fault"};
    double cr_ = 1.0;
    bool enabled_ = true;
    std::uint64_t faults_ = 0;
    std::uint64_t accesses_ = 0;

    // Cumulative thresholds for a single uniform draw, precomputed per
    // cycle time for a 32-bit access and rescaled for narrower ones.
    double p1PerBit_ = 0.0;
    double p2Word_ = 0.0;
    double p3Word_ = 0.0;
};

} // namespace clumsy::fault

#endif // CLUMSY_FAULT_INJECTOR_HH
