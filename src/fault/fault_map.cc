#include "fault/fault_map.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"

namespace clumsy::fault
{

namespace
{

/** Standard gaussian via Box-Muller (one draw per call, two uniforms). */
double
gauss(Rng &rng)
{
    const double u1 = 1.0 - rng.uniform(); // (0, 1]: log stays finite
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

/** Poisson sample (Knuth); means here are small enough for exp(-m). */
std::uint32_t
poisson(Rng &rng, double mean)
{
    if (mean <= 0.0)
        return 0;
    const double limit = std::exp(-mean);
    std::uint32_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > limit);
    return k - 1;
}

/** Shortest round-trip decimal form of a double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    CLUMSY_ASSERT(res.ec == std::errc{}, "double format overflow");
    return std::string(buf, res.ptr);
}

bool
cellKeyLess(const WeakCell &a, const WeakCell &b)
{
    if (a.set != b.set)
        return a.set < b.set;
    if (a.way != b.way)
        return a.way < b.way;
    return a.bit < b.bit;
}

bool
cellKeyEqual(const WeakCell &a, const WeakCell &b)
{
    return a.set == b.set && a.way == b.way && a.bit == b.bit;
}

} // namespace

std::string
to_string(FaultMapMode mode)
{
    switch (mode) {
      case FaultMapMode::Off:
        return "off";
      case FaultMapMode::Generated:
        return "spatial";
      case FaultMapMode::File:
        return "file";
    }
    panic("unknown FaultMapMode");
}

FaultMapSpec
faultMapSpecFromString(const std::string &value)
{
    FaultMapSpec spec;
    if (value.empty() || value == "off") {
        spec.mode = FaultMapMode::Off;
    } else if (value == "spatial") {
        spec.mode = FaultMapMode::Generated;
    } else {
        spec.mode = FaultMapMode::File;
        spec.path = value;
    }
    return spec;
}

FaultMap::FaultMap(FaultMapGeometry geom, std::uint64_t seed,
                   std::vector<WeakCell> cells)
    : geom_(geom), seed_(seed), cells_(std::move(cells))
{
    CLUMSY_ASSERT(geom_.sets > 0 && geom_.ways > 0 &&
                      geom_.lineBytes > 0 && geom_.lineBytes % 4 == 0,
                  "bad fault-map geometry");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const WeakCell &c = cells_[i];
        CLUMSY_ASSERT(c.set < geom_.sets && c.way < geom_.ways &&
                          c.bit < geom_.lineBytes * 8,
                      "weak cell outside the mapped array");
        CLUMSY_ASSERT(c.vth > 0.0 && c.vth <= 1.0 && c.pFail > 0.0 &&
                          c.pFail <= 1.0,
                      "weak cell strength outside (0, 1]");
        CLUMSY_ASSERT(i == 0 || cellKeyLess(cells_[i - 1], c),
                      "weak cells must be strictly sorted");
    }
}

FaultMap
FaultMap::generate(const FaultMapGeometry &geom,
                   const FaultMapParams &params, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint32_t lineBits = geom.lineBytes * 8;

    // Per-way strength factors: lognormal, clamped to +/- 2 sigma so
    // one way can be chronically weak without dominating the array.
    std::vector<double> wayFactor(geom.ways);
    double factorSum = 0.0;
    for (double &f : wayFactor) {
        const double g = std::clamp(gauss(rng), -2.0, 2.0);
        f = std::exp(g * params.waySigma);
        factorSum += f;
    }

    auto pickWay = [&]() -> std::uint32_t {
        // Weight way choice by strength factor (weak ways collect
        // more cells).
        const double u = rng.uniform() * factorSum;
        double acc = 0.0;
        for (std::uint32_t w = 0; w < geom.ways; ++w) {
            acc += wayFactor[w];
            if (u < acc)
                return w;
        }
        return geom.ways - 1;
    };

    auto drawStrength = [&](WeakCell &c) {
        c.vth = std::clamp(
            params.vthMean + gauss(rng) * params.vthSigma, 0.05, 1.0);
        const double lo = std::log(params.pFailMin);
        const double hi = std::log(params.pFailMax);
        c.pFail = std::exp(rng.uniform(lo, hi));
    };

    std::vector<WeakCell> cells;

    // Clustered weak rows: each cluster anchors at a random row of one
    // way and sprays cells over gaussian-nearby rows.
    const std::uint32_t nClusters = poisson(rng, params.clustersPerArray);
    for (std::uint32_t c = 0; c < nClusters; ++c) {
        const std::uint32_t anchor =
            static_cast<std::uint32_t>(rng.below(geom.sets));
        const std::uint32_t way = pickWay();
        const std::uint32_t n =
            poisson(rng, params.cellsPerCluster * wayFactor[way]);
        for (std::uint32_t i = 0; i < n; ++i) {
            WeakCell cell;
            const double off = gauss(rng) * params.clusterRowSigma;
            const std::int64_t row =
                static_cast<std::int64_t>(anchor) +
                static_cast<std::int64_t>(std::llround(off));
            // Wrap rather than clamp: edge rows stay no more likely
            // than interior ones.
            cell.set = static_cast<std::uint32_t>(
                ((row % geom.sets) + geom.sets) % geom.sets);
            cell.way = way;
            cell.bit = static_cast<std::uint32_t>(rng.below(lineBits));
            drawStrength(cell);
            cells.push_back(cell);
        }
    }

    // Isolated background weak cells, uniform over the array.
    const std::uint32_t nBg = poisson(rng, params.backgroundPerArray);
    for (std::uint32_t i = 0; i < nBg; ++i) {
        WeakCell cell;
        cell.set = static_cast<std::uint32_t>(rng.below(geom.sets));
        cell.way = pickWay();
        cell.bit = static_cast<std::uint32_t>(rng.below(lineBits));
        drawStrength(cell);
        cells.push_back(cell);
    }

    std::stable_sort(cells.begin(), cells.end(), cellKeyLess);
    cells.erase(std::unique(cells.begin(), cells.end(), cellKeyEqual),
                cells.end());
    return FaultMap(geom, seed, std::move(cells));
}

std::string
FaultMap::toText() const
{
    std::string out;
    out.reserve(64 + cells_.size() * 40);
    out += "clumsy-faultmap v1\n";
    out += "geometry sets=" + std::to_string(geom_.sets) +
           " ways=" + std::to_string(geom_.ways) +
           " line-bytes=" + std::to_string(geom_.lineBytes) + "\n";
    out += "seed " + std::to_string(seed_) + "\n";
    out += "cells " + std::to_string(cells_.size()) + "\n";
    for (const WeakCell &c : cells_) {
        out += "cell " + std::to_string(c.set) + " " +
               std::to_string(c.way) + " " + std::to_string(c.bit) +
               " " + fmtDouble(c.vth) + " " + fmtDouble(c.pFail) + "\n";
    }
    out += "end\n";
    return out;
}

std::string
FaultMap::parseText(const std::string &text, FaultMap &out)
{
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;

    auto nextLine = [&]() -> bool {
        if (!std::getline(in, line))
            return false;
        ++lineNo;
        return true;
    };
    auto err = [&](const std::string &what) {
        return "fault map line " + std::to_string(lineNo) + ": " + what;
    };

    if (!nextLine() || line != "clumsy-faultmap v1")
        return "fault map line 1: missing 'clumsy-faultmap v1' header";

    FaultMapGeometry geom;
    if (!nextLine())
        return "fault map: truncated before geometry line";
    {
        unsigned long sets = 0, ways = 0, lineBytes = 0;
        std::istringstream ls(line);
        std::string tag, f1, f2, f3;
        ls >> tag >> f1 >> f2 >> f3;
        if (tag != "geometry" ||
            f1.rfind("sets=", 0) != 0 || f2.rfind("ways=", 0) != 0 ||
            f3.rfind("line-bytes=", 0) != 0)
            return err("expected 'geometry sets=N ways=N line-bytes=N'");
        try {
            sets = std::stoul(f1.substr(5));
            ways = std::stoul(f2.substr(5));
            lineBytes = std::stoul(f3.substr(11));
        } catch (const std::exception &) {
            return err("unparseable geometry value");
        }
        if (sets == 0 || ways == 0 || lineBytes == 0 || lineBytes % 4)
            return err("geometry values must be positive, line-bytes "
                       "a multiple of 4");
        geom.sets = static_cast<std::uint32_t>(sets);
        geom.ways = static_cast<std::uint32_t>(ways);
        geom.lineBytes = static_cast<std::uint32_t>(lineBytes);
    }

    std::uint64_t seed = 0;
    if (!nextLine())
        return "fault map: truncated before seed line";
    {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag >> seed;
        if (tag != "seed" || ls.fail())
            return err("expected 'seed N'");
    }

    std::size_t count = 0;
    if (!nextLine())
        return "fault map: truncated before cells line";
    {
        std::istringstream ls(line);
        std::string tag;
        ls >> tag >> count;
        if (tag != "cells" || ls.fail())
            return err("expected 'cells N'");
    }

    std::vector<WeakCell> cells;
    cells.reserve(count);
    const std::uint32_t lineBits = geom.lineBytes * 8;
    for (std::size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return "fault map: truncated cell list (expected " +
                   std::to_string(count) + " cells)";
        std::istringstream ls(line);
        std::string tag;
        WeakCell c;
        ls >> tag >> c.set >> c.way >> c.bit >> c.vth >> c.pFail;
        if (tag != "cell" || ls.fail())
            return err("expected 'cell set way bit vth pfail'");
        std::string trailing;
        if (ls >> trailing)
            return err("trailing junk after cell fields");
        if (c.set >= geom.sets || c.way >= geom.ways ||
            c.bit >= lineBits)
            return err("cell outside the declared geometry");
        if (!(c.vth > 0.0) || c.vth > 1.0 || !(c.pFail > 0.0) ||
            c.pFail > 1.0)
            return err("cell vth/pfail must be in (0, 1]");
        if (!cells.empty() && !cellKeyLess(cells.back(), c))
            return err("cells must be strictly sorted by "
                       "(set, way, bit)");
        cells.push_back(c);
    }

    if (!nextLine() || line != "end")
        return err("expected 'end' after the cell list");
    while (nextLine()) {
        if (!line.empty())
            return err("trailing junk after 'end'");
    }

    out = FaultMap(geom, seed, std::move(cells));
    return "";
}

std::string
FaultMap::saveFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return "cannot open " + path + " for writing";
    const std::string text = toText();
    f.write(text.data(), static_cast<std::streamsize>(text.size()));
    f.flush();
    if (!f)
        return "write to " + path + " failed";
    return "";
}

std::string
FaultMap::loadFile(const std::string &path, FaultMap &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return "cannot open fault map " + path;
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseText(buf.str(), out);
}

std::vector<std::uint32_t>
FaultMap::perRowCounts() const
{
    std::vector<std::uint32_t> counts(geom_.sets, 0);
    for (const WeakCell &c : cells_)
        ++counts[c.set];
    return counts;
}

std::vector<std::uint32_t>
FaultMap::perWayCounts() const
{
    std::vector<std::uint32_t> counts(geom_.ways, 0);
    for (const WeakCell &c : cells_)
        ++counts[c.way];
    return counts;
}

double
FaultMap::dispersionIndex() const
{
    if (cells_.empty() || geom_.sets == 0)
        return 0.0;
    const std::vector<std::uint32_t> counts = perRowCounts();
    const double mean =
        static_cast<double>(cells_.size()) / geom_.sets;
    double var = 0.0;
    for (const std::uint32_t c : counts) {
        const double d = c - mean;
        var += d * d;
    }
    var /= geom_.sets;
    return var / mean;
}

std::size_t
FaultMap::activeCellCount(double cr) const
{
    std::size_t n = 0;
    for (const WeakCell &c : cells_)
        if (c.vth >= cr)
            ++n;
    return n;
}

} // namespace clumsy::fault
