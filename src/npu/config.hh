/**
 * @file
 * Configuration of the multi-engine network-processor chip model.
 *
 * The paper evaluates one clumsy processor; real packet processors
 * (IXP-class NPUs) replicate the engine N times behind a shared
 * second-level cache. NpuConfig describes that chip: how many
 * processing engines, how arriving packets are spread across them, how
 * deep the per-engine input queues are and what happens when they
 * fill, and the width of the shared L2 port every engine's misses
 * funnel through.
 */

#ifndef CLUMSY_NPU_CONFIG_HH
#define CLUMSY_NPU_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/hierarchy.hh"

namespace clumsy::npu
{

/** How the dispatcher assigns arriving packets to engines. */
enum class DispatchPolicy
{
    /** Next alive engine in cyclic order. */
    RoundRobin,
    /**
     * Hash of the packet's 5-tuple: every packet of a flow lands on
     * the same engine, so flow state (NAT bindings, DRR deficits)
     * stays engine-local without sharing.
     */
    FlowHash,
    /** Alive engine with the fewest queued packets (ties: lowest id). */
    ShortestQueue,
};

/** Human-readable policy name ("rr", "flow", "shortest"). */
std::string to_string(DispatchPolicy policy);

/** Parse a policy name; fatal()s on an unknown one. */
DispatchPolicy dispatchFromString(const std::string &name);

/** How the chip drives each engine's frequency controller. */
enum class DvsMode
{
    /**
     * Engines are frozen at their launch Cr for the whole run, even
     * when the experiment asked for dynamic frequency (the ablation
     * baseline the adaptive modes are measured against).
     */
    Static,
    /**
     * The paper's per-engine fault-feedback controller, exactly as
     * the single-core harness runs it: each engine closes its own
     * epochs on its own packet count, adapting on fault feedback
     * alone iff the experiment's operating point is dynamic. The
     * default — a one-engine chip stays bit-identical to clumsy_sim.
     */
    Fault,
    /**
     * Per-PE DVS: every engine runs a queue-biased controller and
     * the chip closes epochs for all engines together (chip-level
     * epochs, every epochPackets completed packets), feeding each
     * decision the engine's own mean input-queue pressure. Busy
     * engines clock up toward the fault wall; idle engines back off.
     */
    Queue,
};

/** Human-readable mode name ("static", "fault", "queue"). */
std::string to_string(DvsMode mode);

/** Parse a dvs mode name; fatal()s on an unknown one. */
DvsMode dvsFromString(const std::string &name);

/** What the engines' L2 operations resolve against. */
enum class L2Mode
{
    /**
     * Each engine owns a private L2 array; only the port (timing) is
     * shared. The original chip model, and the default.
     */
    Private,
    /**
     * One L2 array shared by every engine (npu::SharedL2Cache):
     * engine A's refill can hit for engine B, engines evict each
     * other's lines, and concurrent misses on the same shared line
     * merge at the port's MSHRs. Values are provably unchanged from
     * private mode; only hit/miss patterns and port timing move.
     */
    Shared,
};

/** Human-readable mode name ("private", "shared"). */
std::string to_string(L2Mode mode);

/** Parse an L2 mode name; fatal()s on an unknown one. */
L2Mode l2ModeFromString(const std::string &name);

/** Static configuration of one chip. */
struct NpuConfig
{
    /** Number of processing engines. */
    unsigned peCount = 1;

    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;

    /** Per-engine input queue capacity, packets. */
    unsigned queueCapacity = 16;

    /**
     * Queue-full behaviour: true drops the arriving packet (counted);
     * false (default) backpressures — the arrival stalls and engines
     * keep draining until the chosen queue has room.
     */
    bool dropWhenFull = false;

    /**
     * Inter-arrival gap of the offered load, in base cycles per
     * packet (packet s arrives at chip time s*gap). 0 = saturated
     * input: every packet is available immediately.
     */
    std::int64_t arrivalGapCycles = 0;

    /**
     * Chip ingress FIFO capacity, packets. Arrivals that are due
     * while the FIFO's head is backpressured pile up in the FIFO;
     * once it is full, further due arrivals are dropped at the chip
     * edge (ChipMetrics::ingressDrops). 0 (the default) = unbounded
     * ingress, the historical stall-the-wire behaviour, byte-identical
     * to the pre-ingress model. The line card sets this per chip.
     */
    unsigned ingressCapacity = 0;

    /**
     * Per-engine relative cycle time overrides (a heterogeneous chip:
     * some engines clocked clumsier than others). Empty = uniform,
     * every engine runs the experiment's Cr. When non-empty the size
     * must equal peCount.
     */
    std::vector<double> perPeCr;

    /**
     * Shared-L2 port service times, in base cycles per port use. Must
     * not exceed the corresponding embedded L2 latencies
     * (HierarchyConfig::l2HitCycles, +memCycles for misses): the port
     * transfer overlaps the access's own L2 time, so a lone engine
     * never queues and a one-engine chip reproduces the single-core
     * model exactly.
     */
    std::int64_t portHitCycles = 4;
    std::int64_t portMissCycles = 16;

    /**
     * Miss-status holding registers on the shared L2 port: up to this
     * many transfers may be in flight at once before the port
     * serializes. 1 reproduces the fully-serialized FIFO exactly.
     */
    unsigned mshrs = 1;

    /** Per-engine frequency adaptation mode. */
    DvsMode dvs = DvsMode::Fault;

    /** L2 contents model: private per engine, or genuinely shared. */
    L2Mode l2 = L2Mode::Private;

    /**
     * FlowHash only: when a flow's pinned engine dies, rehash the flow
     * onto the first alive engine probed from its hash instead of
     * dropping its packets. Off by default — pinned flows dropping
     * with their engine is the original model's semantics.
     */
    bool flowRehash = false;

    /**
     * Worker threads one chip experiment may use for horizon-stepped
     * parallelism: engine bring-up to the first-arrival horizon,
     * shared-store diffing, and fan-out of independent faulty trials.
     * Results are byte-identical for every value — parallel sections
     * write per-index slots and every cross-engine interaction is
     * applied at a barrier in engine order (DESIGN.md). 1 = fully
     * serial (the default); 0 = this machine's hardware default.
     */
    unsigned chipJobs = 1;

    /**
     * Dispatch batching of the chip step loop. Arrivals whose
     * timestamps precede the earliest queued engine's data time are
     * all dispatched before any engine steps — that is forced by the
     * schedule, not a choice — and the batched loop places up to this
     * many of them back-to-back with O(1) incremental depth/alive
     * bookkeeping per placement instead of an O(P) rebuild each.
     * 0 (the default) = unbounded bursts; 1 = the legacy
     * one-dispatch-per-pass reference loop, kept as the
     * self-byte-compare arm for bench/sim_perf and the batching
     * equivalence tests. Modeled results are identical for every
     * value: the dispatcher sees the same (packet, depths, alive)
     * sequence in the same order.
     */
    unsigned dispatchBurst = 0;

    /** Modeled core clock (SA-110 class), for packets/sec figures. */
    double clockMhz = 233.0;

    /** Sanity-check against the hierarchy the engines will use. */
    void validate(const mem::HierarchyConfig &hier) const;
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_CONFIG_HH
