/**
 * @file
 * Configuration of the multi-engine network-processor chip model.
 *
 * The paper evaluates one clumsy processor; real packet processors
 * (IXP-class NPUs) replicate the engine N times behind a shared
 * second-level cache. NpuConfig describes that chip: how many
 * processing engines, how arriving packets are spread across them, how
 * deep the per-engine input queues are and what happens when they
 * fill, and the width of the shared L2 port every engine's misses
 * funnel through.
 */

#ifndef CLUMSY_NPU_CONFIG_HH
#define CLUMSY_NPU_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/hierarchy.hh"

namespace clumsy::npu
{

/** How the dispatcher assigns arriving packets to engines. */
enum class DispatchPolicy
{
    /** Next alive engine in cyclic order. */
    RoundRobin,
    /**
     * Hash of the packet's 5-tuple: every packet of a flow lands on
     * the same engine, so flow state (NAT bindings, DRR deficits)
     * stays engine-local without sharing.
     */
    FlowHash,
    /** Alive engine with the fewest queued packets (ties: lowest id). */
    ShortestQueue,
};

/** Human-readable policy name ("rr", "flow", "shortest"). */
std::string to_string(DispatchPolicy policy);

/** Parse a policy name; fatal()s on an unknown one. */
DispatchPolicy dispatchFromString(const std::string &name);

/** Static configuration of one chip. */
struct NpuConfig
{
    /** Number of processing engines. */
    unsigned peCount = 1;

    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;

    /** Per-engine input queue capacity, packets. */
    unsigned queueCapacity = 16;

    /**
     * Queue-full behaviour: true drops the arriving packet (counted);
     * false (default) backpressures — the arrival stalls and engines
     * keep draining until the chosen queue has room.
     */
    bool dropWhenFull = false;

    /**
     * Inter-arrival gap of the offered load, in base cycles per
     * packet (packet s arrives at chip time s*gap). 0 = saturated
     * input: every packet is available immediately.
     */
    std::int64_t arrivalGapCycles = 0;

    /**
     * Per-engine relative cycle time overrides (a heterogeneous chip:
     * some engines clocked clumsier than others). Empty = uniform,
     * every engine runs the experiment's Cr. When non-empty the size
     * must equal peCount.
     */
    std::vector<double> perPeCr;

    /**
     * Shared-L2 port service times, in base cycles per port use. Must
     * not exceed the corresponding embedded L2 latencies
     * (HierarchyConfig::l2HitCycles, +memCycles for misses): the port
     * transfer overlaps the access's own L2 time, so a lone engine
     * never queues and a one-engine chip reproduces the single-core
     * model exactly.
     */
    std::int64_t portHitCycles = 4;
    std::int64_t portMissCycles = 16;

    /** Modeled core clock (SA-110 class), for packets/sec figures. */
    double clockMhz = 233.0;

    /** Sanity-check against the hierarchy the engines will use. */
    void validate(const mem::HierarchyConfig &hier) const;
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_CONFIG_HH
