#include "npu/dispatcher.hh"

#include "common/logging.hh"

namespace clumsy::npu
{

std::uint32_t
flowHash(const net::Packet &pkt)
{
    std::uint32_t h = 2166136261u;
    auto mix = [&h](std::uint32_t v, unsigned bytes) {
        for (unsigned i = 0; i < bytes; ++i) {
            h ^= (v >> (i * 8)) & 0xffu;
            h *= 16777619u;
        }
    };
    mix(pkt.ip.src, 4);
    mix(pkt.ip.dst, 4);
    mix(pkt.srcPort, 2);
    mix(pkt.dstPort, 2);
    mix(pkt.ip.protocol, 1);
    return h;
}

int
Dispatcher::choose(const net::Packet &pkt,
                   const std::vector<unsigned> &depths,
                   const std::vector<char> &alive)
{
    CLUMSY_ASSERT(depths.size() == peCount_ && alive.size() == peCount_,
                  "dispatcher state size mismatch");
    switch (policy_) {
      case DispatchPolicy::RoundRobin:
        for (unsigned i = 0; i < peCount_; ++i) {
            const unsigned pe = (rrNext_ + i) % peCount_;
            if (alive[pe]) {
                rrNext_ = (pe + 1) % peCount_;
                return static_cast<int>(pe);
            }
        }
        return -1;

      case DispatchPolicy::FlowHash: {
        // Pinned placement: packets of a flow must all land on the
        // one engine holding the flow's state, dead or not. With
        // rehash enabled, a dead pinned engine sends the flow to the
        // first alive engine probed from its hash — the same probe for
        // every packet of the flow, so the flow stays whole.
        const std::uint32_t h = flowHash(pkt);
        if (!flowRehash_) {
            const unsigned pe = h % peCount_;
            return alive[pe] ? static_cast<int>(pe) : -1;
        }
        for (unsigned i = 0; i < peCount_; ++i) {
            const unsigned pe = (h + i) % peCount_;
            if (alive[pe])
                return static_cast<int>(pe);
        }
        return -1;
      }

      case DispatchPolicy::ShortestQueue: {
        int best = -1;
        for (unsigned pe = 0; pe < peCount_; ++pe) {
            if (!alive[pe])
                continue;
            if (best < 0 ||
                depths[pe] < depths[static_cast<unsigned>(best)])
                best = static_cast<int>(pe);
        }
        return best;
      }
    }
    panic("unreachable dispatch policy");
}

} // namespace clumsy::npu
