/**
 * @file
 * The chip's shared L2 port: a fixed-width port with FIFO arbitration
 * and a small pool of miss-status holding registers. Every engine's
 * L1 misses, refills and bypass reads occupy one MSHR for a fixed
 * service time (longer when the line also came from DRAM). Up to K
 * transfers are in flight at once; an access that finds every MSHR
 * busy with earlier transfers queues behind the one that frees first,
 * and the queuing delay is folded into the access's cycle cost by
 * ClumsyProcessor::chargeAccess(). With K = 1 the port is the
 * fully-serialized FIFO of the original model, bit for bit.
 */

#ifndef CLUMSY_NPU_SHARED_L2_HH
#define CLUMSY_NPU_SHARED_L2_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/l2_port.hh"

namespace clumsy::npu
{

/** FIFO arbitration over a fixed-width, K-MSHR L2 port. */
class SharedL2Port : public mem::L2PortArbiter
{
  public:
    /**
     * @param hitService  port occupancy of an L2 hit transfer, quanta.
     * @param missService occupancy when the line also transferred
     *                    from DRAM.
     * @param mshrs       transfers that may overlap before the port
     *                    serializes (>= 1).
     */
    SharedL2Port(Quanta hitService, Quanta missService,
                 unsigned mshrs = 1)
        : hitService_(hitService), missService_(missService),
          slots_(mshrs, 0)
    {
    }

    Quanta requestPort(unsigned requester, Quanta endTime,
                       unsigned l2Accesses, unsigned l2Misses) override;

    /** Chip time the last MSHR frees up (port fully idle after). */
    Quanta busyUntil() const;

    /** Number of MSHRs. */
    unsigned mshrs() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Port counters: requests, port_uses, contended, wait_quanta. */
    const StatGroup &stats() const { return stats_; }

  private:
    Quanta hitService_;
    Quanta missService_;
    std::vector<Quanta> slots_; ///< per-MSHR busy-until times
    StatGroup stats_{"l2port"};
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_SHARED_L2_HH
