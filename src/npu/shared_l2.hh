/**
 * @file
 * The chip's shared L2: the port arbiter (timing) and the shared
 * cache contents (state).
 *
 * SharedL2Port is a fixed-width port with FIFO arbitration and a small
 * pool of miss-status holding registers. Every engine's L1 misses,
 * refills and bypass reads occupy one MSHR for a fixed service time
 * (longer when the line also came from DRAM). Up to K transfers are in
 * flight at once; an access that finds every MSHR busy with earlier
 * transfers queues behind the one that frees first, and the queuing
 * delay is folded into the access's cycle cost by
 * ClumsyProcessor::chargeAccess(). With K = 1 the port is the
 * fully-serialized FIFO of the original model, bit for bit. When the
 * chip runs with genuinely shared L2 contents, the port additionally
 * merges requests: an engine hitting a shared-frame line whose DRAM
 * transfer another engine started, and which is still in flight, folds
 * into that transfer's MSHR and waits for it to finish instead of
 * paying for a second one.
 *
 * SharedL2Cache is one cache array shared by every engine on the chip
 * (NpuConfig::l2 == L2Mode::Shared): engine A's refill can hit for
 * engine B, and engines evict each other's lines. Each engine still
 * owns a private backing store (its own simulated DRAM image), and the
 * engines' stores genuinely diverge over time — different packets land
 * in different engines' packet buffers, faulty runs corrupt different
 * bytes. The shared array therefore distinguishes two kinds of line:
 *
 *  - **Shared frames** hold a DRAM line whose bytes are identical in
 *    every engine's store (code, lookup tables, anything untouched
 *    since the identical control-plane initialization). They are
 *    tagged with the plain DRAM address, are always clean, and any
 *    engine may hit them — these are the cross-engine hits that make
 *    sharing worthwhile.
 *  - **Colored lines** hold a DRAM line that differs between stores.
 *    Engine pe's copy is tagged `addr + (pe+1) * memBytes`; the
 *    stride is a multiple of the L2 set span, so coloring preserves
 *    the set index and only the tag changes. Colored lines behave
 *    exactly like private-L2 lines that happen to share capacity.
 *
 * Divergence is tracked per DRAM line in a monotone bitmap: lines
 * start shared and become diverged the first time any engine's copy of
 * the underlying bytes can differ — a dirty writeback into the L2, a
 * DMA into the line (packet arrival), a line migrated in dirty from an
 * engine's control-plane-warmed private L2, or a pre-existing store
 * mismatch found by seedDivergence() at attach time (control-plane
 * faults). A
 * diverged line never becomes shared again; monotonicity is what makes
 * the scheme provably value-preserving: every engine always reads
 * exactly the bytes it would have read from a private L2, and only the
 * *timing* (hit/miss pattern, port waits) changes.
 */

#ifndef CLUMSY_NPU_SHARED_L2_HH
#define CLUMSY_NPU_SHARED_L2_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "energy/chip_energy.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/l2_backend.hh"
#include "mem/l2_port.hh"

namespace clumsy::npu
{

/** FIFO arbitration over a fixed-width, K-MSHR L2 port. */
class SharedL2Port : public mem::L2PortArbiter
{
  public:
    /**
     * @param hitService  port occupancy of an L2 hit transfer, quanta.
     * @param missService occupancy when the line also transferred
     *                    from DRAM.
     * @param mshrs       transfers that may overlap before the port
     *                    serializes (>= 1).
     */
    SharedL2Port(Quanta hitService, Quanta missService,
                 unsigned mshrs = 1)
        : hitService_(hitService), missService_(missService),
          slots_(mshrs, 0)
    {
    }

    Quanta requestPort(unsigned requester, Quanta endTime,
                       unsigned l2Accesses, unsigned l2Misses,
                       const mem::L2LineUse *lines,
                       unsigned lineCount) override;

    /** Convenience overload: no line events (no merging possible). */
    Quanta requestPort(unsigned requester, Quanta endTime,
                       unsigned l2Accesses, unsigned l2Misses)
    {
        return requestPort(requester, endTime, l2Accesses, l2Misses,
                           nullptr, 0);
    }

    /**
     * Put a modeled DRAM behind the port (line card). Every miss
     * line of a granted access issues one gateway request at the
     * access's port-window end minus @p flatQuanta (the point the
     * flat-penalty model would start the DRAM transfer, salted by
     * @p addrSalt into the card's physical address space); the
     * largest extra latency among the access's lines is folded into
     * the requester's stall, exactly like port queuing. Null (the
     * default) leaves the pre-DRAM timing byte-identical.
     */
    void attachDram(dram::DramGateway *dram, std::uint64_t addrSalt,
                    Quanta flatQuanta)
    {
        dram_ = dram;
        dramSalt_ = addrSalt;
        dramFlat_ = flatQuanta;
    }

    /** Chip time the last MSHR frees up (port fully idle after). */
    Quanta busyUntil() const;

    /** Number of MSHRs. */
    unsigned mshrs() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Port counters: requests, port_uses, contended, wait_quanta,
     *  mshr_merges; with a DRAM attached also dram_requests and
     *  dram_extra_quanta. */
    const StatGroup &stats() const { return stats_; }

  private:
    /** One shareable DRAM transfer still occupying an MSHR. */
    struct Inflight
    {
        unsigned requester = 0; ///< engine that started the transfer
        Quanta end = 0;         ///< chip time the transfer completes
    };

    Quanta hitService_;
    Quanta missService_;
    std::vector<Quanta> slots_; ///< per-MSHR busy-until times
    dram::DramGateway *dram_ = nullptr; ///< modeled DRAM (may be null)
    std::uint64_t dramSalt_ = 0;        ///< chip offset into DRAM space
    Quanta dramFlat_ = 0; ///< flat penalty already inside endTime
    StatGroup stats_{"l2port"};

    /** Line base -> in-flight shareable transfer (merge window). */
    std::unordered_map<SimAddr, Inflight> inflight_;
};

/**
 * The chip's shared L2 contents. Engines access it through per-engine
 * View objects (the hierarchy's L2Backend seam); the chip owns one
 * SharedL2Cache and N views.
 */
class SharedL2Cache
{
  public:
    /** Per-engine counters mirroring a private L2's hit/miss stats. */
    struct EngineStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** Hits on a shared frame another engine's refill installed. */
        std::uint64_t crossHits = 0;
        /** This engine's lines evicted by another engine's fill. */
        std::uint64_t evictedByOther = 0;
    };

    /** The per-engine L2Backend the hierarchy talks through. */
    class View final : public mem::L2Backend
    {
      public:
        View() = default;

        /** Wire up (chip setup): owner cache + this engine's id. */
        void bind(SharedL2Cache *shared, unsigned pe)
        {
            shared_ = shared;
            pe_ = pe;
        }

        bool lookup(SimAddr addr) override
        {
            return shared_->lookup(pe_, addr);
        }

        void fill(SimAddr base, const std::uint8_t *data) override
        {
            shared_->fill(pe_, base, data);
        }

        bool contains(SimAddr addr) const override
        {
            return shared_->contains(pe_, addr);
        }

        void flushLine(SimAddr addr) override
        {
            shared_->flushLine(pe_, addr);
        }

        std::uint32_t readWordRaw(SimAddr addr) const override
        {
            return shared_->readWordRaw(pe_, addr);
        }

        void writeRange(SimAddr addr, const std::uint8_t *src,
                        SimSize len, bool markDirty) override
        {
            shared_->writeRange(pe_, addr, src, len, markDirty);
        }

        bool sharedFrame(SimAddr addr) const override
        {
            return shared_->sharedFrame(addr);
        }

        const mem::Cache &cache() const override
        {
            return shared_->array();
        }

      private:
        SharedL2Cache *shared_ = nullptr;
        unsigned pe_ = 0;
    };

    /**
     * @param geom     L2 geometry (one array for the whole chip).
     * @param codec    check-bit codec (must match the engines' L1D).
     * @param memBytes size of each engine's backing store; also the
     *                 coloring stride, so it must be a multiple of the
     *                 L2 set span (always true for power-of-two
     *                 stores >= the L2 way size).
     * @param peCount  engines on the chip.
     */
    SharedL2Cache(const mem::CacheGeometry &geom, mem::CheckCodec codec,
                  SimSize memBytes, unsigned peCount);

    /**
     * Register engine pe's collaborators and return its view. Setup
     * order (the chip model follows it): attach every engine, then
     * seedDivergence(), then noteDirtyLines() for every engine, then
     * migrateFrom() for every engine, then swap the views in.
     */
    View *attach(unsigned pe, mem::BackingStore *store,
                 energy::EnergyAccount *energy);

    /**
     * Diff every attached store line-by-line against engine 0's and
     * mark mismatching DRAM lines diverged. Called once, after every
     * engine is attached: control-plane faults leave different bytes
     * in different stores, and those lines must never share a frame.
     *
     * With a @p pool of more than one worker the diff itself fans out
     * over disjoint line ranges (reads only; each job records its
     * mismatches in a per-job slot) and the divergence marks are
     * applied at the barrier in ascending line order — the serial
     * iteration order — so the bitmap, the count and the stats are
     * byte-identical to the single-threaded diff.
     */
    void seedDivergence(const WorkStealingPool *pool = nullptr);

    /**
     * Mark every line @p privateL2 holds dirty as diverged. A dirty
     * private line is bytes the engine's store does not hold yet, so
     * the engines' effective contents differ there even when the
     * stores agree. Must run for every engine before any
     * migrateFrom().
     */
    void noteDirtyLines(const mem::Cache &privateL2);

    /**
     * Replay engine pe's resident private-L2 lines into the shared
     * array, least-recently-used first so relative line age survives
     * the move. Non-diverged lines become shared frames (first
     * installer wins; later engines' identical copies are skipped);
     * diverged lines become pe's colored copies with their dirty bits
     * preserved. For a one-engine chip this reproduces the private
     * array exactly — contents, LRU order and dirty state — which is
     * what makes pes=1 l2=shared bit-identical to l2=private.
     */
    void migrateFrom(unsigned pe, const mem::Cache &privateL2);

    // --- the L2 operations, tagged with the requesting engine -------

    bool lookup(unsigned pe, SimAddr addr);
    void fill(unsigned pe, SimAddr base, const std::uint8_t *data);
    bool contains(unsigned pe, SimAddr addr) const;
    void flushLine(unsigned pe, SimAddr addr);
    std::uint32_t readWordRaw(unsigned pe, SimAddr addr) const;
    void writeRange(unsigned pe, SimAddr addr, const std::uint8_t *src,
                    SimSize len, bool markDirty);

    /** Would an access to addr touch a shared (mergeable) frame? */
    bool sharedFrame(SimAddr addr) const
    {
        return !diverged(lineBase(addr));
    }

    // --- inspection --------------------------------------------------

    /** The underlying array (capacity/occupancy invariants, stats). */
    const mem::Cache &array() const { return cache_; }

    /** Per-engine hit/miss/cross-hit/eviction counters. */
    const EngineStats &engineStats(unsigned pe) const
    {
        return engineStats_[pe];
    }

    /** Chip-level counters: writebacks_to_mem, diverged_lines,
     *  shared_to_colored. */
    const StatGroup &stats() const { return stats_; }

    /** DRAM lines currently marked diverged. */
    std::uint64_t divergedLines() const { return divergedCount_; }

  private:
    mem::Cache cache_;
    SimSize memBytes_;
    SimSize lineBytes_;
    SimAddr stride_; ///< coloring stride = memBytes_
    unsigned peCount_;
    std::vector<mem::BackingStore *> stores_;
    std::vector<energy::EnergyAccount *> energies_;
    std::vector<View> views_;
    std::vector<EngineStats> engineStats_;
    std::vector<char> diverged_; ///< per-DRAM-line, monotone
    /** Shared-frame line base -> engine whose refill installed it. */
    std::unordered_map<SimAddr, unsigned> fillOwner_;
    StatGroup stats_{"shared_l2"};
    std::uint64_t divergedCount_ = 0;

    SimAddr lineBase(SimAddr addr) const
    {
        return addr & ~(lineBytes_ - 1);
    }

    bool diverged(SimAddr base) const
    {
        return diverged_[base / lineBytes_] != 0;
    }

    void markDiverged(SimAddr base);

    /** The array key engine pe uses for addr (shared or colored). */
    SimAddr keyFor(unsigned pe, SimAddr addr) const
    {
        return diverged(lineBase(addr))
                   ? addr + stride_ * (SimAddr{pe} + 1)
                   : addr;
    }

    /** Handle a victim evicted by engine pe's fill. */
    void handleVictim(unsigned pe, const mem::Cache::Evicted &victim);

    /** Convert a present shared frame to pe's colored line in place. */
    void convertToColored(unsigned pe, SimAddr base);
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_SHARED_L2_HH
