/**
 * @file
 * The chip's shared L2 port: a single fixed-width port with FIFO
 * arbitration. Every engine's L1 misses, refills and bypass reads
 * occupy the port for a fixed service time (longer when the line also
 * came from DRAM); an engine whose access finds the port busy with an
 * earlier transfer queues behind it, and the queuing delay is folded
 * into the access's cycle cost by ClumsyProcessor::chargeAccess().
 */

#ifndef CLUMSY_NPU_SHARED_L2_HH
#define CLUMSY_NPU_SHARED_L2_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/l2_port.hh"

namespace clumsy::npu
{

/** FIFO arbitration over one fixed-width L2 port. */
class SharedL2Port : public mem::L2PortArbiter
{
  public:
    /**
     * @param hitService  port occupancy of an L2 hit transfer, quanta.
     * @param missService occupancy when the line also transferred
     *                    from DRAM.
     */
    SharedL2Port(Quanta hitService, Quanta missService)
        : hitService_(hitService), missService_(missService)
    {
    }

    Quanta requestPort(unsigned requester, Quanta endTime,
                       unsigned l2Accesses, unsigned l2Misses) override;

    /** Chip time the port is occupied until. */
    Quanta busyUntil() const { return busyUntil_; }

    /** Port counters: requests, port_uses, contended, wait_quanta. */
    const StatGroup &stats() const { return stats_; }

  private:
    Quanta hitService_;
    Quanta missService_;
    Quanta busyUntil_ = 0;
    StatGroup stats_{"l2port"};
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_SHARED_L2_HH
