#include "npu/config.hh"

#include "common/logging.hh"

namespace clumsy::npu
{

std::string
to_string(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        return "rr";
      case DispatchPolicy::FlowHash:
        return "flow";
      case DispatchPolicy::ShortestQueue:
        return "shortest";
    }
    panic("unreachable dispatch policy");
}

DispatchPolicy
dispatchFromString(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return DispatchPolicy::RoundRobin;
    if (name == "flow" || name == "flow-hash")
        return DispatchPolicy::FlowHash;
    if (name == "shortest" || name == "shortest-queue")
        return DispatchPolicy::ShortestQueue;
    fatal("unknown dispatch policy '%s' (valid choices: rr, flow, "
          "shortest)",
          name.c_str());
}

std::string
to_string(DvsMode mode)
{
    switch (mode) {
      case DvsMode::Static:
        return "static";
      case DvsMode::Fault:
        return "fault";
      case DvsMode::Queue:
        return "queue";
    }
    panic("unreachable dvs mode");
}

DvsMode
dvsFromString(const std::string &name)
{
    if (name == "static")
        return DvsMode::Static;
    if (name == "fault")
        return DvsMode::Fault;
    if (name == "queue")
        return DvsMode::Queue;
    fatal("unknown dvs mode '%s' (valid choices: static, fault, "
          "queue)",
          name.c_str());
}

std::string
to_string(L2Mode mode)
{
    switch (mode) {
      case L2Mode::Private:
        return "private";
      case L2Mode::Shared:
        return "shared";
    }
    panic("unreachable L2 mode");
}

L2Mode
l2ModeFromString(const std::string &name)
{
    if (name == "private")
        return L2Mode::Private;
    if (name == "shared")
        return L2Mode::Shared;
    fatal("unknown L2 mode '%s' (valid choices: private, shared)",
          name.c_str());
}

void
NpuConfig::validate(const mem::HierarchyConfig &hier) const
{
    CLUMSY_ASSERT(peCount >= 1, "chip needs at least one engine");
    CLUMSY_ASSERT(queueCapacity >= 1, "queues need room for a packet");
    CLUMSY_ASSERT(arrivalGapCycles >= 0, "arrival gap must be >= 0");
    CLUMSY_ASSERT(perPeCr.empty() || perPeCr.size() == peCount,
                  "perPeCr must be empty or name every engine");
    for (double cr : perPeCr)
        CLUMSY_ASSERT(cr > 0.0 && cr <= 1.0,
                      "per-engine Cr outside (0, 1]");
    CLUMSY_ASSERT(clockMhz > 0.0, "clock must be positive");
    CLUMSY_ASSERT(mshrs >= 1, "the port needs at least one MSHR");
    // The single-engine-equivalence requirement: port service must be
    // coverable by the access's own embedded L2 latency, otherwise a
    // lone engine would queue behind itself.
    CLUMSY_ASSERT(portHitCycles >= 0 &&
                      portHitCycles <= hier.l2HitCycles,
                  "port hit service exceeds the L2 hit latency");
    CLUMSY_ASSERT(portMissCycles >= 0 &&
                      portMissCycles <= hier.l2HitCycles + hier.memCycles,
                  "port miss service exceeds the L2 miss latency");
}

} // namespace clumsy::npu
