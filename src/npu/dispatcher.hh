/**
 * @file
 * Packet-to-engine dispatch for the chip model.
 *
 * The dispatcher is pure policy: given a packet and the engines'
 * current queue depths and liveness, it names the engine the packet
 * should go to. Queue-full handling (drop vs backpressure) is the
 * chip's job, so every policy stays a deterministic pure function of
 * its inputs.
 */

#ifndef CLUMSY_NPU_DISPATCHER_HH
#define CLUMSY_NPU_DISPATCHER_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "npu/config.hh"

namespace clumsy::npu
{

/**
 * FNV-1a hash of the packet's 5-tuple (src, dst, ports, protocol).
 * Exposed for tests: flow affinity is the hash being stable.
 */
std::uint32_t flowHash(const net::Packet &pkt);

/** Assigns arriving packets to processing engines. */
class Dispatcher
{
  public:
    /**
     * @param flowRehash FlowHash only: when a flow's pinned engine is
     *        dead, probe (hash + i) % peCount for the first alive
     *        engine instead of returning -1. Every packet of the flow
     *        probes identically, so the flow stays on one engine
     *        after the move.
     */
    Dispatcher(DispatchPolicy policy, unsigned peCount,
               bool flowRehash = false)
        : policy_(policy), peCount_(peCount), flowRehash_(flowRehash)
    {
    }

    /**
     * Choose the engine for @p pkt.
     *
     * @param depths current queue depth of each engine.
     * @param alive  which engines can still process packets.
     * @return the engine index, or -1 when no engine can take the
     *         packet (every engine dead, or the packet's flow is
     *         pinned to a dead engine) — the chip drops it.
     */
    int choose(const net::Packet &pkt,
               const std::vector<unsigned> &depths,
               const std::vector<char> &alive);

  private:
    DispatchPolicy policy_;
    unsigned peCount_;
    bool flowRehash_;
    unsigned rrNext_ = 0;
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_DISPATCHER_HH
