#include "npu/chip.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "common/pool.hh"
#include "core/metrics.hh"
#include "ctrl/ctrl.hh"
#include "net/trace_gen.hh"
#include "npu/dispatcher.hh"
#include "npu/event_queue.hh"
#include "npu/shared_l2.hh"
#include "traffic/traffic.hh"

namespace clumsy::npu
{

namespace
{

/** NpuConfig::chipJobs resolved: 0 means the machine's default. */
unsigned
resolveChipJobs(unsigned chipJobs)
{
    return chipJobs == 0 ? WorkStealingPool::hardwareWorkers()
                         : chipJobs;
}

/** One processing engine and its run state. */
struct Engine
{
    std::unique_ptr<core::ClumsyProcessor> proc;
    std::unique_ptr<core::PacketApp> app;
    std::deque<net::Packet> queue;
    Quanta origin = 0; ///< local quanta when the data plane started
    double initCycles = 0.0;
    double initEnergy = 0.0;
    double initL1d = 0.0;
    std::uint64_t initL2Hits = 0;   ///< private-L2 hits before data plane
    std::uint64_t initL2Misses = 0; ///< ... and misses
    Quanta busy = 0; ///< quanta spent inside packet processing
    std::uint64_t processed = 0;
    std::uint64_t maxDepth = 0;
    std::uint64_t ctrlApplied = 0; ///< control-plane events applied
    bool alive = true;

    /**
     * Queue-pressure accumulators of the current DVS epoch
     * (dvs=queue): depth/capacity sampled after every enqueue and
     * every dequeue, reset when the chip closes the epoch.
     */
    double pressureSum = 0.0;
    std::uint64_t pressureSamples = 0;

    Quanta dataTime() const { return proc->now() - origin; }

    /** Mean pressure this epoch; 0 when the queue never moved. */
    double epochPressure() const
    {
        return pressureSamples > 0
                   ? pressureSum / static_cast<double>(pressureSamples)
                   : 0.0;
    }
};

/**
 * Decorrelates engine fault streams: each engine gets the single-core
 * seed of its operating point offset by engine id. Engine 0 keeps the
 * unmodified seed so a one-engine chip replays the single-core run.
 */
constexpr std::uint64_t kPeSeedStride = 0x6a09e667f3bcc909ull;

ChipRun
runChipOnce(const core::AppFactory &factory,
            const core::ExperimentConfig &config, const NpuConfig &npu,
            bool golden, unsigned trial, const ChipRun *goldenRef,
            bool stream = false, const ChipEnv &env = {})
{
    npu.validate(config.processor.hierarchy);
    CLUMSY_ASSERT(!stream || goldenRef == nullptr,
                  "streaming runs cannot compare against a reference");

    const bool injectControl =
        !golden && config.plane != core::FaultPlane::DataOnly;
    const bool injectData =
        !golden && config.plane != core::FaultPlane::ControlOnly;

    SharedL2Port port(cyclesToQuanta(npu.portHitCycles),
                      cyclesToQuanta(npu.portMissCycles), npu.mshrs);
    if (env.dram != nullptr)
        port.attachDram(
            env.dram, env.dramSalt,
            cyclesToQuanta(config.processor.hierarchy.memCycles));

    ChipRun run;
    run.recorders.assign(
        npu.peCount,
        core::ValueRecorder(stream ? core::ValueRecorder::Mode::Digest
                                   : core::ValueRecorder::Mode::Full));

    // Build and initialize every engine. The control plane runs with
    // the L2 private (boot-time table construction is not the
    // steady-state contention the port models); the arbiter attaches
    // when the data plane starts, with each engine's origin at its
    // own post-init local time so all engines enter the shared chip
    // timeline at t = 0.
    //
    // Bring-up is the run's one true horizon — [boot, first arrival) —
    // during which engines touch only engine-local state (own
    // processor, own hierarchy behind the private L2 backend, own
    // fault stream), so with chip-jobs > 1 it runs on the worker pool.
    // Writes land in distinct engines[pe] slots and every
    // cross-engine interaction (fatal scan, shared-L2 construction)
    // happens after the barrier in ascending engine order, exactly as
    // the serial loop ordered it: byte-identical by construction.
    const WorkStealingPool chipPool(resolveChipJobs(npu.chipJobs));
    std::vector<Engine> engines(npu.peCount);
    chipPool.run(npu.peCount, [&](std::size_t peIdx) {
        const unsigned pe = static_cast<unsigned>(peIdx);
        Engine &e = engines[pe];
        core::ExperimentConfig peConfig = config;
        if (!npu.perPeCr.empty())
            peConfig.cr = npu.perPeCr[pe];
        core::ProcessorConfig pc =
            core::makeRunProcessorConfig(peConfig, golden, trial);
        // On a line card each engine salts by its *global* id
        // (engineSaltBase = chip * peCount), so chips age with
        // decorrelated fault streams; standalone the base is zero and
        // the historical seeds are untouched.
        pc.faultSeed += (env.engineSaltBase + pe) * kPeSeedStride;
        // The map seed is the chip's silicon: trials keep it fixed,
        // but each PE's array is its own die area, so salt by engine
        // id (engine 0 unsalted, preserving the 1-PE == single-core
        // equivalence).
        pc.faultMap.peSalt = env.engineSaltBase + pe;
        switch (npu.dvs) {
          case DvsMode::Static:
            // Ablation baseline: frozen at the launch Cr even when
            // the operating point asked for dynamic frequency.
            pc.dynamicFrequency = false;
            break;
          case DvsMode::Fault:
            break; // the single-core behaviour, untouched
          case DvsMode::Queue:
            // Per-PE DVS: always adaptive on faulty runs (golden
            // stays static, matching makeRunProcessorConfig's
            // convention), driven by chip-level epochs through a
            // queue-biased policy, launched at the operating point's
            // Cr (which must sit on the controller's ladder).
            pc.dynamicFrequency = !golden;
            if (pc.dynamicFrequency) {
                pc.freqCtl.policy = core::FreqPolicyKind::QueueBiased;
                pc.freqCtl.externalEpochs = true;
                pc.freqCtl.startLevel =
                    core::FrequencyLevels(pc.freqCtl.levels)
                        .indexOf(peConfig.cr);
            }
            break;
        }
        e.proc = std::make_unique<core::ClumsyProcessor>(pc);
        e.app = factory();
        e.proc->setInjectionEnabled(injectControl);
        e.app->initialize(*e.proc);
        e.initCycles = e.proc->nowCycles();
        e.initEnergy = e.proc->totalEnergyPj();
        e.initL1d = e.proc->l1dEnergyPj();
        e.initL2Hits = e.proc->hierarchy().l2().stats().get("hits");
        e.initL2Misses = e.proc->hierarchy().l2().stats().get("misses");
        e.origin = e.proc->now();
        e.proc->attachL2Port(&port, pe, e.origin);
        e.proc->setInjectionEnabled(injectData);
        e.alive = !e.proc->fatalOccurred();
    });

    // Genuinely shared L2 contents (l2=shared): swap every engine's
    // L2 backend to a view of one chip-wide array at the data-plane
    // boundary. The stores are diffed line-by-line (control-plane
    // faults leave engines with different bytes, and those lines must
    // never share a frame), dirty private lines — bytes the stores
    // don't hold yet — diverge their lines too, and then each
    // engine's warmed private contents migrate into the shared array
    // in LRU order, so the data plane starts exactly as warm as it
    // does with private L2s.
    std::unique_ptr<SharedL2Cache> sharedL2;
    if (npu.l2 == L2Mode::Shared) {
        sharedL2 = std::make_unique<SharedL2Cache>(
            config.processor.hierarchy.l2,
            config.processor.hierarchy.codec, config.processor.memBytes,
            npu.peCount);
        std::vector<SharedL2Cache::View *> views(npu.peCount);
        for (unsigned pe = 0; pe < npu.peCount; ++pe) {
            Engine &e = engines[pe];
            views[pe] = sharedL2->attach(pe, &e.proc->backingStore(),
                                         &e.proc->energyAccount());
        }
        sharedL2->seedDivergence(&chipPool);
        for (unsigned pe = 0; pe < npu.peCount; ++pe)
            sharedL2->noteDirtyLines(
                engines[pe].proc->hierarchy().l2());
        for (unsigned pe = 0; pe < npu.peCount; ++pe)
            sharedL2->migrateFrom(pe,
                                  engines[pe].proc->hierarchy().l2());
        for (unsigned pe = 0; pe < npu.peCount; ++pe)
            engines[pe].proc->setL2Backend(views[pe]);
    }

    // The arrival stream: a traffic source owns both the packet bytes
    // and each packet's arrival time (static gaps or the churn model's
    // ramped/bursty gaps), quantized here onto the chip timeline.
    const net::TraceConfig chipTrace =
        core::resolveTraceConfig(config, *engines[0].app);
    std::unique_ptr<traffic::PacketSource> ownedSrc;
    if (env.source == nullptr)
        ownedSrc = traffic::makeSource(chipTrace, npu.arrivalGapCycles);
    traffic::PacketSource *const src =
        env.source != nullptr ? env.source : ownedSrc.get();

    // Control-plane churn (ctrl= nonzero): every engine owns a full
    // copy of the update stream — its tables are private, so it must
    // see every update — drained against the trace sequence numbers it
    // processes. Which events an engine has applied when it starts a
    // packet therefore depends only on the dispatcher's (deterministic)
    // packet placement, never on chip-jobs or wall-clock interleaving,
    // and a one-engine chip drains the stream exactly as the
    // single-core harness does (seq == loop index there).
    std::vector<std::unique_ptr<ctrl::CtrlSource>> ctrlSrcs(npu.peCount);
    for (unsigned pe = 0; pe < npu.peCount; ++pe)
        ctrlSrcs[pe] = ctrl::makeCtrlSource(config.ctrl, chipTrace);

    Dispatcher disp(npu.dispatch, npu.peCount, npu.flowRehash);
    std::vector<Histogram> occ(
        npu.peCount, Histogram(0.0, npu.queueCapacity + 1.0,
                               npu.queueCapacity + 1));

    std::uint64_t generated = 0;
    bool havePending = false;
    net::Packet pending;
    Quanta pendingArrival = 0;

    // Bounded ingress FIFO (NpuConfig::ingressCapacity > 0): due
    // arrivals land here before dispatch, and a due arrival that
    // finds the FIFO full is dropped at the chip edge. The lookahead
    // slot holds the one packet pulled from the source whose
    // arrival has not come due yet. Capacity 0 skips all of this.
    const unsigned ingressCap = npu.ingressCapacity;
    std::deque<std::pair<net::Packet, Quanta>> ingress;
    bool haveLook = false;
    net::Packet look;
    Quanta lookArrival = 0;
    std::uint64_t ingressDrops = 0;

    core::RunMetrics &merged = run.merged;
    std::uint64_t completed = 0;
    std::uint64_t dropsQueueFull = 0, dropsDeadPe = 0,
                  backpressureStalls = 0;
    bool sawFatal = false;
    std::string firstFatalReason;

    // Any engine dead at boot (control-plane fault) is a chip fatal.
    for (const Engine &e : engines) {
        if (!e.alive && !sawFatal) {
            sawFatal = true;
            firstFatalReason = e.proc->fatalReason();
        }
    }

    // Engines holding work, ordered by (data time, engine id). The
    // queue's comparison is the linear scan's strict less-than over
    // pure integers, so its top is always the engine the scan would
    // have picked — byte-identical schedule, O(log P) per step.
    EngineEventQueue events(npu.peCount);

    // Chip-level DVS epochs (dvs=queue): every epochPackets completed
    // packets chip-wide, all alive engines decide together, each on
    // its own mean queue pressure since the previous epoch.
    const bool chipEpochs = npu.dvs == DvsMode::Queue;
    const std::uint64_t epochPackets =
        config.processor.freqCtl.epochPackets;
    auto samplePressure = [&](Engine &e) {
        if (!chipEpochs)
            return;
        e.pressureSum += static_cast<double>(e.queue.size()) /
                         static_cast<double>(npu.queueCapacity);
        ++e.pressureSamples;
    };
    auto closeChipEpoch = [&]() {
        for (unsigned pe = 0; pe < npu.peCount; ++pe) {
            Engine &e = engines[pe];
            if (e.alive) {
                e.proc->closeDvsEpoch(e.epochPressure());
                // A frequency switch charges a penalty, moving the
                // engine's clock: refresh its position in the event
                // queue.
                if (events.contains(pe))
                    events.update(pe, e.dataTime());
            }
            e.pressureSum = 0.0;
            e.pressureSamples = 0;
        }
    };

    // Dispatcher inputs, maintained incrementally: depths[pe] mirrors
    // engines[pe].queue.size() and alive[pe] mirrors engines[pe].alive
    // at every choose() call, updated at the few points that mutate
    // them (placement, dequeue, engine death). The legacy dispatch arm
    // (dispatchBurst == 1) rebuilds both from the queues per arrival
    // instead — the O(P)-per-arrival loop the batched arm replaces —
    // and the batching equivalence tests pin the two arms together.
    std::vector<unsigned> depths(npu.peCount, 0);
    std::vector<char> alive(npu.peCount);
    for (unsigned pe = 0; pe < npu.peCount; ++pe)
        alive[pe] = engines[pe].alive ? 1 : 0;

    auto processOne = [&](unsigned pe) {
        Engine &e = engines[pe];
        const net::Packet pkt = e.queue.front();
        e.queue.pop_front();
        --depths[pe];
        samplePressure(e);
        if (ctrlSrcs[pe]) {
            while (const ctrl::CtrlEvent *ev = ctrlSrcs[pe]->peek()) {
                if (ev->beforePacket > pkt.seq)
                    break;
                if (e.app->applyCtrlEvent(*e.proc, *ev))
                    ++e.ctrlApplied;
                ctrlSrcs[pe]->advance();
                if (e.proc->fatalOccurred())
                    break;
            }
            if (e.proc->fatalOccurred()) {
                // A fault during the update is an engine fatal like
                // any other; the popped packet never started, so it
                // joins the rest of the queue as dead-PE drops.
                e.alive = false;
                if (!sawFatal) {
                    sawFatal = true;
                    firstFatalReason = e.proc->fatalReason();
                }
                dropsDeadPe += 1 + e.queue.size();
                e.queue.clear();
                depths[pe] = 0;
                alive[pe] = 0;
                events.erase(pe);
                return;
            }
        }
        const Quanta before = e.proc->now();
        e.proc->beginPacket();
        core::ValueRecorder &rec = run.recorders[pe];
        rec.beginPacket();
        const std::size_t frame = rec.packetCount() - 1;
        e.app->processPacket(*e.proc, pkt, rec);
        e.busy += e.proc->now() - before;
        if (e.proc->fatalOccurred()) {
            e.alive = false;
            if (!sawFatal) {
                sawFatal = true;
                firstFatalReason = e.proc->fatalReason();
            }
            dropsDeadPe += e.queue.size();
            e.queue.clear();
            depths[pe] = 0;
            alive[pe] = 0;
            events.erase(pe);
            return;
        }
        e.proc->endPacket();
        ++e.processed;
        ++completed;
        if (chipEpochs && completed % epochPackets == 0)
            closeChipEpoch();
        // endPacket and epoch closes can advance engine clocks
        // (frequency-switch penalties), so re-key this engine — and
        // closeChipEpoch() above re-keys every other queued engine —
        // only after both ran.
        if (e.queue.empty())
            events.erase(pe);
        else
            events.update(pe, e.dataTime());
        if (stream)
            return; // no per-sequence bookkeeping: O(1) memory
        // A trace sequence number must complete exactly once, no
        // matter how backpressure re-arbitration shuffles arrivals.
        const bool freshSeq =
            run.completions.emplace(pkt.seq, std::make_pair(pe, frame))
                .second;
        CLUMSY_ASSERT(freshSeq, "packet sequence completed twice");
        if (goldenRef) {
            const auto it = goldenRef->completions.find(pkt.seq);
            if (it != goldenRef->completions.end()) {
                const auto bad = rec.comparePacket(
                    frame, goldenRef->recorders[it->second.first],
                    it->second.second);
                if (!bad.empty())
                    ++merged.packetsWithError;
                for (const auto &key : bad)
                    ++merged.errorsByType[key];
            }
        }
    };

    // The pending arrival leaves the dispatch stage (placed or
    // dropped); with a bounded ingress it also leaves the FIFO head.
    auto consumePending = [&]() {
        havePending = false;
        if (ingressCap > 0)
            ingress.pop_front();
    };

    // One successful placement, shared by both dispatch arms.
    auto place = [&](unsigned pe) {
        Engine &e = engines[pe];
        e.queue.push_back(pending);
        ++depths[pe];
        if (!events.contains(pe))
            events.push(pe, e.dataTime());
        consumePending();
        samplePressure(e);
        e.maxDepth = std::max<std::uint64_t>(e.maxDepth,
                                             e.queue.size());
        occ[pe].sample(static_cast<double>(e.queue.size()));
    };

    while (true) {
        // The engine that runs next: smallest (data time, id) among
        // alive engines holding work — the event queue's top. Pure
        // integer comparisons keep the schedule byte-identical
        // everywhere.
        const int stepPe =
            events.empty() ? -1 : static_cast<int>(events.top());
        const Quanta stepDt = events.empty() ? 0 : events.topKey();

        // Line-card horizon feed: no engine's clock ever runs
        // backwards, so the smallest alive engine data time lower-
        // bounds the chip time of every future DRAM request (any
        // request is issued mid-packet at or after its engine's
        // current time). The bound is monotone; the card's fabric
        // dedups repeats cheaply.
        if (env.progress) {
            Quanta minDt = 0;
            bool any = false;
            for (const Engine &e : engines) {
                if (!e.alive)
                    continue;
                const Quanta dt = e.dataTime();
                if (!any || dt < minDt) {
                    minDt = dt;
                    any = true;
                }
            }
            if (any)
                env.progress(minDt);
        }

        if (ingressCap > 0) {
            // Bounded-ingress admission: pull arrivals through the
            // lookahead slot and admit every one that is due at the
            // step horizon (or the first one outright when the chip
            // is idle — time jumps forward to it). A due arrival
            // that finds the FIFO full is dropped at the chip edge;
            // the head of the FIFO is the dispatch stage's pending
            // packet.
            while (true) {
                if (!haveLook && generated < config.numPackets) {
                    look = src->next();
                    lookArrival =
                        cyclesToQuanta(src->lastArrivalCycles());
                    haveLook = true;
                    ++generated;
                }
                if (!haveLook)
                    break;
                const bool due = stepPe >= 0 ? lookArrival <= stepDt
                                             : ingress.empty();
                if (!due)
                    break;
                if (ingress.size() < ingressCap)
                    ingress.emplace_back(look, lookArrival);
                else
                    ++ingressDrops;
                haveLook = false;
            }
            havePending = !ingress.empty();
            if (havePending) {
                pending = ingress.front().first;
                pendingArrival = ingress.front().second;
            }
        } else if (!havePending && generated < config.numPackets) {
            // Pull the next arrival eagerly: its timestamp comes from
            // the source (the churn model only knows a packet's
            // arrival once it has drawn the packet), and it stays
            // pending until some engine accepts it.
            pending = src->next();
            pendingArrival = cyclesToQuanta(src->lastArrivalCycles());
            havePending = true;
            ++generated;
        }
        if (!havePending && stepPe < 0)
            break;

        const bool doDispatch =
            havePending && (stepPe < 0 || pendingArrival <= stepDt);

        if (!doDispatch) {
            processOne(static_cast<unsigned>(stepPe));
            continue;
        }

        if (npu.dispatchBurst == 1 || ingressCap > 0) {
            // Legacy reference arm: one dispatch per pass, dispatcher
            // inputs rebuilt from the queues. Bounded-ingress runs
            // use it too: their pending packet is the FIFO head, so
            // the batched arm's pull-ahead does not apply.
            for (unsigned pe = 0; pe < npu.peCount; ++pe) {
                depths[pe] =
                    static_cast<unsigned>(engines[pe].queue.size());
                alive[pe] = engines[pe].alive ? 1 : 0;
            }
            const int pe = disp.choose(pending, depths, alive);
            if (pe < 0) {
                ++dropsDeadPe;
                consumePending();
                continue;
            }
            Engine &e = engines[static_cast<unsigned>(pe)];
            if (e.queue.size() >= npu.queueCapacity) {
                if (npu.dropWhenFull) {
                    ++dropsQueueFull;
                    consumePending();
                    continue;
                }
                // Backpressure: hold the arrival and drain the
                // earliest engine; the packet re-arbitrates afterwards.
                ++backpressureStalls;
                CLUMSY_ASSERT(stepPe >= 0,
                              "backpressure with no engine to drain");
                processOne(static_cast<unsigned>(stepPe));
                continue;
            }
            place(static_cast<unsigned>(pe));
            continue;
        }

        // Batched arm: the whole run of arrivals preceding the
        // earliest engine's horizon is placed back-to-back, one
        // choose() per arrival and O(1) bookkeeping per placement.
        // The horizon is re-read after every mutation — a first
        // packet placed on an idle engine can lower it, and draining
        // under backpressure raises it — so the burst ends exactly
        // where the legacy loop would have stepped an engine.
        unsigned placed = 0;
        while (true) {
            const int pe = disp.choose(pending, depths, alive);
            if (pe < 0) {
                ++dropsDeadPe;
                havePending = false;
            } else if (engines[static_cast<unsigned>(pe)].queue.size() >=
                       npu.queueCapacity) {
                if (npu.dropWhenFull) {
                    ++dropsQueueFull;
                    havePending = false;
                } else {
                    // Backpressure: drain the earliest engine, then
                    // re-arbitrate this same arrival while it still
                    // precedes the (now advanced) horizon.
                    ++backpressureStalls;
                    CLUMSY_ASSERT(!events.empty(),
                                  "backpressure with no engine to drain");
                    processOne(events.top());
                    if (!events.empty() &&
                        pendingArrival > events.topKey())
                        break;
                    continue;
                }
            } else {
                place(static_cast<unsigned>(pe));
            }
            if (generated >= config.numPackets)
                break;
            pending = src->next();
            pendingArrival = cyclesToQuanta(src->lastArrivalCycles());
            havePending = true;
            ++generated;
            ++placed;
            if (npu.dispatchBurst != 0 && placed >= npu.dispatchBurst)
                break;
            if (!events.empty() && pendingArrival > events.topKey())
                break;
        }
    }

    // ---- merge engine metrics into single-core form ----------------
    // Every sum below starts at zero and adds engine 0 first, so with
    // one engine each expression reduces to exactly the single-core
    // harness's formula (0 + x == x in IEEE double arithmetic).
    merged.packetsAttempted = config.numPackets;
    merged.packetsProcessed = completed;
    merged.fatal = sawFatal;
    merged.fatalReason = firstFatalReason;

    const double processed =
        completed > 0 ? static_cast<double>(completed) : 1.0;
    double dataCycles = 0.0, totalEnergy = 0.0, dataEnergy = 0.0,
           l1dEnergy = 0.0;
    std::uint64_t l1dHits = 0, l1dMisses = 0;
    for (const Engine &e : engines) {
        dataCycles += e.proc->nowCycles() - e.initCycles;
        totalEnergy += e.proc->totalEnergyPj();
        dataEnergy += e.proc->totalEnergyPj() - e.initEnergy;
        l1dEnergy += e.proc->l1dEnergyPj() - e.initL1d;
        const auto &h = e.proc->hierarchy();
        merged.instructions += e.proc->instructions();
        merged.dcacheAccesses += h.stats().get("reads") +
                                 h.stats().get("writes");
        l1dHits += h.l1d().stats().get("hits");
        l1dMisses += h.l1d().stats().get("misses");
        merged.faultsInjected += e.proc->injector().faultCount();
        merged.parityTrips += h.stats().get("parity_trips");
        merged.eccCorrections += h.stats().get("ecc_corrections");
        merged.freqSwitches += e.proc->freqController()
                                   ? e.proc->freqController()->switches()
                                   : 0;
        merged.ctrlEventsApplied += e.ctrlApplied;
    }
    merged.cyclesPerPacket = dataCycles / processed;
    merged.totalEnergyPj = totalEnergy;
    merged.energyPerPacketPj = dataEnergy / processed;
    merged.l1dEnergyPj = l1dEnergy;
    {
        // Recomputed from the summed raw counters with the same
        // expression as Cache::missRate(), so one engine reproduces
        // the single-core figure bit for bit.
        const double hits = static_cast<double>(l1dHits);
        const double misses = static_cast<double>(l1dMisses);
        const double total = hits + misses;
        merged.dcacheMissRate = total > 0 ? misses / total : 0.0;
    }

    // ---- chip-level metrics ----------------------------------------
    ChipMetrics &chip = run.chip;
    Quanta makespanQ = 0;
    Quanta busySum = 0, busyMax = 0;
    for (const Engine &e : engines) {
        makespanQ = std::max(makespanQ, e.dataTime());
        busySum += e.busy;
        busyMax = std::max(busyMax, e.busy);
    }
    chip.makespanCycles = quantaToCycles(makespanQ);
    chip.throughputPps =
        chip.makespanCycles > 0.0
            ? static_cast<double>(completed) /
                  (chip.makespanCycles / (npu.clockMhz * 1e6))
            : 0.0;
    const double busyMean =
        static_cast<double>(busySum) / static_cast<double>(npu.peCount);
    chip.loadImbalance =
        busyMean > 0.0 ? static_cast<double>(busyMax) / busyMean : 1.0;

    Histogram mergedOcc(0.0, npu.queueCapacity + 1.0,
                        npu.queueCapacity + 1);
    double maxDepth = 0.0;
    for (unsigned pe = 0; pe < npu.peCount; ++pe) {
        mergedOcc.merge(occ[pe]);
        maxDepth = std::max(maxDepth,
                            static_cast<double>(engines[pe].maxDepth));
    }
    run.queueOcc = mergedOcc;
    chip.queueOccMean = mergedOcc.mean();
    chip.queueOccMax = maxDepth;
    chip.dropsQueueFull = static_cast<double>(dropsQueueFull);
    chip.dropsDeadPe = static_cast<double>(dropsDeadPe);
    chip.backpressureStalls = static_cast<double>(backpressureStalls);

    Quanta waitQ = 0;
    std::uint64_t waits = 0;
    for (const Engine &e : engines) {
        waitQ += e.proc->l2PortWaitQuanta();
        waits += e.proc->l2PortWaits();
    }
    chip.l2PortWaits = static_cast<double>(waits);
    chip.l2PortWaitCycles = quantaToCycles(waitQ);

    // Per-engine data-plane L2 demand traffic, plus the shared-mode
    // cross-engine counters (all zero when the L2 is private, so
    // mode-mixed averages stay meaningful).
    chip.peL2Hits.resize(npu.peCount);
    chip.peL2Misses.resize(npu.peCount);
    std::uint64_t l2HitsTotal = 0, crossHits = 0, evictedByOther = 0;
    for (unsigned pe = 0; pe < npu.peCount; ++pe) {
        const Engine &e = engines[pe];
        std::uint64_t hits = 0, misses = 0;
        if (sharedL2) {
            const SharedL2Cache::EngineStats &s =
                sharedL2->engineStats(pe);
            hits = s.hits;
            misses = s.misses;
            crossHits += s.crossHits;
            evictedByOther += s.evictedByOther;
        } else {
            const auto &l2s = e.proc->hierarchy().l2().stats();
            hits = l2s.get("hits") - e.initL2Hits;
            misses = l2s.get("misses") - e.initL2Misses;
        }
        chip.peL2Hits[pe] = static_cast<double>(hits);
        chip.peL2Misses[pe] = static_cast<double>(misses);
        l2HitsTotal += hits;
    }
    chip.crossEngineHits = static_cast<double>(crossHits);
    chip.crossEngineHitFraction =
        l2HitsTotal > 0 ? static_cast<double>(crossHits) /
                              static_cast<double>(l2HitsTotal)
                        : 0.0;
    chip.l2EvictionsByOther = static_cast<double>(evictedByOther);
    chip.mshrMerges =
        static_cast<double>(port.stats().get("mshr_merges"));
    chip.ingressDrops = static_cast<double>(ingressDrops);
    chip.dramRequests =
        static_cast<double>(port.stats().get("dram_requests"));
    chip.dramStallCycles = quantaToCycles(
        static_cast<Quanta>(port.stats().get("dram_extra_quanta")));

    const double fall = core::fallibility(merged);
    const double delay = chip.makespanCycles / processed;
    chip.chipEdf =
        merged.energyPerPacketPj * delay * delay * fall * fall;

    chip.peUtilization.resize(npu.peCount);
    chip.pePackets.resize(npu.peCount);
    chip.peCrFinal.resize(npu.peCount);
    chip.peCrMean.resize(npu.peCount);
    chip.peEpochs.resize(npu.peCount);
    chip.peStepsUp.resize(npu.peCount);
    chip.peStepsDown.resize(npu.peCount);
    for (unsigned pe = 0; pe < npu.peCount; ++pe) {
        const Engine &e = engines[pe];
        chip.peUtilization[pe] =
            makespanQ > 0
                ? static_cast<double>(e.busy) /
                      static_cast<double>(makespanQ)
                : 0.0;
        chip.pePackets[pe] = static_cast<double>(e.processed);
        chip.peCrFinal[pe] = e.proc->currentCr();
        const core::FreqController *ctl = e.proc->freqController();
        chip.peCrMean[pe] =
            ctl ? ctl->meanCr() : e.proc->currentCr();
        chip.peEpochs[pe] =
            ctl ? static_cast<double>(ctl->epochs()) : 0.0;
        chip.peStepsUp[pe] =
            ctl ? static_cast<double>(ctl->clockUps()) : 0.0;
        chip.peStepsDown[pe] =
            ctl ? static_cast<double>(ctl->clockDowns()) : 0.0;
    }
    return run;
}

} // namespace

ChipRun
runChipGolden(const core::AppFactory &factory,
              const core::ExperimentConfig &config, const NpuConfig &npu)
{
    ChipRun run = runChipOnce(factory, config, npu, true, 0, nullptr);
    CLUMSY_ASSERT(!run.merged.fatal, "golden chip run must not die");
    return run;
}

ChipRun
runChipTrial(const core::AppFactory &factory,
             const core::ExperimentConfig &config, const NpuConfig &npu,
             unsigned trial, const ChipRun &golden)
{
    ChipRun run =
        runChipOnce(factory, config, npu, false, trial, &golden);
    // Faulty trials don't need their frames again: comparison against
    // golden already happened per completion.
    run.recorders.clear();
    run.completions.clear();
    return run;
}

ChipStreamResult
runChipStream(const core::AppFactory &factory,
              const core::ExperimentConfig &config, const NpuConfig &npu,
              bool golden, unsigned trial, const ChipEnv &env)
{
    ChipRun run = runChipOnce(factory, config, npu, golden, trial,
                              nullptr, /*stream=*/true, env);
    ChipStreamResult result;
    result.merged = std::move(run.merged);
    result.chip = std::move(run.chip);
    result.peDigests.reserve(run.recorders.size());

    // Fold (digest, packet count) per engine, in PE order. Engines own
    // their packets regardless of chip-jobs, so the fold is identical
    // for every worker count.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto fold = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const core::ValueRecorder &rec : run.recorders) {
        result.peDigests.push_back(rec.digest());
        fold(rec.digest());
        fold(rec.packetCount());
    }
    result.valueDigest = h;
    return result;
}

ChipMetrics
averageChipMetrics(const std::vector<ChipMetrics> &runs)
{
    CLUMSY_ASSERT(!runs.empty(), "need at least one chip run");
    ChipMetrics avg;
    avg.loadImbalance = 0.0;
    avg.peUtilization.assign(runs.front().peUtilization.size(), 0.0);
    avg.pePackets.assign(runs.front().pePackets.size(), 0.0);
    avg.peL2Hits.assign(runs.front().peL2Hits.size(), 0.0);
    avg.peL2Misses.assign(runs.front().peL2Misses.size(), 0.0);
    avg.peCrFinal.assign(runs.front().peCrFinal.size(), 0.0);
    avg.peCrMean.assign(runs.front().peCrMean.size(), 0.0);
    avg.peEpochs.assign(runs.front().peEpochs.size(), 0.0);
    avg.peStepsUp.assign(runs.front().peStepsUp.size(), 0.0);
    avg.peStepsDown.assign(runs.front().peStepsDown.size(), 0.0);
    for (const ChipMetrics &m : runs) {
        avg.makespanCycles += m.makespanCycles;
        avg.throughputPps += m.throughputPps;
        avg.loadImbalance += m.loadImbalance;
        avg.queueOccMean += m.queueOccMean;
        avg.queueOccMax += m.queueOccMax;
        avg.dropsQueueFull += m.dropsQueueFull;
        avg.dropsDeadPe += m.dropsDeadPe;
        avg.backpressureStalls += m.backpressureStalls;
        avg.l2PortWaits += m.l2PortWaits;
        avg.l2PortWaitCycles += m.l2PortWaitCycles;
        avg.crossEngineHits += m.crossEngineHits;
        avg.crossEngineHitFraction += m.crossEngineHitFraction;
        avg.l2EvictionsByOther += m.l2EvictionsByOther;
        avg.mshrMerges += m.mshrMerges;
        avg.ingressDrops += m.ingressDrops;
        avg.dramRequests += m.dramRequests;
        avg.dramStallCycles += m.dramStallCycles;
        avg.chipEdf += m.chipEdf;
        for (std::size_t i = 0; i < avg.peUtilization.size(); ++i)
            avg.peUtilization[i] += m.peUtilization[i];
        for (std::size_t i = 0; i < avg.pePackets.size(); ++i)
            avg.pePackets[i] += m.pePackets[i];
        for (std::size_t i = 0; i < avg.peL2Hits.size(); ++i)
            avg.peL2Hits[i] += m.peL2Hits[i];
        for (std::size_t i = 0; i < avg.peL2Misses.size(); ++i)
            avg.peL2Misses[i] += m.peL2Misses[i];
        for (std::size_t i = 0; i < avg.peCrFinal.size(); ++i)
            avg.peCrFinal[i] += m.peCrFinal[i];
        for (std::size_t i = 0; i < avg.peCrMean.size(); ++i)
            avg.peCrMean[i] += m.peCrMean[i];
        for (std::size_t i = 0; i < avg.peEpochs.size(); ++i)
            avg.peEpochs[i] += m.peEpochs[i];
        for (std::size_t i = 0; i < avg.peStepsUp.size(); ++i)
            avg.peStepsUp[i] += m.peStepsUp[i];
        for (std::size_t i = 0; i < avg.peStepsDown.size(); ++i)
            avg.peStepsDown[i] += m.peStepsDown[i];
    }
    const double n = static_cast<double>(runs.size());
    avg.makespanCycles /= n;
    avg.throughputPps /= n;
    avg.loadImbalance /= n;
    avg.queueOccMean /= n;
    avg.queueOccMax /= n;
    avg.dropsQueueFull /= n;
    avg.dropsDeadPe /= n;
    avg.backpressureStalls /= n;
    avg.l2PortWaits /= n;
    avg.l2PortWaitCycles /= n;
    avg.crossEngineHits /= n;
    avg.crossEngineHitFraction /= n;
    avg.l2EvictionsByOther /= n;
    avg.mshrMerges /= n;
    avg.ingressDrops /= n;
    avg.dramRequests /= n;
    avg.dramStallCycles /= n;
    avg.chipEdf /= n;
    for (double &v : avg.peUtilization)
        v /= n;
    for (double &v : avg.pePackets)
        v /= n;
    for (double &v : avg.peL2Hits)
        v /= n;
    for (double &v : avg.peL2Misses)
        v /= n;
    for (double &v : avg.peCrFinal)
        v /= n;
    for (double &v : avg.peCrMean)
        v /= n;
    for (double &v : avg.peEpochs)
        v /= n;
    for (double &v : avg.peStepsUp)
        v /= n;
    for (double &v : avg.peStepsDown)
        v /= n;
    return avg;
}

ChipExperimentResult
runChipExperiment(const core::AppFactory &factory,
                  const core::ExperimentConfig &config,
                  const NpuConfig &npu)
{
    CLUMSY_ASSERT(config.trials >= 1, "need at least one trial");
    std::string app;
    {
        auto probe = factory();
        app = probe->name();
    }

    const ChipRun golden = runChipGolden(factory, config, npu);

    // Horizon-stepped trial fan-out: faulty trials are mutually
    // independent (own processors, own fault streams, read-only view
    // of the golden run), so with chip-jobs > 1 they run concurrently,
    // each writing its own runs[t] slot. Trials keep their insides
    // serial — the trial grain already fills the budget — and the
    // reduction below walks slots in trial order, so the aggregate is
    // byte-identical to the serial loop for every chip-jobs value.
    const unsigned jobs =
        std::min<unsigned>(resolveChipJobs(npu.chipJobs), config.trials);
    NpuConfig trialNpu = npu;
    if (jobs > 1)
        trialNpu.chipJobs = 1;
    std::vector<ChipRun> runs(config.trials);
    const WorkStealingPool pool(jobs);
    pool.run(config.trials, [&](std::size_t t) {
        runs[t] = runChipTrial(factory, config, trialNpu,
                               static_cast<unsigned>(t), golden);
    });

    std::vector<core::RunMetrics> trials;
    std::vector<ChipMetrics> chips;
    trials.reserve(config.trials);
    chips.reserve(config.trials);
    for (unsigned t = 0; t < config.trials; ++t) {
        trials.push_back(std::move(runs[t].merged));
        chips.push_back(std::move(runs[t].chip));
    }

    ChipExperimentResult result;
    result.core = core::aggregateTrials(
        app, core::GoldenRecord{golden.merged, {}}, trials);
    result.goldenChip = golden.chip;
    result.faultyChip = averageChipMetrics(chips);
    result.goldenQueueOcc = golden.queueOcc;
    return result;
}

} // namespace clumsy::npu
