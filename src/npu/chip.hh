/**
 * @file
 * The multi-engine chip model: N clumsy processing engines — each a
 * private core::ClumsyProcessor with its own L1s, fault injector and
 * (optional) frequency controller — behind one shared L2 port, fed by
 * a dispatcher from a single packet trace.
 *
 * Time is advanced by a deterministic step loop: engines run whole
 * packets, and the engine with the smallest (local data time, engine
 * id) runs next, so results are byte-identical across hosts and
 * repeat invocations. A one-engine chip at the default knobs
 * (dvs=fault, mshrs=1) is bit-identical to the single-core harness
 * (core/experiment.hh): same processor config, same fault seeds, same
 * packet order, and the shared L2 port's service times are covered by
 * the access's own L2 latency so a lone engine never queues.
 *
 * With dvs=queue the chip takes over the epoch cadence (per-PE DVS):
 * every FreqControllerConfig::epochPackets completed packets
 * chip-wide, every alive engine's queue-biased controller decides on
 * its own fault history and its own mean input-queue pressure, so
 * per-engine Cr trajectories diverge under imbalanced load.
 *
 * Golden-vs-faulty comparison stays per-packet even though engines
 * complete packets out of trace order: each run records, per trace
 * sequence number, which engine processed the packet and which of
 * that engine's recorder frames holds its marked values, and faulty
 * frames are compared against the golden frame of the *same sequence
 * number* regardless of where either ran.
 */

#ifndef CLUMSY_NPU_CHIP_HH
#define CLUMSY_NPU_CHIP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "core/experiment.hh"
#include "npu/config.hh"

namespace clumsy::dram
{
class DramGateway;
}

namespace clumsy::traffic
{
class PacketSource;
}

namespace clumsy::npu
{

/**
 * The chip run's surroundings when it is one of several on a line
 * card (src/linecard/). The default-constructed env is the standalone
 * chip: own arrival stream, flat DRAM penalty, engine ids starting at
 * zero, no horizon feed — byte-identical to the pre-env model.
 */
struct ChipEnv
{
    /**
     * Arrival stream override. Null = the chip builds its own source
     * from the experiment's trace config; the line card passes each
     * chip its filtered share of the card-wide stream (packets keep
     * their global sequence numbers and arrival times).
     */
    traffic::PacketSource *source = nullptr;

    /** Modeled DRAM behind the shared L2 port (null = flat penalty). */
    dram::DramGateway *dram = nullptr;

    /**
     * This chip's offset into the card's physical DRAM address space
     * (chip c: c * ProcessorConfig::memBytes), added to every L2 line
     * base before it reaches the gateway.
     */
    std::uint64_t dramSalt = 0;

    /**
     * Global id of this chip's engine 0 (chip c of a card:
     * c * peCount). Salts per-engine fault seeds and fault-map
     * generation so chips age differently; zero preserves the
     * standalone chip's seeds exactly.
     */
    unsigned engineSaltBase = 0;

    /**
     * Horizon feed for the card's conservative parallelism: called at
     * the top of every step with a monotone lower bound (chip quanta)
     * on the time of any future DRAM request this chip can make.
     * Null = not tracked (no per-step O(P) scan).
     */
    std::function<void(Quanta)> progress;
};

/**
 * Chip-level quantities of one run. All fields are doubles — counters
 * included — so trial runs average componentwise without a second
 * struct.
 */
struct ChipMetrics
{
    /** Wall-clock of the data plane: max engine data time, cycles. */
    double makespanCycles = 0.0;

    /** Completed packets per second at the modeled clock. */
    double throughputPps = 0.0;

    /** Max engine busy time over mean engine busy time (1 = even). */
    double loadImbalance = 1.0;

    /** Mean queue depth observed at enqueue, over all engines. */
    double queueOccMean = 0.0;

    /** Deepest any engine queue ever got. */
    double queueOccMax = 0.0;

    double dropsQueueFull = 0.0;     ///< drops in drop mode
    double dropsDeadPe = 0.0;        ///< packets for dead engines
    double backpressureStalls = 0.0; ///< arrival stalls (backpressure)

    double l2PortWaits = 0.0;      ///< accesses that found the port busy
    double l2PortWaitCycles = 0.0; ///< total port queuing, cycles

    /**
     * Ingress-FIFO drops (NpuConfig::ingressCapacity > 0; zero and
     * inert otherwise) and modeled-DRAM demand (ChipEnv::dram
     * attached; zero and inert otherwise — averages mix cleanly).
     */
    double ingressDrops = 0.0;
    double dramRequests = 0.0;    ///< line transfers sent to DRAM
    double dramStallCycles = 0.0; ///< stall beyond the flat penalty

    /**
     * Shared-L2 observability (NpuConfig::l2 == Shared; all zero in
     * private mode, so averages mix cleanly across modes):
     * data-plane hits on a shared frame another engine's refill
     * installed, the fraction of all data-plane L2 hits they make up,
     * lines of one engine evicted by another engine's fill, and port
     * requests that folded into another engine's in-flight transfer.
     */
    double crossEngineHits = 0.0;
    double crossEngineHitFraction = 0.0;
    double l2EvictionsByOther = 0.0;
    double mshrMerges = 0.0;

    /**
     * Chip-level ED2F2: per-packet energy times the square of the
     * *makespan*-based per-packet delay (parallelism helps delay, not
     * energy) times fallibility squared.
     */
    double chipEdf = 0.0;

    std::vector<double> peUtilization; ///< busy/makespan per engine
    std::vector<double> pePackets;     ///< packets completed per engine

    /** Per-engine data-plane L2 demand hits/misses (both L2 modes). */
    std::vector<double> peL2Hits;
    std::vector<double> peL2Misses;

    /**
     * Per-engine Cr trajectory and epoch-decision counters (per-PE
     * DVS observability). Engines with no dynamic controller (golden
     * runs, dvs=static, static operating points) report their fixed
     * Cr and zero decisions.
     */
    std::vector<double> peCrFinal;   ///< Cr at end of run per engine
    std::vector<double> peCrMean;    ///< residency-weighted mean Cr
    std::vector<double> peEpochs;    ///< epoch decisions per engine
    std::vector<double> peStepsUp;   ///< clock-up decisions per engine
    std::vector<double> peStepsDown; ///< clock-down decisions per engine
};

/** Everything one chip run (golden or one faulty trial) produced. */
struct ChipRun
{
    /**
     * The engines' metrics merged into single-core form so the
     * experiment aggregation (core::aggregateTrials) applies
     * unchanged. For a one-engine chip this equals the single-core
     * run's metrics bit for bit.
     */
    core::RunMetrics merged;

    ChipMetrics chip;

    /** Queue-depth distribution merged across engines. */
    Histogram queueOcc{0.0, 1.0, 1};

    /** Per-engine marked-value frames (golden runs keep these). */
    std::vector<core::ValueRecorder> recorders;

    /** trace seq -> (engine, frame index in that engine's recorder). */
    std::map<std::uint64_t, std::pair<unsigned, std::size_t>>
        completions;
};

/** Run the chip fault-free; panics if any engine dies. */
ChipRun runChipGolden(const core::AppFactory &factory,
                      const core::ExperimentConfig &config,
                      const NpuConfig &npu);

/** Run faulty trial @p trial against a golden chip run. */
ChipRun runChipTrial(const core::AppFactory &factory,
                     const core::ExperimentConfig &config,
                     const NpuConfig &npu, unsigned trial,
                     const ChipRun &golden);

/** Aggregated outcome of golden + trials on one chip. */
struct ChipExperimentResult
{
    /** Single-core-form aggregates over the merged metrics. */
    core::ExperimentResult core;

    ChipMetrics goldenChip;
    ChipMetrics faultyChip; ///< componentwise mean over trials

    /** Golden run's merged queue-depth distribution. */
    Histogram goldenQueueOcc{0.0, 1.0, 1};
};

/** Componentwise mean, accumulated in the given (trial) order. */
ChipMetrics averageChipMetrics(const std::vector<ChipMetrics> &runs);

/**
 * Outcome of one O(1)-memory streaming chip run: the usual merged and
 * chip-level metrics, plus the recorders' rolling digests in place of
 * stored frames. Two runs that processed identical packets identically
 * produce equal valueDigest values.
 */
struct ChipStreamResult
{
    core::RunMetrics merged;
    ChipMetrics chip;

    /** Order-independent-of-jobs fold of the per-engine digests. */
    std::uint64_t valueDigest = 0;

    /** Per-engine rolling recorder digests (PE order). */
    std::vector<std::uint64_t> peDigests;
};

/**
 * One chip run in streaming mode: recorders run in Digest mode and no
 * per-sequence completion map is kept, so peak memory is independent
 * of config.numPackets — the form bench/traffic_scale uses for
 * 10M-packet runs. The step loop, engine scheduling, metrics and the
 * packet stream are exactly runChipGolden/runChipTrial's; only the
 * O(packets) bookkeeping is gone, which is why golden-vs-faulty
 * comparison is unavailable here (use the digests to check identity,
 * not to localize divergence).
 */
ChipStreamResult runChipStream(const core::AppFactory &factory,
                               const core::ExperimentConfig &config,
                               const NpuConfig &npu, bool golden = true,
                               unsigned trial = 0,
                               const ChipEnv &env = {});

/**
 * Golden + trials on one chip. With NpuConfig::chipJobs > 1 the
 * engine bring-up horizon and the faulty-trial fan-out run on a
 * worker pool (the factory must then be callable from multiple
 * threads; the stock apps::appFactory is); the result is byte-
 * identical to the serial run for every chipJobs value.
 */
ChipExperimentResult runChipExperiment(const core::AppFactory &factory,
                                       const core::ExperimentConfig &config,
                                       const NpuConfig &npu);

} // namespace clumsy::npu

#endif // CLUMSY_NPU_CHIP_HH
