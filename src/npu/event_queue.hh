/**
 * @file
 * Indexed binary min-heap over the chip's engines, keyed on
 * (next event time, engine id).
 *
 * The chip's step loop repeatedly needs the alive engine holding work
 * with the smallest (local data time, engine id) pair. A linear scan
 * is O(P) per micro-step; this queue makes it O(log P) while keeping
 * the *same total order*: keys compare by time first and engine id
 * second, so ties break toward the lowest engine id exactly as the
 * scan's strict less-than did. Membership is explicit — an engine is
 * in the queue iff it is alive and has queued packets — and every
 * mutation (push after an enqueue, update after a packet, erase on
 * drain or death) is keyed by engine id through a position index, so
 * decrease-key and increase-key are both O(log P).
 *
 * Purely serial data structure: the step loop that uses it is the
 * deterministic schedule itself and never runs concurrently (see
 * DESIGN.md on horizon-stepped parallelism for why).
 */

#ifndef CLUMSY_NPU_EVENT_QUEUE_HH
#define CLUMSY_NPU_EVENT_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace clumsy::npu
{

/** Min-heap of engine ids ordered by (key, id), with decrease-key. */
class EngineEventQueue
{
  public:
    /** @param engines  engine ids run [0, engines). */
    explicit EngineEventQueue(unsigned engines)
        : pos_(engines, kAbsent), key_(engines, 0)
    {
        heap_.reserve(engines);
    }

    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /** Is engine @p pe currently queued? */
    bool contains(unsigned pe) const { return pos_[pe] != kAbsent; }

    /** The queued engine with the smallest (key, id). */
    unsigned top() const
    {
        CLUMSY_ASSERT(!heap_.empty(), "top() on an empty event queue");
        return heap_.front();
    }

    /** The top engine's key. */
    Quanta topKey() const { return key_[top()]; }

    /** The key engine @p pe was queued with. */
    Quanta keyOf(unsigned pe) const
    {
        CLUMSY_ASSERT(contains(pe), "keyOf() on an absent engine");
        return key_[pe];
    }

    /** Queue absent engine @p pe with @p key. */
    void push(unsigned pe, Quanta key)
    {
        CLUMSY_ASSERT(!contains(pe), "push() on a queued engine");
        key_[pe] = key;
        pos_[pe] = heap_.size();
        heap_.push_back(pe);
        siftUp(pos_[pe]);
    }

    /**
     * Re-key queued engine @p pe (decrease- or increase-key; the
     * element sifts whichever way the new key demands).
     */
    void update(unsigned pe, Quanta key)
    {
        CLUMSY_ASSERT(contains(pe), "update() on an absent engine");
        key_[pe] = key;
        const std::size_t i = siftUp(pos_[pe]);
        siftDown(i);
    }

    /** Remove queued engine @p pe. */
    void erase(unsigned pe)
    {
        CLUMSY_ASSERT(contains(pe), "erase() on an absent engine");
        const std::size_t i = pos_[pe];
        const std::size_t last = heap_.size() - 1;
        if (i != last) {
            heap_[i] = heap_[last];
            pos_[heap_[i]] = i;
        }
        heap_.pop_back();
        pos_[pe] = kAbsent;
        if (i < heap_.size()) {
            const std::size_t j = siftUp(i);
            siftDown(j);
        }
    }

  private:
    static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

    std::vector<unsigned> heap_;    ///< engine ids, heap-ordered
    std::vector<std::size_t> pos_;  ///< engine id -> index in heap_
    std::vector<Quanta> key_;       ///< engine id -> queued key

    /** (key, id) lexicographic order — the scan's tie-break. */
    bool before(unsigned a, unsigned b) const
    {
        return key_[a] < key_[b] || (key_[a] == key_[b] && a < b);
    }

    std::size_t siftUp(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                break;
            std::swap(heap_[i], heap_[parent]);
            pos_[heap_[i]] = i;
            pos_[heap_[parent]] = parent;
            i = parent;
        }
        return i;
    }

    void siftDown(std::size_t i)
    {
        for (;;) {
            const std::size_t left = 2 * i + 1;
            const std::size_t right = left + 1;
            std::size_t best = i;
            if (left < heap_.size() && before(heap_[left], heap_[best]))
                best = left;
            if (right < heap_.size() &&
                before(heap_[right], heap_[best]))
                best = right;
            if (best == i)
                return;
            std::swap(heap_[i], heap_[best]);
            pos_[heap_[i]] = i;
            pos_[heap_[best]] = best;
            i = best;
        }
    }
};

} // namespace clumsy::npu

#endif // CLUMSY_NPU_EVENT_QUEUE_HH
