#include "npu/shared_l2.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace clumsy::npu
{

Quanta
SharedL2Port::requestPort(unsigned requester, Quanta endTime,
                          unsigned l2Accesses, unsigned l2Misses,
                          const mem::L2LineUse *lines,
                          unsigned lineCount)
{
    CLUMSY_ASSERT(l2Misses <= l2Accesses,
                  "more L2 misses than port uses");
    const Quanta service =
        static_cast<Quanta>(l2Accesses - l2Misses) * hitService_ +
        static_cast<Quanta>(l2Misses) * missService_;
    stats_.inc("requests");
    stats_.inc("port_uses", l2Accesses);
    if (service == 0)
        return 0;

    // The requester's own L2 latency (>= service, enforced by
    // NpuConfig::validate) is already inside endTime, so its port-use
    // window is [endTime - service, endTime). The transfer occupies
    // whichever MSHR frees first; if even that one is still busy with
    // an earlier transfer, the window slides back by the difference
    // and the requester stalls for it. For a lone engine endTime is
    // non-decreasing and each window fits before the next access
    // begins, so no slot ever passes start and the delay is always
    // zero — the private-L2 single-core timing exactly, at any K.
    const Quanta start = endTime - service;
    auto slot = std::min_element(slots_.begin(), slots_.end());
    Quanta begin = start > *slot ? start : *slot;

    // MSHR merging (shared L2 contents only — a private backend marks
    // no line shareable): a hit on a shared frame whose DRAM transfer
    // another engine started, and which is still in flight at this
    // access's start, folds into that transfer's MSHR: the hit cannot
    // complete before the data has actually arrived.
    for (unsigned i = 0; i < lineCount; ++i) {
        if (lines[i].miss || !lines[i].shareable)
            continue;
        const auto it = inflight_.find(lines[i].base);
        if (it == inflight_.end() || it->second.requester == requester)
            continue;
        if (it->second.end > begin) {
            begin = it->second.end;
            stats_.inc("mshr_merges");
        }
    }

    const Quanta delay = begin - start;
    *slot = begin + service;
    if (delay > 0) {
        stats_.inc("contended");
        stats_.inc("wait_quanta", static_cast<std::uint64_t>(delay));
    }

    // Modeled DRAM behind the port (line card): every miss line is one
    // DRAM line transfer, issued at the moment the flat-penalty model
    // would have started the DRAM portion of this (possibly
    // port-delayed) access. Transfers to different banks overlap, so
    // the requester stalls for the slowest line only. With no DRAM
    // attached every extra is zero and the pre-DRAM timing stands
    // byte for byte.
    //
    // Record this access's shareable DRAM transfers as merge targets.
    // The per-line completion time is approximated by the whole
    // access's port window end (plus that line's DRAM extra) —
    // conservative by at most the access's other uses' service.
    Quanta dramExtra = 0;
    const Quanta dramReq = *slot - dramFlat_;
    for (unsigned i = 0; i < lineCount; ++i) {
        if (!lines[i].miss)
            continue;
        Quanta extra = 0;
        if (dram_ != nullptr) {
            extra = dram_->request(dramSalt_ + lines[i].base, dramReq);
            dramExtra = std::max(dramExtra, extra);
            stats_.inc("dram_requests");
        }
        if (!lines[i].shareable)
            continue;
        inflight_[lines[i].base] = Inflight{requester, *slot + extra};
    }
    if (dramExtra > 0)
        stats_.inc("dram_extra_quanta",
                    static_cast<std::uint64_t>(dramExtra));

    // Bound the table: entries whose transfer has completed relative
    // to the current window can never merge again.
    if (inflight_.size() > 4096) {
        for (auto it = inflight_.begin(); it != inflight_.end();) {
            if (it->second.end <= begin)
                it = inflight_.erase(it);
            else
                ++it;
        }
    }
    return delay + dramExtra;
}

Quanta
SharedL2Port::busyUntil() const
{
    return *std::max_element(slots_.begin(), slots_.end());
}

SharedL2Cache::SharedL2Cache(const mem::CacheGeometry &geom,
                             mem::CheckCodec codec, SimSize memBytes,
                             unsigned peCount)
    : cache_("l2", geom, codec),
      memBytes_(memBytes),
      lineBytes_(geom.lineBytes),
      stride_(memBytes),
      peCount_(peCount),
      stores_(peCount, nullptr),
      energies_(peCount, nullptr),
      views_(peCount),
      engineStats_(peCount),
      diverged_(memBytes / geom.lineBytes, 0)
{
    CLUMSY_ASSERT(peCount >= 1, "shared L2 needs at least one engine");
    CLUMSY_ASSERT(memBytes % geom.lineBytes == 0,
                  "DRAM size must be a multiple of the L2 line size");
    // Coloring must preserve the set index: the stride has to be a
    // multiple of the L2 set span (sets * lineBytes).
    const SimSize setSpan = geom.sets() * geom.lineBytes;
    CLUMSY_ASSERT(stride_ % setSpan == 0,
                  "coloring stride must be a multiple of the set span");
    // Colored keys addr + stride*(pe+1) must fit in SimAddr.
    CLUMSY_ASSERT((static_cast<std::uint64_t>(peCount) + 1) * stride_ <=
                      (std::uint64_t{1} << 32),
                  "too many engines for the coloring stride");
}

SharedL2Cache::View *
SharedL2Cache::attach(unsigned pe, mem::BackingStore *store,
                      energy::EnergyAccount *energy)
{
    CLUMSY_ASSERT(pe < peCount_, "engine id out of range");
    CLUMSY_ASSERT(store != nullptr && store->size() == memBytes_,
                  "engine store size mismatch");
    stores_[pe] = store;
    energies_[pe] = energy;
    views_[pe].bind(this, pe);
    return &views_[pe];
}

void
SharedL2Cache::seedDivergence(const WorkStealingPool *pool)
{
    for (unsigned pe = 0; pe < peCount_; ++pe)
        CLUMSY_ASSERT(stores_[pe] != nullptr,
                      "seedDivergence before every engine attached");
    if (peCount_ == 1)
        return;

    // Does any engine's copy of the line at @p base differ from
    // engine 0's? Pure reads: stores are only inspected, never
    // touched, and the divergence state is not consulted (nothing is
    // diverged yet when seeding runs in the setup sequence).
    auto lineDiffers = [this](SimAddr base, std::uint8_t *ref,
                              std::uint8_t *buf) {
        stores_[0]->readBlock(base, ref, lineBytes_);
        for (unsigned pe = 1; pe < peCount_; ++pe) {
            stores_[pe]->readBlock(base, buf, lineBytes_);
            if (std::memcmp(ref, buf, lineBytes_) != 0)
                return true;
        }
        return false;
    };

    const std::size_t lines =
        static_cast<std::size_t>(memBytes_ / lineBytes_);
    const unsigned jobs =
        pool ? static_cast<unsigned>(std::min<std::size_t>(
                   pool->workers(), lines))
             : 1;

    if (jobs <= 1) {
        std::vector<std::uint8_t> ref(lineBytes_);
        std::vector<std::uint8_t> buf(lineBytes_);
        for (SimAddr base = 0; base < memBytes_; base += lineBytes_) {
            if (diverged(base))
                continue;
            if (lineDiffers(base, ref.data(), buf.data())) {
                markDiverged(base);
                stats_.inc("seeded_diverged");
            }
        }
        return;
    }

    // Fan the diff out over contiguous, disjoint line ranges; every
    // job only reads and records its mismatches in its own slot. The
    // marks are applied at the barrier in ascending line order — the
    // order the serial loop discovers them in — so bitmap, count and
    // stats come out byte-identical.
    std::vector<std::vector<SimAddr>> found(jobs);
    const std::size_t chunk = (lines + jobs - 1) / jobs;
    pool->run(jobs, [&](std::size_t job) {
        std::vector<std::uint8_t> ref(lineBytes_);
        std::vector<std::uint8_t> buf(lineBytes_);
        const std::size_t lo = job * chunk;
        const std::size_t hi = std::min(lines, lo + chunk);
        for (std::size_t line = lo; line < hi; ++line) {
            const SimAddr base = static_cast<SimAddr>(line) * lineBytes_;
            if (diverged(base))
                continue;
            if (lineDiffers(base, ref.data(), buf.data()))
                found[job].push_back(base);
        }
    });
    for (const std::vector<SimAddr> &bases : found) {
        for (const SimAddr base : bases) {
            markDiverged(base);
            stats_.inc("seeded_diverged");
        }
    }
}

void
SharedL2Cache::noteDirtyLines(const mem::Cache &privateL2)
{
    for (const SimAddr base : privateL2.dirtyLineBases())
        markDiverged(base);
}

void
SharedL2Cache::migrateFrom(unsigned pe, const mem::Cache &privateL2)
{
    std::vector<std::uint8_t> buf(lineBytes_);
    for (const SimAddr base : privateL2.residentLineBasesByLru()) {
        const bool dirty = privateL2.isDirty(base);
        CLUMSY_ASSERT(!dirty || diverged(base),
                      "dirty line migrating into a shared frame");
        if (!diverged(base) && cache_.contains(base)) {
            // Another engine already installed this frame; this
            // engine's copy is byte-identical (non-diverged means
            // clean everywhere and store-identical), so nothing moves.
            continue;
        }
        privateL2.readLine(base, buf.data());
        fill(pe, base, buf.data());
        if (dirty)
            cache_.setDirty(keyFor(pe, base));
        stats_.inc("migrated_lines");
    }
}

void
SharedL2Cache::markDiverged(SimAddr base)
{
    char &flag = diverged_[base / lineBytes_];
    if (flag)
        return;
    flag = 1;
    ++divergedCount_;
    stats_.inc("diverged_lines");
}

bool
SharedL2Cache::lookup(unsigned pe, SimAddr addr)
{
    const SimAddr base = lineBase(addr);
    const bool hit = cache_.lookup(keyFor(pe, addr));
    if (!hit) {
        ++engineStats_[pe].misses;
        return false;
    }
    ++engineStats_[pe].hits;
    if (!diverged(base)) {
        const auto it = fillOwner_.find(base);
        CLUMSY_ASSERT(it != fillOwner_.end(),
                      "shared frame without a fill owner");
        if (it->second != pe)
            ++engineStats_[pe].crossHits;
    }
    return true;
}

void
SharedL2Cache::handleVictim(unsigned pe,
                            const mem::Cache::Evicted &victim)
{
    if (!victim.valid)
        return;
    const SimAddr q = victim.base / stride_;
    if (q == 0) {
        // Shared frame: always clean (every engine's store already
        // holds the bytes), so eviction is free.
        CLUMSY_ASSERT(!victim.dirty, "dirty shared frame");
        const auto it = fillOwner_.find(victim.base);
        CLUMSY_ASSERT(it != fillOwner_.end(),
                      "evicted shared frame without a fill owner");
        if (it->second != pe)
            ++engineStats_[it->second].evictedByOther;
        fillOwner_.erase(it);
        return;
    }
    // Colored line: route the writeback to the OWNER's store — the
    // requester's store may hold different bytes under this address.
    const unsigned owner = static_cast<unsigned>(q - 1);
    CLUMSY_ASSERT(owner < peCount_, "victim key decodes to no engine");
    if (victim.dirty) {
        const SimAddr dramBase = victim.base - stride_ * (q);
        stores_[owner]->writeBlock(
            dramBase, victim.data.data(),
            static_cast<SimSize>(victim.data.size()));
        if (energies_[owner])
            energies_[owner]->addMemAccess();
        stats_.inc("writebacks_to_mem");
    }
    if (owner != pe)
        ++engineStats_[owner].evictedByOther;
}

void
SharedL2Cache::fill(unsigned pe, SimAddr base, const std::uint8_t *data)
{
    const mem::Cache::Evicted victim =
        cache_.fill(keyFor(pe, base), data);
    handleVictim(pe, victim);
    if (!diverged(base))
        fillOwner_[base] = pe;
}

bool
SharedL2Cache::contains(unsigned pe, SimAddr addr) const
{
    return cache_.contains(keyFor(pe, addr));
}

void
SharedL2Cache::convertToColored(unsigned pe, SimAddr base)
{
    CLUMSY_ASSERT(cache_.contains(base),
                  "shared->colored conversion of an absent frame");
    CLUMSY_ASSERT(!cache_.isDirty(base), "dirty shared frame");
    // The stride preserves the set index, so the colored key lives in
    // the same set: the line is re-tagged in place, keeping its LRU
    // position, so a one-engine shared chip ages lines exactly like a
    // private one.
    cache_.retag(base, base + stride_ * (SimAddr{pe} + 1));
    fillOwner_.erase(base);
    markDiverged(base);
    stats_.inc("shared_to_colored");
}

void
SharedL2Cache::writeRange(unsigned pe, SimAddr addr,
                          const std::uint8_t *src, SimSize len,
                          bool markDirty)
{
    const SimAddr base = lineBase(addr);
    // A write makes this engine's copy differ from the others': a
    // shared frame must first become this engine's colored line.
    if (!diverged(base))
        convertToColored(pe, base);
    cache_.writeRange(addr + stride_ * (SimAddr{pe} + 1), src, len,
                      markDirty);
}

void
SharedL2Cache::flushLine(unsigned pe, SimAddr addr)
{
    const SimAddr base = lineBase(addr);
    if (!diverged(base)) {
        // DMA is about to rewrite this engine's DRAM bytes under the
        // line, so the stores will differ afterwards: diverge now.
        // The shared frame (when present) is clean — drop it; other
        // engines refill their colored copies from their own stores.
        if (cache_.contains(base)) {
            CLUMSY_ASSERT(!cache_.isDirty(base), "dirty shared frame");
            cache_.invalidate(base);
            fillOwner_.erase(base);
        }
        markDiverged(base);
        return;
    }
    const SimAddr key = base + stride_ * (SimAddr{pe} + 1);
    if (!cache_.contains(key))
        return;
    if (cache_.isDirty(key)) {
        std::vector<std::uint8_t> buf(lineBytes_);
        cache_.readLine(key, buf.data());
        stores_[pe]->writeBlock(base, buf.data(), lineBytes_);
    }
    cache_.invalidate(key);
}

std::uint32_t
SharedL2Cache::readWordRaw(unsigned pe, SimAddr addr) const
{
    return cache_.readWordRaw(keyFor(pe, addr));
}

} // namespace clumsy::npu
