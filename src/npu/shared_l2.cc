#include "npu/shared_l2.hh"

#include <algorithm>

#include "common/logging.hh"

namespace clumsy::npu
{

Quanta
SharedL2Port::requestPort(unsigned requester, Quanta endTime,
                          unsigned l2Accesses, unsigned l2Misses)
{
    (void)requester; // FIFO: arrival order is all that matters
    CLUMSY_ASSERT(l2Misses <= l2Accesses,
                  "more L2 misses than port uses");
    const Quanta service =
        static_cast<Quanta>(l2Accesses - l2Misses) * hitService_ +
        static_cast<Quanta>(l2Misses) * missService_;
    stats_.inc("requests");
    stats_.inc("port_uses", l2Accesses);
    if (service == 0)
        return 0;

    // The requester's own L2 latency (>= service, enforced by
    // NpuConfig::validate) is already inside endTime, so its port-use
    // window is [endTime - service, endTime). The transfer occupies
    // whichever MSHR frees first; if even that one is still busy with
    // an earlier transfer, the window slides back by the difference
    // and the requester stalls for it. For a lone engine endTime is
    // non-decreasing and each window fits before the next access
    // begins, so no slot ever passes start and the delay is always
    // zero — the private-L2 single-core timing exactly, at any K.
    const Quanta start = endTime - service;
    auto slot = std::min_element(slots_.begin(), slots_.end());
    const Quanta begin = start > *slot ? start : *slot;
    const Quanta delay = begin - start;
    *slot = begin + service;
    if (delay > 0) {
        stats_.inc("contended");
        stats_.inc("wait_quanta", static_cast<std::uint64_t>(delay));
    }
    return delay;
}

Quanta
SharedL2Port::busyUntil() const
{
    return *std::max_element(slots_.begin(), slots_.end());
}

} // namespace clumsy::npu
