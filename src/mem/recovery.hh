/**
 * @file
 * Fault detection / recovery schemes (paper Section 4).
 *
 * The paper evaluates four L1 D-cache configurations:
 *  - NoDetection : no parity; corrupted data flows silently.
 *  - OneStrike   : parity; the first detected fault invalidates the
 *                  block and refetches from L2 (assume write fault).
 *  - TwoStrike   : parity; retry the L1 read once, invalidate on the
 *                  second detection.
 *  - ThreeStrike : parity; two retries before invalidating.
 */

#ifndef CLUMSY_MEM_RECOVERY_HH
#define CLUMSY_MEM_RECOVERY_HH

#include <string>

namespace clumsy::mem
{

/** The four detection/recovery configurations of the paper. */
enum class RecoveryScheme
{
    NoDetection,
    OneStrike,
    TwoStrike,
    ThreeStrike,
};

/** All schemes, in the order the paper's figures present them. */
inline constexpr RecoveryScheme kAllRecoverySchemes[] = {
    RecoveryScheme::NoDetection,
    RecoveryScheme::OneStrike,
    RecoveryScheme::TwoStrike,
    RecoveryScheme::ThreeStrike,
};

/**
 * Way-disable recovery (INTERPLAY-style, see PAPERS.md): once a cache
 * frame has exhausted its strikes `retireThreshold` times, the frame
 * is chronically weak — with a spatially correlated fault map the same
 * cells keep failing at the same addresses — so the frame is retired
 * outright instead of being refetched forever. Retired frames never
 * hold lines again; accesses mapping to a fully retired set are
 * served by the L2 through the normal miss path, which is exactly how
 * the capacity loss is charged. Layered on top of the N-strike
 * schemes; inert under NoDetection (nothing ever strikes out).
 */
struct WayDisablePolicy
{
    /** Strike-outs a frame survives before retirement; 0 = off. */
    unsigned retireThreshold = 0;

    bool enabled() const { return retireThreshold != 0; }

    bool operator==(const WayDisablePolicy &o) const
    {
        return retireThreshold == o.retireThreshold;
    }
};

/** @return true when the scheme uses parity detection. */
bool usesParity(RecoveryScheme scheme);

/**
 * Number of L1 read attempts (initial + retries) before the block is
 * invalidated and refetched from L2. NoDetection never invalidates.
 */
unsigned readAttempts(RecoveryScheme scheme);

/** Human-readable name ("no detection", "one-strike", ...). */
std::string to_string(RecoveryScheme scheme);

/** Parse a name accepted by to_string(); fatal()s on junk. */
RecoveryScheme recoverySchemeFromString(const std::string &name);

} // namespace clumsy::mem

#endif // CLUMSY_MEM_RECOVERY_HH
