/**
 * @file
 * The L2 storage seam of the memory hierarchy.
 *
 * MemHierarchy's L1 stacks (split I/D caches, fault injection, strike
 * recovery) are strictly per-engine, but the unified L2 behind them
 * may be either the engine's own private array (the single-core model
 * of the paper) or one array shared by every engine on a chip
 * (npu::SharedL2Cache). This interface is the seam between the two:
 * the hierarchy performs every L2 operation through an L2Backend and
 * never touches a Cache directly, so swapping backends changes *whose
 * lines an engine can hit* without touching the L1 datapath, the
 * fault machinery, or the timing formulas.
 *
 * The contract mirrors how the hierarchy uses its private L2 today:
 *
 *  - lookup()/fill() implement the demand path. fill() receives the
 *    line read from the *requesting engine's* backing store and is
 *    responsible for victim writeback (a private backend writes dirty
 *    victims to that same store; a shared backend must route each
 *    victim to the store of the engine that owns its contents).
 *  - writeRange() carries L1 writebacks and strike writebacks into
 *    the L2 (always with markDirty, after an ensure).
 *  - flushLine() is the DMA flush: dirty data reaches the owning
 *    store, then the cached copy is dropped.
 *  - readWordRaw()/contains() serve refills, bypass reads and the
 *    untimed peek path.
 *  - sharedFrame() tells the port arbiter whether another engine may
 *    legitimately consume the transfer of this line (MSHR merging);
 *    a private backend answers false for everything.
 */

#ifndef CLUMSY_MEM_L2_BACKEND_HH
#define CLUMSY_MEM_L2_BACKEND_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "energy/chip_energy.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"

namespace clumsy::mem
{

/** Storage behind the hierarchy's L2 operations. */
class L2Backend
{
  public:
    virtual ~L2Backend() = default;

    /** Demand lookup (LRU + hit/miss accounting). */
    virtual bool lookup(SimAddr addr) = 0;

    /**
     * Install the line containing @p base (line-aligned) with data
     * read from the requesting engine's backing store; handle the
     * victim, writing dirty contents back to the store of the engine
     * that owns them.
     */
    virtual void fill(SimAddr base, const std::uint8_t *data) = 0;

    /** Presence probe without LRU/stat side effects. */
    virtual bool contains(SimAddr addr) const = 0;

    /**
     * Flush the line containing @p addr for DMA: write dirty contents
     * to the owning store, then invalidate the cached copy. No-op
     * when absent.
     */
    virtual void flushLine(SimAddr addr) = 0;

    /** Raw stored word; the line must be present. */
    virtual std::uint32_t readWordRaw(SimAddr addr) const = 0;

    /**
     * Overwrite bytes inside a present line (L1/strike writebacks,
     * always markDirty), regenerating check bits.
     */
    virtual void writeRange(SimAddr addr, const std::uint8_t *src,
                            SimSize len, bool markDirty) = 0;

    /**
     * May another engine hit this line's in-flight transfer? Feeds
     * mem::L2LineUse::shareable for the port arbiter's MSHR merging.
     */
    virtual bool sharedFrame(SimAddr addr) const = 0;

    /** The underlying array (stats/geometry inspection). */
    virtual const Cache &cache() const = 0;
};

/**
 * The single-core backend: the hierarchy's own private L2 array, with
 * dirty victims and flushes written to the engine's own store. Every
 * operation is the exact sequence MemHierarchy performed before the
 * seam existed — bit-for-bit, including stat and energy ordering.
 */
class PrivateL2Backend final : public L2Backend
{
  public:
    PrivateL2Backend() = default;

    /** Wire up the hierarchy-owned collaborators (hierarchy ctor). */
    void bind(Cache *l2, BackingStore *store,
              energy::EnergyAccount *energy, StatGroup *stats)
    {
        l2_ = l2;
        store_ = store;
        energy_ = energy;
        stats_ = stats;
    }

    bool lookup(SimAddr addr) override { return l2_->lookup(addr); }

    void fill(SimAddr base, const std::uint8_t *data) override
    {
        const Cache::Evicted victim = l2_->fill(base, data);
        if (!victim.valid || !victim.dirty)
            return;
        store_->writeBlock(victim.base, victim.data.data(),
                           static_cast<SimSize>(victim.data.size()));
        if (energy_)
            energy_->addMemAccess();
        stats_->inc("l2_writebacks_to_mem");
    }

    bool contains(SimAddr addr) const override
    {
        return l2_->contains(addr);
    }

    void flushLine(SimAddr addr) override
    {
        if (!l2_->contains(addr))
            return;
        if (l2_->isDirty(addr)) {
            std::vector<std::uint8_t> buf(l2_->lineBytes());
            l2_->readLine(addr, buf.data());
            store_->writeBlock(l2_->lineBase(addr), buf.data(),
                               l2_->lineBytes());
        }
        l2_->invalidate(addr);
    }

    std::uint32_t readWordRaw(SimAddr addr) const override
    {
        return l2_->readWordRaw(addr);
    }

    void writeRange(SimAddr addr, const std::uint8_t *src, SimSize len,
                    bool markDirty) override
    {
        l2_->writeRange(addr, src, len, markDirty);
    }

    bool sharedFrame(SimAddr) const override { return false; }

    const Cache &cache() const override { return *l2_; }

  private:
    Cache *l2_ = nullptr;
    BackingStore *store_ = nullptr;
    energy::EnergyAccount *energy_ = nullptr;
    StatGroup *stats_ = nullptr;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_L2_BACKEND_HH
