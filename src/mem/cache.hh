/**
 * @file
 * Generic data-carrying, write-back, LRU set-associative cache.
 *
 * Unlike trace-driven cache models, lines hold real bytes plus
 * per-word check bits (parity or SEC-DED, per the codec), because the
 * whole point of the clumsy architecture is that corrupted cached
 * data flows back into the application. The stored check bits can
 * legitimately disagree with the stored data (that is exactly what an
 * undetected-at-write fault looks like), so data and check bits are
 * written through separate, explicit interfaces.
 *
 * Fault injection, recovery policy and latency/energy accounting live
 * one layer up (mem/hierarchy.hh); this class is purely the array.
 *
 * The per-line metadata (tags, valid/dirty bits, LRU stamps) and the
 * stored bytes/check bits live in flat structure-of-arrays vectors
 * indexed by set * assoc + way, not in per-line structs: a lookup
 * touches one densely packed tag lane instead of striding over
 * heap-allocated line objects, and the whole hit path is inline here
 * so the hierarchy's access loop compiles without a call per probe.
 */

#ifndef CLUMSY_MEM_CACHE_HH
#define CLUMSY_MEM_CACHE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/cacti_lite.hh"
#include "mem/parity.hh"
#include "mem/secded.hh"

namespace clumsy::mem
{

using energy::CacheGeometry;

/** Per-word check-bit codec a cache regenerates on fills/clean writes. */
enum class CheckCodec
{
    Parity, ///< 1 even-parity bit (check byte bit 0)
    Secded, ///< 7-bit Hamming SEC-DED code
};

/** One cache array with real data and per-word check bits. */
class Cache
{
  public:
    /** Description of a line evicted by fill(). */
    struct Evicted
    {
        bool valid = false;
        bool dirty = false;
        SimAddr base = 0;
        std::vector<std::uint8_t> data;
    };

    Cache(std::string name, CacheGeometry geom,
          CheckCodec codec = CheckCodec::Parity);

    /** @return true when the line containing addr is present (no LRU
     *  update). */
    bool contains(SimAddr addr) const { return findLine(addr) >= 0; }

    /**
     * Look up the line containing addr, updating LRU and hit/miss
     * counters. @return true on hit.
     */
    bool lookup(SimAddr addr)
    {
        const std::ptrdiff_t line = findLine(addr);
        if (line < 0) {
            ++*misses_;
            return false;
        }
        ++*hits_;
        lru_[static_cast<std::size_t>(line)] = ++tick_;
        return true;
    }

    /**
     * Install the line containing addr with the given lineBytes() of
     * data (parity regenerated from it). The line must not already be
     * present. @return the evicted victim, if any.
     */
    Evicted fill(SimAddr addr, const std::uint8_t *data);

    /** Drop the line containing addr without writeback (no-op when
     *  absent). */
    void invalidate(SimAddr addr);

    /**
     * Permanently retire the frame (set, way): it never holds a line
     * again — fill() skips it when picking victims. The frame must
     * already be invalid (invalidate first); way-disable recovery in
     * the hierarchy is the only caller. reset() re-enables all
     * frames (fresh-silicon semantics, like dropping the contents).
     */
    void disableFrame(std::uint32_t set, unsigned way);

    /** @return true when the frame (set, way) has been retired. */
    bool frameDisabled(std::uint32_t set, unsigned way) const
    {
        return disabledFrames_ != 0 &&
               disabled_[std::size_t{set} * geom_.assoc + way] != 0;
    }

    /**
     * @return true when the set containing addr still has at least
     * one non-retired frame (always true while nothing is retired).
     */
    bool hasEnabledWay(SimAddr addr) const
    {
        if (disabledFrames_ == 0)
            return true;
        const std::size_t first =
            std::size_t{setIndex(addr)} * geom_.assoc;
        for (unsigned w = 0; w < geom_.assoc; ++w)
            if (!disabled_[first + w])
                return true;
        return false;
    }

    /** Total frames retired by disableFrame(). */
    unsigned disabledFrameCount() const { return disabledFrames_; }

    /** Set index of addr (exposed for the fault-map slot mapping). */
    std::uint32_t setIndexOf(SimAddr addr) const
    {
        return setIndex(addr);
    }

    /** Way currently holding the (present) line containing addr. */
    unsigned wayOf(SimAddr addr) const
    {
        return static_cast<unsigned>(mustFindLine(addr) % geom_.assoc);
    }

    /**
     * Re-tag the (present) line containing @p from so it answers to
     * @p to instead. Both addresses must map to the same set and the
     * destination must be absent. Data, dirty bit, check bits and LRU
     * position are untouched and no counters move: this is
     * bookkeeping (the shared L2's shared->colored conversion), not a
     * memory transaction.
     */
    void retag(SimAddr from, SimAddr to);

    /** Raw stored 32-bit word; the line must be present, addr
     *  4-aligned. */
    std::uint32_t readWordRaw(SimAddr addr) const
    {
        CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
        const std::size_t line = mustFindLine(addr);
        std::uint32_t v;
        std::memcpy(&v,
                    &data_[line * geom_.lineBytes +
                           (addr & (geom_.lineBytes - 1))],
                    4);
        return v;
    }

    /**
     * Store a word along with explicitly supplied check bits. The
     * caller computes storedValue (possibly fault-corrupted) and the
     * check bits of the *intended* value, modeling the check-bit
     * generator sitting before the array.
     */
    void writeWordRaw(SimAddr addr, std::uint32_t storedValue,
                      std::uint8_t intendedCheck)
    {
        CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
        const std::size_t line = mustFindLine(addr);
        const SimAddr off = addr & (geom_.lineBytes - 1);
        std::memcpy(&data_[line * geom_.lineBytes + off], &storedValue,
                    4);
        check_[line * wordsPerLine_ + off / 4] = intendedCheck;
    }

    /** The stored check bits guarding the word at addr. */
    std::uint8_t wordCheck(SimAddr addr) const
    {
        CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
        const std::size_t line = mustFindLine(addr);
        return check_[line * wordsPerLine_ +
                      ((addr & (geom_.lineBytes - 1)) / 4)];
    }

    /** Check bits this cache's codec generates for a word. */
    std::uint8_t computeCheck(std::uint32_t word) const
    {
        if (codec_ == CheckCodec::Secded)
            return secded::encode(word);
        return parityBit(word) ? 1 : 0;
    }

    /** The codec in use. */
    CheckCodec codec() const { return codec_; }

    /** Mark the line containing addr dirty; line must be present. */
    void setDirty(SimAddr addr) { dirty_[mustFindLine(addr)] = 1; }

    /** @return true when the (present) line is dirty. */
    bool isDirty(SimAddr addr) const
    {
        return dirty_[mustFindLine(addr)] != 0;
    }

    /** Copy the whole (present) line out. */
    void readLine(SimAddr addr, std::uint8_t *dst) const;

    /**
     * Overwrite len bytes inside a (present) line starting at addr,
     * regenerating parity for the touched words.
     */
    void writeRange(SimAddr addr, const std::uint8_t *src, SimSize len,
                    bool markDirty);

    /** Base address of the line containing addr. */
    SimAddr lineBase(SimAddr addr) const
    {
        return addr & ~(geom_.lineBytes - 1);
    }

    /** The array geometry. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Line size in bytes. */
    SimSize lineBytes() const { return geom_.lineBytes; }

    /** hit/miss/fill/eviction/writeback counters. */
    const StatGroup &stats() const { return stats_; }

    /** Zero the counters (contents are kept). */
    void resetStats() { stats_.reset(); }

    /** Invalidate every line and zero LRU state (contents dropped). */
    void reset();

    /** Valid lines currently resident (capacity occupancy probe). */
    std::size_t validLineCount() const;

    /**
     * Base addresses of every dirty resident line, in array order
     * (set-major, then way) — a deterministic iteration for bulk
     * flushes.
     */
    std::vector<SimAddr> dirtyLineBases() const;

    /**
     * Base addresses of every resident line, least-recently-used
     * first. Replaying fills in this order into another array
     * reproduces the relative LRU ordering — the shared L2 uses it to
     * migrate an engine's private contents without changing which
     * victim the next fill picks.
     */
    std::vector<SimAddr> residentLineBasesByLru() const;

    /** D-cache miss rate over lifetime (misses / lookups). */
    double missRate() const;

  private:
    CacheGeometry geom_;
    CheckCodec codec_;
    StatGroup stats_;

    // Flat SoA metadata, indexed set * assoc + way:
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint32_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> data_;  ///< lines * lineBytes blob
    std::vector<std::uint8_t> check_; ///< lines * wordsPerLine blob

    // Retired frames (way-disable recovery). disabledFrames_ == 0 on
    // every path until a frame is retired, so the hot paths pay one
    // predictable compare.
    std::vector<std::uint8_t> disabled_;
    unsigned disabledFrames_ = 0;

    std::uint64_t tick_ = 0;
    unsigned setShift_; ///< log2(lineBytes)
    std::uint32_t setMask_;
    unsigned wordsPerLine_;

    // Interned hot counters (point into stats_'s stable map nodes).
    std::uint64_t *hits_;
    std::uint64_t *misses_;
    std::uint64_t *fills_;
    std::uint64_t *evictions_;
    std::uint64_t *writebacks_;
    std::uint64_t *invalidations_;

    std::uint32_t setIndex(SimAddr addr) const
    {
        return static_cast<std::uint32_t>(addr >> setShift_) & setMask_;
    }

    std::uint32_t tagOf(SimAddr addr) const
    {
        return static_cast<std::uint32_t>(addr >> setShift_);
    }

    /** @return flat line index of the hit, or -1. */
    std::ptrdiff_t findLine(SimAddr addr) const
    {
        const std::size_t first =
            std::size_t{setIndex(addr)} * geom_.assoc;
        const std::uint32_t tag = tagOf(addr);
        for (unsigned w = 0; w < geom_.assoc; ++w) {
            if (valid_[first + w] && tags_[first + w] == tag)
                return static_cast<std::ptrdiff_t>(first + w);
        }
        return -1;
    }

    /** Flat index of the present line containing addr; panics when
     *  absent. */
    std::size_t mustFindLine(SimAddr addr) const
    {
        const std::ptrdiff_t line = findLine(addr);
        CLUMSY_ASSERT(line >= 0, "line not present");
        return static_cast<std::size_t>(line);
    }

    std::uint8_t *dataOf(std::size_t line)
    {
        return &data_[line * geom_.lineBytes];
    }

    const std::uint8_t *dataOf(std::size_t line) const
    {
        return &data_[line * geom_.lineBytes];
    }
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_CACHE_HH
