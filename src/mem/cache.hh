/**
 * @file
 * Generic data-carrying, write-back, LRU set-associative cache.
 *
 * Unlike trace-driven cache models, lines hold real bytes plus
 * per-word check bits (parity or SEC-DED, per the codec), because the
 * whole point of the clumsy architecture is that corrupted cached
 * data flows back into the application. The stored check bits can
 * legitimately disagree with the stored data (that is exactly what an
 * undetected-at-write fault looks like), so data and check bits are
 * written through separate, explicit interfaces.
 *
 * Fault injection, recovery policy and latency/energy accounting live
 * one layer up (mem/hierarchy.hh); this class is purely the array.
 */

#ifndef CLUMSY_MEM_CACHE_HH
#define CLUMSY_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "energy/cacti_lite.hh"

namespace clumsy::mem
{

using energy::CacheGeometry;

/** Per-word check-bit codec a cache regenerates on fills/clean writes. */
enum class CheckCodec
{
    Parity, ///< 1 even-parity bit (check byte bit 0)
    Secded, ///< 7-bit Hamming SEC-DED code
};

/** One cache array with real data and per-word check bits. */
class Cache
{
  public:
    /** Description of a line evicted by fill(). */
    struct Evicted
    {
        bool valid = false;
        bool dirty = false;
        SimAddr base = 0;
        std::vector<std::uint8_t> data;
    };

    Cache(std::string name, CacheGeometry geom,
          CheckCodec codec = CheckCodec::Parity);

    /** @return true when the line containing addr is present (no LRU
     *  update). */
    bool contains(SimAddr addr) const;

    /**
     * Look up the line containing addr, updating LRU and hit/miss
     * counters. @return true on hit.
     */
    bool lookup(SimAddr addr);

    /**
     * Install the line containing addr with the given lineBytes() of
     * data (parity regenerated from it). The line must not already be
     * present. @return the evicted victim, if any.
     */
    Evicted fill(SimAddr addr, const std::uint8_t *data);

    /** Drop the line containing addr without writeback (no-op when
     *  absent). */
    void invalidate(SimAddr addr);

    /**
     * Re-tag the (present) line containing @p from so it answers to
     * @p to instead. Both addresses must map to the same set and the
     * destination must be absent. Data, dirty bit, check bits and LRU
     * position are untouched and no counters move: this is
     * bookkeeping (the shared L2's shared->colored conversion), not a
     * memory transaction.
     */
    void retag(SimAddr from, SimAddr to);

    /** Raw stored 32-bit word; the line must be present, addr
     *  4-aligned. */
    std::uint32_t readWordRaw(SimAddr addr) const;

    /**
     * Store a word along with explicitly supplied check bits. The
     * caller computes storedValue (possibly fault-corrupted) and the
     * check bits of the *intended* value, modeling the check-bit
     * generator sitting before the array.
     */
    void writeWordRaw(SimAddr addr, std::uint32_t storedValue,
                      std::uint8_t intendedCheck);

    /** The stored check bits guarding the word at addr. */
    std::uint8_t wordCheck(SimAddr addr) const;

    /** Check bits this cache's codec generates for a word. */
    std::uint8_t computeCheck(std::uint32_t word) const;

    /** The codec in use. */
    CheckCodec codec() const { return codec_; }

    /** Mark the line containing addr dirty; line must be present. */
    void setDirty(SimAddr addr);

    /** @return true when the (present) line is dirty. */
    bool isDirty(SimAddr addr) const;

    /** Copy the whole (present) line out. */
    void readLine(SimAddr addr, std::uint8_t *dst) const;

    /**
     * Overwrite len bytes inside a (present) line starting at addr,
     * regenerating parity for the touched words.
     */
    void writeRange(SimAddr addr, const std::uint8_t *src, SimSize len,
                    bool markDirty);

    /** Base address of the line containing addr. */
    SimAddr lineBase(SimAddr addr) const
    {
        return addr & ~(geom_.lineBytes - 1);
    }

    /** The array geometry. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Line size in bytes. */
    SimSize lineBytes() const { return geom_.lineBytes; }

    /** hit/miss/fill/eviction/writeback counters. */
    const StatGroup &stats() const { return stats_; }

    /** Zero the counters (contents are kept). */
    void resetStats() { stats_.reset(); }

    /** Invalidate every line and zero LRU state (contents dropped). */
    void reset();

    /** Valid lines currently resident (capacity occupancy probe). */
    std::size_t validLineCount() const;

    /**
     * Base addresses of every dirty resident line, in array order
     * (set-major, then way) — a deterministic iteration for bulk
     * flushes.
     */
    std::vector<SimAddr> dirtyLineBases() const;

    /**
     * Base addresses of every resident line, least-recently-used
     * first. Replaying fills in this order into another array
     * reproduces the relative LRU ordering — the shared L2 uses it to
     * migrate an engine's private contents without changing which
     * victim the next fill picks.
     */
    std::vector<SimAddr> residentLineBasesByLru() const;

    /** D-cache miss rate over lifetime (misses / lookups). */
    double missRate() const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint32_t tag = 0;
        std::uint64_t lruTick = 0;
        std::vector<std::uint8_t> check; ///< check bits, one per word
        std::vector<std::uint8_t> data;
    };

    CacheGeometry geom_;
    CheckCodec codec_;
    StatGroup stats_;
    std::vector<Line> lines_; ///< sets * ways, way-major within a set
    std::uint64_t tick_ = 0;
    unsigned setShift_;  ///< log2(lineBytes)
    std::uint32_t setMask_;

    std::uint32_t setIndex(SimAddr addr) const;
    std::uint32_t tagOf(SimAddr addr) const;
    /** @return way index of the hit, or -1. */
    int findWay(SimAddr addr) const;
    Line &lineAt(std::uint32_t set, unsigned way);
    const Line &lineAt(std::uint32_t set, unsigned way) const;
    /** The present line containing addr; panics when absent. */
    Line &mustFind(SimAddr addr);
    const Line &mustFind(SimAddr addr) const;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_CACHE_HH
