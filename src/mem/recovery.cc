#include "mem/recovery.hh"

#include "common/logging.hh"

namespace clumsy::mem
{

bool
usesParity(RecoveryScheme scheme)
{
    return scheme != RecoveryScheme::NoDetection;
}

unsigned
readAttempts(RecoveryScheme scheme)
{
    switch (scheme) {
      case RecoveryScheme::NoDetection:
        return 1;
      case RecoveryScheme::OneStrike:
        return 1;
      case RecoveryScheme::TwoStrike:
        return 2;
      case RecoveryScheme::ThreeStrike:
        return 3;
    }
    panic("unreachable recovery scheme");
}

std::string
to_string(RecoveryScheme scheme)
{
    switch (scheme) {
      case RecoveryScheme::NoDetection:
        return "no detection";
      case RecoveryScheme::OneStrike:
        return "one-strike";
      case RecoveryScheme::TwoStrike:
        return "two-strike";
      case RecoveryScheme::ThreeStrike:
        return "three-strike";
    }
    panic("unreachable recovery scheme");
}

RecoveryScheme
recoverySchemeFromString(const std::string &name)
{
    for (auto scheme : kAllRecoverySchemes) {
        if (to_string(scheme) == name)
            return scheme;
    }
    fatal("unknown recovery scheme '%s'", name.c_str());
}

} // namespace clumsy::mem
