/**
 * @file
 * Hamming SEC-DED codec for 32-bit words: single-error correction,
 * double-error detection, using 6 Hamming check bits plus an overall
 * parity bit (a (39,32) code).
 *
 * The paper dismisses error *correction* for the clumsy architecture:
 * "the error correction techniques (such as Hamming codes) would
 * incur unnecessary complication on the design and energy
 * consumption" (Section 4). This codec exists to let the benchmarks
 * *quantify* that claim instead of assuming it — see
 * bench/ablation_ecc.
 */

#ifndef CLUMSY_MEM_SECDED_HH
#define CLUMSY_MEM_SECDED_HH

#include <cstdint>

namespace clumsy::mem::secded
{

/** Number of check bits stored per 32-bit word. */
inline constexpr unsigned kCheckBits = 7;

/** Outcome of decoding a (possibly corrupted) word. */
enum class DecodeStatus
{
    Ok,             ///< no error detected
    Corrected,      ///< single-bit error corrected (data or check)
    DoubleError,    ///< two-bit error detected, uncorrectable
};

/** Decode result: status plus the (possibly corrected) data word. */
struct Decoded
{
    DecodeStatus status;
    std::uint32_t data;
};

/** Compute the 7 check bits for a data word. */
std::uint8_t encode(std::uint32_t data);

/**
 * Decode a sensed word against its stored check bits, correcting a
 * single flipped bit (wherever it lies) and flagging double flips.
 */
Decoded decode(std::uint32_t sensed, std::uint8_t check);

} // namespace clumsy::mem::secded

#endif // CLUMSY_MEM_SECDED_HH
