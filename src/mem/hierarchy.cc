#include "mem/hierarchy.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "mem/parity.hh"
#include "mem/secded.hh"

namespace clumsy::mem
{

MemHierarchy::MemHierarchy(const HierarchyConfig &config,
                           BackingStore *store,
                           fault::FaultInjector *injector,
                           energy::EnergyAccount *energy)
    : config_(config),
      store_(store),
      injector_(injector),
      energy_(energy),
      l1d_("l1d", config.l1d, config.codec),
      l1i_("l1i", config.l1i),
      l2_("l2", config.l2, config.codec)
{
    CLUMSY_ASSERT(store_ != nullptr && injector_ != nullptr,
                  "hierarchy needs a store and an injector");
    CLUMSY_ASSERT(store_->size() % config_.l2.lineBytes == 0,
                  "DRAM size must be a multiple of the L2 line size");
    CLUMSY_ASSERT(config_.l2.lineBytes >= config_.l1d.lineBytes,
                  "L2 lines must contain whole L1 lines");
    privateL2_.bind(&l2_, store_, energy_, &stats_);
    l2b_ = &privateL2_;
    l2LineScratch_.resize(config_.l2.lineBytes);
    l1LineScratch_.resize(config_.l1d.lineBytes);
    if (config_.wayDisable.enabled())
        frameStrikes_.assign(
            std::size_t{config_.l1d.sets()} * config_.l1d.assoc, 0);
    reads_ = stats_.slot("reads");
    writes_ = stats_.slot("writes");
    senses_ = stats_.slot("l1d_senses");
    readFaults_ = stats_.slot("read_faults");
    writeFaults_ = stats_.slot("write_faults");
    parityTripStat_ = stats_.slot("parity_trips");
    l1dWritebacks_ = stats_.slot("l1d_writebacks_to_l2");
    setCycleTime(1.0);
}

void
MemHierarchy::setCycleTime(double cr)
{
    CLUMSY_ASSERT(cr > 0.0 && cr <= 1.0,
                  "relative cycle time must be in (0, 1]");
    cr_ = cr;
    l1dQuanta_ = static_cast<Quanta>(
        std::llround(static_cast<double>(config_.l1dHitCycles) *
                     kQuantaPerCycle * cr));
    // Load-use floor: the synchronous core consumes load data at its
    // own clock boundaries, so an over-clocked cache can never appear
    // faster than one core cycle. This is why the paper finds Cr=0.5
    // "almost always performs better" than 0.25: beyond the floor,
    // extra frequency buys only energy savings while the error rates
    // rise sharply.
    if (l1dQuanta_ < kQuantaPerCycle)
        l1dQuanta_ = kQuantaPerCycle;
    injector_->setCycleTime(cr);
}

template <typename B>
void
MemHierarchy::ensureL2(B &l2b, SimAddr addr, Access &acc)
{
    const SimAddr base = l2LineBase(addr);
    if (l2b.lookup(addr)) {
        acc.latency += cyclesToQuanta(config_.l2HitCycles);
        ++acc.l2Accesses;
        acc.noteL2Line(base, false, l2b.sharedFrame(addr));
        if (energy_)
            energy_->addL2Access();
        return;
    }
    store_->readBlock(base, l2LineScratch_.data(), config_.l2.lineBytes);
    l2b.fill(base, l2LineScratch_.data());
    acc.latency +=
        cyclesToQuanta(config_.l2HitCycles + config_.memCycles);
    ++acc.l2Accesses;
    ++acc.l2Misses;
    acc.noteL2Line(base, true, l2b.sharedFrame(addr));
    if (energy_) {
        energy_->addL2Access();
        energy_->addMemAccess();
    }
}

template <typename B>
void
MemHierarchy::writebackToL2(B &l2b, const Cache::Evicted &evicted,
                            Access &acc)
{
    if (!evicted.valid || !evicted.dirty)
        return;
    // Writebacks are buffered: charge energy and occupancy statistics
    // but no latency on the demand access's critical path. The wb
    // Access is discarded, so buffered transfers also generate no
    // port-arbiter line events.
    Access wb;
    ensureL2(l2b, evicted.base, wb);
    l2b.writeRange(evicted.base, evicted.data.data(),
                   static_cast<SimSize>(evicted.data.size()), true);
    ++*l1dWritebacks_;
    (void)acc;
}

void
MemHierarchy::corruptFilledLine(SimAddr lineBase)
{
    if (!config_.injectOnFill || !injector_->enabled())
        return;
    for (SimAddr off = 0; off < config_.l1d.lineBytes; off += 4) {
        const SimAddr wordAddr = lineBase + off;
        const std::uint32_t intended = l1d_.readWordRaw(wordAddr);
        fault::FaultEvent ev;
        const std::uint32_t stored =
            injector_->mapAttached()
                ? injector_->corruptMapped(intended, 32,
                                           mapSlotOf(wordAddr), &ev)
                : injector_->corrupt(intended, 32, &ev);
        if (ev.flippedBits) {
            l1d_.writeWordRaw(wordAddr, stored,
                              l1d_.computeCheck(intended));
            stats_.inc("fill_faults");
        }
    }
}

template <typename B>
void
MemHierarchy::ensureL1D(B &l2b, SimAddr addr, Access &acc)
{
    if (l1d_.lookup(addr))
        return;
    ensureL2(l2b, addr, acc);
    const SimAddr base = l1d_.lineBase(addr);
    // The containing L2 line is now resident; copy our slice of it.
    for (SimAddr off = 0; off < config_.l1d.lineBytes; off += 4) {
        const std::uint32_t w = l2b.readWordRaw(base + off);
        std::memcpy(&l1LineScratch_[off], &w, 4);
    }
    const Cache::Evicted victim = l1d_.fill(base, l1LineScratch_.data());
    if (energy_)
        energy_->addL1dWrite(cr_, protection());
    corruptFilledLine(base);
    writebackToL2(l2b, victim, acc);
}

std::uint32_t
MemHierarchy::senseWord(SimAddr wordAddr, Access &acc)
{
    acc.latency += l1dHitQuanta();
    if (energy_)
        energy_->addL1dRead(cr_, protection());
    ++*senses_;
    const std::uint32_t raw = l1d_.readWordRaw(wordAddr);
    fault::FaultEvent ev;
    const std::uint32_t sensed =
        injector_->mapAttached()
            ? injector_->corruptMapped(raw, 32, mapSlotOf(wordAddr),
                                       &ev)
            : injector_->corrupt(raw, 32, &ev);
    if (ev.flippedBits) {
        ++acc.faultsInjected;
        ++*readFaults_;
    }
    return sensed;
}

MemHierarchy::RetireOutcome
MemHierarchy::noteStrikeAndMaybeRetire(SimAddr wordAddr)
{
    const std::uint32_t set = l1d_.setIndexOf(wordAddr);
    const unsigned way = l1d_.wayOf(wordAddr);
    const std::size_t idx = std::size_t{set} * config_.l1d.assoc + way;
    if (++frameStrikes_[idx] < config_.wayDisable.retireThreshold)
        return RetireOutcome::None;
    // Chronically weak frame: retire it. The caller has already
    // written back any dirty data, so dropping the line loses
    // nothing.
    stats_.inc("ways_retired");
    l1d_.invalidate(wordAddr);
    l1d_.disableFrame(set, way);
    return l1d_.hasEnabledWay(wordAddr) ? RetireOutcome::SetAlive
                                        : RetireOutcome::SetDead;
}

bool
MemHierarchy::checkSensedWord(std::uint32_t sensed, SimAddr wordAddr,
                              std::uint32_t &value)
{
    if (!detectionOn()) {
        value = sensed;
        return true;
    }
    const std::uint8_t check = l1d_.wordCheck(wordAddr);
    if (config_.codec == CheckCodec::Secded) {
        const secded::Decoded dec = secded::decode(sensed, check);
        switch (dec.status) {
          case secded::DecodeStatus::Ok:
            value = sensed;
            return true;
          case secded::DecodeStatus::Corrected:
            stats_.inc("ecc_corrections");
            value = dec.data;
            return true;
          case secded::DecodeStatus::DoubleError:
            return false;
        }
        panic("unreachable SEC-DED status");
    }
    if (parityMatches(sensed, (check & 1) != 0)) {
        value = sensed;
        return true;
    }
    return false;
}

template <typename B>
Access
MemHierarchy::readImpl(B &l2b, SimAddr addr, unsigned bytes)
{
    CLUMSY_ASSERT(bytes == 1 || bytes == 2 || bytes == 4,
                  "access width must be 1, 2 or 4 bytes");
    if (addr % bytes != 0) {
        // ARM-style forced alignment for corrupted addresses.
        stats_.inc("unaligned_reads");
        addr &= ~SimAddr{bytes - 1};
    }

    Access acc;
    if (!store_->contains(addr, bytes)) {
        // Lazily-allocated-page semantics (SimpleScalar): loads from
        // never-written memory see zeros.
        acc.wild = true;
        acc.value = 0;
        acc.latency += cyclesToQuanta(config_.memCycles);
        stats_.inc("wild_reads");
        return acc;
    }
    ++*reads_;

    const SimAddr wordAddr = addr & ~SimAddr{3};
    if (retireOn() && !l1d_.hasEnabledWay(wordAddr)) {
        // Every frame of the set is retired: the capacity loss is
        // charged as a permanent L1 miss served by the L2 (assumed
        // correct, so no sensing or recovery applies).
        stats_.inc("retired_reads");
        ensureL2(l2b, wordAddr, acc);
        const std::uint32_t word = l2b.readWordRaw(wordAddr);
        const unsigned shift = (addr & 3u) * 8;
        acc.value =
            bytes == 4 ? word : bitField(word, shift, bytes * 8);
        return acc;
    }
    ensureL1D(l2b, wordAddr, acc);

    const unsigned attempts = readAttempts(config_.scheme);
    std::uint32_t sensed = 0;
    bool resolved = false;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        sensed = senseWord(wordAddr, acc);
        if (checkSensedWord(sensed, wordAddr, sensed)) {
            resolved = true;
            break;
        }
        ++acc.parityTrips;
        ++*parityTripStat_;
        if (attempt < attempts)
            stats_.inc("strike_retries");
    }

    if (!resolved) {
        // All strikes used: assume a write fault corrupted the block
        // and refetch it from the L2 (paper Section 4). A dirty line
        // is written back first — the detected fault may equally have
        // been a read-sense fault, in which case the stored data is
        // the only valid copy of recent stores. The writeback
        // regenerates L2 parity from the stored bits, so a genuine
        // write fault comes back parity-consistent and turns into a
        // silently corrupted value: the residual undetected-fault
        // channel the paper describes for protected configurations.
        stats_.inc("strike_invalidations");
        if (l1d_.isDirty(wordAddr)) {
            stats_.inc("strike_writebacks");
            l1d_.readLine(wordAddr, l1LineScratch_.data());
            ensureL2(l2b, wordAddr, acc);
            l2b.writeRange(l1d_.lineBase(wordAddr), l1LineScratch_.data(),
                           config_.l1d.lineBytes, true);
        }
        RetireOutcome retired = RetireOutcome::None;
        if (retireOn())
            retired = noteStrikeAndMaybeRetire(wordAddr);
        if (retired == RetireOutcome::SetDead) {
            // The strike-out retired the set's last frame: serve the
            // word from the L2 directly, like every future access to
            // this set will be.
            stats_.inc("retired_reads");
            ensureL2(l2b, wordAddr, acc);
            sensed = l2b.readWordRaw(wordAddr);
        } else {
            if (retired == RetireOutcome::SetAlive) {
                // The line went down with its retired frame; refill
                // into one of the set's surviving ways.
                ensureL1D(l2b, wordAddr, acc);
            } else if (config_.subBlockRecovery) {
                // Refetch only the faulted word (paper footnote 2):
                // the rest of the line — including its other dirty
                // words — stays put.
                stats_.inc("subblock_refetches");
                ensureL2(l2b, wordAddr, acc);
                const std::uint32_t fresh = l2b.readWordRaw(wordAddr);
                l1d_.writeWordRaw(wordAddr, fresh,
                                  l1d_.computeCheck(fresh));
            } else {
                l1d_.invalidate(wordAddr);
                ensureL1D(l2b, wordAddr, acc);
            }
            sensed = senseWord(wordAddr, acc);
            if (!checkSensedWord(sensed, wordAddr, sensed)) {
                // The refetched copy also sensed faulty: bypass the L1
                // and serve the L2's word directly.
                stats_.inc("l2_bypasses");
                acc.latency += cyclesToQuanta(config_.l2HitCycles);
                ++acc.l2Accesses;
                acc.noteL2Line(l2LineBase(wordAddr), false,
                               l2b.sharedFrame(wordAddr));
                if (energy_)
                    energy_->addL2Access();
                sensed = l2b.readWordRaw(wordAddr);
            }
        }
    }

    // Extract the requested bytes from the (possibly corrupted) word.
    const unsigned shift = (addr & 3u) * 8;
    acc.value = bytes == 4 ? sensed : bitField(sensed, shift, bytes * 8);
    return acc;
}

template <typename B>
Access
MemHierarchy::writeImpl(B &l2b, SimAddr addr, unsigned bytes,
                        std::uint32_t value)
{
    CLUMSY_ASSERT(bytes == 1 || bytes == 2 || bytes == 4,
                  "access width must be 1, 2 or 4 bytes");
    if (addr % bytes != 0) {
        stats_.inc("unaligned_writes");
        addr &= ~SimAddr{bytes - 1};
    }

    Access acc;
    if (!store_->contains(addr, bytes)) {
        // Absorbed by a lazily-allocated page outside the modeled
        // DRAM (never read back through the timed path).
        acc.wild = true;
        acc.latency += cyclesToQuanta(config_.memCycles);
        stats_.inc("wild_writes");
        return acc;
    }
    ++*writes_;

    const SimAddr wordAddr = addr & ~SimAddr{3};
    if (retireOn() && !l1d_.hasEnabledWay(wordAddr)) {
        // Fully retired set: write through to the L2 via the normal
        // miss path (sub-word stores merge against the L2's copy).
        stats_.inc("retired_writes");
        ensureL2(l2b, wordAddr, acc);
        std::uint32_t intended = value;
        if (bytes != 4) {
            const std::uint32_t raw = l2b.readWordRaw(wordAddr);
            const unsigned shift = (addr & 3u) * 8;
            const std::uint32_t mask =
                ((bytes == 1 ? 0xffu : 0xffffu)) << shift;
            intended = (raw & ~mask) | ((value << shift) & mask);
        }
        std::uint8_t buf[4];
        std::memcpy(buf, &intended, 4);
        l2b.writeRange(wordAddr, buf, 4, true);
        return acc;
    }
    ensureL1D(l2b, wordAddr, acc);

    // Sub-word stores are a masked read-modify-write of the stored
    // word; the merge path is internal and not subject to sensing
    // faults (only the array write is injected).
    std::uint32_t intended;
    if (bytes == 4) {
        intended = value;
    } else {
        const std::uint32_t raw = l1d_.readWordRaw(wordAddr);
        const unsigned shift = (addr & 3u) * 8;
        const std::uint32_t mask =
            ((bytes == 1 ? 0xffu : 0xffffu)) << shift;
        intended = (raw & ~mask) | ((value << shift) & mask);
    }

    fault::FaultEvent ev;
    const std::uint32_t stored =
        injector_->mapAttached()
            ? injector_->corruptMapped(intended, 32,
                                       mapSlotOf(wordAddr), &ev)
            : injector_->corrupt(intended, 32, &ev);
    if (ev.flippedBits) {
        ++acc.faultsInjected;
        ++*writeFaults_;
    }
    // The check-bit generator sits before the array: the stored check
    // bits reflect the intended value even when the array write
    // faulted, which is what makes write faults detectable (and, for
    // SEC-DED, single-bit-correctable) on a later read.
    l1d_.writeWordRaw(wordAddr, stored, l1d_.computeCheck(intended));
    l1d_.setDirty(wordAddr);

    acc.latency += l1dHitQuanta();
    if (energy_)
        energy_->addL1dWrite(cr_, protection());
    return acc;
}

template <typename B>
Access
MemHierarchy::fetchImpl(B &l2b, SimAddr pc)
{
    const SimAddr lineAddr = pc & ~SimAddr{3};
    Access acc;
    if (energy_)
        energy_->addL1iRead();
    if (l1i_.lookup(lineAddr))
        return acc; // pipelined fetch: no visible stall
    ensureL2(l2b, lineAddr, acc);
    const SimAddr base = l1i_.lineBase(lineAddr);
    std::vector<std::uint8_t> buf(config_.l1i.lineBytes);
    for (SimAddr off = 0; off < config_.l1i.lineBytes; off += 4) {
        const std::uint32_t w = l2b.readWordRaw(base + off);
        std::memcpy(&buf[off], &w, 4);
    }
    // Instruction lines are clean; evictions never write back.
    (void)l1i_.fill(base, buf.data());
    return acc;
}

Access
MemHierarchy::read(SimAddr addr, unsigned bytes)
{
    if (fastPrivate())
        return readImpl(privateL2_, addr, bytes);
    return readImpl(*l2b_, addr, bytes);
}

Access
MemHierarchy::write(SimAddr addr, unsigned bytes, std::uint32_t value)
{
    if (fastPrivate())
        return writeImpl(privateL2_, addr, bytes, value);
    return writeImpl(*l2b_, addr, bytes, value);
}

Access
MemHierarchy::fetch(SimAddr pc)
{
    if (fastPrivate())
        return fetchImpl(privateL2_, pc);
    return fetchImpl(*l2b_, pc);
}

void
MemHierarchy::flushRange(SimAddr addr, SimSize len)
{
    CLUMSY_ASSERT(len > 0, "empty flush range");
    // Flush L2 before L1: when both hold a line dirty, the L1 copy is
    // the more recent, so it must reach DRAM last.
    std::vector<std::uint8_t> buf(config_.l2.lineBytes);
    const SimAddr first2 = l2LineBase(addr);
    for (SimAddr a = first2; a < addr + len;
         a += config_.l2.lineBytes)
        l2b_->flushLine(a);
    const SimAddr first1 = l1d_.lineBase(addr);
    for (SimAddr a = first1; a < addr + len;
         a += config_.l1d.lineBytes) {
        if (!l1d_.contains(a))
            continue;
        if (l1d_.isDirty(a)) {
            l1d_.readLine(a, buf.data());
            store_->writeBlock(l1d_.lineBase(a), buf.data(),
                               config_.l1d.lineBytes);
        }
        l1d_.invalidate(a);
    }
}

std::uint32_t
MemHierarchy::peekWord(SimAddr addr) const
{
    const SimAddr wordAddr = addr & ~SimAddr{3};
    if (l1d_.contains(wordAddr))
        return l1d_.readWordRaw(wordAddr);
    if (l2b_->contains(wordAddr))
        return l2b_->readWordRaw(wordAddr);
    return store_->read32(wordAddr);
}

void
MemHierarchy::reset()
{
    l1d_.reset();
    l1i_.reset();
    l2_.reset();
    l1d_.resetStats();
    l1i_.resetStats();
    l2_.resetStats();
    stats_.reset();
    std::fill(frameStrikes_.begin(), frameStrikes_.end(),
              std::uint16_t{0});
}

} // namespace clumsy::mem
