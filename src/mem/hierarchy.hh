/**
 * @file
 * The simulated memory hierarchy of the clumsy packet processor:
 * split 4 KB direct-mapped L1 I/D caches (32 B lines), a unified
 * 128 KB 4-way L2 (128 B lines) and a flat DRAM backing store —
 * the StrongARM-110-like configuration of paper Section 5.1.
 *
 * Only the L1 D-cache is over-clocked: its accesses pass through the
 * fault injector (reads corrupt the sensed value, writes corrupt the
 * stored value), its latency scales with the relative cycle time, and
 * its parity/strike recovery implements Section 4's schemes. The L2 is
 * assumed correct unless an incorrect value is written back from L1.
 */

#ifndef CLUMSY_MEM_HIERARCHY_HH
#define CLUMSY_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "energy/chip_energy.hh"
#include "fault/injector.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "mem/l2_backend.hh"
#include "mem/l2_port.hh"
#include "mem/recovery.hh"

namespace clumsy::mem
{

/** Static configuration of the hierarchy (defaults = the paper's). */
struct HierarchyConfig
{
    CacheGeometry l1d{4096, 1, 32, 22};
    CacheGeometry l1i{4096, 1, 32, 22};
    CacheGeometry l2{131072, 4, 128, 15};

    std::int64_t l1dHitCycles = 2;  ///< at full swing; scales with Cr
    std::int64_t l2HitCycles = 15;
    std::int64_t memCycles = 60;

    RecoveryScheme scheme = RecoveryScheme::NoDetection;

    /**
     * Way-disable recovery on top of the N-strike scheme: after a
     * frame strikes out `wayDisable.retireThreshold` times it is
     * retired for good (see mem/recovery.hh). Off by default.
     */
    WayDisablePolicy wayDisable;

    /**
     * Check-bit codec of the L1 D-cache when a detection scheme is
     * active: per-word parity (the paper's design) or Hamming SEC-DED
     * (the alternative the paper dismisses on energy grounds; see
     * bench/ablation_ecc). SEC-DED corrects single-bit faults inline
     * — no L2 trip — and routes double-bit faults through the strike
     * machinery.
     */
    CheckCodec codec = CheckCodec::Parity;

    /**
     * Sub-block recovery (the paper's footnote 2, left as future
     * work there): when the strikes are exhausted, refetch only the
     * faulted word from the L2 instead of invalidating and refilling
     * the whole line. Cheaper recovery and the line's other dirty
     * words survive.
     */
    bool subBlockRecovery = false;

    /**
     * Inject faults on the words written by a line fill. Off by
     * default: the paper injects on processor-issued accesses, and
     * fills would multiply the effective rate by the words per line.
     */
    bool injectOnFill = false;

    /**
     * Route even the private L2 through the polymorphic L2Backend
     * path instead of the devirtualized fast path. Modeled results
     * are identical either way — the two paths instantiate the same
     * template over different backend types — so this exists purely
     * as the reference arm for bench/sim_perf's self-byte-compare
     * and the fast-vs-generic equivalence tests.
     */
    bool forceGenericL2 = false;
};

/** Outcome of one processor-issued memory access. */
struct Access
{
    std::uint32_t value = 0;   ///< loaded value (reads only)
    Quanta latency = 0;        ///< total latency in quanta
    bool wild = false;         ///< address fell outside simulated DRAM
    unsigned faultsInjected = 0; ///< faults this access suffered
    unsigned parityTrips = 0;    ///< detections this access triggered
    unsigned l2Accesses = 0;     ///< demand uses of the L2 port
    unsigned l2Misses = 0;       ///< ... of which refilled from DRAM

    /**
     * The L2 lines behind the port uses, for the chip port arbiter's
     * MSHR merging. Sized for the deepest access the recovery
     * machinery can produce (ensure + strike writeback + refetch +
     * bypass); overflow silently drops events, which only forgoes a
     * merge opportunity — never correctness.
     */
    static constexpr unsigned kMaxL2Lines = 8;
    L2LineUse l2Lines[kMaxL2Lines];
    unsigned l2LineCount = 0;

    /** Record one L2 line use for the arbiter. */
    void noteL2Line(SimAddr base, bool miss, bool shareable)
    {
        if (l2LineCount < kMaxL2Lines)
            l2Lines[l2LineCount++] = L2LineUse{base, miss, shareable};
    }
};

/** The three-level hierarchy plus fault/recovery machinery. */
class MemHierarchy
{
  public:
    /**
     * @param config   hierarchy configuration.
     * @param store    simulated DRAM (not owned).
     * @param injector fault injector for the L1D datapath (not owned);
     *                 its cycle time is kept in sync by setCycleTime().
     * @param energy   energy account to charge (not owned, may be
     *                 nullptr to skip energy accounting).
     */
    MemHierarchy(const HierarchyConfig &config, BackingStore *store,
                 fault::FaultInjector *injector,
                 energy::EnergyAccount *energy);

    /**
     * Load `bytes` (1, 2 or 4) through the D-cache path with fault
     * injection and recovery.
     *
     * Fault-corrupted addresses get hardware-like semantics rather
     * than simulator crashes: unaligned addresses are force-aligned
     * (ARM-style), and loads from beyond simulated DRAM return a
     * deterministic junk value (undecoded bus read). Neither is
     * fatal by itself — the paper's fatal errors arise when such
     * junk keeps a loop from terminating.
     */
    Access read(SimAddr addr, unsigned bytes);

    /**
     * Store `bytes` through the D-cache path. Stores to wild
     * addresses are silently dropped (undecoded bus write), matching
     * the embedded-memory-map behaviour of the paper's platform.
     */
    Access write(SimAddr addr, unsigned bytes, std::uint32_t value);

    /**
     * Instruction fetch at pc through the I-cache (never injected;
     * the I-cache is not over-clocked). The returned Access carries
     * the stall latency — an L1I hit is fully pipelined and costs 0
     * extra quanta — plus the L2 port uses a miss performed.
     */
    Access fetch(SimAddr pc);

    /** Set the D-cache's relative cycle time (also retunes the
     *  injector). */
    void setCycleTime(double cr);

    /** Current D-cache relative cycle time. */
    double cycleTime() const { return cr_; }

    /** The recovery scheme in force. */
    RecoveryScheme scheme() const { return config_.scheme; }

    /** L1 D-cache (for stats inspection). */
    const Cache &l1d() const { return l1d_; }

    /** L1 I-cache. */
    const Cache &l1i() const { return l1i_; }

    /** Unified L2 (the active backend's array: private or shared). */
    const Cache &l2() const { return l2b_->cache(); }

    /**
     * Swap the storage behind the L2 operations (nullptr restores the
     * private backend). The chip model injects a npu::SharedL2Cache
     * view here when the data plane starts, after migrating the
     * private array's contents into the shared one, so no pre-switch
     * state is stranded.
     *
     * Horizon-safety contract (chip-jobs parallelism): while the
     * private backend is active — the whole bring-up horizon, from
     * construction until this call — every operation of this
     * hierarchy touches only state owned by its engine (own arrays,
     * own backing store, own injector/energy account), so distinct
     * engines' hierarchies may run on distinct threads with no
     * synchronization. A shared backend couples engines through one
     * array, so this swap must happen at a barrier, in engine order,
     * and all stepping after it is serialized by the chip's
     * deterministic event loop (DESIGN.md).
     */
    void setL2Backend(L2Backend *backend)
    {
        l2b_ = backend ? backend : &privateL2_;
    }

    /** @return true while the private backend is active. */
    bool usingPrivateL2() const { return l2b_ == &privateL2_; }

    /** Hierarchy-level counters (reads, writes, trips, strikes...). */
    const StatGroup &stats() const { return stats_; }

    /** The configuration in force. */
    const HierarchyConfig &config() const { return config_; }

    /**
     * Flush (write back if dirty, then invalidate) every L1D and L2
     * line touching [addr, addr+len). Used around DMA: the device
     * reads/writes DRAM directly, so dirty cached data covering the
     * range must reach DRAM first — lines only partially covered by
     * the DMA carry unrelated neighbour data that must survive — and
     * stale cached copies must not linger afterwards.
     */
    void flushRange(SimAddr addr, SimSize len);

    /**
     * Untimed architectural read of the word containing addr: the L1D
     * copy when present, else L2, else DRAM. No stats, no faults.
     */
    std::uint32_t peekWord(SimAddr addr) const;

    /** Drop all cache contents and zero statistics. */
    void reset();

  private:
    HierarchyConfig config_;
    BackingStore *store_;
    fault::FaultInjector *injector_;
    energy::EnergyAccount *energy_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    PrivateL2Backend privateL2_;
    L2Backend *l2b_ = nullptr; ///< active backend, never null
    StatGroup stats_{"hier"};
    double cr_ = 1.0;
    Quanta l1dQuanta_;

    /**
     * Reusable line buffers for the refill paths. ensureL2 owns
     * l2LineScratch_ and the L1 fill/strike paths own l1LineScratch_;
     * the nesting is strictly L1-path -> ensureL2, never the reverse,
     * and each path finishes consuming its buffer before any call
     * that could overwrite it, so one buffer per level suffices and
     * the per-miss heap allocation disappears from the hot loop.
     */
    std::vector<std::uint8_t> l2LineScratch_;
    std::vector<std::uint8_t> l1LineScratch_;

    /**
     * Per-frame strike-out counts for way-disable recovery, indexed
     * like the L1D's SoA metadata (set * assoc + way). Empty unless
     * the policy is enabled.
     */
    std::vector<std::uint16_t> frameStrikes_;

    // Interned per-access counters (stable pointers into stats_).
    std::uint64_t *reads_;
    std::uint64_t *writes_;
    std::uint64_t *senses_;
    std::uint64_t *readFaults_;
    std::uint64_t *writeFaults_;
    std::uint64_t *parityTripStat_;
    std::uint64_t *l1dWritebacks_;

    bool detectionOn() const { return usesParity(config_.scheme); }

    /** @return true when way-disable recovery is active. */
    bool retireOn() const { return config_.wayDisable.enabled(); }

    /**
     * Fault-map word slot of the L1D frame currently holding
     * wordAddr (the line must be present).
     */
    std::uint32_t mapSlotOf(SimAddr wordAddr) const
    {
        const std::uint32_t set = l1d_.setIndexOf(wordAddr);
        const unsigned way = l1d_.wayOf(wordAddr);
        const std::uint32_t wordIdx = static_cast<std::uint32_t>(
            (wordAddr & (config_.l1d.lineBytes - 1)) / 4);
        return (set * config_.l1d.assoc + way) *
                   (config_.l1d.lineBytes / 4) +
               wordIdx;
    }

    /** What noteStrikeAndMaybeRetire did to wordAddr's frame. */
    enum class RetireOutcome
    {
        None,     ///< below threshold: normal strike recovery
        SetAlive, ///< frame retired; the set still has enabled ways
        SetDead,  ///< frame retired and the whole set is now dead
    };

    /**
     * Record one strike-out against the frame holding wordAddr and
     * retire it at the threshold (the line must still be present; on
     * retirement it is invalidated and the frame disabled).
     */
    RetireOutcome noteStrikeAndMaybeRetire(SimAddr wordAddr);

    /** Protection level for energy accounting. */
    energy::Protection protection() const
    {
        if (!detectionOn())
            return energy::Protection::None;
        return config_.codec == CheckCodec::Secded
                   ? energy::Protection::Secded
                   : energy::Protection::Parity;
    }

    /**
     * Run the sensed word through the active codec. @return true when
     * the access is resolved (value set to the accepted — possibly
     * ECC-corrected — word); false when the detection tripped.
     */
    bool checkSensedWord(std::uint32_t sensed, SimAddr wordAddr,
                         std::uint32_t &value);

    /** L1D hit latency at the current cycle time, in quanta. */
    Quanta l1dHitQuanta() const { return l1dQuanta_; }

    /** L2 line base of addr (geometry-only; backend-independent). */
    SimAddr l2LineBase(SimAddr addr) const
    {
        return addr & ~(config_.l2.lineBytes - 1);
    }

    /**
     * The access paths are templates over the concrete backend type.
     * read()/write()/fetch() instantiate each body twice: once over
     * PrivateL2Backend — a final class, so every backend call
     * devirtualizes and inlines into the monomorphic fast path — and
     * once over the L2Backend base for the shared-L2 (and
     * forceGenericL2 reference) configurations. Both instantiations
     * are the same source text, which is what guarantees the two
     * paths model identically.
     */
    template <typename B>
    void ensureL2(B &l2b, SimAddr addr, Access &acc);

    /** Bring the L1D line containing addr in via L2. */
    template <typename B>
    void ensureL1D(B &l2b, SimAddr addr, Access &acc);

    /** Write back an evicted dirty L1 line into the L2. */
    template <typename B>
    void writebackToL2(B &l2b, const Cache::Evicted &evicted,
                       Access &acc);

    template <typename B>
    Access readImpl(B &l2b, SimAddr addr, unsigned bytes);

    template <typename B>
    Access writeImpl(B &l2b, SimAddr addr, unsigned bytes,
                     std::uint32_t value);

    template <typename B> Access fetchImpl(B &l2b, SimAddr pc);

    /** @return true when the devirtualized private path applies. */
    bool fastPrivate() const
    {
        return l2b_ == &privateL2_ && !config_.forceGenericL2;
    }

    /** Fill corruption pass over a just-installed L1D line. */
    void corruptFilledLine(SimAddr lineBase);

    /** One sensed read of the word at wordAddr (injection applied). */
    std::uint32_t senseWord(SimAddr wordAddr, Access &acc);
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_HIERARCHY_HH
