/**
 * @file
 * Arena allocator for the simulated address space.
 *
 * Applications build their long-lived structures (radix trees, route
 * tables, packet queues) out of simulated memory so cache faults can
 * corrupt them. The allocator is a bump arena with alignment — the
 * NetBench workloads allocate during control-plane initialization and
 * never free, so an arena matches their behavior exactly.
 *
 * Address 0 is reserved as the simulated null pointer: the arena
 * starts allocating at kNullGuard so a corrupted pointer that becomes
 * 0..kNullGuard-1 is caught as a wild access.
 */

#ifndef CLUMSY_MEM_ALLOC_HH
#define CLUMSY_MEM_ALLOC_HH

#include "common/types.hh"
#include "mem/backing_store.hh"

namespace clumsy::mem
{

/** Bytes reserved at the bottom of the address space (null guard). */
inline constexpr SimAddr kNullGuard = 64;

/** Bump arena over a BackingStore's address range. */
class SimAllocator
{
  public:
    /**
     * Allocate from [kNullGuard, limit). A limit of 0 means the whole
     * store; callers reserving a region at the top of the address
     * space (e.g. for instruction fetch) pass a smaller limit.
     */
    explicit SimAllocator(const BackingStore &store, SimAddr limit = 0);

    /**
     * Allocate size bytes with the given alignment (power of two).
     * fatal()s on exhaustion — running out of simulated memory is a
     * configuration error, not a simulated fault.
     */
    SimAddr alloc(SimSize size, SimSize align = 4);

    /** Allocate count elements of elemSize bytes, 4-aligned. */
    SimAddr allocArray(SimSize count, SimSize elemSize);

    /** Bytes handed out so far (including alignment padding). */
    SimSize used() const { return next_ - kNullGuard; }

    /** Bytes still available. */
    SimSize remaining() const { return limit_ - next_; }

    /** Reset the arena (existing simulated pointers become invalid). */
    void reset();

  private:
    SimAddr next_;
    SimAddr limit_;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_ALLOC_HH
