#include "mem/backing_store.hh"

#include <cstring>

#include "common/logging.hh"

namespace clumsy::mem
{

BackingStore::BackingStore(SimSize size) : data_(size, 0)
{
    CLUMSY_ASSERT(size > 0, "backing store must be non-empty");
    // Zero-filled, modeling SimpleScalar-style lazily allocated zero
    // pages (the substrate the paper ran on). This shapes fault
    // behaviour decisively: a corrupted pointer that wanders into
    // unallocated memory reads zero records, and a pointer-chasing
    // loop over zeros never advances — the "execution gets stuck in
    // an infinite loop" fatal-error class the paper reports as its
    // dominant one (caught here by the applications' loop budgets).
}

bool
BackingStore::contains(SimAddr addr, SimSize len) const
{
    // Guard the addition against 32-bit wraparound.
    const std::uint64_t end = std::uint64_t{addr} + len;
    return end <= data_.size();
}

std::uint8_t
BackingStore::read8(SimAddr addr) const
{
    CLUMSY_ASSERT(contains(addr, 1), "read8 out of range");
    return data_[addr];
}

void
BackingStore::write8(SimAddr addr, std::uint8_t value)
{
    CLUMSY_ASSERT(contains(addr, 1), "write8 out of range");
    data_[addr] = value;
}

std::uint32_t
BackingStore::read32(SimAddr addr) const
{
    CLUMSY_ASSERT(contains(addr, 4) && addr % 4 == 0,
                  "read32 misaligned or out of range");
    std::uint32_t v;
    std::memcpy(&v, &data_[addr], 4);
    return v;
}

void
BackingStore::write32(SimAddr addr, std::uint32_t value)
{
    CLUMSY_ASSERT(contains(addr, 4) && addr % 4 == 0,
                  "write32 misaligned or out of range");
    std::memcpy(&data_[addr], &value, 4);
}

void
BackingStore::readBlock(SimAddr addr, std::uint8_t *dst, SimSize len) const
{
    CLUMSY_ASSERT(contains(addr, len), "readBlock out of range");
    std::memcpy(dst, &data_[addr], len);
}

void
BackingStore::writeBlock(SimAddr addr, const std::uint8_t *src, SimSize len)
{
    CLUMSY_ASSERT(contains(addr, len), "writeBlock out of range");
    std::memcpy(&data_[addr], src, len);
}

void
BackingStore::fill(SimAddr addr, std::uint8_t value, SimSize len)
{
    CLUMSY_ASSERT(contains(addr, len), "fill out of range");
    std::memset(&data_[addr], value, len);
}

} // namespace clumsy::mem
