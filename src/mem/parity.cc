#include "mem/parity.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace clumsy::mem
{

std::uint64_t
packLineParity(const std::uint32_t *words, unsigned nWords)
{
    CLUMSY_ASSERT(nWords <= 64, "parity bitmap supports up to 64 words");
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < nWords; ++i) {
        if (parityBit(words[i]))
            bits |= std::uint64_t{1} << i;
    }
    return bits;
}

} // namespace clumsy::mem
