#include "mem/alloc.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace clumsy::mem
{

SimAllocator::SimAllocator(const BackingStore &store, SimAddr limit)
    : next_(kNullGuard), limit_(limit == 0 ? store.size() : limit)
{
    CLUMSY_ASSERT(limit_ > kNullGuard, "backing store smaller than guard");
    CLUMSY_ASSERT(limit_ <= store.size(), "limit beyond the store");
}

SimAddr
SimAllocator::alloc(SimSize size, SimSize align)
{
    CLUMSY_ASSERT(size > 0, "zero-size allocation");
    CLUMSY_ASSERT(isPowerOfTwo(align), "alignment must be a power of two");
    const SimAddr aligned = (next_ + (align - 1)) & ~(align - 1);
    if (aligned + size > limit_ || aligned + size < aligned) {
        fatal("simulated memory exhausted: need %u bytes, %u available",
              size, limit_ - aligned);
    }
    next_ = aligned + size;
    return aligned;
}

SimAddr
SimAllocator::allocArray(SimSize count, SimSize elemSize)
{
    CLUMSY_ASSERT(count > 0 && elemSize > 0, "empty array allocation");
    const std::uint64_t bytes = std::uint64_t{count} * elemSize;
    CLUMSY_ASSERT(bytes <= 0xffffffffu, "array allocation overflows");
    return alloc(static_cast<SimSize>(bytes), 4);
}

void
SimAllocator::reset()
{
    next_ = kNullGuard;
}

} // namespace clumsy::mem
