/**
 * @file
 * Per-word parity codec (paper Section 4).
 *
 * Each 32-bit word of a protected cache is guarded by one even-parity
 * bit, generated when data enters the array and checked when it is
 * sensed. Odd-weight fault patterns (the model's 1- and 3-bit flips)
 * are detected; even-weight patterns (2-bit flips) escape — that gap
 * is what keeps the fallibility of protected configurations non-zero.
 */

#ifndef CLUMSY_MEM_PARITY_HH
#define CLUMSY_MEM_PARITY_HH

#include <cstdint>

#include "common/bitops.hh"

namespace clumsy::mem
{

/** @return the even-parity bit for a 32-bit word. */
inline bool
parityBit(std::uint32_t word)
{
    return oddParity(word);
}

/** @return true when the sensed word matches its stored parity bit. */
inline bool
parityMatches(std::uint32_t sensed, bool storedBit)
{
    return parityBit(sensed) == storedBit;
}

/**
 * Pack the parity bits of an array of words into a bitmap.
 * Bit i of the result guards words[i]; nWords <= 64.
 */
std::uint64_t packLineParity(const std::uint32_t *words, unsigned nWords);

} // namespace clumsy::mem

#endif // CLUMSY_MEM_PARITY_HH
