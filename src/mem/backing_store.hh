/**
 * @file
 * The simulated flat physical memory (DRAM ground truth).
 *
 * All application data structures live in this address space; the cache
 * hierarchy sits in front of it. Accesses are bounds-checked: a wild
 * address produced by fault-corrupted pointer data is reported to the
 * caller instead of touching host memory, which is one of the two ways
 * the paper's "fatal errors" are detected (the other is loop budgets).
 */

#ifndef CLUMSY_MEM_BACKING_STORE_HH
#define CLUMSY_MEM_BACKING_STORE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace clumsy::mem
{

/** Byte-addressable simulated physical memory. */
class BackingStore
{
  public:
    /** @param size memory size in bytes (must be > 0). */
    explicit BackingStore(SimSize size);

    /** @return true when [addr, addr+len) lies inside the memory. */
    bool contains(SimAddr addr, SimSize len) const;

    /** Read one byte; addr must be in range. */
    std::uint8_t read8(SimAddr addr) const;

    /** Write one byte; addr must be in range. */
    void write8(SimAddr addr, std::uint8_t value);

    /** Read a little-endian 32-bit word; addr must be 4-aligned. */
    std::uint32_t read32(SimAddr addr) const;

    /** Write a little-endian 32-bit word; addr must be 4-aligned. */
    void write32(SimAddr addr, std::uint32_t value);

    /** Copy len bytes out of the memory. */
    void readBlock(SimAddr addr, std::uint8_t *dst, SimSize len) const;

    /** Copy len bytes into the memory. */
    void writeBlock(SimAddr addr, const std::uint8_t *src, SimSize len);

    /** Fill len bytes with a value. */
    void fill(SimAddr addr, std::uint8_t value, SimSize len);

    /** @return the memory size in bytes. */
    SimSize size() const { return static_cast<SimSize>(data_.size()); }

  private:
    std::vector<std::uint8_t> data_;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_BACKING_STORE_HH
