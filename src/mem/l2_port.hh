/**
 * @file
 * Arbitration interface for a shared L2 port.
 *
 * A single-core hierarchy owns its L2 outright and never waits for it.
 * On a multi-engine chip (src/npu/) every processing engine funnels
 * its L1 misses, refills and bypass reads through one fixed-width L2
 * port, so an access can find the port busy with another engine's
 * transfer and must queue. How many transfers may overlap before that
 * happens is the arbiter's business (the chip's port keeps a pool of
 * miss-status holding registers; see npu::SharedL2Port). This
 * interface decouples the memory system from the chip model: the
 * hierarchy reports how many L2 port uses an access performed, the
 * processor asks the arbiter (when one is attached) how long those
 * uses had to wait, and the chip supplies the port model. With no
 * arbiter attached, behaviour is exactly the private-L2 single-core
 * model.
 */

#ifndef CLUMSY_MEM_L2_PORT_HH
#define CLUMSY_MEM_L2_PORT_HH

#include "common/types.hh"

namespace clumsy::mem
{

/** Contention model for a shared L2 access port. */
class L2PortArbiter
{
  public:
    virtual ~L2PortArbiter() = default;

    /**
     * Account one access's L2 port uses and return the queuing delay
     * they suffered, in quanta.
     *
     * @param requester  stable id of the requesting engine.
     * @param endTime    the requester's local time at the end of the
     *                   access, with every port use's service time
     *                   already included (the port-use window ends at
     *                   or before endTime).
     * @param l2Accesses number of L2 port uses in the access.
     * @param l2Misses   how many of those also transferred a line
     *                   from DRAM (longer port occupancy).
     * @return extra quanta the requester must stall; 0 when the port
     *         was free, which is always the case for a lone requester.
     */
    virtual Quanta requestPort(unsigned requester, Quanta endTime,
                               unsigned l2Accesses,
                               unsigned l2Misses) = 0;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_L2_PORT_HH
