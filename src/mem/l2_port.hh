/**
 * @file
 * Arbitration interface for a shared L2 port.
 *
 * A single-core hierarchy owns its L2 outright and never waits for it.
 * On a multi-engine chip (src/npu/) every processing engine funnels
 * its L1 misses, refills and bypass reads through one fixed-width L2
 * port, so an access can find the port busy with another engine's
 * transfer and must queue. How many transfers may overlap before that
 * happens is the arbiter's business (the chip's port keeps a pool of
 * miss-status holding registers; see npu::SharedL2Port). This
 * interface decouples the memory system from the chip model: the
 * hierarchy reports how many L2 port uses an access performed, the
 * processor asks the arbiter (when one is attached) how long those
 * uses had to wait, and the chip supplies the port model. With no
 * arbiter attached, behaviour is exactly the private-L2 single-core
 * model.
 */

#ifndef CLUMSY_MEM_L2_PORT_HH
#define CLUMSY_MEM_L2_PORT_HH

#include "common/types.hh"

namespace clumsy::mem
{

/**
 * One L2 line a memory access touched, reported alongside the access's
 * port-use counts. The arbiter needs line identity to model MSHR
 * merging on a *shared* L2: when engine B hits a line whose transfer
 * engine A started and which is still in flight at the port, B's
 * request folds into A's MSHR and waits for that transfer to end
 * rather than starting its own. `shareable` marks lines whose contents
 * other engines can legitimately consume (the shared-frame lines of
 * npu::SharedL2Cache); a private L2 backend marks nothing shareable,
 * so the arbiter's merge machinery never engages and private timing is
 * unchanged.
 */
struct L2LineUse
{
    SimAddr base = 0;      ///< L2 line base address
    bool miss = false;     ///< the use transferred the line from DRAM
    bool shareable = false; ///< other engines may hit this transfer
};

/** Contention model for a shared L2 access port. */
class L2PortArbiter
{
  public:
    virtual ~L2PortArbiter() = default;

    /**
     * Account one access's L2 port uses and return the queuing delay
     * they suffered, in quanta.
     *
     * @param requester  stable id of the requesting engine.
     * @param endTime    the requester's local time at the end of the
     *                   access, with every port use's service time
     *                   already included (the port-use window ends at
     *                   or before endTime).
     * @param l2Accesses number of L2 port uses in the access.
     * @param l2Misses   how many of those also transferred a line
     *                   from DRAM (longer port occupancy).
     * @param lines      the distinct line uses behind those counts
     *                   (may be fewer than l2Accesses when an access
     *                   re-touches a line; never more).
     * @param lineCount  entries in @p lines.
     * @return extra quanta the requester must stall; 0 when the port
     *         was free, which is always the case for a lone requester.
     */
    virtual Quanta requestPort(unsigned requester, Quanta endTime,
                               unsigned l2Accesses, unsigned l2Misses,
                               const L2LineUse *lines,
                               unsigned lineCount) = 0;
};

} // namespace clumsy::mem

#endif // CLUMSY_MEM_L2_PORT_HH
