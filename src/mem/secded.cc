#include "mem/secded.hh"

#include <array>

#include "common/bitops.hh"

namespace clumsy::mem::secded
{

namespace
{

/**
 * Codeword positions (1-based, Hamming layout) of the 32 data bits:
 * every position in [1, 38] that is not a power of two.
 */
constexpr std::array<std::uint8_t, 32>
makePositions()
{
    std::array<std::uint8_t, 32> pos{};
    unsigned i = 0;
    for (unsigned p = 1; p <= 38; ++p) {
        if ((p & (p - 1)) == 0)
            continue; // check-bit slot
        pos[i++] = static_cast<std::uint8_t>(p);
    }
    return pos;
}

constexpr auto kPos = makePositions();

/** XOR of the codeword positions of data's set bits (6-bit value). */
std::uint8_t
dataSyndrome(std::uint32_t data)
{
    std::uint8_t acc = 0;
    while (data) {
        const unsigned i = static_cast<unsigned>(
            __builtin_ctz(data));
        acc ^= kPos[i];
        data &= data - 1;
    }
    return acc;
}

bool
parity32(std::uint32_t v)
{
    return oddParity(v);
}

bool
parity8(std::uint8_t v)
{
    return oddParity(v);
}

} // namespace

std::uint8_t
encode(std::uint32_t data)
{
    const std::uint8_t hamming =
        static_cast<std::uint8_t>(dataSyndrome(data) & 0x3f);
    // Overall parity bit (bit 6) makes the parity of the whole
    // 39-bit codeword (data + 6 check bits + itself) even.
    const bool overall = parity32(data) ^ parity8(hamming);
    return static_cast<std::uint8_t>(hamming |
                                     (overall ? 0x40 : 0x00));
}

Decoded
decode(std::uint32_t sensed, std::uint8_t check)
{
    const std::uint8_t storedHamming = check & 0x3f;
    const std::uint8_t syndrome = dataSyndrome(sensed) ^ storedHamming;
    // Parity over the whole received codeword: even when intact.
    const bool oddOverall = parity32(sensed) ^ parity8(check);

    if (syndrome == 0) {
        if (!oddOverall)
            return {DecodeStatus::Ok, sensed};
        // Only the overall parity bit flipped; the data is intact.
        return {DecodeStatus::Corrected, sensed};
    }

    if (!oddOverall) {
        // Non-zero syndrome with even overall parity: two bits flipped.
        return {DecodeStatus::DoubleError, sensed};
    }

    // Single-bit error at codeword position `syndrome`.
    if ((syndrome & (syndrome - 1)) == 0) {
        // A check bit itself; data is intact.
        return {DecodeStatus::Corrected, sensed};
    }
    for (unsigned i = 0; i < 32; ++i) {
        if (kPos[i] == syndrome)
            return {DecodeStatus::Corrected,
                    sensed ^ (std::uint32_t{1} << i)};
    }
    // Syndrome names no valid position: a multi-bit pattern.
    return {DecodeStatus::DoubleError, sensed};
}

} // namespace clumsy::mem::secded
