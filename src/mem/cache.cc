#include "mem/cache.hh"

#include <algorithm>
#include <utility>

#include "common/bitops.hh"

namespace clumsy::mem
{

Cache::Cache(std::string name, CacheGeometry geom, CheckCodec codec)
    : geom_(geom), codec_(codec), stats_(std::move(name))
{
    CLUMSY_ASSERT(isPowerOfTwo(geom_.lineBytes) && geom_.lineBytes >= 4,
                  "line size must be a power of two >= 4");
    const std::uint32_t sets = geom_.sets();
    CLUMSY_ASSERT(isPowerOfTwo(sets) && isPowerOfTwo(geom_.assoc),
                  "sets and ways must be powers of two");
    setShift_ = floorLog2(geom_.lineBytes);
    setMask_ = sets - 1;
    wordsPerLine_ = static_cast<unsigned>(geom_.lineBytes / 4);
    const std::size_t lines = std::size_t{sets} * geom_.assoc;
    valid_.assign(lines, 0);
    dirty_.assign(lines, 0);
    disabled_.assign(lines, 0);
    tags_.assign(lines, 0);
    lru_.assign(lines, 0);
    data_.assign(lines * geom_.lineBytes, 0);
    check_.assign(lines * wordsPerLine_, 0);
    hits_ = stats_.slot("hits");
    misses_ = stats_.slot("misses");
    fills_ = stats_.slot("fills");
    evictions_ = stats_.slot("evictions");
    writebacks_ = stats_.slot("writebacks");
    invalidations_ = stats_.slot("invalidations");
}

Cache::Evicted
Cache::fill(SimAddr addr, const std::uint8_t *data)
{
    CLUMSY_ASSERT(findLine(addr) < 0, "fill of an already-present line");
    const std::size_t first = std::size_t{setIndex(addr)} * geom_.assoc;

    // Pick the victim: an invalid way, else the LRU way. Retired
    // frames are never candidates; the hierarchy guarantees a fill
    // only reaches a set with at least one enabled frame.
    std::size_t victim = SIZE_MAX;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        if (disabledFrames_ != 0 && disabled_[first + w])
            continue;
        if (!valid_[first + w]) {
            victim = first + w;
            oldest = 0;
            break;
        }
        if (lru_[first + w] < oldest) {
            oldest = lru_[first + w];
            victim = first + w;
        }
    }
    CLUMSY_ASSERT(victim != SIZE_MAX,
                  "fill into a set with every frame retired");

    Evicted evicted;
    if (valid_[victim]) {
        ++*evictions_;
        evicted.valid = true;
        evicted.dirty = dirty_[victim] != 0;
        evicted.base = (tags_[victim] << setShift_);
        if (dirty_[victim]) {
            ++*writebacks_;
            evicted.data.assign(dataOf(victim),
                                dataOf(victim) + geom_.lineBytes);
        }
    }

    ++*fills_;
    valid_[victim] = 1;
    dirty_[victim] = 0;
    tags_[victim] = tagOf(addr);
    lru_[victim] = ++tick_;
    std::memcpy(dataOf(victim), data, geom_.lineBytes);
    for (unsigned w = 0; w < wordsPerLine_; ++w) {
        std::uint32_t word;
        std::memcpy(&word, data + w * 4, 4);
        check_[victim * wordsPerLine_ + w] = computeCheck(word);
    }
    return evicted;
}

void
Cache::invalidate(SimAddr addr)
{
    const std::ptrdiff_t line = findLine(addr);
    if (line < 0)
        return;
    ++*invalidations_;
    valid_[static_cast<std::size_t>(line)] = 0;
}

void
Cache::disableFrame(std::uint32_t set, unsigned way)
{
    const std::size_t idx = std::size_t{set} * geom_.assoc + way;
    CLUMSY_ASSERT(set <= setMask_ && way < geom_.assoc,
                  "frame outside the array");
    CLUMSY_ASSERT(!valid_[idx], "retiring a frame that holds a line");
    if (disabled_[idx])
        return;
    disabled_[idx] = 1;
    ++disabledFrames_;
}

void
Cache::retag(SimAddr from, SimAddr to)
{
    CLUMSY_ASSERT(setIndex(from) == setIndex(to),
                  "retag must stay within the set");
    CLUMSY_ASSERT(findLine(to) < 0, "retag destination already present");
    tags_[mustFindLine(from)] = tagOf(to);
}

void
Cache::readLine(SimAddr addr, std::uint8_t *dst) const
{
    std::memcpy(dst, dataOf(mustFindLine(addr)), geom_.lineBytes);
}

void
Cache::writeRange(SimAddr addr, const std::uint8_t *src, SimSize len,
                  bool markDirty)
{
    const std::size_t line = mustFindLine(addr);
    const SimAddr off = addr & (geom_.lineBytes - 1);
    CLUMSY_ASSERT(off + len <= geom_.lineBytes, "range crosses the line");
    std::uint8_t *data = dataOf(line);
    std::memcpy(data + off, src, len);
    // Regenerate check bits for every word the range touches.
    const unsigned firstWord = static_cast<unsigned>(off / 4);
    const unsigned lastWord = static_cast<unsigned>((off + len - 1) / 4);
    for (unsigned w = firstWord; w <= lastWord; ++w) {
        std::uint32_t word;
        std::memcpy(&word, data + w * 4, 4);
        check_[line * wordsPerLine_ + w] = computeCheck(word);
    }
    if (markDirty)
        dirty_[line] = 1;
}

void
Cache::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    std::fill(lru_.begin(), lru_.end(), 0);
    std::fill(disabled_.begin(), disabled_.end(), 0);
    disabledFrames_ = 0;
    tick_ = 0;
}

std::size_t
Cache::validLineCount() const
{
    std::size_t n = 0;
    for (const std::uint8_t v : valid_)
        if (v)
            ++n;
    return n;
}

std::vector<SimAddr>
Cache::dirtyLineBases() const
{
    std::vector<SimAddr> bases;
    for (std::size_t i = 0; i < valid_.size(); ++i)
        if (valid_[i] && dirty_[i])
            bases.push_back(tags_[i] << setShift_);
    return bases;
}

std::vector<SimAddr>
Cache::residentLineBasesByLru() const
{
    std::vector<std::pair<std::uint64_t, SimAddr>> byTick;
    for (std::size_t i = 0; i < valid_.size(); ++i)
        if (valid_[i])
            byTick.emplace_back(lru_[i], tags_[i] << setShift_);
    std::sort(byTick.begin(), byTick.end());
    std::vector<SimAddr> bases;
    bases.reserve(byTick.size());
    for (const auto &[tick, base] : byTick)
        bases.push_back(base);
    return bases;
}

double
Cache::missRate() const
{
    const double hits = static_cast<double>(stats_.get("hits"));
    const double misses = static_cast<double>(stats_.get("misses"));
    const double total = hits + misses;
    return total > 0 ? misses / total : 0.0;
}

} // namespace clumsy::mem
