#include "mem/cache.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "mem/parity.hh"
#include "mem/secded.hh"

namespace clumsy::mem
{

Cache::Cache(std::string name, CacheGeometry geom, CheckCodec codec)
    : geom_(geom), codec_(codec), stats_(std::move(name))
{
    CLUMSY_ASSERT(isPowerOfTwo(geom_.lineBytes) && geom_.lineBytes >= 4,
                  "line size must be a power of two >= 4");
    const std::uint32_t sets = geom_.sets();
    CLUMSY_ASSERT(isPowerOfTwo(sets) && isPowerOfTwo(geom_.assoc),
                  "sets and ways must be powers of two");
    setShift_ = floorLog2(geom_.lineBytes);
    setMask_ = sets - 1;
    lines_.resize(std::size_t{sets} * geom_.assoc);
    for (auto &line : lines_) {
        line.data.resize(geom_.lineBytes);
        line.check.resize(geom_.lineBytes / 4, 0);
    }
}

std::uint8_t
Cache::computeCheck(std::uint32_t word) const
{
    if (codec_ == CheckCodec::Secded)
        return secded::encode(word);
    return parityBit(word) ? 1 : 0;
}

std::uint32_t
Cache::setIndex(SimAddr addr) const
{
    return (addr >> setShift_) & setMask_;
}

std::uint32_t
Cache::tagOf(SimAddr addr) const
{
    return addr >> setShift_;
}

Cache::Line &
Cache::lineAt(std::uint32_t set, unsigned way)
{
    return lines_[std::size_t{set} * geom_.assoc + way];
}

const Cache::Line &
Cache::lineAt(std::uint32_t set, unsigned way) const
{
    return lines_[std::size_t{set} * geom_.assoc + way];
}

int
Cache::findWay(SimAddr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const std::uint32_t tag = tagOf(addr);
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (line.valid && line.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

Cache::Line &
Cache::mustFind(SimAddr addr)
{
    const int way = findWay(addr);
    CLUMSY_ASSERT(way >= 0, "line not present");
    return lineAt(setIndex(addr), static_cast<unsigned>(way));
}

const Cache::Line &
Cache::mustFind(SimAddr addr) const
{
    const int way = findWay(addr);
    CLUMSY_ASSERT(way >= 0, "line not present");
    return lineAt(setIndex(addr), static_cast<unsigned>(way));
}

bool
Cache::contains(SimAddr addr) const
{
    return findWay(addr) >= 0;
}

bool
Cache::lookup(SimAddr addr)
{
    const int way = findWay(addr);
    if (way < 0) {
        stats_.inc("misses");
        return false;
    }
    stats_.inc("hits");
    lineAt(setIndex(addr), static_cast<unsigned>(way)).lruTick = ++tick_;
    return true;
}

Cache::Evicted
Cache::fill(SimAddr addr, const std::uint8_t *data)
{
    CLUMSY_ASSERT(findWay(addr) < 0, "fill of an already-present line");
    const std::uint32_t set = setIndex(addr);

    // Pick the victim: an invalid way, else the LRU way.
    unsigned victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < geom_.assoc; ++w) {
        const Line &line = lineAt(set, w);
        if (!line.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (line.lruTick < oldest) {
            oldest = line.lruTick;
            victim = w;
        }
    }

    Line &line = lineAt(set, victim);
    Evicted evicted;
    if (line.valid) {
        stats_.inc("evictions");
        evicted.valid = true;
        evicted.dirty = line.dirty;
        evicted.base = (line.tag << setShift_);
        if (line.dirty) {
            stats_.inc("writebacks");
            evicted.data = line.data;
        }
    }

    stats_.inc("fills");
    line.valid = true;
    line.dirty = false;
    line.tag = tagOf(addr);
    line.lruTick = ++tick_;
    std::memcpy(line.data.data(), data, geom_.lineBytes);
    for (unsigned w = 0; w < geom_.lineBytes / 4; ++w) {
        std::uint32_t word;
        std::memcpy(&word, &line.data[w * 4], 4);
        line.check[w] = computeCheck(word);
    }
    return evicted;
}

void
Cache::invalidate(SimAddr addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return;
    stats_.inc("invalidations");
    lineAt(setIndex(addr), static_cast<unsigned>(way)).valid = false;
}

void
Cache::retag(SimAddr from, SimAddr to)
{
    CLUMSY_ASSERT(setIndex(from) == setIndex(to),
                  "retag must stay within the set");
    CLUMSY_ASSERT(findWay(to) < 0, "retag destination already present");
    mustFind(from).tag = tagOf(to);
}

std::uint32_t
Cache::readWordRaw(SimAddr addr) const
{
    CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
    const Line &line = mustFind(addr);
    std::uint32_t v;
    std::memcpy(&v, &line.data[addr & (geom_.lineBytes - 1)], 4);
    return v;
}

void
Cache::writeWordRaw(SimAddr addr, std::uint32_t storedValue,
                    std::uint8_t intendedCheck)
{
    CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
    Line &line = mustFind(addr);
    const SimAddr off = addr & (geom_.lineBytes - 1);
    std::memcpy(&line.data[off], &storedValue, 4);
    line.check[off / 4] = intendedCheck;
}

std::uint8_t
Cache::wordCheck(SimAddr addr) const
{
    CLUMSY_ASSERT(addr % 4 == 0, "word access must be 4-aligned");
    const Line &line = mustFind(addr);
    return line.check[(addr & (geom_.lineBytes - 1)) / 4];
}

void
Cache::setDirty(SimAddr addr)
{
    mustFind(addr).dirty = true;
}

bool
Cache::isDirty(SimAddr addr) const
{
    return mustFind(addr).dirty;
}

void
Cache::readLine(SimAddr addr, std::uint8_t *dst) const
{
    const Line &line = mustFind(addr);
    std::memcpy(dst, line.data.data(), geom_.lineBytes);
}

void
Cache::writeRange(SimAddr addr, const std::uint8_t *src, SimSize len,
                  bool markDirty)
{
    Line &line = mustFind(addr);
    const SimAddr off = addr & (geom_.lineBytes - 1);
    CLUMSY_ASSERT(off + len <= geom_.lineBytes, "range crosses the line");
    std::memcpy(&line.data[off], src, len);
    // Regenerate check bits for every word the range touches.
    const unsigned firstWord = off / 4;
    const unsigned lastWord = (off + len - 1) / 4;
    for (unsigned w = firstWord; w <= lastWord; ++w) {
        std::uint32_t word;
        std::memcpy(&word, &line.data[w * 4], 4);
        line.check[w] = computeCheck(word);
    }
    if (markDirty)
        line.dirty = true;
}

void
Cache::reset()
{
    for (auto &line : lines_) {
        line.valid = false;
        line.dirty = false;
        line.lruTick = 0;
    }
    tick_ = 0;
}

std::size_t
Cache::validLineCount() const
{
    std::size_t n = 0;
    for (const Line &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

std::vector<SimAddr>
Cache::dirtyLineBases() const
{
    std::vector<SimAddr> bases;
    for (const Line &line : lines_)
        if (line.valid && line.dirty)
            bases.push_back(line.tag << setShift_);
    return bases;
}

std::vector<SimAddr>
Cache::residentLineBasesByLru() const
{
    std::vector<std::pair<std::uint64_t, SimAddr>> byTick;
    for (const Line &line : lines_)
        if (line.valid)
            byTick.emplace_back(line.lruTick, line.tag << setShift_);
    std::sort(byTick.begin(), byTick.end());
    std::vector<SimAddr> bases;
    bases.reserve(byTick.size());
    for (const auto &[tick, base] : byTick)
        bases.push_back(base);
    return bases;
}

double
Cache::missRate() const
{
    const double hits = static_cast<double>(stats_.get("hits"));
    const double misses = static_cast<double>(stats_.get("misses"));
    const double total = hits + misses;
    return total > 0 ? misses / total : 0.0;
}

} // namespace clumsy::mem
