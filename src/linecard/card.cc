#include "linecard/card.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "common/pool.hh"
#include "linecard/fabric.hh"
#include "npu/dispatcher.hh"
#include "traffic/traffic.hh"

namespace clumsy::linecard
{

namespace
{

/** CardConfig::cardJobs resolved and clamped to one thread per chip. */
unsigned
resolveCardJobs(unsigned cardJobs, unsigned chips)
{
    const unsigned jobs = cardJobs == 0
                              ? WorkStealingPool::hardwareWorkers()
                              : cardJobs;
    return std::max(1u, std::min(jobs, chips));
}

/**
 * Chip @p chip's share of the card-wide packet stream: a fresh replica
 * of the global source pushed through a dispatcher replica, keeping
 * only the packets the card assigns to this chip — global sequence
 * numbers and arrival times intact. The dispatcher's "queue depths"
 * are total assigned counts (the split is feedback-free), so every
 * chip's replica computes the identical assignment independently.
 */
class CardSplitSource final : public traffic::PacketSource
{
  public:
    CardSplitSource(const net::TraceConfig &trace,
                    std::int64_t gapCycles,
                    npu::DispatchPolicy policy, unsigned chips,
                    unsigned chip)
        : inner_(traffic::makeSource(trace, gapCycles)),
          disp_(policy, chips),
          depths_(chips, 0),
          alive_(chips, 1),
          chip_(chip)
    {
    }

    net::Packet next() override
    {
        while (true) {
            net::Packet pkt = inner_->next();
            const int choice = disp_.choose(pkt, depths_, alive_);
            CLUMSY_ASSERT(choice >= 0,
                          "card dispatch failed with every chip alive");
            ++depths_[static_cast<unsigned>(choice)];
            if (static_cast<unsigned>(choice) == chip_) {
                arrival_ = inner_->lastArrivalCycles();
                return pkt;
            }
        }
    }

    std::int64_t lastArrivalCycles() const override { return arrival_; }

    const net::TraceConfig &config() const override
    {
        return inner_->config();
    }

  private:
    std::unique_ptr<traffic::PacketSource> inner_;
    npu::Dispatcher disp_;
    std::vector<unsigned> depths_;
    std::vector<char> alive_;
    unsigned chip_;
    std::int64_t arrival_ = 0;
};

} // namespace

void
CardConfig::validate() const
{
    if (chips < 1)
        fatal("a line card needs at least one chip, got %u", chips);
    dram.validate();
    if (!perChipCr.empty() && perChipCr.size() != chips)
        fatal("per-chip Cr list names %zu chips but the card has %u",
              perChipCr.size(), chips);
    for (double cr : perChipCr) {
        if (cr <= 0.0 || cr > 1.0)
            fatal("per-chip Cr %g outside (0, 1]", cr);
    }
}

std::vector<std::uint64_t>
cardAssignCounts(const net::TraceConfig &trace, std::int64_t gapCycles,
                 const CardConfig &card, std::uint64_t numPackets)
{
    const std::unique_ptr<traffic::PacketSource> src =
        traffic::makeSource(trace, gapCycles);
    npu::Dispatcher disp(card.dispatch, card.chips);
    std::vector<unsigned> depths(card.chips, 0);
    const std::vector<char> alive(card.chips, 1);
    std::vector<std::uint64_t> counts(card.chips, 0);
    for (std::uint64_t s = 0; s < numPackets; ++s) {
        const net::Packet pkt = src->next();
        const int choice = disp.choose(pkt, depths, alive);
        CLUMSY_ASSERT(choice >= 0,
                      "card dispatch failed with every chip alive");
        ++depths[static_cast<unsigned>(choice)];
        ++counts[static_cast<unsigned>(choice)];
    }
    return counts;
}

CardRunResult
runCard(const core::AppFactory &factory,
        const core::ExperimentConfig &config, const npu::NpuConfig &npu,
        const CardConfig &card, bool golden, unsigned trial)
{
    card.validate();
    const bool dramOn = card.dram.banks > 0;

    // The per-chip experiment template. With the DRAM model on, the
    // flat miss penalty becomes exactly the model's row-hit time —
    // the model then only ever *adds* stall (the gateway returns
    // completion minus the flat floor, >= 0), so dram-banks=0 and the
    // historical flat model remain one timing family.
    core::ExperimentConfig base = config;
    if (dramOn)
        base.processor.hierarchy.memCycles = card.dram.rowHitCycles;
    npu::NpuConfig npuBase = npu;
    npuBase.chipJobs = 1; // the card owns the thread budget
    npuBase.ingressCapacity = card.ingressCapacity;
    npuBase.validate(base.processor.hierarchy);

    // The trace every chip's split source replays, and each chip's
    // packet count from the counting pre-pass.
    const net::TraceConfig trace = [&] {
        const std::unique_ptr<core::PacketApp> app = factory();
        return core::resolveTraceConfig(base, *app);
    }();
    const std::vector<std::uint64_t> counts = cardAssignCounts(
        trace, npuBase.arrivalGapCycles, card, base.numPackets);

    const unsigned jobs = resolveCardJobs(card.cardJobs, card.chips);

    // With shared DRAM the chips interact, so every chip needs its
    // own blockable thread and the fabric's tokens do the throttling;
    // without it the chips are independent jobs on a plain pool.
    std::unique_ptr<DramFabric> fabric;
    std::vector<ChipDramPort> ports(card.chips);
    if (dramOn) {
        fabric = std::make_unique<DramFabric>(
            card.dram, card.chips, jobs,
            cyclesToQuanta(card.dram.rowHitCycles));
        for (unsigned c = 0; c < card.chips; ++c)
            ports[c].bind(fabric.get(), c);
    }

    CardRunResult result;
    result.chips.resize(card.chips);
    const WorkStealingPool pool(dramOn ? card.chips : jobs);
    pool.run(card.chips, [&](std::size_t job) {
        const unsigned c = static_cast<unsigned>(job);
        core::ExperimentConfig cc = base;
        cc.numPackets = counts[c];
        if (!card.perChipCr.empty())
            cc.cr = card.perChipCr[c];

        CardSplitSource source(trace, npuBase.arrivalGapCycles,
                               card.dispatch, card.chips, c);
        npu::ChipEnv env;
        env.source = &source;
        env.engineSaltBase = c * npuBase.peCount;
        if (dramOn) {
            env.dram = &ports[c];
            env.dramSalt =
                static_cast<std::uint64_t>(c) * base.processor.memBytes;
            ChipDramPort *const port = &ports[c];
            env.progress = [port](Quanta bound) {
                port->publish(bound);
            };
            fabric->start(c);
        }
        result.chips[c] =
            npu::runChipStream(factory, cc, npuBase, golden, trial, env);
        if (dramOn)
            fabric->finish(c);
    });

    if (golden) {
        for (unsigned c = 0; c < card.chips; ++c)
            CLUMSY_ASSERT(!result.chips[c].merged.fatal,
                          "golden card run must not die (chip %u)", c);
    }

    // ---- card-level reduction, in chip order ------------------------
    CardMetrics &m = result.card;
    m.chipPackets.resize(card.chips);
    m.chipMakespanCycles.resize(card.chips);
    double totalPackets = 0.0, maxPackets = 0.0;
    for (unsigned c = 0; c < card.chips; ++c) {
        const npu::ChipStreamResult &r = result.chips[c];
        const double processed =
            static_cast<double>(r.merged.packetsProcessed);
        m.chipPackets[c] = processed;
        m.chipMakespanCycles[c] = r.chip.makespanCycles;
        m.makespanCycles =
            std::max(m.makespanCycles, r.chip.makespanCycles);
        totalPackets += processed;
        maxPackets = std::max(maxPackets, processed);
        m.ingressDrops += r.chip.ingressDrops;
        m.dramStallCycles += r.chip.dramStallCycles;
    }
    m.packetsProcessed = totalPackets;
    m.throughputPps =
        m.makespanCycles > 0.0
            ? totalPackets / (m.makespanCycles / (npuBase.clockMhz * 1e6))
            : 0.0;
    const double meanPackets =
        totalPackets / static_cast<double>(card.chips);
    m.loadImbalance = meanPackets > 0.0 ? maxPackets / meanPackets : 1.0;
    if (fabric) {
        const dram::DramStats &d = fabric->model().stats();
        m.dramAccesses = static_cast<double>(d.accesses);
        m.dramRowHits = static_cast<double>(d.rowHits);
        m.dramRowMisses = static_cast<double>(d.rowMisses);
        m.dramRowConflicts = static_cast<double>(d.rowConflicts);
        m.dramRowHitFraction =
            d.accesses > 0 ? static_cast<double>(d.rowHits) /
                                 static_cast<double>(d.accesses)
                           : 0.0;
    }

    // Fold the per-chip digests in chip order: equal streams of chip
    // results produce equal card digests, at every job count.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto fold = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    for (const npu::ChipStreamResult &r : result.chips) {
        fold(r.valueDigest);
        fold(r.merged.packetsProcessed);
    }
    result.valueDigest = h;
    return result;
}

CardMetrics
averageCardMetrics(const std::vector<CardMetrics> &runs)
{
    CLUMSY_ASSERT(!runs.empty(), "need at least one card run");
    CardMetrics avg;
    avg.loadImbalance = 0.0;
    avg.chipPackets.assign(runs.front().chipPackets.size(), 0.0);
    avg.chipMakespanCycles.assign(
        runs.front().chipMakespanCycles.size(), 0.0);
    for (const CardMetrics &m : runs) {
        avg.makespanCycles += m.makespanCycles;
        avg.throughputPps += m.throughputPps;
        avg.loadImbalance += m.loadImbalance;
        avg.packetsProcessed += m.packetsProcessed;
        avg.ingressDrops += m.ingressDrops;
        avg.dramAccesses += m.dramAccesses;
        avg.dramRowHits += m.dramRowHits;
        avg.dramRowMisses += m.dramRowMisses;
        avg.dramRowConflicts += m.dramRowConflicts;
        avg.dramRowHitFraction += m.dramRowHitFraction;
        avg.dramStallCycles += m.dramStallCycles;
        for (std::size_t i = 0; i < avg.chipPackets.size(); ++i)
            avg.chipPackets[i] += m.chipPackets[i];
        for (std::size_t i = 0; i < avg.chipMakespanCycles.size(); ++i)
            avg.chipMakespanCycles[i] += m.chipMakespanCycles[i];
    }
    const double n = static_cast<double>(runs.size());
    avg.makespanCycles /= n;
    avg.throughputPps /= n;
    avg.loadImbalance /= n;
    avg.packetsProcessed /= n;
    avg.ingressDrops /= n;
    avg.dramAccesses /= n;
    avg.dramRowHits /= n;
    avg.dramRowMisses /= n;
    avg.dramRowConflicts /= n;
    avg.dramRowHitFraction /= n;
    avg.dramStallCycles /= n;
    for (double &v : avg.chipPackets)
        v /= n;
    for (double &v : avg.chipMakespanCycles)
        v /= n;
    return avg;
}

core::RunMetrics
mergeCardRunMetrics(const CardRunResult &run)
{
    core::RunMetrics m;
    double dataCycles = 0.0;
    double dataEnergy = 0.0;
    double dcacheMisses = 0.0;
    for (const npu::ChipStreamResult &r : run.chips) {
        const core::RunMetrics &c = r.merged;
        m.packetsAttempted += c.packetsAttempted;
        m.packetsProcessed += c.packetsProcessed;
        m.packetsWithError += c.packetsWithError;
        if (c.fatal && !m.fatal) {
            m.fatal = true;
            m.fatalReason = c.fatalReason;
        }
        const double processed =
            static_cast<double>(c.packetsProcessed);
        dataCycles += c.cyclesPerPacket * processed;
        dataEnergy += c.energyPerPacketPj * processed;
        m.totalEnergyPj += c.totalEnergyPj;
        m.l1dEnergyPj += c.l1dEnergyPj;
        m.instructions += c.instructions;
        m.dcacheAccesses += c.dcacheAccesses;
        dcacheMisses +=
            c.dcacheMissRate * static_cast<double>(c.dcacheAccesses);
        m.faultsInjected += c.faultsInjected;
        m.parityTrips += c.parityTrips;
        m.eccCorrections += c.eccCorrections;
        m.freqSwitches += c.freqSwitches;
        m.ctrlEventsApplied += c.ctrlEventsApplied;
        for (const auto &kv : c.errorsByType)
            m.errorsByType[kv.first] += kv.second;
    }
    const double processed =
        static_cast<double>(std::max<std::uint64_t>(
            m.packetsProcessed, 1));
    m.cyclesPerPacket = dataCycles / processed;
    m.energyPerPacketPj = dataEnergy / processed;
    m.dcacheMissRate =
        m.dcacheAccesses > 0
            ? dcacheMisses / static_cast<double>(m.dcacheAccesses)
            : 0.0;
    return m;
}

CardExperimentResult
runCardExperiment(const core::AppFactory &factory,
                  const core::ExperimentConfig &config,
                  const npu::NpuConfig &npu, const CardConfig &card)
{
    CardExperimentResult result;
    result.golden = runCard(factory, config, npu, card, true, 0);
    std::vector<CardMetrics> faulty;
    faulty.reserve(config.trials);
    unsigned fatals = 0;
    for (unsigned t = 0; t < config.trials; ++t) {
        const CardRunResult run =
            runCard(factory, config, npu, card, false, t);
        bool died = false;
        for (const npu::ChipStreamResult &r : run.chips)
            died = died || r.merged.fatal;
        if (died)
            ++fatals;
        faulty.push_back(run.card);
    }
    result.faultyCard = faulty.empty() ? result.golden.card
                                       : averageCardMetrics(faulty);
    result.fatalFraction =
        config.trials > 0
            ? static_cast<double>(fatals) /
                  static_cast<double>(config.trials)
            : 0.0;
    return result;
}

} // namespace clumsy::linecard
