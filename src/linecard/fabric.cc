#include "linecard/fabric.hh"

#include <algorithm>

#include "common/logging.hh"

namespace clumsy::linecard
{

DramFabric::DramFabric(const dram::DramConfig &config, unsigned chips,
                       unsigned tokens, Quanta flatQuanta)
    : model_(config),
      flat_(flatQuanta),
      tokens_(std::max(1u, tokens)),
      bound_(chips, 0),
      lastCommit_(chips, 0),
      done_(chips, 0)
{
    CLUMSY_ASSERT(chips >= 1, "fabric needs at least one chip");
}

void
DramFabric::start(unsigned chip)
{
    std::unique_lock<std::mutex> lk(m_);
    CLUMSY_ASSERT(chip < bound_.size(), "chip index out of range");
    while (running_ >= tokens_)
        cv_.wait(lk);
    ++running_;
}

void
DramFabric::publish(unsigned chip, Quanta bound)
{
    std::lock_guard<std::mutex> lk(m_);
    if (bound <= bound_[chip])
        return;
    bound_[chip] = bound;
    cv_.notify_all();
}

bool
DramFabric::safeLocked(unsigned chip, Quanta p) const
{
    for (unsigned j = 0; j < bound_.size(); ++j) {
        if (j == chip || done_[j])
            continue;
        if (bound_[j] < p || (bound_[j] == p && j < chip))
            return false;
    }
    return true;
}

Quanta
DramFabric::request(unsigned chip, std::uint64_t addr, Quanta reqTime)
{
    std::unique_lock<std::mutex> lk(m_);

    // The commit point. Clamping to the chip's own previous commit
    // keeps the per-chip sequence monotone (port slot times are not:
    // with MSHRs > 1 a later access can land on an earlier slot), so
    // the global (p, chip) order below is a genuine total order.
    const Quanta p = std::max(reqTime, lastCommit_[chip]);
    CLUMSY_ASSERT(p >= bound_[chip],
                  "DRAM request earlier than the chip's published bound");
    bound_[chip] = p;
    lastCommit_[chip] = p;
    cv_.notify_all();

    // Wait for the commit turn, lending out our execution token while
    // blocked so the chips we wait on can run. Safety is monotone
    // (bounds only rise, done only sets), so re-acquiring the token
    // afterwards cannot invalidate it.
    bool released = false;
    while (!safeLocked(chip, p)) {
        if (!released) {
            released = true;
            --running_;
            cv_.notify_all();
        }
        cv_.wait(lk);
    }
    if (released) {
        while (running_ >= tokens_)
            cv_.wait(lk);
        ++running_;
    }

    const Quanta done = model_.access(addr, p);
    const Quanta extra = done - reqTime - flat_;
    CLUMSY_ASSERT(extra >= 0, "DRAM completed before the flat penalty");
    return extra;
}

void
DramFabric::finish(unsigned chip)
{
    std::lock_guard<std::mutex> lk(m_);
    done_[chip] = 1;
    --running_;
    cv_.notify_all();
}

} // namespace clumsy::linecard
