/**
 * @file
 * The card-wide DRAM fabric: one analytical dram::DramModel shared by
 * every chip on the line card, with the conservative commit protocol
 * that lets chips simulate in parallel yet touch the model in a
 * deterministic global order.
 *
 * Determinism contract. Every DRAM request is committed at a point
 * p = max(request time, the chip's previous commit point), and the
 * fabric admits commits in strictly increasing (p, chip index) order:
 * a chip may apply its access only once every other unfinished chip's
 * published bound lies strictly above p — or at p with a larger chip
 * index. Published bounds are monotone lower bounds on each chip's
 * future request times (the chip step loop publishes the minimum
 * alive-engine data time every step, and any request an engine issues
 * mid-packet is at or after the time its packet started), so the
 * admitted order is a total order that does not depend on thread
 * scheduling: the DramModel's bank state evolves identically at every
 * --card-jobs value, which is the whole byte-identity argument.
 *
 * Parallelism is throttled by execution tokens, not by thread count:
 * the card runs one thread per chip (the protocol blocks threads, so
 * every chip must own one), and at most `tokens` of them execute
 * simulation work at any moment. A chip waiting for its commit turn
 * releases its token so some other chip can advance and raise its
 * bound; the waiter with the globally smallest (p, chip) among
 * unfinished chips is always admissible, so the fabric is
 * deadlock-free for any token count >= 1.
 */

#ifndef CLUMSY_LINECARD_FABRIC_HH
#define CLUMSY_LINECARD_FABRIC_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "dram/dram.hh"

namespace clumsy::linecard
{

/** The shared DRAM model plus the commit protocol (see file doc). */
class DramFabric
{
  public:
    /**
     * @param config     bank model behind every chip's L2.
     * @param chips      chips on the card (one protocol slot each).
     * @param tokens     execution tokens: max chips simulating at
     *                   once (>= 1; the resolved --card-jobs).
     * @param flatQuanta the flat DRAM penalty already inside every
     *                   L2 miss's latency (the row-hit time), which
     *                   request() subtracts so its return value is
     *                   pure extra stall.
     */
    DramFabric(const dram::DramConfig &config, unsigned chips,
               unsigned tokens, Quanta flatQuanta);

    /** Acquire an execution token; blocks until one is free. */
    void start(unsigned chip);

    /**
     * Raise @p chip's published bound: a monotone lower bound (chip
     * quanta) on the time of any DRAM request it can still make.
     * Calls with a bound at or below the current one are no-ops.
     */
    void publish(unsigned chip, Quanta bound);

    /**
     * Commit one DRAM line transfer for @p chip at
     * p = max(@p reqTime, the chip's previous commit point), blocking
     * until the commit is globally next in (p, chip) order. Returns
     * the stall beyond the flat penalty: completion - reqTime -
     * flatQuanta, always >= 0 because the model's cheapest access is
     * the row hit the flat penalty equals.
     */
    Quanta request(unsigned chip, std::uint64_t addr, Quanta reqTime);

    /** Mark @p chip done (it blocks no one) and release its token. */
    void finish(unsigned chip);

    /** The shared model (stable once every chip has finished). */
    const dram::DramModel &model() const { return model_; }

  private:
    /** Is @p chip's commit at @p p globally next? (lock held) */
    bool safeLocked(unsigned chip, Quanta p) const;

    dram::DramModel model_;
    Quanta flat_;
    unsigned tokens_;
    unsigned running_ = 0; ///< chips currently holding a token

    std::vector<Quanta> bound_;      ///< published lower bounds
    std::vector<Quanta> lastCommit_; ///< per-chip last commit point
    std::vector<char> done_;

    mutable std::mutex m_;
    std::condition_variable cv_;
};

/**
 * One chip's handle on the fabric, behind the npu::SharedL2Port's
 * DramGateway seam. Also dedups bound publishes chip-side so the
 * per-step publish usually costs no lock at all.
 */
class ChipDramPort final : public dram::DramGateway
{
  public:
    ChipDramPort() = default;

    void bind(DramFabric *fabric, unsigned chip)
    {
        fabric_ = fabric;
        chip_ = chip;
    }

    Quanta request(std::uint64_t addr, Quanta reqTime) override
    {
        return fabric_->request(chip_, addr, reqTime);
    }

    /** Forward a bound publish, skipping non-increases locally. */
    void publish(Quanta bound)
    {
        if (bound <= published_)
            return;
        published_ = bound;
        fabric_->publish(chip_, bound);
    }

  private:
    DramFabric *fabric_ = nullptr;
    unsigned chip_ = 0;
    Quanta published_ = -1; ///< so the first bound (0) gets through
};

} // namespace clumsy::linecard

#endif // CLUMSY_LINECARD_FABRIC_HH
