/**
 * @file
 * The line-card tier: N chip models (src/npu/) behind one inter-chip
 * dispatcher, sharing one analytical DRAM (src/dram/) through the
 * commit fabric (linecard/fabric.hh).
 *
 * Packet split. The card reuses npu::Dispatcher one level up: a
 * card-level policy (rr / flow / shortest) assigns every packet of
 * the card-wide trace to a chip. The split is feedback-free — the
 * "queue depth" the shortest policy sees is each chip's total
 * assigned count, not a live occupancy — so each chip can rebuild its
 * own share of the stream independently: chip c replays the full
 * global source through a dispatcher replica and keeps only the
 * packets assigned to c, global sequence numbers and arrival times
 * intact. Control-plane churn streams carry no packet-count state,
 * so every chip replays the identical global update stream (the
 * control plane is a broadcast), drained against the global
 * sequence numbers it actually processes.
 *
 * Chip variation. Chip c's engines get global ids starting at
 * c * peCount (decorrelated fault seeds and fault maps), its DRAM
 * lines live at physical offset c * memBytes (same bank mapping,
 * different rows), and an optional per-chip Cr vector models
 * voltage/process spread across the card. Chip 0 is unsalted: a
 * one-chip card with the DRAM model off is bit-identical to
 * clumsy_npu.
 *
 * Parallelism (--card-jobs). Chips advance concurrently, one thread
 * per chip, throttled to the resolved job count by the fabric's
 * execution tokens; DRAM commits are admitted in deterministic
 * (time, chip) order, so results are byte-identical at every job
 * count — the same contract --chip-jobs honours one level down.
 * With the DRAM model off the chips share nothing and simply fan
 * out on a worker pool.
 */

#ifndef CLUMSY_LINECARD_CARD_HH
#define CLUMSY_LINECARD_CARD_HH

#include <cstdint>
#include <vector>

#include "core/experiment.hh"
#include "dram/dram.hh"
#include "npu/chip.hh"
#include "npu/config.hh"

namespace clumsy::linecard
{

/** Static configuration of the card tier. */
struct CardConfig
{
    /** Chips on the card. */
    unsigned chips = 1;

    /** Inter-chip packet dispatch policy (count-based, no feedback). */
    npu::DispatchPolicy dispatch = npu::DispatchPolicy::RoundRobin;

    /** The shared DRAM behind every chip's L2 (banks = 0: model off). */
    dram::DramConfig dram;

    /**
     * Worker threads for inter-chip parallelism: how many chips may
     * simulate at once. 1 = serial (the default); 0 = the machine's
     * hardware default. Byte-identical results at every value.
     */
    unsigned cardJobs = 1;

    /**
     * Per-chip ingress FIFO capacity, packets (0 = unbounded). The
     * card forwards this to every chip's NpuConfig::ingressCapacity.
     */
    unsigned ingressCapacity = 0;

    /**
     * Per-chip relative cycle time overrides (voltage/process spread
     * across the card). Empty = uniform; else size must equal chips.
     */
    std::vector<double> perChipCr;

    /** Sanity-check; fatal()s on nonsense. */
    void validate() const;
};

/** Card-level quantities of one run (all doubles, like ChipMetrics). */
struct CardMetrics
{
    /** Wall-clock of the card: max chip makespan, cycles. */
    double makespanCycles = 0.0;

    /** Completed packets per second across the card. */
    double throughputPps = 0.0;

    /** Max chip packet count over mean chip packet count (1 = even). */
    double loadImbalance = 1.0;

    double packetsProcessed = 0.0; ///< completed, card-wide
    double ingressDrops = 0.0;     ///< chip-edge drops, summed

    // Shared-DRAM demand (all zero with the model off):
    double dramAccesses = 0.0;
    double dramRowHits = 0.0;
    double dramRowMisses = 0.0;
    double dramRowConflicts = 0.0;
    double dramRowHitFraction = 0.0; ///< rowHits / accesses
    double dramStallCycles = 0.0;    ///< beyond-flat stall, summed

    std::vector<double> chipPackets;        ///< completed per chip
    std::vector<double> chipMakespanCycles; ///< makespan per chip
};

/** Everything one card run (golden or one faulty trial) produced. */
struct CardRunResult
{
    /** Per-chip streaming results, chip order. */
    std::vector<npu::ChipStreamResult> chips;

    CardMetrics card;

    /** FNV-1a fold of the chips' value digests, chip order. */
    std::uint64_t valueDigest = 0;
};

/**
 * Run the whole card once. @p golden runs injection-free and panics
 * if any chip dies; a faulty run injects with trial seed @p trial on
 * every chip. Byte-identical at every CardConfig::cardJobs value.
 */
CardRunResult runCard(const core::AppFactory &factory,
                      const core::ExperimentConfig &config,
                      const npu::NpuConfig &npu, const CardConfig &card,
                      bool golden = true, unsigned trial = 0);

/** Componentwise mean, accumulated in the given (trial) order. */
CardMetrics averageCardMetrics(const std::vector<CardMetrics> &runs);

/**
 * The chips' merged metrics folded into single-core form (sums for
 * counters, packet-weighted means for per-packet rates) so the
 * experiment aggregation (core::aggregateTrials) applies unchanged —
 * the same contract the chip tier honours one level down.
 */
core::RunMetrics mergeCardRunMetrics(const CardRunResult &run);

/** Aggregated outcome of golden + trials on one card. */
struct CardExperimentResult
{
    CardRunResult golden;
    CardMetrics faultyCard; ///< componentwise mean over trials
    double fatalFraction = 0.0; ///< trials in which any chip died
};

/** Golden + config.trials faulty card runs, reduced in trial order. */
CardExperimentResult runCardExperiment(const core::AppFactory &factory,
                                       const core::ExperimentConfig &config,
                                       const npu::NpuConfig &npu,
                                       const CardConfig &card);

/**
 * The per-chip packet counts the card dispatcher produces for
 * @p numPackets packets — the counting pre-pass runCard() sizes each
 * chip's run with. Exposed for the split-coverage tests.
 */
std::vector<std::uint64_t> cardAssignCounts(const net::TraceConfig &trace,
                                            std::int64_t gapCycles,
                                            const CardConfig &card,
                                            std::uint64_t numPackets);

} // namespace clumsy::linecard

#endif // CLUMSY_LINECARD_CARD_HH
