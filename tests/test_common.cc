/**
 * @file
 * Unit tests for the common substrate: RNG, statistics, tables and
 * bit utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace clumsy;

TEST(Rng, DeterministicBySeed)
{
    Rng a(42), b(42), c(43);
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        anyDiff |= va != c.next();
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(first, a.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiased)
{
    Rng rng(2);
    std::uint64_t counts[7] = {};
    for (int i = 0; i < 70000; ++i)
        ++counts[rng.below(7)];
    for (const auto c : counts)
        EXPECT_NEAR(static_cast<double>(c), 10000.0, 400.0);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(3);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliRate)
{
    Rng rng(4);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.bernoulli(0.2);
    EXPECT_NEAR(hits / 50000.0, 0.2, 0.01);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 50000; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / 50000.0, 0.25, 0.01);
}

TEST(Rng, ZipfRankOneMostPopular)
{
    Rng rng(6);
    std::uint64_t counts[10] = {};
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.zipf(10, 1.0) - 1];
    for (int k = 1; k < 10; ++k)
        EXPECT_GT(counts[0], counts[k]);
    // Rank 1 should get ~1/H(10) = 34% of the mass at s = 1.
    EXPECT_NEAR(counts[0] / 50000.0, 0.341, 0.02);
}

TEST(Accumulator, Moments)
{
    Accumulator acc;
    for (const double v : {1.0, 2.0, 3.0, 4.0})
        acc.sample(v);
    EXPECT_EQ(acc.count(), 4u);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
    EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 4.0);
    EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
    EXPECT_NEAR(acc.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Accumulator, EmptyIsSafe)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Histogram, BinningAndOutOfRange)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(5.5);
    h.sample(9.999);
    h.sample(10.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binLo(5), 5.0);
}

TEST(Histogram, MergeFoldsCountsAndMoments)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.sample(1.5);
    a.sample(-2.0);
    b.sample(1.7);
    b.sample(8.2);
    b.sample(11.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.binCount(1), 2u);
    EXPECT_EQ(a.binCount(8), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    // Mean folds the samples, not the histograms' means.
    EXPECT_DOUBLE_EQ(a.mean(), (1.5 - 2.0 + 1.7 + 8.2 + 11.0) / 5.0);
    // b is untouched.
    EXPECT_EQ(b.total(), 3u);
}

TEST(Histogram, MergeEmptyIsIdentity)
{
    Histogram a(0.0, 4.0, 4);
    a.sample(2.5);
    const Histogram empty(0.0, 4.0, 4);
    a.merge(empty);
    EXPECT_EQ(a.total(), 1u);
    EXPECT_EQ(a.binCount(2), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Histogram, MergeRejectsMismatchedShape)
{
    Histogram a(0.0, 10.0, 10);
    const Histogram wrongBins(0.0, 10.0, 5);
    const Histogram wrongRange(0.0, 20.0, 10);
    EXPECT_DEATH(a.merge(wrongBins), "shape");
    EXPECT_DEATH(a.merge(wrongRange), "shape");
}

TEST(StatGroup, CountersAndDump)
{
    StatGroup g("cache");
    g.inc("hits");
    g.inc("hits", 2);
    g.set("misses", 7);
    EXPECT_EQ(g.get("hits"), 3u);
    EXPECT_EQ(g.get("misses"), 7u);
    EXPECT_EQ(g.get("absent"), 0u);
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("cache.hits = 3"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.get("hits"), 0u);
}

TEST(TextTable, RenderAndCsv)
{
    TextTable t("demo");
    t.header({"a", "b"});
    t.row({"1", "2"});
    const std::string text = t.render();
    EXPECT_NE(text.find("demo"), std::string::npos);
    EXPECT_NE(text.find("1"), std::string::npos);
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::sci(0.000123, 2), "1.23e-04");
}

TEST(Bitops, Parity)
{
    EXPECT_FALSE(oddParity(0));
    EXPECT_TRUE(oddParity(1));
    EXPECT_FALSE(oddParity(3));
    EXPECT_TRUE(oddParity(0x80000001ull ^ 0x2));
}

TEST(Bitops, PowersAndLogs)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
}

TEST(Bitops, FlipAndField)
{
    EXPECT_EQ(flipBit(0, 0), 1u);
    EXPECT_EQ(flipBit(0xff, 7), 0x7fu);
    EXPECT_EQ(bitField(0xabcd1234, 8, 8), 0x12u);
    EXPECT_EQ(bitField(0xabcd1234, 0, 32), 0xabcd1234u);
}

TEST(Types, QuantaConversions)
{
    EXPECT_EQ(cyclesToQuanta(2), 24);
    EXPECT_DOUBLE_EQ(quantaToCycles(18), 1.5);
}
