/**
 * @file
 * Tests of the RouteTable, NatTable and UrlTable application
 * substrates.
 */

#include <gtest/gtest.h>

#include "apps/tables.hh"
#include "common/random.hh"
#include "core/processor.hh"
#include "net/trace_gen.hh"

using namespace clumsy;
using namespace clumsy::apps;
using core::ClumsyProcessor;

namespace
{

std::vector<std::uint32_t>
somePool(std::uint32_t n)
{
    net::TraceConfig cfg;
    cfg.numDestinations = n;
    return net::TraceGenerator::makeDestPool(cfg);
}

} // namespace

TEST(RouteTable, LookupFindsEveryInstalledRoute)
{
    ClumsyProcessor proc;
    const auto pool = somePool(200);
    RouteTable table(proc, pool);
    ASSERT_FALSE(proc.fatalOccurred());
    for (std::uint32_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(table.lookupIndex(proc, pool[i]), i);
        EXPECT_EQ(table.goldenIndex(pool[i]), i);
    }
    EXPECT_EQ(table.size(), 200u);
}

TEST(RouteTable, EntryContents)
{
    ClumsyProcessor proc;
    const auto pool = somePool(50);
    RouteTable table(proc, pool);
    for (std::uint32_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(table.loadNextHop(proc, i),
                  RouteTable::nextHopFor(pool[i]));
        EXPECT_EQ(table.loadIface(proc, i),
                  i % RouteTable::kNumInterfaces);
    }
}

TEST(RouteTable, TimedTailMatchesDmaBulk)
{
    // Routes installed via DMA and via the timed path must be
    // indistinguishable to lookups.
    ClumsyProcessor proc;
    const auto pool = somePool(100);
    RouteTable table(proc, pool, /*timedTail=*/40);
    for (std::uint32_t i = 0; i < pool.size(); ++i)
        EXPECT_EQ(table.lookupIndex(proc, pool[i]), i);
}

TEST(RouteTable, UnknownDestinationMisses)
{
    ClumsyProcessor proc;
    RouteTable table(proc, somePool(50));
    EXPECT_EQ(table.lookupIndex(proc, 0x01020304),
              RadixTree::kNoMatch);
    EXPECT_EQ(table.goldenIndex(0x01020304), RadixTree::kNoMatch);
}

TEST(RouteTable, AuditEntryDetectsCorruption)
{
    ClumsyProcessor proc;
    const auto pool = somePool(50);
    RouteTable table(proc, pool);
    const auto before = table.auditEntry(proc, 7);
    EXPECT_EQ(table.auditEntry(proc, 7), before); // stable
    proc.write32(table.entryAddr(7) + 0, 0xbad);
    EXPECT_NE(table.auditEntry(proc, 7), before);
}

TEST(NatTable, CreatesBindingOnFirstPacket)
{
    ClumsyProcessor proc;
    NatTable nat(proc, 64);
    nat.noteArrival(0x0a000001);
    EXPECT_EQ(nat.translate(proc, 0x0a000001), 0u);
    EXPECT_EQ(nat.loadCount(proc), 1u);
    // Second packet reuses the binding.
    EXPECT_EQ(nat.translate(proc, 0x0a000001), 0u);
    EXPECT_EQ(nat.loadCount(proc), 1u);
}

TEST(NatTable, DistinctSourcesDistinctBindings)
{
    ClumsyProcessor proc;
    NatTable nat(proc, 64);
    for (std::uint32_t i = 0; i < 10; ++i) {
        nat.noteArrival(0x0a000000 + i);
        EXPECT_EQ(nat.translate(proc, 0x0a000000 + i), i);
    }
    EXPECT_EQ(nat.loadCount(proc), 10u);
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(nat.loadPublicIp(proc, i), NatTable::publicIpFor(i));
        EXPECT_EQ(nat.goldenIndex(0x0a000000 + i), i);
    }
}

TEST(NatTable, CapacityFullDrops)
{
    ClumsyProcessor proc;
    NatTable nat(proc, 2);
    nat.translate(proc, 1);
    nat.translate(proc, 2);
    EXPECT_EQ(nat.translate(proc, 3), RadixTree::kNoMatch);
    EXPECT_EQ(nat.loadCount(proc), 2u);
}

TEST(NatTable, PublicPoolShape)
{
    // 198.51.100/24 (TEST-NET-2), one address per binding index.
    EXPECT_EQ(NatTable::publicIpFor(0) >> 8, 0xc63364u);
    EXPECT_NE(NatTable::publicIpFor(1), NatTable::publicIpFor(2));
}

TEST(UrlTable, MatchesInstalledUrls)
{
    ClumsyProcessor proc;
    net::TraceConfig cfg;
    cfg.numUrls = 20;
    const auto urls = net::TraceGenerator::makeUrlPool(cfg);
    const auto pool = somePool(16);
    UrlTable table(proc, urls, pool);
    ASSERT_FALSE(proc.fatalOccurred());

    // Stage one URL in simulated memory and match it.
    for (const std::uint32_t idx : {0u, 7u, 19u}) {
        const std::string &url = urls[idx];
        const SimAddr buf = proc.alloc(
            static_cast<SimSize>(url.size()), 4);
        for (std::size_t b = 0; b < url.size(); ++b)
            proc.write8(buf + static_cast<SimAddr>(b),
                        static_cast<std::uint8_t>(url[b]));
        EXPECT_EQ(table.match(proc, buf,
                              static_cast<std::uint32_t>(url.size())),
                  idx);
        EXPECT_EQ(table.loadDest(proc, idx),
                  pool[idx % pool.size()]);
    }
}

TEST(UrlTable, NoMatchForUnknownUrl)
{
    ClumsyProcessor proc;
    net::TraceConfig cfg;
    cfg.numUrls = 8;
    UrlTable table(proc, net::TraceGenerator::makeUrlPool(cfg),
                   somePool(8));
    const std::string bogus = "/nonexistent";
    const SimAddr buf =
        proc.alloc(static_cast<SimSize>(bogus.size()), 4);
    for (std::size_t b = 0; b < bogus.size(); ++b)
        proc.write8(buf + static_cast<SimAddr>(b),
                    static_cast<std::uint8_t>(bogus[b]));
    EXPECT_EQ(table.match(proc, buf,
                          static_cast<std::uint32_t>(bogus.size())),
              UrlTable::kNoMatch);
}

TEST(UrlTable, AuditEntryDetectsStringCorruption)
{
    ClumsyProcessor proc;
    net::TraceConfig cfg;
    cfg.numUrls = 8;
    const auto urls = net::TraceGenerator::makeUrlPool(cfg);
    UrlTable table(proc, urls, somePool(8), /*timedTail=*/8);
    const auto before = table.auditEntry(proc, 3);
    // Find the string address from the entry record and flip a byte.
    // Entry layout: base + 3*16 -> {strAddr, len, dest, 0}; we can't
    // reach base_ directly, so corrupt through a fresh write of the
    // same URL bytes: instead corrupt via audit stability check.
    EXPECT_EQ(table.auditEntry(proc, 3), before);
    EXPECT_NE(table.auditEntry(proc, 4), before);
}
