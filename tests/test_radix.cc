/**
 * @file
 * Tests of the simulated-memory crit-bit radix tree.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/radix_tree.hh"
#include "common/random.hh"
#include "core/processor.hh"

using namespace clumsy;
using namespace clumsy::apps;
using core::ClumsyProcessor;

TEST(Radix, EmptyTreeMisses)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    EXPECT_EQ(tree.lookup(proc, 42), RadixTree::kNoMatch);
}

TEST(Radix, SingleInsert)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    tree.insert(proc, 0xdeadbeef, 7);
    EXPECT_EQ(tree.lookup(proc, 0xdeadbeef), 7u);
    EXPECT_EQ(tree.lookup(proc, 0xdeadbee0), RadixTree::kNoMatch);
    EXPECT_EQ(tree.nodeCount(), 1u);
}

TEST(Radix, ManyRandomKeys)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    Rng rng(31);
    std::map<std::uint32_t, std::uint32_t> reference;
    for (int i = 0; i < 500; ++i) {
        const auto key = static_cast<std::uint32_t>(rng.next());
        reference[key] = static_cast<std::uint32_t>(i);
        tree.insert(proc, key, static_cast<std::uint32_t>(i));
    }
    ASSERT_FALSE(proc.fatalOccurred());
    for (const auto &kv : reference)
        EXPECT_EQ(tree.lookup(proc, kv.first), kv.second);
    // Keys never inserted miss.
    for (int i = 0; i < 200; ++i) {
        const auto key = static_cast<std::uint32_t>(rng.next());
        if (!reference.count(key))
            EXPECT_EQ(tree.lookup(proc, key), RadixTree::kNoMatch);
    }
}

TEST(Radix, AdversarialKeyShapes)
{
    // Keys differing only in the MSB/LSB, shared prefixes, zero.
    ClumsyProcessor proc;
    RadixTree tree(proc);
    const std::uint32_t keys[] = {0x00000000, 0x80000000, 0x00000001,
                                  0xffffffff, 0xfffffffe, 0x7fffffff,
                                  0x55555555, 0xaaaaaaaa};
    for (std::uint32_t i = 0; i < 8; ++i)
        tree.insert(proc, keys[i], i + 100);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(tree.lookup(proc, keys[i]), i + 100);
}

TEST(Radix, UpdateInPlace)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    tree.insert(proc, 5, 1);
    tree.insert(proc, 5, 2);
    EXPECT_EQ(tree.lookup(proc, 5), 2u);
    EXPECT_EQ(tree.nodeCount(), 1u);
}

TEST(Radix, RecorderCapturesLeafKey)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    tree.insert(proc, 10, 1);
    tree.insert(proc, 20, 2);
    core::ValueRecorder rec;
    rec.beginPacket();
    tree.lookup(proc, 10, &rec, "node");
    core::ValueRecorder rec2;
    rec2.beginPacket();
    tree.lookup(proc, 10, &rec2, "node");
    EXPECT_TRUE(rec.comparePacket(0, rec2).empty());
}

TEST(Radix, BulkInstallMatchesIncrementalInserts)
{
    ClumsyProcessor procA, procB;
    RadixTree bulk(procA);
    RadixTree incremental(procB);
    Rng rng(32);
    std::vector<std::uint32_t> keys, values;
    for (int i = 0; i < 300; ++i) {
        keys.push_back(static_cast<std::uint32_t>(rng.next()));
        values.push_back(static_cast<std::uint32_t>(i));
    }
    bulk.bulkInstall(procA, keys, values);
    for (std::size_t i = 0; i < keys.size(); ++i)
        incremental.insert(procB, keys[i], values[i]);

    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(bulk.lookup(procA, keys[i]), values[i]);
        EXPECT_EQ(bulk.lookup(procA, keys[i]),
                  incremental.lookup(procB, keys[i]));
    }
    EXPECT_EQ(bulk.lookup(procA, 0x12345678),
              incremental.lookup(procB, 0x12345678));
    EXPECT_EQ(bulk.nodeCount(), incremental.nodeCount());
}

TEST(Radix, BulkInstallGeneratesNoCacheTraffic)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    std::vector<std::uint32_t> keys{1, 2, 3, 4, 5};
    std::vector<std::uint32_t> values{10, 20, 30, 40, 50};
    const auto reads = proc.hierarchy().stats().get("reads");
    const auto writes = proc.hierarchy().stats().get("writes");
    tree.bulkInstall(proc, keys, values);
    EXPECT_EQ(proc.hierarchy().stats().get("reads"), reads);
    EXPECT_EQ(proc.hierarchy().stats().get("writes"), writes);
    EXPECT_EQ(tree.lookup(proc, 3), 30u);
}

TEST(Radix, AuditChecksumStableAcrossCleanRuns)
{
    ClumsyProcessor a, b;
    RadixTree ta(a), tb(b);
    for (std::uint32_t k = 0; k < 50; ++k) {
        ta.insert(a, k * 977, k);
        tb.insert(b, k * 977, k);
    }
    EXPECT_EQ(ta.auditChecksum(a), tb.auditChecksum(b));
}

TEST(Radix, AuditChecksumSeesCorruption)
{
    ClumsyProcessor a, b;
    RadixTree ta(a), tb(b);
    for (std::uint32_t k = 0; k < 50; ++k) {
        ta.insert(a, k * 977, k);
        tb.insert(b, k * 977, k);
    }
    // Corrupt the root's left-child pointer in tree b (internal
    // nodes hash their kind and child pointers).
    const SimAddr root = b.peek32(tb.rootPtrAddr());
    b.write32(root + 4, 0x12345678);
    EXPECT_NE(ta.auditChecksum(a), tb.auditChecksum(b));
}

TEST(Radix, CorruptedCycleTripsLoopGuard)
{
    ClumsyProcessor proc;
    RadixTree tree(proc);
    for (std::uint32_t k = 0; k < 16; ++k)
        tree.insert(proc, k * 12345 + 7, k);
    // Point the root's left child back at the root: a cycle.
    const SimAddr root = proc.peek32(tree.rootPtrAddr());
    proc.write32(root + 4, root);
    proc.write32(root + 8, root);
    EXPECT_EQ(tree.lookup(proc, 7), RadixTree::kNoMatch);
    EXPECT_TRUE(proc.fatalOccurred());
    EXPECT_NE(proc.fatalReason().find("radix lookup"),
              std::string::npos);
}

TEST(Radix, LeafSignBitConvention)
{
    EXPECT_TRUE(RadixTree::isLeaf(RadixTree::kLeafMarker));
    EXPECT_TRUE(RadixTree::isLeaf(0x80000000));
    EXPECT_FALSE(RadixTree::isLeaf(0));
    EXPECT_FALSE(RadixTree::isLeaf(31));
    EXPECT_FALSE(RadixTree::isLeaf(0x7fffffff));
}
