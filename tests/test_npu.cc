/**
 * @file
 * Tests of the multi-engine chip model (src/npu/): single-core
 * bit-equivalence, schedule determinism, dispatch policies, shared-L2
 * contention accounting, bounded queues (drop and backpressure) and
 * dead-engine drop handling.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "net/trace_gen.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "npu/dispatcher.hh"
#include "sweep/sink.hh"

using namespace clumsy;
using namespace clumsy::npu;

namespace
{

core::ExperimentConfig
smallConfig()
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    return cfg;
}

} // namespace

// --- single-core equivalence -----------------------------------------

/**
 * The acceptance bar of the chip model: a one-engine chip with the
 * default configuration must reproduce the single-core harness bit
 * for bit — same seeds, same packet order, no arbiter queuing — for
 * every workload. Serialized JSON compares every double exactly.
 */
TEST(NpuChip, OneEngineMatchesSingleCoreBitForBitEveryApp)
{
    std::vector<std::string> names = apps::allAppNames();
    for (const std::string &ext : apps::extensionAppNames())
        names.push_back(ext);
    for (const std::string &app : names) {
        const core::ExperimentConfig cfg = smallConfig();
        const NpuConfig npuCfg; // 1 PE, rr, uniform

        const ChipExperimentResult chip =
            runChipExperiment(apps::appFactory(app), cfg, npuCfg);
        const core::ExperimentResult single =
            core::runExperiment(apps::appFactory(app), cfg);

        EXPECT_EQ(sweep::experimentResultJson(chip.core),
                  sweep::experimentResultJson(single))
            << "app " << app;
        // The lone engine got every packet and never waited for the
        // shared port.
        EXPECT_EQ(chip.goldenChip.l2PortWaits, 0.0) << app;
        EXPECT_EQ(chip.goldenChip.loadImbalance, 1.0) << app;
    }
}

// --- determinism ------------------------------------------------------

TEST(NpuChip, RepeatRunsAreByteIdentical)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::ShortestQueue;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);

    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(a.goldenChip.makespanCycles, b.goldenChip.makespanCycles);
    EXPECT_EQ(a.goldenChip.pePackets, b.goldenChip.pePackets);
    EXPECT_EQ(a.faultyChip.chipEdf, b.faultyChip.chipEdf);
    EXPECT_EQ(a.faultyChip.l2PortWaitCycles,
              b.faultyChip.l2PortWaitCycles);
}

// --- dispatch policies ------------------------------------------------

/**
 * Flow affinity: with FlowHash dispatch every packet of a 5-tuple
 * flow lands on hash % N — the engine the flow is pinned to — so NAT
 * bindings and DRR deficits stay engine-local. Verified against a
 * regenerated copy of the trace.
 */
TEST(NpuDispatch, FlowHashPinsEveryFlowToOneEngine)
{
    core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::FlowHash;

    const ChipRun golden =
        runChipGolden(apps::appFactory("nat"), cfg, npuCfg);

    net::TraceConfig tc = apps::makeApp("nat")->traceConfig();
    tc.seed = cfg.traceSeed;
    net::TraceGenerator gen(tc);
    const auto trace = gen.generate(cfg.numPackets);

    ASSERT_EQ(golden.completions.size(), trace.size());
    unsigned perPe[4] = {0, 0, 0, 0};
    for (const auto &pkt : trace) {
        const auto it = golden.completions.find(pkt.seq);
        ASSERT_NE(it, golden.completions.end()) << "seq " << pkt.seq;
        EXPECT_EQ(it->second.first, flowHash(pkt) % 4u)
            << "seq " << pkt.seq;
        ++perPe[it->second.first];
    }
    // The hash actually spreads the flows: no engine is idle.
    for (unsigned pe = 0; pe < 4; ++pe)
        EXPECT_GT(perPe[pe], 0u) << "PE " << pe;
}

TEST(NpuDispatch, PoliciesAreDeterministicPureFunctions)
{
    net::TraceGenerator gen(net::TraceConfig{});
    const auto trace = gen.generate(32);
    const std::vector<unsigned> depths = {3, 1, 2};
    const std::vector<char> alive = {1, 1, 1};

    // ShortestQueue: least-loaded engine, ties to the lowest id.
    Dispatcher shortest(DispatchPolicy::ShortestQueue, 3);
    EXPECT_EQ(shortest.choose(trace[0], depths, alive), 1);
    EXPECT_EQ(shortest.choose(trace[1], {2, 2, 2}, alive), 0);

    // RoundRobin cycles and skips dead engines.
    Dispatcher rr(DispatchPolicy::RoundRobin, 3);
    EXPECT_EQ(rr.choose(trace[0], depths, alive), 0);
    EXPECT_EQ(rr.choose(trace[1], depths, alive), 1);
    EXPECT_EQ(rr.choose(trace[2], depths, {1, 1, 0}), 2 % 2);
    // A fully-dead chip has nowhere to put the packet.
    EXPECT_EQ(rr.choose(trace[3], depths, {0, 0, 0}), -1);

    // FlowHash is stable per packet and -1 when the flow's engine is
    // dead rather than rehashing (state lives on that engine).
    Dispatcher flow(DispatchPolicy::FlowHash, 3);
    const int pe = flow.choose(trace[0], depths, alive);
    ASSERT_GE(pe, 0);
    EXPECT_EQ(flow.choose(trace[0], {9, 9, 9}, alive), pe);
    std::vector<char> peDead = alive;
    peDead[static_cast<std::size_t>(pe)] = 0;
    EXPECT_EQ(flow.choose(trace[0], depths, peDead), -1);
}

// --- shared-L2 contention ---------------------------------------------

TEST(NpuChip, SharedPortContentionAppearsOnlyWithMultipleEngines)
{
    const core::ExperimentConfig cfg = smallConfig();

    NpuConfig one;
    const ChipRun lone =
        runChipGolden(apps::appFactory("route"), cfg, one);
    EXPECT_EQ(lone.chip.l2PortWaits, 0.0);
    EXPECT_EQ(lone.chip.l2PortWaitCycles, 0.0);

    NpuConfig four;
    four.peCount = 4;
    const ChipRun crowd =
        runChipGolden(apps::appFactory("route"), cfg, four);
    // Four engines hammering one port: some accesses must queue, and
    // every wait accounts positive time.
    EXPECT_GT(crowd.chip.l2PortWaits, 0.0);
    EXPECT_GT(crowd.chip.l2PortWaitCycles, 0.0);
    // Queuing stretches the engines' cycle counts: the contended chip
    // cannot be 4x faster than the lone engine.
    EXPECT_GT(crowd.chip.makespanCycles * 4.0,
              lone.chip.makespanCycles);
}

// --- bounded queues ---------------------------------------------------

TEST(NpuChip, TinyQueueDropsWhenConfiguredToDrop)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 400;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.queueCapacity = 1;
    npuCfg.dropWhenFull = true;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    EXPECT_GT(r.chip.dropsQueueFull, 0.0);
    EXPECT_EQ(r.chip.backpressureStalls, 0.0);
    // Every generated packet was either completed or dropped.
    EXPECT_EQ(r.merged.packetsProcessed + r.chip.dropsQueueFull,
              400.0);
    EXPECT_EQ(r.completions.size(),
              static_cast<std::size_t>(r.merged.packetsProcessed));
}

TEST(NpuChip, TinyQueueBackpressuresByDefault)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 400;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.queueCapacity = 1;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    // Backpressure holds arrivals instead of dropping: every packet
    // completes and the stalls are visible.
    EXPECT_EQ(r.chip.dropsQueueFull, 0.0);
    EXPECT_GT(r.chip.backpressureStalls, 0.0);
    EXPECT_EQ(r.merged.packetsProcessed, 400u);
}

// --- dead engines -----------------------------------------------------

/**
 * When fatal control-plane corruption kills engines, packets bound to
 * them (flow dispatch never re-homes a flow) are dropped and counted,
 * and the chip keeps going with whatever is still alive.
 */
TEST(NpuChip, DeadEnginesDropTheirPackets)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.trials = 2;
    cfg.cr = 0.25;
    cfg.faultScale = 100.0;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = DispatchPolicy::FlowHash;

    const ChipExperimentResult res =
        runChipExperiment(apps::appFactory("crc"), cfg, npuCfg);
    EXPECT_GT(res.faultyChip.dropsDeadPe, 0.0);
    EXPECT_LT(res.core.faulty.packetsProcessed, 400u);
    // The golden chip is fault-free: nothing died, nothing dropped.
    EXPECT_EQ(res.goldenChip.dropsDeadPe, 0.0);
    EXPECT_EQ(res.core.golden.packetsProcessed, 400u);
}

// --- heterogeneous operating points -----------------------------------

TEST(NpuChip, PerEngineCrMakesFasterEnginesTakeMorePackets)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = DispatchPolicy::ShortestQueue;
    npuCfg.perPeCr = {1.0, 0.25}; // engine 1 clocked 4x faster
    // Shallow queues: admission tracks drain rate, so the faster
    // engine's queue opens up more often and it wins more packets.
    npuCfg.queueCapacity = 2;
    // A free port isolates the engines: with nonzero service times
    // the shared-port FIFO rate-matches the engines under saturation
    // (the slower engine sets the frontier every packet), which is
    // contention behaviour, not the speed difference under test here.
    npuCfg.portHitCycles = 0;
    npuCfg.portMissCycles = 0;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    ASSERT_EQ(r.chip.pePackets.size(), 2u);
    EXPECT_GT(r.chip.pePackets[1], r.chip.pePackets[0]);
}

// --- config validation ------------------------------------------------

TEST(NpuConfigDeath, Validation)
{
    const mem::HierarchyConfig hier;
    NpuConfig cfg;
    cfg.peCount = 0;
    EXPECT_DEATH(cfg.validate(hier), "engine");
    cfg = NpuConfig{};
    cfg.perPeCr = {1.0, 0.5}; // size != peCount
    EXPECT_DEATH(cfg.validate(hier), "every engine");
    cfg = NpuConfig{};
    cfg.portHitCycles = hier.l2HitCycles + 1;
    EXPECT_DEATH(cfg.validate(hier), "port");
}
