/**
 * @file
 * Tests of the multi-engine chip model (src/npu/): single-core
 * bit-equivalence, schedule determinism, dispatch policies, shared-L2
 * contention accounting, bounded queues (drop and backpressure) and
 * dead-engine drop handling.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "net/trace_gen.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "npu/dispatcher.hh"
#include "npu/shared_l2.hh"
#include "sweep/sink.hh"

using namespace clumsy;
using namespace clumsy::npu;

namespace
{

core::ExperimentConfig
smallConfig()
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    return cfg;
}

} // namespace

// --- single-core equivalence -----------------------------------------

/**
 * The acceptance bar of the chip model: a one-engine chip with the
 * default configuration must reproduce the single-core harness bit
 * for bit — same seeds, same packet order, no arbiter queuing — for
 * every workload. Serialized JSON compares every double exactly.
 */
TEST(NpuChip, OneEngineMatchesSingleCoreBitForBitEveryApp)
{
    std::vector<std::string> names = apps::allAppNames();
    for (const std::string &ext : apps::extensionAppNames())
        names.push_back(ext);
    for (const std::string &app : names) {
        const core::ExperimentConfig cfg = smallConfig();
        const NpuConfig npuCfg; // 1 PE, rr, uniform

        const ChipExperimentResult chip =
            runChipExperiment(apps::appFactory(app), cfg, npuCfg);
        const core::ExperimentResult single =
            core::runExperiment(apps::appFactory(app), cfg);

        EXPECT_EQ(sweep::experimentResultJson(chip.core),
                  sweep::experimentResultJson(single))
            << "app " << app;
        // The lone engine got every packet and never waited for the
        // shared port.
        EXPECT_EQ(chip.goldenChip.l2PortWaits, 0.0) << app;
        EXPECT_EQ(chip.goldenChip.loadImbalance, 1.0) << app;
    }
}

// --- determinism ------------------------------------------------------

TEST(NpuChip, RepeatRunsAreByteIdentical)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::ShortestQueue;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);

    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(a.goldenChip.makespanCycles, b.goldenChip.makespanCycles);
    EXPECT_EQ(a.goldenChip.pePackets, b.goldenChip.pePackets);
    EXPECT_EQ(a.faultyChip.chipEdf, b.faultyChip.chipEdf);
    EXPECT_EQ(a.faultyChip.l2PortWaitCycles,
              b.faultyChip.l2PortWaitCycles);
}

// --- dispatch policies ------------------------------------------------

/**
 * Flow affinity: with FlowHash dispatch every packet of a 5-tuple
 * flow lands on hash % N — the engine the flow is pinned to — so NAT
 * bindings and DRR deficits stay engine-local. Verified against a
 * regenerated copy of the trace.
 */
TEST(NpuDispatch, FlowHashPinsEveryFlowToOneEngine)
{
    core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::FlowHash;

    const ChipRun golden =
        runChipGolden(apps::appFactory("nat"), cfg, npuCfg);

    net::TraceConfig tc = apps::makeApp("nat")->traceConfig();
    tc.seed = cfg.traceSeed;
    net::TraceGenerator gen(tc);
    const auto trace = gen.generate(cfg.numPackets);

    ASSERT_EQ(golden.completions.size(), trace.size());
    unsigned perPe[4] = {0, 0, 0, 0};
    for (const auto &pkt : trace) {
        const auto it = golden.completions.find(pkt.seq);
        ASSERT_NE(it, golden.completions.end()) << "seq " << pkt.seq;
        EXPECT_EQ(it->second.first, flowHash(pkt) % 4u)
            << "seq " << pkt.seq;
        ++perPe[it->second.first];
    }
    // The hash actually spreads the flows: no engine is idle.
    for (unsigned pe = 0; pe < 4; ++pe)
        EXPECT_GT(perPe[pe], 0u) << "PE " << pe;
}

TEST(NpuDispatch, PoliciesAreDeterministicPureFunctions)
{
    net::TraceGenerator gen(net::TraceConfig{});
    const auto trace = gen.generate(32);
    const std::vector<unsigned> depths = {3, 1, 2};
    const std::vector<char> alive = {1, 1, 1};

    // ShortestQueue: least-loaded engine, ties to the lowest id.
    Dispatcher shortest(DispatchPolicy::ShortestQueue, 3);
    EXPECT_EQ(shortest.choose(trace[0], depths, alive), 1);
    EXPECT_EQ(shortest.choose(trace[1], {2, 2, 2}, alive), 0);

    // RoundRobin cycles and skips dead engines.
    Dispatcher rr(DispatchPolicy::RoundRobin, 3);
    EXPECT_EQ(rr.choose(trace[0], depths, alive), 0);
    EXPECT_EQ(rr.choose(trace[1], depths, alive), 1);
    EXPECT_EQ(rr.choose(trace[2], depths, {1, 1, 0}), 2 % 2);
    // A fully-dead chip has nowhere to put the packet.
    EXPECT_EQ(rr.choose(trace[3], depths, {0, 0, 0}), -1);

    // FlowHash is stable per packet and -1 when the flow's engine is
    // dead rather than rehashing (state lives on that engine).
    Dispatcher flow(DispatchPolicy::FlowHash, 3);
    const int pe = flow.choose(trace[0], depths, alive);
    ASSERT_GE(pe, 0);
    EXPECT_EQ(flow.choose(trace[0], {9, 9, 9}, alive), pe);
    std::vector<char> peDead = alive;
    peDead[static_cast<std::size_t>(pe)] = 0;
    EXPECT_EQ(flow.choose(trace[0], depths, peDead), -1);
}

// --- shared-L2 contention ---------------------------------------------

TEST(NpuChip, SharedPortContentionAppearsOnlyWithMultipleEngines)
{
    const core::ExperimentConfig cfg = smallConfig();

    NpuConfig one;
    const ChipRun lone =
        runChipGolden(apps::appFactory("route"), cfg, one);
    EXPECT_EQ(lone.chip.l2PortWaits, 0.0);
    EXPECT_EQ(lone.chip.l2PortWaitCycles, 0.0);

    NpuConfig four;
    four.peCount = 4;
    const ChipRun crowd =
        runChipGolden(apps::appFactory("route"), cfg, four);
    // Four engines hammering one port: some accesses must queue, and
    // every wait accounts positive time.
    EXPECT_GT(crowd.chip.l2PortWaits, 0.0);
    EXPECT_GT(crowd.chip.l2PortWaitCycles, 0.0);
    // Queuing stretches the engines' cycle counts: the contended chip
    // cannot be 4x faster than the lone engine.
    EXPECT_GT(crowd.chip.makespanCycles * 4.0,
              lone.chip.makespanCycles);
}

// --- bounded queues ---------------------------------------------------

TEST(NpuChip, TinyQueueDropsWhenConfiguredToDrop)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 400;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.queueCapacity = 1;
    npuCfg.dropWhenFull = true;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    EXPECT_GT(r.chip.dropsQueueFull, 0.0);
    EXPECT_EQ(r.chip.backpressureStalls, 0.0);
    // Every generated packet was either completed or dropped.
    EXPECT_EQ(r.merged.packetsProcessed + r.chip.dropsQueueFull,
              400.0);
    EXPECT_EQ(r.completions.size(),
              static_cast<std::size_t>(r.merged.packetsProcessed));
}

TEST(NpuChip, TinyQueueBackpressuresByDefault)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 400;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.queueCapacity = 1;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    // Backpressure holds arrivals instead of dropping: every packet
    // completes and the stalls are visible.
    EXPECT_EQ(r.chip.dropsQueueFull, 0.0);
    EXPECT_GT(r.chip.backpressureStalls, 0.0);
    EXPECT_EQ(r.merged.packetsProcessed, 400u);
}

// --- dead engines -----------------------------------------------------

/**
 * When fatal control-plane corruption kills engines, packets bound to
 * them (flow dispatch never re-homes a flow) are dropped and counted,
 * and the chip keeps going with whatever is still alive.
 */
TEST(NpuChip, DeadEnginesDropTheirPackets)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.trials = 2;
    cfg.cr = 0.25;
    cfg.faultScale = 100.0;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = DispatchPolicy::FlowHash;

    const ChipExperimentResult res =
        runChipExperiment(apps::appFactory("crc"), cfg, npuCfg);
    EXPECT_GT(res.faultyChip.dropsDeadPe, 0.0);
    EXPECT_LT(res.core.faulty.packetsProcessed, 400u);
    // The golden chip is fault-free: nothing died, nothing dropped.
    EXPECT_EQ(res.goldenChip.dropsDeadPe, 0.0);
    EXPECT_EQ(res.core.golden.packetsProcessed, 400u);
}

// --- heterogeneous operating points -----------------------------------

TEST(NpuChip, PerEngineCrMakesFasterEnginesTakeMorePackets)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = DispatchPolicy::ShortestQueue;
    npuCfg.perPeCr = {1.0, 0.25}; // engine 1 clocked 4x faster
    // Shallow queues: admission tracks drain rate, so the faster
    // engine's queue opens up more often and it wins more packets.
    npuCfg.queueCapacity = 2;
    // A free port isolates the engines: with nonzero service times
    // the shared-port FIFO rate-matches the engines under saturation
    // (the slower engine sets the frontier every packet), which is
    // contention behaviour, not the speed difference under test here.
    npuCfg.portHitCycles = 0;
    npuCfg.portMissCycles = 0;

    const ChipRun r = runChipGolden(apps::appFactory("crc"), cfg,
                                    npuCfg);
    ASSERT_EQ(r.chip.pePackets.size(), 2u);
    EXPECT_GT(r.chip.pePackets[1], r.chip.pePackets[0]);
}

// --- MSHR-overlapped shared port --------------------------------------

/**
 * Port arithmetic with K MSHRs: K transfers overlap free of charge,
 * transfer K+1 queues behind the slot that frees first. Times here
 * are raw quanta fed straight to the arbiter.
 */
TEST(SharedL2, MshrsLetKTransfersOverlap)
{
    SharedL2Port port(4, 16, 2);
    // Two misses land at chip time 16 (each with its 16-quanta
    // service window [0, 16) inside its own latency): both take a
    // free MSHR, nobody waits.
    EXPECT_EQ(port.requestPort(0, 16, 1, 1), 0);
    EXPECT_EQ(port.requestPort(1, 16, 1, 1), 0);
    // The third concurrent miss finds both MSHRs busy until 16: its
    // window [0, 16) slides to [16, 32).
    EXPECT_EQ(port.requestPort(2, 16, 1, 1), 16);
    EXPECT_EQ(port.busyUntil(), 32);
    EXPECT_EQ(port.stats().get("contended"), 1u);
    EXPECT_EQ(port.stats().get("wait_quanta"), 16u);
    // Zero-service requests never occupy an MSHR.
    EXPECT_EQ(port.requestPort(3, 40, 0, 0), 0);
}

TEST(SharedL2, SingleMshrSerializesLikeTheOriginalFifo)
{
    SharedL2Port port(4, 16, 1);
    EXPECT_EQ(port.requestPort(0, 16, 1, 1), 0);
    // With one MSHR the second concurrent miss queues immediately —
    // the pre-MSHR FIFO behaviour.
    EXPECT_EQ(port.requestPort(1, 16, 1, 1), 16);
    EXPECT_EQ(port.mshrs(), 1u);
}

TEST(NpuChip, MoreMshrsShrinkPortWaitsAndMakespan)
{
    const core::ExperimentConfig cfg = smallConfig();
    NpuConfig one;
    one.peCount = 4;
    one.mshrs = 1;
    NpuConfig four;
    four.peCount = 4;
    four.mshrs = 4;

    const ChipRun serial =
        runChipGolden(apps::appFactory("route"), cfg, one);
    const ChipRun overlap =
        runChipGolden(apps::appFactory("route"), cfg, four);
    // Four engines, one slot: heavy queuing. Four slots: the same
    // four engines' misses overlap, so waits shrink and the chip
    // finishes sooner.
    EXPECT_GT(serial.chip.l2PortWaitCycles, 0.0);
    EXPECT_LT(overlap.chip.l2PortWaitCycles,
              serial.chip.l2PortWaitCycles);
    EXPECT_LT(overlap.chip.makespanCycles, serial.chip.makespanCycles);
}

// --- per-PE DVS -------------------------------------------------------

/**
 * dvs=static is the ablation baseline: even when the experiment asks
 * for dynamic frequency, every engine stays frozen at the launch Cr
 * and no epoch decisions happen.
 */
TEST(NpuDvs, StaticModeFreezesEveryEngine)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.dynamicFrequency = true;
    NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dvs = DvsMode::Static;

    const ChipExperimentResult res =
        runChipExperiment(apps::appFactory("crc"), cfg, npuCfg);
    EXPECT_EQ(res.core.faulty.freqSwitches, 0u);
    for (unsigned pe = 0; pe < 2; ++pe) {
        EXPECT_EQ(res.faultyChip.peEpochs[pe], 0.0) << pe;
        EXPECT_EQ(res.faultyChip.peCrFinal[pe], 0.5) << pe;
        EXPECT_EQ(res.faultyChip.peCrMean[pe], 0.5) << pe;
    }
}

/**
 * dvs=queue under flow-skewed saturation: every engine closes the
 * same number of chip-level epochs, but each adapts to its own queue,
 * so the per-engine Cr trajectories diverge — the per-PE DVS claim.
 */
TEST(NpuDvs, QueueModeDivergesPerEngineCrTrajectories)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 2000;
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::FlowHash;
    npuCfg.queueCapacity = 4;
    npuCfg.dvs = DvsMode::Queue;

    const ChipExperimentResult res =
        runChipExperiment(apps::appFactory("crc"), cfg, npuCfg);
    const ChipMetrics &chip = res.faultyChip;
    ASSERT_EQ(chip.peCrMean.size(), 4u);
    // Chip-level epochs: every engine decided 2000/100 = 20 times.
    for (unsigned pe = 0; pe < 4; ++pe)
        EXPECT_EQ(chip.peEpochs[pe], 20.0) << pe;
    // The trajectories moved (some engine stepped somewhere)...
    double steps = 0.0;
    for (unsigned pe = 0; pe < 4; ++pe)
        steps += chip.peStepsUp[pe] + chip.peStepsDown[pe];
    EXPECT_GT(steps, 0.0);
    // ...and they are not all the same trajectory: at least two
    // engines ended with different residency-weighted mean Cr.
    bool diverged = false;
    for (unsigned pe = 1; pe < 4; ++pe)
        diverged |= chip.peCrMean[pe] != chip.peCrMean[0];
    EXPECT_TRUE(diverged);
    // The golden chip never adapts (golden runs are always static).
    for (unsigned pe = 0; pe < 4; ++pe)
        EXPECT_EQ(res.goldenChip.peEpochs[pe], 0.0) << pe;
}

/** Idle engines back their clocks off toward full swing (Cr = 1). */
TEST(NpuDvs, IdleEnginesBackOffToFullSwing)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.numPackets = 600;
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dvs = DvsMode::Queue;
    npuCfg.arrivalGapCycles = 30000; // far below chip capacity

    const ChipExperimentResult res =
        runChipExperiment(apps::appFactory("crc"), cfg, npuCfg);
    for (unsigned pe = 0; pe < 4; ++pe) {
        EXPECT_EQ(res.faultyChip.peCrFinal[pe], 1.0) << pe;
        EXPECT_GT(res.faultyChip.peStepsDown[pe], 0.0) << pe;
        EXPECT_EQ(res.faultyChip.peStepsUp[pe], 0.0) << pe;
    }
}

/**
 * The headline regression: on an overloaded chip launched at the slow
 * full-swing clock, per-PE queue-driven DVS speeds the busy engines
 * up and beats the static baseline on chip ED2F2. (EXPERIMENTS.md
 * records the full 8-app comparison; route is the representative
 * pinned here.)
 */
TEST(NpuDvs, QueueModeBeatsStaticOnChipEdfUnderOverload)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    cfg.trials = 3;
    cfg.cr = 1.0;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    NpuConfig base;
    base.peCount = 4;
    base.dispatch = DispatchPolicy::FlowHash;
    base.arrivalGapCycles = 99; // ~1/3 of route's per-packet cost

    NpuConfig st = base;
    st.dvs = DvsMode::Static;
    NpuConfig qu = base;
    qu.dvs = DvsMode::Queue;

    const ChipExperimentResult rs =
        runChipExperiment(apps::appFactory("route"), cfg, st);
    const ChipExperimentResult rq =
        runChipExperiment(apps::appFactory("route"), cfg, qu);
    EXPECT_LT(rq.faultyChip.chipEdf, rs.faultyChip.chipEdf);
    // The win comes from busy engines clocking up off the slow launch
    // point, which shortens the makespan.
    EXPECT_LT(rq.faultyChip.makespanCycles,
              rs.faultyChip.makespanCycles);
    double ups = 0.0;
    for (double u : rq.faultyChip.peStepsUp)
        ups += u;
    EXPECT_GT(ups, 0.0);
}

/** dvs=queue runs are as deterministic as everything else. */
TEST(NpuDvs, QueueModeRepeatsByteIdentical)
{
    core::ExperimentConfig cfg = smallConfig();
    NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = DispatchPolicy::FlowHash;
    npuCfg.dvs = DvsMode::Queue;
    npuCfg.mshrs = 2;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(sweep::chipMetricsJson(a.faultyChip),
              sweep::chipMetricsJson(b.faultyChip));
}

// --- dispatch-policy ablation -----------------------------------------

/**
 * The dispatch ablation the ROADMAP asked for, pinned as relations
 * (absolute numbers live in EXPERIMENTS.md):
 *
 *  - one engine: the policy cannot matter — all three are
 *    bit-identical;
 *  - crc keeps no per-flow state, so on an overlapped port the
 *    policies are throughput-ties within a small tolerance;
 *  - nat carries per-flow bindings: flow-hash keeps each binding on
 *    one engine and beats shortest-queue;
 *  - drr's flow-skewed arrivals overload flow-hash's hot engines:
 *    shortest-queue wins even though flow-hash's cache locality is
 *    real (its miss rate is lower).
 */
TEST(NpuDispatchAblation, OneEnginePoliciesAreBitIdentical)
{
    const core::ExperimentConfig cfg = smallConfig();
    std::vector<std::string> jsons;
    for (const DispatchPolicy d :
         {DispatchPolicy::RoundRobin, DispatchPolicy::FlowHash,
          DispatchPolicy::ShortestQueue}) {
        NpuConfig npuCfg;
        npuCfg.peCount = 1;
        npuCfg.dispatch = d;
        const ChipExperimentResult r =
            runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
        jsons.push_back(sweep::experimentResultJson(r.core) +
                        sweep::chipMetricsJson(r.faultyChip));
    }
    EXPECT_EQ(jsons[0], jsons[1]);
    EXPECT_EQ(jsons[0], jsons[2]);
}

namespace
{

/** Golden-chip throughput of @p app on 4 engines, mshrs=4. */
ChipRun
ablationRun(const std::string &app, DispatchPolicy dispatch,
            unsigned pes)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    cfg.trials = 1;
    cfg.cr = 0.5;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    NpuConfig npuCfg;
    npuCfg.peCount = pes;
    npuCfg.dispatch = dispatch;
    npuCfg.mshrs = 4; // overlapped port: dispatch, not the port,
                      // decides the outcome
    return runChipGolden(apps::appFactory(app), cfg, npuCfg);
}

} // namespace

TEST(NpuDispatchAblation, StatelessCrcIsAThroughputTie)
{
    for (const unsigned pes : {2u, 4u}) {
        const ChipRun flow =
            ablationRun("crc", DispatchPolicy::FlowHash, pes);
        const ChipRun shortest =
            ablationRun("crc", DispatchPolicy::ShortestQueue, pes);
        // No per-flow state to keep warm: the same work lands
        // somewhere either way. Allow 2% for schedule noise.
        EXPECT_NEAR(flow.chip.throughputPps,
                    shortest.chip.throughputPps,
                    0.02 * shortest.chip.throughputPps)
            << pes << " engines";
    }
}

TEST(NpuDispatchAblation, FlowAffinityWinsOnStatefulNat)
{
    for (const unsigned pes : {2u, 4u}) {
        const ChipRun flow =
            ablationRun("nat", DispatchPolicy::FlowHash, pes);
        const ChipRun shortest =
            ablationRun("nat", DispatchPolicy::ShortestQueue, pes);
        EXPECT_GT(flow.chip.throughputPps,
                  shortest.chip.throughputPps)
            << pes << " engines";
    }
}

TEST(NpuDispatchAblation, ImbalanceCostsFlowHashTheWinOnDrr)
{
    const ChipRun flow = ablationRun("drr", DispatchPolicy::FlowHash, 4);
    const ChipRun shortest =
        ablationRun("drr", DispatchPolicy::ShortestQueue, 4);
    // Flow-hash's locality is real — its D-cache misses are rarer —
    // but its hot engines bound the makespan and it loses throughput.
    EXPECT_GT(flow.chip.loadImbalance, shortest.chip.loadImbalance);
    EXPECT_LT(flow.chip.throughputPps, shortest.chip.throughputPps);
}

// --- config validation ------------------------------------------------

TEST(NpuConfigDeath, Validation)
{
    const mem::HierarchyConfig hier;
    NpuConfig cfg;
    cfg.peCount = 0;
    EXPECT_DEATH(cfg.validate(hier), "engine");
    cfg = NpuConfig{};
    cfg.perPeCr = {1.0, 0.5}; // size != peCount
    EXPECT_DEATH(cfg.validate(hier), "every engine");
    cfg = NpuConfig{};
    cfg.portHitCycles = hier.l2HitCycles + 1;
    EXPECT_DEATH(cfg.validate(hier), "port");
    cfg = NpuConfig{};
    cfg.mshrs = 0;
    EXPECT_DEATH(cfg.validate(hier), "MSHR");
}

TEST(NpuConfig, DvsModeNamesRoundTrip)
{
    for (const DvsMode m :
         {DvsMode::Static, DvsMode::Fault, DvsMode::Queue})
        EXPECT_EQ(dvsFromString(to_string(m)), m);
    EXPECT_EXIT(dvsFromString("turbo"),
                ::testing::ExitedWithCode(1),
                "valid choices: static, fault, queue");
}

/**
 * An unknown policy name must be a hard error that names the valid
 * choices — not a silent fall-through to round-robin. (The same
 * contract is checked end-to-end against the clumsy_npu binary by the
 * cli_npu_* CTest cases in tools/CMakeLists.txt.)
 */
TEST(NpuConfig, DispatchNamesRoundTrip)
{
    for (const DispatchPolicy d :
         {DispatchPolicy::RoundRobin, DispatchPolicy::FlowHash,
          DispatchPolicy::ShortestQueue})
        EXPECT_EQ(dispatchFromString(to_string(d)), d);
    EXPECT_EXIT(dispatchFromString("random"),
                ::testing::ExitedWithCode(1),
                "valid choices: rr, flow, shortest");
}

// --- horizon-stepped chip parallelism --------------------------------

/**
 * The chip-jobs determinism contract, end to end: for every workload,
 * a chip experiment at chip-jobs=4 (parallel engine bring-up, parallel
 * store diffing, concurrent faulty trials) must be byte-identical to
 * the serial run — core aggregates and both chip metric blocks.
 * Serialized JSON compares every double exactly.
 */
TEST(ChipParallel, ChipJobsByteIdenticalForEveryApp)
{
    std::vector<std::string> names = apps::allAppNames();
    for (const std::string &ext : apps::extensionAppNames())
        names.push_back(ext);
    for (const std::string &app : names) {
        core::ExperimentConfig cfg = smallConfig();
        cfg.numPackets = 200;
        NpuConfig serial;
        serial.peCount = 4;
        serial.dispatch = DispatchPolicy::FlowHash;
        serial.dvs = DvsMode::Queue;
        serial.l2 = L2Mode::Shared;
        serial.mshrs = 2;
        NpuConfig parallel = serial;
        parallel.chipJobs = 4;

        const ChipExperimentResult a =
            runChipExperiment(apps::appFactory(app), cfg, serial);
        const ChipExperimentResult b =
            runChipExperiment(apps::appFactory(app), cfg, parallel);

        EXPECT_EQ(sweep::experimentResultJson(a.core),
                  sweep::experimentResultJson(b.core))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.goldenChip),
                  sweep::chipMetricsJson(b.goldenChip))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.faultyChip),
                  sweep::chipMetricsJson(b.faultyChip))
            << "app " << app;
    }
}

/**
 * chip-jobs=0 resolves to the machine's hardware default; whatever
 * that is, the result must still match the serial run (the ISSUE's
 * contract is "byte-identical for every value").
 */
TEST(ChipParallel, HardwareDefaultChipJobsMatchesSerial)
{
    core::ExperimentConfig cfg = smallConfig();
    NpuConfig serial;
    serial.peCount = 8;
    serial.dvs = DvsMode::Queue;
    serial.l2 = L2Mode::Shared;
    serial.mshrs = 4;
    NpuConfig autoJobs = serial;
    autoJobs.chipJobs = 0;

    const ChipExperimentResult a =
        runChipExperiment(apps::appFactory("route"), cfg, serial);
    const ChipExperimentResult b =
        runChipExperiment(apps::appFactory("route"), cfg, autoJobs);

    EXPECT_EQ(sweep::experimentResultJson(a.core),
              sweep::experimentResultJson(b.core));
    EXPECT_EQ(sweep::chipMetricsJson(a.goldenChip),
              sweep::chipMetricsJson(b.goldenChip));
    EXPECT_EQ(sweep::chipMetricsJson(a.faultyChip),
              sweep::chipMetricsJson(b.faultyChip));
}

/**
 * Single-trial experiments exercise the degenerate fan-out (the trial
 * pool collapses to one job but bring-up still runs parallel), and a
 * one-engine chip exercises a one-job bring-up pool. Neither may
 * disturb the single-core bit-equivalence guarantee.
 */
TEST(ChipParallel, OneEngineOneTrialStaysSingleCoreIdentical)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.trials = 1;
    NpuConfig npuCfg; // 1 PE, rr, uniform
    npuCfg.chipJobs = 4;

    const ChipExperimentResult chip =
        runChipExperiment(apps::appFactory("nat"), cfg, npuCfg);
    const core::ExperimentResult single =
        core::runExperiment(apps::appFactory("nat"), cfg);

    EXPECT_EQ(sweep::experimentResultJson(chip.core),
              sweep::experimentResultJson(single));
}

// --- control-plane churn on the chip ---------------------------------

/**
 * Peak update churn must not break the chip-jobs determinism contract:
 * every engine drains its private copy of the control stream against
 * its own packets' trace sequence numbers, so applied-update state
 * depends only on the dispatcher's (deterministic) placement — never
 * on worker count or scheduling. Byte-compare all three JSON blocks.
 */
TEST(ChipParallel, UpdateChurnChipJobsByteIdentical)
{
    for (const std::string &app : {std::string("lpm"),
                                   std::string("nat"),
                                   std::string("session")}) {
        core::ExperimentConfig cfg = smallConfig();
        cfg.numPackets = 200;
        cfg.ctrl.rate = 200; // peak churn: ~one event per 5 packets
        NpuConfig serial;
        serial.peCount = 4;
        serial.dispatch = DispatchPolicy::FlowHash;
        serial.l2 = L2Mode::Shared;
        serial.mshrs = 2;
        NpuConfig parallel = serial;
        parallel.chipJobs = 4;

        const ChipExperimentResult a =
            runChipExperiment(apps::appFactory(app), cfg, serial);
        const ChipExperimentResult b =
            runChipExperiment(apps::appFactory(app), cfg, parallel);

        EXPECT_GT(a.core.golden.ctrlEventsApplied, 0u) << "app " << app;
        EXPECT_EQ(sweep::experimentResultJson(a.core),
                  sweep::experimentResultJson(b.core))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.goldenChip),
                  sweep::chipMetricsJson(b.goldenChip))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.faultyChip),
                  sweep::chipMetricsJson(b.faultyChip))
            << "app " << app;
    }
}

/**
 * On a one-engine chip every packet keeps its trace order, so the
 * engine must drain the control stream at exactly the points the
 * single-core harness does — churn must not disturb the 1-PE
 * bit-equivalence guarantee.
 */
TEST(ChipParallel, OneEngineUnderChurnStaysSingleCoreIdentical)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.ctrl.rate = 100;
    cfg.ctrl.mix = ctrl::CtrlMix::Fib;
    NpuConfig npuCfg; // 1 PE, rr, uniform
    npuCfg.chipJobs = 4;

    const ChipExperimentResult chip =
        runChipExperiment(apps::appFactory("lpm"), cfg, npuCfg);
    const core::ExperimentResult single =
        core::runExperiment(apps::appFactory("lpm"), cfg);

    EXPECT_GT(chip.core.golden.ctrlEventsApplied, 0u);
    EXPECT_EQ(sweep::experimentResultJson(chip.core),
              sweep::experimentResultJson(single));
}

/**
 * Fault maps on a multi-engine chip must not break the chip-jobs
 * determinism contract: each engine builds its own per-PE-salted map
 * at construction and way-disable state lives entirely inside the
 * engine, so worker count can't reorder anything observable. Flow
 * churn on top exercises the full traffic model against the mapped
 * injection path. Byte-compare all three JSON blocks, serial vs 4
 * workers.
 */
TEST(ChipParallel, FaultMapUnderChurnChipJobsByteIdentical)
{
    for (const std::string &app : {std::string("nat"),
                                   std::string("session")}) {
        core::ExperimentConfig cfg = smallConfig();
        cfg.numPackets = 200;
        cfg.churnLifetime = 64; // force the churn traffic model on
        cfg.processor.faultMap =
            fault::faultMapSpecFromString("spatial");
        cfg.processor.hierarchy.wayDisable.retireThreshold = 2;
        NpuConfig serial;
        serial.peCount = 4;
        serial.dispatch = DispatchPolicy::FlowHash;
        serial.l2 = L2Mode::Shared;
        serial.mshrs = 2;
        NpuConfig parallel = serial;
        parallel.chipJobs = 4;

        const ChipExperimentResult a =
            runChipExperiment(apps::appFactory(app), cfg, serial);
        const ChipExperimentResult b =
            runChipExperiment(apps::appFactory(app), cfg, parallel);

        EXPECT_GT(a.core.faulty.faultsInjected, 0u) << "app " << app;
        EXPECT_EQ(sweep::experimentResultJson(a.core),
                  sweep::experimentResultJson(b.core))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.goldenChip),
                  sweep::chipMetricsJson(b.goldenChip))
            << "app " << app;
        EXPECT_EQ(sweep::chipMetricsJson(a.faultyChip),
                  sweep::chipMetricsJson(b.faultyChip))
            << "app " << app;
    }
}
