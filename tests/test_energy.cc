/**
 * @file
 * Tests of cacti-lite and the chip energy model.
 */

#include <gtest/gtest.h>

#include "energy/cacti_lite.hh"
#include "energy/chip_energy.hh"
#include "fault/swing.hh"

using namespace clumsy;
using namespace clumsy::energy;

namespace
{

const CacheGeometry kL1{4096, 1, 32, 22};
const CacheGeometry kL1i{4096, 1, 32, 22};
const CacheGeometry kL2{131072, 4, 128, 15};

} // namespace

TEST(CactiLite, GeometryDerivation)
{
    const CactiLite l1(kL1);
    EXPECT_EQ(l1.geometry().sets(), 128u);
    EXPECT_LE(l1.subarrayRows(), 128u);
    EXPECT_LE(l1.subarrayCols(), 512u);
    EXPECT_EQ(l1.activeSubarrays(), 1u);

    const CactiLite l2(kL2);
    EXPECT_EQ(l2.geometry().sets(), 256u);
    EXPECT_EQ(l2.activeSubarrays(), 4u);
}

TEST(CactiLite, BiggerCacheCostsMore)
{
    const CactiLite l1(kL1);
    const CactiLite l2(kL2);
    EXPECT_GT(l2.readEnergy().total(), l1.readEnergy().total());
    EXPECT_GT(l2.accessTimeNs(), l1.accessTimeNs());
}

TEST(CactiLite, WritesCostMoreThanReads)
{
    const CactiLite l1(kL1);
    EXPECT_GT(l1.writeEnergy().total(), l1.readEnergy().total());
    EXPECT_EQ(l1.writeEnergy().senseAmp, 0.0);
}

TEST(CactiLite, BreakdownSumsToTotal)
{
    const AccessEnergy e = CactiLite(kL1).readEnergy();
    EXPECT_DOUBLE_EQ(e.total(), e.decoder + e.wordline + e.bitline +
                                    e.senseAmp + e.output);
    EXPECT_GT(e.bitline, e.wordline); // bitlines dominate SRAM energy
}

TEST(CactiLiteDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(CactiLite(CacheGeometry{0, 1, 32, 22}),
                 "non-degenerate");
    EXPECT_DEATH(CactiLite(CacheGeometry{4096, 3, 32, 22}), "");
}

TEST(ChipEnergy, MontanaroBudget)
{
    const EnergyModel model(EnergyParams{}, kL1, kL1i, kL2);
    // 0.5 W / 160 MHz = 3125 pJ per cycle.
    EXPECT_NEAR(model.chipPerCyclePj(), 3125.0, 1e-9);
    // rest = (1 - 0.27 - 0.16) of the chip.
    EXPECT_NEAR(model.restPerCyclePj(), 3125.0 * 0.57, 1e-9);
}

TEST(ChipEnergy, L1dShareCalibration)
{
    const EnergyParams params;
    const EnergyModel model(params, kL1, kL1i, kL2);
    // At the calibration profile, D-cache energy per cycle equals its
    // Montanaro share: accesses/cycle * mixed access energy.
    const double mixed =
        params.l1dReadFraction * model.l1dReadPj(1.0, Protection::None) +
        (1 - params.l1dReadFraction) * model.l1dWritePj(1.0, Protection::None);
    EXPECT_NEAR(params.l1dAccessesPerCycle * mixed,
                params.l1dFraction * model.chipPerCyclePj(), 1e-6);
}

TEST(ChipEnergy, SwingScalingMatchesPaper)
{
    const EnergyModel model(EnergyParams{}, kL1, kL1i, kL2);
    const double base = model.l1dReadPj(1.0, Protection::None);
    EXPECT_NEAR(model.l1dReadPj(0.25, Protection::None) / base, 0.555, 0.01);
    EXPECT_NEAR(model.l1dReadPj(0.50, Protection::None) / base, 0.818, 0.01);
    EXPECT_NEAR(model.l1dReadPj(0.75, Protection::None) / base, 0.941, 0.01);
}

TEST(ChipEnergy, PhelanParityOverheads)
{
    const EnergyModel model(EnergyParams{}, kL1, kL1i, kL2);
    EXPECT_NEAR(model.l1dReadPj(1.0, Protection::Parity) /
                    model.l1dReadPj(1.0, Protection::None),
                1.23, 1e-9);
    EXPECT_NEAR(model.l1dWritePj(1.0, Protection::Parity) /
                    model.l1dWritePj(1.0, Protection::None),
                1.36, 1e-9);
}

TEST(EnergyAccount, AccumulatesByEvent)
{
    const EnergyModel model(EnergyParams{}, kL1, kL1i, kL2);
    EnergyAccount account(&model);
    EXPECT_DOUBLE_EQ(account.totalPj(), 0.0);
    account.addCoreCycles(10.0);
    EXPECT_NEAR(account.restPj(), 10.0 * model.restPerCyclePj(),
                1e-9);
    account.addL1dRead(1.0, Protection::None);
    account.addL1dWrite(1.0, Protection::None);
    EXPECT_NEAR(account.l1dPj(),
                model.l1dReadPj(1.0, Protection::None) +
                    model.l1dWritePj(1.0, Protection::None),
                1e-9);
    account.addL2Access();
    EXPECT_NEAR(account.l2Pj(), model.l2AccessPj(), 1e-9);
    account.addL1iRead();
    account.addMemAccess();
    EXPECT_GT(account.totalPj(),
              account.restPj() + account.l1dPj() + account.l2Pj());
    account.reset();
    EXPECT_DOUBLE_EQ(account.totalPj(), 0.0);
}

TEST(ChipEnergy, OverClockingSavesCacheEnergy)
{
    // The headline direction: at Cr = 0.25 the D-cache spends less
    // even with parity on.
    const EnergyModel model(EnergyParams{}, kL1, kL1i, kL2);
    EXPECT_LT(model.l1dReadPj(0.25, Protection::Parity),
              model.l1dReadPj(1.0, Protection::Parity));
    EXPECT_LT(model.l1dWritePj(0.25, Protection::None),
              model.l1dWritePj(1.0, Protection::None));
}
