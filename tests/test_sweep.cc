/**
 * @file
 * Tests of the sweep engine: grid parsing and expansion, scheduler
 * determinism across worker counts, the JSON sink, and --resume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>

#include "apps/app.hh"
#include "common/pool.hh"
#include "core/experiment.hh"
#include "ctrl/ctrl.hh"
#include "sweep/json.hh"
#include "sweep/runner.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"

using namespace clumsy;
using namespace clumsy::sweep;

namespace
{

/** A small two-cell spec that still exercises faults and trials. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.apps = {"crc"};
    spec.points = {{0.5, false}, {0.25, false}};
    spec.schemes = {mem::RecoveryScheme::TwoStrike};
    spec.packets = 120;
    spec.trials = 3;
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Drop the final (wall_ms) column from every CSV line. */
std::string
stripWallColumn(const std::string &csv)
{
    std::string out;
    std::size_t start = 0;
    while (start < csv.size()) {
        std::size_t end = csv.find('\n', start);
        if (end == std::string::npos)
            end = csv.size();
        const std::string line = csv.substr(start, end - start);
        const std::size_t comma = line.rfind(',');
        out += line.substr(0, comma) + "\n";
        start = end + 1;
    }
    return out;
}

} // namespace

// --- grid string parsing and expansion -------------------------------

TEST(SweepSpec, ParseAppliesDefaultsAndOverrides)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=route,md5;cr=1,0.5,dynamic;scheme=two-strike;trials=8");
    EXPECT_EQ(spec.apps, (std::vector<std::string>{"route", "md5"}));
    ASSERT_EQ(spec.points.size(), 3u);
    EXPECT_DOUBLE_EQ(spec.points[0].cr, 1.0);
    EXPECT_FALSE(spec.points[0].dynamic);
    EXPECT_DOUBLE_EQ(spec.points[1].cr, 0.5);
    EXPECT_TRUE(spec.points[2].dynamic);
    EXPECT_EQ(spec.schemes,
              (std::vector<mem::RecoveryScheme>{
                  mem::RecoveryScheme::TwoStrike}));
    EXPECT_EQ(spec.trials, 8u);
    // Untouched dimensions keep their single-value defaults.
    EXPECT_EQ(spec.codecs,
              (std::vector<mem::CheckCodec>{mem::CheckCodec::Parity}));
    EXPECT_EQ(spec.planes,
              (std::vector<core::FaultPlane>{core::FaultPlane::Both}));
    EXPECT_EQ(spec.faultScales, (std::vector<double>{1.0}));
    EXPECT_EQ(spec.packets, 2000u);
    EXPECT_EQ(spec.cellCount(), 2u * 3u);
}

TEST(SweepSpec, GridStringRoundTrips)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=crc,url;cr=0.75,dynamic;scheme=all;codec=parity,secded;"
        "plane=both,data;fault-scale=1,2.5;packets=500;trials=2;"
        "seed=42;fault-seed=7");
    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    const auto cellsAgain = expand(again);
    ASSERT_EQ(cells.size(), cellsAgain.size());
    EXPECT_EQ(cells.size(), spec.cellCount());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].key(), cellsAgain[i].key());
    EXPECT_EQ(again.packets, 500u);
    EXPECT_EQ(again.traceSeed, 42u);
    EXPECT_EQ(again.faultSeed, 7u);
}

TEST(SweepSpec, ExpansionOrderIsCanonical)
{
    SweepSpec spec;
    spec.apps = {"crc", "md5"};
    spec.points = {{1.0, false}, {0.5, false}};
    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    // App is the outermost dimension, then the operating point.
    EXPECT_EQ(cells[0].key(),
              "app=crc;cr=1;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1");
    EXPECT_EQ(cells[1].key(),
              "app=crc;cr=0.5;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1");
    EXPECT_EQ(cells[2].app, "md5");
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].index, i);
}

TEST(SweepSpec, MakeConfigCarriesEveryKnob)
{
    SweepSpec spec = smallSpec();
    spec.faultScales = {2.0};
    spec.codecs = {mem::CheckCodec::Secded};
    spec.planes = {core::FaultPlane::DataOnly};
    const auto cells = expand(spec);
    const core::ExperimentConfig cfg = makeConfig(spec, cells[0]);
    EXPECT_EQ(cfg.numPackets, spec.packets);
    EXPECT_EQ(cfg.trials, spec.trials);
    EXPECT_DOUBLE_EQ(cfg.cr, 0.5);
    EXPECT_FALSE(cfg.dynamicFrequency);
    EXPECT_EQ(cfg.scheme, mem::RecoveryScheme::TwoStrike);
    EXPECT_EQ(cfg.plane, core::FaultPlane::DataOnly);
    EXPECT_DOUBLE_EQ(cfg.faultScale, 2.0);
    EXPECT_EQ(cfg.processor.hierarchy.codec, mem::CheckCodec::Secded);
}

TEST(SweepSpec, NpuDimensionsParseExpandAndKey)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=crc;pes=1,4;dispatch=rr,flow;per-pe-cr=uniform;"
        "packets=100;trials=2");
    EXPECT_EQ(spec.peCounts, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(spec.dispatches,
              (std::vector<npu::DispatchPolicy>{
                  npu::DispatchPolicy::RoundRobin,
                  npu::DispatchPolicy::FlowHash}));
    EXPECT_EQ(spec.cellCount(), 4u);

    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    // The default single-engine rr cell keeps the historical key so
    // result files written before the chip dimensions still resume.
    EXPECT_EQ(cells[0].key(),
              "app=crc;cr=1;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1");
    EXPECT_FALSE(cells[0].isNpu());
    // Anything chip-shaped spells out the chip dimensions.
    EXPECT_EQ(cells[1].key(),
              "app=crc;cr=1;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1;pes=1;dispatch=flow;"
              "per-pe-cr=uniform");
    EXPECT_TRUE(cells[1].isNpu());
    EXPECT_TRUE(cells[2].isNpu());
    EXPECT_EQ(cells[2].peCount, 4u);
}

TEST(SweepSpec, DvsAndMshrAxesParseExpandAndKey)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=crc;pes=2;dvs=static,queue;mshrs=1,4;packets=100;"
        "trials=2");
    EXPECT_EQ(spec.dvsModes,
              (std::vector<npu::DvsMode>{npu::DvsMode::Static,
                                         npu::DvsMode::Queue}));
    EXPECT_EQ(spec.mshrs, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(spec.cellCount(), 4u);

    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    // mshrs is the innermost axis, dvs the one outside it.
    EXPECT_EQ(cells[0].dvs, npu::DvsMode::Static);
    EXPECT_EQ(cells[0].mshrs, 1u);
    EXPECT_EQ(cells[1].mshrs, 4u);
    EXPECT_EQ(cells[2].dvs, npu::DvsMode::Queue);
    // Non-default values spell themselves out in the key...
    EXPECT_NE(cells[0].key().find(";dvs=static"), std::string::npos);
    EXPECT_NE(cells[1].key().find(";mshrs=4"), std::string::npos);
    // ...and the knobs reach the chip configuration.
    const npu::NpuConfig cfg = makeNpuConfig(cells[3]);
    EXPECT_EQ(cfg.dvs, npu::DvsMode::Queue);
    EXPECT_EQ(cfg.mshrs, 4u);

    EXPECT_EXIT(SweepSpec::parse("app=crc;dvs=turbo"),
                ::testing::ExitedWithCode(1), "valid choices");
    EXPECT_EXIT(SweepSpec::parse("app=crc;mshrs=0"),
                ::testing::ExitedWithCode(1), "mshrs");
}

TEST(SweepSpec, DefaultDvsAndMshrsKeepHistoricalKeys)
{
    // Result files written before the dvs/mshrs axes existed must
    // still resume: a chip cell at the defaults (dvs=fault, mshrs=1)
    // keys exactly as it did before those axes were added.
    const SweepSpec spec = SweepSpec::parse(
        "app=crc;pes=2;dispatch=flow;packets=100;trials=2");
    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].key(),
              "app=crc;cr=1;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1;pes=2;dispatch=flow;"
              "per-pe-cr=uniform");
    // And either axis alone turns a default cell into a chip cell.
    const auto dvsCells =
        expand(SweepSpec::parse("app=crc;dvs=queue"));
    ASSERT_EQ(dvsCells.size(), 1u);
    EXPECT_TRUE(dvsCells[0].isNpu());
    EXPECT_NE(dvsCells[0].key().find(";dvs=queue"),
              std::string::npos);
}

TEST(SweepSpec, MakeNpuConfigParsesPerPeCr)
{
    SweepCell cell;
    cell.peCount = 2;
    cell.perPeCr = "1:0.5";
    const npu::NpuConfig cfg = makeNpuConfig(cell);
    EXPECT_EQ(cfg.peCount, 2u);
    ASSERT_EQ(cfg.perPeCr.size(), 2u);
    EXPECT_DOUBLE_EQ(cfg.perPeCr[0], 1.0);
    EXPECT_DOUBLE_EQ(cfg.perPeCr[1], 0.5);

    SweepCell bad;
    bad.peCount = 4;
    bad.perPeCr = "1:0.5";
    EXPECT_EXIT(makeNpuConfig(bad), ::testing::ExitedWithCode(1),
                "names 2 engines");
}

TEST(SweepSpec, GapAndChipJobsAxesParseExpandAndKey)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=crc;gap=0,400;chip-jobs=1,4;packets=100;trials=2");
    EXPECT_EQ(spec.arrivalGaps, (std::vector<std::int64_t>{0, 400}));
    EXPECT_EQ(spec.chipJobs, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(spec.cellCount(), 4u);

    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    // chip-jobs is the innermost axis, gap the one outside it.
    EXPECT_EQ(cells[0].arrivalGap, 0);
    EXPECT_EQ(cells[0].chipJobs, 1u);
    EXPECT_EQ(cells[1].chipJobs, 4u);
    EXPECT_EQ(cells[2].arrivalGap, 400);
    // Defaults keep the historical key (pre-axis result files must
    // still resume); non-defaults spell themselves out.
    EXPECT_EQ(cells[0].key(),
              "app=crc;cr=1;scheme=no-detection;codec=parity;"
              "plane=both;fault-scale=1");
    EXPECT_FALSE(cells[0].isNpu());
    EXPECT_NE(cells[1].key().find(";chip-jobs=4"), std::string::npos);
    EXPECT_EQ(cells[1].key().find(";gap="), std::string::npos);
    EXPECT_NE(cells[2].key().find(";gap=400"), std::string::npos);
    EXPECT_TRUE(cells[2].isNpu());

    // Both knobs reach the chip configuration.
    const npu::NpuConfig cfg = makeNpuConfig(cells[3]);
    EXPECT_EQ(cfg.arrivalGapCycles, 400);
    EXPECT_EQ(cfg.chipJobs, 4u);
}

TEST(SweepSpec, CtrlAxesParseExpandAndKey)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=lpm;ctrl=0,50;updates=fib;packets=100;trials=2");
    EXPECT_EQ(spec.ctrlRates, (std::vector<std::uint32_t>{0, 50}));
    EXPECT_EQ(spec.updateMixes,
              (std::vector<ctrl::CtrlMix>{ctrl::CtrlMix::Fib}));
    EXPECT_EQ(spec.cellCount(), 2u);

    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 2u);
    // Rate 0 (the default, no events) elides both ctrl keys so
    // pre-subsystem result files still resume; a live rate spells out
    // the rate and any non-default mix.
    EXPECT_EQ(cells[0].key().find(";ctrl="), std::string::npos);
    EXPECT_EQ(cells[0].key().find(";updates="), std::string::npos);
    EXPECT_NE(cells[1].key().find(";ctrl=50"), std::string::npos);
    EXPECT_NE(cells[1].key().find(";updates=fib"), std::string::npos);

    // updates=all is the default and elides even at a live rate.
    const auto allCells = expand(
        SweepSpec::parse("app=lpm;ctrl=50;packets=100;trials=2"));
    ASSERT_EQ(allCells.size(), 1u);
    EXPECT_NE(allCells[0].key().find(";ctrl=50"), std::string::npos);
    EXPECT_EQ(allCells[0].key().find(";updates="), std::string::npos);

    // Both knobs reach the experiment configuration.
    const core::ExperimentConfig cfg = makeConfig(spec, cells[1]);
    EXPECT_EQ(cfg.ctrl.rate, 50u);
    EXPECT_EQ(cfg.ctrl.mix, ctrl::CtrlMix::Fib);
}

// --- work-stealing pool ----------------------------------------------

TEST(WorkStealingPool, RunsEveryJobExactlyOnce)
{
    const std::size_t n = 257;
    std::vector<std::atomic<int>> counts(n);
    const WorkStealingPool pool(4);
    pool.run(n, [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "job " << i;
}

TEST(WorkStealingPool, InlineWhenSingleWorker)
{
    std::vector<std::size_t> order;
    const WorkStealingPool pool(1);
    pool.run(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- deterministic execution -----------------------------------------

TEST(SweepRunner, AggregatesMatchSerialRunExperiment)
{
    const SweepSpec spec = smallSpec();
    const SweepOutcome outcome = runSweep(spec, 4);
    ASSERT_EQ(outcome.cells.size(), 2u);

    for (const CellOutcome &cell : outcome.cells) {
        const core::ExperimentConfig cfg =
            makeConfig(spec, cell.cell);
        const core::ExperimentResult serial = core::runExperiment(
            apps::appFactory(cell.cell.app), cfg);
        // Bit-identical, not approximately equal: the reduction runs
        // in the same fixed order as the serial harness.
        EXPECT_EQ(cell.result.fallibility, serial.fallibility);
        EXPECT_EQ(cell.result.anyErrorProb, serial.anyErrorProb);
        EXPECT_EQ(cell.result.fatalProb, serial.fatalProb);
        EXPECT_EQ(cell.result.cyclesPerPacket, serial.cyclesPerPacket);
        EXPECT_EQ(cell.result.energyPerPacketPj,
                  serial.energyPerPacketPj);
        EXPECT_EQ(cell.result.edf, serial.edf);
        EXPECT_EQ(cell.result.errorProbByType, serial.errorProbByType);
        EXPECT_EQ(cell.result.golden.instructions,
                  serial.golden.instructions);
    }
}

TEST(SweepRunner, JsonIsByteIdenticalAcrossWorkerCounts)
{
    const SweepSpec spec = smallSpec();
    const SweepOutcome serial = runSweep(spec, 1);
    const SweepOutcome parallel = runSweep(spec, 8);
    EXPECT_EQ(renderJson(serial, false), renderJson(parallel, false));
    EXPECT_EQ(stripWallColumn(renderCsv(serial)),
              stripWallColumn(renderCsv(parallel)));
}

// --- sink and resume -------------------------------------------------

TEST(SweepSink, LoadCompletedCellsRoundTrips)
{
    const SweepSpec spec = smallSpec();
    const SweepOutcome outcome = runSweep(spec, 2);
    const std::string path = tempPath("sweep_roundtrip.json");
    writeFile(path, renderJson(outcome, true));

    const auto loaded = loadCompletedCells(path);
    ASSERT_EQ(loaded.size(), outcome.cells.size());
    for (const CellOutcome &cell : outcome.cells) {
        const auto it = loaded.find(cell.cell.key());
        ASSERT_NE(it, loaded.end()) << cell.cell.key();
        const core::ExperimentResult &a = it->second.result;
        const core::ExperimentResult &b = cell.result;
        EXPECT_EQ(a.fallibility, b.fallibility);
        EXPECT_EQ(a.edf, b.edf);
        EXPECT_EQ(a.errorProbByType, b.errorProbByType);
        EXPECT_EQ(a.golden.cyclesPerPacket, b.golden.cyclesPerPacket);
        EXPECT_EQ(a.faulty.fatalReason, b.faulty.fatalReason);
    }
}

TEST(SweepSink, MissingFileYieldsEmptyMap)
{
    EXPECT_TRUE(
        loadCompletedCells(tempPath("does_not_exist.json")).empty());
}

TEST(SweepResume, SkipsCompletedCellsAndMergesOutput)
{
    // First run: only the Cr = 0.5 cell.
    SweepSpec first = smallSpec();
    first.points = {{0.5, false}};
    const std::string path = tempPath("sweep_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    // Resumed run over the full grid must re-run only the new cell.
    const SweepSpec full = smallSpec();
    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(full, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 1u);
    ASSERT_EQ(resumed.cells.size(), 2u);
    EXPECT_TRUE(resumed.cells[0].resumed);
    EXPECT_FALSE(resumed.cells[1].resumed);

    // And the merged document equals a fresh full run, byte for byte.
    const SweepOutcome fresh = runSweep(full, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));
}

// --- chip-model cells in the grid ------------------------------------

namespace
{

/** smallSpec() plus a pe-count axis: two plain cells, two chip cells. */
SweepSpec
npuSpec()
{
    SweepSpec spec = smallSpec();
    spec.peCounts = {1, 2};
    return spec;
}

} // namespace

TEST(SweepRunner, NpuCellsByteIdenticalAcrossWorkerCounts)
{
    const SweepSpec spec = npuSpec();
    const SweepOutcome serial = runSweep(spec, 1);
    const SweepOutcome parallel = runSweep(spec, 8);
    EXPECT_EQ(renderJson(serial, false), renderJson(parallel, false));
    EXPECT_EQ(stripWallColumn(renderCsv(serial)),
              stripWallColumn(renderCsv(parallel)));

    // pes=1 cells take the plain single-core path; pes=2 cells carry
    // the chip extras.
    ASSERT_EQ(serial.cells.size(), 4u);
    for (const CellOutcome &c : serial.cells) {
        EXPECT_EQ(c.hasNpu, c.cell.peCount == 2);
        if (c.hasNpu) {
            EXPECT_EQ(c.npuGolden.pePackets.size(), 2u);
            EXPECT_GT(c.npuGolden.throughputPps, 0.0);
        }
    }
}

TEST(SweepResume, NpuCellsResumeByteIdentical)
{
    // First run covers only the two-engine cells.
    SweepSpec first = npuSpec();
    first.peCounts = {2};
    const std::string path = tempPath("sweep_npu_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    // The resumed full grid re-runs only the pes=1 cells, and the
    // merged document — chip extras included — equals a fresh run
    // byte for byte.
    const SweepSpec full = npuSpec();
    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(full, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 2u);
    const SweepOutcome fresh = runSweep(full, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));
}

TEST(SweepResume, DvsAndMshrCellsResumeByteIdentical)
{
    // The new axes ride the same resume machinery: keys with dvs and
    // mshrs parts round-trip through the result file, and per-PE
    // trajectory arrays survive the reload byte for byte.
    SweepSpec spec = smallSpec();
    spec.points = {{0.5, false}};
    spec.peCounts = {2};
    spec.dvsModes = {npu::DvsMode::Static, npu::DvsMode::Queue};
    spec.mshrs = {1, 2};

    SweepSpec first = spec;
    first.mshrs = {2};
    const std::string path = tempPath("sweep_dvs_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(spec, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 2u);
    const SweepOutcome fresh = runSweep(spec, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));
    // Queue-mode cells report their per-engine epoch decisions.
    for (const CellOutcome &c : fresh.cells) {
        ASSERT_TRUE(c.hasNpu);
        const double epochs = c.npuFaulty.peEpochs.empty()
                                  ? 0.0
                                  : c.npuFaulty.peEpochs[0];
        if (c.cell.dvs == npu::DvsMode::Queue)
            EXPECT_GT(epochs, 0.0) << c.cell.key();
        else
            EXPECT_EQ(epochs, 0.0) << c.cell.key();
    }
}

TEST(SweepResume, GapAndChipJobsCellsResumeByteIdentical)
{
    // Keys with gap and chip-jobs parts round-trip through the result
    // file, and a resumed mixed grid re-renders byte for byte. The
    // chip-jobs=2 cells also double as an end-to-end check that the
    // parallel chip runner feeds the sweep the same bytes.
    SweepSpec spec = smallSpec();
    spec.points = {{0.5, false}};
    spec.peCounts = {2};
    spec.arrivalGaps = {0, 300};
    spec.chipJobs = {1, 2};

    SweepSpec first = spec;
    first.chipJobs = {2};
    const std::string path = tempPath("sweep_gap_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(spec, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 2u);
    const SweepOutcome fresh = runSweep(spec, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));

    // chip-jobs is a host knob: within one (app, gap) point the two
    // chip-jobs cells carry identical simulated results.
    for (const CellOutcome &a : fresh.cells) {
        if (a.cell.chipJobs != 1)
            continue;
        for (const CellOutcome &b : fresh.cells) {
            if (b.cell.chipJobs == 1 ||
                b.cell.arrivalGap != a.cell.arrivalGap)
                continue;
            EXPECT_EQ(experimentResultJson(a.result),
                      experimentResultJson(b.result))
                << a.cell.key() << " vs " << b.cell.key();
        }
    }
}

TEST(SweepResume, CtrlChurnCellsResumeByteIdentical)
{
    // Keys with ctrl and updates parts round-trip through the result
    // file — including the stored cell coordinates the resume check
    // compares against — and the merged document equals a fresh run
    // byte for byte.
    SweepSpec spec;
    spec.apps = {"lpm"};
    spec.points = {{0.5, false}};
    spec.schemes = {mem::RecoveryScheme::TwoStrike};
    spec.packets = 120;
    spec.trials = 2;
    spec.ctrlRates = {0, 100};
    spec.updateMixes = {ctrl::CtrlMix::Fib};

    SweepSpec first = spec;
    first.ctrlRates = {100};
    const std::string path = tempPath("sweep_ctrl_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(spec, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 1u);
    const SweepOutcome fresh = runSweep(spec, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));

    // The CSV view carries the new axis columns.
    const std::string csv = renderCsv(fresh);
    EXPECT_NE(csv.find(",ctrl,updates,"), std::string::npos);
    EXPECT_NE(csv.find(",100,fib,"), std::string::npos);
}

TEST(SweepResume, FlowAndChurnCellsResumeByteIdentical)
{
    // Regression: flows/churn cells used to serialize without their
    // axis coordinates, so --resume rejected every stored non-default
    // cell on the key check. The sink now round-trips both.
    SweepSpec spec = smallSpec();
    spec.apps = {"nat"};
    spec.points = {{0.5, false}};
    spec.trials = 2;
    spec.flows = {0, 32};
    spec.churns = {0, 64};

    SweepSpec first = spec;
    first.flows = {32};
    const std::string path = tempPath("sweep_flows_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(spec, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 2u);
    const SweepOutcome fresh = runSweep(spec, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));
}

// --- JSON emitter ----------------------------------------------------

TEST(Json, EscapesAndFormatsDeterministically)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(1.0), "1");
    // Shortest round-trip form: parsing it back yields the same bits.
    const double v = 14260600.553291745;
    EXPECT_EQ(std::stod(jsonNumber(v)), v);
}

TEST(Json, WriterPlacesCommasAndNesting)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(std::uint64_t{1});
    w.key("b").beginArray();
    w.value("x").value(true);
    w.endArray();
    w.key("c").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\": 1, \"b\": [\"x\", true], \"c\": {}}");
}

// --- fault-map and way-disable axes ----------------------------------

TEST(SweepSpec, FaultMapAxesParseExpandAndKey)
{
    const SweepSpec spec = SweepSpec::parse(
        "app=crc;faultmap=off,spatial;retire=0,2;map-seed=99;"
        "packets=100;trials=2");
    EXPECT_EQ(spec.faultMaps,
              (std::vector<std::string>{"off", "spatial"}));
    EXPECT_EQ(spec.retires, (std::vector<unsigned>{0, 2}));
    EXPECT_EQ(spec.mapSeed, 99u);
    EXPECT_EQ(spec.cellCount(), 4u);

    const SweepSpec again = SweepSpec::parse(spec.toGridString());
    EXPECT_EQ(again.toGridString(), spec.toGridString());

    const auto cells = expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    // The historical defaults elide so pre-faultmap result files
    // still resume; non-defaults spell out.
    EXPECT_EQ(cells[0].key().find(";faultmap="), std::string::npos);
    EXPECT_EQ(cells[0].key().find(";retire="), std::string::npos);
    EXPECT_NE(cells[1].key().find(";retire=2"), std::string::npos);
    EXPECT_NE(cells[2].key().find(";faultmap=spatial"),
              std::string::npos);
    EXPECT_NE(cells[3].key().find(";faultmap=spatial;retire=2"),
              std::string::npos);

    // Both knobs and the scalar seed reach the configuration.
    const core::ExperimentConfig cfg = makeConfig(spec, cells[3]);
    EXPECT_EQ(cfg.processor.faultMap.mode,
              fault::FaultMapMode::Generated);
    EXPECT_EQ(cfg.processor.faultMap.seed, 99u);
    EXPECT_EQ(cfg.processor.hierarchy.wayDisable.retireThreshold, 2u);
    const core::ExperimentConfig off = makeConfig(spec, cells[0]);
    EXPECT_EQ(off.processor.faultMap.mode, fault::FaultMapMode::Off);
    EXPECT_EQ(off.processor.hierarchy.wayDisable.retireThreshold, 0u);

    // A path-valued map selection rides through as File mode.
    const SweepSpec fileSpec = SweepSpec::parse(
        "app=crc;faultmap=maps/chip0.map;packets=100;trials=2");
    const auto fileCells = expand(fileSpec);
    const core::ExperimentConfig fileCfg =
        makeConfig(fileSpec, fileCells[0]);
    EXPECT_EQ(fileCfg.processor.faultMap.mode, fault::FaultMapMode::File);
    EXPECT_EQ(fileCfg.processor.faultMap.path, "maps/chip0.map");
}

TEST(SweepResume, FaultMapCellsResumeByteIdentical)
{
    // Keys with faultmap and retire parts round-trip through the
    // result file and resume cleanly; the merged document equals a
    // fresh run byte for byte.
    SweepSpec spec;
    spec.apps = {"crc"};
    spec.points = {{0.5, false}};
    spec.schemes = {mem::RecoveryScheme::TwoStrike};
    spec.packets = 120;
    spec.trials = 2;
    spec.faultMaps = {"off", "spatial"};
    spec.retires = {2};

    SweepSpec first = spec;
    first.faultMaps = {"spatial"};
    const std::string path = tempPath("sweep_faultmap_resume.json");
    writeFile(path, renderJson(runSweep(first, 2), false));

    const auto completed = loadCompletedCells(path);
    const SweepOutcome resumed = runSweep(spec, 2, &completed);
    EXPECT_EQ(resumed.resumedCount, 1u);
    const SweepOutcome fresh = runSweep(spec, 2);
    EXPECT_EQ(renderJson(resumed, false), renderJson(fresh, false));

    // The CSV view carries the new axis columns.
    const std::string csv = renderCsv(fresh);
    EXPECT_NE(csv.find(",faultmap,retire,"), std::string::npos);
    EXPECT_NE(csv.find(",spatial,2,"), std::string::npos);
    EXPECT_NE(csv.find(",off,2,"), std::string::npos);
}
