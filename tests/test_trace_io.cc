/**
 * @file
 * Tests of packet-trace persistence.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/checksum.hh"
#include "net/trace_gen.hh"
#include "net/trace_io.hh"

using namespace clumsy;
using namespace clumsy::net;

TEST(TraceIo, RoundTripPreservesPackets)
{
    TraceConfig cfg;
    cfg.seed = 77;
    cfg.minPayload = 0;
    cfg.maxPayload = 96;
    TraceGenerator gen(cfg);
    const auto trace = gen.generate(40);

    std::stringstream ss;
    writeTrace(ss, trace);
    const auto loaded = readTrace(ss);

    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].seq, trace[i].seq);
        EXPECT_EQ(loaded[i].ip.src, trace[i].ip.src);
        EXPECT_EQ(loaded[i].ip.dst, trace[i].ip.dst);
        EXPECT_EQ(loaded[i].ip.ttl, trace[i].ip.ttl);
        EXPECT_EQ(loaded[i].ip.id, trace[i].ip.id);
        EXPECT_EQ(loaded[i].ip.protocol, trace[i].ip.protocol);
        EXPECT_EQ(loaded[i].srcPort, trace[i].srcPort);
        EXPECT_EQ(loaded[i].dstPort, trace[i].dstPort);
        EXPECT_EQ(loaded[i].payload, trace[i].payload);
        EXPECT_EQ(loaded[i].ip.checksum, trace[i].ip.checksum);
    }
}

TEST(TraceIo, ChecksumRecomputedOnLoad)
{
    TraceGenerator gen(TraceConfig{});
    const auto trace = gen.generate(10);
    std::stringstream ss;
    writeTrace(ss, trace);
    for (const auto &p : readTrace(ss)) {
        const auto hdr = p.ip.toBytes();
        EXPECT_EQ(internetChecksum(hdr.data(), hdr.size()), 0);
    }
}

TEST(TraceIo, EmptyPayloadDash)
{
    Packet p;
    p.payload.clear();
    std::stringstream ss;
    writeTrace(ss, {p});
    const std::string text = ss.str();
    EXPECT_NE(text.find(" -"), std::string::npos);
    const auto loaded = readTrace(ss);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_TRUE(loaded[0].payload.empty());
}

TEST(TraceIo, SkipsBlankLines)
{
    std::stringstream ss;
    ss << "clumsy-trace v1\n\n0 a b 40 1 6 400 50 -\n\n";
    EXPECT_EQ(readTrace(ss).size(), 1u);
}

TEST(TraceIoDeath, RejectsJunk)
{
    std::stringstream notATrace("hello\n");
    EXPECT_EXIT(readTrace(notATrace), ::testing::ExitedWithCode(1),
                "header");

    std::stringstream badHex(
        "clumsy-trace v1\n0 a b 40 1 6 400 50 zz\n");
    EXPECT_EXIT(readTrace(badHex), ::testing::ExitedWithCode(1),
                "hex");

    std::stringstream truncated("clumsy-trace v1\n0 a b\n");
    EXPECT_EXIT(readTrace(truncated), ::testing::ExitedWithCode(1),
                "malformed");
}
