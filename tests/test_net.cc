/**
 * @file
 * Tests of the networking substrate: checksums, headers and the
 * deterministic trace generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/random.hh"
#include "net/checksum.hh"
#include "net/packet.hh"
#include "net/trace_gen.hh"

using namespace clumsy;
using namespace clumsy::net;

TEST(Checksum, KnownVector)
{
    // Classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero)
{
    const std::uint8_t odd[] = {0x12, 0x34, 0x56};
    const std::uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
    EXPECT_EQ(internetChecksum(odd, 3), internetChecksum(even, 4));
}

TEST(Checksum, HeaderVerifiesToZero)
{
    Ipv4Header h;
    h.src = 0xc0a80001;
    h.dst = 0x08080808;
    h.totalLen = 84;
    h.checksum = 0;
    auto bytes = h.toBytes();
    h.checksum = internetChecksum(bytes.data(), bytes.size());
    bytes = h.toBytes();
    // Summing a valid header including its checksum gives 0.
    EXPECT_EQ(internetChecksum(bytes.data(), bytes.size()), 0);
}

class IncrementalChecksum : public ::testing::TestWithParam<int>
{
};

TEST_P(IncrementalChecksum, MatchesFullRecompute)
{
    Rng rng(100 + GetParam());
    Ipv4Header h;
    h.src = static_cast<std::uint32_t>(rng.next());
    h.dst = static_cast<std::uint32_t>(rng.next());
    h.ttl = static_cast<std::uint8_t>(2 + rng.below(200));
    h.id = static_cast<std::uint16_t>(rng.next());
    h.totalLen = static_cast<std::uint16_t>(rng.below(1500));
    h.checksum = 0;
    auto bytes = h.toBytes();
    h.checksum = internetChecksum(bytes.data(), bytes.size());

    // Decrement the TTL, patch incrementally and compare against a
    // from-scratch recompute.
    const auto oldWord =
        static_cast<std::uint16_t>((h.ttl << 8) | h.protocol);
    h.ttl -= 1;
    const auto newWord =
        static_cast<std::uint16_t>((h.ttl << 8) | h.protocol);
    const std::uint16_t patched =
        incrementalChecksum(h.checksum, oldWord, newWord);

    h.checksum = 0;
    const auto fresh = h.toBytes();
    const std::uint16_t full =
        internetChecksum(fresh.data(), fresh.size());
    EXPECT_EQ(patched, full);
}

INSTANTIATE_TEST_SUITE_P(Random, IncrementalChecksum,
                         ::testing::Range(0, 16));

TEST(Header, SerializationLayout)
{
    Ipv4Header h;
    h.ttl = 0x40;
    h.protocol = 6;
    h.src = 0x0a000001;
    h.dst = 0xc0000002;
    const auto b = h.toBytes();
    EXPECT_EQ(b[0], 0x45); // version 4, IHL 5
    EXPECT_EQ(b[8], 0x40);
    EXPECT_EQ(b[9], 6);
    EXPECT_EQ(b[12], 0x0a);
    EXPECT_EQ(b[16], 0xc0);
    EXPECT_EQ(b[19], 0x02);
}

TEST(Header, IpToString)
{
    EXPECT_EQ(ipToString(0xc0a80164), "192.168.1.100");
}

TEST(TraceGen, DeterministicBySeed)
{
    TraceConfig cfg;
    cfg.seed = 9;
    TraceGenerator a(cfg), b(cfg);
    for (int i = 0; i < 50; ++i) {
        const Packet pa = a.next();
        const Packet pb = b.next();
        EXPECT_EQ(pa.ip.src, pb.ip.src);
        EXPECT_EQ(pa.ip.dst, pb.ip.dst);
        EXPECT_EQ(pa.payload, pb.payload);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    TraceConfig a, b;
    a.seed = 1;
    b.seed = 2;
    TraceGenerator ga(a), gb(b);
    bool anyDiff = false;
    for (int i = 0; i < 20; ++i)
        anyDiff |= ga.next().ip.dst != gb.next().ip.dst;
    EXPECT_TRUE(anyDiff);
}

TEST(TraceGen, PoolIndependentOfStreamSeed)
{
    TraceConfig a, b;
    a.seed = 1;
    b.seed = 999;
    EXPECT_EQ(TraceGenerator(a).destinations(),
              TraceGenerator(b).destinations());
    EXPECT_EQ(TraceGenerator::makeDestPool(a),
              TraceGenerator(a).destinations());
}

TEST(TraceGen, DestinationsComeFromPool)
{
    TraceConfig cfg;
    cfg.numDestinations = 32;
    TraceGenerator gen(cfg);
    const auto &pool = gen.destinations();
    for (int i = 0; i < 200; ++i) {
        const Packet p = gen.next();
        EXPECT_NE(std::find(pool.begin(), pool.end(), p.ip.dst),
                  pool.end());
    }
}

TEST(TraceGen, SourcesArePrivate)
{
    TraceConfig cfg;
    TraceGenerator gen(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next().ip.src >> 24, 0x0au);
}

TEST(TraceGen, ValidWireChecksums)
{
    TraceGenerator gen(TraceConfig{});
    for (int i = 0; i < 100; ++i) {
        const Packet p = gen.next();
        const auto b = p.ip.toBytes();
        EXPECT_EQ(internetChecksum(b.data(), b.size()), 0);
        EXPECT_EQ(p.ip.totalLen, p.wireBytes());
    }
}

TEST(TraceGen, PayloadBoundsRespected)
{
    TraceConfig cfg;
    cfg.minPayload = 100;
    cfg.maxPayload = 120;
    TraceGenerator gen(cfg);
    for (int i = 0; i < 200; ++i) {
        const auto n = gen.next().payload.size();
        EXPECT_GE(n, 100u);
        EXPECT_LE(n, 120u);
    }
}

TEST(TraceGen, HttpPayloadsAreWellFormedGets)
{
    TraceConfig cfg;
    cfg.httpPayloads = true;
    TraceGenerator gen(cfg);
    const auto urls = TraceGenerator::makeUrlPool(cfg);
    for (int i = 0; i < 100; ++i) {
        const Packet p = gen.next();
        const std::string s(p.payload.begin(), p.payload.end());
        ASSERT_EQ(s.rfind("GET ", 0), 0u);
        const auto sp = s.find(' ', 4);
        ASSERT_NE(sp, std::string::npos);
        const std::string url = s.substr(4, sp - 4);
        EXPECT_NE(std::find(urls.begin(), urls.end(), url),
                  urls.end());
    }
}

TEST(TraceGen, UrlPoolDeterministicAndSized)
{
    TraceConfig cfg;
    cfg.numUrls = 17;
    const auto a = TraceGenerator::makeUrlPool(cfg);
    const auto b = TraceGenerator::makeUrlPool(cfg);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 17u);
    // All URLs distinct.
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = i + 1; j < a.size(); ++j)
            EXPECT_NE(a[i], a[j]);
}

TEST(TraceGen, GenerateBatch)
{
    TraceGenerator gen(TraceConfig{});
    const auto trace = gen.generate(25);
    ASSERT_EQ(trace.size(), 25u);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].seq, i);
}
