/**
 * @file
 * Cross-application property tests: invariants that must hold for
 * *every* workload (the paper's seven plus extensions), checked via
 * parameterized sweeps.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"

using namespace clumsy;

namespace
{

std::vector<std::string>
everyApp()
{
    std::vector<std::string> names = apps::allAppNames();
    for (const auto &n : apps::extensionAppNames())
        names.push_back(n);
    return names;
}

core::ExperimentResult
run(const std::string &app, double cr, mem::RecoveryScheme scheme,
    double faultScale, std::uint64_t packets = 200)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = packets;
    cfg.trials = 2;
    cfg.cr = cr;
    cfg.scheme = scheme;
    cfg.faultScale = faultScale;
    return core::runExperiment(apps::appFactory(app), cfg);
}

} // namespace

class EveryAppProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryAppProperty, OverClockingNeverCostsGoldenEnergy)
{
    // With injection inert (scale 0), raising the cache clock must
    // reduce both chip energy and delay per packet, at every app.
    const auto slow =
        run(GetParam(), 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto fast =
        run(GetParam(), 0.25, mem::RecoveryScheme::NoDetection, 0.0);
    EXPECT_LT(fast.energyPerPacketPj, slow.energyPerPacketPj);
    EXPECT_LE(fast.cyclesPerPacket, slow.cyclesPerPacket);
    EXPECT_EQ(fast.anyErrorProb, 0.0);
}

TEST_P(EveryAppProperty, HalfCycleDelayEqualsQuarterCycleDelay)
{
    // The load-use floor: beyond Cr = 0.5 no further speedup exists.
    const auto half =
        run(GetParam(), 0.5, mem::RecoveryScheme::NoDetection, 0.0);
    const auto quarter =
        run(GetParam(), 0.25, mem::RecoveryScheme::NoDetection, 0.0);
    EXPECT_DOUBLE_EQ(half.cyclesPerPacket, quarter.cyclesPerPacket);
    EXPECT_LT(quarter.energyPerPacketPj, half.energyPerPacketPj);
}

TEST_P(EveryAppProperty, FallibilityMonotoneInFrequency)
{
    // At accelerated fault rates, faster clocks must err more.
    const auto mid =
        run(GetParam(), 0.75, mem::RecoveryScheme::NoDetection, 60.0);
    const auto fast =
        run(GetParam(), 0.25, mem::RecoveryScheme::NoDetection, 60.0);
    // Structural workloads (nat's in-data-plane binding inserts) have
    // heavy-tailed per-trial error mass; allow sampling slack around
    // the monotone trend.
    EXPECT_GE(fast.fallibility, mid.fallibility - 0.10);
    EXPECT_GT(fast.fallibility, 1.0);
}

TEST_P(EveryAppProperty, DetectionNeverIncreasesErrors)
{
    const auto blind =
        run(GetParam(), 0.25, mem::RecoveryScheme::NoDetection, 60.0);
    const auto guarded =
        run(GetParam(), 0.25, mem::RecoveryScheme::TwoStrike, 60.0);
    EXPECT_LE(guarded.anyErrorProb, blind.anyErrorProb);
}

TEST_P(EveryAppProperty, ParityCostsEnergyWhenClean)
{
    const auto blind =
        run(GetParam(), 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto guarded =
        run(GetParam(), 1.0, mem::RecoveryScheme::TwoStrike, 0.0);
    EXPECT_GT(guarded.energyPerPacketPj, blind.energyPerPacketPj);
}

TEST_P(EveryAppProperty, GoldenRunsAgreeAcrossSchemes)
{
    // Recovery schemes must not change fault-free semantics: golden
    // instruction and access counts are identical.
    const auto a =
        run(GetParam(), 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto b =
        run(GetParam(), 1.0, mem::RecoveryScheme::ThreeStrike, 0.0);
    EXPECT_EQ(a.golden.instructions, b.golden.instructions);
    EXPECT_EQ(a.golden.dcacheAccesses, b.golden.dcacheAccesses);
}

TEST_P(EveryAppProperty, SecdedCorrectsInlineAtEveryWorkload)
{
    // SEC-DED corrects inline what parity can only retry. At rates
    // where structural chaos does not drown the codec effect, its
    // corrections fire on every workload and fallibility stays within
    // sampling slack of parity's (a single orphaned radix subtree in
    // one trial swings the mean by more than the codec effect).
    core::ExperimentConfig cfg;
    cfg.numPackets = 200;
    cfg.trials = 2;
    cfg.cr = 0.25;
    cfg.faultScale = 60.0;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    cfg.processor.hierarchy.codec = mem::CheckCodec::Parity;
    const auto parity =
        core::runExperiment(apps::appFactory(GetParam()), cfg);
    cfg.processor.hierarchy.codec = mem::CheckCodec::Secded;
    const auto ecc =
        core::runExperiment(apps::appFactory(GetParam()), cfg);
    EXPECT_GT(ecc.faulty.eccCorrections, 0u);
    EXPECT_EQ(parity.faulty.eccCorrections, 0u);
    EXPECT_LE(ecc.fallibility, parity.fallibility + 0.15);
}

INSTANTIATE_TEST_SUITE_P(Workloads, EveryAppProperty,
                         ::testing::ValuesIn(everyApp()));
