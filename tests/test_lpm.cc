/**
 * @file
 * Tests of the lpm workload: the tree-bitmap FIB in simulated memory
 * (insert/withdraw vs the host mirror, longest-prefix semantics,
 * RCU-disciplined updates with node reuse, audit stability) and the
 * workload under the golden-vs-faulty harness, including update churn
 * racing the data plane.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/app.hh"
#include "apps/lpm.hh"
#include "core/experiment.hh"
#include "core/processor.hh"

using namespace clumsy;
using apps::LpmFib;
using core::ClumsyProcessor;

namespace
{

/** Destinations exercising several prefix lengths and misses. */
std::vector<std::uint32_t>
probeSet()
{
    std::vector<std::uint32_t> dsts;
    for (std::uint32_t i = 0; i < 64; ++i)
        dsts.push_back(0x0a000000u + i * 0x00010101u);
    for (std::uint32_t i = 0; i < 64; ++i)
        dsts.push_back(0xc0a80000u + i * 257u);
    dsts.push_back(0);
    dsts.push_back(0xffffffffu);
    return dsts;
}

/** Timed lookup must agree with the host mirror on a fault-free run. */
void
expectAgreesWithMirror(ClumsyProcessor &proc, LpmFib &fib)
{
    for (const std::uint32_t dst : probeSet()) {
        ASSERT_FALSE(proc.fatalOccurred());
        EXPECT_EQ(fib.lookup(proc, dst), fib.goldenLookup(dst))
            << "dst=" << dst;
    }
}

} // namespace

TEST(LpmFib, EmptyFibMatchesNothing)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    EXPECT_EQ(fib.lookup(proc, 0x0a000001u), LpmFib::kNoMatch);
    EXPECT_EQ(fib.goldenLookup(0x0a000001u), LpmFib::kNoMatch);
    EXPECT_EQ(fib.prefixCount(), 0u);
}

TEST(LpmFib, InsertAndLookupAgreeWithMirror)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    fib.insert(proc, 0x0a000000u, 8, 100);
    fib.insert(proc, 0x0a010000u, 16, 200);
    fib.insert(proc, 0x0a010100u, 24, 300);
    fib.insert(proc, 0xc0a80000u, 16, 400);
    fib.insert(proc, 0x80000000u, 1, 500);
    fib.insert(proc, 0x0a010180u, 25, 600);
    ASSERT_FALSE(proc.fatalOccurred());
    EXPECT_EQ(fib.prefixCount(), 6u);
    expectAgreesWithMirror(proc, fib);
}

TEST(LpmFib, LongestPrefixWins)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    fib.insert(proc, 0x0a000000u, 8, 8);
    fib.insert(proc, 0x0a010000u, 16, 16);
    fib.insert(proc, 0x0a010100u, 24, 24);
    // 10.1.1.x hits the /24; 10.1.2.x the /16; 10.2.x.x the /8.
    EXPECT_EQ(fib.lookup(proc, 0x0a010105u), 24u);
    EXPECT_EQ(fib.lookup(proc, 0x0a010205u), 16u);
    EXPECT_EQ(fib.lookup(proc, 0x0a020305u), 8u);
    EXPECT_EQ(fib.lookup(proc, 0x0b000001u), LpmFib::kNoMatch);
}

TEST(LpmFib, InsertUpdatesExistingPrefix)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    fib.insert(proc, 0x0a000000u, 8, 1);
    fib.insert(proc, 0x0a000000u, 8, 2);
    EXPECT_EQ(fib.prefixCount(), 1u);
    EXPECT_EQ(fib.lookup(proc, 0x0a123456u), 2u);
    EXPECT_EQ(fib.goldenLookup(0x0a123456u), 2u);
}

TEST(LpmFib, WithdrawRemovesAndAgreesWithMirror)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    fib.insert(proc, 0x0a000000u, 8, 100);
    fib.insert(proc, 0x0a010000u, 16, 200);
    fib.insert(proc, 0x0a010100u, 24, 300);
    fib.withdraw(proc, 0x0a010100u, 24);
    ASSERT_FALSE(proc.fatalOccurred());
    EXPECT_EQ(fib.prefixCount(), 2u);
    // The covering /16 takes over for what the /24 matched.
    EXPECT_EQ(fib.lookup(proc, 0x0a010105u), 200u);
    expectAgreesWithMirror(proc, fib);
    // Withdrawing everything returns the FIB to empty.
    fib.withdraw(proc, 0x0a010000u, 16);
    fib.withdraw(proc, 0x0a000000u, 8);
    EXPECT_EQ(fib.prefixCount(), 0u);
    EXPECT_EQ(fib.lookup(proc, 0x0a010105u), LpmFib::kNoMatch);
}

TEST(LpmFib, WithdrawOfUnknownPrefixIsNoOp)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    fib.insert(proc, 0x0a000000u, 8, 100);
    fib.withdraw(proc, 0xc0000000u, 8);
    fib.withdraw(proc, 0x0a010000u, 16);
    EXPECT_EQ(fib.prefixCount(), 1u);
    EXPECT_EQ(fib.lookup(proc, 0x0a000001u), 100u);
}

TEST(LpmFib, UpdateChurnReusesNodesWithoutGraceViolations)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    // Sustained insert/withdraw churn with lookups between updates and
    // a quiescent point per "packet": reclaimed nodes must be reused,
    // and no lookup may ever touch a block sitting on the free list.
    for (std::uint32_t i = 0; i < 200; ++i) {
        const std::uint32_t prefix = 0x0a000000u + (i % 16) * 0x10000u;
        if (i % 3 == 2)
            fib.withdraw(proc, prefix, 16);
        else
            fib.insert(proc, prefix, 16, 1000 + i);
        ASSERT_FALSE(proc.fatalOccurred());
        fib.quiesce();
        for (std::uint32_t d = 0; d < 4; ++d)
            EXPECT_EQ(fib.lookup(proc, prefix + d),
                      fib.goldenLookup(prefix + d));
    }
    EXPECT_EQ(fib.visitsReclaimed(), 0u);
    EXPECT_GT(fib.rcu().retired(), 0u);
    EXPECT_GT(fib.rcu().reclaimed(), 0u);
    EXPECT_GT(fib.rcu().reused(), 0u);
    expectAgreesWithMirror(proc, fib);
}

TEST(LpmFib, AuditChecksumTracksStructure)
{
    ClumsyProcessor proc;
    LpmFib fib(proc);
    const std::uint64_t empty = fib.auditChecksum(proc);
    fib.insert(proc, 0x0a000000u, 8, 100);
    const std::uint64_t one = fib.auditChecksum(proc);
    EXPECT_NE(empty, one);
    // Path-copying rewrites the spine: even an insert under another
    // top-level branch replaces the root node, so the audit of every
    // path changes — while the lookup results stay put.
    const std::uint64_t pathBefore = fib.auditPath(proc, 0x0a000001u);
    fib.insert(proc, 0xc0a80000u, 16, 400);
    EXPECT_NE(fib.auditPath(proc, 0x0a000001u), pathBefore);
    EXPECT_EQ(fib.lookup(proc, 0x0a000001u), 100u);
    // The audit itself is a pure read: recomputing it is stable.
    const std::uint64_t now = fib.auditPath(proc, 0x0a000001u);
    EXPECT_EQ(fib.auditPath(proc, 0x0a000001u), now);
}

TEST(LpmFib, IdenticalBuildsProduceIdenticalStructures)
{
    ClumsyProcessor procA, procB;
    LpmFib a(procA), b(procB);
    for (std::uint32_t i = 0; i < 32; ++i) {
        a.insert(procA, 0x0a000000u + i * 0x10000u, 16, i);
        b.insert(procB, 0x0a000000u + i * 0x10000u, 16, i);
    }
    EXPECT_EQ(a.auditChecksum(procA), b.auditChecksum(procB));
    EXPECT_EQ(a.nodeCount(), b.nodeCount());
}

// ---- the workload under the harness --------------------------------

TEST(LpmApp, GoldenRunCompletes)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    const auto golden =
        core::runGolden(apps::appFactory("lpm"), cfg);
    EXPECT_FALSE(golden.metrics.fatal);
    EXPECT_EQ(golden.metrics.packetsProcessed, 300u);
    EXPECT_GT(golden.metrics.instructions, 0u);
}

TEST(LpmApp, FaultFreeTrialsNeverDiverge)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 2;
    cfg.faultScale = 0.0;
    const auto res = core::runExperiment(apps::appFactory("lpm"), cfg);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalFraction, 0.0);
    EXPECT_EQ(res.fallibility, 1.0);
}

TEST(LpmApp, UpdateChurnStaysDeterministicAcrossRuns)
{
    // Peak churn racing the data plane: with faults disabled, golden
    // and trials replay identical updates at identical points, so no
    // marked value may diverge — the subsystem's core determinism
    // claim at the workload level.
    core::ExperimentConfig cfg;
    cfg.numPackets = 500;
    cfg.trials = 2;
    cfg.faultScale = 0.0;
    cfg.ctrl.rate = 200;
    cfg.ctrl.mix = ctrl::CtrlMix::Fib;
    const auto res = core::runExperiment(apps::appFactory("lpm"), cfg);
    EXPECT_GT(res.golden.ctrlEventsApplied, 0u);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalFraction, 0.0);
}

TEST(LpmApp, FaultyUpdateChurnRunsToCompletion)
{
    // With real faults the update path is a fault surface: the run
    // must stay well-formed (no assertion failures, sane aggregates)
    // whatever the injector hits.
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.trials = 3;
    cfg.ctrl.rate = 100;
    const auto res = core::runExperiment(apps::appFactory("lpm"), cfg);
    EXPECT_FALSE(res.golden.fatal);
    EXPECT_GT(res.golden.ctrlEventsApplied, 0u);
    EXPECT_GE(res.fallibility, 0.0);
    EXPECT_LE(res.anyErrorProb, 1.0);
}
