/**
 * @file
 * Tests of the coupling-noise statistics: the eq. (2)/(3)
 * distributions and the exact switching-combination enumeration
 * behind Figure 3.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.hh"
#include "fault/noise.hh"

using namespace clumsy;
using namespace clumsy::fault;

TEST(NoiseAmplitude, PdfNormalizes)
{
    // Integrate 28.8*exp(-28.8x) over [0, 1): should be ~1.
    double sum = 0;
    const double h = 1e-4;
    for (double x = h / 2; x < 1.0; x += h)
        sum += amplitudePdf(x) * h;
    EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(NoiseAmplitude, TailMatchesPdf)
{
    EXPECT_NEAR(amplitudeTailProb(0.1),
                std::exp(-kAmplitudeRate * 0.1), 1e-12);
    EXPECT_DOUBLE_EQ(amplitudeTailProb(0.0), 1.0);
    EXPECT_EQ(amplitudePdf(-0.5), 0.0);
}

TEST(NoiseDuration, UniformShape)
{
    EXPECT_DOUBLE_EQ(durationPdf(0.05), 10.0);
    EXPECT_DOUBLE_EQ(durationPdf(0.11), 0.0);
    EXPECT_DOUBLE_EQ(durationPdf(-0.01), 0.0);
}

TEST(NoiseSampling, AmplitudeMeanMatchesExponential)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 50000; ++i)
        sum += sampleAmplitude(rng);
    EXPECT_NEAR(sum / 50000.0, 1.0 / kAmplitudeRate, 0.002);
}

TEST(NoiseSampling, DurationBounded)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i) {
        const double d = sampleDuration(rng);
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, kMaxDuration);
    }
}

class SwitchingCounts : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SwitchingCounts, TotalIsFourToTheN)
{
    const unsigned n = GetParam();
    const auto counts = switchingCaseCounts(n);
    ASSERT_EQ(counts.size(), n + 1);
    const auto total =
        std::accumulate(counts.begin(), counts.end(),
                        std::uint64_t{0});
    // Each of n neighbors has 4 states: up, down, hold (2 ways).
    std::uint64_t expect = 1;
    for (unsigned i = 0; i < n; ++i)
        expect *= 4;
    EXPECT_EQ(total, expect);
}

TEST_P(SwitchingCounts, MonotonicallyDecreasingInAmplitude)
{
    // counts[k] = 2*C(2n, n-k) for k >= 1 (the +/- doubling), so the
    // decay holds from k = 1 on; counts[1] can exceed counts[0].
    const auto counts = switchingCaseCounts(GetParam());
    for (std::size_t k = 2; k < counts.size(); ++k)
        EXPECT_LE(counts[k], counts[k - 1]);
    if (counts.size() > 1)
        EXPECT_LE(counts[1], 2 * counts[0]);
}

TEST_P(SwitchingCounts, WorstCaseIsUniqueUpToSign)
{
    // Exactly two combinations (all up / all down) give |net| = n.
    const auto counts = switchingCaseCounts(GetParam());
    EXPECT_EQ(counts.back(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SwitchingCounts,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u));

TEST(SwitchingFit, ReasonableExponentialFit)
{
    const auto fit = fitSwitchingDistribution(16);
    EXPECT_GT(fit.k1, 0.0);
    EXPECT_GT(fit.k2, 0.0);
    EXPECT_GT(fit.r2, 0.8); // the tail is near-exponential
}

TEST(SwitchingFit, DecaySharpensWithMoreNeighbors)
{
    EXPECT_GT(fitSwitchingDistribution(16).k2,
              fitSwitchingDistribution(4).k2);
}

TEST(SwitchingDeath, RejectsUnsupportedSizes)
{
    EXPECT_DEATH(switchingCaseCounts(0), "1..16");
    EXPECT_DEATH(switchingCaseCounts(17), "1..16");
}
