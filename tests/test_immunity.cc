/**
 * @file
 * Tests of the calibrated SRAM noise-immunity curves.
 */

#include <gtest/gtest.h>

#include "fault/fault_model.hh"
#include "fault/immunity.hh"

using namespace clumsy::fault;

TEST(Immunity, FaultProbDecreasesWithMargin)
{
    double prev = 1.0;
    for (double m = 0.05; m <= 0.6; m += 0.05) {
        const double p = ImmunityCurves::faultProbForMargin(m);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(Immunity, MarginInverseRoundTrip)
{
    for (const double prob : {1e-4, 1e-5, 1e-6, 2.59e-7, 1e-8}) {
        const double m = ImmunityCurves::marginForFaultProb(prob);
        EXPECT_NEAR(ImmunityCurves::faultProbForMargin(m), prob,
                    prob * 1e-6);
    }
}

TEST(Immunity, MarginShrinksWithSwing)
{
    const ImmunityCurves curves;
    double prev = 1.0;
    for (const double vsr : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
        const double m = curves.staticMargin(vsr);
        EXPECT_LT(m, prev);
        EXPECT_GT(m, 0.0);
        prev = m;
    }
}

TEST(Immunity, FullSwingMarginIsPhysical)
{
    // A 6T SRAM static noise margin is ~0.4 Vdd at full swing.
    const ImmunityCurves curves;
    EXPECT_NEAR(curves.staticMargin(1.0), 0.40, 0.05);
}

TEST(Immunity, CriticalAmplitudeFallsWithDuration)
{
    const ImmunityCurves curves;
    double prev = 1e9;
    for (double dr = 0.005; dr <= 0.1; dr += 0.005) {
        const double a = curves.criticalAmplitude(dr, 0.8);
        EXPECT_LT(a, prev);
        prev = a;
    }
}

TEST(Immunity, LongPulseAsymptoteIsStaticMargin)
{
    const ImmunityCurves curves;
    EXPECT_NEAR(curves.criticalAmplitude(1e6, 0.9),
                curves.staticMargin(0.9), 1e-6);
}

TEST(Immunity, CalibrationMatchesClosedForm)
{
    // The whole point of the calibration: integrating the noise
    // statistics over the curve at swing Vsr reproduces eq. (4).
    const FaultModel model;
    const ImmunityCurves curves;
    for (const double vsr : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
        const double target = model.probAtSwing(vsr);
        const double got = ImmunityCurves::faultProbForMargin(
            curves.staticMargin(vsr));
        EXPECT_NEAR(got, target, target * 1e-3);
    }
}

TEST(ImmunityDeath, RejectsBadArguments)
{
    const ImmunityCurves curves;
    EXPECT_DEATH(curves.criticalAmplitude(0.0, 0.5), "positive");
    EXPECT_DEATH(curves.staticMargin(0.0), "0, 1");
    EXPECT_DEATH(ImmunityCurves::marginForFaultProb(0.0), "0, 1");
}
