/**
 * @file
 * Tests of the streaming traffic subsystem (src/traffic/): the
 * PacketSource contract, churn determinism, the statistical shape of
 * the churn model (Zipf rank-frequency, Pareto burst tail, geometric
 * lifetimes), the O(1)-memory digest recorder, the streaming chip
 * harness, and the flows=/churn= sweep axes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/session.hh"
#include "common/random.hh"
#include "core/experiment.hh"
#include "npu/chip.hh"
#include "npu/config.hh"
#include "sweep/sink.hh"
#include "sweep/spec.hh"
#include "traffic/traffic.hh"

using namespace clumsy;

namespace
{

net::TraceConfig
churnyConfig(std::uint32_t flows = 64, double lifetime = 256.0)
{
    net::TraceConfig tc;
    tc.numFlows = flows;
    tc.churn.enabled = true;
    tc.churn.meanLifetimePackets = lifetime;
    return tc;
}

/** Least-squares slope of log(y) against log(x). */
double
logLogSlope(const std::vector<double> &x, const std::vector<double> &y)
{
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double lx = std::log(x[i]);
        const double ly = std::log(y[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

} // namespace

TEST(PacketSource, StaticStreamMatchesBatchGenerate)
{
    // The streaming source must be bit-identical to the test-only
    // batch generate() — that equality is what lets every pre-churn
    // golden trace replay unchanged through the new harness path.
    net::TraceConfig tc;
    net::TraceGenerator batch(tc);
    const auto want = batch.generate(500);

    traffic::StaticSource src(tc, 12);
    for (std::uint64_t i = 0; i < 500; ++i) {
        const net::Packet got = src.next();
        EXPECT_EQ(got.seq, want[i].seq);
        EXPECT_EQ(got.ip.src, want[i].ip.src);
        EXPECT_EQ(got.ip.dst, want[i].ip.dst);
        EXPECT_EQ(got.payload, want[i].payload);
        EXPECT_EQ(src.lastArrivalCycles(),
                  static_cast<std::int64_t>(i) * 12);
    }
}

TEST(PacketSource, MakeSourcePicksModelFromConfig)
{
    net::TraceConfig tc;
    EXPECT_NE(dynamic_cast<traffic::StaticSource *>(
                  traffic::makeSource(tc, 0).get()),
              nullptr);
    tc.churn.enabled = true;
    EXPECT_NE(dynamic_cast<traffic::ChurnSource *>(
                  traffic::makeSource(tc, 0).get()),
              nullptr);
}

TEST(ChurnSource, DeterministicPerSeed)
{
    const net::TraceConfig tc = churnyConfig();
    traffic::ChurnSource a(tc, 10);
    traffic::ChurnSource b(tc, 10);
    for (int i = 0; i < 3000; ++i) {
        const net::Packet pa = a.next();
        const net::Packet pb = b.next();
        ASSERT_EQ(pa.ip.src, pb.ip.src);
        ASSERT_EQ(pa.ip.dst, pb.ip.dst);
        ASSERT_EQ(pa.srcPort, pb.srcPort);
        ASSERT_EQ(pa.payload, pb.payload);
        ASSERT_EQ(a.lastArrivalCycles(), b.lastArrivalCycles());
    }

    net::TraceConfig other = tc;
    other.seed = 99;
    traffic::ChurnSource c(other, 10);
    bool differs = false;
    traffic::ChurnSource a2(tc, 10);
    for (int i = 0; i < 200 && !differs; ++i)
        differs = c.next().ip.dst != a2.next().ip.dst;
    EXPECT_TRUE(differs);
}

TEST(ChurnSource, ArrivalsNonDecreasingAndGappy)
{
    // OFF periods at burst boundaries must stretch some gaps well
    // beyond the nominal inter-arrival gap.
    net::TraceConfig tc = churnyConfig();
    tc.churn.offGapFactor = 16.0;
    traffic::ChurnSource src(tc, 100);
    std::int64_t prev = 0;
    std::int64_t maxGap = 0;
    for (int i = 0; i < 5000; ++i) {
        src.next();
        const std::int64_t now = src.lastArrivalCycles();
        ASSERT_GE(now, prev);
        maxGap = std::max(maxGap, now - prev);
        prev = now;
    }
    EXPECT_GT(maxGap, 100 * 8);
    EXPECT_GT(src.counters().bursts, 10u);
}

TEST(ChurnSource, FlowsChurnThroughThePopulation)
{
    // Mean lifetime 16 over 20k packets: thousands of flows must have
    // opened and closed while the live population stayed fixed.
    const net::TraceConfig tc = churnyConfig(32, 16.0);
    traffic::ChurnSource src(tc, 0);
    for (int i = 0; i < 20000; ++i)
        src.next();
    EXPECT_EQ(src.flows().size(), 32u);
    EXPECT_GT(src.flows().flowsClosed(), 500u);
    EXPECT_EQ(src.flows().flowsOpened(),
              32u + src.flows().flowsClosed());
}

TEST(ChurnSource, RampFactorDecaysLinearlyToOne)
{
    net::TraceConfig tc = churnyConfig();
    tc.churn.rampPackets = 1000;
    tc.churn.rampStartFactor = 5.0;
    const traffic::ChurnSource src(tc, 10);
    EXPECT_DOUBLE_EQ(src.rampFactor(0), 5.0);
    EXPECT_NEAR(src.rampFactor(500), 3.0, 0.01);
    EXPECT_DOUBLE_EQ(src.rampFactor(1000), 1.0);
    EXPECT_DOUBLE_EQ(src.rampFactor(5000), 1.0);
}

TEST(ChurnStatistics, ZipfRankFrequencySlope)
{
    // Slot ranks are fixed while flows churn through them, so the
    // per-slot packet counts must follow the configured Zipf law:
    // log(count) vs log(rank) slope ~ -s over the head of the ranking.
    net::TraceConfig tc = churnyConfig(64, 4096.0);
    tc.flowZipf = 1.0;
    traffic::ChurnSource src(tc, 0);
    for (int i = 0; i < 200000; ++i)
        src.next();

    std::vector<double> ranks, counts;
    for (std::size_t r = 0; r < 32; ++r) {
        ranks.push_back(static_cast<double>(r + 1));
        counts.push_back(
            static_cast<double>(src.slotPackets()[r]) + 0.5);
    }
    EXPECT_NEAR(logLogSlope(ranks, counts), -1.0, 0.15);
}

TEST(ChurnStatistics, BurstLengthsAreParetoTailed)
{
    // CCDF of the discrete Pareto: P(X >= x) ~ (minBurst/x)^alpha, so
    // the log-log CCDF slope over dyadic thresholds must sit near
    // -alpha.
    net::ChurnConfig churn;
    churn.burstAlpha = 1.5;
    churn.minBurst = 4;
    Rng rng(7);
    const int kDraws = 200000;
    std::vector<std::uint64_t> draws(kDraws);
    for (auto &d : draws) {
        d = traffic::ChurnSource::drawBurst(rng, churn);
        ASSERT_GE(d, churn.minBurst);
    }

    std::vector<double> xs, ccdf;
    for (std::uint64_t x = 4; x <= 256; x *= 2) {
        int ge = 0;
        for (const auto d : draws)
            ge += d >= x;
        xs.push_back(static_cast<double>(x));
        ccdf.push_back(static_cast<double>(ge) / kDraws);
    }
    EXPECT_NEAR(logLogSlope(xs, ccdf), -1.5, 0.3);
}

TEST(ChurnStatistics, LifetimesAreGeometricWithConfiguredMean)
{
    net::ChurnConfig churn;
    churn.meanLifetimePackets = 64.0;
    Rng rng(11);
    double sum = 0;
    std::uint64_t minSeen = ~0ull;
    const int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i) {
        const std::uint64_t d =
            traffic::FlowTable::drawLifetime(rng, churn);
        sum += static_cast<double>(d);
        minSeen = std::min(minSeen, d);
    }
    EXPECT_GE(minSeen, 1u);
    EXPECT_NEAR(sum / kDraws, 64.0, 6.4);
}

TEST(ValueRecorder, DigestModeTracksFullMode)
{
    core::ValueRecorder full;
    core::ValueRecorder digest(core::ValueRecorder::Mode::Digest);
    for (int p = 0; p < 50; ++p) {
        full.beginPacket();
        digest.beginPacket();
        for (int k = 0; k < 4; ++k) {
            full.record("key" + std::to_string(k),
                        static_cast<std::uint64_t>(p * 10 + k));
            digest.record("key" + std::to_string(k),
                          static_cast<std::uint64_t>(p * 10 + k));
        }
    }
    EXPECT_EQ(full.digest(), digest.digest());
    EXPECT_EQ(full.packetCount(), 50u);
    EXPECT_EQ(digest.packetCount(), 50u);

    // Any divergence — a different value, key, or frame boundary —
    // must move the digest.
    core::ValueRecorder other(core::ValueRecorder::Mode::Digest);
    for (int p = 0; p < 50; ++p) {
        other.beginPacket();
        for (int k = 0; k < 4; ++k)
            other.record("key" + std::to_string(k),
                         static_cast<std::uint64_t>(
                             p * 10 + k + (p == 31 && k == 2)));
    }
    EXPECT_NE(other.digest(), full.digest());
}

TEST(ChipStream, MatchesGoldenChipRun)
{
    // The streaming harness is the same chip with the O(packets)
    // bookkeeping removed: chip metrics must match the golden run
    // exactly, and each PE's rolling digest must equal the digest the
    // golden run's Full recorder accumulated over the same frames.
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 2;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;

    const auto factory = apps::appFactory("crc");
    const npu::ChipRun golden =
        npu::runChipGolden(factory, cfg, npuCfg);
    const npu::ChipStreamResult stream =
        npu::runChipStream(factory, cfg, npuCfg);

    EXPECT_EQ(sweep::chipMetricsJson(stream.chip),
              sweep::chipMetricsJson(golden.chip));
    ASSERT_EQ(stream.peDigests.size(), golden.recorders.size());
    for (std::size_t pe = 0; pe < stream.peDigests.size(); ++pe)
        EXPECT_EQ(stream.peDigests[pe], golden.recorders[pe].digest());
}

TEST(ChipStream, ByteIdenticalAcrossChipJobs)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 1500;
    npu::NpuConfig npuCfg;
    npuCfg.peCount = 4;
    npuCfg.dispatch = npu::DispatchPolicy::FlowHash;

    const core::AppFactory factory = [] {
        return std::make_unique<apps::SessionApp>();
    };
    const npu::ChipStreamResult serial =
        npu::runChipStream(factory, cfg, npuCfg);
    npu::NpuConfig parallel = npuCfg;
    parallel.chipJobs = 4;
    const npu::ChipStreamResult threaded =
        npu::runChipStream(factory, cfg, parallel);

    EXPECT_EQ(serial.valueDigest, threaded.valueDigest);
    EXPECT_EQ(serial.peDigests, threaded.peDigests);
    EXPECT_EQ(sweep::chipMetricsJson(serial.chip),
              sweep::chipMetricsJson(threaded.chip));
}

TEST(SweepAxes, FlowsAndChurnExpandAndElide)
{
    const sweep::SweepSpec spec = sweep::SweepSpec::parse(
        "app=crc;flows=64,128;churn=0,512;packets=100;trials=1");
    EXPECT_EQ(spec.cellCount(), 4u);

    const auto cells = sweep::expand(spec);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].flows, 64u);
    EXPECT_EQ(cells[0].churn, 0u);
    EXPECT_EQ(cells[1].churn, 512u);
    EXPECT_EQ(cells[3].flows, 128u);

    // Default values elide from the key so pre-traffic result files
    // resume cleanly; non-defaults must appear.
    EXPECT_EQ(cells[0].key().find("churn="), std::string::npos);
    EXPECT_NE(cells[0].key().find("flows=64"), std::string::npos);
    EXPECT_NE(cells[1].key().find("churn=512"), std::string::npos);

    sweep::SweepCell plain;
    plain.app = "crc";
    EXPECT_EQ(plain.key().find("flows="), std::string::npos);

    const core::ExperimentConfig cfg =
        sweep::makeConfig(spec, cells[1]);
    EXPECT_EQ(cfg.traceFlows, 64u);
    EXPECT_EQ(cfg.churnLifetime, 512u);
}

TEST(TraceValidation, RejectsOutOfRangeParameters)
{
    const auto construct = [](net::TraceConfig tc) {
        net::TraceGenerator gen(tc);
    };

    net::TraceConfig zeroFlows;
    zeroFlows.numFlows = 0;
    EXPECT_EXIT(construct(zeroFlows), ::testing::ExitedWithCode(1),
                "flows must be >= 1");

    net::TraceConfig inverted;
    inverted.minPayload = 200;
    inverted.maxPayload = 100;
    EXPECT_EXIT(construct(inverted), ::testing::ExitedWithCode(1),
                "payload bounds inverted");

    net::TraceConfig badZipf;
    badZipf.flowZipf = -0.5;
    EXPECT_EXIT(construct(badZipf), ::testing::ExitedWithCode(1),
                "flow Zipf exponent must be >= 0");

    net::TraceConfig badLifetime;
    badLifetime.churn.meanLifetimePackets = 0.0;
    EXPECT_EXIT(construct(badLifetime), ::testing::ExitedWithCode(1),
                "mean flow lifetime must be >= 1");

    net::TraceConfig badBurst;
    badBurst.churn.minBurst = 0;
    EXPECT_EXIT(construct(badBurst), ::testing::ExitedWithCode(1),
                "min burst must be >= 1");

    net::TraceConfig badAlpha;
    badAlpha.churn.burstAlpha = 0.0;
    EXPECT_EXIT(construct(badAlpha), ::testing::ExitedWithCode(1),
                "burst tail exponent must be > 0");
}
