/**
 * @file
 * Tests of the simulated-memory arena allocator.
 */

#include <gtest/gtest.h>

#include "mem/alloc.hh"

using namespace clumsy;
using namespace clumsy::mem;

TEST(Alloc, StartsAboveNullGuard)
{
    BackingStore store(4096);
    SimAllocator arena(store);
    EXPECT_GE(arena.alloc(4), kNullGuard);
}

TEST(Alloc, RespectsAlignment)
{
    BackingStore store(65536);
    SimAllocator arena(store);
    arena.alloc(3, 4); // misalign the cursor
    EXPECT_EQ(arena.alloc(8, 8) % 8, 0u);
    EXPECT_EQ(arena.alloc(1, 128) % 128, 0u);
    EXPECT_EQ(arena.alloc(4, 4) % 4, 0u);
}

TEST(Alloc, AllocationsDoNotOverlap)
{
    BackingStore store(65536);
    SimAllocator arena(store);
    const SimAddr a = arena.alloc(100, 4);
    const SimAddr b = arena.alloc(100, 4);
    EXPECT_GE(b, a + 100);
}

TEST(Alloc, ArrayHelper)
{
    BackingStore store(65536);
    SimAllocator arena(store);
    const SimAddr a = arena.allocArray(10, 16);
    const SimAddr b = arena.alloc(4);
    EXPECT_GE(b, a + 160);
}

TEST(Alloc, UsageAccounting)
{
    BackingStore store(4096);
    SimAllocator arena(store);
    const SimSize before = arena.remaining();
    arena.alloc(64, 4);
    EXPECT_EQ(arena.used(), 64u);
    EXPECT_EQ(arena.remaining(), before - 64);
}

TEST(Alloc, RespectsExplicitLimit)
{
    BackingStore store(4096);
    SimAllocator arena(store, 1024);
    EXPECT_EQ(arena.remaining(), 1024u - kNullGuard);
}

TEST(Alloc, ResetReclaims)
{
    BackingStore store(4096);
    SimAllocator arena(store);
    arena.alloc(512, 4);
    arena.reset();
    EXPECT_EQ(arena.used(), 0u);
}

TEST(AllocDeath, ExhaustionIsFatal)
{
    BackingStore store(4096);
    SimAllocator arena(store);
    EXPECT_EXIT(arena.alloc(8192, 4),
                ::testing::ExitedWithCode(1), "exhausted");
}

TEST(AllocDeath, RejectsBadRequests)
{
    BackingStore store(4096);
    SimAllocator arena(store);
    EXPECT_DEATH(arena.alloc(0, 4), "zero-size");
    EXPECT_DEATH(arena.alloc(4, 3), "power of two");
}
