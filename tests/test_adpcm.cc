/**
 * @file
 * Tests of the ADPCM media-processor extension workload.
 */

#include <gtest/gtest.h>

#include "apps/adpcm.hh"
#include "apps/app.hh"
#include "core/experiment.hh"
#include "net/trace_gen.hh"

using namespace clumsy;
using namespace clumsy::apps;
using core::ClumsyProcessor;
using core::ValueRecorder;

TEST(Adpcm, RegisteredAsExtension)
{
    EXPECT_EQ(extensionAppNames().size(), 3u);
    EXPECT_EQ(extensionAppNames()[0], "adpcm");
    EXPECT_EQ(extensionAppNames()[1], "session");
    EXPECT_EQ(extensionAppNames()[2], "lpm");
    EXPECT_EQ(makeApp("adpcm")->name(), "adpcm");
    EXPECT_EQ(makeApp("session")->name(), "session");
    EXPECT_EQ(makeApp("lpm")->name(), "lpm");
    // The paper's Table I set stays untouched.
    for (const auto &name : allAppNames()) {
        EXPECT_NE(name, "adpcm");
        EXPECT_NE(name, "session");
        EXPECT_NE(name, "lpm");
    }
}

TEST(Adpcm, ReferenceEncoderBasics)
{
    // Silence encodes to all-zero codes (diff 0 -> code 0, index
    // pinned at 0).
    const std::uint8_t silence[8] = {};
    const auto codes = AdpcmApp::referenceEncode(silence, sizeof(silence));
    ASSERT_EQ(codes.size(), 4u);
    for (const auto c : codes)
        EXPECT_EQ(c, 0);

    // A step up then down produces a positive then a negative code.
    const std::uint8_t wave[] = {0x00, 0x40, 0x00, 0xc0}; // +16k, -16k
    const auto c2 = AdpcmApp::referenceEncode(wave, sizeof(wave));
    ASSERT_EQ(c2.size(), 2u);
    EXPECT_EQ(c2[0] & 0x8, 0u);  // positive
    EXPECT_EQ(c2[1] & 0x8, 0x8u); // negative
}

TEST(Adpcm, SimulatedCoderMatchesReference)
{
    auto app = std::make_unique<AdpcmApp>();
    core::ProcessorConfig cfg;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    tc.seed = 7;
    net::TraceGenerator gen(tc);
    for (int i = 0; i < 5; ++i) {
        const net::Packet pkt = gen.next();
        ValueRecorder rec;
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
        ASSERT_FALSE(proc.fatalOccurred());

        const auto codes = AdpcmApp::referenceEncode(
            pkt.payload.data(), pkt.payload.size());
        std::uint64_t hash = 1469598103934665603ull;
        for (const auto c : codes)
            hash = (hash ^ c) * 1099511628211ull;
        ValueRecorder ref;
        ref.beginPacket();
        ref.record("adpcm_stream", hash);
        for (const auto &key : rec.comparePacket(0, ref))
            EXPECT_NE(key, "adpcm_stream") << "packet " << i;
    }
}

TEST(Adpcm, GracefulDegradationUnderFaults)
{
    // The media argument: faults overwhelmingly corrupt the coded
    // stream (a click in the audio) rather than killing the coder.
    // A corrupted *length* field can still trip the sample-loop
    // budget, so rare fatals remain possible at boosted rates.
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 3;
    cfg.cr = 0.25;
    cfg.faultScale = 50.0;
    cfg.scheme = mem::RecoveryScheme::NoDetection;
    const auto res = core::runExperiment(appFactory("adpcm"), cfg);
    EXPECT_GT(res.anyErrorProb, 0.05);
    EXPECT_GT(res.anyErrorProb, 20.0 * res.fatalProb);
}

TEST(Adpcm, DetectionRestoresFidelity)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 300;
    cfg.trials = 3;
    cfg.cr = 0.25;
    cfg.faultScale = 50.0;
    cfg.scheme = mem::RecoveryScheme::NoDetection;
    const auto blind = core::runExperiment(appFactory("adpcm"), cfg);
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    const auto guarded = core::runExperiment(appFactory("adpcm"), cfg);
    EXPECT_LT(guarded.anyErrorProb, blind.anyErrorProb);
}
