/**
 * @file
 * Tests of the analytical DRAM backend (src/dram/): row-buffer
 * hit/miss/conflict latency arithmetic, bank-conflict serialization
 * order, stat invariants, address mapping, the flat-floor contract of
 * extraQuanta(), and config validation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram.hh"

using namespace clumsy;
using namespace clumsy::dram;

namespace
{

DramConfig
smallConfig()
{
    DramConfig cfg;
    cfg.banks = 4;
    cfg.rowBytes = 1024;
    cfg.rowHitCycles = 60;
    cfg.rowMissCycles = 90;
    cfg.rowConflictCycles = 135;
    return cfg;
}

/** Address of @p row in @p bank under smallConfig()'s geometry. */
std::uint64_t
addrOf(const DramConfig &cfg, unsigned bank, std::uint64_t row)
{
    return (row * cfg.banks + bank) *
           static_cast<std::uint64_t>(cfg.rowBytes);
}

} // namespace

// --- address mapping -------------------------------------------------

TEST(DramModel, AddressMappingRoundTrips)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    for (unsigned bank = 0; bank < cfg.banks; ++bank) {
        for (std::uint64_t row : {0ull, 1ull, 7ull, 123ull}) {
            const std::uint64_t addr = addrOf(cfg, bank, row);
            EXPECT_EQ(dram.bankOf(addr), bank);
            EXPECT_EQ(dram.rowOf(addr), row);
            // Any offset within the row maps identically.
            EXPECT_EQ(dram.bankOf(addr + cfg.rowBytes - 1), bank);
            EXPECT_EQ(dram.rowOf(addr + cfg.rowBytes - 1), row);
        }
    }
}

// --- latency classes -------------------------------------------------

/**
 * First touch of a bank is a row miss; a repeat to the same row is a
 * hit; switching rows within the bank is a conflict. Each pays its
 * configured latency exactly.
 */
TEST(DramModel, HitMissConflictLatencyArithmetic)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    const std::uint64_t rowA = addrOf(cfg, 0, 5);
    const std::uint64_t rowB = addrOf(cfg, 0, 9);

    // Closed bank: row miss, completion = req + miss latency.
    Quanta t = 1000;
    Quanta done = dram.access(rowA, t);
    EXPECT_EQ(done, t + cyclesToQuanta(cfg.rowMissCycles));

    // Open row: hit, measured from the request (bank already free).
    t = done + 50;
    done = dram.access(rowA, t);
    EXPECT_EQ(done, t + cyclesToQuanta(cfg.rowHitCycles));

    // Different row in the open bank: conflict.
    t = done + 50;
    done = dram.access(rowB, t);
    EXPECT_EQ(done, t + cyclesToQuanta(cfg.rowConflictCycles));

    // ... and the bank now holds rowB open: going back to rowA
    // conflicts again, rowB hits.
    t = done + 50;
    EXPECT_EQ(dram.access(rowB, t),
              t + cyclesToQuanta(cfg.rowHitCycles));

    EXPECT_EQ(dram.stats().rowHits, 2u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    EXPECT_EQ(dram.stats().rowConflicts, 1u);
}

// --- bank-conflict serialization -------------------------------------

/**
 * An access to a busy bank starts when the bank frees, not at its
 * request time: back-to-back same-bank requests queue, and the second
 * completion is measured from the first's completion.
 */
TEST(DramModel, SameBankAccessesSerialize)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    const std::uint64_t rowA = addrOf(cfg, 1, 2);

    const Quanta first = dram.access(rowA, 100);
    EXPECT_EQ(first, 100 + cyclesToQuanta(cfg.rowMissCycles));

    // Requested while the bank is still busy: starts at `first`.
    const Quanta second = dram.access(rowA, 150);
    EXPECT_EQ(second, first + cyclesToQuanta(cfg.rowHitCycles));

    // Requested after the bank freed: starts at its own request time.
    const Quanta third = dram.access(rowA, second + 500);
    EXPECT_EQ(third, second + 500 + cyclesToQuanta(cfg.rowHitCycles));
}

/** Different banks do not serialize: each starts at its request. */
TEST(DramModel, DifferentBanksOverlap)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    const Quanta a = dram.access(addrOf(cfg, 0, 1), 100);
    const Quanta b = dram.access(addrOf(cfg, 1, 1), 100);
    EXPECT_EQ(a, 100 + cyclesToQuanta(cfg.rowMissCycles));
    EXPECT_EQ(b, 100 + cyclesToQuanta(cfg.rowMissCycles));
}

// --- stat invariants -------------------------------------------------

/**
 * hits + misses + conflicts == accesses, and the per-bank counters
 * partition the total, over an arbitrary mixed sequence.
 */
TEST(DramModel, StatInvariantsHoldOverMixedSequence)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    Quanta t = 0;
    // A deterministic pseudo-random walk over banks and rows.
    std::uint64_t x = 0x243f6a8885a308d3ull;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const unsigned bank = static_cast<unsigned>(x % cfg.banks);
        const std::uint64_t row = (x >> 8) % 16;
        t = dram.access(addrOf(cfg, bank, row), t + (x >> 16) % 100);
    }
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.accesses, 500u);
    EXPECT_EQ(s.rowHits + s.rowMisses + s.rowConflicts, s.accesses);
    // Exactly one first-touch miss per bank that was touched; every
    // later closed-row state is impossible (rows stay open).
    EXPECT_LE(s.rowMisses, static_cast<std::uint64_t>(cfg.banks));
    std::uint64_t perBank = 0;
    ASSERT_EQ(s.bankAccesses.size(), cfg.banks);
    for (std::uint64_t n : s.bankAccesses)
        perBank += n;
    EXPECT_EQ(perBank, s.accesses);
}

// --- the flat-floor contract -----------------------------------------

/**
 * extraQuanta() is the latency beyond the flat rowHitCycles floor and
 * is never negative: a row hit on a free bank costs exactly 0 extra.
 */
TEST(DramModel, ExtraQuantaIsNonNegativeAndZeroOnFreeHit)
{
    const DramConfig cfg = smallConfig();
    DramModel dram(cfg);
    const std::uint64_t rowA = addrOf(cfg, 2, 3);
    // First touch: miss costs (miss - hit) extra.
    EXPECT_EQ(dram.extraQuanta(rowA, 100),
              cyclesToQuanta(cfg.rowMissCycles - cfg.rowHitCycles));
    // Re-touch long after the bank freed: open-row hit, zero extra.
    EXPECT_EQ(dram.extraQuanta(rowA, 100000), 0);
    // Busy-bank wait shows up in the extra as well.
    const Quanta busyUntil = 100000 + cyclesToQuanta(cfg.rowHitCycles);
    const Quanta wait = 7;
    EXPECT_EQ(dram.extraQuanta(rowA, busyUntil - wait), wait);
}

// --- determinism -----------------------------------------------------

/** The model is a pure function of its (addr, reqTime) sequence. */
TEST(DramModel, ReplayIsByteIdentical)
{
    const DramConfig cfg = smallConfig();
    std::vector<Quanta> first;
    for (int pass = 0; pass < 2; ++pass) {
        DramModel dram(cfg);
        std::vector<Quanta> done;
        Quanta t = 0;
        for (int i = 0; i < 200; ++i) {
            const std::uint64_t addr =
                addrOf(cfg, i % cfg.banks, (i * 7) % 11);
            t += 30;
            done.push_back(dram.access(addr, t));
        }
        if (pass == 0)
            first = done;
        else
            EXPECT_EQ(done, first);
    }
}

// --- validation ------------------------------------------------------

TEST(DramConfig, ValidateRejectsNonsense)
{
    {
        DramConfig cfg = smallConfig();
        cfg.rowBytes = 1000; // not a power of two
        EXPECT_DEATH(cfg.validate(), "power of two");
    }
    {
        DramConfig cfg = smallConfig();
        cfg.rowHitCycles = 0;
        EXPECT_DEATH(cfg.validate(), "row-hit latency must be >= 1");
    }
    {
        DramConfig cfg = smallConfig();
        cfg.rowMissCycles = cfg.rowHitCycles - 1;
        EXPECT_DEATH(cfg.validate(),
                     "row-miss latency must be >= the row-hit");
    }
    {
        DramConfig cfg = smallConfig();
        cfg.rowConflictCycles = cfg.rowMissCycles - 1;
        EXPECT_DEATH(cfg.validate(),
                     "row-conflict latency must be >= the row-miss");
    }
}

/** banks = 0 turns the model off; validate() accepts it silently. */
TEST(DramConfig, BanksZeroIsModelOff)
{
    DramConfig cfg = smallConfig();
    cfg.banks = 0;
    cfg.rowBytes = 12345; // nonsense is fine when the model is off
    cfg.validate();
}
