/**
 * @file
 * Per-application correctness tests: every workload must run its
 * golden (fault-free) path cleanly, produce deterministic marked
 * values, and — where a host-side reference exists (CRC-32, MD5,
 * RFC 1812 checksum handling) — compute the right answers through
 * the simulated memory system.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/app.hh"
#include "apps/crc.hh"
#include "apps/md5.hh"
#include "core/experiment.hh"
#include "net/checksum.hh"
#include "net/trace_gen.hh"

using namespace clumsy;
using namespace clumsy::apps;
using core::ClumsyProcessor;
using core::ValueRecorder;

namespace
{

struct GoldenRun
{
    std::unique_ptr<core::PacketApp> app;
    std::unique_ptr<ClumsyProcessor> proc;
    ValueRecorder rec;
    std::vector<net::Packet> trace;

    explicit GoldenRun(const std::string &name, std::uint64_t packets)
    {
        app = makeApp(name);
        core::ProcessorConfig cfg;
        cfg.injectionEnabled = false;
        proc = std::make_unique<ClumsyProcessor>(cfg);
        app->initialize(*proc);
        net::TraceConfig tc = app->traceConfig();
        tc.seed = 77;
        net::TraceGenerator gen(tc);
        trace = gen.generate(packets);
        for (const auto &pkt : trace) {
            proc->beginPacket();
            rec.beginPacket();
            app->processPacket(*proc, pkt, rec);
            proc->endPacket();
        }
    }
};

} // namespace

class EveryApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryApp, GoldenRunIsClean)
{
    GoldenRun run(GetParam(), 40);
    EXPECT_FALSE(run.proc->fatalOccurred())
        << run.proc->fatalReason();
    EXPECT_EQ(run.rec.packetCount(), 40u);
    EXPECT_EQ(run.proc->injector().faultCount(), 0u);
    EXPECT_GT(run.proc->instructions(), 0u);
    EXPECT_GT(run.proc->hierarchy().stats().get("reads"), 0u);
}

TEST_P(EveryApp, GoldenRunIsDeterministic)
{
    GoldenRun a(GetParam(), 25);
    GoldenRun b(GetParam(), 25);
    for (std::size_t i = 0; i < 25; ++i) {
        EXPECT_TRUE(a.rec.comparePacket(i, b.rec).empty())
            << "packet " << i << " diverged";
    }
    EXPECT_EQ(a.proc->now(), b.proc->now());
    EXPECT_EQ(a.proc->instructions(), b.proc->instructions());
}

INSTANTIATE_TEST_SUITE_P(All, EveryApp,
                         ::testing::ValuesIn(allAppNames()));

TEST(AppRegistry, NamesAndFactories)
{
    EXPECT_EQ(allAppNames().size(), 7u);
    for (const auto &name : allAppNames())
        EXPECT_EQ(makeApp(name)->name(), name);
    EXPECT_EQ(appFactory("route")()->name(), "route");
}

TEST(AppRegistryDeath, UnknownName)
{
    EXPECT_EXIT(makeApp("bogus"), ::testing::ExitedWithCode(1),
                "unknown application");
}

TEST(CrcApp, MatchesHostReference)
{
    // The value computed through simulated memory must equal the
    // host-side CRC-32 of the same payload.
    auto app = std::make_unique<CrcApp>();
    core::ProcessorConfig cfg;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    tc.seed = 5;
    net::TraceGenerator gen(tc);
    ValueRecorder rec, rec2;
    for (int i = 0; i < 10; ++i) {
        const net::Packet pkt = gen.next();
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
        // Reference frame with the expected accumulator.
        rec2.beginPacket();
        rec2.record("crc_accum",
                    CrcApp::referenceCrc(pkt.payload.data(),
                                         pkt.payload.size()));
        const auto bad = rec.comparePacket(i, rec2);
        // Only crc_accum is shared between the frames; it must match
        // (crc_table exists only in rec, so it appears in `bad`).
        for (const auto &key : bad)
            EXPECT_NE(key, "crc_accum");
    }
}

TEST(CrcApp, ReferenceVector)
{
    // CRC-32 of "123456789" is the classic 0xCBF43926.
    const char *s = "123456789";
    EXPECT_EQ(CrcApp::referenceCrc(
                  reinterpret_cast<const std::uint8_t *>(s), 9),
              0xcbf43926u);
}

TEST(Md5App, ReferenceVectors)
{
    // RFC 1321 test suite: MD5("") and MD5("abc").
    std::uint32_t d[4];
    Md5App::referenceDigest(nullptr, 0, d);
    EXPECT_EQ(d[0], 0xd98c1dd4u);
    EXPECT_EQ(d[1], 0x04b2008fu);
    EXPECT_EQ(d[2], 0x980980e9u);
    EXPECT_EQ(d[3], 0x7e42f8ecu);
    const char *abc = "abc";
    Md5App::referenceDigest(
        reinterpret_cast<const std::uint8_t *>(abc), 3, d);
    EXPECT_EQ(d[0], 0x98500190u);
    EXPECT_EQ(d[1], 0xb04fd23cu);
    EXPECT_EQ(d[2], 0x7d3f96d6u);
    EXPECT_EQ(d[3], 0x727fe128u);
}

TEST(Md5App, SimulatedDigestMatchesReference)
{
    auto app = std::make_unique<Md5App>();
    core::ProcessorConfig cfg;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    tc.seed = 6;
    net::TraceGenerator gen(tc);
    for (int i = 0; i < 5; ++i) {
        const net::Packet pkt = gen.next();
        ValueRecorder rec;
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
        std::uint32_t expect[4];
        Md5App::referenceDigest(pkt.payload.data(),
                                pkt.payload.size(), expect);
        ValueRecorder ref;
        ref.beginPacket();
        for (int w = 0; w < 4; ++w)
            ref.record("md5_digest", expect[w]);
        EXPECT_TRUE(rec.comparePacket(0, ref).empty())
            << "digest mismatch on packet " << i;
    }
}

TEST(RouteApp, GoldenChecksumAndTtlSemantics)
{
    GoldenRun run("route", 30);
    // Re-run to inspect per-packet values against the wire packets.
    auto app = makeApp("route");
    core::ProcessorConfig cfg;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    tc.seed = 77;
    net::TraceGenerator gen(tc);
    for (int i = 0; i < 30; ++i) {
        const net::Packet pkt = gen.next();
        ValueRecorder rec;
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
        // Expected: verification passes (0), TTL decremented, and the
        // patched checksum matches a full recompute.
        net::Ipv4Header h = pkt.ip;
        h.ttl -= 1;
        h.checksum = 0;
        const auto bytes = h.toBytes();
        ValueRecorder ref;
        ref.beginPacket();
        ref.record("checksum", 0);
        ref.record("ttl", h.ttl);
        ref.record("checksum",
                   net::internetChecksum(bytes.data(), bytes.size()));
        for (const auto &key : rec.comparePacket(0, ref)) {
            EXPECT_NE(key, "checksum") << "packet " << i;
            EXPECT_NE(key, "ttl") << "packet " << i;
        }
    }
}

TEST(NatApp, TranslatesConsistently)
{
    GoldenRun run("nat", 60);
    // Every packet from the same source must get the same translated
    // address; translated addresses live in the public pool.
    // (Checked indirectly: the golden run is deterministic and the
    // recorder captured translated_ip for every packet.)
    EXPECT_EQ(run.rec.packetCount(), 60u);
    EXPECT_FALSE(run.proc->fatalOccurred());
}

TEST(UrlApp, GoldenSwitchingMatchesPools)
{
    auto app = makeApp("url");
    core::ProcessorConfig cfg;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    app->initialize(proc);
    net::TraceConfig tc = app->traceConfig();
    tc.seed = 12;
    net::TraceGenerator gen(tc);
    const auto urls = net::TraceGenerator::makeUrlPool(tc);
    const auto pool = net::TraceGenerator::makeDestPool(tc);
    for (int i = 0; i < 20; ++i) {
        const net::Packet pkt = gen.next();
        ValueRecorder rec;
        rec.beginPacket();
        app->processPacket(proc, pkt, rec);
        // Parse the wire URL and compute the expected switch target.
        const std::string s(pkt.payload.begin(), pkt.payload.end());
        const auto sp = s.find(' ', 4);
        const std::string url = s.substr(4, sp - 4);
        const auto it = std::find(urls.begin(), urls.end(), url);
        ASSERT_NE(it, urls.end());
        const auto idx =
            static_cast<std::uint32_t>(it - urls.begin());
        ValueRecorder ref;
        ref.beginPacket();
        ref.record("url_entry", idx);
        ref.record("final_dest", pool[idx % pool.size()]);
        for (const auto &key : rec.comparePacket(0, ref)) {
            EXPECT_NE(key, "url_entry") << i;
            EXPECT_NE(key, "final_dest") << i;
        }
    }
}

TEST(DrrApp, DeficitsStayBounded)
{
    GoldenRun run("drr", 100);
    EXPECT_FALSE(run.proc->fatalOccurred());
    // DRR invariant: a deficit never exceeds quantum + max packet
    // size; with forfeiture on empty queues it stays small. Checked
    // indirectly via determinism plus no queue overflow fatal.
}
