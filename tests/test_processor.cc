/**
 * @file
 * Tests of the ClumsyProcessor facade: memory API, instruction
 * charging, DMA, fatal-error machinery, epochs and energy.
 */

#include <gtest/gtest.h>

#include "core/processor.hh"

using namespace clumsy;
using namespace clumsy::core;

TEST(Processor, MemoryRoundTrip)
{
    ClumsyProcessor proc;
    const SimAddr a = proc.alloc(64, 4);
    proc.write32(a, 0xfeedface);
    proc.write16(a + 4, 0x1234);
    proc.write8(a + 6, 0x56);
    EXPECT_EQ(proc.read32(a), 0xfeedfaceu);
    EXPECT_EQ(proc.read16(a + 4), 0x1234u);
    EXPECT_EQ(proc.read8(a + 6), 0x56u);
}

TEST(Processor, TimeAdvancesWithWork)
{
    ClumsyProcessor proc;
    const Quanta t0 = proc.now();
    proc.execute(10);
    EXPECT_GE(proc.now(), t0 + cyclesToQuanta(10));
    const Quanta t1 = proc.now();
    const SimAddr a = proc.alloc(4, 4);
    proc.read32(a);
    EXPECT_GT(proc.now(), t1);
}

TEST(Processor, InstructionCountAndFetches)
{
    ProcessorConfig cfg;
    ClumsyProcessor proc(cfg);
    proc.setCodeRegion(0, 1024);
    proc.execute(64);
    EXPECT_EQ(proc.instructions(), 64u);
    // 64 insts / 8 per fetch = 8 I-cache accesses.
    EXPECT_EQ(proc.hierarchy().l1i().stats().get("hits") +
                  proc.hierarchy().l1i().stats().get("misses"),
              8u);
}

TEST(Processor, SmallCodeRegionHitsAfterWarmup)
{
    ClumsyProcessor proc;
    proc.setCodeRegion(0, 1024);
    proc.execute(8 * 32 * 10); // ten laps of a 1 KB loop
    const auto &stats = proc.hierarchy().l1i().stats();
    EXPECT_EQ(stats.get("misses"), 32u); // only the first lap misses
}

TEST(Processor, HugeCodeRegionThrashes)
{
    ClumsyProcessor proc;
    proc.setCodeRegion(0, 64 << 10); // 16x the L1I
    proc.execute(8 * 2048 * 2);      // two laps
    const auto &stats = proc.hierarchy().l1i().stats();
    EXPECT_EQ(stats.get("hits"), 0u);
}

TEST(Processor, DmaVisibleAndCoherent)
{
    ClumsyProcessor proc;
    const SimAddr a = proc.alloc(128, 128);
    proc.write32(a, 0x01010101); // cached + dirty
    const std::uint8_t blob[4] = {0xde, 0xad, 0xbe, 0xef};
    proc.dmaWrite(a, blob, 4);
    EXPECT_EQ(proc.read32(a), 0xefbeaddeu);
}

TEST(Processor, DmaPreservesDirtyNeighbors)
{
    ClumsyProcessor proc;
    const SimAddr a = proc.alloc(64, 64);
    proc.write32(a, 0x13572468); // dirty, same line as a+4
    const std::uint8_t blob[4] = {1, 2, 3, 4};
    proc.dmaWrite(a + 4, blob, 4);
    EXPECT_EQ(proc.read32(a), 0x13572468u);
}

TEST(Processor, PeekDoesNotDisturbState)
{
    ClumsyProcessor proc;
    const SimAddr a = proc.alloc(4, 4);
    proc.write32(a, 42);
    const auto reads = proc.hierarchy().stats().get("reads");
    const Quanta t = proc.now();
    EXPECT_EQ(proc.peek32(a), 42u);
    EXPECT_EQ(proc.peek8(a), 42u);
    EXPECT_EQ(proc.hierarchy().stats().get("reads"), reads);
    EXPECT_EQ(proc.now(), t);
}

TEST(Processor, FatalIsStickyAndFirstReasonWins)
{
    ClumsyProcessor proc;
    EXPECT_FALSE(proc.fatalOccurred());
    proc.raiseFatal("first");
    proc.raiseFatal("second");
    EXPECT_TRUE(proc.fatalOccurred());
    EXPECT_EQ(proc.fatalReason(), "first");
}

TEST(Processor, LoopGuardTripsToFatal)
{
    ClumsyProcessor proc;
    ClumsyProcessor::LoopGuard guard(proc, 3, "test loop");
    EXPECT_TRUE(guard.tick());
    EXPECT_TRUE(guard.tick());
    EXPECT_TRUE(guard.tick());
    EXPECT_FALSE(guard.tick());
    EXPECT_TRUE(proc.fatalOccurred());
    EXPECT_NE(proc.fatalReason().find("test loop"), std::string::npos);
}

TEST(Processor, LoopGuardStopsOnExistingFatal)
{
    ClumsyProcessor proc;
    proc.raiseFatal("elsewhere");
    ClumsyProcessor::LoopGuard guard(proc, 100, "loop");
    EXPECT_FALSE(guard.tick());
}

TEST(Processor, StaticCycleTimeApplied)
{
    ProcessorConfig cfg;
    cfg.staticCr = 0.5;
    ClumsyProcessor proc(cfg);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.5);
    EXPECT_EQ(proc.freqController(), nullptr);
}

TEST(Processor, DynamicControllerRampsUpWhenQuiet)
{
    ProcessorConfig cfg;
    cfg.dynamicFrequency = true;
    cfg.injectionEnabled = false; // no faults: epochs look quiet
    ClumsyProcessor proc(cfg);
    ASSERT_NE(proc.freqController(), nullptr);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 1.0);
    for (int i = 0; i < 300; ++i) {
        proc.beginPacket();
        proc.endPacket();
    }
    // 3 quiet epochs: 1.0 -> 0.75 -> 0.5 -> 0.25.
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.25);
    EXPECT_EQ(proc.freqController()->switches(), 3u);
}

TEST(Processor, EpochSwitchChargesPenalty)
{
    ProcessorConfig cfg;
    cfg.dynamicFrequency = true;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    Quanta before = 0;
    for (int i = 0; i < 100; ++i) {
        proc.beginPacket();
        before = proc.now();
        proc.endPacket();
    }
    EXPECT_EQ(proc.now() - before,
              cyclesToQuanta(cfg.freqCtl.switchPenaltyCycles));
}

TEST(Processor, ObservedFaultsParityVsOracle)
{
    ProcessorConfig cfg;
    cfg.hierarchy.scheme = mem::RecoveryScheme::TwoStrike;
    cfg.faultModel.scale = 5e3;
    cfg.staticCr = 0.25;
    ClumsyProcessor proc(cfg);
    const SimAddr a = proc.alloc(4, 4);
    proc.write32(a, 7);
    for (int i = 0; i < 3000; ++i)
        proc.read32(a);
    // With parity, observed = parity trips.
    EXPECT_EQ(proc.observedFaults(),
              proc.hierarchy().stats().get("parity_trips"));
    EXPECT_GT(proc.observedFaults(), 0u);

    ProcessorConfig blind = cfg;
    blind.hierarchy.scheme = mem::RecoveryScheme::NoDetection;
    ClumsyProcessor oracle(blind);
    const SimAddr b = oracle.alloc(4, 4);
    oracle.write32(b, 7);
    for (int i = 0; i < 3000; ++i)
        oracle.read32(b);
    EXPECT_EQ(oracle.observedFaults(), oracle.injector().faultCount());
}

TEST(Processor, EnergyGrowsWithActivity)
{
    ClumsyProcessor proc;
    const double e0 = proc.totalEnergyPj();
    proc.execute(1000);
    const double e1 = proc.totalEnergyPj();
    EXPECT_GT(e1, e0);
    const SimAddr a = proc.alloc(4, 4);
    proc.read32(a);
    EXPECT_GT(proc.totalEnergyPj(), e1);
    EXPECT_GT(proc.l1dEnergyPj(), 0.0);
}

TEST(Processor, InjectionToggle)
{
    ProcessorConfig cfg;
    cfg.faultModel.scale = 1e5;
    cfg.injectionEnabled = false;
    ClumsyProcessor proc(cfg);
    const SimAddr a = proc.alloc(4, 4);
    proc.write32(a, 0);
    for (int i = 0; i < 1000; ++i)
        proc.read32(a);
    EXPECT_EQ(proc.injector().faultCount(), 0u);
    proc.setInjectionEnabled(true);
    for (int i = 0; i < 1000; ++i)
        proc.read32(a);
    EXPECT_GT(proc.injector().faultCount(), 0u);
}

TEST(ProcessorDeath, BadConfigurationIsFatal)
{
    ProcessorConfig cfg;
    cfg.staticCr = 1.5;
    EXPECT_EXIT(ClumsyProcessor{cfg}, ::testing::ExitedWithCode(1),
                "staticCr");
    ProcessorConfig cfg2;
    cfg2.memBytes = 1000; // not a multiple of the L2 line
    EXPECT_EXIT(ClumsyProcessor{cfg2}, ::testing::ExitedWithCode(1),
                "multiple");
}

TEST(ProcessorDeath, CodeRegionBounded)
{
    ClumsyProcessor proc;
    EXPECT_DEATH(proc.setCodeRegion(0, 2u << 20), "instruction region");
}
