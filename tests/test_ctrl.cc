/**
 * @file
 * Tests of the control-plane churn subsystem (src/ctrl/): the seeded
 * event stream (determinism, seed decorrelation, rate scaling, mix
 * filtering, the streaming contract), the RCU epoch/grace-period
 * domain, and the harness-level interleave (events applied in golden
 * runs, rate-0 bit-identity, nat/session update hooks).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/app.hh"
#include "apps/nat.hh"
#include "apps/session.hh"
#include "core/experiment.hh"
#include "ctrl/ctrl.hh"
#include "ctrl/rcu.hh"
#include "net/trace_gen.hh"

using namespace clumsy;
using ctrl::CtrlConfig;
using ctrl::CtrlEvent;
using ctrl::CtrlEventKind;
using ctrl::CtrlMix;
using ctrl::RcuDomain;

namespace
{

net::TraceConfig
traceConfig(std::uint64_t seed = 1)
{
    net::TraceConfig tc;
    tc.seed = seed;
    tc.numFlows = 64;
    tc.numDestinations = 128;
    return tc;
}

/** Drain up to @p n events into a vector. */
std::vector<CtrlEvent>
drain(ctrl::CtrlSource &src, std::size_t n)
{
    std::vector<CtrlEvent> out;
    while (out.size() < n) {
        const CtrlEvent *ev = src.peek();
        if (!ev)
            break;
        out.push_back(*ev);
        src.advance();
    }
    return out;
}

} // namespace

// ---- the stream ----------------------------------------------------

TEST(CtrlSource, RateZeroYieldsNoSource)
{
    CtrlConfig cfg; // rate 0 by default
    EXPECT_EQ(ctrl::makeCtrlSource(cfg, traceConfig()), nullptr);
}

TEST(CtrlSource, ScheduleIsDeterministic)
{
    CtrlConfig cfg;
    cfg.rate = 50;
    const auto a = ctrl::makeCtrlSource(cfg, traceConfig());
    const auto b = ctrl::makeCtrlSource(cfg, traceConfig());
    ASSERT_NE(a, nullptr);
    const auto ea = drain(*a, 200);
    const auto eb = drain(*b, 200);
    ASSERT_EQ(ea.size(), 200u);
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].beforePacket, eb[i].beforePacket);
        EXPECT_EQ(ea[i].kind, eb[i].kind);
        EXPECT_EQ(ea[i].key, eb[i].key);
        EXPECT_EQ(ea[i].prefixLen, eb[i].prefixLen);
        EXPECT_EQ(ea[i].value, eb[i].value);
        EXPECT_EQ(ea[i].seq, i);
    }
}

TEST(CtrlSource, SchedulePositionsAreMonotone)
{
    CtrlConfig cfg;
    cfg.rate = 200;
    const auto src = ctrl::makeCtrlSource(cfg, traceConfig());
    const auto events = drain(*src, 500);
    ASSERT_EQ(events.size(), 500u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].beforePacket, events[i - 1].beforePacket);
}

TEST(CtrlSource, DifferentSeedsGiveDifferentSchedules)
{
    CtrlConfig cfg;
    cfg.rate = 50;
    const auto a = ctrl::makeCtrlSource(cfg, traceConfig(1));
    const auto b = ctrl::makeCtrlSource(cfg, traceConfig(2));
    const auto ea = drain(*a, 64);
    const auto eb = drain(*b, 64);
    bool differ = false;
    for (std::size_t i = 0; i < ea.size() && !differ; ++i)
        differ = ea[i].beforePacket != eb[i].beforePacket ||
                 ea[i].key != eb[i].key;
    EXPECT_TRUE(differ);
}

TEST(CtrlSource, RateControlsEventDensity)
{
    auto countBefore = [](std::uint32_t rate, std::uint64_t horizon) {
        CtrlConfig cfg;
        cfg.rate = rate;
        const auto src = ctrl::makeCtrlSource(cfg, traceConfig());
        std::uint64_t n = 0;
        while (const CtrlEvent *ev = src->peek()) {
            if (ev->beforePacket >= horizon)
                break;
            ++n;
            src->advance();
        }
        return n;
    };
    // rate is events per 1000 packets: expect the empirical density
    // within a factor of two of nominal over a long horizon.
    const std::uint64_t at100 = countBefore(100, 20000);
    EXPECT_GT(at100, 1000u);
    EXPECT_LT(at100, 4000u);
    // A 10x rate produces clearly more events.
    const std::uint64_t at10 = countBefore(10, 20000);
    EXPECT_GT(at100, 4 * at10);
}

TEST(CtrlSource, MixFiltersEventKinds)
{
    auto kindsOf = [](CtrlMix mix) {
        CtrlConfig cfg;
        cfg.rate = 100;
        cfg.mix = mix;
        const auto src = ctrl::makeCtrlSource(cfg, traceConfig());
        return drain(*src, 200);
    };
    for (const CtrlEvent &ev : kindsOf(CtrlMix::Fib))
        EXPECT_TRUE(ev.kind == CtrlEventKind::FibInsert ||
                    ev.kind == CtrlEventKind::FibWithdraw);
    for (const CtrlEvent &ev : kindsOf(CtrlMix::Nat))
        EXPECT_TRUE(ev.kind == CtrlEventKind::NatAdd ||
                    ev.kind == CtrlEventKind::NatRemove);
    for (const CtrlEvent &ev : kindsOf(CtrlMix::Session))
        EXPECT_EQ(ev.kind, CtrlEventKind::SessionFlush);
    // The full mix eventually produces every kind.
    bool seen[5] = {};
    for (const CtrlEvent &ev : kindsOf(CtrlMix::All))
        seen[static_cast<int>(ev.kind)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(CtrlSource, FibEventsCarryValidPrefixes)
{
    CtrlConfig cfg;
    cfg.rate = 100;
    cfg.mix = CtrlMix::Fib;
    const auto src = ctrl::makeCtrlSource(cfg, traceConfig());
    for (const CtrlEvent &ev : drain(*src, 200)) {
        EXPECT_GE(ev.prefixLen, 1);
        EXPECT_LE(ev.prefixLen, 31);
        // The key is masked to its prefix length.
        const std::uint32_t mask =
            ev.prefixLen >= 32
                ? 0xffffffffu
                : ~((1u << (32 - ev.prefixLen)) - 1u);
        EXPECT_EQ(ev.key & mask, ev.key);
    }
}

TEST(CtrlSource, MixNamesRoundTrip)
{
    EXPECT_EQ(ctrl::mixFromString("fib"), CtrlMix::Fib);
    EXPECT_EQ(ctrl::mixFromString("nat"), CtrlMix::Nat);
    EXPECT_EQ(ctrl::mixFromString("session"), CtrlMix::Session);
    EXPECT_EQ(ctrl::mixFromString("all"), CtrlMix::All);
    EXPECT_EQ(ctrl::to_string(CtrlMix::Fib), "fib");
    EXPECT_EQ(ctrl::to_string(CtrlMix::All), "all");
    EXPECT_DEATH(ctrl::mixFromString("bogus"), "valid choices");
}

// ---- the RCU domain ------------------------------------------------

TEST(RcuDomain, GracePeriodSpansTwoQuiescentPoints)
{
    RcuDomain rcu;
    rcu.retire(0x1000, 16);
    EXPECT_EQ(rcu.retired(), 1u);
    EXPECT_EQ(rcu.inGrace(), 1u);
    EXPECT_FALSE(rcu.isReclaimed(0x1000));
    // One quiescent point is not enough: a reader that started before
    // the retire may still hold the address.
    rcu.quiesce();
    EXPECT_FALSE(rcu.isReclaimed(0x1000));
    EXPECT_EQ(rcu.takeFree(16), 0u);
    // The second point completes the grace period.
    rcu.quiesce();
    EXPECT_TRUE(rcu.isReclaimed(0x1000));
    EXPECT_EQ(rcu.reclaimed(), 1u);
    EXPECT_EQ(rcu.inGrace(), 0u);
}

TEST(RcuDomain, TakeFreeMatchesSizeClassLifo)
{
    RcuDomain rcu;
    rcu.retire(0x1000, 16);
    rcu.retire(0x2000, 16);
    rcu.retire(0x3000, 32);
    rcu.quiesce();
    rcu.quiesce();
    // No block of that size: the caller must bump-allocate.
    EXPECT_EQ(rcu.takeFree(64), 0u);
    // LIFO within a size class; a taken block stops being reclaimed.
    EXPECT_EQ(rcu.takeFree(16), 0x2000u);
    EXPECT_FALSE(rcu.isReclaimed(0x2000));
    EXPECT_EQ(rcu.takeFree(16), 0x1000u);
    EXPECT_EQ(rcu.takeFree(16), 0u);
    EXPECT_EQ(rcu.takeFree(32), 0x3000u);
    EXPECT_EQ(rcu.reused(), 3u);
}

TEST(RcuDomain, EpochCounterAdvances)
{
    RcuDomain rcu;
    EXPECT_EQ(rcu.epoch(), 0u);
    rcu.quiesce();
    rcu.quiesce();
    rcu.quiesce();
    EXPECT_EQ(rcu.epoch(), 3u);
}

// ---- harness interleave --------------------------------------------

TEST(CtrlHarness, GoldenRunAppliesEvents)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.ctrl.rate = 100;
    const auto golden =
        core::runGolden(apps::appFactory("lpm"), cfg);
    EXPECT_FALSE(golden.metrics.fatal);
    EXPECT_GT(golden.metrics.ctrlEventsApplied, 0u);
    EXPECT_EQ(golden.metrics.packetsProcessed, 400u);
}

TEST(CtrlHarness, RateZeroMatchesDefaultBitForBit)
{
    core::ExperimentConfig base;
    base.numPackets = 200;
    base.trials = 2;
    core::ExperimentConfig zero = base;
    zero.ctrl.rate = 0; // explicit no-op
    const auto a = core::runExperiment(apps::appFactory("nat"), base);
    const auto b = core::runExperiment(apps::appFactory("nat"), zero);
    EXPECT_EQ(a.golden.cyclesPerPacket, b.golden.cyclesPerPacket);
    EXPECT_EQ(a.golden.instructions, b.golden.instructions);
    EXPECT_EQ(a.golden.totalEnergyPj, b.golden.totalEnergyPj);
    EXPECT_EQ(a.fallibility, b.fallibility);
    EXPECT_EQ(a.golden.ctrlEventsApplied, 0u);
}

TEST(CtrlHarness, NatChurnAppliesWithoutDivergence)
{
    // NAT add/remove churn in a *golden* run must not create
    // golden-vs-faulty divergence by itself: the same events replay in
    // every run of the experiment.
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.trials = 2;
    cfg.faultScale = 0.0; // fault-free faulty trials
    cfg.ctrl.rate = 100;
    cfg.ctrl.mix = CtrlMix::Nat;
    const auto res = core::runExperiment(apps::appFactory("nat"), cfg);
    EXPECT_GT(res.golden.ctrlEventsApplied, 0u);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalFraction, 0.0);
}

TEST(CtrlHarness, SessionFlushChurnAppliesWithoutDivergence)
{
    core::ExperimentConfig cfg;
    cfg.numPackets = 400;
    cfg.trials = 2;
    cfg.faultScale = 0.0;
    cfg.ctrl.rate = 50;
    cfg.ctrl.mix = CtrlMix::Session;
    const auto res =
        core::runExperiment(apps::appFactory("session"), cfg);
    EXPECT_GT(res.golden.ctrlEventsApplied, 0u);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalFraction, 0.0);
}

TEST(CtrlHarness, EventsIgnoredByForeignApps)
{
    // crc has no tables: every event is a no-op and the run completes
    // with zero applied events.
    core::ExperimentConfig cfg;
    cfg.numPackets = 200;
    cfg.ctrl.rate = 100;
    const auto golden =
        core::runGolden(apps::appFactory("crc"), cfg);
    EXPECT_EQ(golden.metrics.ctrlEventsApplied, 0u);
    EXPECT_EQ(golden.metrics.packetsProcessed, 200u);
}
