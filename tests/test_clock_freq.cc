/**
 * @file
 * Tests of the frequency ladder and the dynamic adaptation
 * controller's decision rules.
 */

#include <gtest/gtest.h>

#include "core/clock.hh"
#include "core/freq_controller.hh"
#include "core/processor.hh"

using namespace clumsy::core;

TEST(FrequencyLevels, PaperLadder)
{
    const FrequencyLevels levels;
    ASSERT_EQ(levels.count(), 4u);
    EXPECT_DOUBLE_EQ(levels.cr(0), 1.0);
    EXPECT_DOUBLE_EQ(levels.cr(3), 0.25);
    EXPECT_EQ(levels.indexOf(0.5), 2u);
}

TEST(FrequencyLevelsDeath, Validation)
{
    EXPECT_DEATH(FrequencyLevels(std::vector<double>{}),
                 "at least one");
    EXPECT_DEATH(FrequencyLevels({0.5, 0.75}), "decreasing");
    EXPECT_DEATH(FrequencyLevels({1.5}), "0, 1");
    EXPECT_EXIT(FrequencyLevels{}.indexOf(0.33),
                ::testing::ExitedWithCode(1), "not one of");
}

TEST(FreqController, QuietEpochsPushFaster)
{
    FreqController ctl{FreqControllerConfig{}};
    EXPECT_DOUBLE_EQ(ctl.currentCr(), 1.0);
    auto d = ctl.onEpochEnd(0); // 0 < 0.8 * stored(1)
    EXPECT_TRUE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.75);
    EXPECT_EQ(d.penaltyCycles, 10);
    d = ctl.onEpochEnd(0);
    d = ctl.onEpochEnd(0);
    EXPECT_DOUBLE_EQ(d.cr, 0.25);
    // Already at the fastest level: quiet epochs keep it there.
    d = ctl.onEpochEnd(0);
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.25);
    EXPECT_EQ(ctl.switches(), 3u);
}

TEST(FreqController, NoisyEpochBacksOff)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0); // -> 0.75, stored = 1
    const auto d = ctl.onEpochEnd(10); // 10 > 2 * 1
    EXPECT_TRUE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 1.0);
}

TEST(FreqController, CannotBackOffPastBase)
{
    FreqController ctl{FreqControllerConfig{}};
    const auto d = ctl.onEpochEnd(1000);
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 1.0);
    EXPECT_EQ(d.penaltyCycles, 0);
}

TEST(FreqController, HysteresisBandHolds)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0);              // -> 0.75, stored = 1
    const auto d = ctl.onEpochEnd(1); // 0.8 <= 1 <= 2: keep
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.75);
}

TEST(FreqController, StoredFaultsUpdateOnChange)
{
    FreqControllerConfig cfg;
    FreqController ctl{cfg};
    ctl.onEpochEnd(0);  // -> 0.75, stored = max(0,1) = 1
    ctl.onEpochEnd(50); // 50 > 2: back to 1.0, stored = 50
    // Now 60 faults is within [0.8*50, 2*50]: keep.
    const auto d = ctl.onEpochEnd(60);
    EXPECT_FALSE(d.changed);
    // And 30 < 0.8*50: increase again.
    EXPECT_TRUE(ctl.onEpochEnd(30).changed);
}

TEST(FreqController, ResidencyStats)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0);
    ctl.onEpochEnd(0);
    ctl.onEpochEnd(1);
    EXPECT_EQ(ctl.stats().get("epochs"), 3u);
    EXPECT_EQ(ctl.stats().get("residency_level0"), 1u);
    EXPECT_EQ(ctl.stats().get("residency_level1"), 1u);
    EXPECT_EQ(ctl.stats().get("residency_level2"), 1u);
}

/**
 * Regression: a switch decided by the epoch that closes exactly on
 * the 100th packet must happen *at* that packet — not one early (an
 * off-by-one in the packets_ % epochPackets test) — and must charge
 * the 10-cycle switch penalty exactly once, in that same endPacket.
 */
TEST(FreqController, EpochClosesExactlyOnHundredthPacket)
{
    ProcessorConfig cfg;
    cfg.dynamicFrequency = true;
    cfg.injectionEnabled = false; // quiet epoch: switch is guaranteed
    ClumsyProcessor proc(cfg);
    ASSERT_NE(proc.freqController(), nullptr);
    ASSERT_EQ(proc.freqController()->epochPackets(), 100u);

    // Packets 1..99: inside the first epoch, nothing may move.
    for (int p = 0; p < 99; ++p) {
        proc.beginPacket();
        proc.endPacket();
    }
    EXPECT_EQ(proc.freqController()->switches(), 0u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 1.0);
    const clumsy::Quanta before = proc.now();

    // Packet 100 closes the epoch: 0 faults < X2 * stored(1), so the
    // controller steps to Cr = 0.75 and the processor pays the switch
    // penalty. The packet itself did no work, so the *only* time that
    // may pass in this endPacket is the penalty.
    proc.beginPacket();
    proc.endPacket();
    EXPECT_EQ(proc.freqController()->switches(), 1u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.75);
    EXPECT_EQ(proc.now() - before, clumsy::cyclesToQuanta(10));

    // Packets 101..199 belong to the second epoch: no further switch
    // (and no second penalty) until packet 200.
    for (int p = 0; p < 99; ++p) {
        proc.beginPacket();
        proc.endPacket();
    }
    EXPECT_EQ(proc.freqController()->switches(), 1u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.75);
    proc.beginPacket();
    proc.endPacket();
    EXPECT_EQ(proc.freqController()->switches(), 2u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.5);
}

TEST(FreqControllerDeath, Validation)
{
    FreqControllerConfig bad;
    bad.epochPackets = 0;
    EXPECT_DEATH(FreqController{bad}, "epoch");
    FreqControllerConfig inverted;
    inverted.x1 = 0.5;
    inverted.x2 = 0.8;
    EXPECT_DEATH(FreqController{inverted}, "X1");
    FreqControllerConfig marks;
    marks.policy = FreqPolicyKind::QueueBiased;
    marks.queueLow = 0.6;
    marks.queueHigh = 0.4;
    EXPECT_DEATH(FreqController{marks}, "low < high");
}

// --- pluggable decision policies --------------------------------------

TEST(FreqPolicy, QueueBiasPrecedence)
{
    const QueueBiasedPolicy policy(2.0, 0.8, 0.05, 0.5);
    EpochObservation obs;
    obs.hasQueuePressure = true;

    // 1. The fault wall dominates any queue pressure: a noisy epoch
    //    backs off even with the input queue overflowing.
    obs.epochFaults = 30;
    obs.queuePressure = 1.0;
    EXPECT_EQ(policy.decide(obs, 10), FreqStep::SlowDown);

    // 2. Below the wall, a backed-up queue pushes toward the wall.
    obs.epochFaults = 15; // within [0.8*10, 2*10]: fault rule = Hold
    EXPECT_EQ(policy.decide(obs, 10), FreqStep::SpeedUp);

    // 3. An idle queue backs the clock off even when the fault rule
    //    alone would speed up.
    obs.epochFaults = 2; // < 0.8*10: fault rule = SpeedUp
    obs.queuePressure = 0.0;
    EXPECT_EQ(policy.decide(obs, 10), FreqStep::SlowDown);

    // 4. Between the watermarks the paper's rule decides.
    obs.queuePressure = 0.25;
    EXPECT_EQ(policy.decide(obs, 10), FreqStep::SpeedUp);
    obs.epochFaults = 15;
    EXPECT_EQ(policy.decide(obs, 10), FreqStep::Hold);
}

TEST(FreqPolicy, QueueBiasWithoutPressureReadingIsThePaperRule)
{
    const QueueBiasedPolicy biased(2.0, 0.8, 0.05, 0.5);
    const FaultFeedbackPolicy paper(2.0, 0.8);
    EpochObservation obs; // hasQueuePressure = false
    for (const std::uint64_t faults : {0ull, 5ull, 10ull, 50ull}) {
        obs.epochFaults = faults;
        EXPECT_EQ(biased.decide(obs, 10), paper.decide(obs, 10))
            << faults << " faults";
    }
}

TEST(FreqController, QueueBiasedEpochsMoveTheLadderBothWays)
{
    FreqControllerConfig cfg;
    cfg.policy = FreqPolicyKind::QueueBiased;
    cfg.startLevel = 2; // launch at Cr = 0.5
    FreqController ctl{cfg};
    EXPECT_DOUBLE_EQ(ctl.currentCr(), 0.5);

    EpochObservation busy;
    busy.hasQueuePressure = true;
    busy.queuePressure = 0.9;
    auto d = ctl.onEpochEnd(busy);
    EXPECT_TRUE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.25); // sped up toward the fault wall
    EXPECT_EQ(ctl.clockUps(), 1u);

    EpochObservation idle;
    idle.hasQueuePressure = true;
    idle.queuePressure = 0.0;
    d = ctl.onEpochEnd(idle);
    d = ctl.onEpochEnd(idle);
    d = ctl.onEpochEnd(idle);
    EXPECT_DOUBLE_EQ(d.cr, 1.0); // backed all the way off
    EXPECT_EQ(ctl.clockDowns(), 3u);
    EXPECT_EQ(ctl.epochs(), 4u);
    // Residency-weighted mean over end-of-epoch levels:
    // (0.25 + 0.5 + 0.75 + 1.0) / 4.
    EXPECT_DOUBLE_EQ(ctl.meanCr(), 0.625);
}

/**
 * externalEpochs hands the epoch cadence to the chip: the processor's
 * own packet counter must never close an epoch, and closeDvsEpoch()
 * must close exactly one, fed with the caller's queue pressure.
 */
TEST(FreqController, ExternalEpochsAreDrivenByTheHookAlone)
{
    ProcessorConfig cfg;
    cfg.dynamicFrequency = true;
    cfg.injectionEnabled = false;
    cfg.freqCtl.policy = FreqPolicyKind::QueueBiased;
    cfg.freqCtl.externalEpochs = true;
    cfg.freqCtl.startLevel = 2; // Cr = 0.5
    ClumsyProcessor proc(cfg);
    ASSERT_NE(proc.freqController(), nullptr);

    // 250 packets, no hook: zero epochs despite crossing the 100- and
    // 200-packet marks that would close internal epochs.
    for (int p = 0; p < 250; ++p) {
        proc.beginPacket();
        proc.endPacket();
    }
    EXPECT_EQ(proc.freqController()->epochs(), 0u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.5);

    // The chip hook closes one epoch; idle pressure backs off one
    // level and charges the switch penalty.
    const clumsy::Quanta before = proc.now();
    proc.closeDvsEpoch(0.0);
    EXPECT_EQ(proc.freqController()->epochs(), 1u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.75);
    EXPECT_EQ(proc.now() - before, clumsy::cyclesToQuanta(10));

    // A backed-up queue pushes the other way.
    proc.closeDvsEpoch(1.0);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.5);
    EXPECT_EQ(proc.freqController()->clockUps(), 1u);
    EXPECT_EQ(proc.freqController()->clockDowns(), 1u);
}
