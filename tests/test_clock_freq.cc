/**
 * @file
 * Tests of the frequency ladder and the dynamic adaptation
 * controller's decision rules.
 */

#include <gtest/gtest.h>

#include "core/clock.hh"
#include "core/freq_controller.hh"
#include "core/processor.hh"

using namespace clumsy::core;

TEST(FrequencyLevels, PaperLadder)
{
    const FrequencyLevels levels;
    ASSERT_EQ(levels.count(), 4u);
    EXPECT_DOUBLE_EQ(levels.cr(0), 1.0);
    EXPECT_DOUBLE_EQ(levels.cr(3), 0.25);
    EXPECT_EQ(levels.indexOf(0.5), 2u);
}

TEST(FrequencyLevelsDeath, Validation)
{
    EXPECT_DEATH(FrequencyLevels(std::vector<double>{}),
                 "at least one");
    EXPECT_DEATH(FrequencyLevels({0.5, 0.75}), "decreasing");
    EXPECT_DEATH(FrequencyLevels({1.5}), "0, 1");
    EXPECT_EXIT(FrequencyLevels{}.indexOf(0.33),
                ::testing::ExitedWithCode(1), "not one of");
}

TEST(FreqController, QuietEpochsPushFaster)
{
    FreqController ctl{FreqControllerConfig{}};
    EXPECT_DOUBLE_EQ(ctl.currentCr(), 1.0);
    auto d = ctl.onEpochEnd(0); // 0 < 0.8 * stored(1)
    EXPECT_TRUE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.75);
    EXPECT_EQ(d.penaltyCycles, 10);
    d = ctl.onEpochEnd(0);
    d = ctl.onEpochEnd(0);
    EXPECT_DOUBLE_EQ(d.cr, 0.25);
    // Already at the fastest level: quiet epochs keep it there.
    d = ctl.onEpochEnd(0);
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.25);
    EXPECT_EQ(ctl.switches(), 3u);
}

TEST(FreqController, NoisyEpochBacksOff)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0); // -> 0.75, stored = 1
    const auto d = ctl.onEpochEnd(10); // 10 > 2 * 1
    EXPECT_TRUE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 1.0);
}

TEST(FreqController, CannotBackOffPastBase)
{
    FreqController ctl{FreqControllerConfig{}};
    const auto d = ctl.onEpochEnd(1000);
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 1.0);
    EXPECT_EQ(d.penaltyCycles, 0);
}

TEST(FreqController, HysteresisBandHolds)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0);              // -> 0.75, stored = 1
    const auto d = ctl.onEpochEnd(1); // 0.8 <= 1 <= 2: keep
    EXPECT_FALSE(d.changed);
    EXPECT_DOUBLE_EQ(d.cr, 0.75);
}

TEST(FreqController, StoredFaultsUpdateOnChange)
{
    FreqControllerConfig cfg;
    FreqController ctl{cfg};
    ctl.onEpochEnd(0);  // -> 0.75, stored = max(0,1) = 1
    ctl.onEpochEnd(50); // 50 > 2: back to 1.0, stored = 50
    // Now 60 faults is within [0.8*50, 2*50]: keep.
    const auto d = ctl.onEpochEnd(60);
    EXPECT_FALSE(d.changed);
    // And 30 < 0.8*50: increase again.
    EXPECT_TRUE(ctl.onEpochEnd(30).changed);
}

TEST(FreqController, ResidencyStats)
{
    FreqController ctl{FreqControllerConfig{}};
    ctl.onEpochEnd(0);
    ctl.onEpochEnd(0);
    ctl.onEpochEnd(1);
    EXPECT_EQ(ctl.stats().get("epochs"), 3u);
    EXPECT_EQ(ctl.stats().get("residency_level0"), 1u);
    EXPECT_EQ(ctl.stats().get("residency_level1"), 1u);
    EXPECT_EQ(ctl.stats().get("residency_level2"), 1u);
}

/**
 * Regression: a switch decided by the epoch that closes exactly on
 * the 100th packet must happen *at* that packet — not one early (an
 * off-by-one in the packets_ % epochPackets test) — and must charge
 * the 10-cycle switch penalty exactly once, in that same endPacket.
 */
TEST(FreqController, EpochClosesExactlyOnHundredthPacket)
{
    ProcessorConfig cfg;
    cfg.dynamicFrequency = true;
    cfg.injectionEnabled = false; // quiet epoch: switch is guaranteed
    ClumsyProcessor proc(cfg);
    ASSERT_NE(proc.freqController(), nullptr);
    ASSERT_EQ(proc.freqController()->epochPackets(), 100u);

    // Packets 1..99: inside the first epoch, nothing may move.
    for (int p = 0; p < 99; ++p) {
        proc.beginPacket();
        proc.endPacket();
    }
    EXPECT_EQ(proc.freqController()->switches(), 0u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 1.0);
    const clumsy::Quanta before = proc.now();

    // Packet 100 closes the epoch: 0 faults < X2 * stored(1), so the
    // controller steps to Cr = 0.75 and the processor pays the switch
    // penalty. The packet itself did no work, so the *only* time that
    // may pass in this endPacket is the penalty.
    proc.beginPacket();
    proc.endPacket();
    EXPECT_EQ(proc.freqController()->switches(), 1u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.75);
    EXPECT_EQ(proc.now() - before, clumsy::cyclesToQuanta(10));

    // Packets 101..199 belong to the second epoch: no further switch
    // (and no second penalty) until packet 200.
    for (int p = 0; p < 99; ++p) {
        proc.beginPacket();
        proc.endPacket();
    }
    EXPECT_EQ(proc.freqController()->switches(), 1u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.75);
    proc.beginPacket();
    proc.endPacket();
    EXPECT_EQ(proc.freqController()->switches(), 2u);
    EXPECT_DOUBLE_EQ(proc.currentCr(), 0.5);
}

TEST(FreqControllerDeath, Validation)
{
    FreqControllerConfig bad;
    bad.epochPackets = 0;
    EXPECT_DEATH(FreqController{bad}, "epoch");
    FreqControllerConfig inverted;
    inverted.x1 = 0.5;
    inverted.x2 = 0.8;
    EXPECT_DEATH(FreqController{inverted}, "X1");
}
