/**
 * @file
 * Property tests of the F14-style flat hash table against
 * std::unordered_map — the host-side mirror container must behave
 * exactly like the node-based map it replaced, including under
 * erase-heavy churn where tombstone handling can silently break probe
 * chains.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "common/f14_table.hh"

using namespace clumsy;

namespace
{

using Map = F14Table<std::uint32_t, std::uint32_t>;
using Ref = std::unordered_map<std::uint32_t, std::uint32_t>;

/** Assert the table and the reference agree on every reference key
 *  plus a probe set of absent keys. */
void
expectEquivalent(const Map &map, const Ref &ref,
                 const std::vector<std::uint32_t> &absentProbes)
{
    ASSERT_EQ(map.size(), ref.size());
    for (const auto &[k, v] : ref) {
        const std::uint32_t *found = map.find(k);
        ASSERT_NE(found, nullptr) << "key " << k << " lost";
        EXPECT_EQ(*found, v) << "key " << k;
    }
    for (const std::uint32_t k : absentProbes) {
        if (ref.count(k) == 0)
            EXPECT_EQ(map.find(k), nullptr) << "ghost key " << k;
    }
}

} // namespace

TEST(F14Table, EmplaceFindBasics)
{
    Map map;
    EXPECT_TRUE(map.empty());
    EXPECT_TRUE(map.emplace(7, 70));
    EXPECT_FALSE(map.emplace(7, 71)); // present: value kept
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70u);
    map.insertOrAssign(7, 72);
    EXPECT_EQ(*map.find(7), 72u);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.contains(8));
    EXPECT_TRUE(map.erase(7));
    EXPECT_FALSE(map.erase(7));
    EXPECT_TRUE(map.empty());
}

TEST(F14Table, GrowthKeepsEveryKey)
{
    Map map;
    Ref ref;
    for (std::uint32_t i = 0; i < 10000; ++i) {
        const std::uint32_t k = i * 2654435761u; // spread the keys
        EXPECT_TRUE(map.emplace(k, i));
        ref.emplace(k, i);
    }
    expectEquivalent(map, ref, {1, 2, 3});
    EXPECT_GE(map.capacity() * 7, map.size() * 8); // load invariant
}

TEST(F14Table, RandomOpsMatchUnorderedMap)
{
    // Narrow key space so chunks collide, fill and tombstone: the
    // interesting probe chains only form under collision pressure.
    std::mt19937_64 rng(0xf14f14u);
    Map map;
    Ref ref;
    std::vector<std::uint32_t> probes;
    for (std::uint32_t k = 0; k < 512; ++k)
        probes.push_back(k);
    for (unsigned op = 0; op < 40000; ++op) {
        const std::uint32_t k =
            static_cast<std::uint32_t>(rng() % 512);
        const std::uint32_t v = static_cast<std::uint32_t>(rng());
        switch (rng() % 4) {
        case 0:
            EXPECT_EQ(map.emplace(k, v), ref.emplace(k, v).second);
            break;
        case 1:
            map.insertOrAssign(k, v);
            ref[k] = v;
            break;
        case 2:
            EXPECT_EQ(map.erase(k), ref.erase(k) != 0);
            break;
        default: {
            const std::uint32_t *found = map.find(k);
            const auto it = ref.find(k);
            ASSERT_EQ(found != nullptr, it != ref.end());
            if (found != nullptr)
                EXPECT_EQ(*found, it->second);
            break;
        }
        }
        if (op % 4096 == 0)
            expectEquivalent(map, ref, probes);
    }
    expectEquivalent(map, ref, probes);
}

TEST(F14Table, TombstoneChurnStaysBounded)
{
    // Insert/erase the same working set repeatedly: tombstone
    // accumulation must trigger in-place rehash, not unbounded probe
    // chains or capacity growth.
    Map map;
    for (unsigned round = 0; round < 200; ++round) {
        for (std::uint32_t k = 0; k < 100; ++k)
            EXPECT_TRUE(map.emplace(k, k + round));
        for (std::uint32_t k = 0; k < 100; ++k)
            EXPECT_TRUE(map.erase(k));
    }
    EXPECT_TRUE(map.empty());
    // 100 live entries fit comfortably in a few chunks; churn must
    // not have ratcheted capacity past the load-factor requirement.
    EXPECT_LE(map.capacity(), 512u);
    for (std::uint32_t k = 0; k < 100; ++k)
        EXPECT_FALSE(map.contains(k));
}

TEST(F14Table, EraseKeepsColliderReachable)
{
    // Force >16 keys into one chunk's probe chain by filling a small
    // table, then erase early keys and verify later ones still probe
    // through (the tombstone-vs-empty distinction).
    Map map;
    std::vector<std::uint32_t> keys;
    for (std::uint32_t k = 0; keys.size() < 60; ++k) {
        map.emplace(k, k * 3);
        keys.push_back(k);
    }
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(map.erase(keys[i]));
    for (std::size_t i = 1; i < keys.size(); i += 2) {
        ASSERT_TRUE(map.contains(keys[i])) << "key " << keys[i];
        EXPECT_EQ(*map.find(keys[i]), keys[i] * 3);
    }
    // Reinsert the erased half over the tombstones.
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(map.emplace(keys[i], keys[i] * 5));
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(*map.find(keys[i]),
                  keys[i] * (i % 2 == 0 ? 5 : 3));
}

TEST(F14Table, ClearKeepsCapacityDropsEntries)
{
    Map map;
    for (std::uint32_t k = 0; k < 1000; ++k)
        map.emplace(k, k);
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    for (std::uint32_t k = 0; k < 1000; ++k)
        EXPECT_FALSE(map.contains(k));
    EXPECT_TRUE(map.emplace(5, 50));
    EXPECT_EQ(*map.find(5), 50u);
}
