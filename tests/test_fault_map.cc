/**
 * @file
 * Statistical and format validation of the spatially correlated
 * fault-map plane (src/fault/fault_map.hh).
 *
 * The statistical layer checks the *distributional* claims the map
 * generator makes — row clustering against a uniform null, per-way
 * strength variation within the lognormal clamp, determinism under a
 * fixed seed, and decorrelation from the packet-fault RNG — not just
 * point values. All draws are seeded, so every assertion is exact and
 * repeatable.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "fault/fault_map.hh"
#include "fault/injector.hh"

using namespace clumsy;
using namespace clumsy::fault;

namespace
{

/** A 4-set single-way toy geometry: 32 word slots. */
FaultMapGeometry
toyGeometry()
{
    return FaultMapGeometry{4, 1, 32};
}

/** A map holding exactly the given cells over the toy geometry. */
FaultMap
toyMap(std::vector<WeakCell> cells)
{
    return FaultMap(toyGeometry(), 0, std::move(cells));
}

/** Uniform-null generation: no clusters, background only. */
FaultMapParams
uniformNullParams(double background)
{
    FaultMapParams params;
    params.clustersPerArray = 0.0;
    params.cellsPerCluster = 0.0;
    params.backgroundPerArray = background;
    params.waySigma = 0.0;
    return params;
}

} // namespace

// ---------------------------------------------------------------------
// Statistical layer
// ---------------------------------------------------------------------

TEST(FaultMapStats, ClusteredMapsAreOverdispersed)
{
    // Row clustering is the map's defining spatial property: the
    // index of dispersion (variance/mean of per-row counts) of a
    // clustered population must sit far above the Poisson value of 1.
    const FaultMapGeometry geom{256, 4, 32};
    FaultMapParams params; // defaults: 6 clusters of ~24 cells
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        const FaultMap map = FaultMap::generate(geom, params, seed);
        EXPECT_GT(map.dispersionIndex(), 1.8)
            << "seed " << seed << " produced a near-uniform map";
    }
}

TEST(FaultMapStats, UniformNullDispersionNearOne)
{
    // With clustering off, the generator degenerates to i.i.d.
    // background cells and the dispersion index must stay near 1 —
    // the variance-ratio test that separates the two regimes.
    const FaultMapGeometry geom{256, 4, 32};
    const FaultMapParams params = uniformNullParams(600.0);
    for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
        const FaultMap map = FaultMap::generate(geom, params, seed);
        EXPECT_GT(map.dispersionIndex(), 0.6) << "seed " << seed;
        EXPECT_LT(map.dispersionIndex(), 1.45) << "seed " << seed;
    }
}

TEST(FaultMapStats, PerWayVariationWithinLognormalClamp)
{
    // Each way's strength factor is exp(g * waySigma) with g clamped
    // to [-2, 2]. A strong way both attracts more clusters (placement
    // is factor-weighted) and grows bigger ones (size scales with the
    // factor), so realized per-way counts spread as the factor
    // *squared*: the ratio across ways is bounded by exp(8 * waySigma).
    // Large cluster counts keep Poisson noise small next to that; 2x
    // slack covers the rest.
    const FaultMapGeometry geom{256, 4, 32};
    FaultMapParams params;
    params.clustersPerArray = 200.0;
    params.cellsPerCluster = 50.0;
    params.backgroundPerArray = 100.0;
    params.waySigma = 0.5;
    const double bound = std::exp(8.0 * params.waySigma) * 2.0;
    for (const std::uint64_t seed : {21u, 22u, 23u}) {
        const FaultMap map = FaultMap::generate(geom, params, seed);
        const auto perWay = map.perWayCounts();
        ASSERT_EQ(perWay.size(), 4u);
        std::uint32_t lo = perWay[0], hi = perWay[0];
        for (const std::uint32_t c : perWay) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
        ASSERT_GT(lo, 0u) << "seed " << seed;
        EXPECT_LT(static_cast<double>(hi) / lo, bound)
            << "seed " << seed;
    }
}

TEST(FaultMapStats, WaySigmaWidensTheSpread)
{
    // Variance-ratio check of the strength-variation knob itself:
    // aggregated over seeds, the spread of per-way counts must grow
    // with waySigma.
    const FaultMapGeometry geom{256, 4, 32};
    FaultMapParams tight;
    tight.clustersPerArray = 40.0;
    tight.cellsPerCluster = 50.0;
    tight.waySigma = 0.0;
    FaultMapParams loose = tight;
    loose.waySigma = 1.0;
    double tightSpread = 0.0, looseSpread = 0.0;
    for (std::uint64_t seed = 31; seed < 51; ++seed) {
        for (const bool wide : {false, true}) {
            const FaultMap map = FaultMap::generate(
                geom, wide ? loose : tight, seed);
            const auto perWay = map.perWayCounts();
            std::uint32_t lo = perWay[0], hi = perWay[0];
            for (const std::uint32_t c : perWay) {
                lo = std::min(lo, c);
                hi = std::max(hi, c);
            }
            const double spread =
                std::log(static_cast<double>(hi) / std::max(lo, 1u));
            (wide ? looseSpread : tightSpread) += spread;
        }
    }
    EXPECT_GT(looseSpread, tightSpread * 1.5);
}

TEST(FaultMapStats, GenerationIsDeterministic)
{
    const FaultMapGeometry geom{128, 2, 32};
    const FaultMapParams params;
    const FaultMap a = FaultMap::generate(geom, params, 0xfa17);
    const FaultMap b = FaultMap::generate(geom, params, 0xfa17);
    EXPECT_EQ(a.toText(), b.toText());
    const FaultMap c = FaultMap::generate(geom, params, 0xfa18);
    EXPECT_NE(a.toText(), c.toText());
}

TEST(FaultMapStats, ActivationSharpensAsVoltageDrops)
{
    const FaultMapGeometry geom{256, 4, 32};
    const FaultMap map = FaultMap::generate(geom, FaultMapParams{}, 7);
    ASSERT_GT(map.cells().size(), 0u);
    // Monotone: lowering Cr can only wake cells, never silence them.
    EXPECT_LE(map.activeCellCount(1.0), map.activeCellCount(0.75));
    EXPECT_LE(map.activeCellCount(0.75), map.activeCellCount(0.5));
    EXPECT_LE(map.activeCellCount(0.5), map.activeCellCount(0.25));
    // And sharp: with vth ~ N(0.55, 0.15) most cells sleep at full
    // voltage and most are awake at quarter cycle time.
    EXPECT_LT(map.activeCellCount(1.0), map.cells().size() / 4);
    EXPECT_GT(map.activeCellCount(0.25),
              map.cells().size() * 3 / 4);
}

TEST(FaultMapStats, MappedInjectionIsDeterministicBySeed)
{
    const FaultMap map =
        FaultMap::generate(FaultMapGeometry{4, 1, 32},
                           FaultMapParams{}, 3);
    FaultInjector a{FaultModel(FaultModelParams{}), 42};
    FaultInjector b{FaultModel(FaultModelParams{}), 42};
    a.attachMap(&map);
    b.attachMap(&map);
    a.setCycleTime(0.25);
    b.setCycleTime(0.25);
    for (std::uint32_t i = 0; i < 20000; ++i)
        EXPECT_EQ(a.corruptMapped(i, 32, i % 32),
                  b.corruptMapped(i, 32, i % 32));
    EXPECT_EQ(a.faultCount(), b.faultCount());
}

TEST(FaultMapStats, InertSlotsConsumeNoRandomness)
{
    // Decorrelation from the packet-fault RNG: accesses that touch no
    // active weak cell must not advance the injector's RNG, so the
    // uniform fault stream after a burst of clean mapped accesses is
    // byte-identical to one that never saw them.
    const FaultMap empty = toyMap({});
    FaultModelParams boost;
    boost.scale = 1e5;
    FaultInjector walked{FaultModel(boost), 9};
    FaultInjector fresh{FaultModel(boost), 9};
    walked.attachMap(&empty);
    walked.setCycleTime(0.25);
    fresh.setCycleTime(0.25);
    for (std::uint32_t i = 0; i < 5000; ++i)
        EXPECT_EQ(walked.corruptMapped(i, 32, i % 32), i)
            << "empty map corrupted a value";
    for (std::uint32_t i = 0; i < 5000; ++i)
        EXPECT_EQ(walked.corrupt(i, 32), fresh.corrupt(i, 32))
            << "mapped accesses perturbed the uniform stream";
}

TEST(FaultMapStats, MappedRateGrowsWithOverclock)
{
    // One always-weak cell with vth = 0.5, pFail = 0.1: inert at full
    // voltage, failing at ~pFail at its threshold, and boosted by the
    // eq. (4) factor ratio below it.
    const WeakCell cell{0, 0, 3, 0.5, 0.1};
    const FaultMap map = toyMap({cell});
    const auto faultsAt = [&map](double cr) {
        FaultInjector inj{FaultModel(FaultModelParams{}), 11};
        inj.attachMap(&map);
        inj.setCycleTime(cr);
        for (int i = 0; i < 20000; ++i)
            inj.corruptMapped(0, 32, 0);
        return inj.faultCount();
    };
    EXPECT_EQ(faultsAt(1.0), 0u);
    const std::uint64_t atVth = faultsAt(0.5);
    const std::uint64_t below = faultsAt(0.25);
    // ~0.1 * 20000 at threshold; ~6x that at quarter cycle time.
    EXPECT_NEAR(static_cast<double>(atVth), 2000.0, 400.0);
    EXPECT_GT(below, atVth * 4);
    // Mapped faults land in the dedicated stats bucket.
    FaultInjector inj{FaultModel(FaultModelParams{}), 11};
    inj.attachMap(&map);
    inj.setCycleTime(0.25);
    for (int i = 0; i < 1000; ++i)
        inj.corruptMapped(0, 32, 0);
    EXPECT_EQ(inj.stats().get("mapped"), inj.faultCount());
}

TEST(FaultMapStats, MappedFlipsStayInsideTheWeakCell)
{
    // A single weak cell at bit 7 of word 0 can only ever flip that
    // bit, however long the run.
    const WeakCell cell{2, 0, 7, 1.0, 1.0};
    const FaultMap map = toyMap({cell});
    FaultInjector inj{FaultModel(FaultModelParams{}), 13};
    inj.attachMap(&map);
    inj.setCycleTime(0.25);
    const std::uint32_t slot = 2 * 8; // set 2, word 0
    for (int i = 0; i < 100; ++i) {
        FaultEvent ev;
        const std::uint32_t out = inj.corruptMapped(0, 32, slot, &ev);
        EXPECT_EQ(out, 1u << 7);
        EXPECT_EQ(ev.mask, 1u << 7);
    }
    // Other slots of the same set stay clean.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(inj.corruptMapped(0, 32, slot + 1), 0u);
}

// ---------------------------------------------------------------------
// Spec parsing and per-PE salting
// ---------------------------------------------------------------------

TEST(FaultMapSpecTest, ParsesAxisValues)
{
    EXPECT_EQ(faultMapSpecFromString("off").mode, FaultMapMode::Off);
    EXPECT_EQ(faultMapSpecFromString("spatial").mode,
              FaultMapMode::Generated);
    const FaultMapSpec file = faultMapSpecFromString("maps/a.map");
    EXPECT_EQ(file.mode, FaultMapMode::File);
    EXPECT_EQ(file.path, "maps/a.map");
    EXPECT_FALSE(faultMapSpecFromString("off").enabled());
    EXPECT_TRUE(faultMapSpecFromString("spatial").enabled());
}

TEST(FaultMapSpecTest, PerPeSaltChangesTheSeed)
{
    FaultMapSpec spec;
    spec.mode = FaultMapMode::Generated;
    const std::uint64_t base = spec.effectiveSeed();
    spec.peSalt = 1;
    EXPECT_NE(spec.effectiveSeed(), base);
    // Engine 0 is unsalted so a 1-PE chip generates the same silicon
    // as the single-core harness.
    spec.peSalt = 0;
    EXPECT_EQ(spec.effectiveSeed(), base);
    EXPECT_EQ(spec.effectiveSeed(), spec.seed);
}

// ---------------------------------------------------------------------
// Text format: round trip and rejection
// ---------------------------------------------------------------------

TEST(FaultMapFormat, ExportImportExportIsByteIdentical)
{
    const FaultMap map = FaultMap::generate(
        FaultMapGeometry{128, 4, 32}, FaultMapParams{}, 17);
    const std::string text = map.toText();
    FaultMap back;
    ASSERT_EQ(FaultMap::parseText(text, back), "");
    EXPECT_EQ(back.toText(), text);
    EXPECT_EQ(back.seed(), map.seed());
    ASSERT_EQ(back.cells().size(), map.cells().size());
    for (std::size_t i = 0; i < map.cells().size(); ++i) {
        EXPECT_EQ(back.cells()[i].set, map.cells()[i].set);
        EXPECT_EQ(back.cells()[i].bit, map.cells()[i].bit);
        EXPECT_EQ(back.cells()[i].vth, map.cells()[i].vth);
        EXPECT_EQ(back.cells()[i].pFail, map.cells()[i].pFail);
    }
}

TEST(FaultMapFormat, EmptyMapRoundTrips)
{
    const FaultMap map = toyMap({});
    FaultMap back;
    ASSERT_EQ(FaultMap::parseText(map.toText(), back), "");
    EXPECT_EQ(back.toText(), map.toText());
    EXPECT_TRUE(back.cells().empty());
}

TEST(FaultMapFormat, RejectsMalformedInput)
{
    const std::string good = toyMap({WeakCell{1, 0, 5, 0.5, 0.01}})
                                 .toText();
    FaultMap out;
    ASSERT_EQ(FaultMap::parseText(good, out), "");

    const auto rejects = [&out](const std::string &text) {
        return !FaultMap::parseText(text, out).empty();
    };
    // Header and version.
    EXPECT_TRUE(rejects(""));
    EXPECT_TRUE(rejects("bogus v1\n"));
    EXPECT_TRUE(rejects("clumsy-faultmap v2\n"));
    // Structural lines missing or malformed.
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"));
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=banana ways=1 line-bytes=32\n"
                        "seed 0\ncells 0\nend\n"));
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 0\n")); // no end
    // Cell-count mismatch, both directions.
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\nend\n"));
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 0\n"
                        "cell 0 0 0 0.5 0.01\nend\n"));
    // Out-of-range coordinates and strengths.
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 4 0 0 0.5 0.01\nend\n")); // set >= sets
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 0 1 0 0.5 0.01\nend\n")); // way >= ways
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 0 0 256 0.5 0.01\nend\n")); // bit too big
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 0 0 0 1.5 0.01\nend\n")); // vth > 1
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 0 0 0 0.5 0\nend\n")); // pFail = 0
    // Ordering violations.
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 2\n"
                        "cell 1 0 0 0.5 0.01\n"
                        "cell 0 0 0 0.5 0.01\nend\n")); // unsorted
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 2\n"
                        "cell 0 0 0 0.5 0.01\n"
                        "cell 0 0 0 0.5 0.02\nend\n")); // duplicate
    // Trailing junk.
    EXPECT_TRUE(rejects(good + "extra\n"));
    EXPECT_TRUE(rejects("clumsy-faultmap v1\n"
                        "geometry sets=4 ways=1 line-bytes=32\n"
                        "seed 0\ncells 1\n"
                        "cell 1 0 5 0.5 0.01 junk\nend\n"));
    // Failures must leave the output untouched.
    FaultMap untouched;
    ASSERT_EQ(FaultMap::parseText(good, untouched), "");
    const std::string before = untouched.toText();
    EXPECT_FALSE(FaultMap::parseText("bogus\n", untouched).empty());
    EXPECT_EQ(untouched.toText(), before);
}

// ---------------------------------------------------------------------
// System-level regression: the map plane never touches golden runs or
// off-mode configurations.
// ---------------------------------------------------------------------

TEST(FaultMapRegression, GoldenRunsAreMapInvariantOnEveryWorkload)
{
    // Golden runs disable injection, so the attached map — whatever
    // its mode or seed — must not move a single modeled number or
    // recorded value on any of the 10 workloads. This is the
    // system-level decorrelation guarantee: map generation draws from
    // its own RNG, never the trace or packet streams.
    std::vector<std::string> names = apps::allAppNames();
    for (const std::string &n : apps::extensionAppNames())
        names.push_back(n);
    ASSERT_EQ(names.size(), 10u);
    for (const std::string &app : names) {
        SCOPED_TRACE(app);
        core::ExperimentConfig off;
        off.numPackets = 120;
        core::ExperimentConfig mapped = off;
        mapped.processor.faultMap = faultMapSpecFromString("spatial");
        core::ExperimentConfig reseeded = mapped;
        reseeded.processor.faultMap.seed = 0xdead;

        const core::GoldenRecord a =
            core::runGolden(apps::appFactory(app), off);
        const core::GoldenRecord b =
            core::runGolden(apps::appFactory(app), mapped);
        const core::GoldenRecord c =
            core::runGolden(apps::appFactory(app), reseeded);
        EXPECT_EQ(a.recorder.digest(), b.recorder.digest());
        EXPECT_EQ(a.recorder.digest(), c.recorder.digest());
        EXPECT_EQ(a.metrics.cyclesPerPacket, b.metrics.cyclesPerPacket);
        EXPECT_EQ(a.metrics.totalEnergyPj, b.metrics.totalEnergyPj);
        EXPECT_EQ(a.metrics.dcacheAccesses, c.metrics.dcacheAccesses);
    }
}

TEST(FaultMapRegression, OffModeIgnoresMapSeedAndZeroRetire)
{
    // The inert settings — mode off, any map seed, retire 0 — must be
    // byte-equivalent to a default config in the faulty arm too.
    core::ExperimentConfig base;
    base.numPackets = 150;
    base.cr = 0.45;
    base.faultScale = 50.0;
    base.scheme = mem::RecoveryScheme::TwoStrike;
    core::ExperimentConfig spelled = base;
    spelled.processor.faultMap = faultMapSpecFromString("off");
    spelled.processor.faultMap.seed = 0x1234;
    spelled.processor.hierarchy.wayDisable.retireThreshold = 0;

    const core::AppFactory factory = apps::appFactory("route");
    const core::GoldenRecord golden = core::runGolden(factory, base);
    const core::RunMetrics a =
        core::runFaultyTrial(factory, base, 0, golden);
    const core::RunMetrics b =
        core::runFaultyTrial(factory, spelled, 0, golden);
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.cyclesPerPacket, b.cyclesPerPacket);
    EXPECT_EQ(a.totalEnergyPj, b.totalEnergyPj);
    EXPECT_EQ(a.packetsWithError, b.packetsWithError);
    EXPECT_EQ(a.errorsByType, b.errorsByType);
}

TEST(FaultMapFormat, LoadFileReportsMissingFile)
{
    FaultMap out;
    const std::string err =
        FaultMap::loadFile("/nonexistent/clumsy.map", out);
    EXPECT_FALSE(err.empty());
}
