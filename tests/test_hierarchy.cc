/**
 * @file
 * Tests of the three-level memory hierarchy: data/latency behavior,
 * write-back propagation, fault detection and strike recovery, DMA
 * flush semantics and hardware-like wild/unaligned access handling.
 */

#include <gtest/gtest.h>

#include "energy/chip_energy.hh"
#include "fault/injector.hh"
#include "mem/hierarchy.hh"

using namespace clumsy;
using namespace clumsy::mem;

namespace
{

struct Rig
{
    HierarchyConfig config;
    BackingStore store{1u << 20};
    fault::FaultInjector injector;
    energy::EnergyModel model;
    energy::EnergyAccount account;
    MemHierarchy hier;

    explicit Rig(HierarchyConfig cfg = {}, double faultScale = 0.0,
                 std::uint64_t seed = 1)
        : config(cfg),
          injector(fault::FaultModel(
                       [faultScale] {
                           fault::FaultModelParams p;
                           p.scale = faultScale;
                           return p;
                       }()),
                   seed),
          model(energy::EnergyParams{}, cfg.l1d, cfg.l1i, cfg.l2),
          account(&model),
          hier(config, &store, &injector, &account)
    {
    }
};

} // namespace

TEST(Hierarchy, ReadAfterWrite)
{
    Rig rig;
    rig.hier.write(0x1000, 4, 0xcafef00d);
    EXPECT_EQ(rig.hier.read(0x1000, 4).value, 0xcafef00du);
}

TEST(Hierarchy, SubWordAccesses)
{
    Rig rig;
    rig.hier.write(0x2000, 4, 0x11223344);
    rig.hier.write(0x2001, 1, 0xaa);
    EXPECT_EQ(rig.hier.read(0x2000, 4).value, 0x1122aa44u);
    EXPECT_EQ(rig.hier.read(0x2000, 2).value, 0xaa44u);
    EXPECT_EQ(rig.hier.read(0x2003, 1).value, 0x11u);
    rig.hier.write(0x2002, 2, 0xbeef);
    EXPECT_EQ(rig.hier.read(0x2000, 4).value, 0xbeefaa44u);
}

TEST(Hierarchy, LatencyLadder)
{
    Rig rig;
    // Cold read: L1 miss -> L2 miss -> DRAM.
    const auto cold = rig.hier.read(0x3000, 4);
    EXPECT_EQ(cold.latency,
              cyclesToQuanta(2 + 15 + 60));
    // Hot read: pure L1 hit at Cr = 1 -> 2 cycles.
    const auto hot = rig.hier.read(0x3000, 4);
    EXPECT_EQ(hot.latency, cyclesToQuanta(2));
    // Neighbor L1 line within the same (now-resident) L2 line.
    const auto warm = rig.hier.read(0x3020, 4);
    EXPECT_EQ(warm.latency, cyclesToQuanta(2 + 15));
}

TEST(Hierarchy, OverClockingShortensL1HitsDownToTheFloor)
{
    Rig rig;
    rig.hier.read(0x3000, 4);
    rig.hier.setCycleTime(0.75);
    EXPECT_EQ(rig.hier.read(0x3000, 4).latency, 18);
    rig.hier.setCycleTime(0.5);
    EXPECT_EQ(rig.hier.read(0x3000, 4).latency, cyclesToQuanta(1));
    // Load-use floor: the core cannot consume data faster than one
    // of its own cycles, so 0.25 is no faster than 0.5.
    rig.hier.setCycleTime(0.25);
    EXPECT_EQ(rig.hier.read(0x3000, 4).latency, cyclesToQuanta(1));
}

TEST(Hierarchy, WritebackReachesDramUnderPressure)
{
    Rig rig;
    rig.hier.write(0x4000, 4, 0x5555aaaa);
    // Evict through both levels by touching conflicting lines: L1 is
    // 4 KB direct-mapped, L2 is 128 KB 4-way; stride 128 KB aliases
    // both.
    for (SimAddr a = 0; a < 6u * (128u << 10); a += 128u << 10)
        rig.hier.read(0x4000 + (128u << 10) + a, 4);
    EXPECT_EQ(rig.store.read32(0x4000), 0x5555aaaau);
}

TEST(Hierarchy, PeekSeesNewestCopy)
{
    Rig rig;
    rig.hier.write(0x5000, 4, 0x01020304);
    EXPECT_EQ(rig.hier.peekWord(0x5000), 0x01020304u);
    // Peek does not disturb stats.
    const auto reads = rig.hier.stats().get("reads");
    rig.hier.peekWord(0x5000);
    EXPECT_EQ(rig.hier.stats().get("reads"), reads);
}

TEST(Hierarchy, WildReadReturnsLazyZeros)
{
    Rig rig;
    const auto a = rig.hier.read(0xf0000000, 4);
    EXPECT_TRUE(a.wild);
    EXPECT_EQ(a.value, 0u);
    EXPECT_EQ(rig.hier.stats().get("wild_reads"), 1u);
}

TEST(Hierarchy, WildWriteIsDropped)
{
    Rig rig;
    const auto acc = rig.hier.write(0xf0000000, 4, 1);
    EXPECT_TRUE(acc.wild);
    EXPECT_EQ(rig.hier.stats().get("wild_writes"), 1u);
}

TEST(Hierarchy, UnalignedAccessForceAligned)
{
    Rig rig;
    rig.hier.write(0x6000, 4, 0xaabbccdd);
    const auto acc = rig.hier.read(0x6002, 4); // masked to 0x6000
    EXPECT_EQ(acc.value, 0xaabbccddu);
    EXPECT_EQ(rig.hier.stats().get("unaligned_reads"), 1u);
}

TEST(Hierarchy, FetchHitsAreFree)
{
    Rig rig;
    const SimAddr pc = 0x7000;
    const auto cold = rig.hier.fetch(pc);
    EXPECT_GT(cold.latency, 0);
    EXPECT_EQ(cold.l2Accesses, 1u);
    const auto hot = rig.hier.fetch(pc);
    EXPECT_EQ(hot.latency, 0);
    EXPECT_EQ(hot.l2Accesses, 0u);
}

TEST(Hierarchy, FlushRangePreservesDirtyNeighbors)
{
    // Regression: a DMA flush over part of a line must not lose the
    // dirty data sharing that line.
    Rig rig;
    rig.hier.write(0x8000, 4, 0x12344321); // dirty word
    rig.hier.flushRange(0x8004, 8);        // same L1 line
    EXPECT_EQ(rig.store.read32(0x8000), 0x12344321u);
    EXPECT_EQ(rig.hier.read(0x8000, 4).value, 0x12344321u);
}

TEST(Hierarchy, ReadFaultsAreTransientWithRetry)
{
    // With parity + two-strike, a read-sense fault is retried and the
    // correct stored value is returned.
    HierarchyConfig cfg;
    cfg.scheme = RecoveryScheme::TwoStrike;
    Rig rig(cfg, /*faultScale=*/2e3, /*seed=*/5);
    rig.hier.setCycleTime(0.25);
    rig.hier.write(0x9000, 4, 0x0f0f0f0f);
    // Force the line clean in L2 so invalidation recovery also works.
    rig.hier.flushRange(0x9000, 4);
    unsigned wrong = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rig.hier.read(0x9000, 4).value != 0x0f0f0f0f)
            ++wrong;
    }
    EXPECT_GT(rig.hier.stats().get("parity_trips"), 0u);
    EXPECT_GT(rig.hier.stats().get("strike_retries"), 0u);
    // Two-bit faults can still slip through parity; everything else
    // must have been corrected.
    EXPECT_LT(wrong, 10u);
}

TEST(Hierarchy, NoDetectionLetsFaultsThrough)
{
    Rig rig(HierarchyConfig{}, /*faultScale=*/2e4, /*seed=*/6);
    rig.hier.setCycleTime(0.25);
    rig.hier.write(0xa000, 4, 0x0f0f0f0f);
    unsigned wrong = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rig.hier.read(0xa000, 4).value != 0x0f0f0f0f)
            ++wrong;
    }
    EXPECT_GT(wrong, 50u);
    EXPECT_EQ(rig.hier.stats().get("parity_trips"), 0u);
}

TEST(Hierarchy, WriteFaultDetectedOnLaterRead)
{
    // A write fault leaves stored data disagreeing with its parity;
    // one-strike recovery must invalidate and refetch from L2.
    HierarchyConfig cfg;
    cfg.scheme = RecoveryScheme::OneStrike;
    Rig rig(cfg, /*faultScale=*/0.0, /*seed=*/7);

    // Prepare: value in L2/DRAM is 0x77777777.
    rig.hier.write(0xb000, 4, 0x77777777);
    rig.hier.flushRange(0xb000, 4);
    rig.hier.read(0xb000, 4); // refill L1 cleanly

    // Now emulate a write fault by a burst of faulty writes. The
    // rate must stay well below saturation: if every access faults,
    // the write flip and the read-sense flip pair into an even-weight
    // pattern that parity cannot see.
    fault::FaultModelParams boost;
    boost.scale = 500.0;
    rig.injector = fault::FaultInjector(fault::FaultModel(boost), 8);
    rig.hier.setCycleTime(0.25);
    bool sawRecovery = false;
    for (int i = 0; i < 100000 && !sawRecovery; ++i) {
        rig.hier.write(0xb000, 4, 0x77777777);
        const auto acc = rig.hier.read(0xb000, 4);
        if (acc.parityTrips > 0) {
            sawRecovery = true;
            // One-strike: the block was salvaged to L2 and refetched.
            // If the detected fault was a read-sense fault the value
            // comes back correct; a genuine write fault comes back
            // parity-consistent but corrupted (the undetected-fault
            // channel), so the exact value is not asserted here.
        }
    }
    EXPECT_TRUE(sawRecovery);
    EXPECT_GT(rig.hier.stats().get("strike_invalidations"), 0u);
}

TEST(Hierarchy, EnergyChargedPerAccess)
{
    Rig rig;
    const double before = rig.account.totalPj();
    rig.hier.read(0xc000, 4);
    EXPECT_GT(rig.account.totalPj(), before);
    EXPECT_GT(rig.account.l1dPj(), 0.0);
    EXPECT_GT(rig.account.l2Pj(), 0.0);
}

TEST(Hierarchy, ResetDropsState)
{
    Rig rig;
    rig.hier.write(0xd000, 4, 0xffffffff);
    rig.hier.reset();
    EXPECT_EQ(rig.hier.stats().get("writes"), 0u);
    // The dirty write was dropped with the caches; DRAM keeps junk.
    EXPECT_FALSE(rig.hier.l1d().contains(0xd000));
}

TEST(HierarchyDeath, RejectsBadWidth)
{
    Rig rig;
    EXPECT_DEATH(rig.hier.read(0, 3), "width");
    EXPECT_DEATH(rig.hier.write(0, 5, 0), "width");
}
