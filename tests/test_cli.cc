/**
 * @file
 * Tests of the shared command-line argument parser.
 */

#include <gtest/gtest.h>

#include <array>

#include "common/cli.hh"

using namespace clumsy;
using namespace clumsy::cli;

namespace
{

/** Build a mutable argv from string literals. */
template <std::size_t N>
std::array<char *, N>
makeArgv(const char *(&args)[N])
{
    std::array<char *, N> argv;
    for (std::size_t i = 0; i < N; ++i)
        argv[i] = const_cast<char *>(args[i]);
    return argv;
}

} // namespace

TEST(Cli, ParsesTypedOptionsAndFlags)
{
    std::string name;
    double cr = 1.0;
    std::uint64_t packets = 0;
    unsigned trials = 0;
    bool quick = false;

    ArgParser p("prog", "test");
    p.optString("--app", "NAME", "app", &name);
    p.optDouble("--cr", "X", "cr", &cr);
    p.optU64("--packets", "N", "packets", &packets);
    p.optUnsigned("--trials", "N", "trials", &trials);
    p.flag("--quick", "quick", &quick);

    const char *args[] = {"prog",      "--app",  "route", "--cr",
                          "0.5",       "--packets", "2000",
                          "--trials",  "8",      "--quick"};
    auto argv = makeArgv(args);
    p.parse(static_cast<int>(argv.size()), argv.data());

    EXPECT_EQ(name, "route");
    EXPECT_DOUBLE_EQ(cr, 0.5);
    EXPECT_EQ(packets, 2000u);
    EXPECT_EQ(trials, 8u);
    EXPECT_TRUE(quick);
}

TEST(Cli, CollectsPositionals)
{
    std::vector<std::string> pos;
    bool csv = false;
    ArgParser p("prog", "test");
    p.flag("--csv", "csv", &csv);
    p.positional("app", "apps",
                 [&pos](const std::string &v) { pos.push_back(v); });

    const char *args[] = {"prog", "crc", "--csv", "md5"};
    auto argv = makeArgv(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(pos, (std::vector<std::string>{"crc", "md5"}));
    EXPECT_TRUE(csv);
}

TEST(Cli, UsageListsOptionsAndSections)
{
    ArgParser p("prog", "summary line");
    std::string app;
    p.section("group");
    p.optString("--app", "NAME", "the app", &app);
    const std::string u = p.usage();
    EXPECT_NE(u.find("usage: prog"), std::string::npos);
    EXPECT_NE(u.find("summary line"), std::string::npos);
    EXPECT_NE(u.find("group:"), std::string::npos);
    EXPECT_NE(u.find("--app NAME"), std::string::npos);
    EXPECT_NE(u.find("the app"), std::string::npos);
}

TEST(CliDeath, RejectsUnknownOptionsAndBadNumbers)
{
    ArgParser p("prog", "test");
    double cr = 0;
    p.optDouble("--cr", "X", "cr", &cr);

    const char *unknown[] = {"prog", "--bogus"};
    auto argv1 = makeArgv(unknown);
    EXPECT_EXIT(p.parse(2, argv1.data()),
                testing::ExitedWithCode(1), "unknown option");

    const char *junkNum[] = {"prog", "--cr", "fast"};
    auto argv2 = makeArgv(junkNum);
    EXPECT_EXIT(p.parse(3, argv2.data()),
                testing::ExitedWithCode(1), "not a number");

    const char *missing[] = {"prog", "--cr"};
    auto argv3 = makeArgv(missing);
    EXPECT_EXIT(p.parse(2, argv3.data()),
                testing::ExitedWithCode(1), "missing");

    const char *positional[] = {"prog", "stray"};
    auto argv4 = makeArgv(positional);
    EXPECT_EXIT(p.parse(2, argv4.data()),
                testing::ExitedWithCode(1), "unexpected argument");
}

TEST(Cli, SplitTrimsAndDropsEmpties)
{
    EXPECT_EQ(split("a, b ,,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ';'), std::vector<std::string>{});
    EXPECT_EQ(split("one", ';'), std::vector<std::string>{"one"});
}
