/**
 * @file
 * Tests of the voltage-swing model against the paper's published
 * anchors plus structural properties (monotonicity, inverse).
 */

#include <gtest/gtest.h>

#include "fault/swing.hh"

using namespace clumsy::fault;

TEST(Swing, FullSwingAtUnitCycle)
{
    EXPECT_DOUBLE_EQ(relativeSwing(1.0), 1.0);
    EXPECT_DOUBLE_EQ(relativeSwing(2.0), 1.0);
}

TEST(Swing, PaperEnergyAnchors)
{
    // Section 5.4: cache energy (linear in swing) drops by 45%, 19%
    // and 6% at Cr = 0.25, 0.5, 0.75.
    EXPECT_NEAR(1.0 - energyScale(0.25), 0.45, 0.01);
    EXPECT_NEAR(1.0 - energyScale(0.50), 0.19, 0.01);
    EXPECT_NEAR(1.0 - energyScale(0.75), 0.06, 0.005);
}

TEST(Swing, Figure1aAnchor)
{
    // Figure 1's labels put the swing at 0.3*Cfs near 0.6*Vfs; the
    // RC model (calibrated on the Section 5.4 energy numbers) lands
    // at 0.62.
    EXPECT_NEAR(relativeSwing(0.3), 0.62, 0.01);
}

TEST(Swing, StrictlyIncreasingInCycleTime)
{
    double prev = 0.0;
    for (double cr = 0.05; cr <= 1.0; cr += 0.05) {
        const double v = relativeSwing(cr);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

class SwingInverse : public ::testing::TestWithParam<double>
{
};

TEST_P(SwingInverse, RoundTrip)
{
    const double cr = GetParam();
    const double vsr = relativeSwing(cr);
    EXPECT_NEAR(cycleTimeForSwing(vsr), cr, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Grid, SwingInverse,
                         ::testing::Values(0.05, 0.1, 0.2, 0.25, 0.3,
                                           0.4, 0.5, 0.6, 0.7, 0.75,
                                           0.8, 0.9, 0.99));

TEST(Swing, InverseOfFullSwing)
{
    EXPECT_DOUBLE_EQ(cycleTimeForSwing(1.0), 1.0);
}

TEST(SwingDeath, RejectsNonPositiveCycleTime)
{
    EXPECT_DEATH(relativeSwing(0.0), "positive");
    EXPECT_DEATH(relativeSwing(-1.0), "positive");
}

TEST(SwingDeath, RejectsBadSwing)
{
    EXPECT_DEATH(cycleTimeForSwing(0.0), "0, 1");
    EXPECT_DEATH(cycleTimeForSwing(1.5), "0, 1");
}
