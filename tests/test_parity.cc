/**
 * @file
 * Tests of the per-word parity codec, including the structural
 * property the whole recovery story rests on: odd-weight flips are
 * detected, even-weight flips escape.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/random.hh"
#include "mem/parity.hh"

using namespace clumsy;
using namespace clumsy::mem;

TEST(Parity, BitMatchesPopcount)
{
    EXPECT_FALSE(parityBit(0));
    EXPECT_TRUE(parityBit(1));
    EXPECT_TRUE(parityBit(0x80000000));
    EXPECT_FALSE(parityBit(0x80000001));
}

TEST(Parity, CleanWordMatches)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i) {
        const auto w = static_cast<std::uint32_t>(rng.next());
        EXPECT_TRUE(parityMatches(w, parityBit(w)));
    }
}

class ParityFlips : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ParityFlips, AdjacentFlipDetectionByWeight)
{
    // k adjacent flipped bits: detected iff k is odd.
    const unsigned k = GetParam();
    Rng rng(22);
    for (unsigned pos = 0; pos < 32; ++pos) {
        const auto w = static_cast<std::uint32_t>(rng.next());
        std::uint32_t mask = 0;
        for (unsigned i = 0; i < k; ++i)
            mask |= std::uint32_t{1} << ((pos + i) % 32);
        const bool detected = !parityMatches(w ^ mask, parityBit(w));
        EXPECT_EQ(detected, k % 2 == 1)
            << "k=" << k << " pos=" << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(Weights, ParityFlips,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Parity, PackLine)
{
    const std::uint32_t words[4] = {0, 1, 3, 7};
    const std::uint64_t bits = packLineParity(words, 4);
    EXPECT_EQ(bits & 1, 0u);        // parity(0) = 0
    EXPECT_EQ((bits >> 1) & 1, 1u); // parity(1) = 1
    EXPECT_EQ((bits >> 2) & 1, 0u); // parity(3) = 0
    EXPECT_EQ((bits >> 3) & 1, 1u); // parity(7) = 1
}

TEST(ParityDeath, PackLineBounded)
{
    const std::uint32_t word = 0;
    EXPECT_DEATH(packLineParity(&word, 65), "64");
}
