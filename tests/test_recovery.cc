/**
 * @file
 * Way-disable recovery: a frame whose strike-outs cross the retire
 * threshold is permanently disabled, and the lost capacity is charged
 * through the normal miss path (src/mem/hierarchy.cc,
 * mem::WayDisablePolicy).
 *
 * The rigs pin a single always-failing weak cell (vth = 1, pFail = 1)
 * into the fault map and turn fill injection off, so every sense of
 * that word trips parity deterministically — each read is exactly one
 * strike-out and the retirement cadence is exact, not statistical.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "energy/chip_energy.hh"
#include "fault/fault_map.hh"
#include "fault/injector.hh"
#include "mem/hierarchy.hh"
#include "npu/chip.hh"

using namespace clumsy;
using namespace clumsy::mem;

namespace
{

struct Rig
{
    HierarchyConfig config;
    fault::FaultMap map;
    BackingStore store{1u << 20};
    fault::FaultInjector injector;
    energy::EnergyModel model;
    energy::EnergyAccount account;
    MemHierarchy hier;

    explicit Rig(HierarchyConfig cfg, fault::FaultMap m)
        : config(cfg),
          map(std::move(m)),
          injector(fault::FaultModel(fault::FaultModelParams{}), 1),
          model(energy::EnergyParams{}, cfg.l1d, cfg.l1i, cfg.l2),
          account(&model),
          hier(config, &store, &injector, &account)
    {
        injector.attachMap(&map);
    }
};

/** Config: two-strike parity, retire threshold, no fill injection. */
HierarchyConfig
retireConfig(unsigned threshold, unsigned assoc = 1)
{
    HierarchyConfig cfg;
    cfg.scheme = RecoveryScheme::TwoStrike;
    cfg.wayDisable.retireThreshold = threshold;
    cfg.l1d.assoc = assoc;
    // Fill injection off: an always-failing cell corrupted at fill
    // would be flipped back by the sense-time corruption (two XORs of
    // the same mask cancel), making strikes non-deterministic.
    cfg.injectOnFill = false;
    return cfg;
}

/** A map with one always-failing bit at (set, way, bit). */
fault::FaultMap
oneCellMap(const HierarchyConfig &cfg, std::uint32_t set,
           std::uint32_t way, std::uint32_t bit)
{
    const fault::FaultMapGeometry geom{cfg.l1d.sets(), cfg.l1d.assoc,
                                       cfg.l1d.lineBytes};
    return fault::FaultMap(geom, 0,
                           {fault::WeakCell{set, way, bit, 1.0, 1.0}});
}

} // namespace

TEST(WayDisable, RetiresAfterThresholdStrikeOuts)
{
    const HierarchyConfig cfg = retireConfig(2);
    Rig rig{cfg, oneCellMap(cfg, 2, 0, 5)};
    const SimAddr weak = 2 * 32; // word 0 of set 2

    // First read: both strikes trip, the line is invalidated and the
    // L2 bypass serves the correct word — but the frame survives.
    EXPECT_EQ(rig.hier.read(weak, 4).value, 0u);
    EXPECT_EQ(rig.hier.stats().get("strike_invalidations"), 1u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 0u);
    EXPECT_EQ(rig.hier.l1d().disabledFrameCount(), 0u);

    // Second strike-out crosses the threshold: the frame retires, and
    // in a direct-mapped cache that kills the whole set.
    EXPECT_EQ(rig.hier.read(weak, 4).value, 0u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 1u);
    EXPECT_EQ(rig.hier.l1d().disabledFrameCount(), 1u);
    EXPECT_EQ(rig.hier.stats().get("retired_reads"), 1u);

    // From now on the set is a permanent miss served by the L2: no
    // sensing, no further strikes, correct data.
    const Access dead = rig.hier.read(weak, 4);
    EXPECT_EQ(dead.value, 0u);
    EXPECT_EQ(rig.hier.stats().get("retired_reads"), 2u);
    EXPECT_EQ(rig.hier.stats().get("strike_invalidations"), 2u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 1u);

    // Capacity-loss accounting: the dead-set read is no L1 hit — it
    // pays at least an L2 access on every repetition, and the cost is
    // stable (no hidden caching of the retired set).
    const Access again = rig.hier.read(weak, 4);
    EXPECT_EQ(again.latency, dead.latency);
    rig.hier.read(0x8000, 4); // prime an unrelated healthy line
    const Access hit = rig.hier.read(0x8000, 4);
    EXPECT_GT(dead.latency, hit.latency);
}

TEST(WayDisable, HigherThresholdRetiresLater)
{
    const HierarchyConfig cfg = retireConfig(3);
    Rig rig{cfg, oneCellMap(cfg, 1, 0, 9)};
    const SimAddr weak = 1 * 32;
    rig.hier.read(weak, 4);
    rig.hier.read(weak, 4);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 0u);
    rig.hier.read(weak, 4);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 1u);
}

TEST(WayDisable, DeadSetWritesMergeThroughTheL2)
{
    const HierarchyConfig cfg = retireConfig(1);
    Rig rig{cfg, oneCellMap(cfg, 3, 0, 0)};
    const SimAddr weak = 3 * 32;
    rig.hier.read(weak, 4); // one strike-out retires immediately
    ASSERT_EQ(rig.hier.stats().get("ways_retired"), 1u);

    rig.hier.write(weak, 4, 0xabcd1234);
    EXPECT_EQ(rig.hier.stats().get("retired_writes"), 1u);
    EXPECT_EQ(rig.hier.read(weak, 4).value, 0xabcd1234u);

    // Sub-word stores merge against the L2's copy of the word.
    rig.hier.write(weak + 1, 1, 0xee);
    EXPECT_EQ(rig.hier.read(weak, 4).value, 0xabcdee34u);
    EXPECT_EQ(rig.hier.peekWord(weak), 0xabcdee34u);
}

TEST(WayDisable, SurvivingWayAbsorbsTheSet)
{
    // 2-way set: retiring the weak frame leaves the set alive, the
    // line refills into the surviving way and later reads are clean
    // L1 hits again — capacity halves, correctness never wavers.
    const HierarchyConfig cfg = retireConfig(1, 2);
    // The first fill of an empty set lands in way 0 (lowest free
    // frame), where the weak cell sits.
    Rig rig{cfg, oneCellMap(cfg, 4, 0, 12)};
    const SimAddr weak = 4 * 32;
    EXPECT_EQ(rig.hier.read(weak, 4).value, 0u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 1u);
    EXPECT_EQ(rig.hier.l1d().disabledFrameCount(), 1u);
    EXPECT_EQ(rig.hier.stats().get("retired_reads"), 0u);

    const auto strikes = rig.hier.stats().get("strike_invalidations");
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rig.hier.read(weak, 4).value, 0u);
    // The surviving way has no weak cells: not one further strike.
    EXPECT_EQ(rig.hier.stats().get("strike_invalidations"), strikes);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 1u);
}

TEST(WayDisable, InertWithoutDetection)
{
    // No parity, no strikes: the weak cell silently corrupts every
    // read and the retire machinery never engages.
    HierarchyConfig cfg = retireConfig(1);
    cfg.scheme = RecoveryScheme::NoDetection;
    Rig rig{cfg, oneCellMap(cfg, 2, 0, 5)};
    const SimAddr weak = 2 * 32;
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rig.hier.read(weak, 4).value, 1u << 5);
    EXPECT_EQ(rig.hier.stats().get("strike_invalidations"), 0u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 0u);
    EXPECT_EQ(rig.hier.l1d().disabledFrameCount(), 0u);
}

TEST(WayDisable, ZeroThresholdNeverRetires)
{
    const HierarchyConfig cfg = retireConfig(0);
    Rig rig{cfg, oneCellMap(cfg, 2, 0, 5)};
    const SimAddr weak = 2 * 32;
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rig.hier.read(weak, 4).value, 0u);
    EXPECT_GT(rig.hier.stats().get("strike_invalidations"), 0u);
    EXPECT_EQ(rig.hier.stats().get("ways_retired"), 0u);
    EXPECT_EQ(rig.hier.stats().get("retired_reads"), 0u);
}

TEST(WayDisable, SingleEngineChipMatchesSingleCore)
{
    // pes=1 anchor: the chip harness with a fault map and way-disable
    // produces the same physics as the single-core harness (engine 0
    // is unsalted, so both generate identical silicon).
    core::ExperimentConfig cfg;
    cfg.numPackets = 120;
    cfg.trials = 2;
    cfg.cr = 0.5;
    cfg.scheme = RecoveryScheme::TwoStrike;
    cfg.processor.faultMap = fault::faultMapSpecFromString("spatial");
    cfg.processor.hierarchy.wayDisable.retireThreshold = 3;
    const core::AppFactory factory = apps::appFactory("crc");

    const core::ExperimentResult single =
        core::runExperiment(factory, cfg);
    const npu::ChipExperimentResult chip =
        npu::runChipExperiment(factory, cfg, npu::NpuConfig{});

    EXPECT_EQ(single.faulty.faultsInjected,
              chip.core.faulty.faultsInjected);
    EXPECT_EQ(single.faulty.parityTrips, chip.core.faulty.parityTrips);
    EXPECT_EQ(single.cyclesPerPacket, chip.core.cyclesPerPacket);
    EXPECT_EQ(single.energyPerPacketPj, chip.core.energyPerPacketPj);
    EXPECT_EQ(single.fallibility, chip.core.fallibility);
}
