/**
 * @file
 * The umbrella header must be self-contained and sufficient for the
 * README's five-line quick start.
 */

#include "clumsy/clumsy.hh"

#include <gtest/gtest.h>

TEST(Umbrella, QuickStartCompilesAndRuns)
{
    clumsy::setQuiet(true);
    clumsy::core::ExperimentConfig config;
    config.numPackets = 20;
    config.cr = 0.5;
    config.scheme = clumsy::mem::RecoveryScheme::TwoStrike;
    const auto result = clumsy::core::runExperiment(
        clumsy::apps::appFactory("route"), config);
    EXPECT_GE(result.fallibility, 1.0);
    EXPECT_GT(result.cyclesPerPacket, 0.0);
    EXPECT_GT(result.energyPerPacketPj, 0.0);
}

TEST(Umbrella, ExposesEveryModuleNamespace)
{
    // One symbol per module proves the include set is complete.
    EXPECT_GT(clumsy::fault::relativeSwing(0.5), 0.0);
    EXPECT_GT(clumsy::energy::frequencyAtVoltage(1.0), 0.0);
    EXPECT_EQ(clumsy::mem::secded::kCheckBits, 7u);
    EXPECT_EQ(clumsy::apps::allAppNames().size(), 7u);
    EXPECT_FALSE(
        clumsy::net::TraceGenerator::makeUrlPool({}).empty());
}
