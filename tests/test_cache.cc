/**
 * @file
 * Tests of the generic data-carrying set-associative cache.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/cache.hh"
#include "mem/parity.hh"

using namespace clumsy;
using namespace clumsy::mem;

namespace
{

std::vector<std::uint8_t>
patternLine(unsigned lineBytes, std::uint8_t seed)
{
    std::vector<std::uint8_t> data(lineBytes);
    for (unsigned i = 0; i < lineBytes; ++i)
        data[i] = static_cast<std::uint8_t>(seed + i);
    return data;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    EXPECT_FALSE(cache.lookup(0x100));
    const auto line = patternLine(32, 1);
    cache.fill(0x100, line.data());
    EXPECT_TRUE(cache.lookup(0x100));
    EXPECT_TRUE(cache.lookup(0x11c)); // same line
    EXPECT_FALSE(cache.lookup(0x120)); // next line
    EXPECT_EQ(cache.stats().get("hits"), 2u);
    EXPECT_EQ(cache.stats().get("misses"), 2u);
}

TEST(Cache, FillPreservesData)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto line = patternLine(32, 7);
    cache.fill(0x200, line.data());
    std::uint8_t out[32];
    cache.readLine(0x210, out);
    EXPECT_EQ(std::memcmp(out, line.data(), 32), 0);
    std::uint32_t word;
    std::memcpy(&word, &line[8], 4);
    EXPECT_EQ(cache.readWordRaw(0x208), word);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto a = patternLine(32, 1);
    const auto b = patternLine(32, 2);
    cache.fill(0x0, a.data());
    // Same set (stride = cache size), different tag.
    const auto evicted = cache.fill(0x1000, b.data());
    EXPECT_TRUE(evicted.valid);
    EXPECT_FALSE(evicted.dirty);
    EXPECT_EQ(evicted.base, 0x0u);
    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(0x1000));
}

TEST(Cache, LruVictimSelection)
{
    Cache cache("t", CacheGeometry{256, 2, 32, 22});
    // Set count = 256/(32*2) = 4; lines 0x000, 0x080, 0x100 share set 0.
    const auto l = patternLine(32, 3);
    cache.fill(0x000, l.data());
    cache.fill(0x080, l.data());
    cache.lookup(0x000); // touch 0x000: 0x080 becomes LRU
    const auto evicted = cache.fill(0x100, l.data());
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.base, 0x080u);
    EXPECT_TRUE(cache.contains(0x000));
}

TEST(Cache, DirtyWritebackCarriesData)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 4);
    cache.fill(0x40, l.data());
    cache.writeWordRaw(0x40, 0xdeadbeef,
                       cache.computeCheck(0xdeadbeef));
    cache.setDirty(0x40);
    EXPECT_TRUE(cache.isDirty(0x40));
    const auto evicted = cache.fill(0x1040, l.data());
    ASSERT_TRUE(evicted.valid);
    ASSERT_TRUE(evicted.dirty);
    ASSERT_EQ(evicted.data.size(), 32u);
    std::uint32_t word;
    std::memcpy(&word, evicted.data.data(), 4);
    EXPECT_EQ(word, 0xdeadbeefu);
    EXPECT_EQ(cache.stats().get("writebacks"), 1u);
}

TEST(Cache, ExplicitParityCanDisagreeWithData)
{
    // The clumsy essence: a faulty array write stores data whose
    // parity bit reflects the *intended* value.
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 5);
    cache.fill(0x80, l.data());
    const std::uint32_t intended = 0x00000000;
    const std::uint32_t corrupted = 0x00000001; // 1-bit write fault
    cache.writeWordRaw(0x80, corrupted, cache.computeCheck(intended));
    EXPECT_EQ(cache.readWordRaw(0x80), corrupted);
    EXPECT_FALSE(parityMatches(cache.readWordRaw(0x80),
                               (cache.wordCheck(0x80) & 1) != 0));
}

TEST(Cache, FillRegeneratesParity)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 6);
    cache.fill(0xc0, l.data());
    for (SimAddr off = 0; off < 32; off += 4) {
        EXPECT_TRUE(
            parityMatches(cache.readWordRaw(0xc0 + off),
                          (cache.wordCheck(0xc0 + off) & 1) != 0));
    }
}

TEST(Cache, WriteRangeRegeneratesParity)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 7);
    cache.fill(0x100, l.data());
    const std::uint8_t patch[6] = {0xff, 0x01, 0x02, 0x03, 0x04, 0x05};
    cache.writeRange(0x102, patch, 6, true); // spans words 0 and 1
    EXPECT_TRUE(parityMatches(cache.readWordRaw(0x100),
                              (cache.wordCheck(0x100) & 1) != 0));
    EXPECT_TRUE(parityMatches(cache.readWordRaw(0x104),
                              (cache.wordCheck(0x104) & 1) != 0));
    EXPECT_TRUE(cache.isDirty(0x100));
}

TEST(Cache, InvalidateDropsLine)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 8);
    cache.fill(0x140, l.data());
    cache.setDirty(0x140);
    cache.invalidate(0x140);
    EXPECT_FALSE(cache.contains(0x140));
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
    cache.invalidate(0x140); // absent: no-op
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
}

TEST(Cache, ResetClearsContentsKeepsGeometry)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 9);
    cache.fill(0x180, l.data());
    cache.reset();
    EXPECT_FALSE(cache.contains(0x180));
}

TEST(Cache, MissRate)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 10);
    cache.lookup(0x0); // miss
    cache.fill(0x0, l.data());
    cache.lookup(0x0); // hit
    cache.lookup(0x4); // hit
    EXPECT_NEAR(cache.missRate(), 1.0 / 3.0, 1e-12);
}

TEST(CacheDeath, RawAccessRequiresPresence)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    EXPECT_DEATH(cache.readWordRaw(0x40), "not present");
}

TEST(CacheDeath, FillRejectsDuplicate)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 11);
    cache.fill(0x40, l.data());
    EXPECT_DEATH(cache.fill(0x48, l.data()), "already-present");
}
