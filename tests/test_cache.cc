/**
 * @file
 * Tests of the generic data-carrying set-associative cache.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "mem/cache.hh"
#include "mem/parity.hh"

using namespace clumsy;
using namespace clumsy::mem;

namespace
{

std::vector<std::uint8_t>
patternLine(unsigned lineBytes, std::uint8_t seed)
{
    std::vector<std::uint8_t> data(lineBytes);
    for (unsigned i = 0; i < lineBytes; ++i)
        data[i] = static_cast<std::uint8_t>(seed + i);
    return data;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    EXPECT_FALSE(cache.lookup(0x100));
    const auto line = patternLine(32, 1);
    cache.fill(0x100, line.data());
    EXPECT_TRUE(cache.lookup(0x100));
    EXPECT_TRUE(cache.lookup(0x11c)); // same line
    EXPECT_FALSE(cache.lookup(0x120)); // next line
    EXPECT_EQ(cache.stats().get("hits"), 2u);
    EXPECT_EQ(cache.stats().get("misses"), 2u);
}

TEST(Cache, FillPreservesData)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto line = patternLine(32, 7);
    cache.fill(0x200, line.data());
    std::uint8_t out[32];
    cache.readLine(0x210, out);
    EXPECT_EQ(std::memcmp(out, line.data(), 32), 0);
    std::uint32_t word;
    std::memcpy(&word, &line[8], 4);
    EXPECT_EQ(cache.readWordRaw(0x208), word);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto a = patternLine(32, 1);
    const auto b = patternLine(32, 2);
    cache.fill(0x0, a.data());
    // Same set (stride = cache size), different tag.
    const auto evicted = cache.fill(0x1000, b.data());
    EXPECT_TRUE(evicted.valid);
    EXPECT_FALSE(evicted.dirty);
    EXPECT_EQ(evicted.base, 0x0u);
    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(0x1000));
}

TEST(Cache, LruVictimSelection)
{
    Cache cache("t", CacheGeometry{256, 2, 32, 22});
    // Set count = 256/(32*2) = 4; lines 0x000, 0x080, 0x100 share set 0.
    const auto l = patternLine(32, 3);
    cache.fill(0x000, l.data());
    cache.fill(0x080, l.data());
    cache.lookup(0x000); // touch 0x000: 0x080 becomes LRU
    const auto evicted = cache.fill(0x100, l.data());
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.base, 0x080u);
    EXPECT_TRUE(cache.contains(0x000));
}

TEST(Cache, DirtyWritebackCarriesData)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 4);
    cache.fill(0x40, l.data());
    cache.writeWordRaw(0x40, 0xdeadbeef,
                       cache.computeCheck(0xdeadbeef));
    cache.setDirty(0x40);
    EXPECT_TRUE(cache.isDirty(0x40));
    const auto evicted = cache.fill(0x1040, l.data());
    ASSERT_TRUE(evicted.valid);
    ASSERT_TRUE(evicted.dirty);
    ASSERT_EQ(evicted.data.size(), 32u);
    std::uint32_t word;
    std::memcpy(&word, evicted.data.data(), 4);
    EXPECT_EQ(word, 0xdeadbeefu);
    EXPECT_EQ(cache.stats().get("writebacks"), 1u);
}

TEST(Cache, ExplicitParityCanDisagreeWithData)
{
    // The clumsy essence: a faulty array write stores data whose
    // parity bit reflects the *intended* value.
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 5);
    cache.fill(0x80, l.data());
    const std::uint32_t intended = 0x00000000;
    const std::uint32_t corrupted = 0x00000001; // 1-bit write fault
    cache.writeWordRaw(0x80, corrupted, cache.computeCheck(intended));
    EXPECT_EQ(cache.readWordRaw(0x80), corrupted);
    EXPECT_FALSE(parityMatches(cache.readWordRaw(0x80),
                               (cache.wordCheck(0x80) & 1) != 0));
}

TEST(Cache, FillRegeneratesParity)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 6);
    cache.fill(0xc0, l.data());
    for (SimAddr off = 0; off < 32; off += 4) {
        EXPECT_TRUE(
            parityMatches(cache.readWordRaw(0xc0 + off),
                          (cache.wordCheck(0xc0 + off) & 1) != 0));
    }
}

TEST(Cache, WriteRangeRegeneratesParity)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 7);
    cache.fill(0x100, l.data());
    const std::uint8_t patch[6] = {0xff, 0x01, 0x02, 0x03, 0x04, 0x05};
    cache.writeRange(0x102, patch, 6, true); // spans words 0 and 1
    EXPECT_TRUE(parityMatches(cache.readWordRaw(0x100),
                              (cache.wordCheck(0x100) & 1) != 0));
    EXPECT_TRUE(parityMatches(cache.readWordRaw(0x104),
                              (cache.wordCheck(0x104) & 1) != 0));
    EXPECT_TRUE(cache.isDirty(0x100));
}

TEST(Cache, InvalidateDropsLine)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 8);
    cache.fill(0x140, l.data());
    cache.setDirty(0x140);
    cache.invalidate(0x140);
    EXPECT_FALSE(cache.contains(0x140));
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
    cache.invalidate(0x140); // absent: no-op
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
}

TEST(Cache, ResetClearsContentsKeepsGeometry)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 9);
    cache.fill(0x180, l.data());
    cache.reset();
    EXPECT_FALSE(cache.contains(0x180));
}

TEST(Cache, MissRate)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 10);
    cache.lookup(0x0); // miss
    cache.fill(0x0, l.data());
    cache.lookup(0x0); // hit
    cache.lookup(0x4); // hit
    EXPECT_NEAR(cache.missRate(), 1.0 / 3.0, 1e-12);
}

TEST(CacheDeath, RawAccessRequiresPresence)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    EXPECT_DEATH(cache.readWordRaw(0x40), "not present");
}

TEST(CacheDeath, FillRejectsDuplicate)
{
    Cache cache("t", CacheGeometry{4096, 1, 32, 22});
    const auto l = patternLine(32, 11);
    cache.fill(0x40, l.data());
    EXPECT_DEATH(cache.fill(0x48, l.data()), "already-present");
}

// ---------------------------------------------------------------------
// Equivalence of the flat SoA array against a naive per-line model.
//
// The metadata layout (flat valid/dirty/tag/LRU lanes indexed
// set*assoc+way) is a pure representation change; this drives both
// the real cache and a deliberately dumb struct-of-lines reference
// through a long random op sequence and demands identical hits,
// victims, evictions, contents and counters at every step.
// ---------------------------------------------------------------------

namespace
{

/** Straight-line reference: one heap struct per line, linear scans. */
class RefCache
{
  public:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t tick = 0;
        std::vector<std::uint8_t> data;
    };

    struct Evicted
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t base = 0;
    };

    RefCache(unsigned sets, unsigned assoc, unsigned lineBytes)
        : sets_(sets), assoc_(assoc), lineBytes_(lineBytes),
          lines_(std::size_t{sets} * assoc)
    {
        for (auto &l : lines_)
            l.data.assign(lineBytes, 0);
    }

    Line *findLine(std::uint64_t addr)
    {
        const std::uint64_t tag = addr / lineBytes_;
        const std::size_t set = tag % sets_;
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &l = lines_[set * assoc_ + w];
            if (l.valid && l.tag == tag)
                return &l;
        }
        return nullptr;
    }

    bool lookup(std::uint64_t addr)
    {
        Line *l = findLine(addr);
        if (l == nullptr)
            return false;
        l->tick = ++tick_;
        return true;
    }

    Evicted fill(std::uint64_t addr, const std::uint8_t *data)
    {
        const std::uint64_t tag = addr / lineBytes_;
        const std::size_t set = tag % sets_;
        Line *victim = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Line &l = lines_[set * assoc_ + w];
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (victim == nullptr || l.tick < victim->tick)
                victim = &l;
        }
        Evicted ev;
        if (victim->valid) {
            ev.valid = true;
            ev.dirty = victim->dirty;
            ev.base = victim->tag * lineBytes_;
        }
        victim->valid = true;
        victim->dirty = false;
        victim->tag = tag;
        victim->tick = ++tick_;
        victim->data.assign(data, data + lineBytes_);
        return ev;
    }

    void writeRange(std::uint64_t addr, const std::uint8_t *src,
                    unsigned len, bool markDirty)
    {
        Line *l = findLine(addr);
        ASSERT_NE(l, nullptr);
        const std::uint64_t off = addr % lineBytes_;
        std::memcpy(l->data.data() + off, src, len);
        if (markDirty)
            l->dirty = true;
    }

  private:
    unsigned sets_, assoc_, lineBytes_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;
};

} // namespace

TEST(Cache, SoaMatchesNaiveModelUnderRandomOps)
{
    // 4 sets x 2 ways of 32 B: tiny, so random addresses conflict and
    // evict constantly.
    Cache cache("t", CacheGeometry{256, 2, 32, 22});
    RefCache ref(4, 2, 32);

    std::mt19937_64 rng(0x50a50a);
    std::uint64_t fills = 0, evictions = 0, writebacks = 0;
    std::uint64_t hits = 0, misses = 0;
    for (unsigned op = 0; op < 20000; ++op) {
        // 16 distinct lines over 4 sets.
        const std::uint64_t base = (rng() % 16) * 32;
        switch (rng() % 3) {
        case 0: { // lookup, fill on miss
            const bool hit = cache.lookup(base + rng() % 32);
            const bool refHit = ref.lookup(base);
            ASSERT_EQ(hit, refHit) << "op " << op;
            (hit ? hits : misses) += 1;
            if (!hit) {
                std::uint8_t data[32];
                for (unsigned i = 0; i < 32; ++i)
                    data[i] = static_cast<std::uint8_t>(rng());
                const Cache::Evicted ev = cache.fill(base, data);
                const RefCache::Evicted rev = ref.fill(base, data);
                ++fills;
                ASSERT_EQ(ev.valid, rev.valid) << "op " << op;
                if (ev.valid) {
                    ++evictions;
                    ASSERT_EQ(ev.dirty, rev.dirty) << "op " << op;
                    ASSERT_EQ(ev.base, rev.base) << "op " << op;
                    if (ev.dirty)
                        ++writebacks;
                }
            }
            break;
        }
        case 1: { // write inside the line when present
            if (!cache.contains(base))
                break;
            std::uint8_t patch[8];
            for (std::uint8_t &b : patch)
                b = static_cast<std::uint8_t>(rng());
            const unsigned off = rng() % 25; // off+8 <= 32
            const bool markDirty = rng() % 2 == 0;
            cache.writeRange(base + off, patch, 8, markDirty);
            ref.writeRange(base + off, patch, 8, markDirty);
            break;
        }
        default: { // compare the full stored line + dirty bit
            RefCache::Line *l = ref.findLine(base);
            ASSERT_EQ(cache.contains(base), l != nullptr)
                << "op " << op;
            if (l == nullptr)
                break;
            std::uint8_t got[32];
            cache.readLine(base, got);
            ASSERT_EQ(std::memcmp(got, l->data.data(), 32), 0)
                << "op " << op;
            ASSERT_EQ(cache.isDirty(base), l->dirty) << "op " << op;
            break;
        }
        }
    }
    EXPECT_GT(evictions, 100u); // the sequence actually stressed LRU
    EXPECT_EQ(cache.stats().get("hits"), hits);
    EXPECT_EQ(cache.stats().get("misses"), misses);
    EXPECT_EQ(cache.stats().get("fills"), fills);
    EXPECT_EQ(cache.stats().get("evictions"), evictions);
    EXPECT_EQ(cache.stats().get("writebacks"), writebacks);
}
