/**
 * @file
 * Tests of the closed-form fault model (eq. (4)) and its Monte-Carlo
 * cross-validation.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "fault/fault_model.hh"
#include "fault/swing.hh"

using namespace clumsy;
using namespace clumsy::fault;

TEST(FaultModel, BaseRateAtFullSwing)
{
    const FaultModel model;
    EXPECT_DOUBLE_EQ(model.scaleFactor(1.0), 1.0);
    EXPECT_DOUBLE_EQ(model.bitFaultProb(1.0), 2.59e-7);
}

TEST(FaultModel, PaperScaleAnchors)
{
    const FaultModel model;
    // exp((Fr^2-1)/6.67) at the paper's operating points.
    EXPECT_NEAR(model.scaleFactor(0.75), 1.124, 0.001);
    EXPECT_NEAR(model.scaleFactor(0.50), 1.568, 0.001);
    EXPECT_NEAR(model.scaleFactor(0.25), 9.477, 0.01);
}

TEST(FaultModel, GentleKneeThenSharpRise)
{
    // The paper: cycle time can shrink ~60% before faults jump.
    const FaultModel model;
    EXPECT_LT(model.scaleFactor(0.4), 3.0);
    EXPECT_GT(model.scaleFactor(0.2), 30.0);
}

TEST(FaultModel, MultiBitOrdering)
{
    const FaultModel model;
    for (const double cr : {1.0, 0.5, 0.25}) {
        EXPECT_GT(model.multiBitFaultProb(1, cr),
                  model.multiBitFaultProb(2, cr));
        EXPECT_GT(model.multiBitFaultProb(2, cr),
                  model.multiBitFaultProb(3, cr));
    }
    // The paper's correlation: 2-bit at 1e-2 and 3-bit at 1e-3 of
    // the single-bit rate.
    EXPECT_NEAR(model.multiBitFaultProb(2, 1.0), 2.59e-9, 1e-15);
    EXPECT_NEAR(model.multiBitFaultProb(3, 1.0), 2.59e-10, 1e-16);
}

TEST(FaultModel, AccessFaultProbScalesWithWidth)
{
    const FaultModel model;
    const double p8 = model.accessFaultProb(8, 0.5);
    const double p32 = model.accessFaultProb(32, 0.5);
    EXPECT_GT(p32, p8);
    EXPECT_LT(p32, 1.0);
    EXPECT_GT(p8, 0.0);
}

TEST(FaultModel, ScaleParameterMultiplies)
{
    FaultModelParams params;
    params.scale = 100.0;
    const FaultModel boosted(params);
    const FaultModel base;
    EXPECT_NEAR(boosted.bitFaultProb(0.5),
                100.0 * base.bitFaultProb(0.5), 1e-15);
}

TEST(FaultModel, ProbabilitiesClampAtOne)
{
    FaultModelParams params;
    params.scale = 1e12;
    const FaultModel model(params);
    EXPECT_LE(model.bitFaultProb(0.25), 1.0);
    EXPECT_LE(model.accessFaultProb(32, 0.25), 1.0);
}

class MonteCarloGrid : public ::testing::TestWithParam<double>
{
};

TEST_P(MonteCarloGrid, MatchesClosedFormWithin5Percent)
{
    const double vsr = GetParam();
    const FaultModel model;
    Rng rng(99);
    const double cf = model.probAtSwing(vsr);
    const double mc = monteCarloFaultProb(vsr, 30000, rng);
    EXPECT_NEAR(mc / cf, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Swings, MonteCarloGrid,
                         ::testing::Values(1.0, 0.9, 0.8, 0.7, 0.6,
                                           0.5));

TEST(FaultModel, SwingCompositionConsistent)
{
    // probAtSwing(relativeSwing(cr)) == bitFaultProb(cr).
    const FaultModel model;
    for (const double cr : {1.0, 0.75, 0.5, 0.3, 0.25}) {
        EXPECT_NEAR(model.probAtSwing(relativeSwing(cr)),
                    model.bitFaultProb(cr),
                    model.bitFaultProb(cr) * 1e-9);
    }
}

TEST(FaultModelDeath, RejectsBadMultiplicity)
{
    const FaultModel model;
    EXPECT_DEATH(model.multiBitFaultProb(0, 1.0), "unsupported");
    EXPECT_DEATH(model.multiBitFaultProb(4, 1.0), "unsupported");
}
