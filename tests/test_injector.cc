/**
 * @file
 * Tests of the per-access fault injector.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "fault/injector.hh"

using namespace clumsy;
using namespace clumsy::fault;

namespace
{

FaultInjector
boostedInjector(double scale, std::uint64_t seed = 1)
{
    FaultModelParams params;
    params.scale = scale;
    return FaultInjector(FaultModel(params), seed);
}

} // namespace

TEST(Injector, DisabledIsTransparent)
{
    auto injector = boostedInjector(1e6);
    injector.setEnabled(false);
    for (std::uint32_t v = 0; v < 1000; ++v)
        EXPECT_EQ(injector.corrupt(v, 32), v);
    EXPECT_EQ(injector.faultCount(), 0u);
    EXPECT_EQ(injector.accessCount(), 1000u);
}

TEST(Injector, CleanAtNegligibleRate)
{
    FaultModelParams params;
    params.scale = 0.0;
    FaultInjector injector{FaultModel(params), 2};
    for (std::uint32_t v = 0; v < 1000; ++v)
        EXPECT_EQ(injector.corrupt(v, 32), v);
    EXPECT_EQ(injector.faultCount(), 0u);
}

TEST(Injector, DeterministicBySeed)
{
    auto a = boostedInjector(1e5, 7);
    auto b = boostedInjector(1e5, 7);
    for (std::uint32_t i = 0; i < 5000; ++i)
        EXPECT_EQ(a.corrupt(i, 32), b.corrupt(i, 32));
}

TEST(Injector, FaultRateMatchesModel)
{
    // Boost so that ~32 * p1 * scale = ~3% of accesses fault.
    auto injector = boostedInjector(3600.0, 3);
    const std::uint64_t n = 200000;
    for (std::uint64_t i = 0; i < n; ++i)
        injector.corrupt(static_cast<std::uint32_t>(i), 32);
    const double expected =
        injector.model().bitFaultProb(1.0) * 32.0 * n;
    EXPECT_NEAR(static_cast<double>(injector.faultCount()), expected,
                expected * 0.1);
}

TEST(Injector, RateRisesWithFrequency)
{
    auto slow = boostedInjector(2000.0, 4);
    auto fast = boostedInjector(2000.0, 4);
    fast.setCycleTime(0.25);
    const std::uint64_t n = 100000;
    for (std::uint64_t i = 0; i < n; ++i) {
        slow.corrupt(0, 32);
        fast.corrupt(0, 32);
    }
    // eq. (4): ~9.5x more faults at Cr = 0.25.
    const double ratio =
        static_cast<double>(fast.faultCount()) /
        static_cast<double>(slow.faultCount());
    EXPECT_NEAR(ratio, 9.477, 2.0);
}

TEST(Injector, MaskStaysInsideAccessWidth)
{
    auto injector = boostedInjector(1e6, 5);
    for (const unsigned bits : {1u, 8u, 16u, 24u, 32u}) {
        for (int i = 0; i < 2000; ++i) {
            FaultEvent ev;
            injector.corrupt(0, bits, &ev);
            if (bits < 32)
                EXPECT_EQ(ev.mask >> bits, 0u)
                    << "mask escaped " << bits << "-bit access";
        }
    }
}

TEST(Injector, MultiBitFaultsFlipAdjacentBits)
{
    FaultModelParams params;
    params.scale = 1e6;
    // Make double faults dominate utterly (zero rates are rejected
    // by the model's validation, so use negligible ones).
    params.baseSingleBit = 1e-30;
    params.baseTripleBit = 1e-30;
    params.baseDoubleBit = 2.59e-6;
    FaultInjector injector{FaultModel(params), 6};
    unsigned seen = 0;
    for (int i = 0; i < 200000 && seen < 50; ++i) {
        FaultEvent ev;
        injector.corrupt(0, 32, &ev);
        if (!ev.flippedBits)
            continue;
        ++seen;
        ASSERT_EQ(ev.flippedBits, 2u);
        ASSERT_EQ(popCount(ev.mask), 2u);
        // Adjacent modulo the access width.
        bool adjacent = false;
        for (unsigned b = 0; b < 32; ++b) {
            const std::uint32_t pair =
                (1u << b) | (1u << ((b + 1) % 32));
            adjacent |= ev.mask == pair;
        }
        EXPECT_TRUE(adjacent) << std::hex << ev.mask;
    }
    EXPECT_GE(seen, 50u);
}

TEST(Injector, EventReportsAppliedMask)
{
    auto injector = boostedInjector(1e6, 8);
    for (int i = 0; i < 5000; ++i) {
        FaultEvent ev;
        const std::uint32_t out = injector.corrupt(0x5a5a5a5a, 32, &ev);
        EXPECT_EQ(out, 0x5a5a5a5a ^ ev.mask);
    }
}

TEST(Injector, StatsBreakdownByMultiplicity)
{
    auto injector = boostedInjector(1e5, 9);
    for (int i = 0; i < 300000; ++i)
        injector.corrupt(0, 32);
    const auto &stats = injector.stats();
    EXPECT_GT(stats.get("single"), stats.get("double"));
    EXPECT_GE(stats.get("double"), stats.get("triple"));
    EXPECT_EQ(stats.get("single") + stats.get("double") +
                  stats.get("triple"),
              injector.faultCount());
}

TEST(Injector, ResetStatsClearsCounters)
{
    auto injector = boostedInjector(1e6, 10);
    for (int i = 0; i < 1000; ++i)
        injector.corrupt(0, 32);
    EXPECT_GT(injector.faultCount(), 0u);
    injector.resetStats();
    EXPECT_EQ(injector.faultCount(), 0u);
    EXPECT_EQ(injector.accessCount(), 0u);
}

TEST(InjectorDeath, RejectsBadWidth)
{
    auto injector = boostedInjector(1.0);
    EXPECT_DEATH(injector.corrupt(0, 0), "width");
    EXPECT_DEATH(injector.corrupt(0, 33), "width");
}
