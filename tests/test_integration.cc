/**
 * @file
 * Cross-module integration tests: the paper's qualitative claims must
 * hold end-to-end on the full simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app.hh"
#include "core/experiment.hh"
#include "core/metrics.hh"

using namespace clumsy;
using namespace clumsy::core;

namespace
{

ExperimentResult
run(const std::string &app, double cr, mem::RecoveryScheme scheme,
    double faultScale = 1.0, std::uint64_t packets = 300,
    unsigned trials = 2)
{
    ExperimentConfig cfg;
    cfg.numPackets = packets;
    cfg.trials = trials;
    cfg.cr = cr;
    cfg.scheme = scheme;
    cfg.faultScale = faultScale;
    return runExperiment(apps::appFactory(app), cfg);
}

} // namespace

TEST(Integration, OverClockingReducesDelayAndEnergy)
{
    // Golden-path speed/energy: the whole motivation of the paper.
    const auto slow =
        run("route", 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto fast =
        run("route", 0.25, mem::RecoveryScheme::NoDetection, 0.0);
    EXPECT_LT(fast.cyclesPerPacket, slow.cyclesPerPacket);
    EXPECT_LT(fast.energyPerPacketPj, slow.energyPerPacketPj);
    EXPECT_LT(fast.l1dEnergyPerPacketPj, slow.l1dEnergyPerPacketPj);
}

TEST(Integration, CacheEnergySavingNearPaperHeadline)
{
    // The paper: ~41% D-cache energy saving at 4x clock (45% swing
    // saving minus extra L2 traffic).
    const auto slow =
        run("crc", 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto fast =
        run("crc", 0.25, mem::RecoveryScheme::NoDetection, 0.0);
    const double saving =
        1.0 - fast.l1dEnergyPerPacketPj / slow.l1dEnergyPerPacketPj;
    EXPECT_GT(saving, 0.35);
    EXPECT_LT(saving, 0.50);
}

TEST(Integration, FallibilityRisesWithFrequency)
{
    const auto mid =
        run("md5", 0.5, mem::RecoveryScheme::NoDetection, 10.0);
    const auto fast =
        run("md5", 0.25, mem::RecoveryScheme::NoDetection, 10.0);
    EXPECT_GT(fast.fallibility, mid.fallibility);
}

TEST(Integration, DetectionReducesErrors)
{
    // Parity + two-strike must beat no-detection on fallibility at
    // the same (accelerated) fault rate.
    const auto blind =
        run("crc", 0.25, mem::RecoveryScheme::NoDetection, 100.0, 400);
    const auto guarded =
        run("crc", 0.25, mem::RecoveryScheme::TwoStrike, 100.0, 400);
    EXPECT_LT(guarded.anyErrorProb, blind.anyErrorProb);
}

TEST(Integration, DetectionCostsEnergy)
{
    // Parity is not free: Phelan overheads show up in the D-cache
    // account.
    const auto blind =
        run("route", 1.0, mem::RecoveryScheme::NoDetection, 0.0);
    const auto guarded =
        run("route", 1.0, mem::RecoveryScheme::TwoStrike, 0.0);
    EXPECT_GT(guarded.l1dEnergyPerPacketPj,
              blind.l1dEnergyPerPacketPj * 1.1);
}

TEST(Integration, StrikeRecoveryAddsLatencyUnderFaults)
{
    // crc: its control plane carries no pointers, so boosted fault
    // rates cannot kill the run before packets flow.
    const auto calm =
        run("crc", 0.25, mem::RecoveryScheme::TwoStrike, 0.0);
    const auto stormy =
        run("crc", 0.25, mem::RecoveryScheme::TwoStrike, 300.0);
    ASSERT_GT(stormy.faulty.packetsProcessed, 0u);
    EXPECT_GT(stormy.cyclesPerPacket, calm.cyclesPerPacket);
    EXPECT_GT(stormy.faulty.parityTrips, 0u);
}

TEST(Integration, FatalErrorsEmergeAtHighRatesWithoutDetection)
{
    // Loop budgets + corrupted lengths/pointers must eventually kill
    // runs when faults are frequent and undetected.
    unsigned fatalTrials = 0;
    for (unsigned seed = 0; seed < 4; ++seed) {
        ExperimentConfig cfg;
        cfg.numPackets = 150;
        cfg.cr = 0.25;
        cfg.faultScale = 2000.0;
        cfg.faultSeed = 100 + seed;
        cfg.scheme = mem::RecoveryScheme::NoDetection;
        const auto res =
            runExperiment(apps::appFactory("md5"), cfg);
        fatalTrials += res.fatalFraction > 0 ? 1 : 0;
    }
    EXPECT_GT(fatalTrials, 0u);
}

TEST(Integration, DetectionSuppressesFatals)
{
    // The paper: with detection enabled it never saw a fatal error.
    ExperimentConfig cfg;
    cfg.numPackets = 150;
    cfg.trials = 4;
    cfg.cr = 0.25;
    cfg.faultScale = 500.0;
    cfg.scheme = mem::RecoveryScheme::ThreeStrike;
    const auto res = runExperiment(apps::appFactory("md5"), cfg);
    EXPECT_EQ(res.fatalFraction, 0.0);
}

TEST(Integration, EdfOptimumPrefersModerateOverclocking)
{
    // At the paper's (unscaled) fault rates, Cr = 0.5 with two-strike
    // must beat both the base clock and reckless no-detection 0.25.
    const auto base =
        run("tl", 1.0, mem::RecoveryScheme::NoDetection, 1.0, 600, 3);
    const auto sweet =
        run("tl", 0.5, mem::RecoveryScheme::TwoStrike, 1.0, 600, 3);
    const double relSweet =
        (sweet.energyPerPacketPj *
         std::pow(sweet.cyclesPerPacket, 2) *
         std::pow(sweet.fallibility, 2)) /
        (base.energyPerPacketPj * std::pow(base.cyclesPerPacket, 2) *
         std::pow(base.fallibility, 2));
    EXPECT_LT(relSweet, 1.0);
}

TEST(Integration, DynamicControllerSettlesFastUnderLowFaults)
{
    ExperimentConfig cfg;
    cfg.numPackets = 1000;
    cfg.dynamicFrequency = true;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    const auto res = runExperiment(apps::appFactory("route"), cfg);
    // At paper fault rates most epochs are quiet: the controller must
    // leave the base level and stay fast (cheaper, quicker packets
    // than the static base clock).
    const auto baseline =
        run("route", 1.0, mem::RecoveryScheme::TwoStrike, 1.0, 1000,
            1);
    EXPECT_LT(res.cyclesPerPacket, baseline.cyclesPerPacket);
}
