/**
 * @file
 * Tests of the simulated DRAM backing store.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

using namespace clumsy;
using namespace clumsy::mem;

TEST(BackingStore, PowerOnStateIsZeroPages)
{
    // SimpleScalar-style lazily-allocated zero pages: see the
    // constructor comment for why this matters to fault behaviour.
    BackingStore store(4096);
    for (SimAddr addr = 0; addr < 4096; ++addr)
        ASSERT_EQ(store.read8(addr), 0);
}

TEST(BackingStore, ByteRoundTrip)
{
    BackingStore store(256);
    store.write8(0, 0xab);
    store.write8(255, 0xcd);
    EXPECT_EQ(store.read8(0), 0xab);
    EXPECT_EQ(store.read8(255), 0xcd);
}

TEST(BackingStore, WordRoundTripLittleEndian)
{
    BackingStore store(256);
    store.write32(8, 0x11223344);
    EXPECT_EQ(store.read32(8), 0x11223344u);
    EXPECT_EQ(store.read8(8), 0x44);
    EXPECT_EQ(store.read8(11), 0x11);
}

TEST(BackingStore, ContainsHandlesOverflow)
{
    BackingStore store(256);
    EXPECT_TRUE(store.contains(0, 256));
    EXPECT_FALSE(store.contains(0, 257));
    EXPECT_FALSE(store.contains(255, 2));
    // A wrapping addr+len must not be accepted.
    EXPECT_FALSE(store.contains(0xffffffff, 2));
}

TEST(BackingStore, BlockOps)
{
    BackingStore store(256);
    const std::uint8_t src[5] = {1, 2, 3, 4, 5};
    store.writeBlock(10, src, 5);
    std::uint8_t dst[5] = {};
    store.readBlock(10, dst, 5);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(dst[i], src[i]);
}

TEST(BackingStore, Fill)
{
    BackingStore store(256);
    store.fill(0, 0x77, 16);
    for (SimAddr a = 0; a < 16; ++a)
        EXPECT_EQ(store.read8(a), 0x77);
}

TEST(BackingStoreDeath, OutOfRangeAccessesPanic)
{
    BackingStore store(256);
    EXPECT_DEATH(store.read8(256), "range");
    EXPECT_DEATH(store.write32(254, 1), "range");
    EXPECT_DEATH(store.read32(2), "misaligned");
}
