/**
 * @file
 * Tests of the golden-vs-faulty experiment harness.
 */

#include <gtest/gtest.h>

#include "apps/app.hh"
#include "core/experiment.hh"

using namespace clumsy;
using namespace clumsy::core;

TEST(ValueRecorder, ComparesByKeyedSequences)
{
    ValueRecorder a, b;
    a.beginPacket();
    a.record("x", 1);
    a.record("x", 2);
    a.record("y", 9);
    b.beginPacket();
    b.record("y", 9);
    b.record("x", 1);
    b.record("x", 2);
    // Inter-key order is irrelevant; per-key sequences must match.
    EXPECT_TRUE(a.comparePacket(0, b).empty());
}

TEST(ValueRecorder, DetectsValueAndShapeMismatches)
{
    ValueRecorder a, b;
    a.beginPacket();
    a.record("x", 1);
    a.record("z", 3);
    b.beginPacket();
    b.record("x", 2);     // wrong value
    b.record("extra", 1); // key a lacks
    const auto bad = a.comparePacket(0, b);
    EXPECT_EQ(bad.size(), 3u); // x, z (missing), extra (unexpected)
}

TEST(ValueRecorder, PerKeyOrderMatters)
{
    ValueRecorder a, b;
    a.beginPacket();
    a.record("x", 1);
    a.record("x", 2);
    b.beginPacket();
    b.record("x", 2);
    b.record("x", 1);
    EXPECT_FALSE(a.comparePacket(0, b).empty());
}

TEST(Experiment, ZeroFaultScaleYieldsNoErrors)
{
    ExperimentConfig cfg;
    cfg.numPackets = 60;
    cfg.faultScale = 0.0;
    cfg.cr = 0.25;
    const auto res = runExperiment(apps::appFactory("route"), cfg);
    EXPECT_EQ(res.anyErrorProb, 0.0);
    EXPECT_EQ(res.fatalProb, 0.0);
    EXPECT_DOUBLE_EQ(res.fallibility, 1.0);
    EXPECT_EQ(res.faulty.faultsInjected, 0u);
}

TEST(Experiment, BoostedFaultsProduceErrors)
{
    ExperimentConfig cfg;
    cfg.numPackets = 120;
    cfg.faultScale = 400.0;
    cfg.cr = 0.25;
    const auto res = runExperiment(apps::appFactory("crc"), cfg);
    EXPECT_GT(res.faulty.faultsInjected, 0u);
    EXPECT_GT(res.anyErrorProb, 0.0);
    EXPECT_GT(res.fallibility, 1.0);
    EXPECT_FALSE(res.errorProbByType.empty());
    EXPECT_GT(res.errorProbByType.count("crc_accum"), 0u);
}

TEST(Experiment, ControlPlaneGatingLimitsInjection)
{
    // With faults confined to the control plane, the per-packet data
    // path must stay untouched after initialization completes.
    ExperimentConfig cfg;
    cfg.numPackets = 50;
    cfg.plane = FaultPlane::ControlOnly;
    cfg.faultScale = 50.0;
    cfg.cr = 0.25;
    const auto res = runExperiment(apps::appFactory("crc"), cfg);
    // crc's control plane builds the 256-entry table; the injector
    // must have been disabled for the (much larger) data plane.
    const auto controlAccesses = 256 * 2; // rough upper bound scale
    EXPECT_LT(res.faulty.faultsInjected + 1,
              static_cast<std::uint64_t>(controlAccesses));
}

TEST(Experiment, DataPlaneOnlyLeavesInitClean)
{
    ExperimentConfig cfg;
    cfg.numPackets = 40;
    cfg.plane = FaultPlane::DataOnly;
    cfg.faultScale = 1000.0;
    cfg.cr = 0.25;
    const auto res = runExperiment(apps::appFactory("route"), cfg);
    // Initialization errors require init-time corruption... which can
    // still appear via later writebacks; but the route table audit of
    // untouched entries must dominate toward zero.
    EXPECT_GE(res.anyErrorProb, 0.0); // harness ran
    EXPECT_GT(res.faulty.faultsInjected, 0u);
}

TEST(Experiment, GoldenMetricsPopulated)
{
    ExperimentConfig cfg;
    cfg.numPackets = 30;
    const auto res = runExperiment(apps::appFactory("tl"), cfg);
    EXPECT_EQ(res.app, "tl");
    EXPECT_EQ(res.golden.packetsProcessed, 30u);
    EXPECT_GT(res.golden.instructions, 0u);
    EXPECT_GT(res.golden.dcacheAccesses, 0u);
    EXPECT_GT(res.golden.cyclesPerPacket, 0.0);
    EXPECT_GT(res.golden.energyPerPacketPj, 0.0);
    EXPECT_FALSE(res.golden.fatal);
}

TEST(Experiment, TrialsAverage)
{
    ExperimentConfig cfg;
    cfg.numPackets = 40;
    cfg.trials = 3;
    cfg.faultScale = 100.0;
    cfg.cr = 0.25;
    const auto res = runExperiment(apps::appFactory("md5"), cfg);
    EXPECT_GE(res.fallibility, 1.0);
    EXPECT_LE(res.anyErrorProb, 1.0);
}

TEST(Experiment, TraceSeedChangesWorkload)
{
    ExperimentConfig a, b;
    a.numPackets = b.numPackets = 25;
    a.traceSeed = 1;
    b.traceSeed = 2;
    const auto ra = runExperiment(apps::appFactory("crc"), a);
    const auto rb = runExperiment(apps::appFactory("crc"), b);
    EXPECT_NE(ra.golden.dcacheAccesses, rb.golden.dcacheAccesses);
}

TEST(Experiment, DynamicFlagBuildsController)
{
    ExperimentConfig cfg;
    cfg.numPackets = 250;
    cfg.dynamicFrequency = true;
    cfg.scheme = mem::RecoveryScheme::TwoStrike;
    const auto res = runExperiment(apps::appFactory("route"), cfg);
    // Quiet runs push the controller to faster levels (switches > 0).
    EXPECT_GT(res.faulty.freqSwitches, 0u);
}

TEST(Experiment, FaultPlaneNames)
{
    EXPECT_EQ(to_string(FaultPlane::ControlOnly), "control plane");
    EXPECT_EQ(to_string(FaultPlane::DataOnly), "data plane");
    EXPECT_EQ(to_string(FaultPlane::Both), "both planes");
}
